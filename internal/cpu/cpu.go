// Package cpu exposes the few architecture-specific hints the sampling
// hot paths want, behind build-tag shims that compile to no-ops on
// unsupported targets. The only hint today is a non-temporal software
// prefetch: the frontier-batched RR expander knows the next adjacency
// run it will read several steps before it reads it, and the data is
// streamed once per batch window, so PREFETCHNTA (fetch into the
// nearest cache level without polluting outer levels) is the right
// flavor.
//
// Callers must treat the hint as exactly that — a hint. Correctness can
// never depend on it, and the no-op fallback means code using this
// package behaves identically (modulo latency) everywhere.
package cpu

import "unsafe"

// prefetchable is a marker so callers can pass typed pointers without
// writing unsafe conversions at every call site.
type prefetchable interface {
	~uint32 | ~int32 | ~uint64 | ~int64
}

// PrefetchSlice hints that the run s[i:] is about to be streamed. It is
// bounds-checked (out-of-range i is ignored) so speculative hints on
// not-yet-validated indices are safe.
func PrefetchSlice[T prefetchable](s []T, i int) {
	if uint(i) < uint(len(s)) {
		PrefetchNTA(unsafe.Pointer(&s[i]))
	}
}
