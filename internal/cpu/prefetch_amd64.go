//go:build amd64 && !purego

package cpu

import "unsafe"

// PrefetchNTA hints that the cache line containing p will be read soon
// and should be fetched with minimal cache pollution (PREFETCHNTA).
// It is implemented in assembly because Go has no prefetch intrinsic;
// the call does not inline, so use it sparingly — one hint per
// adjacency run, not per element.
//
//go:noescape
func PrefetchNTA(p unsafe.Pointer)
