//go:build !amd64 || purego

package cpu

import "unsafe"

// PrefetchNTA is a no-op on targets without a prefetch shim.
func PrefetchNTA(p unsafe.Pointer) { _ = p }
