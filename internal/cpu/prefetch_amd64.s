//go:build amd64 && !purego

#include "textflag.h"

// func PrefetchNTA(p unsafe.Pointer)
TEXT ·PrefetchNTA(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHNTA (AX)
	RET
