package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// These benchmarks pit the two ways of realizing a topology delta
// against each other on nethept-s at full scale with a 1% edge churn:
// graph.ApplyDelta patches the CSR and compressed in-probability tables
// per touched node, while the rebuild path reconstructs the whole graph
// from the edited edge list. The delta path is the reason temporal
// sweeps and the mutate endpoint are cheap; run with
//
//	go test -bench 'Delta' -run xxx ./internal/gen/
//
// to compare.
func churnFixture(b *testing.B) (*graph.Graph, []graph.Edge, []graph.Edge) {
	b.Helper()
	ds, err := Lookup("nethept-s")
	if err != nil {
		b.Fatal(err)
	}
	g, err := Generate(ds.Config(1))
	if err != nil {
		b.Fatal(err)
	}
	inserts, deletes := ChurnDeltas(g, 0.01, rng.New(42))
	if len(deletes) == 0 || len(inserts) == 0 {
		b.Fatalf("degenerate churn: %d inserts, %d deletes", len(inserts), len(deletes))
	}
	return g, inserts, deletes
}

func BenchmarkApplyDelta(b *testing.B) {
	g, inserts, deletes := churnFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.ApplyDelta(inserts, deletes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRebuildAfterDelta(b *testing.B) {
	g, inserts, deletes := churnFixture(b)
	// The edited edge list is the rebuild's input, not part of its cost:
	// a real ingest pipeline would have it on hand.
	gone := make(map[[2]graph.NodeID]bool, len(deletes))
	for _, e := range deletes {
		gone[[2]graph.NodeID{e.From, e.To}] = true
	}
	base := g.Edges()
	edited := make([]graph.Edge, 0, len(base)+len(inserts))
	for _, e := range base {
		if !gone[[2]graph.NodeID{e.From, e.To}] {
			edited = append(edited, e)
		}
	}
	edited = append(edited, inserts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb := graph.NewBuilder(g.N(), true)
		for _, e := range edited {
			if err := nb.AddEdge(e.From, e.To, e.P); err != nil {
				b.Fatal(err)
			}
		}
		if got := nb.Build(); got.M() != g.M() {
			b.Fatalf("rebuilt m=%d, want %d", got.M(), g.M())
		}
	}
}
