package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func generateOrFatal(t *testing.T, cfg Config) *graph.Graph {
	t.Helper()
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate(%+v): %v", cfg, err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	return g
}

func TestGenerateAllModels(t *testing.T) {
	for _, model := range []Model{ErdosRenyi, PrefAttach, SmallWorld, PowerLawConfig} {
		for _, directed := range []bool{true, false} {
			cfg := Config{Model: model, N: 500, AvgDeg: 6, Directed: directed, Seed: 1}
			g := generateOrFatal(t, cfg)
			if g.N() != 500 {
				t.Fatalf("%v directed=%v: N=%d", model, directed, g.N())
			}
			avg := float64(g.M()) / float64(g.N())
			if avg < 2 || avg > 14 {
				t.Fatalf("%v directed=%v: average degree %v far from target 6", model, directed, avg)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Model: PrefAttach, N: 300, AvgDeg: 5, Directed: true, Seed: 42}
	a := generateOrFatal(t, cfg)
	b := generateOrFatal(t, cfg)
	if a.M() != b.M() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", a.M(), b.M())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

func TestGenerateSeedChangesGraph(t *testing.T) {
	base := Config{Model: PrefAttach, N: 300, AvgDeg: 5, Directed: true, Seed: 1}
	other := base
	other.Seed = 2
	a := generateOrFatal(t, base)
	b := generateOrFatal(t, other)
	ae, be := a.Edges(), b.Edges()
	if len(ae) == len(be) {
		same := 0
		for i := range ae {
			if ae[i] == be[i] {
				same++
			}
		}
		if same == len(ae) {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestWeightedCascadeApplied(t *testing.T) {
	g := generateOrFatal(t, Config{Model: ErdosRenyi, N: 200, AvgDeg: 5, Directed: true, Seed: 3})
	for u := int32(0); u < int32(g.N()); u++ {
		adj, ps := g.OutNeighbors(u)
		for i, v := range adj {
			want := 1 / float64(g.InDegree(v))
			if math.Abs(ps[i]-want) > 1e-12 {
				t.Fatalf("edge (%d,%d): p=%v want 1/indeg=%v", u, v, ps[i], want)
			}
		}
	}
}

func TestPrefAttachHeavyTail(t *testing.T) {
	g := generateOrFatal(t, Config{Model: PrefAttach, N: 2000, AvgDeg: 6, Directed: true, Seed: 7})
	maxIn, sumIn := 0, 0
	for u := int32(0); u < int32(g.N()); u++ {
		d := g.InDegree(u)
		sumIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	avgIn := float64(sumIn) / float64(g.N())
	// Heavy tail: the hub should dwarf the average. Erdos-Renyi would give
	// max/avg around 3-4; preferential attachment should exceed 10.
	if float64(maxIn) < 10*avgIn {
		t.Fatalf("degree tail too light: max=%d avg=%.2f", maxIn, avgIn)
	}
}

func TestErdosRenyiLightTail(t *testing.T) {
	g := generateOrFatal(t, Config{Model: ErdosRenyi, N: 2000, AvgDeg: 6, Directed: true, Seed: 7})
	maxIn := 0
	for u := int32(0); u < int32(g.N()); u++ {
		if d := g.InDegree(u); d > maxIn {
			maxIn = d
		}
	}
	if maxIn > 40 {
		t.Fatalf("Erdos-Renyi produced an implausible hub: max indeg %d", maxIn)
	}
}

func TestPowerLawExponentControl(t *testing.T) {
	steep := generateOrFatal(t, Config{Model: PowerLawConfig, N: 3000, AvgDeg: 6, Directed: true, Seed: 5, Exponent: 3.0})
	flat := generateOrFatal(t, Config{Model: PowerLawConfig, N: 3000, AvgDeg: 6, Directed: true, Seed: 5, Exponent: 1.8})
	maxIn := func(g *graph.Graph) int {
		m := 0
		for u := int32(0); u < int32(g.N()); u++ {
			if d := g.InDegree(u); d > m {
				m = d
			}
		}
		return m
	}
	if maxIn(flat) <= maxIn(steep) {
		t.Fatalf("flatter exponent should give heavier tail: flat max=%d steep max=%d",
			maxIn(flat), maxIn(steep))
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []Config{
		{Model: ErdosRenyi, N: 1, AvgDeg: 2},                      // too few nodes
		{Model: ErdosRenyi, N: 100, AvgDeg: 0},                    // no degree
		{Model: PrefAttach, N: 3, AvgDeg: 10},                     // N <= k
		{Model: SmallWorld, N: 4, AvgDeg: 10},                     // k >= N
		{Model: PowerLawConfig, N: 100, AvgDeg: 5, Exponent: 0.5}, // bad exponent
		{Model: Model(99), N: 100, AvgDeg: 5},                     // unknown model
	}
	for _, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) accepted invalid config", cfg)
		}
	}
}

func TestDatasetRegistry(t *testing.T) {
	if len(Datasets) != 4 {
		t.Fatalf("registry has %d datasets, want 4 (Table II)", len(Datasets))
	}
	for _, d := range Datasets {
		if _, err := Lookup(d.Name); err != nil {
			t.Fatalf("Lookup(%q): %v", d.Name, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown dataset succeeded")
	}
}

func TestDatasetStandInsMatchTable2Shape(t *testing.T) {
	// Generate the two smaller stand-ins at 1/50 scale and check that the
	// declared type and average degree track Table II.
	for _, name := range []string{"nethept-s", "epinions-s"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := spec.Config(0.02)
		g, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Directed() != spec.Directed {
			t.Fatalf("%s: directedness mismatch", name)
		}
		avg := float64(g.M()) / float64(g.N())
		if avg < spec.AvgDeg/3 || avg > spec.AvgDeg*3 {
			t.Fatalf("%s: avg degree %.2f too far from Table II %.2f", name, avg, spec.AvgDeg)
		}
	}
}

func TestDatasetConfigScaleFloor(t *testing.T) {
	spec, _ := Lookup("nethept-s")
	cfg := spec.Config(0.000001)
	if cfg.N < 64 {
		t.Fatalf("scale floor violated: N=%d", cfg.N)
	}
	cfg = spec.Config(0) // 0 means paper scale
	if cfg.N != spec.PaperN {
		t.Fatalf("scale 0 should mean paper size, got N=%d", cfg.N)
	}
}

func TestModelString(t *testing.T) {
	names := map[Model]string{
		ErdosRenyi:     "erdos-renyi",
		PrefAttach:     "pref-attach",
		SmallWorld:     "small-world",
		PowerLawConfig: "power-law",
		Model(42):      "model(42)",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}
