package gen

import (
	"fmt"
	"sort"
)

// DatasetSpec describes one of the paper's Table II datasets and the
// generator configuration of its synthetic stand-in.
type DatasetSpec struct {
	Name     string  // stand-in name, e.g. "nethept-s"
	PaperN   int     // node count reported in Table II
	PaperM   int64   // edge count reported in Table II
	Directed bool    // dataset type from Table II
	AvgDeg   float64 // average degree from Table II
	Seed     uint64  // fixed generation seed (reproducibility)
}

// Datasets is the Table II registry. Stand-ins carry the "-s" suffix to
// make the substitution explicit everywhere they are printed.
var Datasets = []DatasetSpec{
	{Name: "nethept-s", PaperN: 15_200, PaperM: 31_400, Directed: false, AvgDeg: 4.18, Seed: 0x4E455448},
	{Name: "epinions-s", PaperN: 132_000, PaperM: 841_000, Directed: true, AvgDeg: 13.4, Seed: 0x4550494E},
	{Name: "dblp-s", PaperN: 655_000, PaperM: 1_990_000, Directed: false, AvgDeg: 6.08, Seed: 0x44424C50},
	{Name: "livejournal-s", PaperN: 4_850_000, PaperM: 69_000_000, Directed: true, AvgDeg: 28.5, Seed: 0x4C495645},
}

// Lookup returns the spec with the given name.
func Lookup(name string) (DatasetSpec, error) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	names := make([]string, 0, len(Datasets))
	for _, d := range Datasets {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return DatasetSpec{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, names)
}

// Config returns the generator configuration for the stand-in at the given
// scale factor (1 = paper size, 0.1 = one tenth of the nodes, ...). The
// average degree is preserved at every scale because the paper's
// comparisons are degree-driven.
func (d DatasetSpec) Config(scale float64) Config {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(d.PaperN) * scale)
	if n < 64 {
		n = 64
	}
	return Config{
		Model:    PrefAttach,
		N:        n,
		AvgDeg:   d.AvgDeg,
		Directed: d.Directed,
		Seed:     d.Seed,
	}
}
