// Package gen builds synthetic social networks used as stand-ins for the
// paper's SNAP datasets (Table II), which are not shipped with this
// offline repository.
//
// The experiments in the paper depend on four structural properties of
// the input graphs: node count, average degree, directedness, and a
// heavy-tailed degree distribution (which makes "influential" nodes exist
// for IMM to find and for the cost models to price). The generators here
// reproduce those properties; see DESIGN.md §4 for the substitution
// argument.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Config selects a generator and its parameters.
type Config struct {
	Model    Model
	N        int     // number of nodes
	AvgDeg   float64 // target average out-degree
	Directed bool
	Seed     uint64

	// Power-law specific: exponent of the in-degree distribution tail.
	// 0 means the model default (2.1, typical of social networks).
	Exponent float64

	// SmallWorld specific: rewiring probability. 0 means default 0.1.
	Rewire float64

	// DegreeOrder enables the builder's degree-ordered node renumbering
	// (graph.Builder.SetDegreeOrder): hub nodes are packed at low internal
	// IDs for cache locality while every user-visible NodeID stays in the
	// generator's original space. Same Seed with and without this flag
	// yields the same logical graph.
	DegreeOrder bool
}

// Model enumerates the available generators.
type Model int

const (
	// ErdosRenyi wires each edge independently; light-tailed degrees.
	ErdosRenyi Model = iota
	// PrefAttach grows the graph with preferential attachment, producing
	// the heavy-tailed degree distribution of real social networks.
	PrefAttach
	// SmallWorld is a Watts-Strogatz ring with random rewiring.
	SmallWorld
	// PowerLawConfig draws in-degrees from a discrete power law and wires
	// a configuration-model digraph.
	PowerLawConfig
)

// String names the model for reports.
func (m Model) String() string {
	switch m {
	case ErdosRenyi:
		return "erdos-renyi"
	case PrefAttach:
		return "pref-attach"
	case SmallWorld:
		return "small-world"
	case PowerLawConfig:
		return "power-law"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Generate builds a graph per cfg and applies the paper's weighted-cascade
// weighting p(u,v) = 1/indeg(v).
func Generate(cfg Config) (*graph.Graph, error) {
	if cfg.N <= 1 {
		return nil, fmt.Errorf("gen: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.AvgDeg <= 0 {
		return nil, fmt.Errorf("gen: average degree must be positive, got %v", cfg.AvgDeg)
	}
	r := rng.New(cfg.Seed)
	var b *graph.Builder
	var err error
	switch cfg.Model {
	case ErdosRenyi:
		b, err = erdosRenyi(cfg, r)
	case PrefAttach:
		b, err = prefAttach(cfg, r)
	case SmallWorld:
		b, err = smallWorld(cfg, r)
	case PowerLawConfig:
		b, err = powerLawConfig(cfg, r)
	default:
		return nil, fmt.Errorf("gen: unknown model %v", cfg.Model)
	}
	if err != nil {
		return nil, err
	}
	b.Dedup()
	b.ApplyWeightedCascade()
	b.SetDegreeOrder(cfg.DegreeOrder)
	return b.Build(), nil
}

// erdosRenyi wires round(N*AvgDeg) directed edges uniformly at random.
func erdosRenyi(cfg Config, r *rng.RNG) (*graph.Builder, error) {
	b := graph.NewBuilder(cfg.N, cfg.Directed)
	target := int64(float64(cfg.N) * cfg.AvgDeg)
	if !cfg.Directed {
		target /= 2 // each undirected edge contributes two arcs
	}
	maxEdges := int64(cfg.N) * int64(cfg.N-1)
	if cfg.Directed && target > maxEdges {
		return nil, fmt.Errorf("gen: %d edges exceed capacity %d", target, maxEdges)
	}
	seen := make(map[[2]int32]struct{}, target)
	for int64(len(seen)) < target {
		u := int32(r.Intn(cfg.N))
		v := int32(r.Intn(cfg.N))
		if u == v {
			continue
		}
		k := [2]int32{u, v}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if cfg.Directed {
			if err := b.AddArc(u, v); err != nil {
				return nil, err
			}
		} else {
			if err := b.AddArc(u, v); err != nil {
				return nil, err
			}
			if err := b.AddArc(v, u); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// prefAttach grows a Barabási-Albert-style graph: each new node attaches
// k = AvgDeg/2 (undirected) or AvgDeg (directed, as out-edges) times to
// existing nodes chosen proportionally to their current degree.
func prefAttach(cfg Config, r *rng.RNG) (*graph.Builder, error) {
	k := int(cfg.AvgDeg)
	if !cfg.Directed {
		k = int(cfg.AvgDeg / 2)
	}
	if k < 1 {
		k = 1
	}
	if cfg.N <= k {
		return nil, fmt.Errorf("gen: pref-attach needs N > k, got N=%d k=%d", cfg.N, k)
	}
	b := graph.NewBuilder(cfg.N, cfg.Directed)
	// targets holds one entry per degree unit; sampling an index gives
	// degree-proportional attachment.
	targets := make([]int32, 0, 2*cfg.N*k)
	// Seed clique over the first k+1 nodes.
	for u := 0; u <= k; u++ {
		for v := 0; v <= k; v++ {
			if u == v {
				continue
			}
			if err := b.AddArc(int32(u), int32(v)); err != nil {
				return nil, err
			}
		}
		for i := 0; i < k; i++ {
			targets = append(targets, int32(u))
		}
	}
	for u := k + 1; u < cfg.N; u++ {
		// chosen is an insertion-ordered distinct set; map iteration order
		// must not leak into the edge stream or determinism breaks.
		chosen := make([]int32, 0, k)
		seen := make(map[int32]struct{}, k)
		for len(chosen) < k {
			var v int32
			// Mix degree-proportional and uniform attachment so low-degree
			// nodes keep some in-probability (exponent control).
			if r.Float64() < 0.9 {
				v = targets[r.Intn(len(targets))]
			} else {
				v = int32(r.Intn(u))
			}
			if v == int32(u) {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			chosen = append(chosen, v)
		}
		for _, v := range chosen {
			if err := b.AddArc(int32(u), v); err != nil {
				return nil, err
			}
			if !cfg.Directed {
				if err := b.AddArc(v, int32(u)); err != nil {
					return nil, err
				}
			}
			targets = append(targets, v, int32(u))
		}
	}
	return b, nil
}

// smallWorld builds a Watts-Strogatz ring lattice with rewiring.
func smallWorld(cfg Config, r *rng.RNG) (*graph.Builder, error) {
	k := int(cfg.AvgDeg)
	if !cfg.Directed {
		k = int(cfg.AvgDeg / 2)
	}
	if k < 1 {
		k = 1
	}
	if k >= cfg.N {
		return nil, fmt.Errorf("gen: small-world needs k < N, got k=%d N=%d", k, cfg.N)
	}
	beta := cfg.Rewire
	if beta == 0 {
		beta = 0.1
	}
	b := graph.NewBuilder(cfg.N, cfg.Directed)
	for u := 0; u < cfg.N; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % cfg.N
			if r.Float64() < beta {
				for {
					v = r.Intn(cfg.N)
					if v != u {
						break
					}
				}
			}
			if err := b.AddArc(int32(u), int32(v)); err != nil {
				return nil, err
			}
			if !cfg.Directed {
				if err := b.AddArc(int32(v), int32(u)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

// powerLawConfig samples in-degrees from P(d) ∝ d^(-γ) truncated to
// [1, sqrt(N*AvgDeg)] and wires sources uniformly (directed configuration
// model). Heavy in-degree tail mirrors real follower distributions.
func powerLawConfig(cfg Config, r *rng.RNG) (*graph.Builder, error) {
	gamma := cfg.Exponent
	if gamma == 0 {
		gamma = 2.1
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("gen: power-law exponent must exceed 1, got %v", gamma)
	}
	maxDeg := intSqrt(int64(float64(cfg.N) * cfg.AvgDeg))
	if maxDeg < 2 {
		maxDeg = 2
	}
	if maxDeg >= int64(cfg.N) {
		maxDeg = int64(cfg.N) - 1
	}
	// Precompute the truncated power-law CDF.
	weights := make([]float64, maxDeg+1)
	total := 0.0
	for d := int64(1); d <= maxDeg; d++ {
		w := pow(float64(d), -gamma)
		total += w
		weights[d] = total
	}
	sample := func() int64 {
		x := r.Float64() * total
		lo, hi := int64(1), maxDeg
		for lo < hi {
			mid := (lo + hi) / 2
			if weights[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Scale sampled degrees so the realized average matches AvgDeg.
	degs := make([]int64, cfg.N)
	var sum int64
	for i := range degs {
		degs[i] = sample()
		sum += degs[i]
	}
	want := int64(float64(cfg.N) * cfg.AvgDeg)
	if !cfg.Directed {
		want /= 2
	}
	if sum == 0 {
		return nil, fmt.Errorf("gen: degenerate degree sample")
	}
	scale := float64(want) / float64(sum)
	b := graph.NewBuilder(cfg.N, cfg.Directed)
	for v := 0; v < cfg.N; v++ {
		d := int64(float64(degs[v])*scale + r.Float64()) // stochastic rounding
		seen := make(map[int32]struct{}, d)
		for int64(len(seen)) < d && int64(len(seen)) < int64(cfg.N-1) {
			u := int32(r.Intn(cfg.N))
			if int(u) == v {
				continue
			}
			if _, dup := seen[u]; dup {
				continue
			}
			seen[u] = struct{}{}
			if err := b.AddArc(u, int32(v)); err != nil {
				return nil, err
			}
			if !cfg.Directed {
				if err := b.AddArc(int32(v), u); err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

func intSqrt(x int64) int64 {
	if x < 0 {
		return 0
	}
	r := int64(1)
	for r*r <= x {
		r++
	}
	return r - 1
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
