package gen

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// ChurnDeltas draws a deterministic sliding-window edge delta for g: it
// picks max(1, round(frac·M)) distinct existing directed edges to delete
// and the same number of fresh directed edges to insert, so the edge count
// is conserved while the topology drifts. Inserted edges adopt the
// target's shared in-probability when the graph stores compressed
// in-probabilities (keeping the fast delta path and the weighted-cascade
// flavor), and fall back to 0.1 on per-edge graphs or into previously
// in-degree-0 targets.
//
// The delta is a pure function of (g, frac, r's stream): temporal sweeps
// and the service mutate endpoint replay it bit-identically from a seed.
// The returned slices are valid arguments for graph.ApplyDelta on g.
func ChurnDeltas(g *graph.Graph, frac float64, r *rng.RNG) (inserts, deletes []graph.Edge) {
	n, m := g.N(), g.M()
	if n < 2 {
		return nil, nil
	}
	k := int(frac*float64(m) + 0.5)
	if k < 1 {
		k = 1
	}
	if int64(k) > m {
		k = int(m)
	}

	// Deletes: distinct random arena positions, mapped to (source, target)
	// by binary search over the out-CSR index. Distinct pairs only, so the
	// delta stays unambiguous even on graphs with parallel edges.
	chosen := make(map[[2]graph.NodeID]bool, 2*k)
	outIdx := make([]int64, n+1)
	for v := 0; v < n; v++ {
		outIdx[v+1] = outIdx[v] + int64(g.OutDegree(graph.NodeID(v)))
	}
	for tries := 0; len(deletes) < k && tries < 100*k+100; tries++ {
		idx := int64(r.Intn(int(m)))
		v := sort.Search(n, func(i int) bool { return outIdx[i+1] > idx }) // node owning arena slot idx
		adj, _ := g.OutNeighbors(graph.NodeID(v))
		to := adj[idx-outIdx[v]]
		pair := [2]graph.NodeID{graph.NodeID(v), to}
		if chosen[pair] {
			continue
		}
		chosen[pair] = true
		deletes = append(deletes, graph.Edge{From: graph.NodeID(v), To: to})
	}

	// Inserts: fresh pairs — absent from g and from this delta.
	want := len(deletes)
	for tries := 0; len(inserts) < want && tries < 100*want+100; tries++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		pair := [2]graph.NodeID{u, v}
		if u == v || chosen[pair] {
			continue
		}
		if _, exists := g.EdgeProbability(u, v); exists {
			continue
		}
		p := 0.1
		if _, q, ok := g.InNeighborsUniform(v); ok && q > 0 {
			p = q
		}
		chosen[pair] = true
		inserts = append(inserts, graph.Edge{From: u, To: v, P: p})
	}
	return inserts, deletes
}
