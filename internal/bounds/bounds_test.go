package bounds

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestHoeffdingThetaFormula(t *testing.T) {
	// θ = ln(8/δ)/(2ζ²) for ζ=0.1, δ=0.01: ln(800)/0.02 ≈ 334.2 → 335.
	got, err := HoeffdingTheta(0.1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(math.Log(800) / 0.02))
	if got != want {
		t.Fatalf("HoeffdingTheta = %d, want %d", got, want)
	}
}

func TestHybridThetaFormula(t *testing.T) {
	// θ = (1+ε/3)²/(2εζ)·ln(4/δ).
	eps, zeta, delta := 0.5, 0.05, 0.001
	got, err := HybridTheta(eps, zeta, delta)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil((1 + eps/3) * (1 + eps/3) / (2 * eps * zeta) * math.Log(4/delta)))
	if got != want {
		t.Fatalf("HybridTheta = %d, want %d", got, want)
	}
}

func TestThetaErrors(t *testing.T) {
	bad := []struct{ zeta, delta float64 }{
		{0, 0.1}, {1, 0.1}, {-0.1, 0.1}, {0.1, 0}, {0.1, 1}, {0.1, -2},
	}
	for _, c := range bad {
		if _, err := HoeffdingTheta(c.zeta, c.delta); err == nil {
			t.Errorf("HoeffdingTheta(%v,%v) accepted", c.zeta, c.delta)
		}
	}
	if _, err := HybridTheta(0, 0.1, 0.1); err == nil {
		t.Error("HybridTheta accepted eps=0")
	}
	if _, err := HybridTheta(0.1, 2, 0.1); err == nil {
		t.Error("HybridTheta accepted zeta=2")
	}
	if _, err := HybridTheta(0.1, 0.1, 0); err == nil {
		t.Error("HybridTheta accepted delta=0")
	}
}

func TestTailsMonotoneInTheta(t *testing.T) {
	prevH, prevU, prevL := 1.0, 1.0, 1.0
	for _, theta := range []int{1, 10, 100, 1000, 10000} {
		h := HoeffdingTail(theta, 0.05)
		u := HybridUpperTail(theta, 0.2, 0.05)
		l := HybridLowerTail(theta, 0.2, 0.05)
		if h > prevH || u > prevU || l > prevL {
			t.Fatalf("tail grew with theta=%d", theta)
		}
		prevH, prevU, prevL = h, u, l
	}
}

func TestTailsCappedAtOne(t *testing.T) {
	if HoeffdingTail(0, 0.5) != 1 || HybridUpperTail(0, 0.5, 0.5) != 1 || HybridLowerTail(0, 0.5, 0.5) != 1 {
		t.Fatal("theta=0 should give trivial bound 1")
	}
	if HoeffdingTail(1, 1e-9) > 1 {
		t.Fatal("tail exceeded 1")
	}
}

func TestHoeffdingThetaDeliversError(t *testing.T) {
	// Empirical check: with θ = HoeffdingTheta(ζ, δ), the fraction of
	// trials where a Bernoulli mean misses by more than ζ must be ≲ δ.
	zeta, delta := 0.05, 0.1
	theta, err := HoeffdingTheta(zeta, delta)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	const trials = 2000
	p := 0.37
	misses := 0
	for trial := 0; trial < trials; trial++ {
		hits := 0
		for i := 0; i < theta; i++ {
			if r.Coin(p) {
				hits++
			}
		}
		if math.Abs(float64(hits)/float64(theta)-p) > zeta {
			misses++
		}
	}
	if frac := float64(misses) / trials; frac > delta {
		t.Fatalf("miss rate %.4f exceeds δ=%v (θ=%d)", frac, delta, theta)
	}
}

func TestHybridBoundDeliversError(t *testing.T) {
	// With θ = HybridTheta(ε, ζ, δ), Pr[X̄ ≥ (1+ε)µ+ζ or X̄ ≤ (1−ε)µ−ζ]
	// must be ≲ δ (sum of the two one-sided bounds ≤ 2·(δ/4)·2 < δ).
	eps, zeta, delta := 0.3, 0.02, 0.1
	theta, err := HybridTheta(eps, zeta, delta)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	const trials = 2000
	p := 0.2
	misses := 0
	for trial := 0; trial < trials; trial++ {
		hits := 0
		for i := 0; i < theta; i++ {
			if r.Coin(p) {
				hits++
			}
		}
		x := float64(hits) / float64(theta)
		if x >= (1+eps)*p+zeta || x <= (1-eps)*p-zeta {
			misses++
		}
	}
	if frac := float64(misses) / trials; frac > delta {
		t.Fatalf("miss rate %.4f exceeds δ=%v (θ=%d)", frac, delta, theta)
	}
}

func TestHybridVsAdditiveSampleEfficiency(t *testing.T) {
	// The point of §IV-A: to resolve a unit-scale judgement (niζ ≈ 1, i.e.
	// ζ ≈ 1/n), the additive bound needs Θ(n²) samples while the hybrid
	// bound needs Θ(n/ε). Check the ratio grows with n.
	delta := 0.01
	prevRatio := 0.0
	for _, n := range []int{100, 1000, 10000} {
		zeta := 1 / float64(n)
		add, err := HoeffdingTheta(zeta, delta)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := HybridTheta(0.1, zeta, delta)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(add) / float64(hyb)
		if ratio <= prevRatio {
			t.Fatalf("additive/hybrid sample ratio not growing: n=%d ratio=%.1f prev=%.1f",
				n, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio < 50 {
		t.Fatalf("hybrid bound should be ≫ cheaper at n=10000; ratio=%.1f", prevRatio)
	}
}

func TestConfidenceInterval(t *testing.T) {
	// Inverse relationship: HoeffdingTail(θ, CI(θ,δ)) ≈ δ.
	for _, theta := range []int{100, 1000, 10000} {
		delta := 0.05
		ci := ConfidenceInterval(theta, delta)
		tail := HoeffdingTail(theta, ci)
		if math.Abs(tail-delta) > 1e-9 {
			t.Fatalf("θ=%d: tail at CI = %v, want %v", theta, tail, delta)
		}
	}
	if ConfidenceInterval(0, 0.1) != 1 || ConfidenceInterval(10, 0) != 1 {
		t.Fatal("degenerate inputs should give trivial interval 1")
	}
}

func TestSpendGeometricSumsToDelta(t *testing.T) {
	delta := 0.1
	sum := 0.0
	for k := 1; k <= 100000; k++ {
		dk := SpendGeometric(delta, k)
		if dk <= 0 || dk > delta {
			t.Fatalf("δ_%d = %v outside (0, δ]", k, dk)
		}
		sum += dk
	}
	if sum > delta {
		t.Fatalf("Σδ_k = %v exceeds δ = %v", sum, delta)
	}
	if sum < 0.999*delta { // telescoping sum converges to δ
		t.Fatalf("Σδ_k = %v far below δ = %v", sum, delta)
	}
	if SpendGeometric(delta, 0) != 0 || SpendGeometric(0, 3) != 0 {
		t.Fatal("degenerate inputs should spend nothing")
	}
}

func TestAnytimeWidthShrinksWithTheta(t *testing.T) {
	prev := 2.0
	for _, theta := range []int{1, 10, 100, 1000, 100000} {
		w := AnytimeWidth(theta, 0.3, 0.05)
		if w >= prev {
			t.Fatalf("width grew at θ=%d: %v >= %v", theta, w, prev)
		}
		prev = w
	}
	if AnytimeWidth(0, 0.3, 0.05) != 1 || AnytimeWidth(10, 0.3, 0) != 1 {
		t.Fatal("degenerate inputs should give trivial width 1")
	}
}

func TestAnytimeWidthVarianceAdaptive(t *testing.T) {
	// At small coverage fractions the empirical-Bernstein branch must beat
	// the range-based Hoeffding width — the lever that makes the sequential
	// controller cheap for ADDATP.
	theta, delta := 100000, 0.05
	small := AnytimeWidth(theta, 0.01, delta)
	hoeffding := math.Sqrt(math.Log(4/delta) / (2 * float64(theta)))
	if small >= hoeffding/2 {
		t.Fatalf("width %v at frac=0.01 not variance-adaptive (Hoeffding %v)", small, hoeffding)
	}
	// Near frac=1/2 the variance is maximal and Hoeffding should win (the
	// min keeps the bound from degrading there).
	mid := AnytimeWidth(theta, 0.5, delta)
	if mid > hoeffding {
		t.Fatalf("width %v at frac=0.5 exceeds Hoeffding %v", mid, hoeffding)
	}
}

func TestAnytimeSequenceCovers(t *testing.T) {
	// Empirical anytime validity: draw Bernoulli batches doubling in size
	// and check the confidence sequence — width evaluated at
	// SpendGeometric(δ, k) on the k-th look — covers the true mean at
	// EVERY look, in all but ≲ δ of the trials.
	delta := 0.1
	p := 0.15
	r := rng.New(11)
	const trials = 1500
	misses := 0
	for trial := 0; trial < trials; trial++ {
		hits, n := 0, 0
		covered := true
		batch := 32
		for k := 1; k <= 8; k++ {
			for i := 0; i < batch; i++ {
				if r.Coin(p) {
					hits++
				}
			}
			n += batch
			batch *= 2
			frac := float64(hits) / float64(n)
			if math.Abs(frac-p) > AnytimeWidth(n, frac, SpendGeometric(delta, k)) {
				covered = false
			}
		}
		if !covered {
			misses++
		}
	}
	if frac := float64(misses) / trials; frac > delta {
		t.Fatalf("anytime miss rate %.4f exceeds δ=%v", frac, delta)
	}
}
