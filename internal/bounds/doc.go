// Package bounds implements the concentration inequalities the paper's
// (conf_icde_Huang0XSL20) sampling algorithms rest on:
//
//   - the Hoeffding inequality (Lemma 4), which certifies ADDATP's
//     additive-error decisions with the per-round sample size
//     θ = ln(8/δ)/(2ζ²) read off Algorithm 3 (HoeffdingTheta);
//   - the relative+additive martingale bounds (Lemma 7, eqs. 10–11),
//     which certify HATP's hybrid-error decisions with
//     θ = (1+ε/3)²/(2εζ)·ln(4/δ) read off Algorithm 4 (HybridTheta) —
//     linear in 1/ζ where Hoeffding is quadratic, the reason HATP's
//     refinement is cheap.
//
// The fixed-θ lemmas certify a decision only at their precomputed sample
// sizes. For the sequential sampling controller (the seq-policy session
// stepper in package adaptive) the package additionally provides
// anytime-valid confidence sequences:
// SpendGeometric splits a failure budget δ across an infinite sequence of
// looks (δ_k = δ/(k(k+1))), and AnytimeWidth evaluates a per-look
// two-sided half-width as the tighter of Hoeffding and empirical
// Bernstein — variance-adaptive where Lemma 4 is range-bound, which is
// what makes sequential ADDATP cheap at small coverage fractions.
//
// Tail evaluators (HoeffdingTail, HybridUpperTail, HybridLowerTail) and
// the inverse-Hoeffding half-width (ConfidenceInterval) support
// diagnostics and the EXPERIMENTS.md reporting.
package bounds
