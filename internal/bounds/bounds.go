package bounds

import (
	"fmt"
	"math"
)

// HoeffdingTail bounds Pr[|X̄ − E[X̄]| ≥ ζ] for θ i.i.d. samples in [0,1]:
// 2·exp(−2θζ²) (Lemma 4 with b−a = 1).
func HoeffdingTail(theta int, zeta float64) float64 {
	if theta <= 0 {
		return 1
	}
	return math.Min(1, 2*math.Exp(-2*float64(theta)*zeta*zeta))
}

// HoeffdingTheta returns the sample size used in ADDATP's inner loop
// (Algorithm 3, line 8): θ = ln(8/δ) / (2ζ²). The result is rounded up
// and at least 1.
func HoeffdingTheta(zeta, delta float64) (int, error) {
	if zeta <= 0 || zeta >= 1 {
		return 0, fmt.Errorf("bounds: additive error %v outside (0,1)", zeta)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("bounds: failure probability %v outside (0,1)", delta)
	}
	theta := math.Log(8/delta) / (2 * zeta * zeta)
	return ceilAtLeast1(theta), nil
}

// HybridUpperTail bounds Pr[X̄ ≥ (1+ε)µ + ζ] per Lemma 7, eq. (10):
// exp(−2θεζ / (1+ε/3)²).
func HybridUpperTail(theta int, eps, zeta float64) float64 {
	if theta <= 0 {
		return 1
	}
	e := 2 * float64(theta) * eps * zeta / ((1 + eps/3) * (1 + eps/3))
	return math.Min(1, math.Exp(-e))
}

// HybridLowerTail bounds Pr[X̄ ≤ (1−ε)µ − ζ] per Lemma 7, eq. (11):
// exp(−2θεζ).
func HybridLowerTail(theta int, eps, zeta float64) float64 {
	if theta <= 0 {
		return 1
	}
	return math.Min(1, math.Exp(-2*float64(theta)*eps*zeta))
}

// HybridTheta returns the sample size used in HATP's inner loop
// (Algorithm 4, line 8): θ = (1+ε/3)² / (2εζ) · ln(4/δ).
func HybridTheta(eps, zeta, delta float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("bounds: relative error %v outside (0,1)", eps)
	}
	if zeta <= 0 || zeta >= 1 {
		return 0, fmt.Errorf("bounds: additive error %v outside (0,1)", zeta)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("bounds: failure probability %v outside (0,1)", delta)
	}
	theta := (1 + eps/3) * (1 + eps/3) / (2 * eps * zeta) * math.Log(4/delta)
	return ceilAtLeast1(theta), nil
}

func ceilAtLeast1(x float64) int {
	v := int(math.Ceil(x))
	if v < 1 {
		v = 1
	}
	return v
}

// ConfidenceInterval returns the symmetric additive half-width ζ such that
// a mean of θ samples in [0,1] deviates by more than ζ with probability at
// most δ (inverse Hoeffding). Used by diagnostics and EXPERIMENTS.md
// reporting.
func ConfidenceInterval(theta int, delta float64) float64 {
	if theta <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(theta)))
}

// Anytime-valid confidence sequences for the sequential sampling
// controller. The fixed-θ loops of Algorithms 3/4 certify a decision only
// at the precomputed sample sizes HoeffdingTheta/HybridTheta; the
// sequential controller instead draws geometrically growing batches and
// asks, at every batch boundary k = 1, 2, ..., whether the current
// estimate already certifies the seed/stop decision. Validity at every
// boundary comes from spending the failure budget across looks
// (SpendGeometric) and evaluating a per-look confidence interval
// (AnytimeWidth) at the spent budget — a union bound over an infinite
// sequence of looks, Σ_k δ_k = δ, in place of the fixed policy's
// MaxRefine-based union bound.

// SpendGeometric returns δ_k, the share of the failure budget δ spent at
// the k-th look of an anytime-valid confidence sequence:
//
//	δ_k = δ / (k(k+1))   so   Σ_{k≥1} δ_k = δ  (telescoping).
//
// The k² decay matches geometrically growing batch sizes: sample size
// doubles per look, so ln(1/δ_k) grows only like 2·ln k while θ_k grows
// like 2^k, and the width penalty of late looks vanishes.
func SpendGeometric(delta float64, k int) float64 {
	if k < 1 || delta <= 0 {
		return 0
	}
	return delta / (float64(k) * float64(k+1))
}

// AnytimeWidth returns a two-sided confidence half-width on the mean of
// theta i.i.d. samples in [0,1] with observed mean frac, holding with
// probability ≥ 1−delta at this single look. It is the tighter of
//
//   - the Hoeffding width  √(ln(4/δ)/(2θ))  (Lemma 4, range-based), and
//   - the empirical-Bernstein width  √(2·v̂·ln(6/δ)/θ) + 3·ln(6/δ)/θ with
//     v̂ = frac(1−frac) (Audibert–Munos–Szepesvári; for the {0,1}-valued
//     coverage indicators v̂ is exactly the plug-in variance),
//
// each evaluated at δ/2 so the minimum is still valid by a union bound.
// The empirical-Bernstein branch is what makes the sequential controller
// cheap for ADDATP: coverage fractions are typically ≪ 1/2, so
// v̂ = frac(1−frac) shrinks the width by ~√(4·v̂) versus Hoeffding —
// variance adaptivity the fixed Lemma 4 schedule cannot exploit.
//
// Callers building a confidence sequence pass delta = SpendGeometric(δ, k)
// at the k-th look; the sequence then holds at every look simultaneously
// with probability ≥ 1−δ.
func AnytimeWidth(theta int, frac, delta float64) float64 {
	if theta <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	t := float64(theta)
	hoeffding := math.Sqrt(math.Log(4/delta) / (2 * t))
	v := frac * (1 - frac)
	if v < 0 {
		v = 0
	}
	logTerm := math.Log(6 / delta)
	bernstein := math.Sqrt(2*v*logTerm/t) + 3*logTerm/t
	return math.Min(1, math.Min(hoeffding, bernstein))
}
