package bounds

import (
	"fmt"
	"math"
)

// HoeffdingTail bounds Pr[|X̄ − E[X̄]| ≥ ζ] for θ i.i.d. samples in [0,1]:
// 2·exp(−2θζ²) (Lemma 4 with b−a = 1).
func HoeffdingTail(theta int, zeta float64) float64 {
	if theta <= 0 {
		return 1
	}
	return math.Min(1, 2*math.Exp(-2*float64(theta)*zeta*zeta))
}

// HoeffdingTheta returns the sample size used in ADDATP's inner loop
// (Algorithm 3, line 8): θ = ln(8/δ) / (2ζ²). The result is rounded up
// and at least 1.
func HoeffdingTheta(zeta, delta float64) (int, error) {
	if zeta <= 0 || zeta >= 1 {
		return 0, fmt.Errorf("bounds: additive error %v outside (0,1)", zeta)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("bounds: failure probability %v outside (0,1)", delta)
	}
	theta := math.Log(8/delta) / (2 * zeta * zeta)
	return ceilAtLeast1(theta), nil
}

// HybridUpperTail bounds Pr[X̄ ≥ (1+ε)µ + ζ] per Lemma 7, eq. (10):
// exp(−2θεζ / (1+ε/3)²).
func HybridUpperTail(theta int, eps, zeta float64) float64 {
	if theta <= 0 {
		return 1
	}
	e := 2 * float64(theta) * eps * zeta / ((1 + eps/3) * (1 + eps/3))
	return math.Min(1, math.Exp(-e))
}

// HybridLowerTail bounds Pr[X̄ ≤ (1−ε)µ − ζ] per Lemma 7, eq. (11):
// exp(−2θεζ).
func HybridLowerTail(theta int, eps, zeta float64) float64 {
	if theta <= 0 {
		return 1
	}
	return math.Min(1, math.Exp(-2*float64(theta)*eps*zeta))
}

// HybridTheta returns the sample size used in HATP's inner loop
// (Algorithm 4, line 8): θ = (1+ε/3)² / (2εζ) · ln(4/δ).
func HybridTheta(eps, zeta, delta float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("bounds: relative error %v outside (0,1)", eps)
	}
	if zeta <= 0 || zeta >= 1 {
		return 0, fmt.Errorf("bounds: additive error %v outside (0,1)", zeta)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("bounds: failure probability %v outside (0,1)", delta)
	}
	theta := (1 + eps/3) * (1 + eps/3) / (2 * eps * zeta) * math.Log(4/delta)
	return ceilAtLeast1(theta), nil
}

func ceilAtLeast1(x float64) int {
	v := int(math.Ceil(x))
	if v < 1 {
		v = 1
	}
	return v
}

// ConfidenceInterval returns the symmetric additive half-width ζ such that
// a mean of θ samples in [0,1] deviates by more than ζ with probability at
// most δ (inverse Hoeffding). Used by diagnostics and EXPERIMENTS.md
// reporting.
func ConfidenceInterval(theta int, delta float64) float64 {
	if theta <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(theta)))
}
