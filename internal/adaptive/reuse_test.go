package adaptive

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/rng"
)

// TestSamplingReuseMatchesWorkedExample: with cross-round reuse on
// (default), ADDATP and HATP must still reproduce the worked example's
// ground truth — profit 3 seeding {v2, v6} — while reporting nonzero
// reused-RR counts and drawing strictly fewer sets than the from-scratch
// NoReuse baseline.
func TestSamplingReuseMatchesWorkedExample(t *testing.T) {
	inst := fig1Instance(t)
	for _, algo := range []string{AlgoADDATP, AlgoHATP} {
		base := SamplingOptions{Zeta: 0.05, Eps: 0.2, Delta: 0.1, Workers: 1}

		reuseOpts := base
		withReuse, err := Run(inst, NewEnvironment(fig1Realization(inst.G)), algo,
			RunOptions{Sampling: reuseOpts}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		noReuseOpts := base
		noReuseOpts.NoReuse = true
		without, err := Run(inst, NewEnvironment(fig1Realization(inst.G)), algo,
			RunOptions{Sampling: noReuseOpts}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}

		if withReuse.Profit != 3 || withReuse.Spread != 6 {
			t.Fatalf("%s with reuse: profit %.2f spread %d, want 3 and 6 (seeds %v)",
				algo, withReuse.Profit, withReuse.Spread, withReuse.Seeds)
		}
		if withReuse.Profit != without.Profit {
			t.Fatalf("%s profit changed under reuse: %.2f vs %.2f", algo, withReuse.Profit, without.Profit)
		}
		if withReuse.RRReused <= 0 {
			t.Fatalf("%s reported no reused RR sets", algo)
		}
		if without.RRReused != 0 {
			t.Fatalf("%s NoReuse reported %d reused sets", algo, without.RRReused)
		}
		if withReuse.RRDrawn >= without.RRDrawn {
			t.Fatalf("%s drew %d with reuse vs %d without; reuse saved nothing",
				algo, withReuse.RRDrawn, without.RRDrawn)
		}
		if withReuse.RRPeakBytes <= 0 {
			t.Fatalf("%s peak RR bytes %d", algo, withReuse.RRPeakBytes)
		}
	}
}

// TestSamplingReuseDeterministicOnGenerated: reuse must preserve seeded
// determinism and report nonzero reuse on a generated instance (the
// nethept-style acceptance check, shrunk to test size).
func TestSamplingReuseDeterministicOnGenerated(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.PrefAttach, N: 400, AvgDeg: 5, Directed: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := Prepare(g, cascade.IC, Setup{K: 10, CostSetting: cost.DegreeProportional, LBTheta: 5000, Seed: 23, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Sampling: SamplingOptions{Workers: 2}}
	for _, algo := range []string{AlgoADDATP, AlgoHATP} {
		a, err := RunExperiment(inst, algo, 2, opts, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunExperiment(inst, algo, 2, opts, 5)
		if err != nil {
			t.Fatal(err)
		}
		if a.AvgProfit != b.AvgProfit || a.RRDrawn != b.RRDrawn ||
			a.RRReused != b.RRReused || a.RRPeakBytes != b.RRPeakBytes {
			t.Fatalf("%s not deterministic: profit %v/%v rr %d/%d reused %d/%d peak %d/%d",
				algo, a.AvgProfit, b.AvgProfit, a.RRDrawn, b.RRDrawn,
				a.RRReused, b.RRReused, a.RRPeakBytes, b.RRPeakBytes)
		}
		if a.RRReused <= 0 {
			t.Fatalf("%s reused no RR sets on a multi-round instance", algo)
		}
	}
}
