package adaptive

import (
	"repro/internal/bounds"
	"repro/internal/rng"
)

// hybridRegime is HATP's concentration regime: relative error ε plus
// additive error ζ, certified by the martingale bounds of Lemma 7 with
// the per-round sample size θ = (1+ε/3)²/(2εζ)·ln(4/δ) of Algorithm 4.
// Because θ scales as 1/ζ rather than ADDATP's 1/ζ², refinement is far
// cheaper at small ζ — the paper's headline efficiency gain.
//
// With probability ≥ 1−δ the coverage fraction X̄ satisfies
// (1−ε)µ − ζ < X̄ < (1+ε)µ + ζ, hence µ ∈ ((X̄−ζ)/(1+ε), (X̄+ζ)/(1−ε)).
type hybridRegime struct{ eps float64 }

func (hybridRegime) name() string { return "hatp" }

func (h hybridRegime) theta(zeta, delta float64) (int, error) {
	return bounds.HybridTheta(h.eps, zeta, delta)
}

func (h hybridRegime) lower(frac float64, nAlive int, zeta float64) float64 {
	return clampSpread((frac-zeta)/(1+h.eps)*float64(nAlive), nAlive)
}

func (h hybridRegime) upper(frac float64, nAlive int, zeta float64) float64 {
	return clampSpread((frac+zeta)/(1-h.eps)*float64(nAlive), nAlive)
}

// RunHATP executes Algorithm 4: the same adaptive round structure as
// ADDATP but with hybrid relative+additive error control, trading a
// slightly looser interval for a per-round sample size linear in 1/ζ.
func RunHATP(inst *Instance, env *Environment, opts SamplingOptions, r *rng.RNG) (*RunResult, error) {
	opts.setDefaults()
	return runSampling(inst, env, hybridRegime{eps: opts.Eps}, opts, r)
}
