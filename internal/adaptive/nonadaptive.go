package adaptive

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// RunAllTargets seeds the entire target set T upfront — the classic
// nonadaptive target seeding the paper's worked example compares against
// (profit 2.5 vs the adaptive 3 on Fig. 1's realization).
func RunAllTargets(inst *Instance, env *Environment) (*RunResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return newShell(inst, AlgoAllTargets, RunOptions{}, nil, &allTargetsStepper{}).Drive(env)
}

// NonadaptiveGreedySelect picks a subset S ⊆ T before any observation:
// on one RR collection over the full graph it greedily adds the target
// with the largest estimated marginal profit n·CovR(u|S)/θ − c(u),
// stopping when no remaining target's estimated marginal profit is
// positive. theta is the RR sample size.
func NonadaptiveGreedySelect(inst *Instance, theta int, r *rng.RNG, workers int) ([]graph.NodeID, *ris.Collection, int64, error) {
	if err := inst.Validate(); err != nil {
		return nil, nil, 0, err
	}
	if theta <= 0 {
		return nil, nil, 0, fmt.Errorf("adaptive: nonadaptive greedy needs theta > 0, got %d", theta)
	}
	res := graph.NewResidual(inst.G)
	start := time.Now()
	col := ris.GenerateParallel(res, inst.Model, r, theta, workers)
	samplingNS := time.Since(start).Nanoseconds()
	if col.Len() == 0 {
		return nil, col, samplingNS, nil
	}
	n := float64(inst.G.N())
	perCov := n / float64(col.Len()) // spread per newly covered RR set
	marks := col.NewMarks()
	remaining := append([]graph.NodeID(nil), inst.Targets...)
	var chosen []graph.NodeID
	for len(remaining) > 0 {
		best := -1
		bestProfit := 0.0
		for i, u := range remaining {
			p := float64(marks.Marginal(u))*perCov - inst.Costs.Cost(u)
			if p > bestProfit || (p == bestProfit && best >= 0 && inst.G.Before(u, remaining[best])) {
				best, bestProfit = i, p
			}
		}
		if best < 0 || bestProfit <= 0 {
			break
		}
		marks.Cover(remaining[best])
		chosen = append(chosen, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return chosen, col, samplingNS, nil
}

// RunNonadaptiveGreedy selects a seed set with NonadaptiveGreedySelect and
// evaluates it on env's realization.
func RunNonadaptiveGreedy(inst *Instance, env *Environment, theta int, r *rng.RNG, workers int) (*RunResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	step := &nsgStepper{theta: theta, workers: workers}
	return newShell(inst, AlgoNSG, RunOptions{}, r, step).Drive(env)
}
