package adaptive

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// nethept005Instance prepares the nethept-s fixture at scale 0.05 exactly
// the way `repro run --dataset nethept-s --scale 0.05 --seed 1` does,
// pinned to 2 workers for cross-machine determinism.
func nethept005Instance(t *testing.T, sampler string) *Instance {
	t.Helper()
	spec, err := gen.Lookup("nethept-s")
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Generate(spec.Config(0.05))
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := Prepare(g, cascade.IC, Setup{
		K: 50, CostSetting: cost.DegreeProportional, Seed: 1, Workers: 2, Sampler: sampler,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestFixedPolicyMatchesPreRefactorGolden pins `--sampler fixed` to the
// pre-controller implementation: the seed sequences, RR draw counts,
// reuse counts and fallbacks below were recorded from the attempt-loop
// code on main immediately before the sequential controller landed
// (nethept-s scale 0.05, Prepare seed 1, experiment seed 101, 2 workers).
// Any drift here means the fixed path is no longer the paper-faithful
// baseline the A/B comparisons claim it is.
func TestFixedPolicyMatchesPreRefactorGolden(t *testing.T) {
	inst := nethept005Instance(t, PolicyFixed)
	golden := map[string]struct {
		seeds     [][]graph.NodeID
		rrDrawn   []int64
		rrReused  []int64
		fallbacks []int
	}{
		AlgoADDATP: {
			seeds: [][]graph.NodeID{
				{3, 4, 16, 2, 9, 40, 44, 18, 55, 79, 1, 7, 139, 141, 171, 334, 154, 235, 232, 179, 234, 38, 86},
				{3, 4, 2, 65, 16, 7, 38, 86, 1, 139, 141, 12, 334, 79, 154, 32, 232, 11, 234, 44, 168, 171, 115, 671, 119, 17, 80},
			},
			rrDrawn:   []int64{809371, 827241},
			rrReused:  []int64{12580192, 15264002},
			fallbacks: []int{13, 16},
		},
		AlgoHATP: {
			seeds: [][]graph.NodeID{
				{3, 4, 18, 141, 9, 44, 55, 139, 7, 115, 171, 38, 79, 86, 1, 154, 232, 19},
				{4, 18, 39, 3, 55, 1, 12, 86, 32, 171, 14, 168, 6, 334, 139, 65, 179, 119, 44, 17, 25, 79, 154, 234, 115, 69, 235},
			},
			rrDrawn:   []int64{14690, 14219},
			rrReused:  []int64{264602, 384021},
			fallbacks: []int{12, 17},
		},
	}
	for algo, want := range golden {
		rep, err := RunExperiment(inst, algo, 2, RunOptions{
			Sampling: SamplingOptions{Policy: PolicyFixed, Workers: 2},
		}, 101)
		if err != nil {
			t.Fatal(err)
		}
		for i, run := range rep.Runs {
			if len(run.Seeds) != len(want.seeds[i]) {
				t.Fatalf("%s run %d: %d seeds %v, golden %v", algo, i, len(run.Seeds), run.Seeds, want.seeds[i])
			}
			for j := range run.Seeds {
				if run.Seeds[j] != want.seeds[i][j] {
					t.Fatalf("%s run %d seed %d: %v, golden %v", algo, i, j, run.Seeds, want.seeds[i])
				}
			}
			if run.RRDrawn != want.rrDrawn[i] || run.RRReused != want.rrReused[i] || run.Fallbacks != want.fallbacks[i] {
				t.Fatalf("%s run %d: drawn=%d reused=%d fallbacks=%d, golden %d/%d/%d",
					algo, i, run.RRDrawn, run.RRReused, run.Fallbacks,
					want.rrDrawn[i], want.rrReused[i], want.fallbacks[i])
			}
			if run.Sampler != PolicyFixed {
				t.Fatalf("%s run %d labeled %q", algo, i, run.Sampler)
			}
		}
	}
}

// TestSequentialDrawsFewerThanFixed is the nethept-s guard for the
// controller's reason to exist: on the same prepared instance and the
// same realization pool, the sequential policy must generate strictly
// fewer RR sets than the fixed attempt loop for both sampling algorithms
// — by a wide margin for ADDATP, whose Hoeffding θ ∝ 1/ζ² is what the
// anytime empirical-Bernstein bound short-circuits.
func TestSequentialDrawsFewerThanFixed(t *testing.T) {
	inst := nethept005Instance(t, PolicySequential)
	for _, algo := range []string{AlgoADDATP, AlgoHATP} {
		var drawn [2]int64
		var profit [2]float64
		for i, policy := range []string{PolicyFixed, PolicySequential} {
			rep, err := RunExperiment(inst, algo, 2, RunOptions{
				Sampling: SamplingOptions{Policy: policy, Workers: 2},
			}, 101)
			if err != nil {
				t.Fatal(err)
			}
			drawn[i], profit[i] = rep.RRDrawn, rep.AvgProfit
		}
		if drawn[1] >= drawn[0] {
			t.Fatalf("%s: sequential drew %d RR sets, fixed %d", algo, drawn[1], drawn[0])
		}
		if algo == AlgoADDATP && drawn[1]*3 > drawn[0] {
			t.Fatalf("ADDATP: sequential drew %d vs fixed %d, want ≥ 3× reduction", drawn[1], drawn[0])
		}
		// The policies may disagree on borderline rounds, but not on the
		// run's economics: realized profit must stay in the same range.
		if profit[1] < profit[0]/2 || profit[1] > profit[0]*2 {
			t.Fatalf("%s: sequential profit %.2f far from fixed %.2f", algo, profit[1], profit[0])
		}
	}
}

// TestSequentialTelemetryInvariants checks the new counters the
// controller threads into RunResult: looks happen, batches are a subset
// of looks, every round resolves as either a certification or a
// fallback, and the sampler label round-trips.
func TestSequentialTelemetryInvariants(t *testing.T) {
	inst := fig1Instance(t)
	run, err := RunADDATP(inst, NewEnvironment(fig1Realization(inst.G)), SamplingOptions{Workers: 1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if run.Sampler != PolicySequential {
		t.Fatalf("default sampler %q, want %q", run.Sampler, PolicySequential)
	}
	if run.Attempts <= 0 || run.RRBatches <= 0 {
		t.Fatalf("no looks/batches recorded: %+v", run)
	}
	if run.RRBatches > run.Attempts {
		t.Fatalf("more batches (%d) than looks (%d)", run.RRBatches, run.Attempts)
	}
	decisions := run.CertifiedEarly + run.Fallbacks
	// Every seeding round plus the final stop is one decision; decisions
	// certified exactly at the frontier are counted in neither bucket.
	if decisions > run.Rounds+1 {
		t.Fatalf("decisions %d exceed rounds+1 = %d", decisions, run.Rounds+1)
	}
	if run.CertifiedEarly == 0 {
		t.Fatalf("worked example should certify its clear-cut rounds early: %+v", run)
	}
}
