package adaptive

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/graph"
)

// Instance is one ATP problem: a weighted graph, a diffusion model, the
// target set T, and the per-target seeding costs.
type Instance struct {
	G       *graph.Graph
	Model   cascade.Model
	Targets []graph.NodeID
	Costs   *cost.Model
}

// Validate checks the instance is runnable.
func (inst *Instance) Validate() error {
	if inst.G == nil {
		return fmt.Errorf("adaptive: nil graph")
	}
	if len(inst.Targets) == 0 {
		return fmt.Errorf("adaptive: empty target set")
	}
	n := graph.NodeID(inst.G.N())
	for _, u := range inst.Targets {
		if u < 0 || u >= n {
			return fmt.Errorf("adaptive: target %d outside [0,%d)", u, n)
		}
	}
	if inst.Costs == nil {
		return fmt.Errorf("adaptive: nil cost model")
	}
	return nil
}

// Environment reveals one realization φ to an adaptive policy seed by
// seed: Observe(u) returns the nodes newly activated by seeding u on the
// current residual graph and deletes them, exactly the paper's feedback
// model (full-adoption feedback).
type Environment struct {
	rz        *cascade.Realization
	res       *graph.Residual
	activated int
}

// NewEnvironment wraps a sampled realization.
func NewEnvironment(rz *cascade.Realization) *Environment {
	return &Environment{rz: rz, res: graph.NewResidual(rz.Graph())}
}

// NewEnvironmentAt wraps a realization mid-campaign: res is the residual
// after the seeds observed so far and activated their realized spread.
// The checkpoint-resume path uses it (with Session.CloneResidual) to
// rebuild a simulated environment in lockstep with a restored session.
func NewEnvironmentAt(rz *cascade.Realization, res *graph.Residual, activated int) *Environment {
	return &Environment{rz: rz, res: res, activated: activated}
}

// Residual returns the current residual view G_i. Policies may read it
// (and sample RR sets on it) but must mutate it only through Observe.
func (e *Environment) Residual() *graph.Residual { return e.res }

// Observe seeds u, returns the activated set A(u) on the residual graph
// (u included if alive), and removes it. Seeding a dead node activates
// nothing.
func (e *Environment) Observe(u graph.NodeID) []graph.NodeID {
	a := cascade.Activated(e.rz, e.res, []graph.NodeID{u})
	e.res.RemoveAll(a)
	e.activated += len(a)
	return a
}

// Activated returns the total number of nodes activated so far — the
// realized spread I_φ(S) of everything seeded through this environment.
func (e *Environment) Activated() int { return e.activated }

// RunResult reports one policy run on one realization.
type RunResult struct {
	Algorithm string         `json:"algorithm"`
	Seeds     []graph.NodeID `json:"seeds"`  // in seeding order
	Rounds    int            `json:"rounds"` // seeding rounds (== len(Seeds))
	Spread    int            `json:"spread"` // realized I_φ(S)
	Cost      float64        `json:"cost"`
	Profit    float64        `json:"profit"` // Spread − Cost

	// Sampling accounting (zero for exact-oracle ADG).
	RRDrawn     int64 `json:"rr_drawn"`
	RRRequested int64 `json:"rr_requested"`
	// RRReused counts draws avoided by cross-round reuse: RR sets that
	// survived validity filtering and were counted toward a later θ target
	// instead of being regenerated.
	RRReused int64 `json:"rr_reused"`
	// RRPeakBytes is the largest heap footprint of the RR collection
	// (arena + offsets + roots + inverted index); deterministic per seed.
	RRPeakBytes int64 `json:"rr_peak_bytes"`
	// SamplingNS is the wall time spent inside RR-set generation calls;
	// RRDrawn/SamplingNS is the run's RR throughput.
	SamplingNS int64 `json:"sampling_ns"`
	// RRVisits and RREdgeTouches count node visits and in-edge
	// examinations inside RR expansion — the sampler's exact work
	// counters behind the bytes-per-edge-touch traffic model in the
	// benchmark tables (each visit reads one 16-byte metadata entry and
	// one visited-mask byte; each touch one 4-byte adjacency word).
	// Zero for policies that sample outside a pool the run can observe
	// (nonadaptive one-shot selection) and for exact oracles.
	RRVisits      int64 `json:"rr_visits"`
	RREdgeTouches int64 `json:"rr_edge_touches"`
	// Fallbacks counts rounds where the refinement budget ran out and the
	// decision fell back to the point estimate (sampling policies only).
	Fallbacks int `json:"fallbacks"`
	// Sampler names the stopping-rule policy that drove the run
	// (PolicySequential or PolicyFixed); empty for non-sampling policies.
	Sampler string `json:"sampler,omitempty"`
	// Attempts counts stopping-rule evaluations: fixed-θ attempts under
	// PolicyFixed, batch-boundary looks under PolicySequential.
	Attempts int `json:"attempts"`
	// RRBatches counts RR-generator invocations (batches actually drawn);
	// Attempts − RRBatches looks were answered from carried-over sets.
	RRBatches int `json:"rr_batches"`
	// CertifiedEarly counts rounds whose seed/stop decision was certified
	// strictly below the policy's sampling frontier (the θ cap for
	// sequential, the MaxRefine-th attempt for fixed) — the rounds where
	// sequential stopping saves draws.
	CertifiedEarly int `json:"certified_early"`
}

func (inst *Instance) finish(algo string, seeds []graph.NodeID, env *Environment) *RunResult {
	return inst.finishResult(algo, seeds, env.Activated())
}

// finishResult builds the outcome skeleton from the committed seeds and
// the realized spread — the environment-free form Session.Result uses
// (a session tracks its own spread instead of holding the environment).
func (inst *Instance) finishResult(algo string, seeds []graph.NodeID, spread int) *RunResult {
	c := inst.Costs.Total(seeds)
	return &RunResult{
		Algorithm: algo,
		Seeds:     append([]graph.NodeID(nil), seeds...),
		Rounds:    len(seeds),
		Spread:    spread,
		Cost:      c,
		Profit:    float64(spread) - c,
	}
}

// aliveTargets filters the targets still alive in res, preserving order.
func (inst *Instance) aliveTargets(res *graph.Residual, buf []graph.NodeID) []graph.NodeID {
	buf = buf[:0]
	for _, u := range inst.Targets {
		if res.Alive(u) {
			buf = append(buf, u)
		}
	}
	return buf
}
