package adaptive

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// ltFig1Graph is the Fig. 1 topology with in-probabilities rescaled so
// every node's incoming weights sum to ≤ 1 — the LT validity condition
// Fig. 1's IC weights violate (v3's in-edges sum to 1.4). The structure
// keeps the two communities of the worked example: v2 drives {v3, v4},
// v6 drives {v5, v7}.
func ltFig1Graph() *graph.Graph {
	return graph.MustFromEdges(7, true, []graph.Edge{
		{From: 0, To: 1, P: 0.4},
		{From: 1, To: 2, P: 0.5},
		{From: 1, To: 3, P: 0.7},
		{From: 3, To: 2, P: 0.4},
		{From: 2, To: 4, P: 0.5},
		{From: 4, To: 5, P: 0.3},
		{From: 5, To: 4, P: 0.4},
		{From: 5, To: 6, P: 0.6},
		{From: 6, To: 0, P: 0.2},
		{From: 4, To: 0, P: 0.7},
	})
}

// ltFig1Realization is the LT worked example's possible world in the
// triggering characterization (each node picks at most one in-parent):
// v3 and v4 pick v2, v5 and v7 pick v6, everyone else picks nothing. So
// seeding v2 activates {v2,v3,v4} and seeding v6 activates {v6,v5,v7},
// mirroring the paper's IC worked example.
func ltFig1Realization(g *graph.Graph) *cascade.Realization {
	return cascade.FromLiveEdges(g, []graph.Edge{
		{From: 1, To: 2}, // v3 picks v2
		{From: 1, To: 3}, // v4 picks v2
		{From: 5, To: 4}, // v5 picks v6
		{From: 5, To: 6}, // v7 picks v6
	})
}

// ltFig1Instance is the LT worked example's ATP instance: the same
// T = {v1, v2, v6} with uniform costs 1.5 (c(T) = 4.5) as the IC worked
// example, under the LT model.
func ltFig1Instance(t *testing.T) *Instance {
	t.Helper()
	g := ltFig1Graph()
	targets := []graph.NodeID{0, 1, 5}
	costs, err := cost.Assign(g, targets, 4.5, cost.Uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{G: g, Model: cascade.LT, Targets: targets, Costs: costs}
}

// TestADGWorkedExampleLT is the LT half of the worked example: adaptive
// greedy against the exact LT enumerator (oracle.ExactLT) seeds {v2, v6}
// for realized profit 3, beating the nonadaptive seed-all profit of 2.5
// on the same realization. Exact expected marginal profits on the full
// graph are ≈ 1.96 (v2), ≈ 1.30 (v6), ≈ 0.75 (v1); after observing v2's
// and v6's cascades only v1 is alive with expected spread 1 < 1.5, so
// the run stops at two seeds.
func TestADGWorkedExampleLT(t *testing.T) {
	inst := ltFig1Instance(t)
	exact, err := oracle.NewExactLT(inst.G)
	if err != nil {
		t.Fatal(err)
	}
	adg, err := RunADG(inst, NewEnvironment(ltFig1Realization(inst.G)), exact)
	if err != nil {
		t.Fatal(err)
	}
	if adg.Profit != 3 || adg.Spread != 6 {
		t.Fatalf("LT ADG profit %.2f spread %d, want 3 and 6 (run %+v)", adg.Profit, adg.Spread, adg)
	}
	got := seedSet(adg.Seeds)
	if len(got) != 2 || !got[1] || !got[5] {
		t.Fatalf("LT ADG seeded %v, want {v2, v6} = {1, 5}", adg.Seeds)
	}

	non, err := RunAllTargets(inst, NewEnvironment(ltFig1Realization(inst.G)))
	if err != nil {
		t.Fatal(err)
	}
	if non.Profit != 2.5 || non.Spread != 7 {
		t.Fatalf("LT all-targets profit %.2f spread %d, want 2.5 and 7", non.Profit, non.Spread)
	}
	if adg.Profit <= non.Profit {
		t.Fatalf("LT adaptive profit %.2f not above nonadaptive %.2f", adg.Profit, non.Profit)
	}
}

// TestRunADGSelectsExactLTOracle: Run must route small LT instances to
// the exact LT enumerator (zero RR draws), the way it routes small IC
// instances to the per-edge-coin enumerator.
func TestRunADGSelectsExactLTOracle(t *testing.T) {
	inst := ltFig1Instance(t)
	run, err := Run(inst, NewEnvironment(ltFig1Realization(inst.G)), AlgoADG, RunOptions{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if run.RRDrawn != 0 {
		t.Fatalf("small LT ADG drew %d RR sets; should use the exact oracle", run.RRDrawn)
	}
	if run.Profit != 3 {
		t.Fatalf("LT ADG through Run: profit %.2f, want 3 (seeds %v)", run.Profit, run.Seeds)
	}
}

// TestSamplingPoliciesMatchExactLT cross-validates the RR-sampling
// policies under the LT model against the exact ground truth: both
// controllers of ADDATP and HATP must reproduce the worked example's
// profit 3 seeding exactly {v2, v6}.
func TestSamplingPoliciesMatchExactLT(t *testing.T) {
	inst := ltFig1Instance(t)
	for _, policy := range SamplingPolicies {
		opts := SamplingOptions{Policy: policy, Zeta: 0.05, Eps: 0.2, Delta: 0.1, Workers: 1}
		for _, algo := range []string{AlgoADDATP, AlgoHATP} {
			run, err := Run(inst, NewEnvironment(ltFig1Realization(inst.G)), algo, RunOptions{Sampling: opts}, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			if run.Profit != 3 || run.Spread != 6 {
				t.Fatalf("%s/%s LT profit %.2f spread %d, want 3 and 6 (seeds %v)",
					algo, policy, run.Profit, run.Spread, run.Seeds)
			}
			got := seedSet(run.Seeds)
			if len(got) != 2 || !got[1] || !got[5] {
				t.Fatalf("%s/%s LT seeded %v, want {1, 5}", algo, policy, run.Seeds)
			}
		}
	}
}
