package adaptive

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/rng"
)

// renumberPair generates the same synthetic WC graph twice, once with the
// identity numbering and once degree-renumbered. Same gen seed, so the two
// are the same logical graph in original-space terms.
func renumberPair(t *testing.T) (id, ren *graph.Graph) {
	t.Helper()
	cfg := gen.Config{Model: gen.PrefAttach, N: 250, AvgDeg: 5, Directed: true, Seed: 99}
	var err error
	if id, err = gen.Generate(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.DegreeOrder = true
	if ren, err = gen.Generate(cfg); err != nil {
		t.Fatal(err)
	}
	if !ren.Renumbered() || id.Renumbered() {
		t.Fatalf("expected exactly the second build renumbered")
	}
	return id, ren
}

// toOriginal maps a node slice out of g's internal space.
func toOriginal(g *graph.Graph, nodes []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(nodes))
	for i, u := range nodes {
		out[i] = g.OriginalID(u)
	}
	return out
}

// TestIMMRenumberInvariant runs same-seed IMM on the identity and the
// degree-renumbered build of one graph: the selected seeds must map back
// to identical original NodeIDs in identical order, with identical
// certificates — the RR sampler and CELF tie-breaking are exercised
// end-to-end through the permutation.
func TestIMMRenumberInvariant(t *testing.T) {
	id, ren := renumberPair(t)
	opts := imm.Options{Eps: 0.5, Model: cascade.IC, Seed: 11, Workers: 1}
	a, err := imm.Select(id, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := imm.Select(ren, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := toOriginal(ren, b.Seeds)
	if len(got) != len(a.Seeds) {
		t.Fatalf("seed counts differ: %v vs %v", a.Seeds, got)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != got[i] {
			t.Fatalf("seed %d: identity %v, renumbered-mapped %v", i, a.Seeds, got)
		}
	}
	if a.SpreadLower != b.SpreadLower || a.Theta != b.Theta || a.TotalRR != b.TotalRR {
		t.Fatalf("certificates differ: (%v,%d,%d) vs (%v,%d,%d)",
			a.SpreadLower, a.Theta, a.TotalRR, b.SpreadLower, b.Theta, b.TotalRR)
	}
}

// TestADDATPRenumberInvariant is the round-trip property test of the
// renumbering contract: a full same-seed ADDATP campaign — same targets,
// uniform costs, and the same fixed realization, all expressed in
// original-space terms — must realize identical profits on both
// numberings, seeding nodes that map back to identical original NodeIDs.
func TestADDATPRenumberInvariant(t *testing.T) {
	id, ren := renumberPair(t)

	// Targets: IMM on the identity graph (original space), mapped into
	// each build's internal space. Uniform costs are permutation-invariant.
	immRes, err := imm.Select(id, 8, imm.Options{Eps: 0.5, Model: cascade.IC, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	targets := immRes.Seeds
	budget := 1.5 * float64(len(targets))

	// One realization, sampled edge-by-edge in original space so both
	// builds observe the same possible world.
	var live []graph.Edge
	cr := rng.New(42)
	for _, e := range id.Edges() {
		if cr.Float64() < e.P {
			live = append(live, graph.Edge{From: e.From, To: e.To})
		}
	}

	run := func(g *graph.Graph) *RunResult {
		t.Helper()
		tg := make([]graph.NodeID, len(targets))
		lv := make([]graph.Edge, len(live))
		for i, u := range targets {
			tg[i] = g.InternalID(u)
		}
		for i, e := range live {
			lv[i] = graph.Edge{From: g.InternalID(e.From), To: g.InternalID(e.To)}
		}
		costs, err := cost.Assign(g, tg, budget, cost.Uniform, nil)
		if err != nil {
			t.Fatal(err)
		}
		inst := &Instance{G: g, Model: cascade.IC, Targets: tg, Costs: costs}
		rz := cascade.FromLiveEdges(g, lv)
		res, err := Run(inst, NewEnvironment(rz), AlgoADDATP,
			RunOptions{Sampling: SamplingOptions{Zeta: 0.1, Delta: 0.1, Workers: 1}}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a := run(id)
	b := run(ren)
	if a.Profit != b.Profit || a.Spread != b.Spread || a.Cost != b.Cost {
		t.Fatalf("outcomes differ: profit %v/%v spread %d/%d cost %v/%v",
			a.Profit, b.Profit, a.Spread, b.Spread, a.Cost, b.Cost)
	}
	gotA, gotB := a.Seeds, toOriginal(ren, b.Seeds)
	if len(gotA) != len(gotB) {
		t.Fatalf("seed counts differ: %v vs %v", gotA, gotB)
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("seed %d: identity %v, renumbered-mapped %v", i, gotA, gotB)
		}
	}
	if a.RRDrawn != b.RRDrawn || a.Rounds != b.Rounds {
		t.Fatalf("sampling trajectories differ: drawn %d/%d rounds %d/%d",
			a.RRDrawn, b.RRDrawn, a.Rounds, b.Rounds)
	}
}
