package adaptive

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/ris"
	"repro/internal/rng"
)

// Algorithm names accepted by Run and the repro CLI.
const (
	AlgoADG        = "adg"
	AlgoADDATP     = "addatp"
	AlgoHATP       = "hatp"
	AlgoNSG        = "nsg"
	AlgoAllTargets = "all-targets"
)

// Algorithms lists every runnable policy in CLI order.
var Algorithms = []string{AlgoADG, AlgoADDATP, AlgoHATP, AlgoNSG, AlgoAllTargets}

// RunOptions bundles the per-algorithm knobs for Run.
type RunOptions struct {
	Sampling SamplingOptions
	// ADGTheta is the RR sample size of ADG's RIS oracle (per residual
	// version); default 10_000. On graphs small enough for the exact
	// oracle (m ≤ oracle.MaxExactEdges) ADG uses exact spreads instead.
	ADGTheta int
	// NSGTheta is the nonadaptive greedy's one-shot sample size; default
	// 20_000.
	NSGTheta int
	// Interrupt, when non-nil, is polled by RunExperiment before every
	// realization, by the session before every round, and by the RR draw
	// loops every interrupt stride (see ris.SamplerPool.SetInterrupt); a
	// non-nil return aborts the run with that error. Sweep cells use it
	// for wall-clock budgets and SIGINT checkpointing, so a cell overruns
	// its budget by at most a stride of RR draws, not a realization.
	Interrupt func() error
	// Batcher, when non-nil, donates warm RR storage (collection arenas,
	// coverage counts, sampler-pool scratch) to the run. Only the
	// sequential sampling policy draws through a Batcher; other algorithms
	// ignore it. It is Reset before use, so results are independent of
	// what it previously held — the service instance registry uses this to
	// run successive campaigns with zero steady-state allocation.
	Batcher *ris.Batcher
}

func (o *RunOptions) setDefaults() {
	if o.ADGTheta <= 0 {
		o.ADGTheta = 10_000
	}
	if o.NSGTheta <= 0 {
		o.NSGTheta = 20_000
	}
}

// Run executes one named algorithm on one realization environment: a
// NewSession driven to completion. Outputs are bit-identical to the
// pre-Session batch implementations (same RNG consumption order, same
// per-round decisions).
func Run(inst *Instance, env *Environment, algo string, opts RunOptions, r *rng.RNG) (*RunResult, error) {
	s, err := NewSession(inst, algo, opts, r)
	if err != nil {
		return nil, err
	}
	return s.Drive(env)
}

// Report aggregates an algorithm's runs over several realizations of the
// same instance — the paper's methodology of averaging a fixed pool of
// realizations per configuration.
type Report struct {
	Algorithm    string  `json:"algorithm"`
	Realizations int     `json:"realizations"`
	AvgProfit    float64 `json:"avg_profit"`
	AvgSpread    float64 `json:"avg_spread"`
	AvgCost      float64 `json:"avg_cost"`
	AvgRounds    float64 `json:"avg_rounds"`
	MinProfit    float64 `json:"min_profit"`
	MaxProfit    float64 `json:"max_profit"`
	RRDrawn      int64   `json:"rr_drawn"`
	RRRequested  int64   `json:"rr_requested"`
	RRReused     int64   `json:"rr_reused"`
	RRPeakBytes  int64   `json:"rr_peak_bytes"` // max over realizations
	SamplingNS   int64   `json:"sampling_ns"`   // total across realizations
	// Sampler work counters summed across realizations (see RunResult);
	// RRVisits and RREdgeTouches feed the traffic model in reports.
	RRVisits      int64 `json:"rr_visits"`
	RREdgeTouches int64 `json:"rr_edge_touches"`
	Fallbacks     int   `json:"fallbacks"`
	// Stopping-rule telemetry, summed across realizations (see RunResult).
	Attempts       int    `json:"attempts"`
	RRBatches      int    `json:"rr_batches"`
	CertifiedEarly int    `json:"certified_early"`
	Sampler        string `json:"sampler,omitempty"`
	Runs           []*RunResult
}

// Add folds one realization's result into the report: the run is
// appended, the sum-typed aggregates accumulate, and the extrema update.
// Call Finalize once after the last Add to turn the sums into averages.
func (rep *Report) Add(run *RunResult) {
	first := len(rep.Runs) == 0
	rep.Runs = append(rep.Runs, run)
	rep.AvgProfit += run.Profit
	rep.AvgSpread += float64(run.Spread)
	rep.AvgCost += run.Cost
	rep.AvgRounds += float64(run.Rounds)
	rep.RRDrawn += run.RRDrawn
	rep.RRRequested += run.RRRequested
	rep.RRReused += run.RRReused
	rep.SamplingNS += run.SamplingNS
	rep.RRVisits += run.RRVisits
	rep.RREdgeTouches += run.RREdgeTouches
	if run.RRPeakBytes > rep.RRPeakBytes {
		rep.RRPeakBytes = run.RRPeakBytes
	}
	rep.Fallbacks += run.Fallbacks
	rep.Attempts += run.Attempts
	rep.RRBatches += run.RRBatches
	rep.CertifiedEarly += run.CertifiedEarly
	if run.Sampler != "" {
		rep.Sampler = run.Sampler
	}
	if first || run.Profit < rep.MinProfit {
		rep.MinProfit = run.Profit
	}
	if first || run.Profit > rep.MaxProfit {
		rep.MaxProfit = run.Profit
	}
}

// Finalize divides the accumulated sums by the number of added runs,
// turning the Avg* fields into averages. Idempotence is not provided —
// call it exactly once, after the last Add.
func (rep *Report) Finalize() {
	f := float64(len(rep.Runs))
	if f == 0 {
		return
	}
	rep.AvgProfit /= f
	rep.AvgSpread /= f
	rep.AvgCost /= f
	rep.AvgRounds /= f
}

// RunExperiment samples `realizations` possible worlds from the instance
// graph (deterministically from seed) and runs the algorithm on each.
func RunExperiment(inst *Instance, algo string, realizations int, opts RunOptions, seed uint64) (*Report, error) {
	if realizations <= 0 {
		return nil, fmt.Errorf("adaptive: need at least one realization")
	}
	root := rng.New(seed)
	rep := &Report{Algorithm: algo, Realizations: realizations}
	for i := 0; i < realizations; i++ {
		if opts.Interrupt != nil {
			if err := opts.Interrupt(); err != nil {
				return nil, fmt.Errorf("adaptive: realization %d/%d: %w", i, realizations, err)
			}
		}
		worldRNG := root.Split()
		algoRNG := root.Split()
		env := NewEnvironment(cascade.Sample(inst.G, inst.Model, worldRNG))
		run, err := Run(inst, env, algo, opts, algoRNG)
		if err != nil {
			return nil, fmt.Errorf("adaptive: realization %d: %w", i, err)
		}
		rep.Add(run)
	}
	rep.Finalize()
	return rep, nil
}
