package adaptive

import (
	"fmt"
	"runtime"

	"repro/internal/cascade"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// Algorithm names accepted by Run and the repro CLI.
const (
	AlgoADG        = "adg"
	AlgoADDATP     = "addatp"
	AlgoHATP       = "hatp"
	AlgoNSG        = "nsg"
	AlgoAllTargets = "all-targets"
)

// Algorithms lists every runnable policy in CLI order.
var Algorithms = []string{AlgoADG, AlgoADDATP, AlgoHATP, AlgoNSG, AlgoAllTargets}

// RunOptions bundles the per-algorithm knobs for Run.
type RunOptions struct {
	Sampling SamplingOptions
	// ADGTheta is the RR sample size of ADG's RIS oracle (per residual
	// version); default 10_000. On graphs small enough for the exact
	// oracle (m ≤ oracle.MaxExactEdges) ADG uses exact spreads instead.
	ADGTheta int
	// NSGTheta is the nonadaptive greedy's one-shot sample size; default
	// 20_000.
	NSGTheta int
	// Interrupt, when non-nil, is polled by RunExperiment before every
	// realization; a non-nil return aborts the experiment with that error.
	// Sweep cells use it for wall-clock budgets and SIGINT checkpointing,
	// so a cell overruns its budget by at most one realization.
	Interrupt func() error
}

func (o *RunOptions) setDefaults() {
	if o.ADGTheta <= 0 {
		o.ADGTheta = 10_000
	}
	if o.NSGTheta <= 0 {
		o.NSGTheta = 20_000
	}
}

// Run executes one named algorithm on one realization environment.
func Run(inst *Instance, env *Environment, algo string, opts RunOptions, r *rng.RNG) (*RunResult, error) {
	opts.setDefaults()
	switch algo {
	case AlgoADG:
		var orc oracle.Oracle
		// Each model has its own exact enumerator on graphs small enough:
		// per-edge coins for IC, per-node parent picks for LT. Larger
		// graphs go through the RIS oracle.
		if inst.Model == cascade.IC {
			if exact, err := oracle.NewExact(inst.G); err == nil {
				orc = exact
			}
		} else if inst.Model == cascade.LT {
			if exact, err := oracle.NewExactLT(inst.G); err == nil {
				orc = exact
			}
		}
		if orc == nil {
			w := opts.Sampling.Workers
			if w <= 0 { // same convention as GenerateParallel
				w = runtime.GOMAXPROCS(0)
			}
			ris := oracle.NewRIS(inst.Model, opts.ADGTheta, r.Split())
			ris.SetWorkers(w)
			// Large-graph ADG keeps its RR pool across rounds, filtering
			// out invalidated sets and topping up the shortfall, matching
			// the sampling policies' reuse strategy.
			ris.SetReuse(!opts.Sampling.NoReuse)
			orc = ris
		}
		return RunADG(inst, env, orc)
	case AlgoADDATP:
		return RunADDATP(inst, env, opts.Sampling, r)
	case AlgoHATP:
		return RunHATP(inst, env, opts.Sampling, r)
	case AlgoNSG:
		return RunNonadaptiveGreedy(inst, env, opts.NSGTheta, r, opts.Sampling.Workers)
	case AlgoAllTargets:
		return RunAllTargets(inst, env)
	default:
		return nil, fmt.Errorf("adaptive: unknown algorithm %q (have %v)", algo, Algorithms)
	}
}

// Report aggregates an algorithm's runs over several realizations of the
// same instance — the paper's methodology of averaging a fixed pool of
// realizations per configuration.
type Report struct {
	Algorithm    string  `json:"algorithm"`
	Realizations int     `json:"realizations"`
	AvgProfit    float64 `json:"avg_profit"`
	AvgSpread    float64 `json:"avg_spread"`
	AvgCost      float64 `json:"avg_cost"`
	AvgRounds    float64 `json:"avg_rounds"`
	MinProfit    float64 `json:"min_profit"`
	MaxProfit    float64 `json:"max_profit"`
	RRDrawn      int64   `json:"rr_drawn"`
	RRRequested  int64   `json:"rr_requested"`
	RRReused     int64   `json:"rr_reused"`
	RRPeakBytes  int64   `json:"rr_peak_bytes"` // max over realizations
	SamplingNS   int64   `json:"sampling_ns"`   // total across realizations
	Fallbacks    int     `json:"fallbacks"`
	// Stopping-rule telemetry, summed across realizations (see RunResult).
	Attempts       int    `json:"attempts"`
	RRBatches      int    `json:"rr_batches"`
	CertifiedEarly int    `json:"certified_early"`
	Sampler        string `json:"sampler,omitempty"`
	Runs           []*RunResult
}

// RunExperiment samples `realizations` possible worlds from the instance
// graph (deterministically from seed) and runs the algorithm on each.
func RunExperiment(inst *Instance, algo string, realizations int, opts RunOptions, seed uint64) (*Report, error) {
	if realizations <= 0 {
		return nil, fmt.Errorf("adaptive: need at least one realization")
	}
	root := rng.New(seed)
	rep := &Report{Algorithm: algo, Realizations: realizations}
	for i := 0; i < realizations; i++ {
		if opts.Interrupt != nil {
			if err := opts.Interrupt(); err != nil {
				return nil, fmt.Errorf("adaptive: realization %d/%d: %w", i, realizations, err)
			}
		}
		worldRNG := root.Split()
		algoRNG := root.Split()
		env := NewEnvironment(cascade.Sample(inst.G, inst.Model, worldRNG))
		run, err := Run(inst, env, algo, opts, algoRNG)
		if err != nil {
			return nil, fmt.Errorf("adaptive: realization %d: %w", i, err)
		}
		rep.Runs = append(rep.Runs, run)
		rep.AvgProfit += run.Profit
		rep.AvgSpread += float64(run.Spread)
		rep.AvgCost += run.Cost
		rep.AvgRounds += float64(run.Rounds)
		rep.RRDrawn += run.RRDrawn
		rep.RRRequested += run.RRRequested
		rep.RRReused += run.RRReused
		rep.SamplingNS += run.SamplingNS
		if run.RRPeakBytes > rep.RRPeakBytes {
			rep.RRPeakBytes = run.RRPeakBytes
		}
		rep.Fallbacks += run.Fallbacks
		rep.Attempts += run.Attempts
		rep.RRBatches += run.RRBatches
		rep.CertifiedEarly += run.CertifiedEarly
		if run.Sampler != "" {
			rep.Sampler = run.Sampler
		}
		if i == 0 || run.Profit < rep.MinProfit {
			rep.MinProfit = run.Profit
		}
		if i == 0 || run.Profit > rep.MaxProfit {
			rep.MaxProfit = run.Profit
		}
	}
	f := float64(realizations)
	rep.AvgProfit /= f
	rep.AvgSpread /= f
	rep.AvgCost /= f
	rep.AvgRounds /= f
	return rep, nil
}
