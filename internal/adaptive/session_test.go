package adaptive

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// sessionCase is one (algorithm, sampling options) combination the
// equivalence tests sweep.
type sessionCase struct {
	name string
	algo string
	opts RunOptions
}

func sessionCases() []sessionCase {
	seq := RunOptions{Sampling: SamplingOptions{Policy: PolicySequential, Workers: 2}}
	fixed := RunOptions{Sampling: SamplingOptions{Policy: PolicyFixed, Workers: 2}}
	return []sessionCase{
		{"adg", AlgoADG, RunOptions{Sampling: SamplingOptions{Workers: 2}, ADGTheta: 2000}},
		{"addatp-seq", AlgoADDATP, seq},
		{"addatp-fixed", AlgoADDATP, fixed},
		{"hatp-seq", AlgoHATP, seq},
		{"hatp-fixed", AlgoHATP, fixed},
		{"nsg", AlgoNSG, RunOptions{Sampling: SamplingOptions{Workers: 2}, NSGTheta: 4000}},
		{"all-targets", AlgoAllTargets, RunOptions{}},
	}
}

// batchReference runs the batch entry point with the experiment RNG
// discipline (world split, then algorithm split, both off one root).
func batchReference(t *testing.T, inst *Instance, tc sessionCase, seed uint64) *RunResult {
	t.Helper()
	root := rng.New(seed)
	world := root.Split()
	algoRNG := root.Split()
	env := NewEnvironment(cascade.Sample(inst.G, inst.Model, world))
	ref, err := Run(inst, env, tc.algo, tc.opts, algoRNG)
	if err != nil {
		t.Fatalf("batch %s: %v", tc.name, err)
	}
	return ref
}

// roundTrip serializes the session and rebuilds it from the blob.
func roundTrip(t *testing.T, inst *Instance, s *Session, ropts ResumeOptions) *Session {
	t.Helper()
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	restored, err := ResumeSession(inst, blob, ropts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return restored
}

// steppedRun drives a Session by hand with the same RNG discipline as
// batchReference. When churn is true, the session is checkpointed and
// restored at EVERY round boundary — once before each NextSeed and once
// again while the proposal is pending — so every byte of mid-campaign
// state proves it survives serialization.
func steppedRun(t *testing.T, inst *Instance, tc sessionCase, seed uint64, churn bool) *RunResult {
	t.Helper()
	root := rng.New(seed)
	world := root.Split()
	algoRNG := root.Split()
	env := NewEnvironment(cascade.Sample(inst.G, inst.Model, world))
	sess, err := NewSession(inst, tc.algo, tc.opts, algoRNG)
	if err != nil {
		t.Fatalf("NewSession %s: %v", tc.name, err)
	}
	for {
		if churn {
			sess = roundTrip(t, inst, sess, ResumeOptions{})
		}
		u, stop, err := sess.NextSeed()
		if err != nil {
			t.Fatalf("NextSeed %s: %v", tc.name, err)
		}
		if stop {
			break
		}
		if churn {
			sess = roundTrip(t, inst, sess, ResumeOptions{})
			u2, stop2, err := sess.NextSeed()
			if err != nil || stop2 || u2 != u {
				t.Fatalf("pending seed not restored: got (%d,%v,%v), want (%d,false,nil)", u2, stop2, err, u)
			}
		}
		if err := sess.Observe(env.Observe(u)); err != nil {
			t.Fatalf("Observe %s: %v", tc.name, err)
		}
	}
	if !sess.Done() {
		t.Fatalf("%s: session not done after stop", tc.name)
	}
	return sess.Result()
}

// compareRuns checks every deterministic field. SamplingNS is wall clock;
// RRPeakBytes is capacity-based (ris.Collection.Bytes), and a restored
// collection's arenas are allocated to the checkpoint's lengths rather
// than the original growth schedule's capacities, so neither is pinned.
func compareRuns(t *testing.T, name string, got, want *RunResult) {
	t.Helper()
	if got.Algorithm != want.Algorithm {
		t.Errorf("%s: algorithm %q != %q", name, got.Algorithm, want.Algorithm)
	}
	if len(got.Seeds) != len(want.Seeds) {
		t.Fatalf("%s: %d seeds, want %d (%v vs %v)", name, len(got.Seeds), len(want.Seeds), got.Seeds, want.Seeds)
	}
	for i := range want.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("%s: seed %d is %d, want %d (%v vs %v)", name, i, got.Seeds[i], want.Seeds[i], got.Seeds, want.Seeds)
		}
	}
	if got.Rounds != want.Rounds || got.Spread != want.Spread || got.Cost != want.Cost || got.Profit != want.Profit {
		t.Errorf("%s: outcome (rounds=%d spread=%d cost=%v profit=%v), want (rounds=%d spread=%d cost=%v profit=%v)",
			name, got.Rounds, got.Spread, got.Cost, got.Profit, want.Rounds, want.Spread, want.Cost, want.Profit)
	}
	if got.RRDrawn != want.RRDrawn || got.RRRequested != want.RRRequested || got.RRReused != want.RRReused {
		t.Errorf("%s: sampling (drawn=%d requested=%d reused=%d), want (drawn=%d requested=%d reused=%d)",
			name, got.RRDrawn, got.RRRequested, got.RRReused, want.RRDrawn, want.RRRequested, want.RRReused)
	}
	if got.Fallbacks != want.Fallbacks || got.Attempts != want.Attempts || got.RRBatches != want.RRBatches ||
		got.CertifiedEarly != want.CertifiedEarly || got.Sampler != want.Sampler {
		t.Errorf("%s: telemetry (fb=%d att=%d batches=%d early=%d sampler=%q), want (fb=%d att=%d batches=%d early=%d sampler=%q)",
			name, got.Fallbacks, got.Attempts, got.RRBatches, got.CertifiedEarly, got.Sampler,
			want.Fallbacks, want.Attempts, want.RRBatches, want.CertifiedEarly, want.Sampler)
	}
}

// TestSessionSteppedMatchesBatch: hand-stepping a Session produces the
// same run as the batch entry point, for every algorithm and sampling
// policy.
func TestSessionSteppedMatchesBatch(t *testing.T) {
	inst := nethept005Instance(t, "")
	for _, tc := range sessionCases() {
		ref := batchReference(t, inst, tc, 7)
		got := steppedRun(t, inst, tc, 7, false)
		compareRuns(t, tc.name, got, ref)
	}
}

// TestSessionCheckpointEveryRound: a session checkpointed and restored at
// every round boundary — including mid-proposal — finishes with a run
// identical to the uninterrupted batch run. This is the contract the
// serve daemon's kill/restart/resume path depends on.
func TestSessionCheckpointEveryRound(t *testing.T) {
	inst := nethept005Instance(t, "")
	for _, tc := range sessionCases() {
		ref := batchReference(t, inst, tc, 7)
		got := steppedRun(t, inst, tc, 7, true)
		compareRuns(t, tc.name+"/churn", got, ref)
	}
}

// TestSessionCheckpointExactOracle covers the exact-oracle ADG path
// (stateless oracle, rebuilt from the instance on resume) on the paper's
// worked example.
func TestSessionCheckpointExactOracle(t *testing.T) {
	inst := fig1Instance(t)
	tc := sessionCase{name: "adg-exact", algo: AlgoADG, opts: RunOptions{}}
	ref := batchReference(t, inst, tc, 3)
	got := steppedRun(t, inst, tc, 3, true)
	compareRuns(t, tc.name, got, ref)
	if ref.RRDrawn != 0 {
		t.Fatalf("exact-oracle ADG drew %d RR sets; wrong oracle selected", ref.RRDrawn)
	}
}

// TestSessionResumeWithWarmBatcher: donating a dirty warm batcher to the
// resume path must not change the run (the batcher is Reset before the
// restored state lands in it).
func TestSessionResumeWithWarmBatcher(t *testing.T) {
	inst := nethept005Instance(t, "")
	tc := sessionCase{name: "addatp-seq", algo: AlgoADDATP,
		opts: RunOptions{Sampling: SamplingOptions{Policy: PolicySequential, Workers: 2}}}
	ref := batchReference(t, inst, tc, 11)

	// Dirty the donated batcher with draws from an unrelated campaign.
	warm := ris.NewBatcher(inst.Model)
	warm.EnableCoverage()
	res := graph.NewResidual(inst.G)
	if _, err := warm.GrowTo(res, rng.New(999), 500, 2); err != nil {
		t.Fatal(err)
	}

	root := rng.New(11)
	world := root.Split()
	algoRNG := root.Split()
	env := NewEnvironment(cascade.Sample(inst.G, inst.Model, world))
	sess, err := NewSession(inst, tc.algo, tc.opts, algoRNG)
	if err != nil {
		t.Fatal(err)
	}
	for {
		sess = roundTrip(t, inst, sess, ResumeOptions{Batcher: warm})
		u, stop, err := sess.NextSeed()
		if err != nil {
			t.Fatal(err)
		}
		if stop {
			break
		}
		if err := sess.Observe(env.Observe(u)); err != nil {
			t.Fatal(err)
		}
	}
	compareRuns(t, tc.name+"/warm-resume", sess.Result(), ref)
}

// TestCheckpointRejectsWrongInstance: a checkpoint must refuse to restore
// onto an instance with a different fingerprint.
func TestCheckpointRejectsWrongInstance(t *testing.T) {
	inst := nethept005Instance(t, "")
	sess, err := NewSession(inst, AlgoADDATP, RunOptions{Sampling: SamplingOptions{Workers: 2}}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeSession(fig1Instance(t), blob, ResumeOptions{}); err == nil {
		t.Fatal("resume on a different instance succeeded; fingerprint check is dead")
	}
	// Truncation at any point must error, never panic or misparse.
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := ResumeSession(inst, blob[:cut], ResumeOptions{}); err == nil {
			t.Fatalf("resume of %d/%d-byte prefix succeeded", cut, len(blob))
		}
	}
	// Unknown version must be refused.
	bad := append([]byte(nil), blob...)
	bad[8] = 0xFF
	if _, err := ResumeSession(inst, bad, ResumeOptions{}); err == nil {
		t.Fatal("resume of unknown checkpoint version succeeded")
	}
}

// TestSessionObserveContract pins the misuse errors: Observe without a
// pending seed, Observe after completion, NextSeed idempotence while a
// proposal is pending.
func TestSessionObserveContract(t *testing.T) {
	inst := fig1Instance(t)
	sess, err := NewSession(inst, AlgoAllTargets, RunOptions{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Observe(nil); err == nil {
		t.Fatal("Observe before NextSeed succeeded")
	}
	u, stop, err := sess.NextSeed()
	if err != nil || stop {
		t.Fatalf("NextSeed: (%v, %v)", stop, err)
	}
	if u2, _, _ := sess.NextSeed(); u2 != u {
		t.Fatalf("pending NextSeed returned %d, want %d", u2, u)
	}
	if p, ok := sess.Pending(); !ok || p != u {
		t.Fatalf("Pending() = (%d, %v), want (%d, true)", p, ok, u)
	}
	if err := sess.Observe([]graph.NodeID{9999}); err == nil {
		t.Fatal("Observe of out-of-range node succeeded")
	}
	rz := fig1Realization(inst.G)
	env := NewEnvironmentAt(rz, sess.CloneResidual(), sess.Spread())
	for {
		u, stop, err := sess.NextSeed()
		if err != nil {
			t.Fatal(err)
		}
		if stop {
			break
		}
		if err := sess.Observe(env.Observe(u)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Observe(nil); err == nil {
		t.Fatal("Observe after completion succeeded")
	}
	if _, err := sess.Checkpoint(); err != nil {
		t.Fatalf("checkpoint of a finished session: %v", err)
	}
	res := sess.Result()
	if res.Rounds != len(inst.Targets) || res.Spread != env.Activated() {
		t.Fatalf("result rounds=%d spread=%d, want %d/%d", res.Rounds, res.Spread, len(inst.Targets), env.Activated())
	}
}
