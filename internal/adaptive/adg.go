package adaptive

import (
	"repro/internal/graph"
	"repro/internal/oracle"
)

// RunADG executes the adaptive greedy policy of §III against a spread
// oracle: each round it queries E[I_{G_i}({u})] for every alive target u,
// seeds the one with the largest marginal profit if that profit is
// positive, observes the realized cascade through env, and recurses on
// the residual graph. It stops as soon as the best marginal profit is
// ≤ 0 (the unconstrained objective makes further seeding a loss).
//
// With the exact oracle this is the paper's ADG; with oracle.RIS or
// oracle.MonteCarlo it is the oracle-model policy the sampling algorithms
// (ADDATP, HATP) approximate. Ties break on the smaller node ID so runs
// are deterministic.
func RunADG(inst *Instance, env *Environment, orc oracle.Oracle) (*RunResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	var seeds []graph.NodeID
	var alive []graph.NodeID
	query := make([]graph.NodeID, 1)
	for {
		res := env.Residual()
		alive = inst.aliveTargets(res, alive)
		if len(alive) == 0 {
			break
		}
		best := graph.NodeID(-1)
		bestProfit := 0.0
		for _, u := range alive {
			query[0] = u
			p := orc.ExpectedSpread(res, query) - inst.Costs.Cost(u)
			if p > bestProfit || (p == bestProfit && best >= 0 && u < best) {
				best, bestProfit = u, p
			}
		}
		if best < 0 || bestProfit <= 0 {
			break
		}
		env.Observe(best)
		seeds = append(seeds, best)
	}
	r := inst.finish("adg", seeds, env)
	if ris, ok := orc.(*oracle.RIS); ok {
		r.RRDrawn = ris.TotalDrawn()
		r.RRRequested = ris.TotalRequested()
		r.RRReused = ris.TotalReused()
		r.RRPeakBytes = ris.PeakRRBytes()
		r.SamplingNS = ris.SamplingNS()
	}
	return r, nil
}
