package adaptive

import (
	"repro/internal/oracle"
)

// RunADG executes the adaptive greedy policy of §III against a spread
// oracle: each round it queries E[I_{G_i}({u})] for every alive target u,
// seeds the one with the largest marginal profit if that profit is
// positive, observes the realized cascade through env, and recurses on
// the residual graph. It stops as soon as the best marginal profit is
// ≤ 0 (the unconstrained objective makes further seeding a loss).
//
// With the exact oracle this is the paper's ADG; with oracle.RIS or
// oracle.MonteCarlo it is the oracle-model policy the sampling algorithms
// (ADDATP, HATP) approximate. Ties break on the smaller node ID so runs
// are deterministic.
func RunADG(inst *Instance, env *Environment, orc oracle.Oracle) (*RunResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return newShell(inst, AlgoADG, RunOptions{}, nil, newADGStepper(orc)).Drive(env)
}
