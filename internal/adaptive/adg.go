package adaptive

import (
	"repro/internal/graph"
	"repro/internal/oracle"
)

// RunADG executes the adaptive greedy policy of §III against a spread
// oracle: each round it queries E[I_{G_i}({u})] for every alive target u,
// seeds the one with the largest marginal profit if that profit is
// positive, observes the realized cascade through env, and recurses on
// the residual graph. It stops as soon as the best marginal profit is
// ≤ 0 (the unconstrained objective makes further seeding a loss).
//
// With the exact oracle this is the paper's ADG; with oracle.RIS or
// oracle.MonteCarlo it is the oracle-model policy the sampling algorithms
// (ADDATP, HATP) approximate. Ties break on the smaller node ID so runs
// are deterministic.
func RunADG(inst *Instance, env *Environment, orc oracle.Oracle) (*RunResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	// Oracles that can answer a batch of singleton queries concurrently
	// (oracle.RIS with workers set) take the batch path; the floats are
	// identical to per-node ExpectedSpread calls, so the policy's picks
	// don't depend on which path ran.
	type batchOracle interface {
		SingleSpreads(res *graph.Residual, nodes []graph.NodeID, out []float64)
	}
	bo, batched := orc.(batchOracle)
	var spreads []float64
	var seeds []graph.NodeID
	var alive []graph.NodeID
	query := make([]graph.NodeID, 1)
	for {
		res := env.Residual()
		alive = inst.aliveTargets(res, alive)
		if len(alive) == 0 {
			break
		}
		if batched {
			if cap(spreads) < len(alive) {
				spreads = make([]float64, len(alive))
			}
			spreads = spreads[:len(alive)]
			bo.SingleSpreads(res, alive, spreads)
		}
		best := graph.NodeID(-1)
		bestProfit := 0.0
		for i, u := range alive {
			var spread float64
			if batched {
				spread = spreads[i]
			} else {
				query[0] = u
				spread = orc.ExpectedSpread(res, query)
			}
			p := spread - inst.Costs.Cost(u)
			if p > bestProfit || (p == bestProfit && best >= 0 && u < best) {
				best, bestProfit = u, p
			}
		}
		if best < 0 || bestProfit <= 0 {
			break
		}
		env.Observe(best)
		seeds = append(seeds, best)
	}
	r := inst.finish("adg", seeds, env)
	if ris, ok := orc.(*oracle.RIS); ok {
		r.RRDrawn = ris.TotalDrawn()
		r.RRRequested = ris.TotalRequested()
		r.RRReused = ris.TotalReused()
		r.RRPeakBytes = ris.PeakRRBytes()
		r.SamplingNS = ris.SamplingNS()
	}
	return r, nil
}
