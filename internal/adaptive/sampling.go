package adaptive

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// Sampling policies: how ADDATP/HATP decide when enough RR sets have been
// drawn to certify a round's seed/stop decision.
const (
	// PolicySequential draws geometrically growing batches and certifies
	// the decision at the first batch boundary an anytime-valid confidence
	// sequence allows — the OPIM-C-style sequential-sampling view of
	// Algorithms 3/4. Default.
	PolicySequential = "seq"
	// PolicyFixed is the paper-faithful attempt loop: each attempt draws to
	// the precomputed θ(ζ_i, δ_i), halving ζ between attempts, with a
	// MaxRefine fallback. Retained for A/B comparison; bit-identical to the
	// pre-controller implementation.
	PolicyFixed = "fixed"
)

// SamplingPolicies lists the accepted Policy values in CLI order.
var SamplingPolicies = []string{PolicySequential, PolicyFixed}

// SamplingOptions configures the RR-sampling policies (ADDATP and HATP).
type SamplingOptions struct {
	// Policy selects the stopping-rule controller: PolicySequential
	// (default) or PolicyFixed.
	Policy string
	// Zeta is the starting additive error on the coverage fraction (the
	// paper's ζ; spread error is n_i·ζ). Refinement halves it. Default 0.05.
	Zeta float64
	// Eps is HATP's relative error ε (ignored by ADDATP). Default 0.2.
	Eps float64
	// Delta is the overall failure probability δ, split over at most |T|
	// rounds by a union bound. Default 0.1.
	Delta float64
	// MaxRefine bounds the ζ-halvings per round (fixed policy); when
	// exhausted the round decides on the point estimate and records a
	// fallback. The sequential policy reuses it to place its θ cap at the
	// same frontier: θ_cap = θ(ζ/2^MaxRefine, δ_round). Default 4.
	MaxRefine int
	// InitialBatch is the sequential policy's first batch size; batches
	// double from there up to the θ cap. Default 2048 — the scale of the
	// fixed policy's first-attempt θ(ζ, δ_round), so the loosest decision
	// the controller can certify rests on a comparably sharp estimate
	// (cross-round carryover makes the floor essentially free).
	InitialBatch int
	// Workers for parallel RR generation; 0 means GOMAXPROCS.
	Workers int
	// NoReuse disables cross-round RR-set reuse: after every residual
	// mutation the collection is regenerated from scratch (and, under the
	// fixed policy, every refinement attempt regenerates its full θ), as
	// the pre-reuse implementation did. Within-round reuse (θ growth on an
	// unchanged residual) is exactly distribution-preserving; cross-round
	// reuse keeps only sets avoiding every deleted node, which is per-root
	// exact but slightly over-represents high-survival roots (see
	// ris.Collection.Filter). NoReuse exists for A/B comparison and
	// debugging.
	NoReuse bool
}

func (o *SamplingOptions) setDefaults() {
	if o.Policy == "" {
		o.Policy = PolicySequential
	}
	if o.Zeta <= 0 {
		o.Zeta = 0.05
	}
	if o.Eps <= 0 {
		o.Eps = 0.2
	}
	if o.Delta <= 0 {
		o.Delta = 0.1
	}
	if o.MaxRefine <= 0 {
		o.MaxRefine = 4
	}
	if o.InitialBatch <= 0 {
		o.InitialBatch = 2048
	}
}

// regime abstracts the concentration bound a sampling policy certifies
// its decisions with: the per-round sample size θ, and high-probability
// spread bounds derived from an observed coverage fraction.
type regime interface {
	name() string
	theta(zeta, delta float64) (int, error)
	// lower/upper convert coverage fraction frac on a residual with
	// nAlive nodes into spread bounds holding with probability ≥ 1−delta
	// at the θ above. Implementations clamp to [0, nAlive].
	lower(frac float64, nAlive int, zeta float64) float64
	upper(frac float64, nAlive int, zeta float64) float64
}

func clampSpread(v float64, nAlive int) float64 {
	if v < 0 {
		return 0
	}
	if n := float64(nAlive); v > n {
		return n
	}
	return v
}

// runSampling is the round structure shared by Algorithms 3 and 4. Each
// round estimates every alive target's marginal spread as n_i·Cov(u)/θ
// from RR sets on the residual graph, and then either
//
//   - seeds the best target, when its profit lower bound is positive;
//   - terminates, when every target's profit upper bound is ≤ 0;
//   - draws more, when the decision is not yet certified — falling back to
//     the point estimate at the policy's sampling frontier so a marginal
//     profit sitting exactly at 0 cannot loop forever.
//
// How "draws more" and "certified" are implemented is the sampling policy:
// runSequential grows the collection in geometric batches under an
// anytime-valid confidence sequence, runFixed replays the paper's
// fixed-θ(ζ_i, δ_i) attempt loop.
func runSampling(inst *Instance, env *Environment, reg regime, opts SamplingOptions, r *rng.RNG) (*RunResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	switch opts.Policy {
	case PolicySequential:
		return runSequential(inst, env, reg, opts, r)
	case PolicyFixed:
		return runFixed(inst, env, reg, opts, r)
	default:
		return nil, fmt.Errorf("adaptive: unknown sampling policy %q (have %v)", opts.Policy, SamplingPolicies)
	}
}

// runSequential is the sequential sampling controller. One RR collection
// persists for the whole run through a ris.Batcher: at a round start it is
// validity-filtered to the new residual (carried-over sets count toward
// the first look), then grown in geometrically doubling batches. After
// each batch k the controller evaluates, for every alive target, an
// anytime-valid confidence interval on its coverage fraction — empirical
// Bernstein / Hoeffding at the spent budget δ_k = δ_round/(k(k+1)), see
// bounds.AnytimeWidth — and certifies the seed/stop decision the moment
// the interval allows, instead of waiting for a precomputed θ(ζ_i, δ_i).
// Certification is valid at every batch boundary because the per-look
// budgets telescope to δ_round, replacing the fixed loop's
// MaxRefine-based union bound. Rounds that stay undecidable fall back to
// the point estimate at the same precision frontier where the fixed loop
// gives up: once every alive target's confidence width is ≤
// ζ_min = ζ/2^MaxRefine — the width the fixed loop's final attempt
// certifies by construction — the estimate is at least as sharp as the
// one the fixed fallback decides on, usually at a far smaller θ because
// the empirical-Bernstein width scales with the coverage variance rather
// than the worst-case range. θ_cap = θ(ζ_min, δ_round) remains as a
// safety net for the rare high-variance target whose EB width cannot
// reach ζ_min sooner than Hoeffding would.
//
// The per-batch check reads single-node containment counts from the
// batcher's incremental ris.Coverage tracker: O(batch + alive targets)
// per look, instead of rebuilding the collection's inverted index.
func runSequential(inst *Instance, env *Environment, reg regime, opts SamplingOptions, r *rng.RNG) (*RunResult, error) {
	// Union bound over rounds only: the run seeds at most |T| targets, and
	// within a round the confidence sequence spends its δ_round across
	// looks by itself.
	deltaRound := opts.Delta / float64(len(inst.Targets))
	zetaMin := opts.Zeta / math.Exp2(float64(opts.MaxRefine))
	capTheta, err := reg.theta(zetaMin, deltaRound)
	if err != nil {
		return nil, fmt.Errorf("adaptive: %s: %w", reg.name(), err)
	}

	b := ris.NewBatcher(inst.Model)
	b.SetReuse(!opts.NoReuse)
	b.EnableCoverage()

	var seeds []graph.NodeID
	var alive []graph.NodeID
	fallbacks, attempts, certifiedEarly := 0, 0, 0

	for {
		res := env.Residual()
		alive = inst.aliveTargets(res, alive)
		if len(alive) == 0 {
			break
		}
		nAlive := res.N()
		carried := b.Sync(res)
		target := opts.InitialBatch
		if carried > target {
			target = carried
		}
		if target > capTheta {
			target = capTheta
		}
		stop := false
		for k := 1; ; k++ {
			n := b.GrowTo(res, r, target, opts.Workers)
			attempts++
			if n == 0 {
				stop = true
				break
			}
			deltaK := bounds.SpendGeometric(deltaRound, k)
			// Per-target marginal profit from the tracked containment
			// counts. The effective sample size is the full collection,
			// which can exceed this look's target when a round starts from
			// a larger filtered carry-over. Within-round growth keeps the
			// certificates exact (same residual, independent samples);
			// sets kept across rounds additionally carry Filter's root-mix
			// tilt, so cross-round certificates are exact per root but
			// approximate in the root marginal — NoReuse restores the
			// paper's from-scratch sampling when that matters.
			best := graph.NodeID(-1)
			bestProfit, bestLower := 0.0, 0.0
			maxUpper, maxWidth := 0.0, 0.0
			for _, u := range alive {
				frac := float64(b.Count(u)) / float64(n)
				w := bounds.AnytimeWidth(n, frac, deltaK)
				cost := inst.Costs.Cost(u)
				profit := clampSpread(frac*float64(nAlive), nAlive) - cost
				if best < 0 || profit > bestProfit || (profit == bestProfit && u < best) {
					best, bestProfit = u, profit
					bestLower = clampSpread((frac-w)*float64(nAlive), nAlive) - cost
				}
				if up := clampSpread((frac+w)*float64(nAlive), nAlive) - cost; up > maxUpper {
					maxUpper = up
				}
				if w > maxWidth {
					maxWidth = w
				}
			}
			switch {
			case bestLower > 0:
				// Seeding certified.
				if maxWidth > zetaMin && n < capTheta {
					certifiedEarly++
				}
				env.Observe(best)
				seeds = append(seeds, best)
			case maxUpper <= 0:
				// Stopping certified: no target can have positive profit.
				if maxWidth > zetaMin && n < capTheta {
					certifiedEarly++
				}
				stop = true
			case maxWidth <= zetaMin || n >= capTheta:
				// Precision frontier reached: every estimate is within the
				// fixed loop's terminal ζ_min, so deciding on the point
				// estimate is at least as sharp as the fixed fallback.
				fallbacks++
				if bestProfit > 0 {
					env.Observe(best)
					seeds = append(seeds, best)
				} else {
					stop = true
				}
			default:
				target = 2 * n
				if target > capTheta {
					target = capTheta
				}
				continue
			}
			break
		}
		if stop {
			break
		}
	}
	result := inst.finish(reg.name(), seeds, env)
	result.RRDrawn = b.Drawn()
	result.RRRequested = b.Requested()
	result.RRReused = b.Reused()
	result.RRPeakBytes = b.PeakBytes()
	result.SamplingNS = b.SamplingNS()
	result.Fallbacks = fallbacks
	result.Attempts = attempts
	result.RRBatches = b.Batches()
	result.CertifiedEarly = certifiedEarly
	result.Sampler = PolicySequential
	return result, nil
}

// runFixed is the paper's fixed-θ attempt loop, kept bit-identical to the
// pre-controller implementation (same RNG consumption, same decisions)
// behind Policy: fixed for paper-faithful A/B runs. Each attempt draws to
// θ(ζ_i, δ_i), halving ζ between attempts; one RR collection persists
// across attempts and rounds. Refinement grows θ on an unchanged
// residual, so earlier samples count toward the new target and only the
// difference is drawn. After a seeding observation mutates the residual,
// Collection.Filter keeps exactly the sets that avoid every deleted node
// — still correctly distributed RR samples of the new residual — and the
// shortfall to the next θ target is topped up. RunResult.RRReused counts
// the draws avoided versus regenerating every attempt from scratch.
func runFixed(inst *Instance, env *Environment, reg regime, opts SamplingOptions, r *rng.RNG) (*RunResult, error) {
	// Union bound: each round may resample up to MaxRefine+1 times and the
	// run lasts at most |T| rounds.
	deltaRound := opts.Delta / float64(len(inst.Targets)*(opts.MaxRefine+1))

	var seeds []graph.NodeID
	var alive []graph.NodeID
	fallbacks, attempts, batches, certifiedEarly := 0, 0, 0, 0
	var drawn, requested, reused, peakBytes, samplingNS int64
	var col *ris.Collection
	// One persistent sampler pool serves every attempt of every round:
	// per-worker scratch (visited marks, stacks, chunks) survives across
	// the run instead of being reallocated per generation call.
	pool := ris.NewSamplerPool(inst.Model)

	for {
		res := env.Residual()
		alive = inst.aliveTargets(res, alive)
		if len(alive) == 0 {
			break
		}
		nAlive := res.N()
		zeta := opts.Zeta
		stop := false
		for attempt := 0; ; attempt++ {
			theta, err := reg.theta(zeta, deltaRound)
			if err != nil {
				return nil, fmt.Errorf("adaptive: %s round %d: %w", reg.name(), len(seeds)+1, err)
			}
			attempts++
			if opts.NoReuse || col == nil {
				if col == nil {
					col = ris.NewCollection(res.FullN())
				} else {
					col.Reset() // fresh θ, warm storage
				}
				start := time.Now()
				pool.AppendParallel(col, res, r.Split(), theta, opts.Workers)
				samplingNS += time.Since(start).Nanoseconds()
				drawn += int64(col.Len())
				requested += int64(col.Requested())
				batches++
			} else {
				kept := col.Filter(res)
				if kept > theta {
					kept = theta // draws avoided vs a from-scratch attempt
				}
				reused += int64(kept)
				if shortfall := theta - col.Len(); shortfall > 0 {
					before := col.Len()
					start := time.Now()
					pool.AppendParallel(col, res, r.Split(), shortfall, opts.Workers)
					samplingNS += time.Since(start).Nanoseconds()
					drawn += int64(col.Len() - before)
					requested += int64(shortfall)
					batches++
				}
			}
			if b := col.Bytes(); b > peakBytes {
				peakBytes = b
			}
			if col.Len() == 0 {
				stop = true
				break
			}
			// Per-target marginal profit from single-node coverage counts.
			// The effective sample size is col.Len(), which can exceed this
			// attempt's θ when a new round starts from a larger filtered
			// collection. For within-round growth the certificates hold
			// verbatim (same residual, independent samples, θ' ≥ θ); sets
			// kept across rounds additionally carry Filter's root-mix
			// tilt, so cross-round certificates are exact per root but
			// approximate in the root marginal — NoReuse restores the
			// paper's from-scratch sampling when that matters.
			best := graph.NodeID(-1)
			bestProfit, bestFrac := 0.0, 0.0
			maxUpper := 0.0
			for _, u := range alive {
				frac := float64(col.CountContaining(u)) / float64(col.Len())
				est := clampSpread(frac*float64(nAlive), nAlive)
				profit := est - inst.Costs.Cost(u)
				if best < 0 || profit > bestProfit || (profit == bestProfit && u < best) {
					best, bestProfit, bestFrac = u, profit, frac
				}
				if up := reg.upper(frac, nAlive, zeta) - inst.Costs.Cost(u); up > maxUpper {
					maxUpper = up
				}
			}
			lowerBest := reg.lower(bestFrac, nAlive, zeta) - inst.Costs.Cost(best)
			switch {
			case lowerBest > 0:
				// Seeding certified.
				if attempt < opts.MaxRefine {
					certifiedEarly++
				}
				env.Observe(best)
				seeds = append(seeds, best)
			case maxUpper <= 0:
				// Stopping certified: no target can have positive profit.
				if attempt < opts.MaxRefine {
					certifiedEarly++
				}
				stop = true
			case attempt >= opts.MaxRefine:
				// Confidence budget exhausted; decide on the estimate.
				fallbacks++
				if bestProfit > 0 {
					env.Observe(best)
					seeds = append(seeds, best)
				} else {
					stop = true
				}
			default:
				zeta /= 2
				continue
			}
			break
		}
		if stop {
			break
		}
	}
	result := inst.finish(reg.name(), seeds, env)
	result.RRDrawn = drawn
	result.RRRequested = requested
	result.RRReused = reused
	result.RRPeakBytes = peakBytes
	result.SamplingNS = samplingNS
	result.Fallbacks = fallbacks
	result.Attempts = attempts
	result.RRBatches = batches
	result.CertifiedEarly = certifiedEarly
	result.Sampler = PolicyFixed
	return result, nil
}
