package adaptive

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// SamplingOptions configures the RR-sampling policies (ADDATP and HATP).
type SamplingOptions struct {
	// Zeta is the starting additive error on the coverage fraction (the
	// paper's ζ; spread error is n_i·ζ). Refinement halves it. Default 0.05.
	Zeta float64
	// Eps is HATP's relative error ε (ignored by ADDATP). Default 0.2.
	Eps float64
	// Delta is the overall failure probability δ, split over at most |T|
	// rounds by a union bound. Default 0.1.
	Delta float64
	// MaxRefine bounds the ζ-halvings per round; when exhausted the round
	// decides on the point estimate and records a fallback. Default 4.
	MaxRefine int
	// Workers for parallel RR generation; 0 means GOMAXPROCS.
	Workers int
	// NoReuse disables RR-set reuse: every refinement attempt regenerates
	// its full θ from scratch, as the pre-reuse implementation did.
	// Within-round reuse (θ growth on an unchanged residual) is exactly
	// distribution-preserving; cross-round reuse keeps only sets avoiding
	// every deleted node, which is per-root exact but slightly
	// over-represents high-survival roots (see ris.Collection.Filter).
	// NoReuse exists for A/B comparison and debugging.
	NoReuse bool
}

func (o *SamplingOptions) setDefaults() {
	if o.Zeta <= 0 {
		o.Zeta = 0.05
	}
	if o.Eps <= 0 {
		o.Eps = 0.2
	}
	if o.Delta <= 0 {
		o.Delta = 0.1
	}
	if o.MaxRefine <= 0 {
		o.MaxRefine = 4
	}
}

// regime abstracts the concentration bound a sampling policy certifies
// its decisions with: the per-round sample size θ, and high-probability
// spread bounds derived from an observed coverage fraction.
type regime interface {
	name() string
	theta(zeta, delta float64) (int, error)
	// lower/upper convert coverage fraction frac on a residual with
	// nAlive nodes into spread bounds holding with probability ≥ 1−delta
	// at the θ above. Implementations clamp to [0, nAlive].
	lower(frac float64, nAlive int, zeta float64) float64
	upper(frac float64, nAlive int, zeta float64) float64
}

func clampSpread(v float64, nAlive int) float64 {
	if v < 0 {
		return 0
	}
	if n := float64(nAlive); v > n {
		return n
	}
	return v
}

// runSampling is the round structure shared by Algorithms 3 and 4. Each
// round needs θ(ζ_i, δ_i) RR sets on the residual graph, estimates every
// alive target's marginal spread as n_i·Cov(u)/θ, and then either
//
//   - seeds the best target, when its profit lower bound is positive;
//   - terminates, when every target's profit upper bound is ≤ 0;
//   - refines (ζ_i ← ζ_i/2) and resamples, when the decision is not yet
//     certified — falling back to the point estimate after MaxRefine
//     halvings so a marginal profit sitting exactly at 0 cannot loop
//     forever.
//
// One RR collection persists across attempts and rounds. Refinement grows
// θ on an unchanged residual, so earlier samples count toward the new
// target and only the difference is drawn (the sequential-sampling view
// of Algorithms 3/4). After a seeding observation mutates the residual,
// Collection.Filter keeps exactly the sets that avoid every deleted node
// — still correctly distributed RR samples of the new residual — and the
// shortfall to the next θ target is topped up. RunResult.RRReused counts
// the draws avoided versus regenerating every attempt from scratch.
func runSampling(inst *Instance, env *Environment, reg regime, opts SamplingOptions, r *rng.RNG) (*RunResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	// Union bound: each round may resample up to MaxRefine+1 times and the
	// run lasts at most |T| rounds.
	deltaRound := opts.Delta / float64(len(inst.Targets)*(opts.MaxRefine+1))

	var seeds []graph.NodeID
	var alive []graph.NodeID
	fallbacks := 0
	var drawn, requested, reused, peakBytes, samplingNS int64
	var col *ris.Collection
	// One persistent sampler pool serves every attempt of every round:
	// per-worker scratch (visited marks, stacks, chunks) survives across
	// the run instead of being reallocated per generation call.
	pool := ris.NewSamplerPool(inst.Model)

	for {
		res := env.Residual()
		alive = inst.aliveTargets(res, alive)
		if len(alive) == 0 {
			break
		}
		nAlive := res.N()
		zeta := opts.Zeta
		stop := false
		for attempt := 0; ; attempt++ {
			theta, err := reg.theta(zeta, deltaRound)
			if err != nil {
				return nil, fmt.Errorf("adaptive: %s round %d: %w", reg.name(), len(seeds)+1, err)
			}
			if opts.NoReuse || col == nil {
				if col == nil {
					col = ris.NewCollection(res.FullN())
				} else {
					col.Reset() // fresh θ, warm storage
				}
				start := time.Now()
				pool.AppendParallel(col, res, r.Split(), theta, opts.Workers)
				samplingNS += time.Since(start).Nanoseconds()
				drawn += int64(col.Len())
				requested += int64(col.Requested())
			} else {
				kept := col.Filter(res)
				if kept > theta {
					kept = theta // draws avoided vs a from-scratch attempt
				}
				reused += int64(kept)
				if shortfall := theta - col.Len(); shortfall > 0 {
					before := col.Len()
					start := time.Now()
					pool.AppendParallel(col, res, r.Split(), shortfall, opts.Workers)
					samplingNS += time.Since(start).Nanoseconds()
					drawn += int64(col.Len() - before)
					requested += int64(shortfall)
				}
			}
			if b := col.Bytes(); b > peakBytes {
				peakBytes = b
			}
			if col.Len() == 0 {
				stop = true
				break
			}
			// Per-target marginal profit from single-node coverage counts.
			// The effective sample size is col.Len(), which can exceed this
			// attempt's θ when a new round starts from a larger filtered
			// collection. For within-round growth the certificates hold
			// verbatim (same residual, independent samples, θ' ≥ θ); sets
			// kept across rounds additionally carry Filter's root-mix
			// tilt, so cross-round certificates are exact per root but
			// approximate in the root marginal — NoReuse restores the
			// paper's from-scratch sampling when that matters.
			best := graph.NodeID(-1)
			bestProfit, bestFrac := 0.0, 0.0
			maxUpper := 0.0
			for _, u := range alive {
				frac := float64(col.CountContaining(u)) / float64(col.Len())
				est := clampSpread(frac*float64(nAlive), nAlive)
				profit := est - inst.Costs.Cost(u)
				if best < 0 || profit > bestProfit || (profit == bestProfit && u < best) {
					best, bestProfit, bestFrac = u, profit, frac
				}
				if up := reg.upper(frac, nAlive, zeta) - inst.Costs.Cost(u); up > maxUpper {
					maxUpper = up
				}
			}
			lowerBest := reg.lower(bestFrac, nAlive, zeta) - inst.Costs.Cost(best)
			switch {
			case lowerBest > 0:
				// Seeding certified.
				env.Observe(best)
				seeds = append(seeds, best)
			case maxUpper <= 0:
				// Stopping certified: no target can have positive profit.
				stop = true
			case attempt >= opts.MaxRefine:
				// Confidence budget exhausted; decide on the estimate.
				fallbacks++
				if bestProfit > 0 {
					env.Observe(best)
					seeds = append(seeds, best)
				} else {
					stop = true
				}
			default:
				zeta /= 2
				continue
			}
			break
		}
		if stop {
			break
		}
	}
	result := inst.finish(reg.name(), seeds, env)
	result.RRDrawn = drawn
	result.RRRequested = requested
	result.RRReused = reused
	result.RRPeakBytes = peakBytes
	result.SamplingNS = samplingNS
	result.Fallbacks = fallbacks
	return result, nil
}
