package adaptive

// Sampling policies: how ADDATP/HATP decide when enough RR sets have been
// drawn to certify a round's seed/stop decision.
const (
	// PolicySequential draws geometrically growing batches and certifies
	// the decision at the first batch boundary an anytime-valid confidence
	// sequence allows — the OPIM-C-style sequential-sampling view of
	// Algorithms 3/4. Default.
	PolicySequential = "seq"
	// PolicyFixed is the paper-faithful attempt loop: each attempt draws to
	// the precomputed θ(ζ_i, δ_i), halving ζ between attempts, with a
	// MaxRefine fallback. Retained for A/B comparison; bit-identical to the
	// pre-controller implementation.
	PolicyFixed = "fixed"
)

// SamplingPolicies lists the accepted Policy values in CLI order.
var SamplingPolicies = []string{PolicySequential, PolicyFixed}

// SamplingOptions configures the RR-sampling policies (ADDATP and HATP).
type SamplingOptions struct {
	// Policy selects the stopping-rule controller: PolicySequential
	// (default) or PolicyFixed.
	Policy string
	// Zeta is the starting additive error on the coverage fraction (the
	// paper's ζ; spread error is n_i·ζ). Refinement halves it. Default 0.05.
	Zeta float64
	// Eps is HATP's relative error ε (ignored by ADDATP). Default 0.2.
	Eps float64
	// Delta is the overall failure probability δ, split over at most |T|
	// rounds by a union bound. Default 0.1.
	Delta float64
	// MaxRefine bounds the ζ-halvings per round (fixed policy); when
	// exhausted the round decides on the point estimate and records a
	// fallback. The sequential policy reuses it to place its θ cap at the
	// same frontier: θ_cap = θ(ζ/2^MaxRefine, δ_round). Default 4.
	MaxRefine int
	// InitialBatch is the sequential policy's first batch size; batches
	// double from there up to the θ cap. Default 2048 — the scale of the
	// fixed policy's first-attempt θ(ζ, δ_round), so the loosest decision
	// the controller can certify rests on a comparably sharp estimate
	// (cross-round carryover makes the floor essentially free).
	InitialBatch int
	// Workers for parallel RR generation; 0 means GOMAXPROCS.
	Workers int
	// NoReuse disables cross-round RR-set reuse: after every residual
	// mutation the collection is regenerated from scratch (and, under the
	// fixed policy, every refinement attempt regenerates its full θ), as
	// the pre-reuse implementation did. Within-round reuse (θ growth on an
	// unchanged residual) is exactly distribution-preserving; cross-round
	// reuse keeps only sets avoiding every deleted node, which is per-root
	// exact but slightly over-represents high-survival roots (see
	// ris.Collection.Filter). NoReuse exists for A/B comparison and
	// debugging.
	NoReuse bool
}

func (o *SamplingOptions) setDefaults() {
	if o.Policy == "" {
		o.Policy = PolicySequential
	}
	if o.Zeta <= 0 {
		o.Zeta = 0.05
	}
	if o.Eps <= 0 {
		o.Eps = 0.2
	}
	if o.Delta <= 0 {
		o.Delta = 0.1
	}
	if o.MaxRefine <= 0 {
		o.MaxRefine = 4
	}
	if o.InitialBatch <= 0 {
		o.InitialBatch = 2048
	}
}

// regime abstracts the concentration bound a sampling policy certifies
// its decisions with: the per-round sample size θ, and high-probability
// spread bounds derived from an observed coverage fraction.
type regime interface {
	name() string
	theta(zeta, delta float64) (int, error)
	// lower/upper convert coverage fraction frac on a residual with
	// nAlive nodes into spread bounds holding with probability ≥ 1−delta
	// at the θ above. Implementations clamp to [0, nAlive].
	lower(frac float64, nAlive int, zeta float64) float64
	upper(frac float64, nAlive int, zeta float64) float64
}

func clampSpread(v float64, nAlive int) float64 {
	if v < 0 {
		return 0
	}
	if n := float64(nAlive); v > n {
		return n
	}
	return v
}
