package adaptive

import (
	"repro/internal/bounds"
	"repro/internal/rng"
)

// additiveRegime is ADDATP's concentration regime: pure additive error ζ
// on the coverage fraction, certified by the Hoeffding bound (Lemma 4),
// with the per-round sample size θ = ln(8/δ)/(2ζ²) of Algorithm 3.
type additiveRegime struct{}

func (additiveRegime) name() string { return "addatp" }

func (additiveRegime) theta(zeta, delta float64) (int, error) {
	return bounds.HoeffdingTheta(zeta, delta)
}

func (additiveRegime) lower(frac float64, nAlive int, zeta float64) float64 {
	return clampSpread((frac-zeta)*float64(nAlive), nAlive)
}

func (additiveRegime) upper(frac float64, nAlive int, zeta float64) float64 {
	return clampSpread((frac+zeta)*float64(nAlive), nAlive)
}

// RunADDATP executes Algorithm 3: adaptive greedy where each round's
// seeding/stopping decision is certified from RR samples within additive
// error n_i·ζ (Hoeffding), seeding while the certified marginal profit is
// positive and stopping as soon as every target's upper bound is ≤ 0.
func RunADDATP(inst *Instance, env *Environment, opts SamplingOptions, r *rng.RNG) (*RunResult, error) {
	return runSampling(inst, env, additiveRegime{}, opts, r)
}
