package adaptive

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// fig1Graph is the paper's Fig. 1(a) graph (v1..v7 -> 0..6), the same
// transcription as in internal/cascade's tests.
func fig1Graph() *graph.Graph {
	return graph.MustFromEdges(7, true, []graph.Edge{
		{From: 0, To: 1, P: 0.4},
		{From: 1, To: 2, P: 0.8},
		{From: 1, To: 3, P: 0.7},
		{From: 3, To: 2, P: 0.6},
		{From: 2, To: 4, P: 0.5},
		{From: 4, To: 5, P: 0.3},
		{From: 5, To: 4, P: 0.7},
		{From: 5, To: 6, P: 0.6},
		{From: 6, To: 0, P: 0.2},
		{From: 4, To: 0, P: 0.7},
	})
}

// fig1Realization is the worked example's possible world: seeding v2
// activates {v2,v3,v4}, seeding v6 activates {v6,v5,v7}; everything else
// is dead. It must be built over the instance's own graph because the
// exact oracle checks graph identity.
func fig1Realization(g *graph.Graph) *cascade.Realization {
	return cascade.FromLiveEdges(g, []graph.Edge{
		{From: 1, To: 2}, // v2 -> v3
		{From: 1, To: 3}, // v2 -> v4
		{From: 3, To: 2}, // v4 -> v3
		{From: 5, To: 4}, // v6 -> v5
		{From: 5, To: 6}, // v6 -> v7
	})
}

// fig1Instance is the worked example's ATP instance: target set
// T = {v1, v2, v6} with uniform costs 1.5 each (c(T) = 4.5), so the
// adaptive profit is 3 and the nonadaptive (seed-all) profit is 2.5.
func fig1Instance(t *testing.T) *Instance {
	t.Helper()
	g := fig1Graph()
	targets := []graph.NodeID{0, 1, 5}
	costs, err := cost.Assign(g, targets, 4.5, cost.Uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{G: g, Model: cascade.IC, Targets: targets, Costs: costs}
}

func seedSet(seeds []graph.NodeID) map[graph.NodeID]bool {
	m := make(map[graph.NodeID]bool, len(seeds))
	for _, u := range seeds {
		m[u] = true
	}
	return m
}

// TestADGWorkedExample reproduces the paper's Fig. 1 comparison against
// the exact oracle: adaptive greedy seeds {v2, v6} for realized profit 3,
// while seeding all of T realizes profit 2.5.
func TestADGWorkedExample(t *testing.T) {
	inst := fig1Instance(t)
	exact, err := oracle.NewExact(inst.G)
	if err != nil {
		t.Fatal(err)
	}
	adg, err := RunADG(inst, NewEnvironment(fig1Realization(inst.G)), exact)
	if err != nil {
		t.Fatal(err)
	}
	if adg.Profit != 3 || adg.Spread != 6 {
		t.Fatalf("ADG profit %.2f spread %d, want 3 and 6 (run %+v)", adg.Profit, adg.Spread, adg)
	}
	got := seedSet(adg.Seeds)
	if len(got) != 2 || !got[1] || !got[5] {
		t.Fatalf("ADG seeded %v, want {v2, v6} = {1, 5}", adg.Seeds)
	}

	non, err := RunAllTargets(inst, NewEnvironment(fig1Realization(inst.G)))
	if err != nil {
		t.Fatal(err)
	}
	if non.Profit != 2.5 || non.Spread != 7 {
		t.Fatalf("all-targets profit %.2f spread %d, want 2.5 and 7", non.Profit, non.Spread)
	}
	if adg.Profit <= non.Profit {
		t.Fatalf("adaptive profit %.2f not above nonadaptive %.2f", adg.Profit, non.Profit)
	}
}

// TestSamplingPoliciesMatchExactOracle cross-validates ADDATP and HATP
// against the exact-oracle ground truth on the worked example: both must
// realize profit 3 by seeding exactly {v2, v6} (in either order — the two
// orders activate the same six nodes under this realization).
func TestSamplingPoliciesMatchExactOracle(t *testing.T) {
	inst := fig1Instance(t)
	opts := SamplingOptions{Zeta: 0.05, Eps: 0.2, Delta: 0.1, Workers: 1}
	for _, algo := range []string{AlgoADDATP, AlgoHATP} {
		run, err := Run(inst, NewEnvironment(fig1Realization(inst.G)), algo, RunOptions{Sampling: opts}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if run.Profit != 3 || run.Spread != 6 {
			t.Fatalf("%s profit %.2f spread %d, want 3 and 6 (seeds %v)", algo, run.Profit, run.Spread, run.Seeds)
		}
		got := seedSet(run.Seeds)
		if len(got) != 2 || !got[1] || !got[5] {
			t.Fatalf("%s seeded %v, want {1, 5}", algo, run.Seeds)
		}
		if run.RRDrawn <= 0 || run.RRRequested < run.RRDrawn {
			t.Fatalf("%s RR accounting drawn=%d requested=%d", algo, run.RRDrawn, run.RRRequested)
		}
	}
}

// TestNonadaptiveGreedyWorkedExample: on Fig. 1 the expected marginal
// profit of v1 given {v2, v6} is negative (≈ 0.37 − 1.5), so nonadaptive
// greedy keeps {v2, v6} and beats seeding all of T.
func TestNonadaptiveGreedyWorkedExample(t *testing.T) {
	inst := fig1Instance(t)
	run, err := RunNonadaptiveGreedy(inst, NewEnvironment(fig1Realization(inst.G)), 40_000, rng.New(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	got := seedSet(run.Seeds)
	if len(got) != 2 || !got[1] || !got[5] {
		t.Fatalf("nonadaptive greedy chose %v, want {1, 5}", run.Seeds)
	}
	if run.Profit != 3 {
		t.Fatalf("nonadaptive greedy profit %.2f, want 3 on this realization", run.Profit)
	}
}

// TestDeterminism: two runs with the same seed must produce identical
// seed sequences (and identical accounting) for every policy.
func TestDeterminism(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.PrefAttach, N: 300, AvgDeg: 5, Directed: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := Prepare(g, cascade.IC, Setup{K: 10, CostSetting: cost.DegreeProportional, LBTheta: 5000, Seed: 21, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Sampling: SamplingOptions{Workers: 2}, ADGTheta: 2000, NSGTheta: 4000}
	for _, algo := range Algorithms {
		a, err := RunExperiment(inst, algo, 2, opts, 5)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		b, err := RunExperiment(inst, algo, 2, opts, 5)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for i := range a.Runs {
			ra, rb := a.Runs[i], b.Runs[i]
			if len(ra.Seeds) != len(rb.Seeds) {
				t.Fatalf("%s run %d: %v vs %v", algo, i, ra.Seeds, rb.Seeds)
			}
			for j := range ra.Seeds {
				if ra.Seeds[j] != rb.Seeds[j] {
					t.Fatalf("%s run %d seed %d differs: %v vs %v", algo, i, j, ra.Seeds, rb.Seeds)
				}
			}
			if ra.Profit != rb.Profit || ra.RRDrawn != rb.RRDrawn {
				t.Fatalf("%s run %d: profit %v/%v rr %d/%d", algo, i, ra.Profit, rb.Profit, ra.RRDrawn, rb.RRDrawn)
			}
		}
	}
}

// TestPreparedInstanceProfitNonnegative: under the paper's spread-
// calibrated costs the adaptive policies should average nonnegative
// profit on a generated graph.
func TestPreparedInstanceProfitNonnegative(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.PrefAttach, N: 400, AvgDeg: 5, Directed: true, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	inst, immRes, err := Prepare(g, cascade.IC, Setup{K: 15, CostSetting: cost.DegreeProportional, LBTheta: 20_000, Seed: 41, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Targets) != len(immRes.Seeds) {
		t.Fatalf("targets %d != IMM seeds %d", len(inst.Targets), len(immRes.Seeds))
	}
	opts := RunOptions{Sampling: SamplingOptions{Workers: 2}}
	for _, algo := range []string{AlgoADDATP, AlgoHATP} {
		rep, err := RunExperiment(inst, algo, 5, opts, 51)
		if err != nil {
			t.Fatal(err)
		}
		if rep.AvgProfit < 0 {
			t.Fatalf("%s average profit %.2f negative under calibrated costs", algo, rep.AvgProfit)
		}
		if rep.AvgSpread <= 0 || rep.AvgRounds <= 0 {
			t.Fatalf("%s degenerate report %+v", algo, rep)
		}
	}
}

// TestEnvironmentObservation: observing a seed removes its cascade and a
// dead seed activates nothing.
func TestEnvironmentObservation(t *testing.T) {
	env := NewEnvironment(fig1Realization(fig1Graph()))
	a := env.Observe(1)
	if len(a) != 3 {
		t.Fatalf("A(v2) = %v, want 3 nodes", a)
	}
	if env.Residual().Alive(2) {
		t.Fatal("v3 still alive after observation")
	}
	if again := env.Observe(1); len(again) != 0 {
		t.Fatalf("dead seed activated %v", again)
	}
	if env.Activated() != 3 {
		t.Fatalf("activated count %d, want 3", env.Activated())
	}
}

// TestHATPCheaperThanADDATP: at equal (ζ, δ) the hybrid bound's per-round
// sample size is linear in 1/ζ vs quadratic, so HATP must draw fewer RR
// sets than ADDATP on the same instance. This is a property of the
// paper's fixed-θ schedules — under the sequential controller both
// regimes share the anytime bound and differ only in the θ cap, so the
// claim is pinned to PolicyFixed.
func TestHATPCheaperThanADDATP(t *testing.T) {
	inst := fig1Instance(t)
	opts := SamplingOptions{Policy: PolicyFixed, Zeta: 0.02, Eps: 0.3, Delta: 0.1, Workers: 1}
	add, err := RunADDATP(inst, NewEnvironment(fig1Realization(inst.G)), opts, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := RunHATP(inst, NewEnvironment(fig1Realization(inst.G)), opts, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if hyb.RRDrawn >= add.RRDrawn {
		t.Fatalf("HATP drew %d RR sets, ADDATP %d; hybrid bound should be cheaper", hyb.RRDrawn, add.RRDrawn)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	inst := fig1Instance(t)
	if _, err := Run(inst, NewEnvironment(fig1Realization(inst.G)), "nope", RunOptions{}, rng.New(1)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestInstanceValidate(t *testing.T) {
	inst := fig1Instance(t)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Instance{G: inst.G, Targets: []graph.NodeID{99}, Costs: inst.Costs}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := (&Instance{G: inst.G, Costs: inst.Costs}).Validate(); err == nil {
		t.Fatal("empty target set accepted")
	}
}
