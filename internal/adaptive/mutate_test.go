package adaptive

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// mutatedSteppedRun drives a session with a topology delta applied after
// every observed round: churn 1% of the edges (gen.ChurnDeltas, seeded
// deterministically per round), re-sample the realized world on the
// mutated graph in lockstep with the session's residual, and continue.
// When checkpoint is true, the session is additionally serialized and
// restored at every boundary — before each proposal, while the proposal
// is pending, and immediately after each delta — always onto the BASE
// instance, so the restore exercises the checkpoint's delta-log replay.
func mutatedSteppedRun(t *testing.T, base *Instance, tc sessionCase, seed uint64, checkpoint bool) *RunResult {
	t.Helper()
	root := rng.New(seed)
	world := root.Split()
	algoRNG := root.Split()
	env := NewEnvironment(cascade.Sample(base.G, base.Model, world))
	sess, err := NewSession(base, tc.algo, tc.opts, algoRNG)
	if err != nil {
		t.Fatalf("NewSession %s: %v", tc.name, err)
	}
	round := 0
	touchedSomething := false
	for {
		if checkpoint {
			sess = roundTrip(t, base, sess, ResumeOptions{})
		}
		u, stop, err := sess.NextSeed()
		if err != nil {
			t.Fatalf("NextSeed %s round %d: %v", tc.name, round, err)
		}
		if stop {
			break
		}
		if checkpoint {
			sess = roundTrip(t, base, sess, ResumeOptions{})
			u2, stop2, err := sess.NextSeed()
			if err != nil || stop2 || u2 != u {
				t.Fatalf("pending seed not restored: got (%d,%v,%v), want (%d,false,nil)", u2, stop2, err, u)
			}
		}
		if err := sess.Observe(env.Observe(u)); err != nil {
			t.Fatalf("Observe %s round %d: %v", tc.name, round, err)
		}
		round++

		// Churn the topology between rounds; the delta is a deterministic
		// function of (current graph, round), identical across the
		// checkpointed and straight-through runs.
		cur := sess.Instance().G
		ins, dels := gen.ChurnDeltas(cur, 0.01, rng.New(seed*1009+uint64(round)))
		dres, err := sess.Mutate(ins, dels)
		if err != nil {
			t.Fatalf("Mutate %s round %d: %v", tc.name, round, err)
		}
		if len(dres.Touched) > 0 {
			touchedSomething = true
		}
		if got := sess.Instance().G.Epoch(); got != int64(round) || sess.Mutations() != round {
			t.Fatalf("%s round %d: epoch %d, mutations %d", tc.name, round, got, sess.Mutations())
		}
		if checkpoint {
			// The boundary the satellite is about: a checkpoint taken
			// immediately after a delta must replay it on restore.
			sess = roundTrip(t, base, sess, ResumeOptions{})
		}
		// Re-sample the realized world on the mutated graph, residual view
		// in lockstep with the session's.
		rz := cascade.Sample(sess.Instance().G, base.Model, rng.New(seed*2003+uint64(round)))
		env = NewEnvironmentAt(rz, sess.CloneResidual(), sess.Spread())
	}
	if !sess.Done() {
		t.Fatalf("%s: session not done after stop", tc.name)
	}
	if round > 0 && !touchedSomething {
		t.Fatalf("%s: %d deltas touched nothing; churn too weak to test invalidation", tc.name, round)
	}
	return sess.Result()
}

// TestSessionCheckpointWithMutations: for every algorithm and sampling
// policy, a campaign mutated between every pair of rounds and
// checkpoint/restored at every boundary — including immediately after a
// delta — finishes identically to the same mutated campaign run straight
// through. Restores always target the base instance, so this pins the
// checkpoint delta log end to end: serialize, replay via ApplyDelta,
// re-home the residual, resume sampling bit-identically.
func TestSessionCheckpointWithMutations(t *testing.T) {
	inst := nethept005Instance(t, "")
	for _, tc := range sessionCases() {
		ref := mutatedSteppedRun(t, inst, tc, 7, false)
		got := mutatedSteppedRun(t, inst, tc, 7, true)
		compareRuns(t, tc.name+"/mutate", got, ref)
	}
}

// TestSessionMutateExactOracle covers the exact-enumeration ADG oracle
// across deltas on the worked example: the oracle is rebuilt on each
// mutated graph (edge-count-conserving churn keeps it within the
// enumeration bound), straight-through and checkpointed runs agree, and
// no RR sets are ever drawn.
func TestSessionMutateExactOracle(t *testing.T) {
	inst := fig1Instance(t)
	tc := sessionCase{name: "adg-exact", algo: AlgoADG, opts: RunOptions{}}
	ref := mutatedSteppedRun(t, inst, tc, 3, false)
	got := mutatedSteppedRun(t, inst, tc, 3, true)
	compareRuns(t, tc.name+"/mutate", got, ref)
	if ref.RRDrawn != 0 {
		t.Fatalf("exact-oracle ADG drew %d RR sets; wrong oracle selected", ref.RRDrawn)
	}
}

// TestSessionMutateContract pins the misuse errors and the quiescence
// requirement: no mutating over a pending proposal, a finished campaign,
// or with a delta the graph rejects — and a rejected delta leaves the
// session fully usable.
func TestSessionMutateContract(t *testing.T) {
	inst := fig1Instance(t)
	sess, err := NewSession(inst, AlgoAllTargets, RunOptions{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	u, stop, err := sess.NextSeed()
	if err != nil || stop {
		t.Fatalf("NextSeed: (%v, %v)", stop, err)
	}
	if _, err := sess.Mutate(nil, nil); err == nil {
		t.Fatal("Mutate with a pending seed succeeded")
	}
	if err := sess.Observe([]graph.NodeID{u}); err != nil {
		t.Fatal(err)
	}
	// A rejected delta (absent delete) must not advance the epoch.
	if _, err := sess.Mutate(nil, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1}}); err == nil {
		t.Fatal("Mutate deleting more parallels than exist succeeded")
	}
	if sess.Mutations() != 0 {
		t.Fatalf("rejected delta logged: %d mutations", sess.Mutations())
	}
	if _, err := sess.Mutate([]graph.Edge{{From: 0, To: 6, P: 0.5}}, nil); err != nil {
		t.Fatalf("valid mutate: %v", err)
	}
	if sess.Mutations() != 1 || sess.Instance().G.Epoch() != 1 {
		t.Fatalf("mutation not logged: %d mutations, epoch %d", sess.Mutations(), sess.Instance().G.Epoch())
	}
	rz := cascade.Sample(sess.Instance().G, inst.Model, rng.New(9))
	env := NewEnvironmentAt(rz, sess.CloneResidual(), sess.Spread())
	for {
		u, stop, err := sess.NextSeed()
		if err != nil {
			t.Fatal(err)
		}
		if stop {
			break
		}
		if err := sess.Observe(env.Observe(u)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Mutate(nil, nil); err == nil {
		t.Fatal("Mutate on a finished campaign succeeded")
	}
}
