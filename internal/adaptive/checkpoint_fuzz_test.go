package adaptive

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/rng"
)

// fuzzInstance is fig1Instance without the *testing.T plumbing, so the
// fuzz target can build it once.
func fuzzInstance(f *testing.F) *Instance {
	f.Helper()
	g := fig1Graph()
	targets := []graph.NodeID{0, 1, 5}
	costs, err := cost.Assign(g, targets, 4.5, cost.Uniform, nil)
	if err != nil {
		f.Fatal(err)
	}
	return &Instance{G: g, Model: cascade.IC, Targets: targets, Costs: costs}
}

// FuzzResumeSession feeds arbitrary bytes — and mutations of a genuine
// checkpoint — to the session decoder. The service layer's CRC64
// envelope catches accidental damage before the blob gets here, but the
// decoder is the last line of defense against a hostile or buggy writer:
// it must return an error for anything it cannot replay, never panic.
func FuzzResumeSession(f *testing.F) {
	inst := fuzzInstance(f)
	sess, err := NewSession(inst, AlgoADDATP, RunOptions{}, rng.New(5))
	if err != nil {
		f.Fatal(err)
	}
	env := NewEnvironment(fig1Realization(inst.G))
	if u, stop, err := sess.NextSeed(); err != nil || stop {
		f.Fatalf("next: stop=%v err=%v", stop, err)
	} else if err := sess.Observe(env.Observe(u)); err != nil {
		f.Fatal(err)
	}
	blob, err := sess.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint"))
	for i := 0; i < len(blob); i += 31 { // seed a few single-byte flips
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xA5
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ResumeSession(inst, data, ResumeOptions{})
		if err != nil {
			return
		}
		// Accepted blobs must yield a session that can at least report
		// its state without exploding.
		_ = s.Rounds()
		_ = s.Seeds()
		_ = s.Spread()
	})
}
