package adaptive

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/ris"
	"repro/internal/rng"
)

// Checkpoint format: a versioned little-endian binary blob holding
// everything a mid-campaign Session needs to resume bit-identically in
// another process — committed seeds and spread, the pending proposal, the
// algorithm RNG's raw state, the residual's alive list in swap-remove
// order (the order feeds uniform root sampling, so it must survive
// verbatim), and the per-algorithm stepper state (RR collection snapshots
// plus accounting).
//
// Deliberately absent, because each is a pure function of what is stored:
// coverage counts and the CSR inverted index (rebuilt from the restored
// sets), sampler pools (stateless between batches — workers reseed from
// the session RNG every batch), and wall-clock telemetry (SamplingNS
// restarts at zero; every other RunResult field of a resumed campaign
// matches the uninterrupted run exactly).
//
// The sampling options ride in the blob and are authoritative on resume:
// Workers shapes the draw→substream mapping, so silently resuming under a
// different worker count would fork the RNG stream. An instance
// fingerprint (graph shape, model, targets, costs) guards against
// restoring onto the wrong instance. Unknown versions and torn payloads
// fail loudly.
// Version 2 added the topology-delta log: the fingerprint field names the
// *base* instance (the one the session was created on) and the log of
// Mutate calls rides in the blob, so ResumeSession reconstructs the
// current graph by replaying the deltas through graph.ApplyDelta — the
// replayed graph is per-node structurally identical to the original
// mutated one, so sampling stays bit-identical. Version 1 blobs (no log)
// are rejected; no committed artifacts exist in that format.
const (
	ckptMagic   = uint64(0x4154505345535331) // "ATPSESS1"
	ckptVersion = uint32(2)
)

// Stepper payload tags (one per algorithm family).
const (
	ckptStepSeq = uint8(iota + 1)
	ckptStepFixed
	ckptStepADG
	ckptStepNSG
	ckptStepAllTargets
)

// ADG oracle kinds.
const (
	ckptOracleExact = uint8(0) // stateless; rebuilt from the instance
	ckptOracleRIS   = uint8(1)
)

// instFingerprint hashes the parts of the instance a checkpoint depends
// on. Two instances with equal fingerprints sample identically, so a
// restored session behaves as if it had never stopped.
func instFingerprint(inst *Instance) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w(uint64(inst.G.N()))
	w(uint64(inst.G.M()))
	w(uint64(inst.Model))
	w(uint64(len(inst.Targets)))
	for _, u := range inst.Targets {
		w(uint64(uint32(u)))
		w(math.Float64bits(inst.Costs.Cost(u)))
	}
	return h.Sum64()
}

// ---------------------------------------------------------------------------
// Little-endian writer/reader with a sticky error (reader side) so the
// codec reads as straight-line field lists.

type ckptWriter struct {
	buf []byte
}

func (w *ckptWriter) u8(v uint8) { w.buf = append(w.buf, v) }
func (w *ckptWriter) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}
func (w *ckptWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *ckptWriter) i(v int)       { w.u64(uint64(int64(v))) }
func (w *ckptWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *ckptWriter) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *ckptWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *ckptWriter) nodes(ns []graph.NodeID) {
	w.u64(uint64(len(ns)))
	for _, u := range ns {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(u))
	}
}
func (w *ckptWriter) i32s(vs []int32) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(v))
	}
}

type ckptReader struct {
	buf []byte
	off int
	err error
}

func (r *ckptReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("adaptive: checkpoint: "+format, args...)
	}
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("truncated at offset %d (need %d of %d bytes)", r.off, n, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *ckptReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ckptReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *ckptReader) i64() int64   { return int64(r.u64()) }
func (r *ckptReader) i() int       { return int(int64(r.u64())) }
func (r *ckptReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *ckptReader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("corrupt bool at offset %d", r.off-1)
		return false
	}
}

func (r *ckptReader) str() string {
	n := r.u64()
	if n > uint64(len(r.buf)) {
		r.fail("string length %d exceeds payload", n)
		return ""
	}
	return string(r.take(int(n)))
}

func (r *ckptReader) length() int {
	n := r.u64()
	if n > uint64(len(r.buf)) { // cheap sanity cap: counts can't exceed bytes
		r.fail("slice length %d exceeds payload", n)
		return 0
	}
	return int(n)
}

func (r *ckptReader) nodes() []graph.NodeID {
	n := r.length()
	b := r.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (r *ckptReader) i32s() []int32 {
	n := r.length()
	b := r.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (w *ckptWriter) edges(es []graph.Edge) {
	w.u64(uint64(len(es)))
	for _, e := range es {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(e.From))
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(e.To))
		w.f64(e.P)
	}
}

func (r *ckptReader) edges() []graph.Edge {
	n := r.length()
	b := r.take(16 * n)
	if b == nil {
		return nil
	}
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{
			From: graph.NodeID(binary.LittleEndian.Uint32(b[16*i:])),
			To:   graph.NodeID(binary.LittleEndian.Uint32(b[16*i+4:])),
			P:    math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:])),
		}
	}
	return out
}

func (w *ckptWriter) deltaLog(deltas []sessionDelta) {
	w.u64(uint64(len(deltas)))
	for _, d := range deltas {
		w.edges(d.inserts)
		w.edges(d.deletes)
	}
}

func (r *ckptReader) deltaLog() []sessionDelta {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]sessionDelta, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, sessionDelta{inserts: r.edges(), deletes: r.edges()})
	}
	return out
}

func (w *ckptWriter) collection(st ris.CollectionState) {
	w.nodes(st.Arena)
	w.i32s(st.Offsets)
	w.nodes(st.Roots)
	w.i64(st.Version)
	w.i(st.Requested)
}

func (r *ckptReader) collection() ris.CollectionState {
	return ris.CollectionState{
		Arena:     r.nodes(),
		Offsets:   r.i32s(),
		Roots:     r.nodes(),
		Version:   r.i64(),
		Requested: r.i(),
	}
}

func (w *ckptWriter) batcher(st ris.BatcherState) {
	w.boolean(st.HasCol)
	if st.HasCol {
		w.collection(st.Col)
	}
	w.i64(st.Drawn)
	w.i64(st.Requested)
	w.i64(st.Reused)
	w.i64(st.PeakBytes)
	w.i(st.Batches)
}

func (r *ckptReader) batcher() ris.BatcherState {
	st := ris.BatcherState{HasCol: r.boolean()}
	if st.HasCol {
		st.Col = r.collection()
	}
	st.Drawn = r.i64()
	st.Requested = r.i64()
	st.Reused = r.i64()
	st.PeakBytes = r.i64()
	st.Batches = r.i()
	return st
}

// ---------------------------------------------------------------------------
// Encode.

// Checkpoint serializes the session between API calls (never during one —
// sessions are quiescent between calls by construction). A voided session
// (Err != nil) cannot be checkpointed: its in-flight batch state is
// undefined.
func (s *Session) Checkpoint() ([]byte, error) {
	if s.err != nil {
		return nil, fmt.Errorf("adaptive: checkpoint of a voided session: %w", s.err)
	}
	w := &ckptWriter{buf: make([]byte, 0, 1024)}
	w.u64(ckptMagic)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, ckptVersion)
	// The fingerprint names the base instance; the delta log carries the
	// session to its current topology on resume.
	w.u64(s.baseFP)
	w.deltaLog(s.deltas)
	w.str(s.algo)

	// Options (authoritative on resume; see package comment above).
	w.str(s.opts.Sampling.Policy)
	w.f64(s.opts.Sampling.Zeta)
	w.f64(s.opts.Sampling.Eps)
	w.f64(s.opts.Sampling.Delta)
	w.i(s.opts.Sampling.MaxRefine)
	w.i(s.opts.Sampling.InitialBatch)
	w.i(s.opts.Sampling.Workers)
	w.boolean(s.opts.Sampling.NoReuse)
	w.i(s.opts.ADGTheta)
	w.i(s.opts.NSGTheta)

	// Campaign progress.
	w.boolean(s.done)
	w.boolean(s.havePending)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(s.pending))
	w.i(s.spread)
	w.nodes(s.seeds)

	// Algorithm RNG (absent for RNG-free steppers driven via RunADG /
	// RunAllTargets shells).
	w.boolean(s.r != nil)
	if s.r != nil {
		state, inc := s.r.State()
		w.u64(state)
		w.u64(inc)
	}

	// Residual view: the alive list in swap-remove order plus version.
	w.i64(s.res.Version())
	w.nodes(s.res.AliveList())

	// Stepper payload.
	switch st := s.step.(type) {
	case *seqStepper:
		w.u8(ckptStepSeq)
		w.i(st.fallbacks)
		w.i(st.attempts)
		w.i(st.certifiedEarly)
		w.batcher(st.b.State())
	case *fixedStepper:
		w.u8(ckptStepFixed)
		w.i(st.fallbacks)
		w.i(st.attempts)
		w.i(st.batches)
		w.i(st.certifiedEarly)
		w.i64(st.drawn)
		w.i64(st.requested)
		w.i64(st.reused)
		w.i64(st.peakBytes)
		w.boolean(st.col != nil)
		if st.col != nil {
			w.collection(st.col.State())
		}
	case *adgStepper:
		w.u8(ckptStepADG)
		switch orc := st.orc.(type) {
		case *oracle.Exact, *oracle.ExactLT:
			w.u8(ckptOracleExact)
		case *oracle.RIS:
			if err := orc.Err(); err != nil {
				return nil, fmt.Errorf("adaptive: checkpoint of a voided RIS oracle: %w", err)
			}
			w.u8(ckptOracleRIS)
			ost := orc.State()
			w.u64(ost.RNGState)
			w.u64(ost.RNGInc)
			w.i(ost.Theta)
			w.i(ost.Workers)
			w.boolean(ost.Reuse)
			w.i64(ost.CachedVersion)
			w.i(ost.CachedAlive)
			w.batcher(ost.Batcher)
		default:
			return nil, fmt.Errorf("adaptive: checkpoint: oracle %T is not serializable", st.orc)
		}
	case *nsgStepper:
		w.u8(ckptStepNSG)
		w.boolean(st.selected)
		w.nodes(st.chosen)
		w.i(st.idx)
		w.i64(st.drawn)
		w.i64(st.requested)
		w.i64(st.peakBytes)
	case *allTargetsStepper:
		w.u8(ckptStepAllTargets)
		w.i(st.idx)
	default:
		return nil, fmt.Errorf("adaptive: checkpoint: unknown stepper %T", s.step)
	}
	return w.buf, nil
}

// ---------------------------------------------------------------------------
// Decode.

// ResumeOptions configures a session restore.
type ResumeOptions struct {
	// Batcher, when non-nil, donates warm storage to the restored session
	// exactly as RunOptions.Batcher does for a fresh one (sequential
	// sampling policy only; ignored otherwise).
	Batcher *ris.Batcher
	// Interrupt is installed via Session.SetInterrupt after restore.
	Interrupt func() error
}

// ResumeSession rebuilds a session from a Checkpoint blob on the same
// instance (same graph, model, targets, costs — enforced by fingerprint).
// The restored session's subsequent NextSeed/Observe sequence, and its
// final Result, are bit-identical to the uninterrupted original's (except
// SamplingNS, which restarts at zero).
func ResumeSession(inst *Instance, data []byte, ropts ResumeOptions) (*Session, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	r := &ckptReader{buf: data}
	if m := r.u64(); r.err == nil && m != ckptMagic {
		return nil, fmt.Errorf("adaptive: checkpoint: bad magic %#x (not a session checkpoint)", m)
	}
	verB := r.take(4)
	if r.err != nil {
		return nil, r.err
	}
	if v := binary.LittleEndian.Uint32(verB); v != ckptVersion {
		return nil, fmt.Errorf("adaptive: checkpoint: version %d not supported (this build reads %d)", v, ckptVersion)
	}
	baseFP := r.u64()
	if r.err == nil && baseFP != instFingerprint(inst) {
		return nil, fmt.Errorf("adaptive: checkpoint: instance fingerprint mismatch (checkpoint %#x, instance %#x) — wrong dataset, model, scale, or cost setting", baseFP, instFingerprint(inst))
	}
	deltas := r.deltaLog()
	if r.err != nil {
		return nil, r.err
	}
	// Replay the mutation log onto the base instance: the replayed graph is
	// per-node structurally identical to the one the checkpointed session
	// held, so the restored RR state and RNG stream line up exactly.
	base := inst
	for i, d := range deltas {
		ng, _, err := inst.G.ApplyDelta(d.inserts, d.deletes)
		if err != nil {
			return nil, fmt.Errorf("adaptive: checkpoint: replaying topology delta %d/%d: %w", i+1, len(deltas), err)
		}
		inst = &Instance{G: ng, Model: base.Model, Targets: base.Targets, Costs: base.Costs}
	}
	algo := r.str()

	var opts RunOptions
	opts.Sampling.Policy = r.str()
	opts.Sampling.Zeta = r.f64()
	opts.Sampling.Eps = r.f64()
	opts.Sampling.Delta = r.f64()
	opts.Sampling.MaxRefine = r.i()
	opts.Sampling.InitialBatch = r.i()
	opts.Sampling.Workers = r.i()
	opts.Sampling.NoReuse = r.boolean()
	opts.ADGTheta = r.i()
	opts.NSGTheta = r.i()
	opts.Batcher = ropts.Batcher
	opts.Interrupt = ropts.Interrupt

	done := r.boolean()
	havePending := r.boolean()
	var pending graph.NodeID
	if b := r.take(4); b != nil {
		pending = graph.NodeID(binary.LittleEndian.Uint32(b))
	}
	spread := r.i()
	seeds := r.nodes()

	hasRNG := r.boolean()
	var rngState, rngInc uint64
	if hasRNG {
		rngState = r.u64()
		rngInc = r.u64()
	}

	resVersion := r.i64()
	alive := r.nodes()

	stepTag := r.u8()
	if r.err != nil {
		return nil, r.err
	}

	// Rebuild the stepper without consuming the session RNG: every draw the
	// original made is already reflected in the serialized RNG state.
	var step stepper
	switch stepTag {
	case ckptStepSeq:
		if algo != AlgoADDATP && algo != AlgoHATP {
			return nil, fmt.Errorf("adaptive: checkpoint: sequential stepper under algorithm %q", algo)
		}
		fallbacks, attempts, certified := r.i(), r.i(), r.i()
		bst := r.batcher()
		if r.err != nil {
			return nil, r.err
		}
		st, err := newSeqStepper(inst, regimeFor(algo, opts.Sampling), opts.Sampling, ropts.Batcher)
		if err != nil {
			return nil, err
		}
		st.fallbacks, st.attempts, st.certifiedEarly = fallbacks, attempts, certified
		if err := st.b.RestoreState(bst, inst.G.N()); err != nil {
			return nil, err
		}
		step = st
	case ckptStepFixed:
		if algo != AlgoADDATP && algo != AlgoHATP {
			return nil, fmt.Errorf("adaptive: checkpoint: fixed stepper under algorithm %q", algo)
		}
		st, err := newFixedStepper(inst, regimeFor(algo, opts.Sampling), opts.Sampling)
		if err != nil {
			return nil, err
		}
		st.fallbacks, st.attempts, st.batches, st.certifiedEarly = r.i(), r.i(), r.i(), r.i()
		st.drawn, st.requested, st.reused, st.peakBytes = r.i64(), r.i64(), r.i64(), r.i64()
		if r.boolean() {
			cst := r.collection()
			if r.err != nil {
				return nil, r.err
			}
			st.col = ris.NewCollection(inst.G.N())
			if err := st.col.RestoreState(cst); err != nil {
				return nil, err
			}
		}
		step = st
	case ckptStepADG:
		if algo != AlgoADG {
			return nil, fmt.Errorf("adaptive: checkpoint: ADG stepper under algorithm %q", algo)
		}
		switch kind := r.u8(); kind {
		case ckptOracleExact:
			// Stateless: rebuild from the instance (must succeed — it did
			// when the checkpoint was written, and the fingerprint matched).
			var orc oracle.Oracle
			var err error
			switch inst.Model {
			case cascade.IC:
				orc, err = oracle.NewExact(inst.G)
			case cascade.LT:
				orc, err = oracle.NewExactLT(inst.G)
			default:
				err = fmt.Errorf("adaptive: checkpoint: exact oracle under model %v", inst.Model)
			}
			if err != nil {
				return nil, err
			}
			step = newADGStepper(orc)
		case ckptOracleRIS:
			var ost oracle.RISState
			ost.RNGState = r.u64()
			ost.RNGInc = r.u64()
			ost.Theta = r.i()
			ost.Workers = r.i()
			ost.Reuse = r.boolean()
			ost.CachedVersion = r.i64()
			ost.CachedAlive = r.i()
			ost.Batcher = r.batcher()
			if r.err != nil {
				return nil, r.err
			}
			if ost.Theta <= 0 {
				return nil, fmt.Errorf("adaptive: checkpoint: RIS theta %d", ost.Theta)
			}
			ro := oracle.NewRIS(inst.Model, ost.Theta, rng.New(0))
			if err := ro.RestoreState(ost, inst.G.N()); err != nil {
				return nil, err
			}
			step = newADGStepper(ro)
		default:
			return nil, fmt.Errorf("adaptive: checkpoint: unknown oracle kind %d", kind)
		}
	case ckptStepNSG:
		if algo != AlgoNSG {
			return nil, fmt.Errorf("adaptive: checkpoint: NSG stepper under algorithm %q", algo)
		}
		st := &nsgStepper{theta: opts.NSGTheta, workers: opts.Sampling.Workers}
		st.selected = r.boolean()
		st.chosen = r.nodes()
		st.idx = r.i()
		st.drawn, st.requested, st.peakBytes = r.i64(), r.i64(), r.i64()
		step = st
	case ckptStepAllTargets:
		if algo != AlgoAllTargets {
			return nil, fmt.Errorf("adaptive: checkpoint: all-targets stepper under algorithm %q", algo)
		}
		step = &allTargetsStepper{idx: r.i()}
	default:
		return nil, fmt.Errorf("adaptive: checkpoint: unknown stepper tag %d", stepTag)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("adaptive: checkpoint: %d trailing bytes", len(r.buf)-r.off)
	}

	var algoRNG *rng.RNG
	if hasRNG {
		algoRNG = rng.New(0)
		algoRNG.SetState(rngState, rngInc)
	}
	s := newShell(inst, algo, opts, algoRNG, step)
	s.baseFP = baseFP // newShell fingerprinted the replayed instance
	s.deltas = deltas
	if err := s.res.RestoreAlive(alive, resVersion); err != nil {
		return nil, err
	}
	s.seeds = append(s.seeds[:0], seeds...)
	s.spread = spread
	s.pending, s.havePending, s.done = pending, havePending, done
	if ropts.Interrupt != nil {
		s.SetInterrupt(ropts.Interrupt)
	}
	return s, nil
}

// regimeFor maps a sampling algorithm name to its concentration regime
// (the same dispatch NewSession performs).
func regimeFor(algo string, opts SamplingOptions) regime {
	if algo == AlgoHATP {
		return hybridRegime{eps: opts.Eps}
	}
	return additiveRegime{}
}
