// Package adaptive implements the paper's (conf_icde_Huang0XSL20)
// adaptive target profit maximization (ATP) algorithms and the
// nonadaptive baselines they are compared against.
//
// The problem (§III): given a target set T (in the experiments, the top-k
// influential users picked by IMM, §VI-A) and a seeding cost c(u) per
// target, select seeds from T one at a time. After each seed the realized
// cascade is observed (full-adoption feedback), the activated nodes are
// deleted, and the next decision is made on the residual graph G_i. The
// objective is the realized profit ρ(S) = I_φ(S) − c(S), which is
// unconstrained (no cardinality budget): the algorithms stop when no
// remaining target has positive expected marginal profit.
//
// Three policies are provided:
//
//   - ADG (adaptive greedy, §V): queries a spread oracle for
//     E[I_{G_i}({u})] exactly (or via a fixed estimator) and seeds the
//     best target while its marginal profit is positive (RunADG).
//   - ADDATP (Algorithm 3): replaces the oracle with RR-set sampling
//     whose additive error ζ on the coverage fraction is controlled by
//     the Hoeffding bound (bounds.HoeffdingTheta, Lemma 4); each round
//     refines ζ ← ζ/2 until the seeding or stopping decision is
//     certified (RunADDATP).
//   - HATP (Algorithm 4): the hybrid relative+additive martingale bound
//     (bounds.HybridTheta, Lemma 7) certifies the same decisions with a
//     per-round sample size linear in 1/ζ instead of quadratic
//     (RunHATP) — the paper's headline efficiency gain.
//
// Every policy — adaptive and nonadaptive alike — runs as a Session
// (session.go): NextSeed proposes the next target, Observe feeds back the
// realized activations, and the batch Run entry points are a thin
// NextSeed/Observe drive loop over a simulated Environment. The per-round
// decision logic lives in per-policy steppers behind the Session shell,
// and a session can be serialized at any round boundary (Checkpoint) and
// rebuilt later (ResumeSession) to continue bit-identically — the
// internal/service campaign registry and `repro serve` are built on
// exactly this surface. The two sampling policies are a Policy switch
// over steppers:
//
//   - PolicySequential (default) is the sequential sampling controller
//     (seqStepper): one RR collection grows in geometrically doubling
//     batches through a ris.Batcher, and after every batch an
//     anytime-valid confidence sequence (bounds.AnytimeWidth at the
//     spent budget bounds.SpendGeometric) asks whether the seed/stop
//     decision is already certified. The paper's Lemma 4 (Hoeffding) and
//     Lemma 7 (hybrid martingale) bounds certify a decision only at
//     their precomputed θ(ζ_i, δ_i); the anytime empirical-Bernstein
//     bound generalizes them to every batch boundary simultaneously —
//     and adapts to the coverage variance, which is what collapses
//     ADDATP's θ ∝ 1/ζ² refinement cost (≈9× fewer RR draws on
//     nethept-s at scale 0.1, see EXPERIMENTS.md). Undecidable rounds
//     fall back to the point estimate once every target's width reaches
//     ζ/2^MaxRefine — the precision of the fixed loop's final attempt —
//     with θ(ζ_min, δ_round) as an absolute cap. The per-batch check
//     reads the incremental ris.Coverage tracker, O(batch + alive
//     targets) per look.
//   - PolicyFixed (fixedStepper) replays the paper's attempt loop verbatim —
//     draw to θ(ζ_i, δ_i), halve ζ, MaxRefine fallback — and is pinned
//     bit-for-bit to the pre-controller implementation by
//     TestFixedPolicyMatchesPreRefactorGolden, so `--sampler fixed` is
//     the paper-faithful baseline in every A/B.
//
// Under both policies one RR collection persists: refinement grows θ on
// an unchanged residual so earlier samples count toward the new target,
// and after a seeding observation the collection is validity-filtered
// (ris.Collection.Filter) and only the shortfall is redrawn. RunResult's
// RRDrawn / RRReused / RRPeakBytes fields account for the sampling cost,
// the draws avoided by reuse, and the peak RR-storage footprint;
// Attempts / RRBatches / CertifiedEarly / Fallbacks expose the stopping
// rule's behavior round by round.
//
// Nonadaptive baselines (nonadaptive.go): seeding all of T upfront (the
// classic target-set seeding the worked example of Fig. 1 compares
// against) and a nonadaptive greedy that picks a subset of T on RIS
// estimates before any observation.
//
// Prepare (setup.go) builds experiment instances the way §VI-A does: IMM
// picks T, a high-probability spread lower bound E_l[I(T)] becomes the
// seeding budget so ρ(T) ≥ 0, and the budget is split over T per the
// configured cost setting.
package adaptive
