package adaptive

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/rng"
)

// Setup configures Prepare: how the target set is chosen and how costs
// are calibrated, mirroring the paper's experimental procedure (§VI-A).
type Setup struct {
	K           int          // target set size for IMM; default 50
	CostSetting cost.Setting // per-node cost distribution
	// CostScale multiplies the calibrated budget c(T) = E_l[I(T)]; 1 (the
	// default) reproduces the paper's ρ(T) ≥ 0 calibration.
	CostScale float64
	ImmEps    float64 // IMM's ε; default 0.5 (coarse, fast)
	// LBTheta and LBDelta parameterize the spread lower bound used as the
	// budget; defaults 50_000 and 0.01.
	LBTheta int
	LBDelta float64
	Seed    uint64
	Workers int
	// Sampler is the stopping-rule policy the run will use
	// (PolicySequential default). PolicyFixed also pins IMM's target
	// selection to its pre-batcher fresh-per-guess draws, so a fixed-policy
	// pipeline is end-to-end identical to the paper-faithful
	// implementation.
	Sampler string
}

func (s *Setup) setDefaults() {
	if s.K <= 0 {
		s.K = 50
	}
	if s.CostScale <= 0 {
		s.CostScale = 1
	}
	if s.ImmEps <= 0 {
		s.ImmEps = 0.5
	}
	if s.LBTheta <= 0 {
		s.LBTheta = 50_000
	}
	if s.LBDelta <= 0 {
		s.LBDelta = 0.01
	}
}

// Prepare builds an experiment instance the way the paper does: IMM picks
// the target set T as the top-k influential users, a high-probability
// lower bound E_l[I(T)] of T's spread becomes the total seeding budget
// (so the baseline profit ρ(T) = E[I(T)] − c(T) stays nonnegative), and
// the budget is distributed over T per the cost setting.
func Prepare(g *graph.Graph, model cascade.Model, s Setup) (*Instance, *imm.Result, error) {
	s.setDefaults()
	if g.N() < s.K {
		s.K = g.N()
	}
	immRes, err := imm.Select(g, s.K, imm.Options{
		Eps:     s.ImmEps,
		Model:   model,
		Seed:    s.Seed,
		Workers: s.Workers,
		NoReuse: s.Sampler == PolicyFixed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("adaptive: target selection: %w", err)
	}
	if len(immRes.Seeds) == 0 {
		return nil, nil, fmt.Errorf("adaptive: IMM selected no targets")
	}
	budget := imm.SpreadLowerBound(g, model, immRes.Seeds, s.LBTheta, s.LBDelta, s.Seed+1, s.Workers)
	if budget <= 0 {
		// Degenerate graphs (or tiny θ) can push the Hoeffding bound to 0;
		// fall back to the weakest sane budget so costs stay positive.
		budget = float64(len(immRes.Seeds))
	}
	budget *= s.CostScale
	var r *rng.RNG
	if s.CostSetting == cost.Random {
		r = rng.New(s.Seed + 2)
	}
	costs, err := cost.Assign(g, immRes.Seeds, budget, s.CostSetting, r)
	if err != nil {
		return nil, nil, fmt.Errorf("adaptive: cost calibration: %w", err)
	}
	return &Instance{G: g, Model: model, Targets: immRes.Seeds, Costs: costs}, immRes, nil
}
