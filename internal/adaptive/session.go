package adaptive

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/bounds"
	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/ris"
	"repro/internal/rng"
)

// Session is one adaptive campaign as an explicit, resumable state
// machine. The paper's algorithms are inherently interactive — propose a
// seed, observe the realized cascade, recurse on the residual — but the
// historical entry points ran that interaction inside opaque batch
// closures (runSampling, RunADG), so a campaign could neither be driven
// step-wise by an external feedback source nor survive its process.
//
// A Session inverts the control flow: NextSeed computes the algorithm's
// next decision (drawing RR batches as needed) and returns either the
// proposed seed or the stop signal; Observe feeds back the realized
// activations, which the session removes from its own residual view. The
// session owns every piece of per-campaign state the old closures kept on
// their stacks — the graph.Residual, the ris.Batcher/Collection, the RNG,
// round counters — which is what makes Checkpoint/ResumeSession possible.
//
// The batch entry points (Run, RunADDATP, …) are thin drive-to-completion
// loops over a Session against an Environment; their outputs are
// bit-identical to the pre-Session implementations because the per-round
// operation and RNG-consumption order is unchanged — the round bodies
// moved verbatim from runSequential/runFixed/RunADG into the steppers
// below.
//
// A Session is not safe for concurrent use; callers (the service layer)
// serialize access per campaign.
type Session struct {
	inst *Instance
	algo string
	opts RunOptions
	r    *rng.RNG

	// res is the session's own residual view, evolved by Observe in
	// lockstep with the caller's environment: both remove the same
	// activated nodes in the same order, so the alive-list order — and
	// therefore every subsequent uniform root draw — matches the
	// single-residual batch implementation exactly.
	res *graph.Residual

	seeds  []graph.NodeID
	spread int

	pending     graph.NodeID
	havePending bool
	done        bool
	err         error

	interrupt func() error
	step      stepper

	// baseFP fingerprints the instance the session was *created* on;
	// deltas is the log of topology mutations applied since (in order).
	// Checkpoints carry both, so a resume needs only the base instance:
	// the current graph is reproduced by replaying the log through
	// graph.ApplyDelta, which is structurally identical to the original
	// mutated graph per node and therefore samples bit-identically.
	baseFP uint64
	deltas []sessionDelta

	alive []graph.NodeID // aliveTargets scratch
}

// sessionDelta is one committed topology mutation, kept for checkpoint
// replay.
type sessionDelta struct {
	inserts, deletes []graph.Edge
}

// stepper is one algorithm's per-round decision procedure. next computes
// one round on s.res: (seed, false, nil) proposes a seed, (_, true, nil)
// stops the campaign. finishInto copies the stepper's accounting into a
// result. Steppers are quiescent between calls — a checkpoint taken
// between Session API calls captures complete state.
type stepper interface {
	next(s *Session) (graph.NodeID, bool, error)
	finishInto(r *RunResult)
	setInterrupt(f func() error)
	// mutate adapts the stepper's cached sampling state to a topology
	// delta: inst is the post-delta instance and touched the nodes whose
	// RR membership invalidates a set (graph.DeltaResult.Touched). Called
	// between rounds only (no pending seed), and must consume no
	// randomness — the session RNG stream stays aligned with the
	// delta-free prefix of the campaign.
	mutate(inst *Instance, touched []graph.NodeID) error
}

// NewSession validates the instance and builds a stepping campaign for
// the named algorithm. r supplies every random draw the campaign makes;
// for AlgoADG on graphs beyond the exact oracle's reach, construction
// itself splits the RIS oracle's stream off r (matching the batch path's
// consumption order).
func NewSession(inst *Instance, algo string, opts RunOptions, r *rng.RNG) (*Session, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	opts.Sampling.setDefaults()
	var step stepper
	var err error
	switch algo {
	case AlgoADG:
		step = newADGStepper(newADGOracle(inst, opts, r))
	case AlgoADDATP:
		step, err = newSamplingStepper(inst, additiveRegime{}, opts.Sampling, opts.Batcher)
	case AlgoHATP:
		step, err = newSamplingStepper(inst, hybridRegime{eps: opts.Sampling.Eps}, opts.Sampling, opts.Batcher)
	case AlgoNSG:
		step = &nsgStepper{theta: opts.NSGTheta, workers: opts.Sampling.Workers}
	case AlgoAllTargets:
		step = &allTargetsStepper{}
	default:
		return nil, fmt.Errorf("adaptive: unknown algorithm %q (have %v)", algo, Algorithms)
	}
	if err != nil {
		return nil, err
	}
	s := newShell(inst, algo, opts, r, step)
	if opts.Interrupt != nil {
		s.SetInterrupt(opts.Interrupt)
	}
	return s, nil
}

// newShell assembles a session around an already built stepper (shared by
// NewSession, the batch wrappers, and the checkpoint-resume path).
func newShell(inst *Instance, algo string, opts RunOptions, r *rng.RNG, step stepper) *Session {
	return &Session{
		inst:   inst,
		algo:   algo,
		opts:   opts,
		r:      r,
		res:    graph.NewResidual(inst.G),
		baseFP: instFingerprint(inst),
		// Preallocated to the only possible maximum so steady-state
		// stepping never grows it (the warm-instance zero-alloc contract).
		seeds: make([]graph.NodeID, 0, len(inst.Targets)),
		step:  step,
	}
}

// newADGOracle builds the oracle the batch ADG path has always used: the
// per-model exact enumerator on graphs small enough, the RIS oracle
// (stream split off r, reuse matching the sampling options) otherwise.
func newADGOracle(inst *Instance, opts RunOptions, r *rng.RNG) oracle.Oracle {
	if inst.Model == cascade.IC {
		if exact, err := oracle.NewExact(inst.G); err == nil {
			return exact
		}
	} else if inst.Model == cascade.LT {
		if exact, err := oracle.NewExactLT(inst.G); err == nil {
			return exact
		}
	}
	w := opts.Sampling.Workers
	if w <= 0 { // same convention as GenerateParallel
		w = runtime.GOMAXPROCS(0)
	}
	ro := oracle.NewRIS(inst.Model, opts.ADGTheta, r.Split())
	ro.SetWorkers(w)
	// Large-graph ADG keeps its RR pool across rounds, filtering out
	// invalidated sets and topping up the shortfall, matching the sampling
	// policies' reuse strategy.
	ro.SetReuse(!opts.Sampling.NoReuse)
	return ro
}

// NextSeed advances the campaign to its next decision: (u, false, nil)
// proposes seeding u — the caller must Observe the realized activations
// before asking again (asking again without observing returns the same
// pending seed) — and (_, true, nil) means the campaign is over (no
// remaining target has certified-positive marginal profit, or every
// target is spent). A non-nil error voids the campaign.
func (s *Session) NextSeed() (graph.NodeID, bool, error) {
	if s.err != nil {
		return 0, true, s.err
	}
	if s.done {
		return 0, true, nil
	}
	if s.havePending {
		return s.pending, false, nil
	}
	if s.interrupt != nil {
		if err := s.interrupt(); err != nil {
			s.err = err
			return 0, true, err
		}
	}
	u, stop, err := s.step.next(s)
	if err != nil {
		s.err = err
		return 0, true, err
	}
	if stop {
		s.done = true
		return 0, true, nil
	}
	s.pending, s.havePending = u, true
	return u, false, nil
}

// Observe commits the pending seed and feeds back its realized cascade:
// activated is the set of nodes the seeding newly activated (the paper's
// full-adoption feedback; Environment.Observe returns exactly this set).
// The session removes them from its residual and counts them toward the
// realized spread. Nodes already removed are ignored, so replaying an
// observation is harmless.
func (s *Session) Observe(activated []graph.NodeID) error {
	if s.err != nil {
		return s.err
	}
	if s.done {
		return fmt.Errorf("adaptive: Observe on a finished campaign")
	}
	if !s.havePending {
		return fmt.Errorf("adaptive: Observe without a pending seed (call NextSeed first)")
	}
	n := graph.NodeID(s.inst.G.N())
	for _, u := range activated {
		if u < 0 || u >= n {
			return fmt.Errorf("adaptive: observed node %d outside [0,%d)", u, n)
		}
	}
	s.seeds = append(s.seeds, s.pending)
	s.havePending = false
	for _, u := range activated {
		if s.res.Remove(u) {
			s.spread++
		}
	}
	return nil
}

// Mutate applies a topology delta to the live campaign between rounds:
// the graph gains inserts and loses deletes (graph.ApplyDelta), the
// residual view is re-homed onto the new graph with its alive-list order
// — and therefore every subsequent uniform root draw — preserved, and the
// stepper invalidates exactly the cached RR sets that touch a changed
// edge's target, keeping the rest. The delta is appended to the session's
// replay log, so checkpoints taken after a mutation restore onto the base
// instance and replay to the current graph.
//
// Only quiescent sessions mutate: a pending seed must be Observed first
// (the proposal was computed on the old topology), and finished or voided
// campaigns refuse. Mutate consumes no randomness. The exact-enumeration
// ADG oracle is rebuilt on the new graph and fails if the delta pushed it
// past oracle.MaxExactEdges; nonadaptive steppers keep their upfront
// selection, exactly their seeds-chosen-in-advance semantics.
func (s *Session) Mutate(inserts, deletes []graph.Edge) (*graph.DeltaResult, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.done {
		return nil, fmt.Errorf("adaptive: Mutate on a finished campaign")
	}
	if s.havePending {
		return nil, fmt.Errorf("adaptive: Mutate with a pending seed (Observe it first)")
	}
	newG, dres, err := s.inst.G.ApplyDelta(inserts, deletes)
	if err != nil {
		return nil, err
	}
	newInst := &Instance{G: newG, Model: s.inst.Model, Targets: s.inst.Targets, Costs: s.inst.Costs}
	res := graph.NewResidual(newG)
	if err := res.RestoreAlive(s.res.AliveList(), s.res.Version()); err != nil {
		return nil, err
	}
	if err := s.step.mutate(newInst, dres.Touched); err != nil {
		return nil, err
	}
	s.inst = newInst
	s.res = res
	s.deltas = append(s.deltas, sessionDelta{
		inserts: append([]graph.Edge(nil), inserts...),
		deletes: append([]graph.Edge(nil), deletes...),
	})
	return dres, nil
}

// Drive runs the session to completion against an environment — the batch
// entry points' loop, shared with tests and the simulated service mode.
func (s *Session) Drive(env *Environment) (*RunResult, error) {
	for {
		u, stop, err := s.NextSeed()
		if err != nil {
			return nil, err
		}
		if stop {
			break
		}
		if err := s.Observe(env.Observe(u)); err != nil {
			return nil, err
		}
	}
	return s.Result(), nil
}

// Result snapshots the campaign outcome in the batch RunResult shape.
// Wall-clock-independent fields of a completed session match the batch
// run's exactly; on a live session it reports progress so far.
func (s *Session) Result() *RunResult {
	r := s.inst.finishResult(s.algo, s.seeds, s.spread)
	s.step.finishInto(r)
	return r
}

// Accessors for drivers (the service layer, checkpoint headers).
func (s *Session) Algo() string { return s.algo }
func (s *Session) Done() bool   { return s.done }
func (s *Session) Err() error   { return s.err }
func (s *Session) Rounds() int  { return len(s.seeds) }
func (s *Session) Spread() int  { return s.spread }

// Instance returns the session's current instance — the post-delta one
// after Mutate calls. Drivers re-homing environments or adopting
// per-epoch warm state read the live graph through it.
func (s *Session) Instance() *Instance { return s.inst }

// Mutations returns the number of topology deltas applied so far (the
// current graph's epoch relative to the base instance).
func (s *Session) Mutations() int { return len(s.deltas) }

// Seeds returns a copy of the seeds committed so far, in seeding order.
func (s *Session) Seeds() []graph.NodeID {
	return append([]graph.NodeID(nil), s.seeds...)
}

// Pending returns the proposed-but-unobserved seed, if any.
func (s *Session) Pending() (graph.NodeID, bool) { return s.pending, s.havePending }

// CloneResidual returns an independent copy of the session's residual
// view, alive-list order included — the resume path uses it to rebuild a
// simulated environment in lockstep with the restored session.
func (s *Session) CloneResidual() *graph.Residual { return s.res.Clone() }

// SetInterrupt installs a cancellation poll: it is checked before every
// round and, for the RR-sampling steppers, mid-batch inside the draw
// loops (ris.SamplerPool.SetInterrupt), so closing a campaign or
// exceeding a sweep cell budget stops within a stride of draws rather
// than at the next round boundary. The function must be safe for
// concurrent use.
func (s *Session) SetInterrupt(f func() error) {
	s.interrupt = f
	s.step.setInterrupt(f)
}

// ---------------------------------------------------------------------------
// Sequential-policy stepper (the PolicySequential round body, moved
// verbatim from the former runSequential loop).

type seqStepper struct {
	reg  regime
	opts SamplingOptions
	b    *ris.Batcher

	deltaRound float64
	zetaMin    float64
	capTheta   int

	fallbacks, attempts, certifiedEarly int
}

// newSamplingStepper builds the stepper for the configured sampling
// policy. warm, when non-nil, donates its storage (collection arenas,
// coverage counts, pool scratch) to the sequential controller; it is
// Reset first, so campaign results are independent of what it previously
// held. The fixed policy manages its collection directly and ignores it.
func newSamplingStepper(inst *Instance, reg regime, opts SamplingOptions, warm *ris.Batcher) (stepper, error) {
	switch opts.Policy {
	case PolicySequential:
		return newSeqStepper(inst, reg, opts, warm)
	case PolicyFixed:
		return newFixedStepper(inst, reg, opts)
	default:
		return nil, fmt.Errorf("adaptive: unknown sampling policy %q (have %v)", opts.Policy, SamplingPolicies)
	}
}

func newSeqStepper(inst *Instance, reg regime, opts SamplingOptions, warm *ris.Batcher) (*seqStepper, error) {
	// Union bound over rounds only: the run seeds at most |T| targets, and
	// within a round the confidence sequence spends its δ_round across
	// looks by itself.
	deltaRound := opts.Delta / float64(len(inst.Targets))
	zetaMin := opts.Zeta / math.Exp2(float64(opts.MaxRefine))
	capTheta, err := reg.theta(zetaMin, deltaRound)
	if err != nil {
		return nil, fmt.Errorf("adaptive: %s: %w", reg.name(), err)
	}
	b := warm
	if b != nil {
		if b.Model() != inst.Model {
			return nil, fmt.Errorf("adaptive: warm batcher draws under %v, instance needs %v", b.Model(), inst.Model)
		}
		b.Reset()
	} else {
		b = ris.NewBatcher(inst.Model)
	}
	b.SetReuse(!opts.NoReuse)
	b.EnableCoverage()
	return &seqStepper{
		reg: reg, opts: opts, b: b,
		deltaRound: deltaRound, zetaMin: zetaMin, capTheta: capTheta,
	}, nil
}

func (st *seqStepper) setInterrupt(f func() error) { st.b.SetInterrupt(f) }

func (st *seqStepper) mutate(_ *Instance, touched []graph.NodeID) error {
	// Survivors are valid RR sets of the new graph at the unchanged
	// residual version, so the next round's Sync keeps them and GrowTo
	// draws only the shortfall.
	st.b.Invalidate(touched)
	return nil
}

func (st *seqStepper) next(s *Session) (graph.NodeID, bool, error) {
	res := s.res
	s.alive = s.inst.aliveTargets(res, s.alive)
	if len(s.alive) == 0 {
		return 0, true, nil
	}
	nAlive := res.N()
	carried := st.b.Sync(res)
	target := st.opts.InitialBatch
	if carried > target {
		target = carried
	}
	if target > st.capTheta {
		target = st.capTheta
	}
	for k := 1; ; k++ {
		n, err := st.b.GrowTo(res, s.r, target, st.opts.Workers)
		if err != nil {
			return 0, true, err
		}
		st.attempts++
		if n == 0 {
			return 0, true, nil
		}
		deltaK := bounds.SpendGeometric(st.deltaRound, k)
		// Per-target marginal profit from the tracked containment counts.
		// The effective sample size is the full collection, which can
		// exceed this look's target when a round starts from a larger
		// filtered carry-over. Within-round growth keeps the certificates
		// exact (same residual, independent samples); sets kept across
		// rounds additionally carry Filter's root-mix tilt, so cross-round
		// certificates are exact per root but approximate in the root
		// marginal — NoReuse restores the paper's from-scratch sampling
		// when that matters.
		best := graph.NodeID(-1)
		bestProfit, bestLower := 0.0, 0.0
		maxUpper, maxWidth := 0.0, 0.0
		for _, u := range s.alive {
			frac := float64(st.b.Count(u)) / float64(n)
			w := bounds.AnytimeWidth(n, frac, deltaK)
			cost := s.inst.Costs.Cost(u)
			profit := clampSpread(frac*float64(nAlive), nAlive) - cost
			if best < 0 || profit > bestProfit || (profit == bestProfit && s.inst.G.Before(u, best)) {
				best, bestProfit = u, profit
				bestLower = clampSpread((frac-w)*float64(nAlive), nAlive) - cost
			}
			if up := clampSpread((frac+w)*float64(nAlive), nAlive) - cost; up > maxUpper {
				maxUpper = up
			}
			if w > maxWidth {
				maxWidth = w
			}
		}
		switch {
		case bestLower > 0:
			// Seeding certified.
			if maxWidth > st.zetaMin && n < st.capTheta {
				st.certifiedEarly++
			}
			return best, false, nil
		case maxUpper <= 0:
			// Stopping certified: no target can have positive profit.
			if maxWidth > st.zetaMin && n < st.capTheta {
				st.certifiedEarly++
			}
			return 0, true, nil
		case maxWidth <= st.zetaMin || n >= st.capTheta:
			// Precision frontier reached: every estimate is within the
			// fixed loop's terminal ζ_min, so deciding on the point
			// estimate is at least as sharp as the fixed fallback.
			st.fallbacks++
			if bestProfit > 0 {
				return best, false, nil
			}
			return 0, true, nil
		default:
			target = 2 * n
			if target > st.capTheta {
				target = st.capTheta
			}
		}
	}
}

func (st *seqStepper) finishInto(r *RunResult) {
	r.RRDrawn = st.b.Drawn()
	r.RRRequested = st.b.Requested()
	r.RRReused = st.b.Reused()
	r.RRPeakBytes = st.b.PeakBytes()
	r.SamplingNS = st.b.SamplingNS()
	r.RRVisits = st.b.Visits()
	r.RREdgeTouches = st.b.EdgeTouches()
	r.Fallbacks = st.fallbacks
	r.Attempts = st.attempts
	r.RRBatches = st.b.Batches()
	r.CertifiedEarly = st.certifiedEarly
	r.Sampler = PolicySequential
}

// ---------------------------------------------------------------------------
// Fixed-policy stepper (the PolicyFixed attempt loop, moved verbatim from
// the former runFixed; bit-identical RNG consumption and decisions).

type fixedStepper struct {
	reg  regime
	opts SamplingOptions

	deltaRound float64
	col        *ris.Collection
	// One persistent sampler pool serves every attempt of every round:
	// per-worker scratch (visited marks, stacks, chunks) survives across
	// the run instead of being reallocated per generation call.
	pool *ris.SamplerPool

	fallbacks, attempts, batches, certifiedEarly int
	drawn, requested, reused, peakBytes          int64
	samplingNS                                   int64
}

func newFixedStepper(inst *Instance, reg regime, opts SamplingOptions) (*fixedStepper, error) {
	// Union bound: each round may resample up to MaxRefine+1 times and the
	// run lasts at most |T| rounds.
	deltaRound := opts.Delta / float64(len(inst.Targets)*(opts.MaxRefine+1))
	return &fixedStepper{
		reg: reg, opts: opts,
		deltaRound: deltaRound,
		pool:       ris.NewSamplerPool(inst.Model),
	}, nil
}

func (st *fixedStepper) setInterrupt(f func() error) { st.pool.SetInterrupt(f) }

func (st *fixedStepper) mutate(_ *Instance, touched []graph.NodeID) error {
	// Under NoReuse the next attempt resets the collection anyway; with
	// reuse, drop exactly the sets touching the delta and count the
	// survivors as carried over, mirroring the filter/top-up accounting.
	if !st.opts.NoReuse && st.col != nil {
		st.reused += int64(st.col.InvalidateTouching(touched))
	}
	return nil
}

func (st *fixedStepper) next(s *Session) (graph.NodeID, bool, error) {
	res := s.res
	s.alive = s.inst.aliveTargets(res, s.alive)
	if len(s.alive) == 0 {
		return 0, true, nil
	}
	nAlive := res.N()
	zeta := st.opts.Zeta
	for attempt := 0; ; attempt++ {
		theta, err := st.reg.theta(zeta, st.deltaRound)
		if err != nil {
			return 0, true, fmt.Errorf("adaptive: %s round %d: %w", st.reg.name(), len(s.seeds)+1, err)
		}
		st.attempts++
		if st.opts.NoReuse || st.col == nil {
			if st.col == nil {
				st.col = ris.NewCollection(res.FullN())
			} else {
				st.col.Reset() // fresh θ, warm storage
			}
			start := time.Now()
			st.pool.AppendParallel(st.col, res, s.r.Split(), theta, st.opts.Workers)
			st.samplingNS += time.Since(start).Nanoseconds()
			if err := st.pool.Err(); err != nil {
				return 0, true, err
			}
			st.drawn += int64(st.col.Len())
			st.requested += int64(st.col.Requested())
			st.batches++
		} else {
			kept := st.col.Filter(res)
			if kept > theta {
				kept = theta // draws avoided vs a from-scratch attempt
			}
			st.reused += int64(kept)
			if shortfall := theta - st.col.Len(); shortfall > 0 {
				before := st.col.Len()
				start := time.Now()
				st.pool.AppendParallel(st.col, res, s.r.Split(), shortfall, st.opts.Workers)
				st.samplingNS += time.Since(start).Nanoseconds()
				if err := st.pool.Err(); err != nil {
					return 0, true, err
				}
				st.drawn += int64(st.col.Len() - before)
				st.requested += int64(shortfall)
				st.batches++
			}
		}
		if b := st.col.Bytes(); b > st.peakBytes {
			st.peakBytes = b
		}
		if st.col.Len() == 0 {
			return 0, true, nil
		}
		// Per-target marginal profit from single-node coverage counts.
		// The effective sample size is col.Len(), which can exceed this
		// attempt's θ when a new round starts from a larger filtered
		// collection. For within-round growth the certificates hold
		// verbatim (same residual, independent samples, θ' ≥ θ); sets
		// kept across rounds additionally carry Filter's root-mix tilt,
		// so cross-round certificates are exact per root but approximate
		// in the root marginal — NoReuse restores the paper's
		// from-scratch sampling when that matters.
		best := graph.NodeID(-1)
		bestProfit, bestFrac := 0.0, 0.0
		maxUpper := 0.0
		for _, u := range s.alive {
			frac := float64(st.col.CountContaining(u)) / float64(st.col.Len())
			est := clampSpread(frac*float64(nAlive), nAlive)
			profit := est - s.inst.Costs.Cost(u)
			if best < 0 || profit > bestProfit || (profit == bestProfit && s.inst.G.Before(u, best)) {
				best, bestProfit, bestFrac = u, profit, frac
			}
			if up := st.reg.upper(frac, nAlive, zeta) - s.inst.Costs.Cost(u); up > maxUpper {
				maxUpper = up
			}
		}
		lowerBest := st.reg.lower(bestFrac, nAlive, zeta) - s.inst.Costs.Cost(best)
		switch {
		case lowerBest > 0:
			// Seeding certified.
			if attempt < st.opts.MaxRefine {
				st.certifiedEarly++
			}
			return best, false, nil
		case maxUpper <= 0:
			// Stopping certified: no target can have positive profit.
			if attempt < st.opts.MaxRefine {
				st.certifiedEarly++
			}
			return 0, true, nil
		case attempt >= st.opts.MaxRefine:
			// Confidence budget exhausted; decide on the estimate.
			st.fallbacks++
			if bestProfit > 0 {
				return best, false, nil
			}
			return 0, true, nil
		default:
			zeta /= 2
		}
	}
}

func (st *fixedStepper) finishInto(r *RunResult) {
	r.RRDrawn = st.drawn
	r.RRRequested = st.requested
	r.RRReused = st.reused
	r.RRPeakBytes = st.peakBytes
	r.SamplingNS = st.samplingNS
	r.RRVisits = int64(st.pool.Visits())
	r.RREdgeTouches = int64(st.pool.EdgeTouches())
	r.Fallbacks = st.fallbacks
	r.Attempts = st.attempts
	r.RRBatches = st.batches
	r.CertifiedEarly = st.certifiedEarly
	r.Sampler = PolicyFixed
}

// ---------------------------------------------------------------------------
// ADG stepper (the oracle-greedy round body, moved verbatim from the
// former RunADG loop).

// batchOracle is the concurrent-singleton-query fast path (oracle.RIS
// with workers set); the floats are identical to per-node ExpectedSpread
// calls, so the policy's picks don't depend on which path ran.
type batchOracle interface {
	SingleSpreads(res *graph.Residual, nodes []graph.NodeID, out []float64)
}

type adgStepper struct {
	orc     oracle.Oracle
	bo      batchOracle
	batched bool
	spreads []float64
	query   []graph.NodeID
}

func newADGStepper(orc oracle.Oracle) *adgStepper {
	st := &adgStepper{orc: orc, query: make([]graph.NodeID, 1)}
	st.bo, st.batched = orc.(batchOracle)
	return st
}

func (st *adgStepper) setInterrupt(f func() error) {
	if ro, ok := st.orc.(*oracle.RIS); ok {
		ro.SetInterrupt(f)
	}
}

func (st *adgStepper) mutate(inst *Instance, touched []graph.NodeID) error {
	switch orc := st.orc.(type) {
	case *oracle.Exact:
		// Exact enumeration is captured against one graph; rebuild on the
		// new one (stateless, no randomness). A delta can push the edge
		// count past the enumeration bound — surface that, don't seed on
		// stale worlds.
		nw, err := oracle.NewExact(inst.G)
		if err != nil {
			return err
		}
		st.orc = nw
	case *oracle.ExactLT:
		nw, err := oracle.NewExactLT(inst.G)
		if err != nil {
			return err
		}
		st.orc = nw
	case *oracle.RIS:
		orc.InvalidateTopology(touched)
	default:
		return fmt.Errorf("adaptive: mutate under oracle %T", st.orc)
	}
	st.bo, st.batched = st.orc.(batchOracle)
	return nil
}

func (st *adgStepper) next(s *Session) (graph.NodeID, bool, error) {
	res := s.res
	s.alive = s.inst.aliveTargets(res, s.alive)
	if len(s.alive) == 0 {
		return 0, true, nil
	}
	if st.batched {
		if cap(st.spreads) < len(s.alive) {
			st.spreads = make([]float64, len(s.alive))
		}
		st.spreads = st.spreads[:len(s.alive)]
		st.bo.SingleSpreads(res, s.alive, st.spreads)
	}
	best := graph.NodeID(-1)
	bestProfit := 0.0
	for i, u := range s.alive {
		var spread float64
		if st.batched {
			spread = st.spreads[i]
		} else {
			st.query[0] = u
			spread = st.orc.ExpectedSpread(res, st.query)
		}
		p := spread - s.inst.Costs.Cost(u)
		if p > bestProfit || (p == bestProfit && best >= 0 && s.inst.G.Before(u, best)) {
			best, bestProfit = u, p
		}
	}
	// An interrupted RIS refresh voids every answer above; surface it
	// instead of seeding on garbage.
	if ro, ok := st.orc.(*oracle.RIS); ok {
		if err := ro.Err(); err != nil {
			return 0, true, err
		}
	}
	if best < 0 || bestProfit <= 0 {
		return 0, true, nil
	}
	return best, false, nil
}

func (st *adgStepper) finishInto(r *RunResult) {
	if ro, ok := st.orc.(*oracle.RIS); ok {
		r.RRDrawn = ro.TotalDrawn()
		r.RRRequested = ro.TotalRequested()
		r.RRReused = ro.TotalReused()
		r.RRPeakBytes = ro.PeakRRBytes()
		r.SamplingNS = ro.SamplingNS()
		r.RRVisits = ro.TotalVisits()
		r.RREdgeTouches = ro.TotalEdgeTouches()
	}
}

// ---------------------------------------------------------------------------
// Nonadaptive steppers: selection happens once, then the chosen seeds are
// dispensed one per round so nonadaptive baselines flow through the same
// session lifecycle (and the same service endpoints) as the adaptive
// policies.

type nsgStepper struct {
	theta, workers int

	selected bool
	chosen   []graph.NodeID
	idx      int

	drawn, requested, peakBytes, samplingNS int64
}

func (st *nsgStepper) setInterrupt(func() error) {}

// Nonadaptive: seeds were chosen upfront on the pre-delta graph and are
// dispensed regardless — the world changing underneath is exactly the
// regime the nonadaptive baseline is measured in.
func (st *nsgStepper) mutate(*Instance, []graph.NodeID) error { return nil }

func (st *nsgStepper) next(s *Session) (graph.NodeID, bool, error) {
	if !st.selected {
		chosen, col, samplingNS, err := NonadaptiveGreedySelect(s.inst, st.theta, s.r, st.workers)
		if err != nil {
			return 0, true, err
		}
		st.selected = true
		st.chosen = chosen
		st.samplingNS = samplingNS
		if col != nil {
			st.drawn = int64(col.Len())
			st.requested = int64(col.Requested())
			st.peakBytes = col.Bytes()
		}
	}
	if st.idx >= len(st.chosen) {
		return 0, true, nil
	}
	u := st.chosen[st.idx]
	st.idx++
	// Chosen upfront, dispensed even if a previous seed's cascade already
	// activated it — seeding a dead node activates nothing, exactly the
	// nonadaptive semantics of the batch implementation.
	return u, false, nil
}

func (st *nsgStepper) finishInto(r *RunResult) {
	r.RRDrawn = st.drawn
	r.RRRequested = st.requested
	r.RRPeakBytes = st.peakBytes
	r.SamplingNS = st.samplingNS
}

type allTargetsStepper struct {
	idx int
}

func (st *allTargetsStepper) setInterrupt(func() error) {}

func (st *allTargetsStepper) mutate(*Instance, []graph.NodeID) error { return nil }

func (st *allTargetsStepper) next(s *Session) (graph.NodeID, bool, error) {
	if st.idx >= len(s.inst.Targets) {
		return 0, true, nil
	}
	u := s.inst.Targets[st.idx]
	st.idx++
	return u, false, nil
}

func (st *allTargetsStepper) finishInto(*RunResult) {}

// runSampling keeps the historical batch contract of Algorithms 3 and 4
// (RunADDATP, RunHATP): validate, default, build the policy's stepper,
// and drive the session against env. Each round estimates every alive
// target's marginal spread as n_i·Cov(u)/θ from RR sets on the residual
// graph, and then either seeds the best target (profit lower bound
// positive), terminates (every upper bound ≤ 0), or draws more — falling
// back to the point estimate at the policy's sampling frontier so a
// marginal profit sitting exactly at 0 cannot loop forever.
func runSampling(inst *Instance, env *Environment, reg regime, opts SamplingOptions, r *rng.RNG) (*RunResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	step, err := newSamplingStepper(inst, reg, opts, nil)
	if err != nil {
		return nil, err
	}
	return newShell(inst, reg.name(), RunOptions{Sampling: opts}, r, step).Drive(env)
}
