package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() || got.Directed() != g.Directed() {
		t.Fatalf("round trip changed shape: N %d->%d M %d->%d", g.N(), got.N(), g.M(), got.M())
	}
	for _, e := range g.Edges() {
		p, ok := got.EdgeProbability(e.From, e.To)
		if !ok || p != e.P {
			t.Fatalf("edge %+v became p=%v ok=%v", e, p, ok)
		}
	}
}

func TestReadUndirectedHeader(t *testing.T) {
	in := "# a comment\nn 3 undirected\n0 1 0.5\n1 0 0.5\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Directed() {
		t.Fatal("graph should be undirected")
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}

func TestReadDefaultProbability(t *testing.T) {
	in := "n 2 directed\n0 1\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g.EdgeProbability(0, 1)
	if !ok || p != 1 {
		t.Fatalf("default probability = %v, want 1", p)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"edge before header", "0 1 0.5\n"},
		{"duplicate header", "n 2 directed\nn 2 directed\n"},
		{"bad count", "n x directed\n"},
		{"bad type", "n 2 sideways\n"},
		{"bad source", "n 2 directed\nx 1 0.5\n"},
		{"bad target", "n 2 directed\n0 y 0.5\n"},
		{"bad probability", "n 2 directed\n0 1 z\n"},
		{"out of range", "n 2 directed\n0 5 0.5\n"},
		{"self loop", "n 2 directed\n1 1 0.5\n"},
		{"extra fields", "n 2 directed\n0 1 0.5 9\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Read accepted %q", c.name, c.in)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "\n# header comment\n\nn 2 directed\n# mid comment\n0 1 0.25\n\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}
