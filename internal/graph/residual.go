package graph

// Residual is a view of a Graph with a subset of nodes removed — the
// paper's residual graph G_i obtained by deleting every node activated by
// earlier seeds. It is a mask over the immutable CSR arrays: removal is
// O(1), membership checks are O(1), and no adjacency is copied.
//
// A Residual is not safe for concurrent mutation; concurrent readers are
// fine between mutations. Clone produces an independent view sharing the
// underlying Graph.
type Residual struct {
	g       *Graph
	removed []bool
	alive   int
	version int64 // bumped on every mutation; lets caches detect staleness
}

// NewResidual returns a residual view of g with all nodes alive.
func NewResidual(g *Graph) *Residual {
	return &Residual{g: g, removed: make([]bool, g.N()), alive: g.N()}
}

// Graph returns the underlying immutable graph.
func (r *Residual) Graph() *Graph { return r.g }

// N returns the number of alive nodes (the paper's n_i).
func (r *Residual) N() int { return r.alive }

// FullN returns the node count of the underlying graph.
func (r *Residual) FullN() int { return r.g.N() }

// Version returns a counter that changes whenever the alive set changes.
func (r *Residual) Version() int64 { return r.version }

// Alive reports whether node u is still present.
func (r *Residual) Alive(u NodeID) bool { return !r.removed[u] }

// Remove deletes node u from the view. Removing an already-removed node is
// a no-op. Returns true if the node was alive.
func (r *Residual) Remove(u NodeID) bool {
	if r.removed[u] {
		return false
	}
	r.removed[u] = true
	r.alive--
	r.version++
	return true
}

// RemoveAll deletes every node in us.
func (r *Residual) RemoveAll(us []NodeID) {
	for _, u := range us {
		r.Remove(u)
	}
}

// AliveNodes returns the alive node IDs in increasing order. Allocates.
func (r *Residual) AliveNodes() []NodeID {
	out := make([]NodeID, 0, r.alive)
	for u := 0; u < len(r.removed); u++ {
		if !r.removed[u] {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// M returns the number of directed edges with both endpoints alive (the
// paper's m_i). O(M); used by complexity accounting, not hot paths.
func (r *Residual) M() int64 {
	var m int64
	for u := int32(0); u < int32(r.g.N()); u++ {
		if r.removed[u] {
			continue
		}
		adj, _ := r.g.OutNeighbors(u)
		for _, v := range adj {
			if !r.removed[v] {
				m++
			}
		}
	}
	return m
}

// Clone returns an independent copy of the view over the same Graph.
func (r *Residual) Clone() *Residual {
	cp := &Residual{
		g:       r.g,
		removed: make([]bool, len(r.removed)),
		alive:   r.alive,
		version: r.version,
	}
	copy(cp.removed, r.removed)
	return cp
}

// Reset restores all nodes to alive.
func (r *Residual) Reset() {
	for i := range r.removed {
		r.removed[i] = false
	}
	r.alive = r.g.N()
	r.version++
}

// Materialize builds a standalone Graph containing only alive nodes, with
// nodes renumbered densely. It returns the new graph plus old->new and
// new->old ID mappings. Used by tests and by the exact oracle, where
// enumeration cost depends on the materialized size.
func (r *Residual) Materialize() (*Graph, map[NodeID]NodeID, []NodeID) {
	oldToNew := make(map[NodeID]NodeID, r.alive)
	newToOld := make([]NodeID, 0, r.alive)
	for u := int32(0); u < int32(r.g.N()); u++ {
		if !r.removed[u] {
			oldToNew[u] = NodeID(len(newToOld))
			newToOld = append(newToOld, u)
		}
	}
	b := NewBuilder(r.alive, r.g.Directed())
	for _, oldU := range newToOld {
		adj, ps := r.g.OutNeighbors(oldU)
		for i, oldV := range adj {
			if newV, ok := oldToNew[oldV]; ok {
				// Endpoints alive by construction; errors impossible here.
				_ = b.AddEdge(oldToNew[oldU], newV, ps[i])
			}
		}
	}
	return b.Build(), oldToNew, newToOld
}
