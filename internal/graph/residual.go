package graph

import "fmt"

// Residual is a view of a Graph with a subset of nodes removed — the
// paper's residual graph G_i obtained by deleting every node activated by
// earlier seeds. It is a mask over the immutable CSR arrays: removal is
// O(1), membership checks are O(1), and no adjacency is copied.
//
// The alive-node list is maintained incrementally (swap-remove on Remove,
// rebuilt only on Reset), so uniform root sampling reads it in O(1) via
// AliveList instead of rebuilding an O(N) slice per residual version.
//
// A Residual is not safe for concurrent mutation; concurrent readers are
// fine between mutations. Clone produces an independent view sharing the
// underlying Graph.
type Residual struct {
	g *Graph
	// aliveList holds the alive node IDs in an order determined by the
	// removal history (swap-remove); pos[u] is u's index in aliveList, or
	// -1 when u has been removed.
	aliveList []NodeID
	pos       []int32
	version   int64 // bumped on every mutation; lets caches detect staleness
}

// NewResidual returns a residual view of g with all nodes alive.
func NewResidual(g *Graph) *Residual {
	r := &Residual{
		g:         g,
		aliveList: make([]NodeID, g.N()),
		pos:       make([]int32, g.N()),
	}
	r.fillAlive()
	return r
}

// fillAlive resets the alive bookkeeping to "all nodes alive, increasing
// ORIGINAL-ID order". On identity-numbered graphs that is 0..n-1; on a
// degree-renumbered graph slot i holds the internal ID of original node
// i, so uniform root draws (alive[Intn(n)]) land on the same original
// node under either numbering — the root-sampling half of the
// renumbering invariance contract.
func (r *Residual) fillAlive() {
	r.aliveList = r.aliveList[:r.g.N()]
	for u := range r.aliveList {
		v := r.g.InternalID(NodeID(u))
		r.aliveList[u] = v
		r.pos[v] = int32(u)
	}
}

// Graph returns the underlying immutable graph.
func (r *Residual) Graph() *Graph { return r.g }

// N returns the number of alive nodes (the paper's n_i).
func (r *Residual) N() int { return len(r.aliveList) }

// FullN returns the node count of the underlying graph.
func (r *Residual) FullN() int { return r.g.N() }

// Version returns a counter that changes whenever the alive set changes.
func (r *Residual) Version() int64 { return r.version }

// Alive reports whether node u is still present.
func (r *Residual) Alive(u NodeID) bool { return r.pos[u] >= 0 }

// Remove deletes node u from the view in O(1) (swap-remove on the alive
// list). Removing an already-removed node is a no-op. Returns true if the
// node was alive.
func (r *Residual) Remove(u NodeID) bool {
	i := r.pos[u]
	if i < 0 {
		return false
	}
	last := len(r.aliveList) - 1
	moved := r.aliveList[last]
	r.aliveList[i] = moved
	r.pos[moved] = i
	r.aliveList = r.aliveList[:last]
	r.pos[u] = -1
	r.version++
	return true
}

// RemoveAll deletes every node in us.
func (r *Residual) RemoveAll(us []NodeID) {
	for _, u := range us {
		r.Remove(u)
	}
}

// AliveList returns the alive node IDs without allocating. The slice
// aliases internal storage, must not be modified, and is only valid until
// the next mutation; its order is a deterministic function of the removal
// history (not sorted). Samplers draw uniform roots from it directly.
func (r *Residual) AliveList() []NodeID { return r.aliveList }

// AliveNodes returns a copy of the alive node IDs in increasing order.
// Allocates; hot paths should use AliveList.
func (r *Residual) AliveNodes() []NodeID {
	out := make([]NodeID, 0, len(r.aliveList))
	for u := 0; u < len(r.pos); u++ {
		if r.pos[u] >= 0 {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// M returns the number of directed edges with both endpoints alive (the
// paper's m_i). O(M); used by complexity accounting, not hot paths.
func (r *Residual) M() int64 {
	var m int64
	for u := int32(0); u < int32(r.g.N()); u++ {
		if r.pos[u] < 0 {
			continue
		}
		adj, _ := r.g.OutNeighbors(u)
		for _, v := range adj {
			if r.pos[v] >= 0 {
				m++
			}
		}
	}
	return m
}

// Clone returns an independent copy of the view over the same Graph,
// including the alive-list order, so sampling after a clone matches
// sampling after the original's history.
func (r *Residual) Clone() *Residual {
	cp := &Residual{
		g:         r.g,
		aliveList: make([]NodeID, len(r.aliveList), r.g.N()),
		pos:       make([]int32, len(r.pos)),
		version:   r.version,
	}
	copy(cp.aliveList, r.aliveList)
	copy(cp.pos, r.pos)
	return cp
}

// RestoreAlive rewrites the view to exactly the given alive list — in the
// given order — and version counter, discarding the current state. It is
// the checkpoint-restore counterpart of AliveList: the list order is a
// deterministic function of the removal history and feeds uniform root
// sampling, so restoring it verbatim makes post-restore sampling
// bit-identical to the uninterrupted run. The input slice is copied.
func (r *Residual) RestoreAlive(alive []NodeID, version int64) error {
	n := NodeID(r.g.N())
	if len(alive) > int(n) {
		return fmt.Errorf("graph: restore with %d alive nodes on a %d-node graph", len(alive), n)
	}
	for i := range r.pos {
		r.pos[i] = -1
	}
	r.aliveList = r.aliveList[:0]
	for i, u := range alive {
		if u < 0 || u >= n {
			return fmt.Errorf("graph: restore alive node %d outside [0,%d)", u, n)
		}
		if r.pos[u] >= 0 {
			return fmt.Errorf("graph: restore alive list repeats node %d", u)
		}
		r.pos[u] = int32(i)
		r.aliveList = append(r.aliveList, u)
	}
	r.version = version
	return nil
}

// Reset restores all nodes to alive (and the alive list to increasing
// order).
func (r *Residual) Reset() {
	r.fillAlive()
	r.version++
}

// Materialize builds a standalone Graph containing only alive nodes, with
// nodes renumbered densely. It returns the new graph plus old->new and
// new->old ID mappings. Used by tests and by the exact oracle, where
// enumeration cost depends on the materialized size.
func (r *Residual) Materialize() (*Graph, map[NodeID]NodeID, []NodeID) {
	oldToNew := make(map[NodeID]NodeID, len(r.aliveList))
	newToOld := make([]NodeID, 0, len(r.aliveList))
	for u := int32(0); u < int32(r.g.N()); u++ {
		if r.pos[u] >= 0 {
			oldToNew[u] = NodeID(len(newToOld))
			newToOld = append(newToOld, u)
		}
	}
	b := NewBuilder(len(r.aliveList), r.g.Directed())
	for _, oldU := range newToOld {
		adj, ps := r.g.OutNeighbors(oldU)
		for i, oldV := range adj {
			if newV, ok := oldToNew[oldV]; ok {
				// Endpoints alive by construction; errors impossible here.
				_ = b.AddEdge(oldToNew[oldU], newV, ps[i])
			}
		}
	}
	return b.Build(), oldToNew, newToOld
}
