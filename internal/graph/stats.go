package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes a graph in the shape of the paper's Table II (dataset
// details: n, m, type, average degree), extended with the degree
// distribution facts that drive the experiments.
type Stats struct {
	N          int
	M          int64   // directed edge count as stored
	Type       string  // "directed" or "undirected" (declared)
	AvgDegree  float64 // Table II convention: m/n with m counted per declared type
	MaxOutDeg  int
	MaxInDeg   int
	OutDegP50  int
	OutDegP90  int
	OutDegP99  int
	Isolated   int // nodes with no in or out edges
	MeanEdgeP  float64
	MinEdgeP   float64
	MaxEdgeP   float64
	WeaklyConn int // number of weakly connected components
}

// ComputeStats gathers Stats for g. O(N + M) plus a union-find pass.
func ComputeStats(g *Graph) Stats {
	s := Stats{N: g.N(), M: g.M()}
	if g.Directed() {
		s.Type = "directed"
		s.AvgDegree = safeDiv(float64(g.M()), float64(g.N()))
	} else {
		s.Type = "undirected"
		// Undirected datasets store both directions; Table II counts each
		// undirected edge once and reports average undirected degree.
		s.AvgDegree = safeDiv(float64(g.M()), float64(g.N()))
	}

	outDegs := make([]int, g.N())
	minP, maxP, sumP := 1.0, 0.0, 0.0
	var edges int64
	for u := 0; u < g.N(); u++ {
		od := g.OutDegree(NodeID(u))
		id := g.InDegree(NodeID(u))
		outDegs[u] = od
		if od > s.MaxOutDeg {
			s.MaxOutDeg = od
		}
		if id > s.MaxInDeg {
			s.MaxInDeg = id
		}
		if od == 0 && id == 0 {
			s.Isolated++
		}
		_, ps := g.OutNeighbors(NodeID(u))
		for _, p := range ps {
			if p < minP {
				minP = p
			}
			if p > maxP {
				maxP = p
			}
			sumP += p
			edges++
		}
	}
	if edges > 0 {
		s.MeanEdgeP = sumP / float64(edges)
		s.MinEdgeP = minP
		s.MaxEdgeP = maxP
	}
	sort.Ints(outDegs)
	s.OutDegP50 = percentile(outDegs, 0.50)
	s.OutDegP90 = percentile(outDegs, 0.90)
	s.OutDegP99 = percentile(outDegs, 0.99)
	s.WeaklyConn = weakComponents(g)
	return s
}

func percentile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// weakComponents counts weakly connected components with union-find.
func weakComponents(g *Graph) int {
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for u := int32(0); u < int32(g.N()); u++ {
		adj, _ := g.OutNeighbors(u)
		for _, v := range adj {
			union(u, v)
		}
	}
	roots := make(map[int32]struct{})
	for u := int32(0); u < int32(g.N()); u++ {
		roots[find(u)] = struct{}{}
	}
	return len(roots)
}

// TableRow renders the Stats in the layout of the paper's Table II:
// dataset, n, m, type, average degree.
func (s Stats) TableRow(name string) string {
	return fmt.Sprintf("%-14s %10s %12s %-11s %8.2f",
		name, humanCount(int64(s.N)), humanCount(s.M), s.Type, s.AvgDegree)
}

// humanCount formats counts the way Table II does (15.2K, 1.99M, ...).
func humanCount(v int64) string {
	switch {
	case v >= 1_000_000:
		return trimZero(fmt.Sprintf("%.2f", float64(v)/1e6)) + "M"
	case v >= 1_000:
		return trimZero(fmt.Sprintf("%.1f", float64(v)/1e3)) + "K"
	default:
		return fmt.Sprintf("%d", v)
	}
}

func trimZero(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
