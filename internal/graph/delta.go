package graph

import (
	"fmt"
	"math"
	"sort"
)

// DeltaResult summarizes one applied edge delta.
type DeltaResult struct {
	// Touched lists — sorted, deduplicated — the target endpoints of every
	// inserted or deleted edge. These are exactly the nodes whose presence
	// in a reverse-reachable set makes that set stale: reverse sampling
	// examines edge (u,v) iff it visits v, so an RR set that avoids every
	// touched node has the same distribution on the old and new topology.
	Touched []NodeID
	// Inserted and Deleted count the directed edges added and removed.
	Inserted int
	Deleted  int
}

// ApplyDelta derives a new immutable Graph from g with the given directed
// edges inserted and deleted, without rebuilding from scratch: untouched
// CSR runs are block-copied, only the runs of endpoint nodes are merged,
// and the compressed in-probability tables are patched per touched node
// (new (degree, probability) tables are appended to a copy of the table
// arena; tables no node references anymore are kept as garbage, bounded by
// the number of distinct pairs ever seen). The result is structurally
// identical — per node — to Builder.Build on the edited edge list, so
// same-seed RR draws on the delta graph and on a full rebuild are
// bit-identical. g itself is never modified.
//
// Inserts are validated like Builder.AddEdge (endpoints in range, no
// self-loops, probability in (0,1]; the negated comparison also rejects
// NaN). Each delete must match an existing edge by (From, To) — its P is
// ignored — and consumes one occurrence; deleting more copies than exist
// is an error. Deletes apply to g only: an edge inserted and deleted in
// the same batch is an error unless g already holds a matching edge.
// Probabilities of surviving edges are untouched — callers emulating
// weighted-cascade semantics must supply insert probabilities themselves.
//
// A delta that breaks a node's shared in-probability demotes the whole
// graph to per-edge storage, and one that restores uniformity on a
// per-edge graph re-compresses — in both cases matching what Build would
// produce on the edited edge list.
//
// The returned graph's Epoch is g.Epoch()+1.
func (g *Graph) ApplyDelta(inserts, deletes []Edge) (*Graph, *DeltaResult, error) {
	for _, e := range inserts {
		if e.From < 0 || e.From >= g.n || e.To < 0 || e.To >= g.n {
			return nil, nil, fmt.Errorf("graph: insert (%d,%d) out of range [0,%d)", e.From, e.To, g.n)
		}
		if e.From == e.To {
			return nil, nil, fmt.Errorf("graph: self-loop insert on node %d rejected", e.From)
		}
		if !(e.P > 0 && e.P <= 1) { // negated form also rejects NaN
			return nil, nil, fmt.Errorf("graph: insert (%d,%d) probability %v outside (0,1]", e.From, e.To, e.P)
		}
	}
	for _, e := range deletes {
		if e.From < 0 || e.From >= g.n || e.To < 0 || e.To >= g.n {
			return nil, nil, fmt.Errorf("graph: delete (%d,%d) out of range [0,%d)", e.From, e.To, g.n)
		}
	}
	// Deltas arrive in ORIGINAL node IDs; fold any degree-ordered
	// renumbering in up front (after the range checks above, which are
	// permutation-invariant) so the merge logic below works purely on
	// internal CSR runs. The result graph carries the same permutation.
	if g.ren != nil {
		inserts = remapEdges(inserts, g.ren)
		deletes = remapEdges(deletes, g.ren)
	}
	type pair struct{ u, v NodeID }
	delCnt := make(map[pair]int, len(deletes))
	for _, e := range deletes {
		delCnt[pair{e.From, e.To}]++
	}
	// Every delete must consume a distinct existing edge. Out-adjacency is
	// sorted by original target, so the multiplicity check binary-searches
	// in that order.
	for k, cnt := range delCnt {
		adj, _ := g.OutNeighbors(k.u)
		ov := g.ordOf(k.v)
		lo := sort.Search(len(adj), func(i int) bool { return g.ordOf(adj[i]) >= ov })
		hi := lo
		for hi < len(adj) && adj[hi] == k.v {
			hi++
		}
		if hi-lo < cnt {
			return nil, nil, fmt.Errorf("graph: delete (%d,%d) ×%d exceeds %d existing edge(s)",
				g.ordOf(k.u), ov, cnt, hi-lo)
		}
	}

	insOut := make(map[NodeID][]Edge)
	insIn := make(map[NodeID][]Edge)
	for _, e := range inserts {
		insOut[e.From] = append(insOut[e.From], e)
		insIn[e.To] = append(insIn[e.To], e)
	}
	for _, list := range insOut {
		sort.Slice(list, func(i, j int) bool { return g.ordOf(list[i].To) < g.ordOf(list[j].To) })
	}
	for _, list := range insIn {
		sort.Slice(list, func(i, j int) bool { return g.ordOf(list[i].From) < g.ordOf(list[j].From) })
	}
	delOut := make(map[NodeID]int)
	delIn := make(map[NodeID]int)
	for k, c := range delCnt {
		delOut[k.u] += c
		delIn[k.v] += c
	}
	touchedOut := touchedNodes(insOut, delOut)
	touchedIn := touchedNodes(insIn, delIn)

	newM := g.m + int64(len(inserts)) - int64(len(deletes))

	// New CSR offsets: the shift over untouched spans is piecewise constant,
	// one prefix pass per direction.
	newOutIdx := shiftedIndex(g.outIdx, g.n, touchedOut, func(v NodeID) int64 {
		return int64(len(insOut[v])) - int64(delOut[v])
	})
	newInIdx := shiftedIndex(g.inIdx, g.n, touchedIn, func(v NodeID) int64 {
		return int64(len(insIn[v])) - int64(delIn[v])
	})
	if newOutIdx[g.n] != newM || newInIdx[g.n] != newM {
		panic("graph: delta degree accounting out of balance")
	}

	// Out-adjacency: block-copy untouched spans, merge touched runs.
	newOutAdj := make([]NodeID, newM)
	newOutP := make([]float64, newM)
	{
		dc := make(map[pair]int, len(delCnt))
		for k, c := range delCnt {
			dc[k] = c
		}
		prev := NodeID(0)
		for _, u := range touchedOut {
			lo, hi := g.outIdx[prev], g.outIdx[u]
			copy(newOutAdj[newOutIdx[prev]:], g.outAdj[lo:hi])
			copy(newOutP[newOutIdx[prev]:], g.outP[lo:hi])
			base := g.outAdj[g.outIdx[u]:g.outIdx[u+1]]
			basep := g.outP[g.outIdx[u]:g.outIdx[u+1]]
			ins := insOut[u]
			w := newOutIdx[u]
			i, j := 0, 0
			for i < len(base) || j < len(ins) {
				if i < len(base) {
					if c := dc[pair{u, base[i]}]; c > 0 {
						dc[pair{u, base[i]}] = c - 1
						i++
						continue
					}
				}
				if j >= len(ins) || (i < len(base) && g.ordOf(base[i]) <= g.ordOf(ins[j].To)) {
					newOutAdj[w] = base[i]
					newOutP[w] = basep[i]
					i++
				} else {
					newOutAdj[w] = ins[j].To
					newOutP[w] = ins[j].P
					j++
				}
				w++
			}
			prev = u + 1
		}
		copy(newOutAdj[newOutIdx[prev]:], g.outAdj[g.outIdx[prev]:g.m])
		copy(newOutP[newOutIdx[prev]:], g.outP[g.outIdx[prev]:g.m])
	}

	// Decide the in-probability path before filling in-adjacency: the fast
	// path patches the compressed per-node storage; if any touched node ends
	// up with mixed in-probabilities, or the base graph already stores
	// per-edge probabilities, per-edge arrays are materialized and
	// compression re-attempted exactly as Build would.
	fast := g.uniformIn
	var touchedProb map[NodeID]float64
	if fast {
		touchedProb = make(map[NodeID]float64, len(touchedIn))
		for _, v := range touchedIn {
			surv := g.inIdx[v+1] - g.inIdx[v] - int64(delIn[v])
			var p float64
			has := false
			if surv > 0 {
				p = g.inProb[v]
				has = true
			}
			for _, e := range insIn[v] {
				if !has {
					p, has = e.P, true
				} else if e.P != p {
					fast = false
				}
			}
			touchedProb[v] = p // zero when the node's new in-degree is 0
		}
	}

	// In-adjacency: same block-copy + merge, with per-edge probabilities
	// materialized only on the slow path.
	newInAdj := make([]NodeID, newM)
	var newInP []float64
	if !fast {
		newInP = make([]float64, newM)
	}
	{
		dc := make(map[pair]int, len(delCnt))
		for k, c := range delCnt {
			dc[k] = c
		}
		prev := NodeID(0)
		for _, v := range touchedIn {
			g.copyInSpan(newInAdj, newInP, newInIdx, prev, v)
			base := g.inAdj[g.inIdx[v]:g.inIdx[v+1]]
			var basep []float64
			if !g.uniformIn {
				basep = g.inP[g.inIdx[v]:g.inIdx[v+1]]
			}
			ins := insIn[v]
			w := newInIdx[v]
			i, j := 0, 0
			for i < len(base) || j < len(ins) {
				if i < len(base) {
					if c := dc[pair{base[i], v}]; c > 0 {
						dc[pair{base[i], v}] = c - 1
						i++
						continue
					}
				}
				if j >= len(ins) || (i < len(base) && g.ordOf(base[i]) <= g.ordOf(ins[j].From)) {
					newInAdj[w] = base[i]
					if newInP != nil {
						if basep != nil {
							newInP[w] = basep[i]
						} else {
							newInP[w] = g.inProb[v]
						}
					}
					i++
				} else {
					newInAdj[w] = ins[j].From
					if newInP != nil {
						newInP[w] = ins[j].P
					}
					j++
				}
				w++
			}
			prev = v + 1
		}
		g.copyInSpan(newInAdj, newInP, newInIdx, prev, g.n)
	}

	ng := &Graph{
		n: g.n, m: newM, directed: g.directed, epoch: g.epoch + 1,
		outIdx: newOutIdx, outAdj: newOutAdj, outP: newOutP,
		inIdx: newInIdx, inAdj: newInAdj,
		ren: g.ren, inv: g.inv,
	}
	for v := int32(0); v < ng.n; v++ {
		if d := int32(ng.inIdx[v+1] - ng.inIdx[v]); d > ng.maxInDeg {
			ng.maxInDeg = d
		}
	}
	if fast {
		ng.patchCompressed(g, touchedIn, touchedProb)
	} else {
		ng.inP = newInP
		ng.compressInProbs()
	}

	res := &DeltaResult{Inserted: len(inserts), Deleted: len(deletes)}
	seen := make(map[NodeID]struct{}, len(inserts)+len(deletes))
	for _, e := range inserts {
		seen[e.To] = struct{}{}
	}
	for _, e := range deletes {
		seen[e.To] = struct{}{}
	}
	res.Touched = make([]NodeID, 0, len(seen))
	for v := range seen {
		res.Touched = append(res.Touched, v)
	}
	sort.Slice(res.Touched, func(i, j int) bool { return res.Touched[i] < res.Touched[j] })
	return ng, res, nil
}

// remapEdges maps edge endpoints through a node permutation.
func remapEdges(edges []Edge, ren []NodeID) []Edge {
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{From: ren[e.From], To: ren[e.To], P: e.P}
	}
	return out
}

// touchedNodes returns the sorted union of the two maps' keys.
func touchedNodes(ins map[NodeID][]Edge, del map[NodeID]int) []NodeID {
	seen := make(map[NodeID]struct{}, len(ins)+len(del))
	for v := range ins {
		seen[v] = struct{}{}
	}
	for v := range del {
		seen[v] = struct{}{}
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// shiftedIndex builds the post-delta CSR index from the base one: offsets
// shift by the accumulated degree delta of the touched nodes before them.
func shiftedIndex(base []int64, n int32, touched []NodeID, delta func(NodeID) int64) []int64 {
	idx := make([]int64, n+1)
	shift := int64(0)
	ti := 0
	for v := int32(0); v <= n; v++ {
		idx[v] = base[v] + shift
		if ti < len(touched) && v == touched[ti] {
			shift += delta(touched[ti])
			ti++
		}
	}
	return idx
}

// copyInSpan block-copies the unchanged in-adjacency runs of nodes
// [from, to) into the new arrays, materializing per-edge probabilities
// from the compressed per-node storage when the slow path needs them.
func (g *Graph) copyInSpan(adj []NodeID, ps []float64, newIdx []int64, from, to NodeID) {
	lo, hi := g.inIdx[from], g.inIdx[to]
	copy(adj[newIdx[from]:], g.inAdj[lo:hi])
	if ps == nil {
		return
	}
	if !g.uniformIn {
		copy(ps[newIdx[from]:], g.inP[lo:hi])
		return
	}
	for v := from; v < to; v++ {
		run := ps[newIdx[v]:newIdx[v+1]]
		p := g.inProb[v]
		for i := range run {
			run[i] = p
		}
	}
}

// patchCompressed carries the base graph's compressed in-probability
// storage over to ng, recomputing only the touched nodes: their per-node
// probability, their success-count table offset (reusing any base or
// freshly appended table with the same (degree, probability) key), and the
// packed sampler metadata — which is rebuilt wholesale because every
// adjacency start after the first touched node shifts.
func (ng *Graph) patchCompressed(g *Graph, touched []NodeID, touchedProb map[NodeID]float64) {
	ng.inProb = make([]float64, ng.n)
	copy(ng.inProb, g.inProb)
	ng.inTabOff = make([]int32, ng.n)
	copy(ng.inTabOff, g.inTabOff)
	ng.inTabThr = make([]uint32, len(g.inTabThr))
	copy(ng.inTabThr, g.inTabThr)
	ng.uniformIn = true

	type tabKey struct {
		deg int64
		p   float64
	}
	cache := make(map[tabKey]int32)
	for v := int32(0); v < g.n; v++ {
		if off := g.inTabOff[v]; off >= 0 {
			k := tabKey{g.inIdx[v+1] - g.inIdx[v], g.inProb[v]}
			if _, ok := cache[k]; !ok {
				cache[k] = off
			}
		}
	}
	for _, v := range touched {
		d := ng.inIdx[v+1] - ng.inIdx[v]
		ng.inTabOff[v] = -1
		if d == 0 {
			ng.inProb[v] = 0
			continue
		}
		p := touchedProb[v]
		ng.inProb[v] = p
		if p >= 1 {
			continue // samplers special-case certain edges; no table needed
		}
		k := tabKey{d, p}
		if off, ok := cache[k]; ok {
			ng.inTabOff[v] = off
			continue
		}
		off := int32(-1)
		if thr := binomialThresholds(int(d), p); thr != nil {
			off = int32(len(ng.inTabThr))
			ng.inTabThr = append(ng.inTabThr, thr...)
		}
		cache[k] = off
		ng.inTabOff[v] = off
	}
	if ng.m <= math.MaxInt32 {
		ng.inMeta = make([]InMeta, ng.n)
		for v := int32(0); v < ng.n; v++ {
			m := InMeta{
				Start: int32(ng.inIdx[v]),
				Deg:   int32(ng.inIdx[v+1] - ng.inIdx[v]),
			}
			switch off := ng.inTabOff[v]; {
			case off >= 0:
				m.Thr0, m.Thr1 = ng.inTabThr[off], ng.inTabThr[off+1]
			case m.Deg == 0:
				m.Thr0, m.Thr1 = ^uint32(0), ^uint32(0)
			default:
				m.Thr0, m.Thr1 = 0, 0
			}
			ng.inMeta[v] = m
		}
	}
}
