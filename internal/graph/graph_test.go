package graph

import (
	"testing"
)

// fig1Edges returns the edges of the paper's Fig. 1(a) example graph G1.
// Node IDs v1..v7 map to 0..6.
func fig1Edges() []Edge {
	return []Edge{
		{From: 0, To: 1, P: 0.4}, // v1 -> v2
		{From: 1, To: 2, P: 0.8}, // v2 -> v3
		{From: 1, To: 3, P: 0.7}, // v2 -> v4
		{From: 3, To: 2, P: 0.6}, // v4 -> v3
		{From: 2, To: 4, P: 0.5}, // v3 -> v5
		{From: 4, To: 5, P: 0.3}, // v5 -> v6
		{From: 5, To: 4, P: 0.7}, // v6 -> v5
		{From: 5, To: 6, P: 0.6}, // v6 -> v7
		{From: 6, To: 0, P: 0.2}, // v7 -> v1
		{From: 4, To: 0, P: 0.7}, // v5 -> v1
	}
}

func TestBuildFig1(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	if g.N() != 7 {
		t.Fatalf("N = %d, want 7", g.N())
	}
	if g.M() != 10 {
		t.Fatalf("M = %d, want 10", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d := g.OutDegree(1); d != 2 {
		t.Fatalf("outdeg(v2) = %d, want 2", d)
	}
	if d := g.InDegree(0); d != 2 {
		t.Fatalf("indeg(v1) = %d, want 2", d)
	}
	p, ok := g.EdgeProbability(1, 2)
	if !ok || p != 0.8 {
		t.Fatalf("p(v2,v3) = %v,%v want 0.8,true", p, ok)
	}
	if _, ok := g.EdgeProbability(2, 1); ok {
		t.Fatal("reverse edge (v3,v2) should not exist")
	}
}

func TestInOutConsistency(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	// Every out edge must appear as an in edge with the same probability.
	for u := int32(0); u < int32(g.N()); u++ {
		adj, ps := g.OutNeighbors(u)
		for i, v := range adj {
			srcs, qs := g.InNeighbors(v)
			found := false
			for j, w := range srcs {
				if w == u && qs[j] == ps[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) missing from in-adjacency", u, v)
			}
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	want := fig1Edges()
	g := MustFromEdges(7, true, want)
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("Edges() returned %d edges, want %d", len(got), len(want))
	}
	seen := make(map[Edge]bool)
	for _, e := range got {
		seen[e] = true
	}
	for _, e := range want {
		if !seen[e] {
			t.Fatalf("edge %+v missing from Edges()", e)
		}
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3, true)
	cases := []struct {
		u, v NodeID
		p    float64
	}{
		{-1, 0, 0.5},
		{0, 3, 0.5},
		{0, 0, 0.5},  // self loop
		{0, 1, 0},    // p = 0
		{0, 1, -0.1}, // p < 0
		{0, 1, 1.5},  // p > 1
	}
	for _, c := range cases {
		if err := b.AddEdge(c.u, c.v, c.p); err == nil {
			t.Fatalf("AddEdge(%d,%d,%v) accepted", c.u, c.v, c.p)
		}
	}
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3, true)
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(0, 1, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(1, 2, 0.25); err != nil {
		t.Fatal(err)
	}
	if removed := b.Dedup(); removed != 2 {
		t.Fatalf("Dedup removed %d, want 2", removed)
	}
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

func TestWeightedCascade(t *testing.T) {
	b := NewBuilder(4, true)
	// Node 3 has in-degree 3, node 1 has in-degree 1.
	for _, e := range [][2]NodeID{{0, 3}, {1, 3}, {2, 3}, {0, 1}} {
		if err := b.AddArc(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	b.ApplyWeightedCascade()
	g := b.Build()
	if p, _ := g.EdgeProbability(0, 3); p != 1.0/3 {
		t.Fatalf("p(0,3) = %v, want 1/3", p)
	}
	if p, _ := g.EdgeProbability(0, 1); p != 1 {
		t.Fatalf("p(0,1) = %v, want 1", p)
	}
}

func TestUniformProbability(t *testing.T) {
	b := NewBuilder(3, true)
	_ = b.AddArc(0, 1)
	_ = b.AddArc(1, 2)
	if err := b.ApplyUniformProbability(0.1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	for _, e := range g.Edges() {
		if e.P != 0.1 {
			t.Fatalf("edge %+v not reweighted", e)
		}
	}
	if err := b.ApplyUniformProbability(0); err == nil {
		t.Fatal("ApplyUniformProbability(0) accepted")
	}
}

func TestTrivalency(t *testing.T) {
	b := NewBuilder(3, true)
	_ = b.AddArc(0, 1)
	_ = b.AddArc(1, 2)
	_ = b.AddArc(2, 0)
	b.ApplyTrivalency(func(i int) int { return i })
	g := b.Build()
	want := map[float64]bool{0.1: true, 0.01: true, 0.001: true}
	for _, e := range g.Edges() {
		if !want[e.P] {
			t.Fatalf("edge %+v has non-trivalency probability", e)
		}
	}
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder(2, false)
	if err := b.AddUndirected(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (both directions)", g.M())
	}
	if _, ok := g.EdgeProbability(0, 1); !ok {
		t.Fatal("forward direction missing")
	}
	if _, ok := g.EdgeProbability(1, 0); !ok {
		t.Fatal("backward direction missing")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0, true).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has N=%d M=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g2 := NewBuilder(5, true).Build() // nodes, no edges
	if g2.N() != 5 || g2.M() != 0 {
		t.Fatalf("edgeless graph has N=%d M=%d", g2.N(), g2.M())
	}
	if d := g2.OutDegree(3); d != 0 {
		t.Fatalf("outdeg = %d, want 0", d)
	}
}

func TestValidateOnBuiltGraphs(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
