package graph

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph.
//
// The builder accepts edges in any order, optionally deduplicates parallel
// edges, and supports the paper's standard weighted-cascade (WC) weighting
// p(u,v) = 1/indeg(v) applied after all edges are known.
type Builder struct {
	n           int32
	directed    bool
	degreeOrder bool
	edges       []Edge
}

// NewBuilder creates a builder for a graph with n nodes. directed records
// the declared dataset type (Table II); undirected datasets should add
// each edge once and call AddUndirected or build with both directions.
func NewBuilder(n int, directed bool) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: int32(n), directed: directed}
}

// N returns the declared node count.
func (b *Builder) N() int { return int(b.n) }

// AddEdge adds one directed edge u -> v with probability p.
func (b *Builder) AddEdge(u, v NodeID, p float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d rejected", u)
	}
	// The negated form also rejects NaN, which passes every one-sided
	// comparison and would otherwise poison the samplers.
	if !(p > 0 && p <= 1) {
		return fmt.Errorf("graph: edge (%d,%d) probability %v outside (0,1]", u, v, p)
	}
	b.edges = append(b.edges, Edge{From: u, To: v, P: p})
	return nil
}

// AddUndirected adds both directions of an undirected edge with the same
// probability.
func (b *Builder) AddUndirected(u, v NodeID, p float64) error {
	if err := b.AddEdge(u, v, p); err != nil {
		return err
	}
	return b.AddEdge(v, u, p)
}

// AddArc is AddEdge with a placeholder probability of 1; use together with
// ApplyWeightedCascade when probabilities are derived from degrees.
func (b *Builder) AddArc(u, v NodeID) error { return b.AddEdge(u, v, 1) }

// Dedup removes parallel edges, keeping the first occurrence of each
// (from, to) pair. Returns the number of edges removed.
func (b *Builder) Dedup() int {
	seen := make(map[[2]NodeID]struct{}, len(b.edges))
	kept := b.edges[:0]
	removed := 0
	for _, e := range b.edges {
		k := [2]NodeID{e.From, e.To}
		if _, dup := seen[k]; dup {
			removed++
			continue
		}
		seen[k] = struct{}{}
		kept = append(kept, e)
	}
	b.edges = kept
	return removed
}

// ApplyWeightedCascade sets every edge's probability to 1/indeg(to), the
// weighting used throughout the paper's experiments ("we set the edge
// probability p(<u,v>) = 1/indeg_v").
func (b *Builder) ApplyWeightedCascade() {
	indeg := make([]int64, b.n)
	for _, e := range b.edges {
		indeg[e.To]++
	}
	for i := range b.edges {
		b.edges[i].P = 1 / float64(indeg[b.edges[i].To])
	}
}

// ApplyUniformProbability sets every edge's probability to p.
func (b *Builder) ApplyUniformProbability(p float64) error {
	if !(p > 0 && p <= 1) { // rejects NaN too
		return fmt.Errorf("graph: uniform probability %v outside (0,1]", p)
	}
	for i := range b.edges {
		b.edges[i].P = p
	}
	return nil
}

// ApplyTrivalency assigns each edge one of the classic trivalency values
// {0.1, 0.01, 0.001} chosen by the pick function (commonly a seeded RNG's
// Intn(3)). The pick function receives the edge index.
func (b *Builder) ApplyTrivalency(pick func(i int) int) {
	vals := [3]float64{0.1, 0.01, 0.001}
	for i := range b.edges {
		b.edges[i].P = vals[pick(i)%3]
	}
}

// SetDegreeOrder opts Build into hubs-first node renumbering: internal
// node IDs are assigned by descending total degree (original ID breaks
// ties), so the metadata, adjacency and visited-mark lines of the nodes
// RR sampling touches most often pack into the smallest — hottest —
// cache footprint. The permutation is stored on the Graph and inverted
// at the I/O and reporting boundary (Edges, graphio, OriginalID), so all
// user-visible node IDs, seed sets and golden fixtures are unchanged;
// adjacency runs stay sorted by original neighbor ID, making same-seed
// sampling runs bit-identical to the identity numbering (see
// TestDegreeOrderRoundTrip in the adaptive package).
func (b *Builder) SetDegreeOrder(on bool) { b.degreeOrder = on }

// degreeOrdering computes the hubs-first permutation over the current
// edge list: ren maps original->internal, inv internal->original.
func (b *Builder) degreeOrdering() (ren, inv []NodeID) {
	deg := make([]int64, b.n)
	for _, e := range b.edges {
		deg[e.From]++
		deg[e.To]++
	}
	inv = make([]NodeID, b.n)
	for i := range inv {
		inv[i] = NodeID(i)
	}
	sort.Slice(inv, func(i, j int) bool {
		if deg[inv[i]] != deg[inv[j]] {
			return deg[inv[i]] > deg[inv[j]]
		}
		return inv[i] < inv[j]
	})
	ren = make([]NodeID, b.n)
	for internal, orig := range inv {
		ren[orig] = NodeID(internal)
	}
	return ren, inv
}

// Build produces the immutable CSR graph. The builder remains usable.
func (b *Builder) Build() *Graph {
	n := b.n
	m := int64(len(b.edges))
	g := &Graph{
		n:        n,
		m:        m,
		directed: b.directed,
		outIdx:   make([]int64, n+1),
		outAdj:   make([]NodeID, m),
		outP:     make([]float64, m),
		inIdx:    make([]int64, n+1),
		inAdj:    make([]NodeID, m),
		inP:      make([]float64, m),
	}
	if b.degreeOrder && n > 0 {
		g.ren, g.inv = b.degreeOrdering()
	}

	// Counting sort into CSR for both directions; deterministic layout:
	// nodes keyed by internal ID, neighbors within a run by ORIGINAL ID —
	// (source, target) for out, (target, source) for in — so a
	// position-indexed pick lands on the same original neighbor under
	// either numbering.
	sorted := make([]Edge, m)
	copy(sorted, b.edges)
	if g.ren != nil {
		for i := range sorted {
			sorted[i].From = g.ren[sorted[i].From]
			sorted[i].To = g.ren[sorted[i].To]
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].From != sorted[j].From {
			return sorted[i].From < sorted[j].From
		}
		return g.ordOf(sorted[i].To) < g.ordOf(sorted[j].To)
	})
	for _, e := range sorted {
		g.outIdx[e.From+1]++
	}
	for i := int32(0); i < n; i++ {
		g.outIdx[i+1] += g.outIdx[i]
	}
	cursor := make([]int64, n)
	for _, e := range sorted {
		pos := g.outIdx[e.From] + cursor[e.From]
		g.outAdj[pos] = e.To
		g.outP[pos] = e.P
		cursor[e.From]++
	}

	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].To != sorted[j].To {
			return sorted[i].To < sorted[j].To
		}
		return g.ordOf(sorted[i].From) < g.ordOf(sorted[j].From)
	})
	for _, e := range sorted {
		g.inIdx[e.To+1]++
	}
	for i := int32(0); i < n; i++ {
		g.inIdx[i+1] += g.inIdx[i]
	}
	for i := range cursor {
		cursor[i] = 0
	}
	for _, e := range sorted {
		pos := g.inIdx[e.To] + cursor[e.To]
		g.inAdj[pos] = e.From
		g.inP[pos] = e.P
		cursor[e.To]++
	}
	for v := int32(0); v < n; v++ {
		if d := int32(g.inIdx[v+1] - g.inIdx[v]); d > g.maxInDeg {
			g.maxInDeg = d
		}
	}
	g.compressInProbs()
	return g
}

// compressInProbs switches the in-probability storage from per-edge to
// per-node when every node's in-edges share one probability — always the
// case for ApplyWeightedCascade (p = 1/indeg(v)) and
// ApplyUniformProbability. The per-edge array is dropped (8 bytes per edge
// -> 8 bytes per node; ~550 MB on livejournal-s's 69M edges) and
// success-count sampling tables are precomputed so RR-set samplers can
// draw a node's successful in-edge count in O(1) instead of one coin per
// edge. Mixed-probability graphs (trivalency) keep per-edge storage.
func (g *Graph) compressInProbs() {
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.inIdx[v], g.inIdx[v+1]
		for i := lo + 1; i < hi; i++ {
			if g.inP[i] != g.inP[lo] {
				return // mixed probabilities: keep the per-edge fallback
			}
		}
	}
	g.inProb = make([]float64, g.n)
	g.inTabOff = make([]int32, g.n)
	type tabKey struct {
		deg int64
		p   float64
	}
	cache := make(map[tabKey]int32)
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.inIdx[v], g.inIdx[v+1]
		g.inTabOff[v] = -1
		if hi == lo {
			continue
		}
		p := g.inP[lo]
		g.inProb[v] = p
		if p >= 1 {
			continue // samplers special-case certain edges; no table needed
		}
		key := tabKey{deg: hi - lo, p: p}
		if off, ok := cache[key]; ok {
			g.inTabOff[v] = off
			continue
		}
		off := int32(-1)
		if thr := binomialThresholds(int(hi-lo), p); thr != nil {
			off = int32(len(g.inTabThr))
			g.inTabThr = append(g.inTabThr, thr...)
		}
		cache[key] = off
		g.inTabOff[v] = off
	}
	g.inP = nil
	g.uniformIn = true
	if g.m <= math.MaxInt32 {
		g.inMeta = make([]InMeta, g.n)
		for v := int32(0); v < g.n; v++ {
			m := InMeta{
				Start: int32(g.inIdx[v]),
				Deg:   int32(g.inIdx[v+1] - g.inIdx[v]),
			}
			switch off := g.inTabOff[v]; {
			case off >= 0:
				// Tables are padded to >= 5 entries, so entry 1 always exists.
				m.Thr0, m.Thr1 = g.inTabThr[off], g.inTabThr[off+1]
			case m.Deg == 0:
				// Every clamped draw ends the visit.
				m.Thr0, m.Thr1 = ^uint32(0), ^uint32(0)
			default:
				// Certain edges / no table: every draw reads as "two or
				// more" and takes the dedicated expansion.
				m.Thr0, m.Thr1 = 0, 0
			}
			g.inMeta[v] = m
		}
	}
}

// maxCountTable bounds one success-count table (sentinel included). The
// truncated cumulative Binomial(d, p) needs ~d·p + O(sqrt(d·p)) entries
// before the residual mass falls under the 2^-32 quantization, so the
// weighted-cascade regime (d·p = 1) always fits; a node whose table would
// exceed the cap gets none and samplers fall back to geometric jumps.
const maxCountTable = 64

// binomialThresholds builds the truncated cumulative Binomial(d, p)
// threshold table described at InCountThresholds, or nil when it would
// exceed maxCountTable entries.
func binomialThresholds(d int, p float64) []uint32 {
	const residualCut = 1 - 1.0/(1<<33) // mass below the uint32 quantization
	q := 1 - p
	ratio := p / q
	pk := math.Pow(q, float64(d)) // P(K = 0)
	cum := pk
	thr := make([]uint32, 1, 16)
	thr[0] = scaleThreshold(cum)
	for k := 0; cum < residualCut && k < d; k++ {
		if len(thr) == maxCountTable-1 {
			return nil
		}
		pk *= float64(d-k) / float64(k+1) * ratio
		cum += pk
		thr = append(thr, scaleThreshold(cum))
	}
	// The final reachable count absorbs the truncated tail: overwrite its
	// threshold with the sentinel terminator.
	thr[len(thr)-1] = ^uint32(0)
	// Pad to at least five entries so samplers that resolved "some
	// success" on the cached first threshold can compare the next four
	// branchlessly; padding sentinels never match a (clamped) draw, so
	// they contribute zero to the count.
	for len(thr) < 5 {
		thr = append(thr, ^uint32(0))
	}
	return thr
}

// scaleThreshold maps a cumulative probability to its uint32 threshold,
// saturating below the ^uint32(0) sentinel.
func scaleThreshold(cum float64) uint32 {
	if cum <= 0 {
		return 0
	}
	v := uint64(cum * (1 << 32))
	if v >= 1<<32-1 {
		v = 1<<32 - 2
	}
	return uint32(v)
}

// FromEdges is a convenience constructor for tests and examples.
func FromEdges(n int, directed bool, edges []Edge) (*Graph, error) {
	b := NewBuilder(n, directed)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges that panics on error; for tests with literal
// edge lists that are known valid.
func MustFromEdges(n int, directed bool, edges []Edge) *Graph {
	g, err := FromEdges(n, directed, edges)
	if err != nil {
		panic(err)
	}
	return g
}
