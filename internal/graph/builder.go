package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph.
//
// The builder accepts edges in any order, optionally deduplicates parallel
// edges, and supports the paper's standard weighted-cascade (WC) weighting
// p(u,v) = 1/indeg(v) applied after all edges are known.
type Builder struct {
	n        int32
	directed bool
	edges    []Edge
}

// NewBuilder creates a builder for a graph with n nodes. directed records
// the declared dataset type (Table II); undirected datasets should add
// each edge once and call AddUndirected or build with both directions.
func NewBuilder(n int, directed bool) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: int32(n), directed: directed}
}

// N returns the declared node count.
func (b *Builder) N() int { return int(b.n) }

// AddEdge adds one directed edge u -> v with probability p.
func (b *Builder) AddEdge(u, v NodeID, p float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d rejected", u)
	}
	if p <= 0 || p > 1 {
		return fmt.Errorf("graph: edge (%d,%d) probability %v outside (0,1]", u, v, p)
	}
	b.edges = append(b.edges, Edge{From: u, To: v, P: p})
	return nil
}

// AddUndirected adds both directions of an undirected edge with the same
// probability.
func (b *Builder) AddUndirected(u, v NodeID, p float64) error {
	if err := b.AddEdge(u, v, p); err != nil {
		return err
	}
	return b.AddEdge(v, u, p)
}

// AddArc is AddEdge with a placeholder probability of 1; use together with
// ApplyWeightedCascade when probabilities are derived from degrees.
func (b *Builder) AddArc(u, v NodeID) error { return b.AddEdge(u, v, 1) }

// Dedup removes parallel edges, keeping the first occurrence of each
// (from, to) pair. Returns the number of edges removed.
func (b *Builder) Dedup() int {
	seen := make(map[[2]NodeID]struct{}, len(b.edges))
	kept := b.edges[:0]
	removed := 0
	for _, e := range b.edges {
		k := [2]NodeID{e.From, e.To}
		if _, dup := seen[k]; dup {
			removed++
			continue
		}
		seen[k] = struct{}{}
		kept = append(kept, e)
	}
	b.edges = kept
	return removed
}

// ApplyWeightedCascade sets every edge's probability to 1/indeg(to), the
// weighting used throughout the paper's experiments ("we set the edge
// probability p(<u,v>) = 1/indeg_v").
func (b *Builder) ApplyWeightedCascade() {
	indeg := make([]int64, b.n)
	for _, e := range b.edges {
		indeg[e.To]++
	}
	for i := range b.edges {
		b.edges[i].P = 1 / float64(indeg[b.edges[i].To])
	}
}

// ApplyUniformProbability sets every edge's probability to p.
func (b *Builder) ApplyUniformProbability(p float64) error {
	if p <= 0 || p > 1 {
		return fmt.Errorf("graph: uniform probability %v outside (0,1]", p)
	}
	for i := range b.edges {
		b.edges[i].P = p
	}
	return nil
}

// ApplyTrivalency assigns each edge one of the classic trivalency values
// {0.1, 0.01, 0.001} chosen by the pick function (commonly a seeded RNG's
// Intn(3)). The pick function receives the edge index.
func (b *Builder) ApplyTrivalency(pick func(i int) int) {
	vals := [3]float64{0.1, 0.01, 0.001}
	for i := range b.edges {
		b.edges[i].P = vals[pick(i)%3]
	}
}

// Build produces the immutable CSR graph. The builder remains usable.
func (b *Builder) Build() *Graph {
	n := b.n
	m := int64(len(b.edges))
	g := &Graph{
		n:        n,
		m:        m,
		directed: b.directed,
		outIdx:   make([]int64, n+1),
		outAdj:   make([]NodeID, m),
		outP:     make([]float64, m),
		inIdx:    make([]int64, n+1),
		inAdj:    make([]NodeID, m),
		inP:      make([]float64, m),
	}

	// Counting sort into CSR for both directions; deterministic layout:
	// neighbors sorted by (source, target) for out, (target, source) for in.
	sorted := make([]Edge, m)
	copy(sorted, b.edges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].From != sorted[j].From {
			return sorted[i].From < sorted[j].From
		}
		return sorted[i].To < sorted[j].To
	})
	for _, e := range sorted {
		g.outIdx[e.From+1]++
	}
	for i := int32(0); i < n; i++ {
		g.outIdx[i+1] += g.outIdx[i]
	}
	cursor := make([]int64, n)
	for _, e := range sorted {
		pos := g.outIdx[e.From] + cursor[e.From]
		g.outAdj[pos] = e.To
		g.outP[pos] = e.P
		cursor[e.From]++
	}

	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].To != sorted[j].To {
			return sorted[i].To < sorted[j].To
		}
		return sorted[i].From < sorted[j].From
	})
	for _, e := range sorted {
		g.inIdx[e.To+1]++
	}
	for i := int32(0); i < n; i++ {
		g.inIdx[i+1] += g.inIdx[i]
	}
	for i := range cursor {
		cursor[i] = 0
	}
	for _, e := range sorted {
		pos := g.inIdx[e.To] + cursor[e.To]
		g.inAdj[pos] = e.From
		g.inP[pos] = e.P
		cursor[e.To]++
	}
	return g
}

// FromEdges is a convenience constructor for tests and examples.
func FromEdges(n int, directed bool, edges []Edge) (*Graph, error) {
	b := NewBuilder(n, directed)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges that panics on error; for tests with literal
// edge lists that are known valid.
func MustFromEdges(n int, directed bool, edges []Edge) *Graph {
	g, err := FromEdges(n, directed, edges)
	if err != nil {
		panic(err)
	}
	return g
}
