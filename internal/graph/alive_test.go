package graph

import (
	"testing"

	"repro/internal/rng"
)

// TestAliveListTracksRemovals: the incrementally maintained list must
// always hold exactly the alive nodes (any order), with N() as its length.
func TestAliveListTracksRemovals(t *testing.T) {
	g := wcGraph()
	r := NewResidual(g)
	check := func() {
		t.Helper()
		list := r.AliveList()
		if len(list) != r.N() {
			t.Fatalf("AliveList length %d, N() %d", len(list), r.N())
		}
		seen := make(map[NodeID]bool, len(list))
		for _, u := range list {
			if !r.Alive(u) {
				t.Fatalf("dead node %d in AliveList", u)
			}
			if seen[u] {
				t.Fatalf("duplicate node %d in AliveList", u)
			}
			seen[u] = true
		}
		sorted := r.AliveNodes()
		if len(sorted) != len(list) {
			t.Fatalf("AliveNodes %d entries, AliveList %d", len(sorted), len(list))
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1] >= sorted[i] {
				t.Fatal("AliveNodes not strictly increasing")
			}
		}
	}
	check()
	for _, u := range []NodeID{3, 0, 3, 4} { // includes a double-remove
		r.Remove(u)
		check()
	}
	cp := r.Clone()
	if got, want := cp.AliveList(), r.AliveList(); len(got) != len(want) {
		t.Fatalf("clone alive list length %d, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("clone alive-list order diverged")
			}
		}
	}
	r.Reset()
	check()
	if r.N() != g.N() {
		t.Fatalf("after Reset N() = %d, want %d", r.N(), g.N())
	}
	// Reset restores increasing order, so post-Reset sampling is
	// independent of the pre-Reset removal history.
	for i, u := range r.AliveList() {
		if u != NodeID(i) {
			t.Fatalf("after Reset AliveList[%d] = %d", i, u)
		}
	}
}

// TestAliveListRandomizedAgainstMask cross-checks the swap-remove list
// against a straightforward boolean mask over many random removals.
func TestAliveListRandomizedAgainstMask(t *testing.T) {
	g := wcGraph()
	r := NewResidual(g)
	mask := make([]bool, g.N())
	rr := rng.New(13)
	for i := 0; i < 200; i++ {
		u := NodeID(rr.Intn(g.N()))
		wasAlive := !mask[u]
		if got := r.Remove(u); got != wasAlive {
			t.Fatalf("Remove(%d) = %v, want %v", u, got, wasAlive)
		}
		mask[u] = true
		alive := 0
		for _, dead := range mask {
			if !dead {
				alive++
			}
		}
		if r.N() != alive {
			t.Fatalf("N() = %d, mask says %d", r.N(), alive)
		}
		for v := 0; v < g.N(); v++ {
			if r.Alive(NodeID(v)) == mask[v] {
				t.Fatalf("Alive(%d) = %v, mask %v", v, r.Alive(NodeID(v)), !mask[v])
			}
		}
		if i%37 == 0 {
			r.Reset()
			for v := range mask {
				mask[v] = false
			}
		}
	}
}
