package graph

import (
	"math"
	"testing"
)

func wcGraph() *Graph {
	b := NewBuilder(5, true)
	for _, e := range [][2]NodeID{{0, 1}, {2, 1}, {3, 1}, {1, 2}, {3, 2}, {0, 4}} {
		if err := b.AddArc(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	b.ApplyWeightedCascade()
	return b.Build()
}

func TestWeightedCascadeCompresses(t *testing.T) {
	g := wcGraph()
	if !g.InUniform() {
		t.Fatal("weighted-cascade graph did not compress in-probabilities")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Node 1 has indeg 3, node 2 indeg 2, node 4 indeg 1.
	for _, tc := range []struct {
		v    NodeID
		deg  int
		p    float64
		srcs []NodeID
	}{
		{1, 3, 1.0 / 3, []NodeID{0, 2, 3}},
		{2, 2, 0.5, []NodeID{1, 3}},
		{4, 1, 1, []NodeID{0}},
		{0, 0, 0, nil},
	} {
		srcs, p, ok := g.InNeighborsUniform(tc.v)
		if !ok {
			t.Fatalf("node %d: InNeighborsUniform not ok on a compressed graph", tc.v)
		}
		if len(srcs) != tc.deg {
			t.Fatalf("node %d: %d in-neighbors, want %d", tc.v, len(srcs), tc.deg)
		}
		for i, u := range tc.srcs {
			if srcs[i] != u {
				t.Fatalf("node %d: in-neighbor %d is %d, want %d", tc.v, i, srcs[i], u)
			}
		}
		if tc.deg > 0 && p != tc.p {
			t.Fatalf("node %d: shared probability %v, want %v", tc.v, p, tc.p)
		}
		// InNeighbors must materialize the same probabilities.
		adj, ps := g.InNeighbors(tc.v)
		if len(adj) != tc.deg || len(ps) != tc.deg {
			t.Fatalf("node %d: InNeighbors lengths %d/%d, want %d", tc.v, len(adj), len(ps), tc.deg)
		}
		for _, q := range ps {
			if q != tc.p {
				t.Fatalf("node %d: materialized probability %v, want %v", tc.v, q, tc.p)
			}
		}
	}
}

func TestTrivalencyKeepsPerEdgeStorage(t *testing.T) {
	b := NewBuilder(4, true)
	for _, e := range [][2]NodeID{{0, 2}, {1, 2}, {2, 3}} {
		if err := b.AddArc(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	b.ApplyTrivalency(func(i int) int { return i }) // 0.1, 0.01, 0.001
	g := b.Build()
	if g.InUniform() {
		t.Fatal("mixed in-probability graph compressed")
	}
	if _, _, ok := g.InNeighborsUniform(2); ok {
		t.Fatal("InNeighborsUniform reported ok on per-edge storage")
	}
	if tab := g.InCountThresholds(2); tab != nil {
		t.Fatal("count table exists on per-edge storage")
	}
	if meta, _, _, _ := g.InSamplerTables(); meta != nil {
		t.Fatal("sampler metadata exists on per-edge storage")
	}
	_, ps := g.InNeighbors(2)
	if len(ps) != 2 || ps[0] != 0.1 || ps[1] != 0.01 {
		t.Fatalf("per-edge probabilities %v, want [0.1 0.01]", ps)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformProbabilityCompresses(t *testing.T) {
	b := NewBuilder(3, true)
	_ = b.AddArc(0, 2)
	_ = b.AddArc(1, 2)
	if err := b.ApplyUniformProbability(0.3); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !g.InUniform() {
		t.Fatal("uniform-probability graph did not compress")
	}
	if _, p, _ := g.InNeighborsUniform(2); p != 0.3 {
		t.Fatalf("shared probability %v, want 0.3", p)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCountThresholdsMatchBinomial verifies the table encodes the exact
// cumulative Binomial distribution (up to uint32 quantization).
func TestCountThresholdsMatchBinomial(t *testing.T) {
	b := NewBuilder(6, true)
	for u := NodeID(0); u < 5; u++ {
		_ = b.AddArc(u, 5)
	}
	if err := b.ApplyUniformProbability(0.3); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	tab := g.InCountThresholds(5)
	if tab == nil {
		t.Fatal("no count table for a Binomial(5, 0.3) node")
	}
	d, p := 5, 0.3
	cum := 0.0
	pk := math.Pow(1-p, float64(d))
	for k := 0; k <= d; k++ {
		if k > 0 {
			pk *= float64(d-k+1) / float64(k) * (p / (1 - p))
		}
		cum += pk
		if tab[k] == ^uint32(0) {
			if cum < 1-1e-6 {
				t.Fatalf("table truncated at k=%d with cumulative %v", k, cum)
			}
			return
		}
		got := float64(tab[k]) / (1 << 32)
		if math.Abs(got-cum) > 1e-6 {
			t.Fatalf("threshold %d encodes %v, want %v", k, got, cum)
		}
	}
	t.Fatal("table lacks a sentinel within d+1 entries")
}

func TestEdgeProbabilityBinarySearch(t *testing.T) {
	g := wcGraph()
	for _, e := range g.Edges() {
		p, ok := g.EdgeProbability(e.From, e.To)
		if !ok || p != e.P {
			t.Fatalf("EdgeProbability(%d,%d) = %v,%v, want %v,true", e.From, e.To, p, ok, e.P)
		}
	}
	if _, ok := g.EdgeProbability(4, 0); ok {
		t.Fatal("found a nonexistent edge")
	}
	if _, ok := g.EdgeProbability(1, 4); ok {
		t.Fatal("found a nonexistent edge")
	}
}

func TestInMetaConsistent(t *testing.T) {
	g := wcGraph()
	meta, arena, thr, tabOff := g.InSamplerTables()
	if meta == nil {
		t.Fatal("no sampler metadata on a small compressed graph")
	}
	for v := NodeID(0); v < NodeID(g.N()); v++ {
		srcs, p, _ := g.InNeighborsUniform(v)
		mv := meta[v]
		if int(mv.Deg) != len(srcs) {
			t.Fatalf("node %d: meta degree %d, want %d", v, mv.Deg, len(srcs))
		}
		for i := range srcs {
			if arena[mv.Start+int32(i)] != srcs[i] {
				t.Fatalf("node %d: arena neighbor %d mismatch", v, i)
			}
		}
		switch {
		case mv.Deg == 0:
			if mv.Thr0 != ^uint32(0) || mv.Thr1 != ^uint32(0) {
				t.Fatalf("zero-degree node %d: Thr0 %#x Thr1 %#x, want sentinels", v, mv.Thr0, mv.Thr1)
			}
		case p >= 1:
			if tabOff[v] >= 0 || mv.Thr0 != 0 || mv.Thr1 != 0 {
				t.Fatalf("certain-edge node %d: TabOff %d Thr0 %#x Thr1 %#x, want -1/0/0", v, tabOff[v], mv.Thr0, mv.Thr1)
			}
		default:
			off := tabOff[v]
			if off < 0 || thr[off] != mv.Thr0 || thr[off+1] != mv.Thr1 {
				t.Fatalf("node %d: Thr0/Thr1 cache inconsistent with table", v)
			}
		}
	}
}
