package graph

import (
	"strings"
	"testing"
)

func TestComputeStatsFig1(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	s := ComputeStats(g)
	if s.N != 7 || s.M != 10 {
		t.Fatalf("N=%d M=%d", s.N, s.M)
	}
	if s.Type != "directed" {
		t.Fatalf("Type = %q", s.Type)
	}
	wantAvg := 10.0 / 7.0
	if diff := s.AvgDegree - wantAvg; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("AvgDegree = %v, want %v", s.AvgDegree, wantAvg)
	}
	if s.MaxOutDeg != 2 {
		t.Fatalf("MaxOutDeg = %d, want 2 (v2, v5, v6 all have 2)", s.MaxOutDeg)
	}
	if s.Isolated != 0 {
		t.Fatalf("Isolated = %d", s.Isolated)
	}
	if s.MinEdgeP != 0.2 || s.MaxEdgeP != 0.8 {
		t.Fatalf("edge p range [%v,%v], want [0.2,0.8]", s.MinEdgeP, s.MaxEdgeP)
	}
	if s.WeaklyConn != 1 {
		t.Fatalf("WeaklyConn = %d, want 1", s.WeaklyConn)
	}
}

func TestComputeStatsDisconnected(t *testing.T) {
	g := MustFromEdges(5, true, []Edge{{From: 0, To: 1, P: 0.5}, {From: 2, To: 3, P: 0.5}})
	s := ComputeStats(g)
	if s.WeaklyConn != 3 { // {0,1}, {2,3}, {4}
		t.Fatalf("WeaklyConn = %d, want 3", s.WeaklyConn)
	}
	if s.Isolated != 1 {
		t.Fatalf("Isolated = %d, want 1", s.Isolated)
	}
}

func TestHumanCount(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{999, "999"},
		{1000, "1K"},
		{15200, "15.2K"},
		{132000, "132K"},
		{1990000, "1.99M"},
		{4850000, "4.85M"},
		{69000000, "69M"},
	}
	for _, c := range cases {
		if got := humanCount(c.in); got != c.want {
			t.Errorf("humanCount(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRowShape(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	row := ComputeStats(g).TableRow("fig1")
	for _, field := range []string{"fig1", "7", "10", "directed"} {
		if !strings.Contains(row, field) {
			t.Fatalf("row %q missing %q", row, field)
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Fatal("percentile of empty slice should be 0")
	}
	if percentile([]int{7}, 0.99) != 7 {
		t.Fatal("percentile of singleton")
	}
	s := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(s, 0.5); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := percentile(s, 0.9); p != 9 {
		t.Fatalf("p90 = %d", p)
	}
}
