package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// assertGraphsEquivalent checks that got (an ApplyDelta product) is
// structurally identical, per node, to want (a Builder.Build from-scratch
// rebuild on the edited edge list). Table arena layouts may differ between
// the two paths — tables are compared per node by content, and InMeta by
// the fields samplers actually read.
func assertGraphsEquivalent(t *testing.T, got, want *Graph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("delta graph invalid: %v", err)
	}
	if err := want.Validate(); err != nil {
		t.Fatalf("rebuilt graph invalid: %v", err)
	}
	if got.N() != want.N() || got.M() != want.M() || got.Directed() != want.Directed() {
		t.Fatalf("shape mismatch: got n=%d m=%d dir=%v, want n=%d m=%d dir=%v",
			got.N(), got.M(), got.Directed(), want.N(), want.M(), want.Directed())
	}
	for v := NodeID(0); v < got.n; v++ {
		if got.outIdx[v] != want.outIdx[v] || got.inIdx[v] != want.inIdx[v] {
			t.Fatalf("node %d: CSR offsets diverge (out %d vs %d, in %d vs %d)",
				v, got.outIdx[v], want.outIdx[v], got.inIdx[v], want.inIdx[v])
		}
	}
	for i := range got.outAdj {
		if got.outAdj[i] != want.outAdj[i] || got.outP[i] != want.outP[i] {
			t.Fatalf("out edge %d: (%d, %v) vs (%d, %v)",
				i, got.outAdj[i], got.outP[i], want.outAdj[i], want.outP[i])
		}
	}
	for i := range got.inAdj {
		if got.inAdj[i] != want.inAdj[i] {
			t.Fatalf("in edge %d: source %d vs %d", i, got.inAdj[i], want.inAdj[i])
		}
	}
	if got.InUniform() != want.InUniform() {
		t.Fatalf("storage mode diverges: delta uniform=%v, rebuild uniform=%v",
			got.InUniform(), want.InUniform())
	}
	if !got.InUniform() {
		for i := range got.inP {
			if got.inP[i] != want.inP[i] {
				t.Fatalf("in edge %d: probability %v vs %v", i, got.inP[i], want.inP[i])
			}
		}
		return
	}
	for v := NodeID(0); v < got.n; v++ {
		if got.inProb[v] != want.inProb[v] {
			t.Fatalf("node %d: inProb %v vs %v", v, got.inProb[v], want.inProb[v])
		}
		gt, wt := canonTable(got.InCountThresholds(v)), canonTable(want.InCountThresholds(v))
		if len(gt) != len(wt) {
			t.Fatalf("node %d: table length %d vs %d", v, len(gt), len(wt))
		}
		for k := range gt {
			if gt[k] != wt[k] {
				t.Fatalf("node %d: table entry %d: %08x vs %08x", v, k, gt[k], wt[k])
			}
		}
	}
	gm, _, _, goff := got.InSamplerTables()
	wm, _, _, woff := want.InSamplerTables()
	if (gm == nil) != (wm == nil) {
		t.Fatalf("inMeta presence diverges: %v vs %v", gm != nil, wm != nil)
	}
	for v := range gm {
		g, w := gm[v], wm[v]
		if g != w || (goff[v] >= 0) != (woff[v] >= 0) {
			t.Fatalf("node %d: InMeta %+v (off %d) vs %+v (off %d)", v, g, goff[v], w, woff[v])
		}
	}
}

// canonTable cuts a threshold table view at its first sentinel (inclusive):
// the entries a sampler can ever read. Padding beyond it is deterministic
// (sentinels up to length 5) in both build paths.
func canonTable(tab []uint32) []uint32 {
	if tab == nil {
		return nil
	}
	for i, v := range tab {
		if v == ^uint32(0) {
			return tab[:i+1]
		}
	}
	return tab
}

const (
	weightWC = iota
	weightUniformP
	weightMixed
)

// randomDeltaEdges draws a simple (parallel-free) directed edge set and
// weights it. Parallel edges with distinct probabilities are avoided
// throughout the property tests: Builder.Build sorts with sort.Slice, whose
// order among equal (From,To) keys is unspecified.
func randomDeltaEdges(r *rng.RNG, n, m, weighting int) []Edge {
	seen := make(map[[2]NodeID]bool, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if u == v || seen[[2]NodeID{u, v}] {
			continue
		}
		seen[[2]NodeID{u, v}] = true
		edges = append(edges, Edge{From: u, To: v, P: 1})
	}
	switch weighting {
	case weightWC:
		indeg := make([]int, n)
		for _, e := range edges {
			indeg[e.To]++
		}
		for i := range edges {
			edges[i].P = 1 / float64(indeg[edges[i].To])
		}
	case weightUniformP:
		for i := range edges {
			edges[i].P = 0.1
		}
	default:
		vals := [3]float64{0.1, 0.01, 0.001}
		for i := range edges {
			edges[i].P = vals[r.Intn(3)]
		}
	}
	return edges
}

// TestApplyDeltaFlattenMatchesBuild is the flatten-equals-rebuild property:
// for random delta sequences (chained, so deltas compose on delta output),
// ApplyDelta must be per-node structurally identical to Builder.Build on
// the edited edge list — CSR runs, probabilities, compressed per-node
// tables, and sampler metadata alike.
func TestApplyDeltaFlattenMatchesBuild(t *testing.T) {
	const n = 60
	for _, weighting := range []int{weightWC, weightUniformP, weightMixed} {
		for seed := uint64(1); seed <= 4; seed++ {
			r := rng.New(seed + uint64(weighting)*100)
			edges := randomDeltaEdges(r, n, 240, weighting)
			cur := MustFromEdges(n, true, edges)
			for round := 0; round < 8; round++ {
				inserts, deletes, edited := randomDelta(r, cur, edges, n)
				next, dres, err := cur.ApplyDelta(inserts, deletes)
				if err != nil {
					t.Fatalf("w=%d seed=%d round=%d: ApplyDelta: %v", weighting, seed, round, err)
				}
				if next.Epoch() != cur.Epoch()+1 {
					t.Fatalf("epoch %d after delta on epoch %d", next.Epoch(), cur.Epoch())
				}
				if dres.Inserted != len(inserts) || dres.Deleted != len(deletes) {
					t.Fatalf("counts %d/%d, want %d/%d", dres.Inserted, dres.Deleted, len(inserts), len(deletes))
				}
				assertTouched(t, dres, inserts, deletes)
				want := MustFromEdges(n, true, edited)
				assertGraphsEquivalent(t, next, want)
				cur, edges = next, edited
			}
		}
	}
}

// randomDelta picks deletes from the live edge list and inserts of edges
// not currently present, biased toward the target's existing shared
// in-probability (exercising the compressed fast path) but sometimes
// diverging (exercising the per-edge fallback and re-compression).
func randomDelta(r *rng.RNG, g *Graph, edges []Edge, n int) (inserts, deletes, edited []Edge) {
	present := make(map[[2]NodeID]bool, len(edges))
	for _, e := range edges {
		present[[2]NodeID{e.From, e.To}] = true
	}
	nDel := r.Intn(6)
	if nDel > len(edges) {
		nDel = len(edges)
	}
	delIdx := make(map[int]bool, nDel)
	for len(delIdx) < nDel {
		delIdx[r.Intn(len(edges))] = true
	}
	for i := range delIdx {
		e := edges[i]
		e.P = 0 // deletes match by (From, To); the probability must be ignored
		deletes = append(deletes, e)
		delete(present, [2]NodeID{e.From, e.To})
	}
	for tries := 0; len(inserts) < 5 && tries < 100; tries++ {
		u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if u == v || present[[2]NodeID{u, v}] {
			continue
		}
		p := 0.25
		if _, q, ok := g.InNeighborsUniform(v); ok && q > 0 && r.Intn(4) > 0 {
			p = q
		} else if r.Intn(2) == 0 {
			p = 0.5
		}
		present[[2]NodeID{u, v}] = true
		inserts = append(inserts, Edge{From: u, To: v, P: p})
	}
	for i, e := range edges {
		if !delIdx[i] {
			edited = append(edited, e)
		}
	}
	edited = append(edited, inserts...)
	return inserts, deletes, edited
}

func assertTouched(t *testing.T, dres *DeltaResult, inserts, deletes []Edge) {
	t.Helper()
	want := make(map[NodeID]bool)
	for _, e := range inserts {
		want[e.To] = true
	}
	for _, e := range deletes {
		want[e.To] = true
	}
	if len(dres.Touched) != len(want) {
		t.Fatalf("touched %v, want the %d distinct targets", dres.Touched, len(want))
	}
	for i, v := range dres.Touched {
		if !want[v] {
			t.Fatalf("touched[%d]=%d is not a delta target", i, v)
		}
		if i > 0 && dres.Touched[i-1] >= v {
			t.Fatalf("touched not sorted/unique at %d: %v", i, dres.Touched)
		}
	}
}

// TestApplyDeltaStorageTransitions pins the two storage-mode crossings:
// a mixed-probability insert demotes compressed storage to per-edge, and
// deleting the odd edges out re-compresses — both matching Build.
func TestApplyDeltaStorageTransitions(t *testing.T) {
	base := []Edge{{0, 1, 0.5}, {2, 1, 0.5}, {1, 2, 0.5}, {3, 2, 0.5}}
	g := MustFromEdges(4, true, base)
	if !g.InUniform() {
		t.Fatal("base graph should compress")
	}

	// Insert an edge whose probability clashes with node 1's shared one.
	odd := Edge{From: 3, To: 1, P: 0.9}
	mixed, _, err := g.ApplyDelta([]Edge{odd}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.InUniform() {
		t.Fatal("mixed insert should demote to per-edge storage")
	}
	assertGraphsEquivalent(t, mixed, MustFromEdges(4, true, append(append([]Edge{}, base...), odd)))

	// Deleting it again must re-compress, exactly as a rebuild would.
	back, _, err := mixed.ApplyDelta(nil, []Edge{odd})
	if err != nil {
		t.Fatal(err)
	}
	if !back.InUniform() {
		t.Fatal("deleting the odd edge should restore compressed storage")
	}
	assertGraphsEquivalent(t, back, MustFromEdges(4, true, base))
	if back.Epoch() != 2 {
		t.Fatalf("epoch %d after two deltas", back.Epoch())
	}
}

// TestApplyDeltaRejectsHostileInput pins the validation surface.
func TestApplyDeltaRejectsHostileInput(t *testing.T) {
	g := MustFromEdges(4, true, []Edge{{0, 1, 0.5}, {1, 2, 0.5}})
	cases := []struct {
		name          string
		ins, del      []Edge
		wantSubstring string
	}{
		{"insert out of range", []Edge{{0, 9, 0.5}}, nil, "out of range"},
		{"insert negative node", []Edge{{-1, 1, 0.5}}, nil, "out of range"},
		{"insert self-loop", []Edge{{2, 2, 0.5}}, nil, "self-loop"},
		{"insert p=0", []Edge{{0, 2, 0}}, nil, "outside (0,1]"},
		{"insert p>1", []Edge{{0, 2, 1.5}}, nil, "outside (0,1]"},
		{"insert NaN", []Edge{{0, 2, math.NaN()}}, nil, "outside (0,1]"},
		{"delete absent edge", nil, []Edge{{2, 0, 0.5}}, "exceeds 0 existing"},
		{"delete out of range", nil, []Edge{{0, 99, 0.5}}, "out of range"},
		{"delete same edge twice", nil, []Edge{{0, 1, 0.5}, {0, 1, 0.5}}, "exceeds 1 existing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ng, _, err := g.ApplyDelta(tc.ins, tc.del)
			if err == nil {
				t.Fatalf("want error containing %q, got graph m=%d", tc.wantSubstring, ng.M())
			}
		})
	}
	// The base graph must be untouched by failed (and successful) deltas.
	if err := g.Validate(); err != nil {
		t.Fatalf("base graph corrupted: %v", err)
	}
	if g.M() != 2 || g.Epoch() != 0 {
		t.Fatalf("base graph mutated: m=%d epoch=%d", g.M(), g.Epoch())
	}
}

// TestApplyDeltaParallelEdges: equal-probability parallel edges are legal;
// each delete consumes exactly one copy.
func TestApplyDeltaParallelEdges(t *testing.T) {
	b := NewBuilder(3, true)
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(0, 1, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	one, _, err := g.ApplyDelta(nil, []Edge{{0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if one.M() != 2 {
		t.Fatalf("m=%d after deleting one of three parallel edges", one.M())
	}
	two, _, err := one.ApplyDelta(nil, []Edge{{0, 1, 0}, {0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if two.M() != 0 {
		t.Fatalf("m=%d after deleting the remaining copies", two.M())
	}
	if _, _, err := two.ApplyDelta(nil, []Edge{{0, 1, 0}}); err == nil {
		t.Fatal("deleting from an empty pair should fail")
	}
}

// TestApplyDeltaEmpty: the empty delta is a structural no-op that still
// bumps the epoch (callers use it as a copy-with-new-epoch primitive).
func TestApplyDeltaEmpty(t *testing.T) {
	g := MustFromEdges(4, true, []Edge{{0, 1, 0.5}, {1, 2, 0.5}, {3, 1, 0.5}})
	ng, dres, err := g.ApplyDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.Touched) != 0 || dres.Inserted != 0 || dres.Deleted != 0 {
		t.Fatalf("empty delta result %+v", dres)
	}
	if ng.Epoch() != 1 {
		t.Fatalf("epoch %d", ng.Epoch())
	}
	assertGraphsEquivalent(t, ng, g)
}
