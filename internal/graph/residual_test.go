package graph

import (
	"testing"
	"testing/quick"
)

func TestResidualBasics(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	r := NewResidual(g)
	if r.N() != 7 {
		t.Fatalf("fresh residual N = %d, want 7", r.N())
	}
	if !r.Alive(3) {
		t.Fatal("node 3 should start alive")
	}
	if !r.Remove(3) {
		t.Fatal("first Remove returned false")
	}
	if r.Remove(3) {
		t.Fatal("second Remove returned true")
	}
	if r.N() != 6 || r.Alive(3) {
		t.Fatalf("after removal: N=%d alive(3)=%v", r.N(), r.Alive(3))
	}
}

func TestResidualVersionBumps(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	r := NewResidual(g)
	v0 := r.Version()
	r.Remove(1)
	if r.Version() == v0 {
		t.Fatal("version did not change after Remove")
	}
	v1 := r.Version()
	r.Remove(1) // no-op
	if r.Version() != v1 {
		t.Fatal("version changed on no-op Remove")
	}
	r.Reset()
	if r.Version() == v1 {
		t.Fatal("version did not change after Reset")
	}
}

func TestResidualMCountsAliveEdges(t *testing.T) {
	// Paper's Fig. 1(c): removing A(v2) = {v2, v3, v4} leaves G2 with
	// edges v5->v6? no: edges among {v1,v5,v6,v7}: v5->v6(0.3), v6->v5(0.7),
	// v6->v7(0.6), v7->v1(0.2), v5->v1(0.7) = 5 edges.
	g := MustFromEdges(7, true, fig1Edges())
	r := NewResidual(g)
	r.RemoveAll([]NodeID{1, 2, 3})
	if r.N() != 4 {
		t.Fatalf("G2 has %d nodes, want 4", r.N())
	}
	if m := r.M(); m != 5 {
		t.Fatalf("G2 has %d alive edges, want 5", m)
	}
}

func TestResidualAliveNodes(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	r := NewResidual(g)
	r.RemoveAll([]NodeID{1, 2, 3})
	got := r.AliveNodes()
	want := []NodeID{0, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("AliveNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AliveNodes = %v, want %v", got, want)
		}
	}
}

func TestResidualCloneIsIndependent(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	r := NewResidual(g)
	r.Remove(0)
	c := r.Clone()
	c.Remove(1)
	if !r.Alive(1) {
		t.Fatal("mutating clone affected original")
	}
	if c.Alive(0) {
		t.Fatal("clone did not inherit removal")
	}
	if c.N() != 5 || r.N() != 6 {
		t.Fatalf("counts: clone=%d orig=%d", c.N(), r.N())
	}
}

func TestResidualReset(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	r := NewResidual(g)
	r.RemoveAll([]NodeID{0, 1, 2, 3, 4, 5, 6})
	if r.N() != 0 {
		t.Fatalf("N = %d after removing all", r.N())
	}
	r.Reset()
	if r.N() != 7 {
		t.Fatalf("N = %d after Reset, want 7", r.N())
	}
	for u := NodeID(0); u < 7; u++ {
		if !r.Alive(u) {
			t.Fatalf("node %d dead after Reset", u)
		}
	}
}

func TestMaterialize(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	r := NewResidual(g)
	r.RemoveAll([]NodeID{1, 2, 3}) // Fig. 1(c) residual G2
	sub, oldToNew, newToOld := r.Materialize()
	if sub.N() != 4 {
		t.Fatalf("materialized N = %d, want 4", sub.N())
	}
	if sub.M() != 5 {
		t.Fatalf("materialized M = %d, want 5", sub.M())
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
	// v6 -> v7 edge must survive with p = 0.6.
	nu, nv := oldToNew[5], oldToNew[6]
	if p, ok := sub.EdgeProbability(nu, nv); !ok || p != 0.6 {
		t.Fatalf("edge v6->v7 lost: p=%v ok=%v", p, ok)
	}
	// Mapping round-trips.
	for old, nw := range oldToNew {
		if newToOld[nw] != old {
			t.Fatalf("mapping mismatch: old %d -> new %d -> old %d", old, nw, newToOld[nw])
		}
	}
}

// Property: for any removal sequence, alive count equals N minus distinct
// removed nodes, and AliveNodes agrees with Alive.
func TestResidualCountProperty(t *testing.T) {
	g := MustFromEdges(7, true, fig1Edges())
	f := func(seq []uint8) bool {
		r := NewResidual(g)
		distinct := make(map[NodeID]bool)
		for _, s := range seq {
			u := NodeID(int(s) % 7)
			r.Remove(u)
			distinct[u] = true
		}
		if r.N() != 7-len(distinct) {
			return false
		}
		alive := r.AliveNodes()
		if len(alive) != r.N() {
			return false
		}
		for _, u := range alive {
			if distinct[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
