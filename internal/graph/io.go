package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list format, one record per line:
//
//	# comment
//	n <nodes> <directed|undirected>
//	<from> <to> <probability>
//
// The header line must come before any edge. Probabilities may be omitted
// when the file will be re-weighted after load (they default to 1).
// This mirrors the SNAP-style edge lists the paper's datasets ship in,
// with an explicit header so files are self-describing.

// MaxReadNodes bounds the node count Read accepts from a header. The
// builder allocates O(n) on Build, so an absurd declared count in a
// malformed (or hostile) file must fail with an error instead of an
// allocation blow-up. 1<<27 ≈ 134M nodes — 27× livejournal — keeps every
// legitimate dataset loadable.
const MaxReadNodes = 1 << 27

// Write serializes g in the text edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	kind := "directed"
	if !g.Directed() {
		kind = "undirected"
	}
	if _, err := fmt.Fprintf(bw, "n %d %s\n", g.N(), kind); err != nil {
		return err
	}
	for u := int32(0); u < int32(g.N()); u++ {
		adj, ps := g.OutNeighbors(u)
		for i, v := range adj {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, ps[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses the text edge-list format into a Graph.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "n" {
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: header wants 'n <count> <directed|undirected>'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[1])
			}
			if n > MaxReadNodes {
				return nil, fmt.Errorf("graph: line %d: node count %d exceeds limit %d", line, n, MaxReadNodes)
			}
			var directed bool
			switch fields[2] {
			case "directed":
				directed = true
			case "undirected":
				directed = false
			default:
				return nil, fmt.Errorf("graph: line %d: bad graph type %q", line, fields[2])
			}
			b = NewBuilder(n, directed)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("graph: line %d: edge before header", line)
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want '<from> <to> [p]', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q", line, fields[1])
		}
		p := 1.0
		if len(fields) == 3 {
			p, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad probability %q", line, fields[2])
			}
		}
		if err := b.AddEdge(NodeID(u), NodeID(v), p); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input (no header)")
	}
	return b.Build(), nil
}
