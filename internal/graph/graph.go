// Package graph provides the probabilistic directed-graph substrate that
// every algorithm in the repository runs on.
//
// A Graph is an immutable compressed-sparse-row (CSR) structure holding
// both out-adjacency (used by forward cascades) and in-adjacency (used by
// reverse-reachable-set sampling), with adjacency sorted per node so edge
// lookups binary-search. Each directed edge carries an influence
// probability p(e) in (0, 1], matching the Independent Cascade model of
// Kempe et al. that the paper builds on.
//
// In-probability storage is dual. Build detects when every node's
// in-edges share one probability — always true for the paper's
// weighted-cascade weighting p(u,v) = 1/indeg(v) and for uniform edge
// probabilities — and then compresses the per-edge array into a per-node
// one (InUniform / InNeighborsUniform): 8 bytes per node instead of per
// edge, ~550 MB less on livejournal-s's 69M edges. Compression also
// precomputes per-node success-count tables (InCountThresholds) and
// packed sampler metadata (InSamplerTables) that let RR-set samplers draw
// a node's successful in-edge count in O(1). Mixed-probability graphs
// (trivalency) keep the per-edge fallback and the accessor-based API.
//
// Mutation happens only through Builder; once built, a Graph is safe for
// concurrent readers. Residual graphs (the paper's G_i) are lightweight
// views provided by the Residual type, which maintains its alive-node
// list incrementally for O(1) uniform root sampling.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. Nodes are dense integers in [0, N).
type NodeID = int32

// Edge is one directed, weighted edge.
type Edge struct {
	From NodeID
	To   NodeID
	P    float64 // influence probability in (0, 1]
}

// Graph is an immutable probabilistic directed graph in CSR form.
type Graph struct {
	n int32
	m int64

	// Out-adjacency: edges leaving node u occupy
	// outAdj[outIdx[u]:outIdx[u+1]], probabilities in outP at the same
	// positions.
	outIdx []int64
	outAdj []NodeID
	outP   []float64

	// In-adjacency: edges entering node v occupy
	// inAdj[inIdx[v]:inIdx[v+1]] (the sources). Probability storage is
	// dual: when every node's in-edges share one probability (always true
	// for weighted-cascade and ApplyUniformProbability weightings) the
	// per-edge inP is dropped and a single per-node inProb is kept instead
	// — 8 bytes per node instead of 8 bytes per edge, which is what lets
	// livejournal-scale in-adjacency fit in memory. Mixed-probability
	// graphs (trivalency) keep the per-edge inP fallback.
	inIdx     []int64
	inAdj     []NodeID
	inP       []float64 // per-edge; nil when uniformIn
	inProb    []float64 // per-node shared probability; nil unless uniformIn
	uniformIn bool

	// Success-count sampling tables for uniform in-probability nodes:
	// inTabThr[inTabOff[v]:] is a truncated cumulative Binomial(indeg(v),
	// inProb[v]) threshold table (see InCountThresholds). Nodes with the
	// same (degree, probability) pair share one table.
	inTabOff []int32
	inTabThr []uint32

	// inMeta packs the per-node fast-path metadata (adjacency start,
	// degree, table offset) into one cache line's worth of struct, so an
	// RR sampler visit costs one random load instead of three. Built only
	// when the edge count fits the int32 start offsets.
	inMeta []InMeta

	directed bool

	// epoch counts the topology deltas applied since the graph was built:
	// Builder.Build produces epoch 0 and every ApplyDelta increments it.
	// Consumers that cache per-topology state (the service instance
	// registry, RR-set collections) key on it to avoid mixing artifacts
	// across divergent topologies.
	epoch int64
}

// InMeta is the packed per-node reverse-sampling metadata: node v's
// in-neighbors occupy arena[Start:Start+Deg] of the slice returned by
// InSamplerTables, and its success-count table starts at thr[TabOff]
// (TabOff < 0 when v has no table). Thr0 caches the table's first
// threshold so the most common visit outcome — zero successful in-edges —
// resolves on this struct alone: it is thr[TabOff] for table nodes, the
// sentinel for zero-degree nodes (every clamped draw lands below it, so
// the visit ends immediately), and 0 for table-less nodes so every draw
// falls through to their dedicated expansion. The 16-byte stride keeps an
// element inside one cache line and indexing a shift.
type InMeta struct {
	Start  int32
	Deg    int32
	TabOff int32
	Thr0   uint32
}

// N returns the number of nodes.
func (g *Graph) N() int { return int(g.n) }

// M returns the number of directed edges. For graphs built from an
// undirected edge list, each undirected edge contributes two directed edges
// and M counts both.
func (g *Graph) M() int64 { return g.m }

// Epoch returns the number of topology deltas applied since the graph was
// built from scratch (0 for Builder.Build output; see ApplyDelta).
func (g *Graph) Epoch() int64 { return g.epoch }

// Directed reports whether the graph was declared directed at build time.
// This only affects dataset statistics (Table II reports the declared
// type); the adjacency structure is always directed internally.
func (g *Graph) Directed() bool { return g.directed }

// OutDegree returns the number of edges leaving u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outIdx[u+1] - g.outIdx[u])
}

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inIdx[v+1] - g.inIdx[v])
}

// OutNeighbors returns the targets of edges leaving u and their
// probabilities. The returned slices alias internal storage and must not
// be modified.
func (g *Graph) OutNeighbors(u NodeID) ([]NodeID, []float64) {
	lo, hi := g.outIdx[u], g.outIdx[u+1]
	return g.outAdj[lo:hi], g.outP[lo:hi]
}

// InNeighbors returns the sources of edges entering v and their
// probabilities. With per-edge storage both slices alias internal arrays
// and must not be modified; with compressed per-node storage (InUniform)
// the probability slice is materialized on every call, so hot paths must
// go through InNeighborsUniform instead.
func (g *Graph) InNeighbors(v NodeID) ([]NodeID, []float64) {
	lo, hi := g.inIdx[v], g.inIdx[v+1]
	if !g.uniformIn {
		return g.inAdj[lo:hi], g.inP[lo:hi]
	}
	ps := make([]float64, hi-lo)
	p := g.inProb[v]
	for i := range ps {
		ps[i] = p
	}
	return g.inAdj[lo:hi], ps
}

// InUniform reports whether the graph stores one shared in-probability per
// node (compressed storage) instead of one per edge. True for the paper's
// weighted-cascade weighting p(u,v) = 1/indeg(v) and for uniform edge
// probabilities; false for trivalency-style mixed weightings.
func (g *Graph) InUniform() bool { return g.uniformIn }

// InNeighborsUniform returns the sources of edges entering v together with
// the single probability all of them share, when the graph stores
// compressed in-probabilities. ok is false on per-edge storage and callers
// must fall back to InNeighbors. The source slice aliases internal storage.
func (g *Graph) InNeighborsUniform(v NodeID) ([]NodeID, float64, bool) {
	if !g.uniformIn {
		return nil, 0, false
	}
	lo, hi := g.inIdx[v], g.inIdx[v+1]
	return g.inAdj[lo:hi], g.inProb[v], true
}

// InCountThresholds returns the success-count sampling table of node v, or
// nil when the graph stores per-edge probabilities or no table was built
// for v's (degree, probability) pair. The table encodes the cumulative
// Binomial(indeg(v), inProb(v)) distribution as uint32 thresholds scaled
// by 2^32 and terminated by a ^uint32(0) sentinel: drawing one Uint32 u
// and scanning for the first non-sentinel entry > u yields the number of
// successful in-edges in one RNG draw (RR-set samplers then place that
// many successes uniformly, which is distributionally equivalent to one
// independent coin per edge up to the 2^-32 quantization of the table).
func (g *Graph) InCountThresholds(v NodeID) []uint32 {
	if g.inTabOff == nil {
		return nil
	}
	off := g.inTabOff[v]
	if off < 0 {
		return nil
	}
	return g.inTabThr[off:]
}

// InSamplerTables exposes the packed fast-path arrays for bulk RR
// samplers: per-node metadata, the shared in-adjacency arena, and the
// success-count threshold arena. meta is nil when the graph stores
// per-edge in-probabilities or is too large for int32 adjacency offsets;
// callers must then use the accessor-based API. All three slices are
// read-only views of internal storage.
func (g *Graph) InSamplerTables() (meta []InMeta, arena []NodeID, thr []uint32) {
	return g.inMeta, g.inAdj, g.inTabThr
}

// Edges returns a copy of all directed edges in deterministic
// (source-major) order. Intended for tests, serialization and small
// graphs; it allocates O(M).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := int32(0); u < g.n; u++ {
		adj, ps := g.OutNeighbors(u)
		for i, v := range adj {
			edges = append(edges, Edge{From: u, To: v, P: ps[i]})
		}
	}
	return edges
}

// EdgeProbability returns the probability of edge (u, v) and whether the
// edge exists. Out-adjacency is sorted by target at build time, so the
// lookup binary-searches in O(log outdeg) instead of scanning. If parallel
// edges exist, the first (lowest-index) one is returned.
func (g *Graph) EdgeProbability(u, v NodeID) (float64, bool) {
	adj, ps := g.OutNeighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return ps[i], true
	}
	return 0, false
}

// Validate performs internal consistency checks and returns a descriptive
// error on the first violation. It is O(N + M) and intended for tests and
// for use after deserialization.
func (g *Graph) Validate() error {
	if int64(len(g.outAdj)) != g.m || int64(len(g.inAdj)) != g.m {
		return fmt.Errorf("graph: adjacency length mismatch: out=%d in=%d m=%d",
			len(g.outAdj), len(g.inAdj), g.m)
	}
	if len(g.outIdx) != int(g.n)+1 || len(g.inIdx) != int(g.n)+1 {
		return fmt.Errorf("graph: index length mismatch for n=%d", g.n)
	}
	if g.outIdx[g.n] != g.m || g.inIdx[g.n] != g.m {
		return fmt.Errorf("graph: index does not cover all edges")
	}
	var outCount, inCount int64
	for u := int32(0); u < g.n; u++ {
		if g.outIdx[u] > g.outIdx[u+1] || g.inIdx[u] > g.inIdx[u+1] {
			return fmt.Errorf("graph: non-monotone CSR index at node %d", u)
		}
		outCount += g.outIdx[u+1] - g.outIdx[u]
		inCount += g.inIdx[u+1] - g.inIdx[u]
	}
	if outCount != g.m || inCount != g.m {
		return fmt.Errorf("graph: degree sums out=%d in=%d, want %d", outCount, inCount, g.m)
	}
	for i, v := range g.outAdj {
		if v < 0 || v >= g.n {
			return fmt.Errorf("graph: out edge %d targets invalid node %d", i, v)
		}
		if p := g.outP[i]; !(p > 0 && p <= 1) { // negated form also catches NaN
			return fmt.Errorf("graph: out edge %d has probability %v outside (0,1]", i, p)
		}
	}
	for i, u := range g.inAdj {
		if u < 0 || u >= g.n {
			return fmt.Errorf("graph: in edge %d comes from invalid node %d", i, u)
		}
	}
	if g.uniformIn {
		if g.inP != nil {
			return fmt.Errorf("graph: uniform in-probability storage retains per-edge inP")
		}
		if len(g.inProb) != int(g.n) {
			return fmt.Errorf("graph: inProb length %d, want %d", len(g.inProb), g.n)
		}
		for v := int32(0); v < g.n; v++ {
			if g.InDegree(v) == 0 {
				continue
			}
			if p := g.inProb[v]; !(p > 0 && p <= 1) {
				return fmt.Errorf("graph: node %d in-probability %v outside (0,1]", v, p)
			}
		}
	} else {
		for i, p := range g.inP {
			if !(p > 0 && p <= 1) {
				return fmt.Errorf("graph: in edge %d has probability %v outside (0,1]", i, p)
			}
		}
	}
	// CSR adjacency must be sorted (out by target, in by source): the
	// binary-searched EdgeProbability and deterministic layouts rely on it.
	for u := int32(0); u < g.n; u++ {
		adj := g.outAdj[g.outIdx[u]:g.outIdx[u+1]]
		for i := 1; i < len(adj); i++ {
			if adj[i-1] > adj[i] {
				return fmt.Errorf("graph: out-adjacency of node %d not sorted at %d", u, i)
			}
		}
		srcs := g.inAdj[g.inIdx[u]:g.inIdx[u+1]]
		for i := 1; i < len(srcs); i++ {
			if srcs[i-1] > srcs[i] {
				return fmt.Errorf("graph: in-adjacency of node %d not sorted at %d", u, i)
			}
		}
	}
	// Success-count tables, when present, must be nondecreasing threshold
	// runs terminated by the sentinel.
	if g.inTabOff != nil {
		for v := int32(0); v < g.n; v++ {
			tab := g.InCountThresholds(v)
			if tab == nil {
				continue
			}
			prev := uint32(0)
			terminated := false
			for k, t := range tab {
				if t == ^uint32(0) {
					terminated = true
					break
				}
				if k > g.InDegree(v) {
					return fmt.Errorf("graph: node %d count table longer than degree", v)
				}
				if t < prev {
					return fmt.Errorf("graph: node %d count table decreases at %d", v, k)
				}
				prev = t
			}
			if !terminated {
				return fmt.Errorf("graph: node %d count table lacks a sentinel", v)
			}
		}
	}
	// Every out edge must have a matching in edge with the bit-identical
	// probability. An exact multiset match per (u,v) pair — not a
	// sum/subtract residual, which is order-dependent in floating point
	// and false-alarms on parallel edges ((a+b)−a−b ≠ 0).
	type key struct{ u, v NodeID }
	fwd := make(map[key][]float64, min64(g.m, 1<<20))
	if g.m <= 1<<20 { // full check only on graphs where the map is affordable
		for u := int32(0); u < g.n; u++ {
			adj, ps := g.OutNeighbors(u)
			for i, v := range adj {
				fwd[key{u, v}] = append(fwd[key{u, v}], ps[i])
			}
		}
		for v := int32(0); v < g.n; v++ {
			adj, ps := g.InNeighbors(v)
			for i, u := range adj {
				k := key{u, v}
				left := fwd[k]
				matched := false
				for j, p := range left {
					if p == ps[i] {
						left[j] = left[len(left)-1]
						fwd[k] = left[:len(left)-1]
						matched = true
						break
					}
				}
				if !matched {
					return fmt.Errorf("graph: in edge (%d,%d) p=%v has no matching out edge", u, v, ps[i])
				}
			}
		}
		for k, left := range fwd {
			if len(left) > 0 {
				return fmt.Errorf("graph: out edge (%d,%d) p=%v has no matching in edge", k.u, k.v, left[0])
			}
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
