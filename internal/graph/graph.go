// Package graph provides the probabilistic directed-graph substrate that
// every algorithm in the repository runs on.
//
// A Graph is an immutable compressed-sparse-row (CSR) structure holding
// both out-adjacency (used by forward cascades) and in-adjacency (used by
// reverse-reachable-set sampling). Each directed edge carries an influence
// probability p(e) in (0, 1], matching the Independent Cascade model of
// Kempe et al. that the paper builds on.
//
// Mutation happens only through Builder; once built, a Graph is safe for
// concurrent readers. Residual graphs (the paper's G_i) are lightweight
// mask-based views provided by the Residual type.
package graph

import (
	"fmt"
)

// NodeID identifies a node. Nodes are dense integers in [0, N).
type NodeID = int32

// Edge is one directed, weighted edge.
type Edge struct {
	From NodeID
	To   NodeID
	P    float64 // influence probability in (0, 1]
}

// Graph is an immutable probabilistic directed graph in CSR form.
type Graph struct {
	n int32
	m int64

	// Out-adjacency: edges leaving node u occupy
	// outAdj[outIdx[u]:outIdx[u+1]], probabilities in outP at the same
	// positions.
	outIdx []int64
	outAdj []NodeID
	outP   []float64

	// In-adjacency: edges entering node v occupy
	// inAdj[inIdx[v]:inIdx[v+1]] (the sources), probabilities in inP.
	inIdx []int64
	inAdj []NodeID
	inP   []float64

	directed bool
}

// N returns the number of nodes.
func (g *Graph) N() int { return int(g.n) }

// M returns the number of directed edges. For graphs built from an
// undirected edge list, each undirected edge contributes two directed edges
// and M counts both.
func (g *Graph) M() int64 { return g.m }

// Directed reports whether the graph was declared directed at build time.
// This only affects dataset statistics (Table II reports the declared
// type); the adjacency structure is always directed internally.
func (g *Graph) Directed() bool { return g.directed }

// OutDegree returns the number of edges leaving u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outIdx[u+1] - g.outIdx[u])
}

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inIdx[v+1] - g.inIdx[v])
}

// OutNeighbors returns the targets of edges leaving u and their
// probabilities. The returned slices alias internal storage and must not
// be modified.
func (g *Graph) OutNeighbors(u NodeID) ([]NodeID, []float64) {
	lo, hi := g.outIdx[u], g.outIdx[u+1]
	return g.outAdj[lo:hi], g.outP[lo:hi]
}

// InNeighbors returns the sources of edges entering v and their
// probabilities. The returned slices alias internal storage and must not
// be modified.
func (g *Graph) InNeighbors(v NodeID) ([]NodeID, []float64) {
	lo, hi := g.inIdx[v], g.inIdx[v+1]
	return g.inAdj[lo:hi], g.inP[lo:hi]
}

// Edges returns a copy of all directed edges in deterministic
// (source-major) order. Intended for tests, serialization and small
// graphs; it allocates O(M).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := int32(0); u < g.n; u++ {
		adj, ps := g.OutNeighbors(u)
		for i, v := range adj {
			edges = append(edges, Edge{From: u, To: v, P: ps[i]})
		}
	}
	return edges
}

// EdgeProbability returns the probability of edge (u, v) and whether the
// edge exists. If parallel edges exist, the first is returned.
func (g *Graph) EdgeProbability(u, v NodeID) (float64, bool) {
	adj, ps := g.OutNeighbors(u)
	for i, w := range adj {
		if w == v {
			return ps[i], true
		}
	}
	return 0, false
}

// Validate performs internal consistency checks and returns a descriptive
// error on the first violation. It is O(N + M) and intended for tests and
// for use after deserialization.
func (g *Graph) Validate() error {
	if int64(len(g.outAdj)) != g.m || int64(len(g.inAdj)) != g.m {
		return fmt.Errorf("graph: adjacency length mismatch: out=%d in=%d m=%d",
			len(g.outAdj), len(g.inAdj), g.m)
	}
	if len(g.outIdx) != int(g.n)+1 || len(g.inIdx) != int(g.n)+1 {
		return fmt.Errorf("graph: index length mismatch for n=%d", g.n)
	}
	if g.outIdx[g.n] != g.m || g.inIdx[g.n] != g.m {
		return fmt.Errorf("graph: index does not cover all edges")
	}
	var outCount, inCount int64
	for u := int32(0); u < g.n; u++ {
		if g.outIdx[u] > g.outIdx[u+1] || g.inIdx[u] > g.inIdx[u+1] {
			return fmt.Errorf("graph: non-monotone CSR index at node %d", u)
		}
		outCount += g.outIdx[u+1] - g.outIdx[u]
		inCount += g.inIdx[u+1] - g.inIdx[u]
	}
	if outCount != g.m || inCount != g.m {
		return fmt.Errorf("graph: degree sums out=%d in=%d, want %d", outCount, inCount, g.m)
	}
	for i, v := range g.outAdj {
		if v < 0 || v >= g.n {
			return fmt.Errorf("graph: out edge %d targets invalid node %d", i, v)
		}
		if p := g.outP[i]; p <= 0 || p > 1 {
			return fmt.Errorf("graph: out edge %d has probability %v outside (0,1]", i, p)
		}
	}
	for i, u := range g.inAdj {
		if u < 0 || u >= g.n {
			return fmt.Errorf("graph: in edge %d comes from invalid node %d", i, u)
		}
		if p := g.inP[i]; p <= 0 || p > 1 {
			return fmt.Errorf("graph: in edge %d has probability %v outside (0,1]", i, p)
		}
	}
	// Every out edge must have a matching in edge with equal probability.
	// Count-based check keeps this O(N + M).
	type key struct{ u, v NodeID }
	fwd := make(map[key]float64, min64(g.m, 1<<20))
	if g.m <= 1<<20 { // full check only on graphs where the map is affordable
		for u := int32(0); u < g.n; u++ {
			adj, ps := g.OutNeighbors(u)
			for i, v := range adj {
				fwd[key{u, v}] += ps[i]
			}
		}
		for v := int32(0); v < g.n; v++ {
			adj, ps := g.InNeighbors(v)
			for i, u := range adj {
				fwd[key{u, v}] -= ps[i]
			}
		}
		for k, d := range fwd {
			if d != 0 {
				return fmt.Errorf("graph: in/out mismatch on edge (%d,%d): residual %v", k.u, k.v, d)
			}
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
