// Package graph provides the probabilistic directed-graph substrate that
// every algorithm in the repository runs on.
//
// A Graph is an immutable compressed-sparse-row (CSR) structure holding
// both out-adjacency (used by forward cascades) and in-adjacency (used by
// reverse-reachable-set sampling), with adjacency sorted per node so edge
// lookups binary-search. Each directed edge carries an influence
// probability p(e) in (0, 1], matching the Independent Cascade model of
// Kempe et al. that the paper builds on.
//
// In-probability storage is dual. Build detects when every node's
// in-edges share one probability — always true for the paper's
// weighted-cascade weighting p(u,v) = 1/indeg(v) and for uniform edge
// probabilities — and then compresses the per-edge array into a per-node
// one (InUniform / InNeighborsUniform): 8 bytes per node instead of per
// edge, ~550 MB less on livejournal-s's 69M edges. Compression also
// precomputes per-node success-count tables (InCountThresholds) and
// packed sampler metadata (InSamplerTables) that let RR-set samplers draw
// a node's successful in-edge count in O(1). Mixed-probability graphs
// (trivalency) keep the per-edge fallback and the accessor-based API.
//
// Node numbering is likewise dual. Builder.SetDegreeOrder opts a build
// into an internal degree-ordered renumbering: hubs (high total degree)
// receive the smallest internal IDs, packing the nodes RR expansion
// revisits most into a dense prefix of the metadata and visited-mask
// arrays. The permutation is invisible outside the package's internal
// arrays — OriginalID/InternalID convert at the boundaries, Edges and
// EdgeProbability speak original IDs, graphio round-trips are
// byte-identical, and ApplyDelta composes original-space deltas through
// the base graph's permutation (it deliberately does not re-derive the
// ordering from post-delta degrees, so sampler scratch and caches stay
// aligned). The invariance contract is stronger than "same
// distribution": adjacency runs stay sorted by original neighbor ID,
// Residual fills its alive list in original-ID order, and algorithms
// break argmax ties via Graph.Before (original-ID order), so same-seed
// runs are bit-identical between numberings.
//
// Mutation happens only through Builder; once built, a Graph is safe for
// concurrent readers. Residual graphs (the paper's G_i) are lightweight
// views provided by the Residual type, which maintains its alive-node
// list incrementally for O(1) uniform root sampling.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. Nodes are dense integers in [0, N).
type NodeID = int32

// Edge is one directed, weighted edge.
type Edge struct {
	From NodeID
	To   NodeID
	P    float64 // influence probability in (0, 1]
}

// Graph is an immutable probabilistic directed graph in CSR form.
type Graph struct {
	n int32
	m int64

	// Out-adjacency: edges leaving node u occupy
	// outAdj[outIdx[u]:outIdx[u+1]], probabilities in outP at the same
	// positions.
	outIdx []int64
	outAdj []NodeID
	outP   []float64

	// In-adjacency: edges entering node v occupy
	// inAdj[inIdx[v]:inIdx[v+1]] (the sources). Probability storage is
	// dual: when every node's in-edges share one probability (always true
	// for weighted-cascade and ApplyUniformProbability weightings) the
	// per-edge inP is dropped and a single per-node inProb is kept instead
	// — 8 bytes per node instead of 8 bytes per edge, which is what lets
	// livejournal-scale in-adjacency fit in memory. Mixed-probability
	// graphs (trivalency) keep the per-edge inP fallback.
	inIdx     []int64
	inAdj     []NodeID
	inP       []float64 // per-edge; nil when uniformIn
	inProb    []float64 // per-node shared probability; nil unless uniformIn
	uniformIn bool

	// Success-count sampling tables for uniform in-probability nodes:
	// inTabThr[inTabOff[v]:] is a truncated cumulative Binomial(indeg(v),
	// inProb[v]) threshold table (see InCountThresholds). Nodes with the
	// same (degree, probability) pair share one table.
	inTabOff []int32
	inTabThr []uint32

	// inMeta packs the per-node fast-path metadata (adjacency start,
	// degree, table offset) into one cache line's worth of struct, so an
	// RR sampler visit costs one random load instead of three. Built only
	// when the edge count fits the int32 start offsets.
	inMeta []InMeta

	directed bool

	// Degree-ordered renumbering (Builder.SetDegreeOrder): ren maps an
	// original (user-visible) node ID to its internal slot, inv is the
	// inverse. Both nil on identity-numbered graphs, which keeps every
	// accessor below a branch-plus-no-op. Internally the CSR, the
	// compressed tables and all sampling run on internal IDs; original
	// IDs exist only at the I/O and reporting boundary (Edges, graphio,
	// OriginalID). Adjacency runs stay sorted by ORIGINAL neighbor ID, so
	// a position-indexed neighbor pick resolves to the same original node
	// with or without renumbering — what makes same-seed runs on both
	// numberings bit-identical, not merely distributionally equal.
	ren []NodeID
	inv []NodeID

	// maxInDeg caches the largest in-degree, set at Build/ApplyDelta time,
	// so samplers can pre-size position scratch at bind time in O(1)
	// instead of scanning the CSR index per bind.
	maxInDeg int32

	// epoch counts the topology deltas applied since the graph was built:
	// Builder.Build produces epoch 0 and every ApplyDelta increments it.
	// Consumers that cache per-topology state (the service instance
	// registry, RR-set collections) key on it to avoid mixing artifacts
	// across divergent topologies.
	epoch int64
}

// InMeta is the packed per-node reverse-sampling metadata: node v's
// in-neighbors occupy arena[Start:Start+Deg] of the slice returned by
// InSamplerTables. Thr0 and Thr1 cache the first two thresholds of the
// node's success-count table, so the two most common visit outcomes —
// zero successful in-edges (draw < Thr0) and exactly one (Thr0 <= draw
// < Thr1) — resolve on this struct alone, with no table access. For
// zero-degree nodes both are the sentinel (every clamped draw lands
// below Thr0, ending the visit immediately); for table-less nodes both
// are 0, so every draw reads as "two or more" and falls through to
// their dedicated expansion. Counts of two or more are resolved against
// the full table, found through the offsets slice InSamplerTables also
// returns. The 16-byte stride keeps an element inside one cache line
// and indexing a shift.
type InMeta struct {
	Start int32
	Deg   int32
	Thr0  uint32
	Thr1  uint32
}

// N returns the number of nodes.
func (g *Graph) N() int { return int(g.n) }

// M returns the number of directed edges. For graphs built from an
// undirected edge list, each undirected edge contributes two directed edges
// and M counts both.
func (g *Graph) M() int64 { return g.m }

// Epoch returns the number of topology deltas applied since the graph was
// built from scratch (0 for Builder.Build output; see ApplyDelta).
func (g *Graph) Epoch() int64 { return g.epoch }

// Directed reports whether the graph was declared directed at build time.
// This only affects dataset statistics (Table II reports the declared
// type); the adjacency structure is always directed internally.
func (g *Graph) Directed() bool { return g.directed }

// OutDegree returns the number of edges leaving u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outIdx[u+1] - g.outIdx[u])
}

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inIdx[v+1] - g.inIdx[v])
}

// MaxInDegree returns the largest in-degree of any node, cached at build
// time.
func (g *Graph) MaxInDegree() int { return int(g.maxInDeg) }

// Renumbered reports whether the graph carries a degree-ordered node
// permutation (Builder.SetDegreeOrder). When false, internal and original
// IDs coincide.
func (g *Graph) Renumbered() bool { return g.ren != nil }

// OriginalID maps an internal node ID back to the user-visible ID it was
// built from. Identity on graphs without renumbering. Every node ID that
// leaves the core — seed sets, session output, serialized edges — must
// pass through here.
func (g *Graph) OriginalID(v NodeID) NodeID {
	if g.inv == nil {
		return v
	}
	return g.inv[v]
}

// InternalID maps a user-visible node ID to its internal slot. Identity
// on graphs without renumbering. Inputs that arrive in original space —
// edge deltas, externally chosen targets — pass through here before
// touching the CSR.
func (g *Graph) InternalID(v NodeID) NodeID {
	if g.ren == nil {
		return v
	}
	return g.ren[v]
}

// Before reports whether internal node a precedes internal node b in
// original-ID order — the tie-break order every deterministic argmax in
// the repository uses, so that selections on a renumbered graph resolve
// ties to the same original node as on the identity numbering.
func (g *Graph) Before(a, b NodeID) bool {
	if g.inv == nil {
		return a < b
	}
	return g.inv[a] < g.inv[b]
}

// OriginalIDs returns the internal->original ID table, or nil when the
// graph is identity-numbered. Rank sources for selection tie-breaks
// (ris.GreedyMaxCoverage) take this slice directly so their hot loops
// skip the per-call branch of OriginalID.
func (g *Graph) OriginalIDs() []NodeID { return g.inv }

// ordOf is OriginalID for in-package comparators.
func (g *Graph) ordOf(v NodeID) NodeID {
	if g.inv == nil {
		return v
	}
	return g.inv[v]
}

// OutNeighbors returns the targets of edges leaving u and their
// probabilities. The returned slices alias internal storage and must not
// be modified.
func (g *Graph) OutNeighbors(u NodeID) ([]NodeID, []float64) {
	lo, hi := g.outIdx[u], g.outIdx[u+1]
	return g.outAdj[lo:hi], g.outP[lo:hi]
}

// InNeighbors returns the sources of edges entering v and their
// probabilities. With per-edge storage both slices alias internal arrays
// and must not be modified; with compressed per-node storage (InUniform)
// the probability slice is materialized on every call, so hot paths must
// go through InNeighborsUniform instead.
func (g *Graph) InNeighbors(v NodeID) ([]NodeID, []float64) {
	lo, hi := g.inIdx[v], g.inIdx[v+1]
	if !g.uniformIn {
		return g.inAdj[lo:hi], g.inP[lo:hi]
	}
	ps := make([]float64, hi-lo)
	p := g.inProb[v]
	for i := range ps {
		ps[i] = p
	}
	return g.inAdj[lo:hi], ps
}

// InUniform reports whether the graph stores one shared in-probability per
// node (compressed storage) instead of one per edge. True for the paper's
// weighted-cascade weighting p(u,v) = 1/indeg(v) and for uniform edge
// probabilities; false for trivalency-style mixed weightings.
func (g *Graph) InUniform() bool { return g.uniformIn }

// InNeighborsUniform returns the sources of edges entering v together with
// the single probability all of them share, when the graph stores
// compressed in-probabilities. ok is false on per-edge storage and callers
// must fall back to InNeighbors. The source slice aliases internal storage.
func (g *Graph) InNeighborsUniform(v NodeID) ([]NodeID, float64, bool) {
	if !g.uniformIn {
		return nil, 0, false
	}
	lo, hi := g.inIdx[v], g.inIdx[v+1]
	return g.inAdj[lo:hi], g.inProb[v], true
}

// InCountThresholds returns the success-count sampling table of node v, or
// nil when the graph stores per-edge probabilities or no table was built
// for v's (degree, probability) pair. The table encodes the cumulative
// Binomial(indeg(v), inProb(v)) distribution as uint32 thresholds scaled
// by 2^32 and terminated by a ^uint32(0) sentinel: drawing one Uint32 u
// and scanning for the first non-sentinel entry > u yields the number of
// successful in-edges in one RNG draw (RR-set samplers then place that
// many successes uniformly, which is distributionally equivalent to one
// independent coin per edge up to the 2^-32 quantization of the table).
func (g *Graph) InCountThresholds(v NodeID) []uint32 {
	if g.inTabOff == nil {
		return nil
	}
	off := g.inTabOff[v]
	if off < 0 {
		return nil
	}
	return g.inTabThr[off:]
}

// InSamplerTables exposes the packed fast-path arrays for bulk RR
// samplers: per-node metadata, the shared in-adjacency arena, the
// success-count threshold arena, and the per-node table offsets into it
// (negative for nodes without a table — the cold complement to the
// Thr0/Thr1 cache in InMeta, consulted only when a visit draws two or
// more successes). meta is nil when the graph stores per-edge
// in-probabilities or is too large for int32 adjacency offsets; callers
// must then use the accessor-based API. All four slices are read-only
// views of internal storage.
func (g *Graph) InSamplerTables() (meta []InMeta, arena []NodeID, thr []uint32, tabOff []int32) {
	return g.inMeta, g.inAdj, g.inTabThr, g.inTabOff
}

// Edges returns a copy of all directed edges in deterministic
// (source-major) order, in ORIGINAL node IDs — this is the I/O boundary
// where any internal renumbering is inverted, so serialized edge lists
// and golden fixtures are independent of the in-memory layout. Intended
// for tests, serialization and small graphs; it allocates O(M).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for ou := int32(0); ou < g.n; ou++ {
		adj, ps := g.OutNeighbors(g.InternalID(ou))
		for i, v := range adj {
			edges = append(edges, Edge{From: ou, To: g.ordOf(v), P: ps[i]})
		}
	}
	return edges
}

// EdgeProbability returns the probability of edge (u, v) and whether the
// edge exists. u and v are ORIGINAL node IDs (the space Edges returns).
// Out-adjacency runs are sorted by original target at build time, so the
// lookup binary-searches in O(log outdeg) instead of scanning. If parallel
// edges exist, the first (lowest-index) one is returned.
func (g *Graph) EdgeProbability(u, v NodeID) (float64, bool) {
	adj, ps := g.OutNeighbors(g.InternalID(u))
	i := sort.Search(len(adj), func(i int) bool { return g.ordOf(adj[i]) >= v })
	if i < len(adj) && g.ordOf(adj[i]) == v {
		return ps[i], true
	}
	return 0, false
}

// Validate performs internal consistency checks and returns a descriptive
// error on the first violation. It is O(N + M) and intended for tests and
// for use after deserialization.
func (g *Graph) Validate() error {
	if int64(len(g.outAdj)) != g.m || int64(len(g.inAdj)) != g.m {
		return fmt.Errorf("graph: adjacency length mismatch: out=%d in=%d m=%d",
			len(g.outAdj), len(g.inAdj), g.m)
	}
	if len(g.outIdx) != int(g.n)+1 || len(g.inIdx) != int(g.n)+1 {
		return fmt.Errorf("graph: index length mismatch for n=%d", g.n)
	}
	if g.outIdx[g.n] != g.m || g.inIdx[g.n] != g.m {
		return fmt.Errorf("graph: index does not cover all edges")
	}
	var outCount, inCount int64
	for u := int32(0); u < g.n; u++ {
		if g.outIdx[u] > g.outIdx[u+1] || g.inIdx[u] > g.inIdx[u+1] {
			return fmt.Errorf("graph: non-monotone CSR index at node %d", u)
		}
		outCount += g.outIdx[u+1] - g.outIdx[u]
		inCount += g.inIdx[u+1] - g.inIdx[u]
	}
	if outCount != g.m || inCount != g.m {
		return fmt.Errorf("graph: degree sums out=%d in=%d, want %d", outCount, inCount, g.m)
	}
	for i, v := range g.outAdj {
		if v < 0 || v >= g.n {
			return fmt.Errorf("graph: out edge %d targets invalid node %d", i, v)
		}
		if p := g.outP[i]; !(p > 0 && p <= 1) { // negated form also catches NaN
			return fmt.Errorf("graph: out edge %d has probability %v outside (0,1]", i, p)
		}
	}
	for i, u := range g.inAdj {
		if u < 0 || u >= g.n {
			return fmt.Errorf("graph: in edge %d comes from invalid node %d", i, u)
		}
	}
	if g.uniformIn {
		if g.inP != nil {
			return fmt.Errorf("graph: uniform in-probability storage retains per-edge inP")
		}
		if len(g.inProb) != int(g.n) {
			return fmt.Errorf("graph: inProb length %d, want %d", len(g.inProb), g.n)
		}
		for v := int32(0); v < g.n; v++ {
			if g.InDegree(v) == 0 {
				continue
			}
			if p := g.inProb[v]; !(p > 0 && p <= 1) {
				return fmt.Errorf("graph: node %d in-probability %v outside (0,1]", v, p)
			}
		}
	} else {
		for i, p := range g.inP {
			if !(p > 0 && p <= 1) {
				return fmt.Errorf("graph: in edge %d has probability %v outside (0,1]", i, p)
			}
		}
	}
	// The renumbering tables, when present, must be mutually inverse
	// permutations.
	if (g.ren == nil) != (g.inv == nil) {
		return fmt.Errorf("graph: renumbering tables half-present")
	}
	if g.ren != nil {
		if len(g.ren) != int(g.n) || len(g.inv) != int(g.n) {
			return fmt.Errorf("graph: renumbering table length %d/%d, want %d", len(g.ren), len(g.inv), g.n)
		}
		for o, v := range g.ren {
			if v < 0 || v >= g.n || g.inv[v] != NodeID(o) {
				return fmt.Errorf("graph: renumbering tables not inverse at original %d", o)
			}
		}
	}
	// CSR adjacency must be sorted by ORIGINAL neighbor ID (out by target,
	// in by source): the binary-searched EdgeProbability, deterministic
	// layouts, and the renumbering invariance of position-indexed neighbor
	// picks all rely on it.
	for u := int32(0); u < g.n; u++ {
		adj := g.outAdj[g.outIdx[u]:g.outIdx[u+1]]
		for i := 1; i < len(adj); i++ {
			if g.ordOf(adj[i-1]) > g.ordOf(adj[i]) {
				return fmt.Errorf("graph: out-adjacency of node %d not sorted at %d", u, i)
			}
		}
		srcs := g.inAdj[g.inIdx[u]:g.inIdx[u+1]]
		for i := 1; i < len(srcs); i++ {
			if g.ordOf(srcs[i-1]) > g.ordOf(srcs[i]) {
				return fmt.Errorf("graph: in-adjacency of node %d not sorted at %d", u, i)
			}
		}
	}
	// Success-count tables, when present, must be nondecreasing threshold
	// runs terminated by the sentinel.
	if g.inTabOff != nil {
		for v := int32(0); v < g.n; v++ {
			tab := g.InCountThresholds(v)
			if tab == nil {
				continue
			}
			prev := uint32(0)
			terminated := false
			for k, t := range tab {
				if t == ^uint32(0) {
					terminated = true
					break
				}
				if k > g.InDegree(v) {
					return fmt.Errorf("graph: node %d count table longer than degree", v)
				}
				if t < prev {
					return fmt.Errorf("graph: node %d count table decreases at %d", v, k)
				}
				prev = t
			}
			if !terminated {
				return fmt.Errorf("graph: node %d count table lacks a sentinel", v)
			}
		}
	}
	// Every out edge must have a matching in edge with the bit-identical
	// probability. An exact multiset match per (u,v) pair — not a
	// sum/subtract residual, which is order-dependent in floating point
	// and false-alarms on parallel edges ((a+b)−a−b ≠ 0).
	type key struct{ u, v NodeID }
	fwd := make(map[key][]float64, min64(g.m, 1<<20))
	if g.m <= 1<<20 { // full check only on graphs where the map is affordable
		for u := int32(0); u < g.n; u++ {
			adj, ps := g.OutNeighbors(u)
			for i, v := range adj {
				fwd[key{u, v}] = append(fwd[key{u, v}], ps[i])
			}
		}
		for v := int32(0); v < g.n; v++ {
			adj, ps := g.InNeighbors(v)
			for i, u := range adj {
				k := key{u, v}
				left := fwd[k]
				matched := false
				for j, p := range left {
					if p == ps[i] {
						left[j] = left[len(left)-1]
						fwd[k] = left[:len(left)-1]
						matched = true
						break
					}
				}
				if !matched {
					return fmt.Errorf("graph: in edge (%d,%d) p=%v has no matching out edge", u, v, ps[i])
				}
			}
		}
		for k, left := range fwd {
			if len(left) > 0 {
				return fmt.Errorf("graph: out edge (%d,%d) p=%v has no matching in edge", k.u, k.v, left[0])
			}
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
