package graph

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

// Native fuzz targets for the two untrusted entry points: the edge-list
// parser (files come from disk) and Builder.Build (edges come from
// arbitrary callers). The contract under fuzzing: malformed input —
// unparsable lines, duplicate headers, out-of-range node ids,
// probabilities outside (0,1] including NaN — returns an error; it never
// panics, never OOMs on a hostile header, and anything accepted passes
// Validate and round-trips through Write/Read.

// fuzzMaxNodes bounds declared node counts during fuzzing so the O(n)
// CSR allocation stays cheap per exec (MaxReadNodes guards the real
// blow-up range; covering 1<<20..MaxReadNodes would only burn fuzz time
// allocating).
const fuzzMaxNodes = 1 << 12

func FuzzReadEdgeList(f *testing.F) {
	for _, s := range []string{
		"n 3 directed\n0 1 0.5\n1 2 1\n",
		"n 2 undirected\n0 1\n",
		"# comment\n\nn 4 directed\n0 1 0.25\n0 1 0.25\n2 3 0.125\n", // parallel edges
		"n 2 directed\n0 1 1.5\n",                                    // p > 1
		"n 2 directed\n0 1 -0.5\n",                                   // p < 0
		"n 2 directed\n0 1 NaN\n",                                    // NaN must error
		"n 2 directed\n0 1 0\n",                                      // p = 0
		"n 2 directed\n0 5 0.5\n",                                    // target out of range
		"n 2 directed\n-1 1 0.5\n",                                   // negative source
		"0 1 0.5\n",                                                  // edge before header
		"n 2 directed\nn 2 directed\n0 1 1\n",                        // duplicate header
		"n x directed\n",
		"n 2 bidirected\n",
		"n 2 directed\n0 0 1\n", // self-loop
		"n 2 directed\n0 1 abc\n",
		"n 999999999999 directed\n", // hostile node count
		"n 2 directed\n0 1 0.5 extra\n",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Pre-screen the declared node count: headers within
		// (fuzzMaxNodes, MaxReadNodes] are valid but make Build allocate
		// hundreds of MB per exec — legitimate, just too slow to fuzz.
		if n, ok := declaredNodes(input); ok && n > fuzzMaxNodes {
			t.Skip("valid but oversized for per-exec validation")
		}
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected: exactly what malformed input should get
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("writing accepted graph: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\nserialized: %q", err, buf.String())
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// declaredNodes extracts the node count of the first header line, if any.
func declaredNodes(input string) (int, bool) {
	for _, line := range strings.Split(input, "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if fields[0] == "n" && len(fields) >= 2 {
			n, err := strconv.Atoi(fields[1])
			return n, err == nil
		}
		return 0, false // first record is not a header; Read will reject
	}
	return 0, false
}

// FuzzApplyDelta feeds hostile deltas — duplicate edges, deletes of absent
// edges, NaN/Inf/out-of-range probabilities, self-loops, endpoints past n —
// at a built graph. Contract: invalid deltas error (never panic) and leave
// the base graph untouched; accepted deltas produce a graph that passes
// Validate and is structurally identical to Builder.Build on the edited
// edge list (the flatten ≡ rebuild differential, weakened to shape checks
// only when the edit legitimately leaves parallel edges with distinct
// probabilities, whose relative order Build does not specify).
func FuzzApplyDelta(f *testing.F) {
	f.Add(6, []byte{0, 1, 32, 1, 2, 64, 2, 3, 100}, []byte{3, 4, 100, 3, 4, 100}, []byte{0, 1, 0}, byte(0))
	f.Add(5, []byte{0, 1, 40, 1, 2, 40}, []byte{}, []byte{3, 4, 0}, byte(1))   // absent delete
	f.Add(5, []byte{0, 1, 40, 1, 2, 40}, []byte{2, 3, 255}, []byte{}, byte(1)) // NaN insert
	f.Add(5, []byte{0, 1, 40, 1, 2, 40}, []byte{2, 2, 80}, []byte{}, byte(2))  // self-loop insert
	f.Add(8, bytes.Repeat([]byte{1, 2, 77}, 6), []byte{0, 9, 80, 3, 4, 254}, []byte{1, 2, 0, 1, 2, 0}, byte(1))
	f.Fuzz(func(t *testing.T, n int, base, ins, dels []byte, mode byte) {
		if n < 0 || n > fuzzMaxNodes || len(base) > 3*2048 || len(ins) > 3*256 || len(dels) > 3*256 {
			t.Skip()
		}
		b := NewBuilder(n, true)
		for i := 0; i+2 < len(base); i += 3 {
			// Errors are AddEdge's gates doing their job; FuzzBuilderBuild
			// already pins them, so just drop rejected edges here.
			_ = b.AddEdge(NodeID(int(base[i])-2), NodeID(int(base[i+1])-2), float64(base[i+2])/200)
		}
		b.Dedup() // keep the base parallel-free so delete matching is unambiguous
		switch mode % 3 {
		case 1:
			b.ApplyWeightedCascade()
		case 2:
			if err := b.ApplyUniformProbability(0.3); err != nil {
				t.Fatal(err)
			}
		}
		g := b.Build()
		baseEdges := g.Edges()

		inserts := decodeDeltaEdges(ins)
		deletes := decodeDeltaEdges(dels)
		ng, dres, err := g.ApplyDelta(inserts, deletes)

		// The base graph must survive both outcomes bit-intact.
		if verr := g.Validate(); verr != nil {
			t.Fatalf("base graph corrupted by ApplyDelta: %v", verr)
		}
		if g.M() != int64(len(baseEdges)) || g.Epoch() != 0 {
			t.Fatalf("base graph mutated: m=%d epoch=%d", g.M(), g.Epoch())
		}
		if err != nil {
			return
		}

		if verr := ng.Validate(); verr != nil {
			t.Fatalf("accepted delta fails validation: %v", verr)
		}
		if want := int64(len(baseEdges)) + int64(len(inserts)) - int64(len(deletes)); ng.M() != want {
			t.Fatalf("delta graph has %d edges, want %d", ng.M(), want)
		}
		if ng.Epoch() != 1 || dres.Inserted != len(inserts) || dres.Deleted != len(deletes) {
			t.Fatalf("delta bookkeeping: epoch=%d result=%+v", ng.Epoch(), dres)
		}

		// Oracle edit: each delete consumes the first matching (From, To)
		// occurrence. ApplyDelta succeeded, so every delete must match.
		edited := append([]Edge{}, baseEdges...)
		for _, d := range deletes {
			found := -1
			for i, e := range edited {
				if e.From == d.From && e.To == d.To {
					found = i
					break
				}
			}
			if found < 0 {
				t.Fatalf("ApplyDelta accepted delete (%d,%d) absent from the edge list", d.From, d.To)
			}
			edited = append(edited[:found], edited[found+1:]...)
		}
		edited = append(edited, inserts...)
		want := MustFromEdges(n, true, edited)
		if ambiguousParallelOrder(edited) {
			// Build's sort order among equal-(From,To) distinct-P edges is
			// unspecified; only shape-level equivalence is required.
			if ng.N() != want.N() || ng.M() != want.M() {
				t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", ng.N(), ng.M(), want.N(), want.M())
			}
			for v := NodeID(0); v < NodeID(n); v++ {
				if ng.OutDegree(v) != want.OutDegree(v) || ng.InDegree(v) != want.InDegree(v) {
					t.Fatalf("node %d: degrees (%d,%d) vs (%d,%d)", v,
						ng.OutDegree(v), ng.InDegree(v), want.OutDegree(v), want.InDegree(v))
				}
			}
			return
		}
		assertGraphsEquivalent(t, ng, want)
	})
}

// decodeDeltaEdges maps raw bytes to hostile delta edges: endpoints range
// past the node count (and below 0), probabilities cover 0, (0,1], >1, NaN
// and +Inf.
func decodeDeltaEdges(data []byte) []Edge {
	var edges []Edge
	for i := 0; i+2 < len(data); i += 3 {
		p := float64(data[i+2]) / 200 // 0 .. 1.265
		switch data[i+2] {
		case 255:
			p = math.NaN()
		case 254:
			p = math.Inf(1)
		}
		edges = append(edges, Edge{From: NodeID(int(data[i]) - 2), To: NodeID(int(data[i+1]) - 2), P: p})
	}
	return edges
}

// ambiguousParallelOrder reports whether the edge list holds two edges with
// the same endpoints but different probabilities.
func ambiguousParallelOrder(edges []Edge) bool {
	probs := make(map[[2]NodeID]float64, len(edges))
	for _, e := range edges {
		if p, ok := probs[[2]NodeID{e.From, e.To}]; ok && p != e.P {
			return true
		}
		probs[[2]NodeID{e.From, e.To}] = e.P
	}
	return false
}

func FuzzBuilderBuild(f *testing.F) {
	f.Add(5, true, []byte{0, 1, 32, 1, 2, 64, 2, 3, 255})
	f.Add(2, false, []byte{0, 1, 0})                     // p = 0 rejected
	f.Add(3, true, []byte{0, 0, 10})                     // self-loop rejected
	f.Add(1, true, []byte{0, 7, 10})                     // target out of range
	f.Add(64, true, []byte{9, 9, 9, 9})                  // trailing partial triple
	f.Add(0, true, []byte{})                             // empty graph
	f.Add(16, false, bytes.Repeat([]byte{1, 2, 77}, 40)) // heavy duplication
	f.Fuzz(func(t *testing.T, n int, directed bool, data []byte) {
		if n < 0 || n > fuzzMaxNodes {
			t.Skip()
		}
		b := NewBuilder(n, directed)
		added := 0
		// Each 3-byte triple is one AddEdge attempt; u/v deliberately
		// range past n to exercise the bounds checks, p past 1 (and to 0)
		// to exercise the probability gate.
		for i := 0; i+2 < len(data); i += 3 {
			u := NodeID(int(data[i]) - 2)
			v := NodeID(int(data[i+1]) - 2)
			p := float64(data[i+2]) / 200 // 0 .. 1.275
			if err := b.AddEdge(u, v, p); err == nil {
				added++
			} else if u >= 0 && int(u) < n && v >= 0 && int(v) < n && u != v && p > 0 && p <= 1 {
				t.Fatalf("in-range edge (%d,%d,%g) rejected: %v", u, v, p, err)
			}
		}
		if len(data) > 0 {
			switch data[0] % 4 {
			case 1:
				added -= b.Dedup()
			case 2:
				b.ApplyWeightedCascade()
			case 3:
				if err := b.ApplyUniformProbability(float64(data[0])/255 + 0.001); err != nil {
					t.Skip() // probability drifted out of range; gate did its job
				}
			}
		}
		g := b.Build()
		if g.N() != n {
			t.Fatalf("built graph has %d nodes, want %d", g.N(), n)
		}
		if g.M() != int64(added) {
			t.Fatalf("built graph has %d edges, want %d", g.M(), added)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}
	})
}
