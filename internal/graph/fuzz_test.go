package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// Native fuzz targets for the two untrusted entry points: the edge-list
// parser (files come from disk) and Builder.Build (edges come from
// arbitrary callers). The contract under fuzzing: malformed input —
// unparsable lines, duplicate headers, out-of-range node ids,
// probabilities outside (0,1] including NaN — returns an error; it never
// panics, never OOMs on a hostile header, and anything accepted passes
// Validate and round-trips through Write/Read.

// fuzzMaxNodes bounds declared node counts during fuzzing so the O(n)
// CSR allocation stays cheap per exec (MaxReadNodes guards the real
// blow-up range; covering 1<<20..MaxReadNodes would only burn fuzz time
// allocating).
const fuzzMaxNodes = 1 << 12

func FuzzReadEdgeList(f *testing.F) {
	for _, s := range []string{
		"n 3 directed\n0 1 0.5\n1 2 1\n",
		"n 2 undirected\n0 1\n",
		"# comment\n\nn 4 directed\n0 1 0.25\n0 1 0.25\n2 3 0.125\n", // parallel edges
		"n 2 directed\n0 1 1.5\n",                                    // p > 1
		"n 2 directed\n0 1 -0.5\n",                                   // p < 0
		"n 2 directed\n0 1 NaN\n",                                    // NaN must error
		"n 2 directed\n0 1 0\n",                                      // p = 0
		"n 2 directed\n0 5 0.5\n",                                    // target out of range
		"n 2 directed\n-1 1 0.5\n",                                   // negative source
		"0 1 0.5\n",                                                  // edge before header
		"n 2 directed\nn 2 directed\n0 1 1\n",                        // duplicate header
		"n x directed\n",
		"n 2 bidirected\n",
		"n 2 directed\n0 0 1\n", // self-loop
		"n 2 directed\n0 1 abc\n",
		"n 999999999999 directed\n", // hostile node count
		"n 2 directed\n0 1 0.5 extra\n",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Pre-screen the declared node count: headers within
		// (fuzzMaxNodes, MaxReadNodes] are valid but make Build allocate
		// hundreds of MB per exec — legitimate, just too slow to fuzz.
		if n, ok := declaredNodes(input); ok && n > fuzzMaxNodes {
			t.Skip("valid but oversized for per-exec validation")
		}
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected: exactly what malformed input should get
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("writing accepted graph: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\nserialized: %q", err, buf.String())
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// declaredNodes extracts the node count of the first header line, if any.
func declaredNodes(input string) (int, bool) {
	for _, line := range strings.Split(input, "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if fields[0] == "n" && len(fields) >= 2 {
			n, err := strconv.Atoi(fields[1])
			return n, err == nil
		}
		return 0, false // first record is not a header; Read will reject
	}
	return 0, false
}

func FuzzBuilderBuild(f *testing.F) {
	f.Add(5, true, []byte{0, 1, 32, 1, 2, 64, 2, 3, 255})
	f.Add(2, false, []byte{0, 1, 0})                     // p = 0 rejected
	f.Add(3, true, []byte{0, 0, 10})                     // self-loop rejected
	f.Add(1, true, []byte{0, 7, 10})                     // target out of range
	f.Add(64, true, []byte{9, 9, 9, 9})                  // trailing partial triple
	f.Add(0, true, []byte{})                             // empty graph
	f.Add(16, false, bytes.Repeat([]byte{1, 2, 77}, 40)) // heavy duplication
	f.Fuzz(func(t *testing.T, n int, directed bool, data []byte) {
		if n < 0 || n > fuzzMaxNodes {
			t.Skip()
		}
		b := NewBuilder(n, directed)
		added := 0
		// Each 3-byte triple is one AddEdge attempt; u/v deliberately
		// range past n to exercise the bounds checks, p past 1 (and to 0)
		// to exercise the probability gate.
		for i := 0; i+2 < len(data); i += 3 {
			u := NodeID(int(data[i]) - 2)
			v := NodeID(int(data[i+1]) - 2)
			p := float64(data[i+2]) / 200 // 0 .. 1.275
			if err := b.AddEdge(u, v, p); err == nil {
				added++
			} else if u >= 0 && int(u) < n && v >= 0 && int(v) < n && u != v && p > 0 && p <= 1 {
				t.Fatalf("in-range edge (%d,%d,%g) rejected: %v", u, v, p, err)
			}
		}
		if len(data) > 0 {
			switch data[0] % 4 {
			case 1:
				added -= b.Dedup()
			case 2:
				b.ApplyWeightedCascade()
			case 3:
				if err := b.ApplyUniformProbability(float64(data[0])/255 + 0.001); err != nil {
					t.Skip() // probability drifted out of range; gate did its job
				}
			}
		}
		g := b.Build()
		if g.N() != n {
			t.Fatalf("built graph has %d nodes, want %d", g.N(), n)
		}
		if g.M() != int64(added) {
			t.Fatalf("built graph has %d edges, want %d", g.M(), added)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}
	})
}
