package graph

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/rng"
)

// randomEdges draws a reproducible multigraph-free edge list on n nodes.
func randomEdges(n, m int, seed uint64) []Edge {
	r := rng.New(seed)
	seen := make(map[[2]NodeID]bool, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u == v || seen[[2]NodeID{u, v}] {
			continue
		}
		seen[[2]NodeID{u, v}] = true
		p := 0.05 + 0.9*r.Float64()
		edges = append(edges, Edge{From: u, To: v, P: p})
	}
	return edges
}

func buildOrdered(t *testing.T, n int, edges []Edge, degreeOrder bool) *Graph {
	t.Helper()
	b := NewBuilder(n, true)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			t.Fatal(err)
		}
	}
	b.SetDegreeOrder(degreeOrder)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate (degreeOrder=%v): %v", degreeOrder, err)
	}
	return g
}

// TestDegreeOrderRoundTrip checks that a degree-renumbered graph is
// indistinguishable from the identity-numbered one through every
// original-space accessor: the permutation round-trips, Edges() emits the
// identical list, and EdgeProbability agrees edge by edge.
func TestDegreeOrderRoundTrip(t *testing.T) {
	const n, m = 60, 400
	edges := randomEdges(n, m, 0xDECADE)
	id := buildOrdered(t, n, edges, false)
	ren := buildOrdered(t, n, edges, true)

	if id.Renumbered() {
		t.Fatal("identity build reports Renumbered")
	}
	if !ren.Renumbered() {
		t.Fatal("degree-ordered build does not report Renumbered")
	}
	perm := false
	for u := NodeID(0); u < NodeID(n); u++ {
		if got := ren.OriginalID(ren.InternalID(u)); got != u {
			t.Fatalf("OriginalID(InternalID(%d)) = %d", u, got)
		}
		if ren.InternalID(u) != u {
			perm = true
		}
	}
	if !perm {
		t.Fatal("degree ordering left every node in place on a random graph")
	}

	idEdges := id.Edges()
	renEdges := ren.Edges()
	if !reflect.DeepEqual(idEdges, renEdges) {
		t.Fatalf("Edges() differ between numberings: %d vs %d entries", len(idEdges), len(renEdges))
	}
	for _, e := range edges {
		pi, oki := id.EdgeProbability(e.From, e.To)
		pr, okr := ren.EdgeProbability(e.From, e.To)
		if !oki || !okr || pi != pr {
			t.Fatalf("EdgeProbability(%d,%d): identity (%v,%v) vs renumbered (%v,%v)",
				e.From, e.To, pi, oki, pr, okr)
		}
	}

	// Hubs packed first: internal ID order must be non-increasing in total
	// degree.
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.From]++
		deg[e.To]++
	}
	for v := NodeID(1); v < NodeID(n); v++ {
		if deg[ren.OriginalID(v)] > deg[ren.OriginalID(v-1)] {
			t.Fatalf("internal order not degree-sorted at %d: deg %d after %d",
				v, deg[ren.OriginalID(v)], deg[ren.OriginalID(v-1)])
		}
	}
}

// TestApplyDeltaThroughPermutation is the differential test for delta
// composition: the same original-space delta applied to the identity and
// the degree-renumbered build of one edge list must produce graphs that
// again agree through every original-space accessor, and must match a
// from-scratch renumbered rebuild of the edited edge list node for node.
func TestApplyDeltaThroughPermutation(t *testing.T) {
	const n, m = 48, 300
	edges := randomEdges(n, m, 0xA11CE)
	id := buildOrdered(t, n, edges, false)
	ren := buildOrdered(t, n, edges, true)

	deletes := []Edge{edges[3], edges[77], edges[150]}
	inserts := []Edge{}
	have := make(map[[2]NodeID]bool, len(edges))
	for _, e := range edges {
		have[[2]NodeID{e.From, e.To}] = true
	}
	r := rng.New(0xBEEF)
	for len(inserts) < 5 {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u == v || have[[2]NodeID{u, v}] {
			continue
		}
		have[[2]NodeID{u, v}] = true
		inserts = append(inserts, Edge{From: u, To: v, P: 0.25})
	}

	idNew, idRes, err := id.ApplyDelta(inserts, deletes)
	if err != nil {
		t.Fatal(err)
	}
	renNew, renRes, err := ren.ApplyDelta(inserts, deletes)
	if err != nil {
		t.Fatal(err)
	}
	if err := renNew.Validate(); err != nil {
		t.Fatalf("delta graph fails Validate: %v", err)
	}
	if !renNew.Renumbered() {
		t.Fatal("ApplyDelta dropped the permutation")
	}
	if idRes.Inserted != renRes.Inserted || idRes.Deleted != renRes.Deleted {
		t.Fatalf("delta accounting differs: %+v vs %+v", idRes, renRes)
	}
	// Touched is internal-space; compare through the permutation.
	touched := make([]NodeID, len(renRes.Touched))
	for i, v := range renRes.Touched {
		touched[i] = ren.OriginalID(v)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	if !reflect.DeepEqual(idRes.Touched, touched) {
		t.Fatalf("touched sets differ: %v vs %v", idRes.Touched, touched)
	}

	if !reflect.DeepEqual(idNew.Edges(), renNew.Edges()) {
		t.Fatal("Edges() differ between numberings after delta")
	}
	if idNew.MaxInDegree() != renNew.MaxInDegree() {
		t.Fatalf("MaxInDegree differs after delta: %d vs %d",
			idNew.MaxInDegree(), renNew.MaxInDegree())
	}

	// The delta graph must be structurally identical — per internal node —
	// to a degree-ordered rebuild that reuses the base graph's permutation.
	// (A fresh Build would re-derive the ordering from the edited degrees;
	// ApplyDelta keeps the base permutation so RR scratch and caches stay
	// aligned. Compare in original space instead.)
	rebuilt := buildOrdered(t, n, idNew.Edges(), true)
	if !reflect.DeepEqual(rebuilt.Edges(), renNew.Edges()) {
		t.Fatal("delta result diverges from from-scratch rebuild in original space")
	}
}
