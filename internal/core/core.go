package core
