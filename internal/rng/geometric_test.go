package rng

import (
	"math"
	"testing"
)

// TestGeometricMean checks E[Geometric(p)] = (1-p)/p for a few p values.
func TestGeometricMean(t *testing.T) {
	r := New(7)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(p))
		}
		got := sum / n
		want := (1 - p) / p
		// Std error of the mean is sqrt((1-p))/p/sqrt(n); 5 sigma.
		tol := 5 * math.Sqrt(1-p) / p / math.Sqrt(n)
		if math.Abs(got-want) > tol {
			t.Errorf("p=%v: mean %v, want %v ± %v", p, got, want, tol)
		}
	}
}

// TestGeometricMatchesCoins: P(Geometric(p) = k) must equal the chance of
// k failures then a success; compare the full CDF against coin flipping.
func TestGeometricMatchesCoins(t *testing.T) {
	const p = 0.3
	const n = 100000
	geo := make(map[int]int)
	rg := New(11)
	for i := 0; i < n; i++ {
		geo[rg.Geometric(p)]++
	}
	coin := make(map[int]int)
	rc := New(12)
	for i := 0; i < n; i++ {
		k := 0
		for !rc.Coin(p) {
			k++
		}
		coin[k]++
	}
	for k := 0; k < 10; k++ {
		pg := float64(geo[k]) / n
		pc := float64(coin[k]) / n
		want := p * math.Pow(1-p, float64(k))
		if math.Abs(pg-want) > 0.01 || math.Abs(pc-want) > 0.01 {
			t.Errorf("k=%d: geometric %v, coins %v, want %v", k, pg, pc, want)
		}
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(1)
	if k := r.Geometric(1); k != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", k)
	}
	if k := r.Geometric(1.5); k != 0 {
		t.Fatalf("Geometric(1.5) = %d, want 0", k)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestGeometricInvClamps(t *testing.T) {
	r := New(3)
	inv := 1 / math.Log1p(-1e-12) // astronomically long expected jumps
	for i := 0; i < 100; i++ {
		if k := r.GeometricInv(inv, 10); k < 0 || k > 10 {
			t.Fatalf("GeometricInv returned %d outside [0, 10]", k)
		}
	}
}

// TestReseedMatchesNew: Reseed must reproduce New's stream in place.
func TestReseedMatchesNew(t *testing.T) {
	fresh := New(42)
	reused := New(1)
	reused.Uint32() // advance arbitrarily
	reused.Reseed(42)
	for i := 0; i < 100; i++ {
		if fresh.Uint32() != reused.Uint32() {
			t.Fatalf("Reseed diverged from New at draw %d", i)
		}
	}
}

// TestSplitToMatchesSplit: SplitTo must yield the same child stream as
// Split and advance the parent identically.
func TestSplitToMatchesSplit(t *testing.T) {
	a, b := New(9), New(9)
	childA := a.Split()
	var childB RNG
	b.SplitTo(&childB)
	for i := 0; i < 100; i++ {
		if childA.Uint32() != childB.Uint32() {
			t.Fatalf("SplitTo child diverged at draw %d", i)
		}
	}
	if a.Uint32() != b.Uint32() {
		t.Fatal("parents diverged after Split vs SplitTo")
	}
}
