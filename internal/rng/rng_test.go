package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/64 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other and from the parent's stream.
	same12, sameP1 := 0, 0
	p := New(7)
	p.Split()
	p.Split()
	for i := 0; i < 64; i++ {
		v1, v2, vp := c1.Uint32(), c2.Uint32(), p.Uint32()
		if v1 == v2 {
			same12++
		}
		if v1 == vp {
			sameP1++
		}
	}
	if same12 > 2 || sameP1 > 2 {
		t.Fatalf("split streams overlap: child/child %d, child/parent %d", same12, sameP1)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(99).Split()
	b := New(99).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestCoinEdgeCases(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if r.Coin(0) {
			t.Fatal("Coin(0) returned true")
		}
		if !r.Coin(1) {
			t.Fatal("Coin(1) returned false")
		}
		if r.Coin(-0.5) {
			t.Fatal("Coin(-0.5) returned true")
		}
		if !r.Coin(1.5) {
			t.Fatal("Coin(1.5) returned false")
		}
	}
}

func TestCoinBias(t *testing.T) {
	r := New(13)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Coin(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Coin(%v) frequency = %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpPositiveWithUnitMean(t *testing.T) {
	r := New(21)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.Exp()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced %v", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(17)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	got := float64(trues) / draws
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("Bool frequency = %v", got)
	}
}

func BenchmarkUint32(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint32()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000003)
	}
}
