// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component in the repository.
//
// The generator is a PCG-XSH-RR 64/32 stream seeded through SplitMix64.
// Two properties matter for the reproduction:
//
//   - Determinism: every experiment takes an explicit seed and produces
//     bit-identical output across runs, which the paper's methodology
//     (20 fixed realizations per configuration) relies on.
//   - Splittability: parallel RR-set workers each receive an independent
//     substream derived from the parent seed, so results do not depend on
//     goroutine scheduling.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a PCG-XSH-RR 64/32 pseudo-random generator. The zero value is not
// usable; construct with New or Split.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, never for user-visible randomness.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes r in place exactly as New(seed) would, without
// allocating. Persistent sampler pools use it to hand long-lived workers a
// fresh deterministic substream on every batch.
func (r *RNG) Reseed(seed uint64) {
	s := seed
	r.state = splitmix64(&s)
	r.inc = splitmix64(&s)<<1 | 1
	// Advance once so that near-zero seeds do not produce near-zero output.
	r.Uint32()
}

// State returns the generator's two state words (state, stream increment).
// Together with SetState it round-trips a generator through a checkpoint:
// a restored generator continues the exact output sequence the captured
// one would have produced. The words are opaque; consumers must not
// derive randomness from them.
func (r *RNG) State() (state, inc uint64) { return r.state, r.inc }

// SetState restores a state captured by State. The increment must be odd
// (every State-produced increment is); SetState panics otherwise, because
// an even increment silently degrades the stream to a shorter period.
func (r *RNG) SetState(state, inc uint64) {
	if inc&1 == 0 {
		panic("rng: SetState with even increment (corrupt checkpoint?)")
	}
	r.state = state
	r.inc = inc
}

// Split returns a new generator whose stream is independent of r's.
// The child is a pure function of r's current state, so splitting is itself
// deterministic; r advances as if one value had been drawn.
func (r *RNG) Split() *RNG {
	child := &RNG{}
	r.SplitTo(child)
	return child
}

// SplitTo is the in-place form of Split: it reseeds child with the stream
// Split would have allocated, so pooled workers can be re-derived from a
// parent every batch without heap traffic. r advances identically to Split.
func (r *RNG) SplitTo(child *RNG) {
	a := uint64(r.Uint32())
	b := uint64(r.Uint32())
	child.Reseed(a<<32 | b)
}

// SplitStreams reseeds every element of dst with an independent
// substream of r, in slice order, exactly as len(dst) successive SplitTo
// calls would. Batched samplers use it to hand each concurrent draw lane
// its own stream: the draws become a deterministic function of (r's
// state, lane index) no matter how the lanes interleave.
func (r *RNG) SplitStreams(dst []RNG) {
	for i := range dst {
		r.SplitTo(&dst[i])
	}
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded generation avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint32(n)
	x := r.Uint32()
	m := uint64(x) * uint64(bound)
	lo := uint32(m)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint32()
			m = uint64(x) * uint64(bound)
			lo = uint32(m)
		}
	}
	return int(m >> 32)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool {
	return r.Uint32()&1 == 1
}

// Coin returns true with the given probability p in [0, 1].
func (r *RNG) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with rate 1, using
// inversion. Used by generators that need heavy-tailed weights.
func (r *RNG) Exp() float64 {
	u := r.Float64()
	// Float64 is in [0,1); 1-u is in (0,1] so the log is finite.
	return -math.Log(1 - u)
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) sequence, via the table-free inversion
//
//	k = floor(log(1-U) / log(1-p)),
//
// the jump primitive that lets a sampler skip over a run of
// same-probability Bernoulli trials in one draw instead of flipping one
// coin per trial (the SUBSIM-style skip). Hot loops that jump repeatedly
// at one p use GeometricInv with the denominator hoisted; Geometric is
// the general single-shot form, clamped to MaxInt64 so a pathologically
// small p cannot overflow the float-to-int conversion. Geometric panics
// for p <= 0; p >= 1 returns 0.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric needs p > 0")
	}
	return r.GeometricInv(1/math.Log1p(-p), math.MaxInt64)
}

// PrefixPick inverts a uniform prefix scan: with n intervals of width p
// laid end to end, it returns the index i such that a uniform draw lands
// in [i·p, (i+1)·p), or -1 when the draw lands past n·p. This is the O(1)
// form of the linear threshold model's "pick at most one in-parent with
// probability p each" scan; forward realization sampling and reverse RR
// sampling share it so the boundary semantics cannot diverge.
func (r *RNG) PrefixPick(p float64, n int) int {
	if idx := int(r.Float64() / p); idx < n {
		return idx
	}
	return -1
}

// GeometricInv is Geometric with the denominator precomputed: invLog1mP
// must equal 1/log1p(-p) for the success probability p in (0, 1). Callers
// that jump repeatedly at the same p (a whole in-adjacency scan) hoist the
// log out of the loop. The jump is clamped to max, so a pathologically
// small p cannot overflow the float-to-int conversion.
func (r *RNG) GeometricInv(invLog1mP float64, max int) int {
	k := math.Log1p(-r.Float64()) * invLog1mP
	if k >= float64(max) {
		return max
	}
	return int(k)
}
