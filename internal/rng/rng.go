// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component in the repository.
//
// The generator is a PCG-XSH-RR 64/32 stream seeded through SplitMix64.
// Two properties matter for the reproduction:
//
//   - Determinism: every experiment takes an explicit seed and produces
//     bit-identical output across runs, which the paper's methodology
//     (20 fixed realizations per configuration) relies on.
//   - Splittability: parallel RR-set workers each receive an independent
//     substream derived from the parent seed, so results do not depend on
//     goroutine scheduling.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a PCG-XSH-RR 64/32 pseudo-random generator. The zero value is not
// usable; construct with New or Split.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, never for user-visible randomness.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *RNG {
	s := seed
	r := &RNG{}
	r.state = splitmix64(&s)
	r.inc = splitmix64(&s)<<1 | 1
	// Advance once so that near-zero seeds do not produce near-zero output.
	r.Uint32()
	return r
}

// Split returns a new generator whose stream is independent of r's.
// The child is a pure function of r's current state, so splitting is itself
// deterministic; r advances as if one value had been drawn.
func (r *RNG) Split() *RNG {
	a := uint64(r.Uint32())
	b := uint64(r.Uint32())
	return New(a<<32 | b)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded generation avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint32(n)
	x := r.Uint32()
	m := uint64(x) * uint64(bound)
	lo := uint32(m)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint32()
			m = uint64(x) * uint64(bound)
			lo = uint32(m)
		}
	}
	return int(m >> 32)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool {
	return r.Uint32()&1 == 1
}

// Coin returns true with the given probability p in [0, 1].
func (r *RNG) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with rate 1, using
// inversion. Used by generators that need heavy-tailed weights.
func (r *RNG) Exp() float64 {
	u := r.Float64()
	// Float64 is in [0,1); 1-u is in (0,1] so the log is finite.
	return -math.Log(1 - u)
}
