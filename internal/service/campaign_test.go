package service

import (
	"fmt"
	"reflect"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
)

// driveCampaign steps a simulated campaign to completion.
func driveCampaign(t *testing.T, c *Campaign) *adaptive.RunResult {
	t.Helper()
	for {
		_, stop, _, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if stop {
			break
		}
	}
	return c.Result()
}

// sameOutcome compares the deterministic core of two campaign results.
// RRPeakBytes is capacity-based and SamplingNS is wall time, so neither
// belongs in a determinism check.
func sameOutcome(t *testing.T, got, want *adaptive.RunResult, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.Seeds, want.Seeds) {
		t.Errorf("%s: seeds %v, want %v", label, got.Seeds, want.Seeds)
	}
	if got.Rounds != want.Rounds || got.Spread != want.Spread || got.Profit != want.Profit {
		t.Errorf("%s: rounds/spread/profit %d/%d/%g, want %d/%d/%g",
			label, got.Rounds, got.Spread, got.Profit, want.Rounds, want.Spread, want.Profit)
	}
	if got.RRDrawn != want.RRDrawn || got.RRReused != want.RRReused {
		t.Errorf("%s: rr drawn/reused %d/%d, want %d/%d",
			label, got.RRDrawn, got.RRReused, want.RRDrawn, want.RRReused)
	}
}

// TestConcurrentCampaignsShareOneInstance drives several same-seed
// campaigns in parallel on a single registry entry (run under -race in
// CI): preparation must happen once, and every campaign must produce the
// identical seed sequence despite interleaved RR batches on separate
// warm batchers.
func TestConcurrentCampaignsShareOneInstance(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	const n = 5
	results := make([]*adaptive.RunResult, n)
	campaigns := make([]*Campaign, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := reg.StartCampaign(fmt.Sprintf("c%d", i), testKey(), adaptive.AlgoADDATP, 4242, true)
			if err != nil {
				errs[i] = err
				return
			}
			campaigns[i] = c
			for {
				_, stop, _, err := c.Step()
				if err != nil {
					errs[i] = err
					return
				}
				if stop {
					break
				}
			}
			results[i] = c.Result()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("campaign %d: %v", i, err)
		}
	}

	stats := reg.Stats()
	if len(stats) != 1 || stats[0].Refs != n {
		t.Fatalf("stats = %+v, want one entry with %d refs", stats, n)
	}
	for i := 1; i < n; i++ {
		if campaigns[i].inst != campaigns[0].inst {
			t.Fatal("concurrent campaigns got different instances for one key")
		}
		sameOutcome(t, results[i], results[0], fmt.Sprintf("campaign %d vs 0", i))
	}
	if len(results[0].Seeds) == 0 {
		t.Fatal("campaigns selected no seeds; test instance too small to be meaningful")
	}
	for _, c := range campaigns {
		c.Close()
	}
	if got := reg.Stats()[0].Warm; got != n {
		t.Fatalf("warm batchers after close = %d, want %d", got, n)
	}
}

// TestWarmSecondCampaignAllocFree runs the same campaign twice on one
// instance with metrics attached. The second run rides entirely on warm
// state — pooled batcher arenas, persistent samplers, the session's
// scratch buffers, pre-resolved metric handles — so its steady-state
// rounds (everything after round one) must not allocate at all inside
// Campaign.Next/Observe, instrumentation epilogue included: step-latency
// observation and the traffic-counter bridge are atomics on handles
// resolved at campaign open. env.Observe is excluded: building the
// activation list for the caller is the environment's job, not session
// overhead.
func TestWarmSecondCampaignAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	spec := testSpec()
	spec.Workers = 1 // parallel draw dispatch spawns goroutines, which allocate
	reg := NewRegistry(spec, 0)
	reg.AttachMetrics(NewMetrics(obs.NewRegistry()))
	defer fault.SetObserver(nil)

	run := func(measure bool) (res *adaptive.RunResult, mallocs uint64, rounds int) {
		c, err := reg.StartCampaign("w", testKey(), adaptive.AlgoADDATP, 4242, true)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var before, after runtime.MemStats
		step := func(f func() error) {
			if measure && rounds >= 1 {
				runtime.ReadMemStats(&before)
				err := f()
				runtime.ReadMemStats(&after)
				mallocs += after.Mallocs - before.Mallocs
				if err != nil {
					t.Fatal(err)
				}
				return
			}
			if err := f(); err != nil {
				t.Fatal(err)
			}
		}
		for {
			var u graph.NodeID
			var stop bool
			step(func() (err error) { u, stop, err = c.Next(); return err })
			if stop {
				break
			}
			a := c.env.Observe(u)
			step(func() error { return c.Observe(a) })
			rounds++
		}
		return c.Result(), mallocs, rounds
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	cold, _, _ := run(false)

	// The runtime very occasionally contributes a stray allocation to the
	// measured window (a parked channel op acquiring a sudog, scheduler
	// noise under machine load), so a single nonzero reading retries: a
	// systematic per-step allocation — the regression this test exists to
	// catch — fails every attempt.
	var warm *adaptive.RunResult
	var mallocs uint64
	var rounds int
	for attempt := 0; attempt < 3; attempt++ {
		warm, mallocs, rounds = run(true)
		if mallocs == 0 {
			break
		}
	}

	sameOutcome(t, warm, cold, "warm vs cold")
	if rounds < 2 {
		t.Fatalf("campaign finished in %d rounds; too short to observe steady state", rounds)
	}
	if mallocs != 0 {
		t.Errorf("warm campaign allocated %d times across %d steady-state rounds in each of 3 attempts, want 0", mallocs, rounds-1)
	}
}

// TestCampaignCheckpointRestoreMatchesUninterrupted checkpoints a
// simulated campaign after two rounds, closes it, restores from the file,
// and finishes — the stitched run must match an uninterrupted same-seed
// campaign exactly.
func TestCampaignCheckpointRestoreMatchesUninterrupted(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	dir := t.TempDir()

	ref, err := reg.StartCampaign("ref", testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	want := driveCampaign(t, ref)
	ref.Close()

	c, err := reg.StartCampaign("cut", testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, stop, _, err := c.Step(); err != nil || stop {
			t.Fatalf("round %d: stop=%v err=%v (instance too small for a 2-round cut)", i, stop, err)
		}
	}
	file, err := c.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	restored, _, err := reg.RestoreCampaign(file)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID != "cut" || restored.Seed != 31 || !restored.Simulate {
		t.Fatalf("restored identity %q/%d/%v lost", restored.ID, restored.Seed, restored.Simulate)
	}
	got := driveCampaign(t, restored)
	restored.Close()
	sameOutcome(t, got, want, "restored vs uninterrupted")
}

// TestCampaignExternalFeedbackMode drives a campaign through Next/Observe
// with caller-supplied activations (the serve API's external mode) and
// checks mode gating both ways.
func TestCampaignExternalFeedbackMode(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	c, err := reg.StartCampaign("x", testKey(), adaptive.AlgoADDATP, 99, false)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Step(); err == nil {
		t.Fatal("Step on an external-feedback campaign succeeded, want error")
	}
	rounds := 0
	for {
		u, stop, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if stop {
			break
		}
		// Pessimal world: only the seeded node itself activates.
		if err := c.Observe([]graph.NodeID{u}); err != nil {
			t.Fatal(err)
		}
		rounds++
	}
	st := c.Status()
	if !st.Done || st.Rounds != rounds || st.Spread != rounds {
		t.Fatalf("status %+v, want done after %d rounds with spread %d", st, rounds, rounds)
	}

	sim, err := reg.StartCampaign("s", testKey(), adaptive.AlgoADDATP, 99, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if u, stop, err := sim.Next(); err != nil || stop {
		t.Fatalf("Next on simulated campaign: %v/%v/%v", u, stop, err)
	} // Next is also the external probe; proposing is mode-agnostic.
	if sim.Status().Pending == nil {
		t.Fatal("pending proposal missing from status")
	}
}
