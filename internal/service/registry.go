package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/ris"
	"repro/internal/sweep"
)

// Key identifies one prepared experiment instance: everything
// sweep.Prepare's output depends on besides the registry's shared spec,
// plus the topology epoch. Epoch 0 is the base (as-loaded) graph; a
// campaign mutation adopts its post-delta instance under the incremented
// epoch, so warm state pooled per instance — batchers, prepared graphs —
// never crosses topologies: a fresh campaign on the base key can never
// check out an instance whose graph has drifted.
type Key struct {
	Dataset string  `json:"dataset"`
	Model   string  `json:"model"`
	Cost    string  `json:"cost"`
	Scale   float64 `json:"scale"`
	Epoch   int64   `json:"epoch,omitempty"`
}

func (k Key) String() string {
	s := fmt.Sprintf("%s/%s/%s@%g", k.Dataset, k.Model, k.Cost, k.Scale)
	if k.Epoch != 0 {
		s = fmt.Sprintf("%s#%d", s, k.Epoch)
	}
	return s
}

// base returns the epoch-0 key the derived key descends from.
func (k Key) base() Key {
	k.Epoch = 0
	return k
}

// validate rejects malformed keys before any expensive preparation.
func (k Key) validate() error {
	if _, err := gen.Lookup(k.Dataset); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if _, err := sweep.ParseModel(k.Model); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if _, err := sweep.ParseCostSetting(k.Cost); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if k.Scale <= 0 {
		return fmt.Errorf("service: scale must be positive, got %g", k.Scale)
	}
	if k.Epoch < 0 {
		return fmt.Errorf("service: epoch must be non-negative, got %d", k.Epoch)
	}
	return nil
}

// Registry caches prepared instances with ref-counted sharing and LRU
// eviction of idle entries. Safe for concurrent use.
type Registry struct {
	base sweep.Spec // shared experiment parameters (K, seeds, θs, sampler…)
	max  int        // idle entries kept warm; <= 0 means unlimited

	// metrics, when attached (AttachMetrics, before serving), counts
	// prepares/evictions and exports occupancy gauges. Nil on bare
	// registries; every read is nil-checked.
	metrics *Metrics

	mu      sync.Mutex
	entries map[Key]*Instance
	clock   int64 // LRU stamp source
}

// NewRegistry builds a registry whose instances prepare with the shared
// parameters of base (defaults filled in); maxInstances bounds how many
// idle instances stay warm (<= 0: unlimited).
func NewRegistry(base sweep.Spec, maxInstances int) *Registry {
	base.SetDefaults()
	return &Registry{base: base, max: maxInstances, entries: make(map[Key]*Instance)}
}

// Spec returns a copy of the registry's shared experiment parameters.
func (r *Registry) Spec() sweep.Spec { return r.base }

// Instance is one cached preparation plus its warm-batcher pool.
// Preparation runs lazily on first Prepared call, exactly once across
// every concurrent acquirer.
type Instance struct {
	Key Key

	reg     *Registry
	once    sync.Once
	ready   atomic.Bool // set when once completed successfully
	prep    *sweep.Prepared
	prepErr error

	// guarded by reg.mu
	refs  int
	stamp int64

	bmu      sync.Mutex
	batchers []*ris.Batcher
}

// Acquire returns the instance for key, creating the entry if needed and
// bumping its refcount. The caller must Release it. Acquire itself is
// cheap — the expensive preparation happens on the first Prepared call.
func (r *Registry) Acquire(key Key) (*Instance, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.entries[key]
	if !ok {
		// Derived (epoch > 0) instances exist only by mutating a live
		// campaign or replaying its checkpoint — there is nothing to
		// Prepare them from — so Acquire never creates their entries.
		if key.Epoch != 0 {
			return nil, fmt.Errorf("service: no live instance at topology epoch %d for %s (mutated instances are adopted by campaigns, not prepared)", key.Epoch, key.base())
		}
		inst = &Instance{Key: key, reg: r}
		r.entries[key] = inst
	}
	// Ref and stamp the entry before any eviction sweep: a just-created
	// entry must never be its own oldest-idle eviction candidate.
	inst.refs++
	r.clock++
	inst.stamp = r.clock
	if !ok {
		r.evictLocked()
	}
	return inst, nil
}

// evictLocked drops least-recently-used idle entries until the *idle*
// population fits the configured maximum — the contract the
// -max-instances flag documents ("idle prepared instances kept warm").
// Entries with live references never leave and never count against the
// cap: a registry serving max live campaigns must not evict the one
// idle instance a just-finished campaign parked warm.
func (r *Registry) evictLocked() {
	if r.max <= 0 {
		return
	}
	type cand struct {
		key   Key
		stamp int64
	}
	var idle []cand
	for k, e := range r.entries {
		if e.refs == 0 {
			idle = append(idle, cand{k, e.stamp})
		}
	}
	if len(idle) <= r.max {
		return
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i].stamp < idle[j].stamp })
	for _, c := range idle[:len(idle)-r.max] {
		delete(r.entries, c.key)
		if m := r.metrics; m != nil {
			m.evictions.Inc()
		}
	}
}

// AdoptDerived registers the post-delta instance of a mutated campaign
// under key (epoch > 0), pre-filled with prep — derived graphs are never
// Prepared from disk; they exist only as a live session's delta replay —
// and returns it acquired. If the slot already holds the same graph
// (this campaign's earlier adoption, still warm), it is reused, batcher
// pool included. A different graph under the same epoch (another
// campaign's delta sequence, or a checkpoint replay that rebuilt the
// graph) gets a private instance instead, sharing nothing: two
// topologies never pool warm state, whatever their epoch numbers say.
func (r *Registry) AdoptDerived(key Key, prep *sweep.Prepared) *Instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if p := e.preparedOrNil(); p != nil && p.G == prep.G {
			e.refs++
			r.clock++
			e.stamp = r.clock
			return e
		}
		priv := &Instance{Key: key, reg: r, refs: 1}
		priv.adopt(prep)
		return priv
	}
	inst := &Instance{Key: key, reg: r, refs: 1}
	inst.adopt(prep)
	r.entries[key] = inst
	r.clock++
	inst.stamp = r.clock
	r.evictLocked()
	return inst
}

// adopt pre-fills the preparation (consuming the once), so Prepared and
// CheckoutBatcher serve the derived graph without ever calling
// sweep.Prepare.
func (i *Instance) adopt(prep *sweep.Prepared) {
	i.once.Do(func() {
		i.prep = prep
		i.ready.Store(true)
	})
}

// Prepared returns the instance's preparation, running sweep.Prepare on
// the first call (once, even under concurrent acquirers). A failed
// preparation is sticky for the entry's lifetime; callers should Release
// on error, and the releasing of the last reference drops failed entries
// so a later Acquire can retry.
func (i *Instance) Prepared() (*sweep.Prepared, error) {
	i.once.Do(func() {
		if m := i.reg.metrics; m != nil {
			m.prepares.Inc()
		}
		// Fault-plane hook: a failed preparation is sticky until the last
		// reference releases (dropping the entry), so injected errors here
		// exercise the retry-on-next-Acquire path.
		if i.prepErr = fault.Check(fault.SiteRegistryPrepare); i.prepErr != nil {
			return
		}
		spec := i.reg.base // copy; Scale is per-key
		spec.Scale = i.Key.Scale
		i.prep, i.prepErr = sweep.Prepare(&spec, i.Key.Dataset, i.Key.Model, i.Key.Cost)
		if i.prepErr == nil {
			i.ready.Store(true)
		}
	})
	return i.prep, i.prepErr
}

// Release drops one reference. Failed entries are removed when their last
// reference goes, so transient preparation errors don't poison the key.
func (i *Instance) Release() {
	r := i.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if i.refs <= 0 {
		panic("service: Release without matching Acquire")
	}
	i.refs--
	if i.refs == 0 {
		if i.prepErr != nil {
			if r.entries[i.Key] == i {
				delete(r.entries, i.Key)
			}
			return
		}
		// The entry just went idle, so it now counts against the idle cap;
		// the LRU sweep must run here, not only on Acquire, or a busy
		// server releasing its last campaign never trims the warm set.
		r.evictLocked()
	}
}

// CheckoutBatcher hands out a warm batcher from the instance pool (or a
// fresh one). It is always Reset, so the caller sees empty, version-safe
// state with warm storage underneath.
func (i *Instance) CheckoutBatcher() (*ris.Batcher, error) {
	prep, err := i.Prepared()
	if err != nil {
		return nil, err
	}
	i.bmu.Lock()
	var b *ris.Batcher
	if n := len(i.batchers); n > 0 {
		b = i.batchers[n-1]
		i.batchers = i.batchers[:n-1]
	}
	i.bmu.Unlock()
	if b == nil {
		b = ris.NewBatcher(prep.Inst.Model)
	}
	b.Reset()
	return b, nil
}

// ReturnBatcher parks a batcher for the next campaign on this instance.
func (i *Instance) ReturnBatcher(b *ris.Batcher) {
	if b == nil {
		return
	}
	b.Reset() // drop interrupt hooks and stale sets immediately
	i.bmu.Lock()
	i.batchers = append(i.batchers, b)
	i.bmu.Unlock()
}

// InstanceInfo is the registry stats row the server exposes.
type InstanceInfo struct {
	Key      Key   `json:"key"`
	Refs     int   `json:"refs"`
	Prepared bool  `json:"prepared"`
	Warm     int   `json:"warm_batchers"`
	N        int   `json:"n,omitempty"`
	M        int64 `json:"m,omitempty"`
	Targets  int   `json:"targets,omitempty"`
}

// Stats snapshots the registry, sorted by key string for stable output.
func (r *Registry) Stats() []InstanceInfo {
	r.mu.Lock()
	entries := make([]*Instance, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	refs := make(map[*Instance]int, len(entries))
	for _, e := range entries {
		refs[e] = e.refs
	}
	r.mu.Unlock()

	out := make([]InstanceInfo, 0, len(entries))
	for _, e := range entries {
		info := InstanceInfo{Key: e.Key, Refs: refs[e]}
		e.bmu.Lock()
		info.Warm = len(e.batchers)
		e.bmu.Unlock()
		// Read the preparation only if it already happened: Stats must not
		// trigger (or wait on) an expensive Prepare.
		if p := e.preparedOrNil(); p != nil {
			info.Prepared = true
			info.N = p.G.N()
			info.M = p.G.M()
			info.Targets = len(p.Inst.Targets)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key.String() < out[b].Key.String() })
	return out
}

// preparedOrNil returns the preparation iff it has already completed
// successfully, without triggering or waiting on one.
func (i *Instance) preparedOrNil() *sweep.Prepared {
	if !i.ready.Load() {
		return nil
	}
	return i.prep
}
