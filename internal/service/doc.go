// Package service hosts adaptive campaigns as long-lived state behind the
// `repro serve` daemon: a warm instance registry, campaign lifecycle
// management, and checkpoint envelopes.
//
// # Instance registry
//
// Preparing an experiment instance — materializing the dataset, running
// IMM for the target set, calibrating costs — dominates the cost of short
// campaigns (sweep.Prepare takes seconds on the larger datasets; a
// campaign round takes milliseconds). The Registry caches Prepared
// instances keyed on (dataset, model, cost setting, scale) with
// ref-counted acquire/release accounting: concurrent campaigns on the
// same key share one preparation (guarded by sync.Once, so N concurrent
// acquisitions trigger exactly one Prepare), and idle instances beyond
// the configured maximum are evicted least-recently-used. Eviction never
// touches an instance with live references.
//
// Each instance also pools warm ris.Batchers: a campaign checks one out
// at creation and returns it at close, so a steady stream of campaigns on
// a warm instance reuses the RR collection arenas, coverage counts, and
// sampler-pool scratch of its predecessors instead of reallocating them.
// Batchers are Reset on checkout — campaign results are independent of
// what a donated batcher previously held.
//
// # Campaigns
//
// A Campaign wraps one adaptive.Session plus its feedback source. In
// simulate mode the server owns the realization (sampled from the
// campaign seed with the same RNG discipline as adaptive.RunExperiment,
// so a simulated campaign with seed S+100 reproduces realization 0 of
// `repro run --seed S` exactly) and Step advances one full
// propose-observe round. In external mode the client drives the loop:
// Next returns the proposed seed, Observe feeds back the realized
// activations from whatever real-world process the campaign controls.
//
// # Checkpoints
//
// Campaign.Checkpoint writes a self-describing envelope — one JSON header
// line naming the instance key, algorithm, seed, and mode, followed by
// the binary adaptive.Session checkpoint — via temp file + atomic rename.
// Restore reacquires the instance from the header, resumes the session
// (bit-identical continuation; see adaptive.ResumeSession), and in
// simulate mode rebuilds the environment in lockstep by re-sampling the
// realization from the stored seed and cloning the session's restored
// residual. Server.Drain checkpoints every open campaign before
// shutdown, which is what makes `repro serve` kill/restart/resume
// transparent to clients.
package service
