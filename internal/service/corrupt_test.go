package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc64"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/adaptive"
)

// writeCheckpoint starts a campaign, runs it nRounds rounds, checkpoints
// into dir, closes it, and returns the checkpoint path.
func writeCheckpoint(t *testing.T, reg *Registry, id string, nRounds int, dir string) string {
	t.Helper()
	c, err := reg.StartCampaign(id, testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < nRounds; i++ {
		if _, stop, _, err := c.Step(); err != nil || stop {
			t.Fatalf("round %d: stop=%v err=%v (instance too small)", i, stop, err)
		}
	}
	file, err := c.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	return file
}

// TestRestoreCorruptCheckpointNeverPanics feeds every flavor of on-disk
// damage — truncation, bit flips in each region, wrong version — to
// RestoreCampaign and asserts each yields a clean error (no generations
// exist here, so there is nothing to fall back to), never a panic, and
// that only byte-level damage gets quarantined.
func TestRestoreCorruptCheckpointNeverPanics(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)

	cases := []struct {
		name string
		// corrupt rewrites valid checkpoint bytes into the damaged form.
		corrupt func(t *testing.T, data []byte) []byte
		errPart string // substring the restore error must carry
		// quarantined: byte-level damage moves the file to .corrupt;
		// authentic-but-unusable envelopes must stay where they are.
		quarantined bool
	}{
		{
			name:        "zero length",
			corrupt:     func(_ *testing.T, _ []byte) []byte { return nil },
			errPart:     "shorter than the footer",
			quarantined: true,
		},
		{
			name:        "truncated mid blob",
			corrupt:     func(_ *testing.T, d []byte) []byte { return d[:len(d)/2] },
			errPart:     "corrupt checkpoint",
			quarantined: true,
		},
		{
			name:        "truncated mid footer",
			corrupt:     func(_ *testing.T, d []byte) []byte { return d[:len(d)-ckptFooterLen/2] },
			errPart:     "corrupt checkpoint",
			quarantined: true,
		},
		{
			name: "bit flip in header",
			corrupt: func(_ *testing.T, d []byte) []byte {
				d[2] ^= 0x40
				return d
			},
			errPart:     "CRC64 mismatch",
			quarantined: true,
		},
		{
			name: "bit flip in blob",
			corrupt: func(t *testing.T, d []byte) []byte {
				nl := bytes.IndexByte(d, '\n')
				if nl < 0 || nl+10 > len(d)-ckptFooterLen {
					t.Fatal("checkpoint layout not as expected")
				}
				d[nl+10] ^= 0x01
				return d
			},
			errPart:     "CRC64 mismatch",
			quarantined: true,
		},
		{
			name: "bit flip in stored checksum",
			corrupt: func(_ *testing.T, d []byte) []byte {
				d[len(d)-1] ^= 0x80
				return d
			},
			errPart:     "CRC64 mismatch",
			quarantined: true,
		},
		{
			name: "header blob mismatch with recomputed checksum",
			corrupt: func(t *testing.T, d []byte) []byte {
				// Authentic envelope, lying header: claim 99 rounds so the
				// replayed session disagrees with the header. The checksum
				// is valid, so this must NOT be treated as damage.
				nl := bytes.IndexByte(d, '\n')
				var hdr ckptHeader
				if err := json.Unmarshal(d[:nl], &hdr); err != nil {
					t.Fatal(err)
				}
				hdr.Key.Epoch = 7 // session blob replays to epoch 0
				h, err := json.Marshal(hdr)
				if err != nil {
					t.Fatal(err)
				}
				blob := d[nl+1 : len(d)-ckptFooterLen]
				return sealEnvelope(h, blob)
			},
			errPart:     "epoch",
			quarantined: false,
		},
		{
			name: "future envelope version with valid checksum",
			corrupt: func(t *testing.T, d []byte) []byte {
				nl := bytes.IndexByte(d, '\n')
				var hdr ckptHeader
				if err := json.Unmarshal(d[:nl], &hdr); err != nil {
					t.Fatal(err)
				}
				hdr.Version = 99
				h, err := json.Marshal(hdr)
				if err != nil {
					t.Fatal(err)
				}
				blob := d[nl+1 : len(d)-ckptFooterLen]
				return sealEnvelope(h, blob)
			},
			errPart:     "envelope version 99",
			quarantined: false,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			file := writeCheckpoint(t, reg, "v", 2, dir)
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(file, tc.corrupt(t, append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}

			c, info, err := reg.RestoreCampaign(file)
			if c != nil {
				c.Close()
				t.Fatalf("restore of %s succeeded; want failure", tc.name)
			}
			if err == nil || !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("restore error = %v, want substring %q", err, tc.errPart)
			}
			_, statErr := os.Stat(file + ".corrupt")
			if tc.quarantined {
				if statErr != nil {
					t.Errorf("corrupt file not quarantined: %v", statErr)
				}
				if len(info.Quarantined) != 1 || info.Quarantined[0] != file+".corrupt" {
					t.Errorf("info.Quarantined = %v, want [%s]", info.Quarantined, file+".corrupt")
				}
			} else {
				if statErr == nil {
					t.Errorf("authentic-but-unusable checkpoint was quarantined")
				}
				if _, err := os.Stat(file); err != nil {
					t.Errorf("checkpoint file vanished: %v", err)
				}
			}
		})
	}
}

// TestRestoreFallsBackToOlderGeneration corrupts the newest checkpoint of
// a campaign that has two: the restore must quarantine the damaged file,
// fall back to the surviving generation, and the resumed campaign must
// finish identically to an uninterrupted run.
func TestRestoreFallsBackToOlderGeneration(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	dir := t.TempDir()

	ref, err := reg.StartCampaign("ref", testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	want := driveCampaign(t, ref)
	ref.Close()

	c, err := reg.StartCampaign("g", testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	var file string
	for i := 0; i < 2; i++ {
		if _, stop, _, err := c.Step(); err != nil || stop {
			t.Fatalf("round %d: stop=%v err=%v", i, stop, err)
		}
		if file, err = c.Checkpoint(dir); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	gen1 := file + ".1"
	if _, err := os.Stat(gen1); err != nil {
		t.Fatalf("superseded checkpoint not rotated to %s: %v", gen1, err)
	}

	// Flip a bit in the newest checkpoint's blob.
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}

	restored, info, err := reg.RestoreCampaign(file)
	if err != nil {
		t.Fatalf("restore with valid generation on disk failed: %v", err)
	}
	if info.File != gen1 {
		t.Errorf("restored from %s, want fallback to %s", info.File, gen1)
	}
	if len(info.Quarantined) != 1 || info.Quarantined[0] != file+".corrupt" {
		t.Errorf("info.Quarantined = %v, want [%s]", info.Quarantined, file+".corrupt")
	}
	if _, err := os.Stat(file + ".corrupt"); err != nil {
		t.Errorf("damaged checkpoint not preserved for forensics: %v", err)
	}

	got := driveCampaign(t, restored)
	restored.Close()
	sameOutcome(t, got, want, "generation-fallback restore vs uninterrupted")
}

// TestCheckpointGenerationsRotateAndPrune checkpoints repeatedly and
// checks the directory: the final name always holds the newest envelope,
// superseded ones rotate to strictly increasing .N suffixes, and only
// keepGenerations of them survive pruning.
func TestCheckpointGenerationsRotateAndPrune(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	dir := t.TempDir()

	c, err := reg.StartCampaign("p", testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, stop, _, err := c.Step(); err != nil || stop {
		t.Fatalf("first round: stop=%v err=%v", stop, err)
	}
	const writes = keepGenerations + 3
	var file string
	for i := 0; i < writes; i++ {
		if file, err = c.Checkpoint(dir); err != nil {
			t.Fatal(err)
		}
	}

	gens := generations(file)
	if len(gens) != keepGenerations {
		t.Fatalf("generations = %v, want exactly %d survivors", gens, keepGenerations)
	}
	// Newest surviving generation is the previous write; numbering never
	// reuses a pruned slot.
	if gens[len(gens)-1].n != writes-1 {
		t.Errorf("newest generation slot %d, want %d", gens[len(gens)-1].n, writes-1)
	}
	// Every survivor, and the final file, is a valid envelope.
	for _, p := range append([]string{file}, gen1paths(gens)...) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := openEnvelope(data); err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
		}
	}
	// No temp litter.
	tmps, _ := filepath.Glob(filepath.Join(dir, ".campaign-*.tmp"))
	if len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}

func gen1paths(gens []generation) []string {
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.path
	}
	return out
}

// TestEnvelopeRoundTrip pins the envelope byte layout: header line, blob,
// 8-byte magic, little-endian CRC64 of everything before the footer.
func TestEnvelopeRoundTrip(t *testing.T) {
	hdr := []byte(`{"version":2}`)
	blob := []byte{0, 1, 2, 254, 255, '\n', 'x'}
	data := sealEnvelope(hdr, blob)

	wantBody := append(append(append([]byte(nil), hdr...), '\n'), blob...)
	if !bytes.Equal(data[:len(data)-ckptFooterLen], wantBody) {
		t.Fatalf("envelope body %q, want %q", data[:len(data)-ckptFooterLen], wantBody)
	}
	footer := data[len(data)-ckptFooterLen:]
	if !bytes.Equal(footer[:8], ckptFooterMagic[:]) {
		t.Fatalf("footer magic %q", footer[:8])
	}
	if got, want := binary.LittleEndian.Uint64(footer[8:]), crc64.Checksum(wantBody, ckptCRCTable); got != want {
		t.Fatalf("stored CRC %#x, want %#x", got, want)
	}

	gotHdr, gotBlob, err := openEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.Version != 2 || !bytes.Equal(gotBlob, blob) {
		t.Fatalf("round trip: hdr %+v blob %q", gotHdr, gotBlob)
	}

	// A v1 file (no footer) classifies as corrupt, not as a crash.
	v1 := append(append(append([]byte(nil), hdr...), '\n'), blob...)
	if _, _, err := openEnvelope(v1); !errors.Is(err, errCorruptCheckpoint) {
		t.Fatalf("pre-v2 envelope error = %v, want errCorruptCheckpoint", err)
	}
}
