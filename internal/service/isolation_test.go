package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/fault"
)

func withInjector(t *testing.T, inj *fault.Injector) {
	t.Helper()
	prev := fault.Enable(inj)
	t.Cleanup(func() { fault.Enable(prev) })
}

// TestServerStepPanicIsolatesCampaign panics the RR batcher mid-step and
// checks the blast radius: that one request answers 500, the campaign
// lands in the failed state with the stack captured, every later call on
// it gets a clean error — and a sibling campaign on the same server keeps
// stepping as if nothing happened.
func TestServerStepPanicIsolatesCampaign(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	srv := NewServer(reg, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var doomed, healthy Status
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusCreated, &doomed)
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusCreated, &healthy)

	// The first RR top-up anywhere panics; everything after runs clean.
	withInjector(t, fault.New(11, fault.Rule{Site: fault.SiteBatcherGrow, Mode: fault.ModePanic, Nth: 1}))

	var errResp struct {
		Error string `json:"error"`
	}
	call(t, ts, http.MethodPost, "/v1/campaigns/"+doomed.ID+"/step", nil, http.StatusInternalServerError, &errResp)
	if !strings.Contains(errResp.Error, "failed") || !strings.Contains(errResp.Error, "panic") {
		t.Fatalf("step error %q does not say the campaign failed from a panic", errResp.Error)
	}

	var st Status
	call(t, ts, http.MethodGet, "/v1/campaigns/"+doomed.ID, nil, http.StatusOK, &st)
	if st.State != "failed" || st.Error == "" {
		t.Fatalf("status after panic = %+v, want state failed with error", st)
	}
	if !strings.Contains(st.Stack, "fault") {
		t.Errorf("status stack does not show the panic site:\n%s", st.Stack)
	}
	// The failure is sticky and clean — no second panic, no half progress.
	call(t, ts, http.MethodPost, "/v1/campaigns/"+doomed.ID+"/step", nil, http.StatusInternalServerError, &errResp)
	if !strings.Contains(errResp.Error, "failed") {
		t.Fatalf("second step error = %q, want sticky failed", errResp.Error)
	}

	stepToDone(t, ts, healthy.ID)

	// The failed campaign can still be deleted; its resources come back.
	call(t, ts, http.MethodDelete, "/v1/campaigns/"+doomed.ID, nil, http.StatusOK, nil)
}

// TestHandlerPanicRecoveryMiddleware drives a panic that the campaign
// guard cannot catch (it fires in the handler itself) and checks the
// outer middleware turns it into a 500, not a dead server.
func TestHandlerPanicRecoveryMiddleware(t *testing.T) {
	srv := NewServer(NewRegistry(testSpec(), 0), "")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(srv.withRecovery(mux))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	// The server survived: the next request works.
	resp, err = ts.Client().Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second request: status %d, want 500", resp.StatusCode)
	}
}

// TestServerOverloadReturns429 fills the step semaphore and checks the
// server sheds the next campaign-advancing request with 429 and a
// Retry-After hint instead of queueing it.
func TestServerOverloadReturns429(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	srv := NewServer(reg, "")
	srv.SetMaxConcurrentSteps(1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var c Status
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusCreated, &c)

	// Occupy the only slot as a wedged in-flight step would.
	srv.stepSem <- struct{}{}
	resp, err := ts.Client().Post(ts.URL+"/v1/campaigns/"+c.ID+"/step", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	<-srv.stepSem

	// With the slot free the same request goes through.
	call(t, ts, http.MethodPost, "/v1/campaigns/"+c.ID+"/step", nil, http.StatusOK, nil)
}

// TestDrainDeadline wedges one campaign (its mutex held by a stuck
// operation) and checks Drain still returns within its budget, reports
// the straggler, and checkpoints the healthy campaign behind it.
func TestDrainDeadline(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	dir := t.TempDir()
	srv := NewServer(reg, dir)
	srv.SetDrainTimeout(400 * time.Millisecond)

	wedged, err := reg.StartCampaign("a-wedged", testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := reg.StartCampaign("b-ok", testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, stop, _, err := ok.Step(); err != nil || stop {
		t.Fatalf("step: stop=%v err=%v", stop, err)
	}
	srv.campaigns["a-wedged"] = wedged
	srv.campaigns["b-ok"] = ok

	wedged.mu.Lock() // a step stuck forever
	// Unwedge after Drain so the abandoned goroutine finishes (and stops
	// touching the temp dir) before the test cleans up.
	defer func() {
		wedged.mu.Unlock()
		deadline := time.Now().Add(5 * time.Second)
		for {
			wedged.mu.Lock()
			closed := wedged.closed
			wedged.mu.Unlock()
			if closed {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("abandoned drain goroutine never closed the wedged campaign")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	start := time.Now()
	files, err := srv.Drain()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Drain took %v despite 400ms budget", elapsed)
	}
	if err == nil || !strings.Contains(err.Error(), "a-wedged") {
		t.Fatalf("Drain error = %v, want the wedged campaign reported", err)
	}
	if len(files) != 1 || !strings.Contains(files[0], "b-ok") {
		t.Fatalf("Drain files = %v, want exactly b-ok's checkpoint", files)
	}
	if _, _, err := reg.RestoreCampaign(files[0]); err != nil {
		t.Fatalf("drain checkpoint does not restore: %v", err)
	}
}

// TestVoidedSessionLatchesFailure injects a plain error (not a panic)
// into the batcher mid-step: the engine error voids the session, and the
// campaign must latch into failed rather than limp on a session that can
// no longer answer honestly.
func TestVoidedSessionLatchesFailure(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	c, err := reg.StartCampaign("v", testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	withInjector(t, fault.New(5, fault.Rule{Site: fault.SiteBatcherGrow, Mode: fault.ModeError, Nth: 1}))
	if _, _, _, err := c.Step(); err == nil {
		t.Fatal("step under injected batcher error succeeded")
	}
	if !c.Failed() {
		t.Fatal("campaign not failed after its session voided")
	}
	if st := c.Status(); st.State != "failed" || st.Error == "" {
		t.Fatalf("status = %+v, want failed with error", st)
	}
	if _, err := c.Checkpoint(t.TempDir()); err == nil {
		t.Fatal("checkpoint of a failed campaign succeeded; its state is not trustworthy")
	}
}
