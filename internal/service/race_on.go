//go:build race

package service

// raceEnabled reports whether this build runs under the race detector.
// Allocation-count tests skip themselves when it is on: the detector's
// shadow-memory bookkeeping shows up as mallocs the production build
// never makes.
const raceEnabled = true
