package service

import (
	"testing"

	"repro/internal/sweep"
)

// testSpec is the shared-parameter spec every service test registers
// with: nethept-s clamps to 64 nodes at scale 0.004, so preparation and
// campaigns run in milliseconds (same trick as the sweep tests).
func testSpec() sweep.Spec {
	return sweep.Spec{
		Datasets:     []string{"nethept-s"},
		Models:       []string{"ic"},
		CostSettings: []string{"uniform"},
		Algos:        []string{"addatp"},
		Scale:        0.004,
		K:            5,
		Reps:         2,
		Seed:         7,
		ADGTheta:     1000,
		NSGTheta:     2000,
	}
}

func testKey() Key {
	return Key{Dataset: "nethept-s", Model: "ic", Cost: "uniform", Scale: 0.004}
}

func keyWithCost(cost string) Key {
	k := testKey()
	k.Cost = cost
	return k
}

func TestRegistryAcquireSharesInstance(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	a, err := reg.Acquire(testKey())
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Acquire(testKey())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same key produced two instances")
	}
	pa, err := a.Prepared()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Prepared()
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatal("same instance prepared twice")
	}

	stats := reg.Stats()
	if len(stats) != 1 || stats[0].Refs != 2 || !stats[0].Prepared {
		t.Fatalf("stats = %+v, want one prepared entry with 2 refs", stats)
	}
	if stats[0].N == 0 || stats[0].Targets == 0 {
		t.Fatalf("prepared stats missing graph shape: %+v", stats[0])
	}
	a.Release()
	b.Release()
	if stats := reg.Stats(); len(stats) != 1 || stats[0].Refs != 0 {
		t.Fatalf("after release: stats = %+v, want idle entry kept warm", stats)
	}
}

func TestRegistryRejectsBadKeys(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	bad := []Key{
		{Dataset: "no-such", Model: "ic", Cost: "uniform", Scale: 0.004},
		{Dataset: "nethept-s", Model: "icx", Cost: "uniform", Scale: 0.004},
		{Dataset: "nethept-s", Model: "ic", Cost: "free", Scale: 0.004},
		{Dataset: "nethept-s", Model: "ic", Cost: "uniform", Scale: 0},
	}
	for _, k := range bad {
		if _, err := reg.Acquire(k); err == nil {
			t.Errorf("Acquire(%v) succeeded, want error", k)
		}
	}
	if len(reg.Stats()) != 0 {
		t.Fatal("rejected keys left entries behind")
	}
}

func TestRegistryLRUEvictsIdleOldestFirst(t *testing.T) {
	reg := NewRegistry(testSpec(), 2)
	touch := func(k Key) {
		t.Helper()
		inst, err := reg.Acquire(k)
		if err != nil {
			t.Fatal(err)
		}
		inst.Release()
	}
	// Eviction is metadata-only (preparation is lazy), so three distinct
	// cost settings exercise it without paying three preparations.
	touch(keyWithCost("uniform"))
	touch(keyWithCost("random"))
	touch(keyWithCost("degree-proportional"))

	stats := reg.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d entries, want 2", len(stats))
	}
	for _, s := range stats {
		if s.Key.Cost == "uniform" {
			t.Fatal("LRU kept the oldest idle entry")
		}
	}
}

func TestRegistryNeverEvictsLiveRefs(t *testing.T) {
	reg := NewRegistry(testSpec(), 1)
	held, err := reg.Acquire(keyWithCost("uniform"))
	if err != nil {
		t.Fatal(err)
	}
	for _, cost := range []string{"random", "degree-proportional"} {
		inst, err := reg.Acquire(keyWithCost(cost))
		if err != nil {
			t.Fatal(err)
		}
		inst.Release()
	}
	found := false
	for _, s := range reg.Stats() {
		if s.Key == held.Key {
			found = true
			if s.Refs != 1 {
				t.Fatalf("held entry has %d refs, want 1", s.Refs)
			}
		}
	}
	if !found {
		t.Fatal("entry with a live reference was evicted")
	}
	held.Release()
}

func TestBatcherPoolRoundTrips(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	inst, err := reg.Acquire(testKey())
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Release()

	b1, err := inst.CheckoutBatcher()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := inst.CheckoutBatcher()
	if err != nil {
		t.Fatal(err)
	}
	if b1 == b2 {
		t.Fatal("two concurrent checkouts returned the same batcher")
	}
	inst.ReturnBatcher(b1)
	if got := reg.Stats()[0].Warm; got != 1 {
		t.Fatalf("warm batchers = %d, want 1", got)
	}
	b3, err := inst.CheckoutBatcher()
	if err != nil {
		t.Fatal(err)
	}
	if b3 != b1 {
		t.Fatal("checkout did not reuse the parked batcher")
	}
	if b3.Len() != 0 {
		t.Fatal("reused batcher was not reset")
	}
	inst.ReturnBatcher(b2)
	inst.ReturnBatcher(b3)
}
