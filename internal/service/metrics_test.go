package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/fault"
	"repro/internal/obs"
)

// scrape fetches /metrics from the test server and returns the body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q, want text format 0.0.4", ct)
	}
	return string(body)
}

// TestMetricsEndToEnd drives a campaign through the HTTP API and checks
// that every series family the catalog promises shows up on /metrics
// with plausible values.
func TestMetricsEndToEnd(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	srv := NewServer(reg, t.TempDir())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var st Status
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusCreated, &st)
	call(t, ts, http.MethodPost, "/v1/campaigns/"+st.ID+"/checkpoint", nil, http.StatusOK, nil)
	stepToDone(t, ts, st.ID)

	out := scrape(t, ts)
	instance := testKey().String()
	for _, want := range []string{
		// Request accounting, labeled by route pattern and status.
		`repro_http_requests_total{route="POST /v1/campaigns",code="201"} 1`,
		`repro_http_request_duration_seconds_count{route="POST /v1/campaigns/{id}/step"}`,
		// Step latency histogram with at least one observation.
		"# TYPE repro_campaign_step_duration_seconds histogram",
		// Registry occupancy and preparation counters.
		"repro_registry_entries 1",
		"repro_registry_prepares_total 1",
		// Campaign states: the single campaign finished.
		`repro_campaigns{state="done"} 1`,
		`repro_campaigns{state="running"} 0`,
		// Checkpoint write outcome.
		`repro_checkpoint_writes_total{outcome="ok"} 1`,
		// Sampler traffic bridged per instance key.
		fmt.Sprintf("repro_rr_sets_drawn_total{instance=%q}", instance),
		fmt.Sprintf("repro_rr_visits_total{instance=%q}", instance),
		fmt.Sprintf("repro_rr_edge_touches_total{instance=%q}", instance),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", out)
	}

	if c := srv.metrics.stepDur.Count(); c < 2 {
		t.Errorf("step-duration histogram has %d observations, want >= 2", c)
	}
	drawn := srv.metrics.rrDrawn.With(instance).Value()
	if drawn <= 0 {
		t.Errorf("rr_sets_drawn_total = %d, want > 0 after a full campaign", drawn)
	}
}

// TestScrapeWhileStepping scrapes /metrics concurrently with stepping
// campaigns (run under -race in CI): no data race, and every scrape
// stays well-formed enough to carry the step histogram.
func TestScrapeWhileStepping(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	srv := NewServer(reg, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var st Status
			call(t, ts, http.MethodPost, "/v1/campaigns",
				map[string]any{"seed": 1000 + w}, http.StatusCreated, &st)
			stepToDone(t, ts, st.ID)
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	scrapes := 0
	for {
		select {
		case <-done:
			if scrapes == 0 {
				t.Fatal("campaigns finished before a single concurrent scrape")
			}
			out := scrape(t, ts) // one more after the dust settles
			if !strings.Contains(out, "repro_campaign_step_duration_seconds_count") {
				t.Fatalf("final scrape missing step histogram:\n%s", out)
			}
			return
		default:
			_ = scrape(t, ts)
			scrapes++
		}
	}
}

// TestRetryAfterHintTracksStepLatency covers the 429 backpressure
// bugfix: the hint follows the observed p50 step latency instead of a
// hardcoded 1, and clamps to >= 1s when steps are fast or unobserved.
func TestRetryAfterHintTracksStepLatency(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	if got := m.retryAfterSeconds(); got != 1 {
		t.Errorf("no observations: hint = %d, want clamp to 1", got)
	}
	for i := 0; i < 10; i++ {
		m.stepDur.Observe(0.002) // fast steps: sub-second p50 clamps up to 1
	}
	if got := m.retryAfterSeconds(); got != 1 {
		t.Errorf("fast steps: hint = %d, want 1", got)
	}
	for i := 0; i < 100; i++ {
		m.stepDur.Observe(4.0) // slow steps dominate: p50 bucket bound is 5s
	}
	if got := m.retryAfterSeconds(); got != 5 {
		t.Errorf("slow steps: hint = %d, want 5 (ceil of the p50 bucket bound)", got)
	}
	var nilM *Metrics
	if got := nilM.retryAfterSeconds(); got != 1 {
		t.Errorf("nil metrics: hint = %d, want 1", got)
	}
}

// TestThrottledResponseCarriesDerivedRetryAfter saturates a 1-slot step
// semaphore and checks the 429 path: throttled counter moves and the
// Retry-After header is the derived hint.
func TestThrottledResponseCarriesDerivedRetryAfter(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	srv := NewServer(reg, "")
	srv.SetMaxConcurrentSteps(1)
	srv.stepSem <- struct{}{} // wedge the only slot

	var st Status
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusCreated, &st)

	resp, err := ts.Client().Post(ts.URL+"/v1/campaigns/"+st.ID+"/step", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After %q, want \"1\" (no slow steps observed yet)", got)
	}
	if got := srv.metrics.throttled.Value(); got != 1 {
		t.Fatalf("throttled counter = %d, want 1", got)
	}

	// After slow observed steps the same saturation advertises a longer
	// back-off.
	for i := 0; i < 10; i++ {
		srv.metrics.stepDur.Observe(4.0)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/campaigns/"+st.ID+"/step", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After %q after slow steps, want \"5\"", got)
	}
	<-srv.stepSem // unwedge so Close doesn't hang a goroutine
}

// TestRegistryKeepsIdleEntryUnderLiveLoad is the eviction-semantics
// regression test: with max live campaigns holding references, one
// just-released idle instance must stay warm — -max-instances caps the
// idle population, not the total entry count.
func TestRegistryKeepsIdleEntryUnderLiveLoad(t *testing.T) {
	const max = 2
	reg := NewRegistry(testSpec(), max)

	// max entries with live references.
	var live []*Instance
	for _, cost := range []string{"uniform", "random"} {
		inst, err := reg.Acquire(keyWithCost(cost))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, inst)
	}
	// One more key, acquired and released: the lone idle entry.
	idle, err := reg.Acquire(keyWithCost("degree-proportional"))
	if err != nil {
		t.Fatal(err)
	}
	idle.Release()

	stats := reg.Stats()
	if len(stats) != max+1 {
		t.Fatalf("got %d entries, want %d (max live + 1 idle kept warm)", len(stats), max+1)
	}
	found := false
	for _, s := range stats {
		if s.Key.Cost == "degree-proportional" {
			found = true
			if s.Refs != 0 {
				t.Fatalf("idle entry has %d refs, want 0", s.Refs)
			}
		}
	}
	if !found {
		t.Fatal("idle instance was evicted while live refs filled the cap (the pre-fix behavior)")
	}
	for _, inst := range live {
		inst.Release()
	}
}

// TestEvictionCounterAndGauges checks the registry metrics: evictions
// count and the occupancy gauges refresh at scrape time.
func TestEvictionCounterAndGauges(t *testing.T) {
	reg := NewRegistry(testSpec(), 1)
	m := NewMetrics(obs.NewRegistry())
	reg.AttachMetrics(m)
	t.Cleanup(func() { fault.SetObserver(nil) })

	for _, cost := range []string{"uniform", "random", "degree-proportional"} {
		inst, err := reg.Acquire(keyWithCost(cost))
		if err != nil {
			t.Fatal(err)
		}
		inst.Release()
	}
	if got := m.evictions.Value(); got != 2 {
		t.Fatalf("evictions = %d, want 2 (three touches through a 1-idle cap)", got)
	}
	var b strings.Builder
	if err := m.Reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"repro_registry_entries 1",
		"repro_registry_idle_entries 1",
		"repro_registry_evictions_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

// TestCampaignTrafficBridgeMatchesResult cross-checks the bridged
// counters against the campaign's own result accounting.
func TestCampaignTrafficBridgeMatchesResult(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	m := NewMetrics(obs.NewRegistry())
	reg.AttachMetrics(m)
	t.Cleanup(func() { fault.SetObserver(nil) })

	c, err := reg.StartCampaign("t", testKey(), adaptive.AlgoADDATP, 4242, true)
	if err != nil {
		t.Fatal(err)
	}
	res := driveCampaign(t, c)
	c.Close()

	instance := testKey().String()
	if got, want := m.rrDrawn.With(instance).Value(), res.RRDrawn; got != want {
		t.Errorf("bridged drawn = %d, result says %d", got, want)
	}
	if got, want := m.rrReused.With(instance).Value(), res.RRReused; got != want {
		t.Errorf("bridged reused = %d, result says %d", got, want)
	}
	if m.rrVisits.With(instance).Value() <= 0 || m.rrTouches.With(instance).Value() <= 0 {
		t.Error("visit/edge-touch bridge stayed zero across a full campaign")
	}
}
