package service

import (
	"strings"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/sweep"
)

// TestMutatedCampaignEpochKeying is the regression test for topology-blind
// registry keys: after a campaign mutates its graph, its instance must
// live under the epoch-bumped key, the base entry must keep the pristine
// graph, and a fresh campaign on the base key must never see the mutated
// topology or its warm state.
func TestMutatedCampaignEpochKeying(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	c1, err := reg.StartCampaign("m1", testKey(), adaptive.AlgoADDATP, 4242, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, stop, _, err := c1.Step(); err != nil || stop {
		t.Fatalf("first round: stop=%v err=%v", stop, err)
	}

	baseG := mustPrep(t, c1.inst).G
	if baseG.Epoch() != 0 {
		t.Fatalf("base graph at epoch %d", baseG.Epoch())
	}

	// Misuse gates before any mutation happens.
	if _, err := c1.Mutate(nil, nil, 0, 0); err == nil {
		t.Fatal("empty mutation succeeded")
	}

	info, err := c1.Mutate(nil, nil, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || c1.Key.Epoch != 1 || info.Deleted < 1 || info.Touched < 1 {
		t.Fatalf("mutate info %+v, campaign key %v", info, c1.Key)
	}
	mutG := mustPrep(t, c1.inst).G
	if mutG == baseG || mutG.Epoch() != 1 {
		t.Fatalf("campaign instance still on the base graph (epoch %d)", mutG.Epoch())
	}

	// The base entry must still hold the pristine graph — this is the
	// stale-warm-instance regression: before epoch keying, c2 would share
	// c1's (now mutated) instance.
	c2, err := reg.StartCampaign("m2", testKey(), adaptive.AlgoADDATP, 4242, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if g2 := mustPrep(t, c2.inst).G; g2 != baseG || g2.Epoch() != 0 {
		t.Fatalf("fresh base campaign got graph at epoch %d (mutated instance leaked)", g2.Epoch())
	}
	if c2.inst == c1.inst || c2.Key == c1.Key {
		t.Fatal("base and mutated campaigns share an instance")
	}

	// The derived entry is acquirable while adopted; unknown epochs are not
	// preparable.
	dkey := testKey()
	dkey.Epoch = 1
	d, err := reg.Acquire(dkey)
	if err != nil {
		t.Fatal(err)
	}
	if d != c1.inst {
		t.Fatal("derived key resolved to a different instance")
	}
	d.Release()
	ghost := testKey()
	ghost.Epoch = 99
	if _, err := reg.Acquire(ghost); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("acquiring an unadopted epoch: %v", err)
	}

	// Both campaigns still run to completion on their own topologies.
	r1 := driveCampaign(t, c1)
	r2 := driveCampaign(t, c2)
	if len(r1.Seeds) == 0 || len(r2.Seeds) == 0 {
		t.Fatalf("degenerate campaigns: %d and %d seeds", len(r1.Seeds), len(r2.Seeds))
	}
}

func mustPrep(t *testing.T, i *Instance) *sweep.Prepared {
	t.Helper()
	p, err := i.Prepared()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMutatedCampaignCheckpointRestore: a campaign mutated mid-flight,
// checkpointed, and restored in a fresh registry entry must finish
// identically to the same mutated campaign run straight through — the
// checkpoint carries the delta log, and the restore path replays it from
// the base instance and re-adopts the epoch key.
func TestMutatedCampaignCheckpointRestore(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	dir := t.TempDir()

	mutated := func(id string) *Campaign {
		c, err := reg.StartCampaign(id, testKey(), adaptive.AlgoADDATP, 31, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, stop, _, err := c.Step(); err != nil || stop {
			t.Fatalf("pre-mutation round: stop=%v err=%v", stop, err)
		}
		if _, err := c.Mutate(nil, nil, 5, 5); err != nil {
			t.Fatal(err)
		}
		return c
	}

	ref := mutated("ref")
	want := driveCampaign(t, ref)
	ref.Close()

	cut := mutated("cut")
	if _, stop, _, err := cut.Step(); err != nil || stop {
		t.Fatalf("post-mutation round: stop=%v err=%v", stop, err)
	}
	file, err := cut.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	cut.Close()

	restored, _, err := reg.RestoreCampaign(file)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Key.Epoch != 1 {
		t.Fatalf("restored campaign at epoch %d, want 1", restored.Key.Epoch)
	}
	if g := mustPrep(t, restored.inst).G; g.Epoch() != 1 {
		t.Fatalf("restored instance graph at epoch %d, want 1", g.Epoch())
	}
	got := driveCampaign(t, restored)
	restored.Close()
	sameOutcome(t, got, want, "restored-mutated vs straight-through")
}
