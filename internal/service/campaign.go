package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/adaptive"
	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// Campaign is one live adaptive session plus its feedback source. All
// methods serialize on the campaign mutex; a Campaign outlives any single
// HTTP request.
type Campaign struct {
	ID       string
	Key      Key
	Algo     string
	Seed     uint64
	Simulate bool

	mu      sync.Mutex
	reg     *Registry
	inst    *Instance
	sess    *adaptive.Session
	env     *adaptive.Environment // nil in external-feedback mode
	batcher *ris.Batcher
	closed  bool
}

// mutationWorldRNG derives the realization stream for the world sampled
// after the n-th topology mutation. It is a pure function of (campaign
// seed, n) — deliberately independent of the graph-dependent base world
// stream — so a restore needs only the replayed graph and the mutation
// count to rebuild the environment in lockstep, and the base campaign's
// realization-0 seed parity with `repro run` is untouched.
func mutationWorldRNG(seed uint64, n int) *rng.RNG {
	return rng.New(seed ^ (0x9E3779B97F4A7C15 * uint64(n)))
}

// derivedPrepared clones a preparation around the session's post-delta
// instance. ImmRes stays the base preparation's: target selection
// happened on the base graph and is frozen for the campaign's lifetime.
func derivedPrepared(base *sweep.Prepared, sess *adaptive.Session) *sweep.Prepared {
	inst := sess.Instance()
	return &sweep.Prepared{G: inst.G, DS: base.DS, Inst: inst, ImmRes: base.ImmRes, SetupMS: base.SetupMS}
}

// optsFromSpec mirrors sweep.Execute's RunOptions construction, so a
// served campaign runs under exactly the parameters a `repro run` with
// the same spec would.
func optsFromSpec(spec *sweep.Spec) adaptive.RunOptions {
	return adaptive.RunOptions{
		Sampling: adaptive.SamplingOptions{
			Policy:  spec.Sampler,
			Zeta:    spec.Zeta,
			Eps:     spec.Eps,
			Delta:   spec.Delta,
			Workers: spec.Workers,
		},
		ADGTheta: spec.ADGTheta,
		NSGTheta: spec.NSGTheta,
	}
}

// StartCampaign acquires key's instance and opens a session for algo.
//
// The RNG discipline matches adaptive.RunExperiment exactly: one root
// stream from seed, a world split, then an algorithm split — the world
// split is consumed even in external-feedback mode, so a simulated and an
// external campaign with the same seed propose identical first seeds, and
// a simulated campaign with seed S+100 reproduces realization 0 of
// `repro run --seed S`.
func (r *Registry) StartCampaign(id string, key Key, algo string, seed uint64, simulate bool) (*Campaign, error) {
	inst, err := r.Acquire(key)
	if err != nil {
		return nil, err
	}
	c, err := r.openCampaign(inst, id, key, algo, seed, simulate, nil)
	if err != nil {
		inst.Release()
		return nil, err
	}
	return c, nil
}

// openCampaign builds the campaign around an already acquired instance.
// resume, when non-nil, restores the session from a checkpoint blob
// instead of starting fresh. Ownership of inst transfers on success only.
func (r *Registry) openCampaign(inst *Instance, id string, key Key, algo string, seed uint64, simulate bool, resume []byte) (*Campaign, error) {
	prep, err := inst.Prepared()
	if err != nil {
		return nil, err
	}
	b, err := inst.CheckoutBatcher()
	if err != nil {
		return nil, err
	}
	spec := r.Spec()
	opts := optsFromSpec(&spec)
	opts.Batcher = b

	root := rng.New(seed)
	worldRNG := root.Split()
	var sess *adaptive.Session
	if resume == nil {
		algoRNG := root.Split()
		sess, err = adaptive.NewSession(prep.Inst, algo, opts, algoRNG)
	} else {
		// The session RNG state rides in the blob; only the world stream is
		// re-derived here, for the environment below.
		sess, err = adaptive.ResumeSession(prep.Inst, resume, adaptive.ResumeOptions{Batcher: b})
	}
	if err != nil {
		inst.ReturnBatcher(b)
		return nil, err
	}
	if sess.Algo() != algo {
		inst.ReturnBatcher(b)
		return nil, fmt.Errorf("service: checkpoint algorithm %q, campaign says %q", sess.Algo(), algo)
	}
	var env *adaptive.Environment
	if simulate {
		// A campaign restored mid-mutation lives on the replayed graph; its
		// realization comes from the last mutation's world stream, exactly
		// the one Mutate sampled before the checkpoint. The base world split
		// above is consumed either way, preserving seed parity.
		g, wr := prep.G, worldRNG
		if n := sess.Mutations(); n > 0 {
			g, wr = sess.Instance().G, mutationWorldRNG(seed, n)
		}
		rz := cascade.Sample(g, prep.Inst.Model, wr)
		// The session's residual already reflects every observation made
		// before the checkpoint, so the environment resumes in lockstep.
		env = adaptive.NewEnvironmentAt(rz, sess.CloneResidual(), sess.Spread())
	}
	if n := sess.Mutations(); n > 0 {
		// Re-home the campaign on the derived instance so its warm state
		// pools under the topology epoch, never the base key.
		dkey := key.base()
		dkey.Epoch = int64(n)
		derived := r.AdoptDerived(dkey, derivedPrepared(prep, sess))
		inst.Release()
		inst, key = derived, dkey
	}
	return &Campaign{
		ID: id, Key: key, Algo: algo, Seed: seed, Simulate: simulate,
		reg: r, inst: inst, sess: sess, env: env, batcher: b,
	}, nil
}

func (c *Campaign) failIfClosed() error {
	if c.closed {
		return fmt.Errorf("service: campaign %s is closed", c.ID)
	}
	return nil
}

// Next advances to the campaign's next proposal (external-feedback mode;
// in simulate mode use Step). Calling it again before Observe returns the
// same pending seed.
func (c *Campaign) Next() (seed graph.NodeID, stop bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.failIfClosed(); err != nil {
		return 0, true, err
	}
	return c.sess.NextSeed()
}

// Observe feeds back the realized activations of the pending proposal
// (external-feedback mode).
func (c *Campaign) Observe(activated []graph.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.failIfClosed(); err != nil {
		return err
	}
	return c.sess.Observe(activated)
}

// Step runs one full propose-observe round against the campaign's own
// simulated realization (simulate mode only).
func (c *Campaign) Step() (seed graph.NodeID, stop bool, activated []graph.NodeID, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.failIfClosed(); err != nil {
		return 0, true, nil, err
	}
	if c.env == nil {
		return 0, true, nil, fmt.Errorf("service: campaign %s runs on external feedback; use next/observe", c.ID)
	}
	u, stop, err := c.sess.NextSeed()
	if err != nil || stop {
		return 0, true, nil, err
	}
	a := c.env.Observe(u)
	if err := c.sess.Observe(a); err != nil {
		return 0, true, nil, err
	}
	return u, false, a, nil
}

// MutateInfo reports one applied topology delta.
type MutateInfo struct {
	Key      Key   `json:"key"`   // the campaign's new (epoch-bumped) key
	Epoch    int64 `json:"epoch"` // topology epoch after the delta
	Inserted int   `json:"inserted"`
	Deleted  int   `json:"deleted"`
	Touched  int   `json:"touched"` // nodes whose RR membership invalidates a set
}

// Mutate applies a topology delta to the live campaign between rounds:
// either the explicit edge lists, or — when churnPct > 0 — a generated
// churn delta replacing churnPct percent of the current edges
// (gen.ChurnDeltas seeded with churnSeed, deterministic and replayable).
// The session invalidates exactly the RR sets touching a changed edge
// (adaptive.Session.Mutate), the simulated environment re-samples its
// realization on the new graph, and the campaign re-homes onto a derived
// registry instance keyed by the new topology epoch.
func (c *Campaign) Mutate(inserts, deletes []graph.Edge, churnPct float64, churnSeed uint64) (*MutateInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.failIfClosed(); err != nil {
		return nil, err
	}
	if churnPct > 0 {
		if len(inserts)+len(deletes) > 0 {
			return nil, fmt.Errorf("service: mutate takes explicit edges or churn_pct, not both")
		}
		inserts, deletes = gen.ChurnDeltas(c.sess.Instance().G, churnPct/100, rng.New(churnSeed))
	} else if len(inserts)+len(deletes) == 0 {
		return nil, fmt.Errorf("service: empty mutation (give inserts/deletes or churn_pct > 0)")
	}
	dres, err := c.sess.Mutate(inserts, deletes)
	if err != nil {
		return nil, err
	}
	n := c.sess.Mutations()
	if c.env != nil {
		rz := cascade.Sample(c.sess.Instance().G, c.sess.Instance().Model, mutationWorldRNG(c.Seed, n))
		c.env = adaptive.NewEnvironmentAt(rz, c.sess.CloneResidual(), c.sess.Spread())
	}
	// Re-home onto the epoch-keyed derived instance; the old reference
	// (base, or the previous epoch's) goes back to the registry.
	prep, err := c.inst.Prepared()
	if err != nil {
		return nil, err
	}
	dkey := c.Key.base()
	dkey.Epoch = int64(n)
	derived := c.reg.AdoptDerived(dkey, derivedPrepared(prep, c.sess))
	c.inst.Release()
	c.inst, c.Key = derived, dkey
	return &MutateInfo{
		Key: dkey, Epoch: int64(n),
		Inserted: dres.Inserted, Deleted: dres.Deleted, Touched: len(dres.Touched),
	}, nil
}

// Status is the campaign's progress snapshot.
type Status struct {
	ID       string         `json:"id"`
	Key      Key            `json:"key"`
	Algo     string         `json:"algo"`
	Seed     uint64         `json:"seed"`
	Simulate bool           `json:"simulate"`
	Rounds   int            `json:"rounds"`
	Spread   int            `json:"spread"`
	Done     bool           `json:"done"`
	Pending  *graph.NodeID  `json:"pending,omitempty"`
	Seeds    []graph.NodeID `json:"seeds"`
}

// Status snapshots progress.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID: c.ID, Key: c.Key, Algo: c.Algo, Seed: c.Seed, Simulate: c.Simulate,
		Rounds: c.sess.Rounds(), Spread: c.sess.Spread(), Done: c.sess.Done(),
		Seeds: c.sess.Seeds(),
	}
	if p, ok := c.sess.Pending(); ok {
		st.Pending = &p
	}
	return st
}

// Result snapshots the campaign outcome in the batch RunResult shape.
func (c *Campaign) Result() *adaptive.RunResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess.Result()
}

// Close releases the campaign's resources (warm batcher back to the
// instance pool, instance reference back to the registry). Idempotent.
func (c *Campaign) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.inst.ReturnBatcher(c.batcher)
	c.batcher = nil
	c.inst.Release()
}

// ckptHeader is the JSON first line of a campaign checkpoint file — the
// routing information Restore needs before it can rebuild the session
// from the binary blob that follows.
type ckptHeader struct {
	Version  int    `json:"version"`
	ID       string `json:"id"`
	Key      Key    `json:"key"`
	Algo     string `json:"algo"`
	Seed     uint64 `json:"seed"`
	Simulate bool   `json:"simulate"`
	Rounds   int    `json:"rounds"`
}

const ckptEnvelopeVersion = 1

// Checkpoint writes the campaign to dir as campaign-<id>.ckpt (temp file
// + atomic rename, so a crash mid-write never leaves a torn file under
// the final name) and returns the path.
func (c *Campaign) Checkpoint(dir string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.failIfClosed(); err != nil {
		return "", err
	}
	blob, err := c.sess.Checkpoint()
	if err != nil {
		return "", err
	}
	hdr, err := json.Marshal(ckptHeader{
		Version: ckptEnvelopeVersion, ID: c.ID, Key: c.Key, Algo: c.Algo,
		Seed: c.Seed, Simulate: c.Simulate, Rounds: c.sess.Rounds(),
	})
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, "campaign-"+c.ID+".ckpt")
	tmp, err := os.CreateTemp(dir, ".campaign-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(append(hdr, '\n')); err != nil {
		tmp.Close()
		return "", err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	return final, nil
}

// RestoreCampaign reads a checkpoint file and resumes the campaign it
// holds: same ID, instance key, algorithm, seed, and mode, continuing
// bit-identically from where Checkpoint left it.
func (r *Registry) RestoreCampaign(file string) (*Campaign, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("service: %s: no header line (not a campaign checkpoint)", file)
	}
	var hdr ckptHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, fmt.Errorf("service: %s: corrupt header: %w", file, err)
	}
	if hdr.Version != ckptEnvelopeVersion {
		return nil, fmt.Errorf("service: %s: envelope version %d not supported (this build reads %d)",
			file, hdr.Version, ckptEnvelopeVersion)
	}
	// Always restore through the base instance: the session blob carries
	// the delta log, and openCampaign replays it and re-adopts the derived
	// epoch key — a mutated campaign's graph cannot be Prepared from disk.
	inst, err := r.Acquire(hdr.Key.base())
	if err != nil {
		return nil, err
	}
	c, err := r.openCampaign(inst, hdr.ID, hdr.Key.base(), hdr.Algo, hdr.Seed, hdr.Simulate, data[nl+1:])
	if err != nil {
		inst.Release()
		return nil, fmt.Errorf("service: %s: %w", file, err)
	}
	if c.Key.Epoch != hdr.Key.Epoch {
		c.Close()
		return nil, fmt.Errorf("service: %s: checkpoint says epoch %d, replayed session is at %d", file, hdr.Key.Epoch, c.Key.Epoch)
	}
	return c, nil
}
