package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/cascade"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// Campaign is one live adaptive session plus its feedback source. All
// methods serialize on the campaign mutex; a Campaign outlives any single
// HTTP request.
type Campaign struct {
	ID       string
	Key      Key
	Algo     string
	Seed     uint64
	Simulate bool

	mu      sync.Mutex
	reg     *Registry
	inst    *Instance
	sess    *adaptive.Session
	env     *adaptive.Environment // nil in external-feedback mode
	batcher *ris.Batcher
	closed  bool

	// failErr, once set, marks the campaign permanently failed: a panic
	// inside an operation (caught by guard) or a voided session. Every
	// later operation answers with this error; Status reports the state
	// and captured stack so the failure is inspectable, and the daemon's
	// other campaigns keep serving.
	failErr   error
	failStack string

	// state mirrors the campaign's lifecycle phase as a lock-free word so
	// the metrics gather can count states without taking c.mu — a scrape
	// must never block behind a campaign wedged mid-step.
	state atomic.Int32

	// m plus the pre-resolved traffic handles and last-published batcher
	// readings make the per-step instrumentation epilogue allocation-free.
	// m is nil on campaigns opened from a bare (unattached) registry.
	m                                              *Metrics
	traf                                           trafficCounters
	lastDrawn, lastReused, lastVisits, lastTouches int64
}

// Campaign lifecycle phases, as stored in Campaign.state.
const (
	campaignRunning int32 = iota
	campaignDone
	campaignFailed
)

// mutationWorldRNG derives the realization stream for the world sampled
// after the n-th topology mutation. It is a pure function of (campaign
// seed, n) — deliberately independent of the graph-dependent base world
// stream — so a restore needs only the replayed graph and the mutation
// count to rebuild the environment in lockstep, and the base campaign's
// realization-0 seed parity with `repro run` is untouched.
func mutationWorldRNG(seed uint64, n int) *rng.RNG {
	return rng.New(seed ^ (0x9E3779B97F4A7C15 * uint64(n)))
}

// derivedPrepared clones a preparation around the session's post-delta
// instance. ImmRes stays the base preparation's: target selection
// happened on the base graph and is frozen for the campaign's lifetime.
func derivedPrepared(base *sweep.Prepared, sess *adaptive.Session) *sweep.Prepared {
	inst := sess.Instance()
	return &sweep.Prepared{G: inst.G, DS: base.DS, Inst: inst, ImmRes: base.ImmRes, SetupMS: base.SetupMS}
}

// optsFromSpec mirrors sweep.Execute's RunOptions construction, so a
// served campaign runs under exactly the parameters a `repro run` with
// the same spec would.
func optsFromSpec(spec *sweep.Spec) adaptive.RunOptions {
	return adaptive.RunOptions{
		Sampling: adaptive.SamplingOptions{
			Policy:  spec.Sampler,
			Zeta:    spec.Zeta,
			Eps:     spec.Eps,
			Delta:   spec.Delta,
			Workers: spec.Workers,
		},
		ADGTheta: spec.ADGTheta,
		NSGTheta: spec.NSGTheta,
	}
}

// StartCampaign acquires key's instance and opens a session for algo.
//
// The RNG discipline matches adaptive.RunExperiment exactly: one root
// stream from seed, a world split, then an algorithm split — the world
// split is consumed even in external-feedback mode, so a simulated and an
// external campaign with the same seed propose identical first seeds, and
// a simulated campaign with seed S+100 reproduces realization 0 of
// `repro run --seed S`.
func (r *Registry) StartCampaign(id string, key Key, algo string, seed uint64, simulate bool) (*Campaign, error) {
	inst, err := r.Acquire(key)
	if err != nil {
		return nil, err
	}
	c, err := r.openCampaign(inst, id, key, algo, seed, simulate, nil)
	if err != nil {
		inst.Release()
		return nil, err
	}
	return c, nil
}

// openCampaign builds the campaign around an already acquired instance.
// resume, when non-nil, restores the session from a checkpoint blob
// instead of starting fresh. Ownership of inst transfers on success only.
func (r *Registry) openCampaign(inst *Instance, id string, key Key, algo string, seed uint64, simulate bool, resume []byte) (*Campaign, error) {
	prep, err := inst.Prepared()
	if err != nil {
		return nil, err
	}
	b, err := inst.CheckoutBatcher()
	if err != nil {
		return nil, err
	}
	spec := r.Spec()
	opts := optsFromSpec(&spec)
	opts.Batcher = b

	root := rng.New(seed)
	worldRNG := root.Split()
	var sess *adaptive.Session
	if resume == nil {
		algoRNG := root.Split()
		sess, err = adaptive.NewSession(prep.Inst, algo, opts, algoRNG)
	} else {
		// The session RNG state rides in the blob; only the world stream is
		// re-derived here, for the environment below.
		sess, err = adaptive.ResumeSession(prep.Inst, resume, adaptive.ResumeOptions{Batcher: b})
	}
	if err != nil {
		inst.ReturnBatcher(b)
		return nil, err
	}
	if sess.Algo() != algo {
		inst.ReturnBatcher(b)
		return nil, fmt.Errorf("service: checkpoint algorithm %q, campaign says %q", sess.Algo(), algo)
	}
	var env *adaptive.Environment
	if simulate {
		// A campaign restored mid-mutation lives on the replayed graph; its
		// realization comes from the last mutation's world stream, exactly
		// the one Mutate sampled before the checkpoint. The base world split
		// above is consumed either way, preserving seed parity.
		g, wr := prep.G, worldRNG
		if n := sess.Mutations(); n > 0 {
			g, wr = sess.Instance().G, mutationWorldRNG(seed, n)
		}
		rz := cascade.Sample(g, prep.Inst.Model, wr)
		// The session's residual already reflects every observation made
		// before the checkpoint, so the environment resumes in lockstep.
		env = adaptive.NewEnvironmentAt(rz, sess.CloneResidual(), sess.Spread())
	}
	if n := sess.Mutations(); n > 0 {
		// Re-home the campaign on the derived instance so its warm state
		// pools under the topology epoch, never the base key.
		dkey := key.base()
		dkey.Epoch = int64(n)
		derived := r.AdoptDerived(dkey, derivedPrepared(prep, sess))
		inst.Release()
		inst, key = derived, dkey
	}
	c := &Campaign{
		ID: id, Key: key, Algo: algo, Seed: seed, Simulate: simulate,
		reg: r, inst: inst, sess: sess, env: env, batcher: b,
	}
	if m := r.metrics; m != nil {
		c.m = m
		c.traf = m.trafficFor(key)
	}
	if sess.Done() {
		c.state.Store(campaignDone)
	}
	return c, nil
}

func (c *Campaign) failIfClosed() error {
	if c.closed {
		return fmt.Errorf("service: campaign %s is closed", c.ID)
	}
	if c.failErr != nil {
		return fmt.Errorf("service: campaign %s is failed: %w", c.ID, c.failErr)
	}
	return nil
}

// guard is the blast-radius boundary around every campaign operation:
// deferred under c.mu (after the unlock defer, so it runs first), it
// converts a panic into a permanent failed state — error and stack
// captured into the campaign, returned as a plain error — instead of
// letting it unwind through the daemon. It also latches a voided session
// (an engine error that destroyed replay determinism) as failure, so a
// campaign that can no longer make honest progress says so on every call
// rather than limping.
func (c *Campaign) guard(err *error) {
	if r := recover(); r != nil {
		c.failErr = fmt.Errorf("panic: %v", r)
		c.failStack = string(debug.Stack())
		c.state.Store(campaignFailed)
		*err = fmt.Errorf("service: campaign %s is failed: %w", c.ID, c.failErr)
		return
	}
	if c.failErr == nil && !c.closed && c.sess.Err() != nil {
		c.failErr = c.sess.Err()
		c.state.Store(campaignFailed)
	}
}

// finishStep is the instrumentation epilogue of every campaign advance,
// deferred under c.mu so it runs right after guard: it refreshes the
// lock-free state word and, when metrics are attached, records the step
// latency and bridges the batcher's traffic deltas into the
// instance-labeled counters. It must stay allocation-free — it sits
// inside the steady-state step loop the zero-alloc test pins.
func (c *Campaign) finishStep(start time.Time) {
	switch {
	case c.failErr != nil:
		c.state.Store(campaignFailed)
	case c.sess.Done():
		c.state.Store(campaignDone)
	}
	if c.m == nil {
		return
	}
	c.m.stepDur.Observe(time.Since(start).Seconds())
	c.publishTraffic()
}

// publishTraffic adds the batcher's accounting since the previous
// publish to the pre-resolved per-instance counters: the readings are
// monotone between campaign checkouts (CheckoutBatcher resets them), so
// the deltas are non-negative and four atomic adds suffice.
func (c *Campaign) publishTraffic() {
	b := c.batcher
	if b == nil || c.traf.drawn == nil {
		return
	}
	if v := b.Drawn(); v > c.lastDrawn {
		c.traf.drawn.Add(v - c.lastDrawn)
		c.lastDrawn = v
	}
	if v := b.Reused(); v > c.lastReused {
		c.traf.reused.Add(v - c.lastReused)
		c.lastReused = v
	}
	if v := b.Visits(); v > c.lastVisits {
		c.traf.visits.Add(v - c.lastVisits)
		c.lastVisits = v
	}
	if v := b.EdgeTouches(); v > c.lastTouches {
		c.traf.touches.Add(v - c.lastTouches)
		c.lastTouches = v
	}
}

// Next advances to the campaign's next proposal (external-feedback mode;
// in simulate mode use Step). Calling it again before Observe returns the
// same pending seed.
func (c *Campaign) Next() (seed graph.NodeID, stop bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.finishStep(time.Now())
	defer c.guard(&err)
	if err := c.failIfClosed(); err != nil {
		return 0, true, err
	}
	return c.sess.NextSeed()
}

// Observe feeds back the realized activations of the pending proposal
// (external-feedback mode).
func (c *Campaign) Observe(activated []graph.NodeID) (err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.finishStep(time.Now())
	defer c.guard(&err)
	if err := c.failIfClosed(); err != nil {
		return err
	}
	return c.sess.Observe(activated)
}

// Step runs one full propose-observe round against the campaign's own
// simulated realization (simulate mode only).
func (c *Campaign) Step() (seed graph.NodeID, stop bool, activated []graph.NodeID, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.finishStep(time.Now())
	defer c.guard(&err)
	if err := c.failIfClosed(); err != nil {
		return 0, true, nil, err
	}
	if c.env == nil {
		return 0, true, nil, fmt.Errorf("service: campaign %s runs on external feedback; use next/observe", c.ID)
	}
	u, stop, err := c.sess.NextSeed()
	if err != nil || stop {
		return 0, true, nil, err
	}
	a := c.env.Observe(u)
	if err := c.sess.Observe(a); err != nil {
		return 0, true, nil, err
	}
	return u, false, a, nil
}

// MutateInfo reports one applied topology delta.
type MutateInfo struct {
	Key      Key   `json:"key"`   // the campaign's new (epoch-bumped) key
	Epoch    int64 `json:"epoch"` // topology epoch after the delta
	Inserted int   `json:"inserted"`
	Deleted  int   `json:"deleted"`
	Touched  int   `json:"touched"` // nodes whose RR membership invalidates a set
}

// Mutate applies a topology delta to the live campaign between rounds:
// either the explicit edge lists, or — when churnPct > 0 — a generated
// churn delta replacing churnPct percent of the current edges
// (gen.ChurnDeltas seeded with churnSeed, deterministic and replayable).
// The session invalidates exactly the RR sets touching a changed edge
// (adaptive.Session.Mutate), the simulated environment re-samples its
// realization on the new graph, and the campaign re-homes onto a derived
// registry instance keyed by the new topology epoch.
func (c *Campaign) Mutate(inserts, deletes []graph.Edge, churnPct float64, churnSeed uint64) (info *MutateInfo, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.guard(&err)
	if err := c.failIfClosed(); err != nil {
		return nil, err
	}
	if churnPct > 0 {
		if len(inserts)+len(deletes) > 0 {
			return nil, fmt.Errorf("service: mutate takes explicit edges or churn_pct, not both")
		}
		inserts, deletes = gen.ChurnDeltas(c.sess.Instance().G, churnPct/100, rng.New(churnSeed))
	} else if len(inserts)+len(deletes) == 0 {
		return nil, fmt.Errorf("service: empty mutation (give inserts/deletes or churn_pct > 0)")
	}
	dres, err := c.sess.Mutate(inserts, deletes)
	if err != nil {
		return nil, err
	}
	n := c.sess.Mutations()
	if c.env != nil {
		rz := cascade.Sample(c.sess.Instance().G, c.sess.Instance().Model, mutationWorldRNG(c.Seed, n))
		c.env = adaptive.NewEnvironmentAt(rz, c.sess.CloneResidual(), c.sess.Spread())
	}
	// Re-home onto the epoch-keyed derived instance; the old reference
	// (base, or the previous epoch's) goes back to the registry.
	prep, err := c.inst.Prepared()
	if err != nil {
		return nil, err
	}
	dkey := c.Key.base()
	dkey.Epoch = int64(n)
	derived := c.reg.AdoptDerived(dkey, derivedPrepared(prep, c.sess))
	c.inst.Release()
	c.inst, c.Key = derived, dkey
	if c.m != nil {
		// Re-home the traffic series too: draws from here on belong to the
		// epoch-keyed instance. The last-published readings carry over — the
		// batcher's accounting is continuous across the mutation.
		c.traf = c.m.trafficFor(dkey)
	}
	return &MutateInfo{
		Key: dkey, Epoch: int64(n),
		Inserted: dres.Inserted, Deleted: dres.Deleted, Touched: len(dres.Touched),
	}, nil
}

// Status is the campaign's progress snapshot.
type Status struct {
	ID       string         `json:"id"`
	Key      Key            `json:"key"`
	Algo     string         `json:"algo"`
	Seed     uint64         `json:"seed"`
	Simulate bool           `json:"simulate"`
	Rounds   int            `json:"rounds"`
	Spread   int            `json:"spread"`
	Done     bool           `json:"done"`
	State    string         `json:"state"` // "running" | "done" | "failed"
	Error    string         `json:"error,omitempty"`
	Stack    string         `json:"stack,omitempty"`
	Pending  *graph.NodeID  `json:"pending,omitempty"`
	Seeds    []graph.NodeID `json:"seeds"`
}

// Status snapshots progress.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID: c.ID, Key: c.Key, Algo: c.Algo, Seed: c.Seed, Simulate: c.Simulate,
		Rounds: c.sess.Rounds(), Spread: c.sess.Spread(), Done: c.sess.Done(),
		Seeds: c.sess.Seeds(),
	}
	switch {
	case c.failErr != nil:
		st.State = "failed"
		st.Error = c.failErr.Error()
		st.Stack = c.failStack
	case st.Done:
		st.State = "done"
	default:
		st.State = "running"
	}
	if p, ok := c.sess.Pending(); ok {
		st.Pending = &p
	}
	return st
}

// Failed reports whether the campaign is in the permanent failed state.
func (c *Campaign) Failed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failErr != nil
}

// Result snapshots the campaign outcome in the batch RunResult shape.
func (c *Campaign) Result() *adaptive.RunResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess.Result()
}

// Close releases the campaign's resources (warm batcher back to the
// instance pool, instance reference back to the registry). Idempotent.
func (c *Campaign) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.inst.ReturnBatcher(c.batcher)
	c.batcher = nil
	c.inst.Release()
}

// ckptHeader is the JSON first line of a campaign checkpoint file — the
// routing information Restore needs before it can rebuild the session
// from the binary blob that follows.
type ckptHeader struct {
	Version  int    `json:"version"`
	ID       string `json:"id"`
	Key      Key    `json:"key"`
	Algo     string `json:"algo"`
	Seed     uint64 `json:"seed"`
	Simulate bool   `json:"simulate"`
	Rounds   int    `json:"rounds"`
}

// Checkpoint envelope v2: header line, session blob, then a 16-byte
// footer — 8 magic bytes and a little-endian CRC64 (ECMA) of everything
// before the footer. The checksum makes a torn or bit-flipped file
// detectable at restore time instead of exploding (or, worse, resuming
// silently wrong) deep inside the session decoder; the magic keeps a
// truncated footer from being misread as a checksum. v1 envelopes (no
// footer) fail the integrity check and are quarantined; none were ever
// committed.
const (
	ckptEnvelopeVersion = 2
	ckptFooterLen       = 16
	// keepGenerations superseded checkpoints stay on disk next to the
	// current one, so a corrupt newest generation never strands the
	// campaign.
	keepGenerations = 2
)

var (
	ckptFooterMagic = [8]byte{'R', 'P', 'C', 'K', 'S', 'U', 'M', '2'}
	ckptCRCTable    = crc64.MakeTable(crc64.ECMA)

	// errCorruptCheckpoint marks integrity failures — the byte-level
	// damage restore quarantines and falls back from, as opposed to
	// authentic-but-unusable checkpoints (wrong build version, wrong
	// instance), where an older generation of the same campaign would
	// fail identically or silently rewind it.
	errCorruptCheckpoint = errors.New("corrupt checkpoint")

	// ckptRetry bounds the retry loop absorbing transient checkpoint
	// write failures. A var so tests can shrink the backoff.
	ckptRetry = fault.WritePolicy
)

// sealEnvelope assembles header + blob + checksum footer.
func sealEnvelope(hdr, blob []byte) []byte {
	buf := make([]byte, 0, len(hdr)+1+len(blob)+ckptFooterLen)
	buf = append(buf, hdr...)
	buf = append(buf, '\n')
	buf = append(buf, blob...)
	sum := crc64.Checksum(buf, ckptCRCTable)
	buf = append(buf, ckptFooterMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, sum)
	return buf
}

// openEnvelope verifies the footer and checksum of checkpoint bytes and
// splits them into header and blob. Integrity failures wrap
// errCorruptCheckpoint.
func openEnvelope(data []byte) (ckptHeader, []byte, error) {
	var hdr ckptHeader
	if len(data) < ckptFooterLen {
		return hdr, nil, fmt.Errorf("%w: %d bytes is shorter than the footer", errCorruptCheckpoint, len(data))
	}
	body, footer := data[:len(data)-ckptFooterLen], data[len(data)-ckptFooterLen:]
	if !bytes.Equal(footer[:8], ckptFooterMagic[:]) {
		return hdr, nil, fmt.Errorf("%w: footer magic missing (torn write, or a pre-v2 envelope)", errCorruptCheckpoint)
	}
	want := binary.LittleEndian.Uint64(footer[8:])
	if got := crc64.Checksum(body, ckptCRCTable); got != want {
		return hdr, nil, fmt.Errorf("%w: CRC64 mismatch (stored %#x, computed %#x)", errCorruptCheckpoint, want, got)
	}
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		return hdr, nil, fmt.Errorf("%w: no header line", errCorruptCheckpoint)
	}
	if err := json.Unmarshal(body[:nl], &hdr); err != nil {
		return hdr, nil, fmt.Errorf("%w: header does not parse: %v", errCorruptCheckpoint, err)
	}
	// Past this point the bytes are authentic: failures are compatibility
	// problems, not damage, and quarantine/fallback must not engage.
	if hdr.Version != ckptEnvelopeVersion {
		return hdr, nil, fmt.Errorf("service: envelope version %d not supported (this build reads %d)",
			hdr.Version, ckptEnvelopeVersion)
	}
	return hdr, body[nl+1:], nil
}

// Checkpoint writes the campaign to dir as campaign-<id>.ckpt and
// returns the path. The write is crash-only end to end: payload to a
// temp file, fsync, rotate the previous checkpoint into a numbered
// generation (campaign-<id>.ckpt.N), atomic rename over the final name,
// fsync of the directory — so at any kill point the directory holds the
// old checkpoint, the new one, or both, never a torn file under a final
// name. Transient write failures are retried with jittered backoff.
func (c *Campaign) Checkpoint(dir string) (path string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.guard(&err)
	if err := c.failIfClosed(); err != nil {
		return "", err
	}
	blob, err := c.sess.Checkpoint()
	if err != nil {
		return "", err
	}
	hdr, err := json.Marshal(ckptHeader{
		Version: ckptEnvelopeVersion, ID: c.ID, Key: c.Key, Algo: c.Algo,
		Seed: c.Seed, Simulate: c.Simulate, Rounds: c.sess.Rounds(),
	})
	if err != nil {
		return "", err
	}
	payload := sealEnvelope(hdr, blob)
	final := filepath.Join(dir, "campaign-"+c.ID+".ckpt")
	attempts := 0
	werr := ckptRetry.Retry(func() error {
		attempts++
		return writeCheckpointFile(dir, final, payload)
	})
	if c.m != nil {
		if attempts > 1 {
			c.m.ckptRetries.Add(int64(attempts - 1))
		}
		if werr != nil {
			c.m.ckptWriteErr.Inc()
		} else {
			c.m.ckptWriteOK.Inc()
		}
	}
	if werr != nil {
		return "", werr
	}
	return final, nil
}

// writeCheckpointFile is one full write attempt (retried as a unit).
func writeCheckpointFile(dir, final string, payload []byte) error {
	tmp, err := os.CreateTemp(dir, ".campaign-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := fault.Write(fault.SiteCheckpointWrite, tmp, payload); err != nil {
		tmp.Close()
		return err
	}
	if err := fault.Check(fault.SiteCheckpointSync); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fault.Check(fault.SiteCheckpointRename); err != nil {
		return err
	}
	if err := rotateGeneration(final); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	pruneGenerations(final)
	return nil
}

// rotateGeneration moves an existing checkpoint under final into the
// next free generation slot final.<N> before the new one takes its name.
func rotateGeneration(final string) error {
	if _, err := os.Stat(final); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	next := 1
	if gens := generations(final); len(gens) > 0 {
		next = gens[len(gens)-1].n + 1
	}
	return os.Rename(final, fmt.Sprintf("%s.%d", final, next))
}

type generation struct {
	n    int
	path string
}

// generations lists final's numbered generation files, ascending by
// number (newest last). Quarantined (.corrupt) and temp files never
// match the strictly numeric suffix.
func generations(final string) []generation {
	matches, _ := filepath.Glob(final + ".*")
	var gens []generation
	for _, m := range matches {
		suffix := m[len(final)+1:]
		n, err := strconv.Atoi(suffix)
		if err != nil || n <= 0 {
			continue
		}
		gens = append(gens, generation{n: n, path: m})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].n < gens[j].n })
	return gens
}

// pruneGenerations drops all but the newest keepGenerations superseded
// checkpoints. Best effort: a prune failure never fails the checkpoint
// that just landed.
func pruneGenerations(final string) {
	gens := generations(final)
	for i := 0; i < len(gens)-keepGenerations; i++ {
		_ = os.Remove(gens[i].path)
	}
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// RestoreInfo reports how a restore resolved: which file actually
// restored, and which corrupt candidates were quarantined aside (renamed
// to <name>.corrupt) along the way.
type RestoreInfo struct {
	File        string   `json:"restored_from"`
	Quarantined []string `json:"quarantined,omitempty"`
}

// RestoreCampaign verifies and resumes the campaign held in a checkpoint
// file: same ID, instance key, algorithm, seed, and mode, continuing
// bit-identically from where Checkpoint left it. A corrupt file —
// truncated, bit-flipped, torn — is quarantined aside (renamed
// <name>.corrupt, preserved for forensics) and the restore falls back to
// the newest valid generation (campaign-<id>.ckpt.N) instead of failing
// the campaign. The returned RestoreInfo says which file won and what
// was quarantined; the error reflects the *first* failure when no
// candidate restores.
func (r *Registry) RestoreCampaign(file string) (*Campaign, *RestoreInfo, error) {
	info := &RestoreInfo{}
	var firstErr error
	keep := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	candidates := []string{file}
	for gens := generations(file); len(gens) > 0; gens = gens[:len(gens)-1] {
		candidates = append(candidates, gens[len(gens)-1].path) // newest generation first
	}
	for _, cand := range candidates {
		data, err := os.ReadFile(cand)
		if err != nil {
			keep(err)
			continue
		}
		hdr, blob, err := openEnvelope(data)
		if err != nil {
			if errors.Is(err, errCorruptCheckpoint) {
				info.Quarantined = append(info.Quarantined, quarantine(cand))
				if m := r.metrics; m != nil {
					m.quarantines.Inc()
				}
				keep(fmt.Errorf("service: %s: %w", cand, err))
				continue
			}
			keep(fmt.Errorf("service: %s: %w", cand, err))
			continue
		}
		c, err := r.openFromEnvelope(cand, hdr, blob)
		if err != nil {
			keep(err)
			continue
		}
		info.File = cand
		if m := r.metrics; m != nil {
			if cand == file {
				m.restoreOK.Inc()
			} else {
				m.restoreFallback.Inc()
			}
		}
		return c, info, nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("service: %s: no checkpoint found", file)
	}
	if m := r.metrics; m != nil {
		m.restoreErr.Inc()
	}
	return nil, info, firstErr
}

// quarantine moves a corrupt checkpoint aside so it can never shadow a
// valid generation again, returning the quarantine name (or, if the
// rename itself fails, the original name — read-only directories degrade
// to skipping, not wedging).
func quarantine(path string) string {
	q := path + ".corrupt"
	if err := os.Rename(path, q); err != nil {
		return path
	}
	return q
}

// openFromEnvelope resumes a session from verified checkpoint contents.
func (r *Registry) openFromEnvelope(file string, hdr ckptHeader, blob []byte) (*Campaign, error) {
	// Always restore through the base instance: the session blob carries
	// the delta log, and openCampaign replays it and re-adopts the derived
	// epoch key — a mutated campaign's graph cannot be Prepared from disk.
	inst, err := r.Acquire(hdr.Key.base())
	if err != nil {
		return nil, err
	}
	c, err := r.openCampaign(inst, hdr.ID, hdr.Key.base(), hdr.Algo, hdr.Seed, hdr.Simulate, blob)
	if err != nil {
		inst.Release()
		return nil, fmt.Errorf("service: %s: %w", file, err)
	}
	if c.Key.Epoch != hdr.Key.Epoch {
		c.Close()
		return nil, fmt.Errorf("service: %s: checkpoint says epoch %d, replayed session is at %d", file, hdr.Key.Epoch, c.Key.Epoch)
	}
	return c, nil
}
