package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Server exposes campaign lifecycle over HTTP (see routes in Handler).
// It is the state `repro serve` holds between requests: the instance
// registry plus the open-campaign table.
type Server struct {
	reg     *Registry
	ckptDir string

	// stepSem bounds concurrently executing campaign-advancing requests
	// (step/next/observe/mutate); an overloaded server answers 429 with
	// Retry-After instead of queueing unboundedly.
	stepSem chan struct{}
	// drainTimeout bounds Drain end to end; each campaign gets an equal
	// share of whatever budget remains when its turn comes.
	drainTimeout time.Duration
	logW         io.Writer

	// metrics is never nil: NewServer attaches a bundle to the registry
	// if none is there yet. reqID numbers requests for the access log.
	metrics *Metrics
	reqID   atomic.Int64

	mu        sync.Mutex
	campaigns map[string]*Campaign
	nextID    int
	draining  bool
}

// NewServer builds a server around an instance registry. ckptDir, when
// non-empty, is where campaign checkpoints land — explicit checkpoint
// requests and the Drain sweep both write there.
func NewServer(reg *Registry, ckptDir string) *Server {
	m := reg.Metrics()
	if m == nil {
		m = NewMetrics(obs.NewRegistry())
		reg.AttachMetrics(m)
	}
	s := &Server{
		reg: reg, ckptDir: ckptDir, campaigns: make(map[string]*Campaign),
		stepSem:      make(chan struct{}, 2*runtime.GOMAXPROCS(0)),
		drainTimeout: 30 * time.Second,
		metrics:      m,
	}
	m.Reg.OnGather(s.gatherCampaigns)
	return s
}

// Registry returns the server's instance registry.
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the server's instrumentation bundle (never nil).
func (s *Server) Metrics() *Metrics { return s.metrics }

// gatherCampaigns snapshots open-campaign states into the gauges at
// scrape time. It reads each campaign's lock-free state word, never its
// mutex — a scrape must not block behind a campaign wedged mid-step.
func (s *Server) gatherCampaigns() {
	var running, done, failed int64
	s.mu.Lock()
	for _, c := range s.campaigns {
		switch c.state.Load() {
		case campaignFailed:
			failed++
		case campaignDone:
			done++
		default:
			running++
		}
	}
	s.mu.Unlock()
	s.metrics.stRunning.Set(running)
	s.metrics.stDone.Set(done)
	s.metrics.stFailed.Set(failed)
}

// SetMaxConcurrentSteps caps in-flight campaign-advancing requests
// (default 2×GOMAXPROCS). Call before serving.
func (s *Server) SetMaxConcurrentSteps(n int) {
	if n < 1 {
		n = 1
	}
	s.stepSem = make(chan struct{}, n)
}

// SetDrainTimeout bounds the whole Drain sweep (default 30s). Call
// before serving.
func (s *Server) SetDrainTimeout(d time.Duration) {
	if d > 0 {
		s.drainTimeout = d
	}
}

// SetLogOutput directs server diagnostics (recovered panics, drain
// stragglers) to w. Nil discards them (the default).
func (s *Server) SetLogOutput(w io.Writer) { s.logW = w }

func (s *Server) logf(format string, args ...any) {
	if s.logW != nil {
		fmt.Fprintf(s.logW, format+"\n", args...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Handler returns the route table. Method+wildcard patterns need the
// Go 1.22 ServeMux. Every route is instrumented with request counts and
// a latency histogram labeled by the route pattern (bounded cardinality,
// unlike raw paths), and /metrics exposes the whole catalog.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	route("GET /healthz", s.handleHealth)
	route("GET /metrics", s.metrics.Reg.Handler().ServeHTTP)
	route("GET /v1/instances", s.handleInstances)
	route("POST /v1/campaigns", s.handleCreate)
	route("GET /v1/campaigns", s.handleList)
	route("POST /v1/campaigns/restore", s.handleRestore)
	route("GET /v1/campaigns/{id}", s.handleStatus)
	route("GET /v1/campaigns/{id}/result", s.handleResult)
	route("POST /v1/campaigns/{id}/next", s.handleNext)
	route("POST /v1/campaigns/{id}/observe", s.handleObserve)
	route("POST /v1/campaigns/{id}/step", s.handleStep)
	route("POST /v1/campaigns/{id}/mutate", s.handleMutate)
	route("POST /v1/campaigns/{id}/checkpoint", s.handleCheckpoint)
	route("DELETE /v1/campaigns/{id}", s.handleDelete)
	return s.withRecovery(mux)
}

// statusWriter captures the status code and body size a handler writes.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps one route with metrics (requests by status, latency
// by route pattern) and a request-ID access log line. The histogram
// handle is resolved once per route at registration.
func (s *Server) instrument(pattern string, h http.Handler) http.Handler {
	hist := s.metrics.httpLatency.With(pattern)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			d := time.Since(start)
			hist.Observe(d.Seconds())
			s.metrics.httpRequests.With(pattern, strconv.Itoa(sw.code)).Inc()
			if s.logW != nil {
				s.logf("access req=%d method=%s route=%q path=%s status=%d bytes=%d dur_ms=%.3f",
					id, r.Method, pattern, r.URL.Path, sw.code, sw.bytes,
					float64(d.Microseconds())/1000)
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// withRecovery is the daemon's outermost blast-radius boundary: a panic
// that escapes a handler (campaign-level guards catch the common case)
// becomes a logged 500 on that one request, never a dead server.
func (s *Server) withRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				// Best effort: if the handler already wrote headers this
				// write fails silently, and the client sees a torn reply.
				writeErr(w, http.StatusInternalServerError,
					fmt.Errorf("service: internal panic serving %s %s", r.Method, r.URL.Path))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// acquireStep claims a slot for a campaign-advancing request. When the
// server is saturated it answers 429 + Retry-After itself and returns
// false — backpressure instead of an unbounded goroutine pile-up.
func (s *Server) acquireStep(w http.ResponseWriter) bool {
	select {
	case s.stepSem <- struct{}{}:
		s.metrics.inflight.Inc()
		return true
	default:
		s.metrics.throttled.Inc()
		// The hint tracks observed load: p50 step latency rounded up to
		// whole seconds (≥ 1), so clients of a saturated server back off
		// for about one queue drain instead of a blind second.
		w.Header().Set("Retry-After", strconv.Itoa(s.metrics.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests,
			fmt.Errorf("service: %d campaign steps already in flight; retry shortly", cap(s.stepSem)))
		return false
	}
}

func (s *Server) releaseStep() {
	<-s.stepSem
	s.metrics.inflight.Dec()
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.campaigns)
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "campaigns": n, "draining": draining})
}

func (s *Server) handleInstances(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Stats())
}

// createRequest is the POST /v1/campaigns body. Omitted fields fall back
// to the server spec's first grid value (the same defaults `repro run`
// applies), simulate defaults to true, and scale to the spec's.
type createRequest struct {
	Dataset  string   `json:"dataset"`
	Model    string   `json:"model"`
	Cost     string   `json:"cost"`
	Scale    *float64 `json:"scale"`
	Algo     string   `json:"algo"`
	Seed     *uint64  `json:"seed"`
	Simulate *bool    `json:"simulate"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	spec := s.reg.Spec()
	if req.Dataset == "" {
		req.Dataset = spec.Datasets[0]
	}
	if req.Model == "" {
		req.Model = spec.Models[0]
	}
	if req.Cost == "" {
		req.Cost = spec.CostSettings[0]
	}
	if req.Algo == "" {
		req.Algo = spec.Algos[0]
	}
	key := Key{Dataset: req.Dataset, Model: req.Model, Cost: req.Cost, Scale: spec.Scale}
	if req.Scale != nil {
		key.Scale = *req.Scale
	}
	seed := spec.Seed + 100 // repro run realization-0 parity by default
	if req.Seed != nil {
		seed = *req.Seed
	}
	simulate := true
	if req.Simulate != nil {
		simulate = *req.Simulate
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("service: server is draining"))
		return
	}
	s.nextID++
	id := "c" + strconv.Itoa(s.nextID)
	s.mu.Unlock()

	c, err := s.reg.StartCampaign(id, key, req.Algo, seed, simulate)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.campaigns[id] = c
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, c.Status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		out = append(out, c.Status())
	}
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) campaign(w http.ResponseWriter, r *http.Request) *Campaign {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("service: no campaign %q", id))
	}
	return c
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c := s.campaign(w, r); c != nil {
		writeJSON(w, http.StatusOK, c.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if c := s.campaign(w, r); c != nil {
		writeJSON(w, http.StatusOK, c.Result())
	}
}

type nextResponse struct {
	Seed *graph.NodeID `json:"seed"` // null when the campaign stopped
	Stop bool          `json:"stop"`
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	if c.Simulate {
		writeErr(w, http.StatusConflict, fmt.Errorf("service: campaign %s is simulated; use step", c.ID))
		return
	}
	if !s.acquireStep(w) {
		return
	}
	defer s.releaseStep()
	u, stop, err := c.Next()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := nextResponse{Stop: stop}
	if !stop {
		resp.Seed = &u
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	if c.Simulate {
		writeErr(w, http.StatusConflict, fmt.Errorf("service: campaign %s is simulated; use step", c.ID))
		return
	}
	var body struct {
		Activated []graph.NodeID `json:"activated"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if !s.acquireStep(w) {
		return
	}
	defer s.releaseStep()
	if err := c.Observe(body.Activated); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

type stepResponse struct {
	Seed      *graph.NodeID  `json:"seed"` // null when the campaign stopped
	Stop      bool           `json:"stop"`
	Activated []graph.NodeID `json:"activated,omitempty"`
	Rounds    int            `json:"rounds"`
	Spread    int            `json:"spread"`
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	if !s.acquireStep(w) {
		return
	}
	defer s.releaseStep()
	u, stop, activated, err := c.Step()
	if err != nil {
		if c.Simulate {
			writeErr(w, http.StatusInternalServerError, err)
		} else {
			writeErr(w, http.StatusConflict, err)
		}
		return
	}
	st := c.Status()
	resp := stepResponse{Stop: stop, Activated: activated, Rounds: st.Rounds, Spread: st.Spread}
	if !stop {
		resp.Seed = &u
	}
	writeJSON(w, http.StatusOK, resp)
}

// mutateRequest is the POST /v1/campaigns/{id}/mutate body: explicit
// edge lists, or a generated churn delta (churn_pct percent of the
// current edges, deterministic in churn_seed).
type mutateRequest struct {
	Inserts   []graph.Edge `json:"inserts,omitempty"`
	Deletes   []graph.Edge `json:"deletes,omitempty"`
	ChurnPct  float64      `json:"churn_pct,omitempty"`
	ChurnSeed uint64       `json:"churn_seed,omitempty"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if !s.acquireStep(w) {
		return
	}
	defer s.releaseStep()
	info, err := c.Mutate(req.Inserts, req.Deletes, req.ChurnPct, req.ChurnSeed)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	if s.ckptDir == "" {
		writeErr(w, http.StatusConflict, fmt.Errorf("service: server started without --checkpoint-dir"))
		return
	}
	file, err := c.Checkpoint(s.ckptDir)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"file": file})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var body struct {
		File string `json:"file"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.File == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: restore needs {\"file\": ...}"))
		return
	}
	file := body.File
	if !filepath.IsAbs(file) && s.ckptDir != "" {
		file = filepath.Join(s.ckptDir, file)
	}
	c, info, err := s.reg.RestoreCampaign(file)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		c.Close()
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("service: server is draining"))
		return
	}
	if _, exists := s.campaigns[c.ID]; exists {
		s.mu.Unlock()
		c.Close()
		writeErr(w, http.StatusConflict, fmt.Errorf("service: campaign %s is already open", c.ID))
		return
	}
	s.campaigns[c.ID] = c
	// Keep fresh IDs ahead of restored ones ("c<n>" pattern only).
	if len(c.ID) > 1 && c.ID[0] == 'c' {
		if n, err := strconv.Atoi(c.ID[1:]); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	s.mu.Unlock()
	// Flatten Status and RestoreInfo into one object: clients keep
	// decoding the usual Status fields, plus restored_from/quarantined.
	writeJSON(w, http.StatusCreated, struct {
		Status
		*RestoreInfo
	}{c.Status(), info})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	delete(s.campaigns, id)
	s.mu.Unlock()
	if c == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("service: no campaign %q", id))
		return
	}
	c.Close()
	writeJSON(w, http.StatusOK, map[string]string{"closed": id})
}

// Drain checkpoints every open campaign (when a checkpoint directory is
// configured) and closes them all, refusing new work from that point on.
// `repro serve` calls it on SIGTERM so an in-flight campaign survives a
// restart: the client restores from the drain checkpoint and continues
// bit-identically. Returns the checkpointed files and the first error.
//
// The sweep is time-bounded (SetDrainTimeout): each campaign gets an
// equal share of the remaining budget, so one wedged campaign — stuck
// mid-step holding its mutex — delays but never blocks the shutdown of
// the rest. A campaign that misses its deadline is logged and abandoned
// (its goroutine finishes or dies with the process; the last durable
// checkpoint on disk is what survives either way).
func (s *Server) Drain() ([]string, error) {
	s.mu.Lock()
	s.draining = true
	open := make([]*Campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		open = append(open, c)
	}
	s.campaigns = make(map[string]*Campaign)
	s.mu.Unlock()
	sort.Slice(open, func(a, b int) bool { return open[a].ID < open[b].ID })

	deadline := time.Now().Add(s.drainTimeout)
	var files []string
	var firstErr error
	keep := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for i, c := range open {
		// Fair share of what's left: a fast campaign donates its leftover
		// budget to the ones behind it.
		budget := time.Until(deadline) / time.Duration(len(open)-i)
		if budget <= 0 {
			keep(fmt.Errorf("service: drain deadline exhausted before campaign %s", c.ID))
			s.logf("drain: deadline exhausted; campaign %s not checkpointed", c.ID)
			continue
		}
		type outcome struct {
			file string
			err  error
		}
		done := make(chan outcome, 1)
		go func(c *Campaign) {
			var o outcome
			if s.ckptDir != "" && !c.Failed() {
				o.file, o.err = c.Checkpoint(s.ckptDir)
			}
			c.Close()
			done <- o
		}(c)
		select {
		case o := <-done:
			switch {
			case o.err != nil:
				keep(fmt.Errorf("service: drain checkpoint of %s: %w", c.ID, o.err))
				s.logf("drain: campaign %s failed to checkpoint: %v", c.ID, o.err)
			case o.file != "":
				files = append(files, o.file)
			}
		case <-time.After(budget):
			keep(fmt.Errorf("service: drain of %s exceeded its %v deadline", c.ID, budget.Round(time.Millisecond)))
			s.logf("drain: campaign %s wedged (deadline %v); abandoning it", c.ID, budget.Round(time.Millisecond))
		}
	}
	return files, firstErr
}
