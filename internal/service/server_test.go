package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/adaptive"
)

// call issues one JSON request against the test server and decodes the
// response into out (skipped when out is nil), failing unless the status
// matches.
func call(t *testing.T, ts *httptest.Server, method, path string, body any, wantStatus int, out any) {
	t.Helper()
	var buf io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		buf = bytes.NewReader(b)
	} else if method == http.MethodPost {
		buf = strings.NewReader("{}")
	}
	req, err := http.NewRequest(method, ts.URL+path, buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad response %q: %v", method, path, raw, err)
		}
	}
}

// stepToDone drives a simulated campaign over HTTP until it stops.
func stepToDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 10_000 {
			t.Fatal("campaign did not stop")
		}
		var step stepResponse
		call(t, ts, http.MethodPost, "/v1/campaigns/"+id+"/step", nil, http.StatusOK, &step)
		if step.Stop {
			return
		}
	}
}

func TestServerCampaignLifecycle(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	srv := NewServer(reg, t.TempDir())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health struct {
		OK        bool `json:"ok"`
		Campaigns int  `json:"campaigns"`
	}
	call(t, ts, http.MethodGet, "/healthz", nil, http.StatusOK, &health)
	if !health.OK || health.Campaigns != 0 {
		t.Fatalf("health = %+v", health)
	}

	// An empty create falls back to the server spec: first grid values,
	// seed spec.Seed+100, simulate on.
	var st Status
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusCreated, &st)
	if st.ID != "c1" || st.Key != testKey() || st.Algo != adaptive.AlgoADDATP || !st.Simulate {
		t.Fatalf("created %+v, want defaults for c1", st)
	}
	if st.Seed != testSpec().Seed+100 {
		t.Fatalf("default seed %d, want spec.Seed+100 = %d", st.Seed, testSpec().Seed+100)
	}

	// Mode gating: next/observe belong to external campaigns.
	call(t, ts, http.MethodPost, "/v1/campaigns/c1/next", nil, http.StatusConflict, nil)
	call(t, ts, http.MethodPost, "/v1/campaigns/c1/observe",
		map[string]any{"activated": []int{}}, http.StatusConflict, nil)
	call(t, ts, http.MethodGet, "/v1/campaigns/nope", nil, http.StatusNotFound, nil)

	stepToDone(t, ts, "c1")
	var want adaptive.RunResult
	call(t, ts, http.MethodGet, "/v1/campaigns/c1/result", nil, http.StatusOK, &want)
	if len(want.Seeds) == 0 || want.Rounds != len(want.Seeds) {
		t.Fatalf("result %+v, want a non-trivial finished run", want)
	}

	// Same request again: a second campaign on the now-warm instance must
	// reproduce the run exactly, checkpoint mid-flight, survive delete +
	// restore, and land on the identical result.
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusCreated, &st)
	if st.ID != "c2" {
		t.Fatalf("second campaign id %q, want c2", st.ID)
	}
	var step stepResponse
	call(t, ts, http.MethodPost, "/v1/campaigns/c2/step", nil, http.StatusOK, &step)
	if step.Stop {
		t.Fatal("campaign stopped on round 1; too short to checkpoint mid-flight")
	}
	var ck struct {
		File string `json:"file"`
	}
	call(t, ts, http.MethodPost, "/v1/campaigns/c2/checkpoint", nil, http.StatusOK, &ck)
	if _, err := os.Stat(ck.File); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	call(t, ts, http.MethodDelete, "/v1/campaigns/c2", nil, http.StatusOK, nil)
	call(t, ts, http.MethodGet, "/v1/campaigns/c2", nil, http.StatusNotFound, nil)

	// Restore accepts a bare filename relative to the checkpoint dir.
	call(t, ts, http.MethodPost, "/v1/campaigns/restore",
		map[string]string{"file": filepath.Base(ck.File)}, http.StatusCreated, &st)
	if st.ID != "c2" || st.Rounds != 1 {
		t.Fatalf("restored %+v, want c2 at round 1", st)
	}
	stepToDone(t, ts, "c2")
	var got adaptive.RunResult
	call(t, ts, http.MethodGet, "/v1/campaigns/c2/result", nil, http.StatusOK, &got)
	sameOutcome(t, &got, &want, "restored c2 vs uninterrupted c1")

	// The registry behind it all holds exactly one prepared instance.
	var infos []InstanceInfo
	call(t, ts, http.MethodGet, "/v1/instances", nil, http.StatusOK, &infos)
	if len(infos) != 1 || !infos[0].Prepared {
		t.Fatalf("instances = %+v, want one prepared entry", infos)
	}

	// A fresh create after the restore must not collide with c2's ID.
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusCreated, &st)
	if st.ID != "c3" {
		t.Fatalf("post-restore create got id %q, want c3", st.ID)
	}
}

func TestServerDrainCheckpointsOpenCampaigns(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(testSpec(), 0)
	srv := NewServer(reg, dir)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var st Status
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusCreated, &st)
	var step stepResponse
	call(t, ts, http.MethodPost, "/v1/campaigns/"+st.ID+"/step", nil, http.StatusOK, &step)
	if step.Stop {
		t.Fatal("campaign stopped on round 1")
	}

	files, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || filepath.Base(files[0]) != "campaign-"+st.ID+".ckpt" {
		t.Fatalf("drain files = %v", files)
	}
	call(t, ts, http.MethodPost, "/v1/campaigns", nil, http.StatusServiceUnavailable, nil)
	call(t, ts, http.MethodPost, "/v1/campaigns/restore",
		map[string]string{"file": files[0]}, http.StatusServiceUnavailable, nil)

	// A restarted server (fresh registry, same checkpoint dir) picks the
	// campaign back up and finishes it to the same outcome as a never-
	// interrupted run.
	reg2 := NewRegistry(testSpec(), 0)
	srv2 := NewServer(reg2, dir)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	call(t, ts2, http.MethodPost, "/v1/campaigns/restore",
		map[string]string{"file": files[0]}, http.StatusCreated, &st)
	stepToDone(t, ts2, st.ID)
	var got adaptive.RunResult
	call(t, ts2, http.MethodGet, "/v1/campaigns/"+st.ID+"/result", nil, http.StatusOK, &got)

	ref, err := reg2.StartCampaign("ref", testKey(), st.Algo, st.Seed, true)
	if err != nil {
		t.Fatal(err)
	}
	want := driveCampaign(t, ref)
	ref.Close()
	sameOutcome(t, &got, want, "drain-restored vs uninterrupted")
}

func TestServerCreateValidation(t *testing.T) {
	reg := NewRegistry(testSpec(), 0)
	srv := NewServer(reg, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []map[string]any{
		{"dataset": "no-such-dataset"},
		{"model": "triangular"},
		{"cost": "free"},
		{"algo": "magic"},
		{"scale": -1},
	} {
		call(t, ts, http.MethodPost, "/v1/campaigns", body, http.StatusBadRequest, nil)
	}
	// Without --checkpoint-dir, checkpointing is a refusable request, not
	// a crash.
	var st Status
	call(t, ts, http.MethodPost, "/v1/campaigns", map[string]any{"algo": "all-targets"}, http.StatusCreated, &st)
	call(t, ts, http.MethodPost, "/v1/campaigns/"+st.ID+"/checkpoint", nil, http.StatusConflict, nil)
}
