package service

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/fault"
	"repro/internal/rng"
)

// fastCkptRetry shrinks the checkpoint retry backoff for a test.
func fastCkptRetry(t *testing.T) {
	t.Helper()
	prev := ckptRetry
	ckptRetry = fault.Policy{Attempts: 3, Base: time.Microsecond, Cap: 10 * time.Microsecond}
	t.Cleanup(func() { ckptRetry = prev })
}

// chaosSites are the fault sites a campaign exercises end to end, with
// the modes that make sense at each.
var chaosSites = []struct {
	site  string
	modes []fault.Mode
}{
	{fault.SiteCheckpointWrite, []fault.Mode{fault.ModeError, fault.ModePanic, fault.ModeTorn}},
	{fault.SiteCheckpointSync, []fault.Mode{fault.ModeError, fault.ModePanic}},
	{fault.SiteCheckpointRename, []fault.Mode{fault.ModeError, fault.ModePanic}},
	{fault.SiteBatcherGrow, []fault.Mode{fault.ModeError, fault.ModePanic}},
	{fault.SiteRegistryPrepare, []fault.Mode{fault.ModeError}},
}

// randomSchedule derives a deterministic fault schedule from a seed: one
// to three rules over the campaign's sites, triggered on an early hit or
// a cadence so every schedule actually fires within a short campaign.
func randomSchedule(seed uint64) []fault.Rule {
	r := rng.New(seed)
	n := 1 + r.Intn(3)
	rules := make([]fault.Rule, 0, n)
	for i := 0; i < n; i++ {
		cs := chaosSites[r.Intn(len(chaosSites))]
		rule := fault.Rule{
			Site: cs.site,
			Mode: cs.modes[r.Intn(len(cs.modes))],
		}
		if r.Bool() {
			rule.Nth = 1 + r.Intn(4)
		} else {
			rule.Every = 1 + r.Intn(3)
		}
		rules = append(rules, rule)
	}
	return rules
}

// TestChaosCampaignCheckpointsAlwaysRestore is the crash-only property
// test: run full campaigns under randomized fault schedules — injected
// errors, panics, and torn writes across the checkpoint pipeline, RR
// batcher, and registry — checkpointing after every round. Whatever
// happens to the live campaign, the invariant must hold: any surviving
// checkpoint restores (falling back across generations if the newest is
// damaged) to a campaign whose finished seed sequence is identical to an
// unfaulted run; and when no checkpoint survived, a fresh run still is.
func TestChaosCampaignCheckpointsAlwaysRestore(t *testing.T) {
	fastCkptRetry(t)
	reg := NewRegistry(testSpec(), 0)

	ref, err := reg.StartCampaign("ref", testKey(), adaptive.AlgoADDATP, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	want := driveCampaign(t, ref)
	ref.Close()

	const schedules = 24
	for i := 0; i < schedules; i++ {
		i := i
		t.Run(fmt.Sprintf("schedule%02d", i), func(t *testing.T) {
			dir := t.TempDir()
			rules := randomSchedule(uint64(1000 + i))
			withInjector(t, fault.New(uint64(i), rules...))

			id := fmt.Sprintf("x%02d", i)
			c, err := reg.StartCampaign(id, testKey(), adaptive.AlgoADDATP, 31, true)
			if err == nil {
				// Drive under fire: step and checkpoint until done or the
				// campaign fails. Errors are expected; panics must not
				// escape (the guards convert them).
				for rounds := 0; rounds < 100; rounds++ {
					_, stop, _, err := c.Step()
					if err != nil || stop {
						break
					}
					_, _ = c.Checkpoint(dir) // best effort, like a daemon's periodic snapshot
				}
				if c.Failed() {
					if st := c.Status(); st.State != "failed" || st.Error == "" {
						t.Errorf("failed campaign status inconsistent: %+v", st)
					}
				}
				c.Close()
			}
			fault.Disable()

			final := filepath.Join(dir, "campaign-"+id+".ckpt")
			restored, info, rerr := reg.RestoreCampaign(final)
			if rerr != nil {
				// No checkpoint survived this schedule (or none was ever
				// written): a fresh campaign must still match the reference.
				if entries, _ := os.ReadDir(dir); hasValidCheckpoint(t, reg, entries, dir, id) {
					t.Fatalf("restore failed (%v) though a valid checkpoint exists (quarantined %v)", rerr, info.Quarantined)
				}
				fresh, err := reg.StartCampaign(id+"f", testKey(), adaptive.AlgoADDATP, 31, true)
				if err != nil {
					t.Fatalf("fresh campaign after faults cleared: %v", err)
				}
				got := driveCampaign(t, fresh)
				fresh.Close()
				sameOutcome(t, got, want, "fresh run after chaos")
				return
			}
			if restored.Failed() {
				t.Fatalf("restored campaign (from %s) is failed", info.File)
			}
			got := driveCampaign(t, restored)
			restored.Close()
			sameOutcome(t, got, want, fmt.Sprintf("restore from %s", filepath.Base(info.File)))
			if !reflect.DeepEqual(got.Seeds, want.Seeds) {
				t.Fatalf("seed sequence diverged: %v vs %v", got.Seeds, want.Seeds)
			}
		})
	}
}

// hasValidCheckpoint reports whether dir still holds any envelope for id
// that opens cleanly — used to catch a restore that gave up even though a
// valid generation was on disk.
func hasValidCheckpoint(t *testing.T, reg *Registry, entries []os.DirEntry, dir, id string) bool {
	t.Helper()
	for _, e := range entries {
		name := e.Name()
		prefix := "campaign-" + id
		if len(name) < len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		if _, _, err := openEnvelope(data); err == nil {
			return true
		}
	}
	return false
}
