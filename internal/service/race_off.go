//go:build !race

package service

// raceEnabled reports whether this build runs under the race detector.
const raceEnabled = false
