package service

import (
	"math"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Metrics is the serving stack's instrumentation bundle: every series the
// daemon exports at GET /metrics, registered once on an obs.Registry and
// pre-resolved into handles so the hot paths (campaign stepping, the
// traffic bridge) mutate plain atomics and never touch a label map.
//
// Catalog (name → meaning):
//
//	repro_http_requests_total{route,code}        requests served, by route pattern and status
//	repro_http_request_duration_seconds{route}   end-to-end handler latency
//	repro_http_inflight_steps                    campaign-advancing requests currently holding a step slot
//	repro_http_throttled_total                   requests answered 429 at the step semaphore
//	repro_campaign_step_duration_seconds         one campaign advance (next/observe/step), HTTP excluded
//	repro_campaigns{state}                       open campaigns by state (running|done|failed)
//	repro_registry_entries                       instance-registry entries (live + idle)
//	repro_registry_idle_entries                  entries with no live campaign reference
//	repro_registry_warm_batchers                 parked warm batchers across all instances
//	repro_registry_prepares_total                expensive sweep.Prepare runs (cache misses)
//	repro_registry_evictions_total               idle entries dropped by the LRU cap
//	repro_checkpoint_writes_total{outcome}       checkpoint writes (ok|error), retries collapsed
//	repro_checkpoint_write_retries_total         extra attempts absorbed by the write retry loop
//	repro_checkpoint_restores_total{outcome}     restores (ok|fallback|error)
//	repro_checkpoint_quarantines_total           corrupt checkpoints renamed aside
//	repro_fault_injections_total{site}           injected faults that fired (REPRO_FAULTS)
//	repro_rr_sets_drawn_total{instance}          RR sets generated, per instance key
//	repro_rr_sets_reused_total{instance}         RR sets carried across graph versions
//	repro_rr_visits_total{instance}              node visits during RR draws
//	repro_rr_edge_touches_total{instance}        in-adjacency entries read during RR draws
type Metrics struct {
	Reg *obs.Registry

	httpRequests *obs.CounterVec
	httpLatency  *obs.HistogramVec
	inflight     *obs.Gauge
	throttled    *obs.Counter

	stepDur *obs.Histogram

	stRunning *obs.Gauge
	stDone    *obs.Gauge
	stFailed  *obs.Gauge

	regEntries *obs.Gauge
	regIdle    *obs.Gauge
	regWarm    *obs.Gauge
	prepares   *obs.Counter
	evictions  *obs.Counter

	ckptWriteOK     *obs.Counter
	ckptWriteErr    *obs.Counter
	ckptRetries     *obs.Counter
	restoreOK       *obs.Counter
	restoreFallback *obs.Counter
	restoreErr      *obs.Counter
	quarantines     *obs.Counter

	faultHits *obs.CounterVec

	rrDrawn   *obs.CounterVec
	rrReused  *obs.CounterVec
	rrVisits  *obs.CounterVec
	rrTouches *obs.CounterVec
}

// NewMetrics registers the full serving catalog on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{Reg: reg}
	m.httpRequests = reg.CounterVec("repro_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "code")
	m.httpLatency = reg.HistogramVec("repro_http_request_duration_seconds",
		"End-to-end HTTP handler latency in seconds, by route pattern.", nil, "route")
	m.inflight = reg.Gauge("repro_http_inflight_steps",
		"Campaign-advancing requests currently holding a step-semaphore slot.")
	m.throttled = reg.Counter("repro_http_throttled_total",
		"Requests answered 429 because the step semaphore was saturated.")
	m.stepDur = reg.Histogram("repro_campaign_step_duration_seconds",
		"Duration of one campaign advance (next, observe, or simulated step), HTTP overhead excluded.", nil)
	states := reg.GaugeVec("repro_campaigns", "Open campaigns by state.", "state")
	m.stRunning = states.With("running")
	m.stDone = states.With("done")
	m.stFailed = states.With("failed")
	m.regEntries = reg.Gauge("repro_registry_entries",
		"Instance-registry entries, live and idle.")
	m.regIdle = reg.Gauge("repro_registry_idle_entries",
		"Registry entries with no live campaign reference (the population the LRU cap bounds).")
	m.regWarm = reg.Gauge("repro_registry_warm_batchers",
		"Warm RR batchers parked across all registry instances.")
	m.prepares = reg.Counter("repro_registry_prepares_total",
		"Expensive instance preparations executed (registry cache misses).")
	m.evictions = reg.Counter("repro_registry_evictions_total",
		"Idle instances dropped by the registry LRU cap.")
	writes := reg.CounterVec("repro_checkpoint_writes_total",
		"Campaign checkpoint writes by outcome; a retried write counts once.", "outcome")
	m.ckptWriteOK = writes.With("ok")
	m.ckptWriteErr = writes.With("error")
	m.ckptRetries = reg.Counter("repro_checkpoint_write_retries_total",
		"Extra checkpoint write attempts absorbed by the retry loop.")
	restores := reg.CounterVec("repro_checkpoint_restores_total",
		"Campaign restores by outcome: ok (requested file), fallback (older generation), error.", "outcome")
	m.restoreOK = restores.With("ok")
	m.restoreFallback = restores.With("fallback")
	m.restoreErr = restores.With("error")
	m.quarantines = reg.Counter("repro_checkpoint_quarantines_total",
		"Corrupt checkpoint files quarantined aside during restore.")
	m.faultHits = reg.CounterVec("repro_fault_injections_total",
		"Injected faults that fired, by site (REPRO_FAULTS plane).", "site")
	m.rrDrawn = reg.CounterVec("repro_rr_sets_drawn_total",
		"RR sets generated by campaigns, per instance key.", "instance")
	m.rrReused = reg.CounterVec("repro_rr_sets_reused_total",
		"RR sets carried across graph versions by incremental sync, per instance key.", "instance")
	m.rrVisits = reg.CounterVec("repro_rr_visits_total",
		"Node visits during RR set draws, per instance key.", "instance")
	m.rrTouches = reg.CounterVec("repro_rr_edge_touches_total",
		"In-adjacency entries read during RR set draws, per instance key.", "instance")
	return m
}

// trafficCounters are one campaign's pre-resolved sampler-traffic
// handles, keyed by its instance. Resolved at campaign open (and again
// on a mutation re-home) so the per-step bridge is four atomic adds.
type trafficCounters struct {
	drawn, reused, visits, touches *obs.Counter
}

func (m *Metrics) trafficFor(key Key) trafficCounters {
	k := key.String()
	return trafficCounters{
		drawn:   m.rrDrawn.With(k),
		reused:  m.rrReused.With(k),
		visits:  m.rrVisits.With(k),
		touches: m.rrTouches.With(k),
	}
}

// retryAfterSeconds derives the 429 backpressure hint from observed step
// latency: the conservative p50 bucket bound rounded up to whole
// seconds, clamped to >= 1 — a saturated server whose steps take ~4s
// tells clients to come back in 5, not 1.
func (m *Metrics) retryAfterSeconds() int {
	if m == nil {
		return 1
	}
	s := int(math.Ceil(m.stepDur.Quantile(0.5)))
	if s < 1 {
		s = 1
	}
	return s
}

// AttachMetrics wires the registry — and every instance and campaign it
// opens from now on — to m: registry gauges snapshot at scrape time, the
// fault plane reports fired injections, prepares and evictions count.
// Call once, before serving; campaigns opened earlier stay uninstrumented.
func (r *Registry) AttachMetrics(m *Metrics) {
	r.metrics = m
	m.Reg.OnGather(func() { r.gather(m) })
	fault.SetObserver(func(site string) { m.faultHits.With(site).Inc() })
}

// Metrics returns the attached bundle, nil if none.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// gather snapshots registry occupancy into the gauges at scrape time.
func (r *Registry) gather(m *Metrics) {
	r.mu.Lock()
	entries := make([]*Instance, 0, len(r.entries))
	idle := 0
	for _, e := range r.entries {
		entries = append(entries, e)
		if e.refs == 0 {
			idle++
		}
	}
	r.mu.Unlock()
	warm := 0
	for _, e := range entries {
		e.bmu.Lock()
		warm += len(e.batchers)
		e.bmu.Unlock()
	}
	m.regEntries.Set(int64(len(entries)))
	m.regIdle.Set(int64(idle))
	m.regWarm.Set(int64(warm))
}
