package ris

import (
	"math"
	"testing"

	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// survivingTouched is the brute-force oracle for InvalidateTouching: the
// subsequence of sets containing none of the touched nodes.
func survivingTouched(sets []*RRSet, touched []graph.NodeID) []*RRSet {
	mark := make(map[graph.NodeID]bool, len(touched))
	for _, u := range touched {
		mark[u] = true
	}
	var out []*RRSet
	for _, rr := range sets {
		ok := true
		for _, u := range rr.Nodes {
			if mark[u] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, rr)
		}
	}
	return out
}

// editEdges applies a parallel-free delta to an edge list: every delete
// removes the first (From, To) match, inserts are appended.
func editEdges(base, inserts, deletes []graph.Edge) []graph.Edge {
	edited := append([]graph.Edge{}, base...)
	for _, d := range deletes {
		for i, e := range edited {
			if e.From == d.From && e.To == d.To {
				edited = append(edited[:i], edited[i+1:]...)
				break
			}
		}
	}
	return append(edited, inserts...)
}

// TestInvalidateTouchingMatchesBruteForce: after a topology delta,
// InvalidateTouching must keep exactly the RR sets avoiding every touched
// node, in order, contents intact, coverage compacted in lockstep, and the
// collection's residual version untouched — on both the marked-scan path
// (stale index) and the inverted-index path, against a brute-force rescan.
func TestInvalidateTouchingMatchesBruteForce(t *testing.T) {
	for _, warmIndex := range []bool{false, true} {
		name := "scan"
		if warmIndex {
			name = "index"
		}
		t.Run(name, func(t *testing.T) {
			g := randomGraph(t)
			res := graph.NewResidual(g)
			c := NewSampler(res, cascade.IC, rng.New(21)).Generate(2000)
			cov := c.NewCoverage()
			before := snapshotSets(c)

			_, dres, err := g.ApplyDelta(gen.ChurnDeltas(g, 0.01, rng.New(7)))
			if err != nil {
				t.Fatal(err)
			}
			if warmIndex {
				c.CountContaining(0) // force the inverted index current
			}
			versionBefore := c.Version()
			want := survivingTouched(before, dres.Touched)
			kept := c.InvalidateTouching(dres.Touched)

			if kept == len(before) {
				t.Fatal("delta invalidated no sets; churn too weak to test anything")
			}
			if kept != len(want) || c.Len() != len(want) {
				t.Fatalf("kept %d (Len %d), brute force %d", kept, c.Len(), len(want))
			}
			for i, rr := range want {
				if c.Root(i) != rr.Root {
					t.Fatalf("kept set %d root %d, want %d", i, c.Root(i), rr.Root)
				}
				nodes := c.SetNodes(i)
				if len(nodes) != len(rr.Nodes) {
					t.Fatalf("kept set %d length %d, want %d", i, len(nodes), len(rr.Nodes))
				}
				for j := range nodes {
					if nodes[j] != rr.Nodes[j] {
						t.Fatalf("kept set %d node %d: %d, want %d", i, j, nodes[j], rr.Nodes[j])
					}
				}
			}
			if c.Version() != versionBefore {
				t.Fatalf("version changed %d -> %d; survivors stay valid for the current residual",
					versionBefore, c.Version())
			}
			// No touched node may remain in any set; coverage must agree
			// with a brute-force recount after the lockstep compaction.
			for _, u := range dres.Touched {
				if got := c.CountContaining(u); got != 0 {
					t.Fatalf("touched node %d still in %d sets", u, got)
				}
			}
			cov.Update()
			for u := graph.NodeID(0); u < graph.NodeID(g.N()); u++ {
				if cov.Count(u) != c.CountContaining(u) {
					t.Fatalf("coverage desync at node %d: %d vs %d", u, cov.Count(u), c.CountContaining(u))
				}
			}
			// Survivors are still valid at the unchanged residual version:
			// the next Filter must be a no-op.
			if again := c.Filter(res); again != kept {
				t.Fatalf("Filter after invalidate dropped to %d from %d", again, kept)
			}
		})
	}
}

// TestInvalidateTouchingEdgeCases pins the no-op paths.
func TestInvalidateTouchingEdgeCases(t *testing.T) {
	g := fig1Graph()
	res := graph.NewResidual(g)
	c := NewSampler(res, cascade.IC, rng.New(3)).Generate(100)
	if kept := c.InvalidateTouching(nil); kept != 100 {
		t.Fatalf("empty touched dropped sets: %d", kept)
	}
	empty := NewCollection(g.N())
	if kept := empty.InvalidateTouching([]graph.NodeID{1}); kept != 0 {
		t.Fatalf("empty collection kept %d", kept)
	}
	b := NewBatcher(cascade.IC)
	if kept := b.Invalidate([]graph.NodeID{1}); kept != 0 {
		t.Fatalf("batcher invalidate before first sync kept %d", kept)
	}
}

// TestDeltaGraphSamplingBitIdenticalToRebuild: the delta-overlay graph and
// a from-scratch rebuild on the edited edge list must drive the RR sampler
// through bit-identical draws at equal seeds — the strongest form of the
// delta ≡ rebuild differential, for both diffusion models and across
// chained deltas.
func TestDeltaGraphSamplingBitIdenticalToRebuild(t *testing.T) {
	g := randomGraph(t)
	edges := g.Edges()
	cur := g
	for round := 0; round < 3; round++ {
		inserts, deletes := gen.ChurnDeltas(cur, 0.02, rng.New(uint64(100+round)))
		next, _, err := cur.ApplyDelta(inserts, deletes)
		if err != nil {
			t.Fatal(err)
		}
		edges = editEdges(edges, inserts, deletes)
		rebuilt, err := graph.FromEdges(g.N(), true, edges)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []cascade.Model{cascade.IC, cascade.LT} {
			seed := uint64(500 + round)
			cd := NewSampler(graph.NewResidual(next), model, rng.New(seed)).Generate(1500)
			cr := NewSampler(graph.NewResidual(rebuilt), model, rng.New(seed)).Generate(1500)
			if cd.Len() != cr.Len() {
				t.Fatalf("round %d model %v: %d vs %d sets", round, model, cd.Len(), cr.Len())
			}
			for i := 0; i < cd.Len(); i++ {
				if cd.Root(i) != cr.Root(i) {
					t.Fatalf("round %d model %v set %d: root %d vs %d", round, model, i, cd.Root(i), cr.Root(i))
				}
				a, b := cd.SetNodes(i), cr.SetNodes(i)
				if len(a) != len(b) {
					t.Fatalf("round %d model %v set %d: %d vs %d nodes", round, model, i, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("round %d model %v set %d node %d: %d vs %d", round, model, i, j, a[j], b[j])
					}
				}
			}
		}
		cur = next
	}
}

// TestPostDeltaTopUpChiSquareMatchesFresh: after invalidation, the top-up
// draws on the delta-overlay graph must be distributed like fresh draws on
// the rebuilt graph. Both pools share the identical base draw and
// invalidation; only the top-up seed differs, so a chi-square over
// per-node containment counts isolates exactly the delta-graph-vs-rebuilt
// sampling distribution.
func TestPostDeltaTopUpChiSquareMatchesFresh(t *testing.T) {
	const theta = 3000
	g := randomGraph(t)
	inserts, deletes := gen.ChurnDeltas(g, 0.01, rng.New(13))
	ng, dres, err := g.ApplyDelta(inserts, deletes)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := graph.FromEdges(g.N(), true, editEdges(g.Edges(), inserts, deletes))
	if err != nil {
		t.Fatal(err)
	}

	pool := func(post *graph.Graph, topSeed uint64) *Collection {
		b := NewBatcher(cascade.IC)
		res := graph.NewResidual(g)
		if _, err := b.GrowTo(res, rng.New(77), theta, 1); err != nil {
			t.Fatal(err)
		}
		kept := b.Invalidate(dres.Touched)
		if kept == theta || kept == 0 {
			t.Fatalf("degenerate invalidation kept %d of %d", kept, theta)
		}
		if _, err := b.GrowTo(graph.NewResidual(post), rng.New(topSeed), theta, 1); err != nil {
			t.Fatal(err)
		}
		if b.Len() != theta {
			t.Fatalf("top-up reached %d of %d", b.Len(), theta)
		}
		return b.Collection()
	}
	a := pool(ng, 901)      // top-up on the delta-overlay graph
	b := pool(rebuilt, 902) // top-up on the full rebuild, different stream

	stat, df := 0.0, 0
	for u := 0; u < g.N(); u++ {
		ca, cb := a.CountContaining(graph.NodeID(u)), b.CountContaining(graph.NodeID(u))
		if ca+cb < 16 {
			continue
		}
		d := float64(ca - cb)
		stat += d * d / float64(ca+cb)
		df++
	}
	if df < 20 {
		t.Fatalf("only %d nodes had enough mass for the chi-square", df)
	}
	// stat ~ χ²(df) under the null; six sigmas of headroom keeps the fixed
	// seeds deterministic-green while still catching any systematic skew.
	limit := float64(df) + 6*math.Sqrt(2*float64(df))
	if stat > limit {
		t.Fatalf("chi-square %0.1f over %d nodes exceeds %0.1f: delta-graph top-up diverges from fresh sampling", stat, df, limit)
	}
}
