package ris

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// legacyCollection replicates the pre-CSR storage layout — one boxed
// *RRSet per set plus a per-node [][]int32 inverted index — as the
// reference the arena layout must be behaviorally identical to.
type legacyCollection struct {
	sets  []*RRSet
	index [][]int32
}

func newLegacy(n int) *legacyCollection {
	return &legacyCollection{index: make([][]int32, n)}
}

func (l *legacyCollection) add(rr *RRSet) {
	id := int32(len(l.sets))
	l.sets = append(l.sets, rr)
	for _, u := range rr.Nodes {
		l.index[u] = append(l.index[u], id)
	}
}

func (l *legacyCollection) cov(s []graph.NodeID) int {
	covered := make(map[int32]bool)
	for _, u := range s {
		for _, id := range l.index[u] {
			covered[id] = true
		}
	}
	return len(covered)
}

// legacyGreedy is plain (non-CELF) greedy max-coverage over the legacy
// layout: full marginal rescan per pick, smaller node ID on ties.
func (l *legacyCollection) greedy(candidates []graph.NodeID, k int) ([]graph.NodeID, []int) {
	covered := make([]bool, len(l.sets))
	count := 0
	var chosen []graph.NodeID
	var cum []int
	for len(chosen) < k {
		best, bestGain := graph.NodeID(-1), 0
		for _, u := range candidates {
			gain := 0
			for _, id := range l.index[u] {
				if !covered[id] {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && best >= 0 && gain > 0 && u < best) {
				best, bestGain = u, gain
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		for _, id := range l.index[best] {
			if !covered[id] {
				covered[id] = true
				count++
			}
		}
		chosen = append(chosen, best)
		cum = append(cum, count)
	}
	return chosen, cum
}

// generateBoth draws the same θ RR sets (same seed, hence identical RNG
// consumption) into both layouts.
func generateBoth(g *graph.Graph, theta int, seed uint64) (*Collection, *legacyCollection) {
	csr := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(seed)).Generate(theta)
	leg := newLegacy(g.N())
	s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(seed))
	for i := 0; i < theta; i++ {
		rr := s.Draw()
		if rr == nil {
			break
		}
		leg.add(rr)
	}
	return csr, leg
}

func randomGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.Config{Model: gen.PrefAttach, N: 200, AvgDeg: 6, Directed: true, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCSREquivalentToLegacyLayout: on the worked example and a randomized
// graph, the CSR layout must hold the identical set sequence, inverted
// index, coverage counts, and greedy seed selection as the legacy layout.
func TestCSREquivalentToLegacyLayout(t *testing.T) {
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		theta int
	}{
		{"fig1", fig1Graph(), 3000},
		{"random", nil, 2000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			if g == nil {
				g = randomGraph(t)
			}
			csr, leg := generateBoth(g, tc.theta, 123)

			if csr.Len() != len(leg.sets) {
				t.Fatalf("CSR holds %d sets, legacy %d", csr.Len(), len(leg.sets))
			}
			for i := 0; i < csr.Len(); i++ {
				if csr.Root(i) != leg.sets[i].Root {
					t.Fatalf("set %d root %d, legacy %d", i, csr.Root(i), leg.sets[i].Root)
				}
				nodes := csr.SetNodes(i)
				if len(nodes) != len(leg.sets[i].Nodes) {
					t.Fatalf("set %d has %d nodes, legacy %d", i, len(nodes), len(leg.sets[i].Nodes))
				}
				for j := range nodes {
					if nodes[j] != leg.sets[i].Nodes[j] {
						t.Fatalf("set %d node %d: %d vs legacy %d", i, j, nodes[j], leg.sets[i].Nodes[j])
					}
				}
			}
			for u := graph.NodeID(0); u < graph.NodeID(g.N()); u++ {
				got := csr.SetsContaining(u)
				want := leg.index[u]
				if len(got) != len(want) {
					t.Fatalf("node %d: %d sets vs legacy %d", u, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("node %d entry %d: %d vs legacy %d", u, j, got[j], want[j])
					}
				}
				if csr.CountContaining(u) != len(want) {
					t.Fatalf("node %d CountContaining %d, want %d", u, csr.CountContaining(u), len(want))
				}
			}

			r := rng.New(99)
			for trial := 0; trial < 30; trial++ {
				var s []graph.NodeID
				for u := 0; u < g.N(); u++ {
					if r.Coin(0.02) {
						s = append(s, graph.NodeID(u))
					}
				}
				if got, want := csr.Cov(s), leg.cov(s); got != want {
					t.Fatalf("Cov(%v) = %d, legacy %d", s, got, want)
				}
			}

			// Identical seed sequences and cumulative coverage. Candidates
			// are a deterministic slice of the node space so greedy has
			// real choices to make.
			var candidates []graph.NodeID
			for u := 0; u < g.N(); u += 2 {
				candidates = append(candidates, graph.NodeID(u))
			}
			gotSeeds, gotCum := csr.GreedyMaxCoverage(candidates, 8)
			wantSeeds, wantCum := leg.greedy(candidates, 8)
			if len(gotSeeds) != len(wantSeeds) {
				t.Fatalf("greedy chose %v, legacy %v", gotSeeds, wantSeeds)
			}
			for i := range gotSeeds {
				if gotSeeds[i] != wantSeeds[i] || gotCum[i] != wantCum[i] {
					t.Fatalf("greedy pick %d: (%d, cov %d) vs legacy (%d, cov %d)",
						i, gotSeeds[i], gotCum[i], wantSeeds[i], wantCum[i])
				}
			}
		})
	}
}

// TestCSRAllocationDrop asserts the headline win: building a θ-set
// collection in the arena layout performs at least 10× fewer allocations
// than the legacy boxed layout (which paid ≥2 allocations per RR set —
// the *RRSet box and its Nodes slice — plus per-node index growth).
func TestCSRAllocationDrop(t *testing.T) {
	g := fig1Graph()
	const theta = 2000
	legacyAllocs := testing.AllocsPerRun(5, func() {
		leg := newLegacy(g.N())
		s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(7))
		for i := 0; i < theta; i++ {
			leg.add(s.Draw())
		}
	})
	csrAllocs := testing.AllocsPerRun(5, func() {
		s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(7))
		c := s.Generate(theta)
		c.ensureIndex()
	})
	if csrAllocs*10 > legacyAllocs {
		t.Fatalf("CSR build allocates %.0f, legacy %.0f; want ≥10× drop", csrAllocs, legacyAllocs)
	}
	t.Logf("collection build allocations: legacy %.0f, CSR %.0f (%.0f×)",
		legacyAllocs, csrAllocs, legacyAllocs/csrAllocs)
}

// Benchmarks for `go test -bench Collection -benchmem ./internal/ris/`:
// allocs/op is the number to watch (legacy ≈ 2θ + index growth, CSR ≈
// amortized slice growth only).

func BenchmarkCollectionBuildCSR(b *testing.B) {
	g := fig1Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(7))
		c := s.Generate(2000)
		c.ensureIndex()
	}
}

func BenchmarkCollectionBuildLegacy(b *testing.B) {
	g := fig1Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		leg := newLegacy(g.N())
		s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(7))
		for j := 0; j < 2000; j++ {
			leg.add(s.Draw())
		}
	}
}

func BenchmarkCovCSR(b *testing.B) {
	g := fig1Graph()
	c := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(7)).Generate(50000)
	seeds := []graph.NodeID{0, 1, 5}
	c.Cov(seeds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cov(seeds)
	}
}
