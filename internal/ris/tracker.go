package ris

import (
	"time"

	"repro/internal/cascade"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Coverage maintains per-node single-node containment counts
// (CountContaining for every node at once) incrementally as RR sets are
// appended to a Collection. The sequential sampling controller checks its
// stopping rule after every batch; recomputing CountContaining through
// the CSR inverted index would rebuild the index — an O(arena + n) pass —
// per batch per look, while Coverage keeps the counts current in
// O(new batch nodes) and answers each query in O(1), so a per-batch check
// over the alive targets costs O(batch + alive).
//
// A Coverage is compacted in lockstep by Collection.Filter (counts of
// dropped sets are subtracted during the same pass) and zeroed by
// Collection.Reset, so — unlike Marks — it stays valid across the
// filter/top-up cycles of the adaptive round loop. Storage is allocated
// once (one int32 per node of the full graph) and reused across batches
// and rounds. At most one Coverage is attached to a Collection; attaching
// a new one replaces the old.
type Coverage struct {
	c      *Collection
	counts []int32
	seen   int // sets [0, seen) are reflected in counts
}

// NewCoverage attaches an incremental containment tracker to c, counting
// the sets already present.
func (c *Collection) NewCoverage() *Coverage {
	cov := &Coverage{c: c, counts: make([]int32, c.n)}
	c.coverage = cov
	cov.Update()
	return cov
}

// Update folds the RR sets appended since the last Update (or Filter)
// into the counts. O(nodes of the new sets).
func (cov *Coverage) Update() {
	c := cov.c
	for i := cov.seen; i < c.Len(); i++ {
		for _, u := range c.arena[c.offsets[i]:c.offsets[i+1]] {
			cov.counts[u]++
		}
	}
	cov.seen = c.Len()
}

// Count returns |{i : u ∈ R_i}| over the sets folded in so far — equal to
// c.CountContaining(u) whenever Update has seen every set — without
// touching the inverted index.
func (cov *Coverage) Count(u graph.NodeID) int { return int(cov.counts[u]) }

// reset zeroes the counts in place (storage is retained).
func (cov *Coverage) reset() {
	for i := range cov.counts {
		cov.counts[i] = 0
	}
	cov.seen = 0
}

// Batcher owns the draw/filter/top-up cycle every RR-consuming run shares:
// a persistent SamplerPool, one Collection reused across batches and
// residual versions, an optional Coverage tracker, and the sampling
// accounting (drawn / requested / reused / peak bytes / wall time /
// batches) that runs report. The adaptive sequential controller, IMM's
// θ search, and oracle.RIS.Refresh all draw through a Batcher instead of
// hand-rolling the same loop.
type Batcher struct {
	model   cascade.Model
	pool    *SamplerPool
	col     *Collection
	cov     *Coverage
	reuse   bool
	wantCov bool

	drawn, requested, reused, peakBytes, samplingNS int64
	batches                                         int

	// scratch is the reusable child stream GrowTo derives from its parent
	// each batch (SplitTo instead of Split), so steady-state rounds on a
	// warm batcher stay allocation-free. Never serialized: it is reseeded
	// from the parent before every use.
	scratch rng.RNG
}

// NewBatcher creates a batcher drawing under the given model. Cross-version
// reuse is on by default; SetReuse(false) makes Sync regenerate from
// scratch instead of validity-filtering.
func NewBatcher(model cascade.Model) *Batcher {
	return &Batcher{model: model, pool: NewSamplerPool(model), reuse: true}
}

// Model returns the diffusion model the batcher draws under. Warm-reuse
// callers (the service instance registry) use it to refuse handing a
// batcher to a run under a different model.
func (b *Batcher) Model() cascade.Model { return b.model }

// SetReuse toggles cross-version reuse (see Collection.Filter for the
// root-mix caveat of keeping filtered sets).
func (b *Batcher) SetReuse(on bool) { b.reuse = on }

// SetInterrupt installs a cancellation poll on the underlying sampler
// pool: GrowTo batches abort mid-draw when it returns an error (see
// SamplerPool.SetInterrupt). nil removes it.
func (b *Batcher) SetInterrupt(f func() error) { b.pool.SetInterrupt(f) }

// SetBatched opts the underlying pool into frontier-batched expansion
// for bulk draws (see SamplerPool.SetBatched). Bit-identical goldens
// require the default per-draw path.
func (b *Batcher) SetBatched(on bool) { b.pool.SetBatched(on) }

// Reset returns the batcher to its freshly constructed state while keeping
// every warm buffer: the collection's arenas, the coverage tracker's count
// array, and the pool's per-worker samplers all survive for the next run.
// Accounting is zeroed and the collection emptied (version −1), so a new
// campaign checked out on a warm batcher can never mistake a previous
// campaign's RR sets for its own — in particular, a fresh residual's
// version 0 must not collide with stale sets drawn on some earlier
// residual's version 0 (Collection.Filter is version-keyed).
func (b *Batcher) Reset() {
	if b.col != nil {
		b.col.Reset()
	}
	b.pool.SetInterrupt(nil)
	b.pool.ResetStats()
	b.drawn, b.requested, b.reused, b.peakBytes, b.samplingNS = 0, 0, 0, 0, 0
	b.batches = 0
}

// EnableCoverage attaches an incremental Coverage tracker to the batcher's
// collection; GrowTo keeps it current after every batch.
func (b *Batcher) EnableCoverage() {
	b.wantCov = true
	if b.col != nil && b.cov == nil {
		b.cov = b.col.NewCoverage()
	}
}

func (b *Batcher) ensureCol(res *graph.Residual) *Collection {
	if b.col == nil {
		b.col = NewCollection(res.FullN())
		if b.wantCov {
			b.cov = b.col.NewCoverage()
		}
	}
	return b.col
}

// Sync aligns the collection with the residual before a round of growth:
// with reuse on it compacts to the sets still valid on res
// (Collection.Filter) and counts the survivors as reused draws; with reuse
// off it resets the collection (warm storage, fresh sets). It returns the
// number of sets carried over.
func (b *Batcher) Sync(res *graph.Residual) int {
	c := b.ensureCol(res)
	if !b.reuse {
		c.Reset()
		return 0
	}
	kept := c.Filter(res)
	b.reused += int64(kept)
	return kept
}

// Invalidate drops the RR sets that contain any of the touched nodes of a
// topology delta (Collection.InvalidateTouching) and counts the survivors
// as reused draws, so post-delta accounting mirrors the filter/top-up
// cycle. A no-op before the first Sync/GrowTo. Returns the surviving
// count.
func (b *Batcher) Invalidate(touched []graph.NodeID) int {
	if b.col == nil {
		return 0
	}
	kept := b.col.InvalidateTouching(touched)
	b.reused += int64(kept)
	return kept
}

// GrowTo tops the collection up to target RR sets on res, drawing only the
// shortfall through the persistent pool (one batch; RNG substreams are
// split off parent only when something is drawn). The coverage tracker, if
// enabled, is brought current. It returns the collection size, which can
// fall short of target only when the residual has no alive nodes — or when
// the installed interrupt aborted the batch, in which case the error is
// non-nil and the collection contents must be treated as void.
func (b *Batcher) GrowTo(res *graph.Residual, parent *rng.RNG, target, workers int) (int, error) {
	// Fault-plane hook (no-op unless an injector is active): a batch
	// top-up is the failure-prone operation inside every campaign step,
	// so the chaos suite injects here. Checked before any state moves, so
	// an injected error leaves the batcher consistent — only a panic
	// models mid-operation corruption.
	if err := fault.Check(fault.SiteBatcherGrow); err != nil {
		return b.Len(), err
	}
	c := b.ensureCol(res)
	if shortfall := target - c.Len(); shortfall > 0 {
		before := c.Len()
		start := time.Now()
		parent.SplitTo(&b.scratch) // parent advances exactly as Split would
		b.pool.AppendParallel(c, res, &b.scratch, shortfall, workers)
		b.samplingNS += time.Since(start).Nanoseconds()
		b.drawn += int64(c.Len() - before)
		b.requested += int64(shortfall)
		b.batches++
		if err := b.pool.Err(); err != nil {
			return c.Len(), err
		}
	}
	if b.cov != nil {
		b.cov.Update()
	}
	if bytes := c.Bytes(); bytes > b.peakBytes {
		b.peakBytes = bytes
	}
	return c.Len(), nil
}

// Count returns the tracked containment count of u (EnableCoverage first).
func (b *Batcher) Count(u graph.NodeID) int { return b.cov.Count(u) }

// Collection returns the batcher's collection (nil before the first Sync
// or GrowTo).
func (b *Batcher) Collection() *Collection { return b.col }

// Len returns the current number of RR sets held.
func (b *Batcher) Len() int {
	if b.col == nil {
		return 0
	}
	return b.col.Len()
}

// Accounting: totals since the batcher was created.
func (b *Batcher) Drawn() int64      { return b.drawn }     // RR sets generated
func (b *Batcher) Requested() int64  { return b.requested } // RR sets asked of the pool
func (b *Batcher) Reused() int64     { return b.reused }    // sets carried across versions by Sync
func (b *Batcher) PeakBytes() int64  { return b.peakBytes } // max Collection.Bytes seen
func (b *Batcher) SamplingNS() int64 { return b.samplingNS }
func (b *Batcher) Batches() int      { return b.batches } // generator invocations

// Bandwidth accounting, forwarded from the pool: node visits and
// in-adjacency entries read across every draw since the last Reset.
// Together with SamplingNS they yield the bytes/edge-touch measurement
// in the benchmark tables (each visit loads one 16-byte metadata entry,
// each edge touch one 4-byte adjacency word).
func (b *Batcher) Visits() int64      { return int64(b.pool.Visits()) }
func (b *Batcher) EdgeTouches() int64 { return int64(b.pool.EdgeTouches()) }
