package ris

import (
	"container/heap"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
)

// This file adds the parallel marginal-gain evaluation path of
// GreedyMaxCoverage. The serial CELF in coverage.go pops one stale heap
// entry at a time and re-evaluates it inline; on IMM's selection phase over
// all n candidates of a multi-million-node graph that single core is the
// last serial hot path of the pipeline. The parallel path keeps CELF's lazy
// re-evaluation but shards the work that dominates it:
//
//   - the CSR inverted index is built with a range-partitioned counting
//     sort (per-worker per-node counts combined into exact write bases, so
//     the filled index is byte-identical to the serial build),
//   - the initial per-candidate gains are evaluated concurrently (each is
//     an O(1) index lookup once the index exists),
//   - stale heap entries are popped in batches and their marginals
//     recounted concurrently, then sifted back.
//
// Selections are identical to the serial path for any worker count: a node
// is picked only when its freshly evaluated gain tops every other entry's
// (stale ⇒ upper-bound) key, so the pick is the (gain, smaller-ID) argmax
// of the true marginals regardless of how many entries a batch refreshed.
// TestGreedyMaxCoverageParallelMatchesSerial enforces this.

// Refresh batches grow geometrically from initialRefreshBatch to
// maxRefreshBatch while the heap top stays stale, and reset on every
// pick. CELF's laziness is the whole point — after a pick most entries
// are stale but only a few ever need re-evaluation — so a fixed large
// batch would recount hundreds of marginals the serial path never
// touches; doubling bounds the wasted refreshes at ~2× the needed ones
// while still offering whole batches to the workers when a round really
// does re-evaluate many candidates.
const (
	initialRefreshBatch = 8
	maxRefreshBatch     = 1024
)

// minParallelIndexSets is the collection size below which the parallel
// index build falls back to the serial one (fan-out costs more than the
// counting passes save).
const minParallelIndexSets = 4096

// minParallelRefresh is the refresh-batch size below which re-evaluation
// runs inline: most CELF rounds refresh a handful of entries, and
// spawning workers for those costs more than the recounts.
const minParallelRefresh = 64

// parallelFor runs fn over [0, n) split into up to workers contiguous
// chunks and waits for completion. workers <= 1 runs inline.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// BuildIndex materializes the CSR inverted index with up to workers
// goroutines (0 = GOMAXPROCS), or returns immediately if it is already
// valid. The result is identical to the lazily built serial index —
// per-node set ids stay ascending — so queries cannot tell the difference.
// Callers that will read the index concurrently (oracle batch queries,
// the parallel CELF) build it here first; all index reads after that are
// lock-free.
func (c *Collection) BuildIndex(workers int) {
	if c.invValid {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.Len() {
		workers = c.Len()
	}
	if workers <= 1 || c.Len() < minParallelIndexSets {
		c.ensureIndex()
		return
	}

	// Partition sets into contiguous ranges of roughly equal arena share
	// (set count alone would unbalance workers on skewed set sizes).
	bounds := make([]int, workers+1)
	for w := 1; w < workers; w++ {
		target := int32(int64(len(c.arena)) * int64(w) / int64(workers))
		bounds[w] = sort.Search(c.Len(), func(i int) bool { return c.offsets[i] >= target })
	}
	bounds[workers] = c.Len()

	// Per-range per-node counts; the arrays are retained on the collection
	// so steady-state rebuilds (one per Filter or top-up) allocate nothing.
	for len(c.rangeCounts) < workers {
		c.rangeCounts = append(c.rangeCounts, nil)
	}
	parallelFor(workers, workers, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			if cap(c.rangeCounts[w]) < c.n {
				c.rangeCounts[w] = make([]int32, c.n)
			} else {
				c.rangeCounts[w] = c.rangeCounts[w][:c.n]
				for i := range c.rangeCounts[w] {
					c.rangeCounts[w][i] = 0
				}
			}
			counts := c.rangeCounts[w]
			for i := bounds[w]; i < bounds[w+1]; i++ {
				for _, u := range c.arena[c.offsets[i]:c.offsets[i+1]] {
					counts[u]++
				}
			}
		}
	})

	if cap(c.invOff) < c.n+1 {
		c.invOff = make([]int32, c.n+1)
	} else {
		c.invOff = c.invOff[:c.n+1]
	}
	// Combine: one node-major pass turns the per-range counts into exact
	// per-range write bases and the prefix-summed invOff. Range w's slots
	// for node u precede range w+1's, and each range fills its slots in set
	// order, so per-node ids come out ascending — the serial layout.
	off := int32(0)
	for u := 0; u < c.n; u++ {
		c.invOff[u] = off
		for w := 0; w < workers; w++ {
			cnt := c.rangeCounts[w][u]
			c.rangeCounts[w][u] = off
			off += cnt
		}
	}
	c.invOff[c.n] = off

	if cap(c.invArena) < len(c.arena) {
		c.invArena = make([]int32, len(c.arena))
	} else {
		c.invArena = c.invArena[:len(c.arena)]
	}
	parallelFor(workers, workers, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			bases := c.rangeCounts[w]
			for i := bounds[w]; i < bounds[w+1]; i++ {
				id := int32(i)
				for _, u := range c.arena[c.offsets[i]:c.offsets[i+1]] {
					c.invArena[bases[u]] = id
					bases[u]++
				}
			}
		}
	})
	c.invValid = true
}

// popTop removes and returns the heap's top entry (heap.Pop without the
// interface boxing).
func (h *celfHeap) popTop() celfEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		heap.Fix(h, 0)
	}
	return top
}

// pushEntry appends an entry and restores heap order (heap.Push without
// the interface boxing).
func (h *celfHeap) pushEntry(e celfEntry) {
	*h = append(*h, e)
	heap.Fix(h, len(*h)-1)
}

// GreedyMaxCoverageWorkers is GreedyMaxCoverage with parallel marginal
// evaluation: workers > 1 shards the index build, the initial gains, and
// batched CELF re-evaluations across goroutines; workers <= 1 runs the
// serial path, and 0 resolves to GOMAXPROCS. The selected nodes and
// cumulative coverage curve are identical for every worker count.
func (c *Collection) GreedyMaxCoverageWorkers(candidates []graph.NodeID, k, workers int) ([]graph.NodeID, []int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return c.GreedyMaxCoverage(candidates, k)
	}
	c.BuildIndex(workers)
	m := c.NewMarks()
	h := make(celfHeap, len(candidates))
	parallelFor(len(candidates), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := candidates[i]
			h[i] = celfEntry{node: u, rank: c.rankOf(u), gain: int(c.invOff[u+1] - c.invOff[u])}
		}
	})
	heap.Init(&h)
	var chosen []graph.NodeID
	var cum []int
	batch := make([]celfEntry, 0, maxRefreshBatch)
	batchSize := initialRefreshBatch
	for len(chosen) < k && h.Len() > 0 {
		round := len(chosen)
		if top := h[0]; top.round == round {
			if top.gain == 0 {
				break
			}
			m.Cover(top.node)
			chosen = append(chosen, top.node)
			cum = append(cum, m.Count())
			h.popTop()
			batchSize = initialRefreshBatch
			continue
		}
		// Pop the stale prefix (up to batchSize entries), recount the
		// popped marginals concurrently — Marks is read-only here, writes
		// happen only on the single-threaded Cover above — and sift the
		// refreshed entries back.
		batch = batch[:0]
		for len(h) > 0 && len(batch) < batchSize && h[0].round != round {
			batch = append(batch, h.popTop())
		}
		w := workers
		if len(batch) < minParallelRefresh {
			w = 1
		}
		parallelFor(len(batch), w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				batch[i].gain = m.Marginal(batch[i].node)
				batch[i].round = round
			}
		})
		for _, e := range batch {
			h.pushEntry(e)
		}
		if batchSize < maxRefreshBatch {
			batchSize *= 2
		}
	}
	return chosen, cum
}
