package ris

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// randomCollection builds a collection of random sets directly (not via a
// sampler) so tests control the size distribution and can cross the
// parallel-index threshold cheaply.
func randomCollection(r *rng.RNG, n, sets, maxLen int) *Collection {
	c := NewCollection(n)
	var buf []graph.NodeID
	for i := 0; i < sets; i++ {
		l := 1 + r.Intn(maxLen)
		root := graph.NodeID(r.Intn(n))
		buf = append(buf[:0], root)
		for len(buf) < l {
			u := graph.NodeID(r.Intn(n))
			dup := false
			for _, v := range buf {
				if v == u {
					dup = true
					break
				}
			}
			if !dup {
				buf = append(buf, u)
			}
		}
		c.AddSet(root, buf)
	}
	return c
}

// TestGreedyMaxCoverageParallelMatchesSerial is the equivalence property
// behind threading Workers through imm.Select: for randomized collections
// and every worker count, the parallel path must return exactly the serial
// CELF's seed sequence and cumulative coverage curve. The largest case
// crosses minParallelIndexSets so the range-partitioned index build is
// exercised too.
func TestGreedyMaxCoverageParallelMatchesSerial(t *testing.T) {
	r := rng.New(42)
	cases := []struct{ n, sets, maxLen, k int }{
		{n: 30, sets: 120, maxLen: 5, k: 8},
		{n: 200, sets: 2000, maxLen: 10, k: 25},
		{n: 300, sets: 3 * minParallelIndexSets, maxLen: 6, k: 40},
	}
	for _, tc := range cases {
		c := randomCollection(r, tc.n, tc.sets, tc.maxLen)
		candidates := make([]graph.NodeID, tc.n)
		for i := range candidates {
			candidates[i] = graph.NodeID(i)
		}
		wantSeeds, wantCum := c.GreedyMaxCoverage(candidates, tc.k)
		for _, workers := range []int{1, 2, 8} {
			c.invValid = false // force an index rebuild on this path too
			gotSeeds, gotCum := c.GreedyMaxCoverageWorkers(candidates, tc.k, workers)
			if len(gotSeeds) != len(wantSeeds) {
				t.Fatalf("n=%d sets=%d workers=%d: chose %d seeds, serial %d",
					tc.n, tc.sets, workers, len(gotSeeds), len(wantSeeds))
			}
			for i := range gotSeeds {
				if gotSeeds[i] != wantSeeds[i] || gotCum[i] != wantCum[i] {
					t.Fatalf("n=%d sets=%d workers=%d pick %d: got (%d, cov %d), serial (%d, cov %d)",
						tc.n, tc.sets, workers, i, gotSeeds[i], gotCum[i], wantSeeds[i], wantCum[i])
				}
			}
		}
	}
}

// TestBuildIndexParallelMatchesSerial pins the stronger invariant the
// equivalence above relies on: the parallel counting sort produces the
// byte-identical CSR inverted index (per-node set ids ascending, same
// layout) as the lazy serial build.
func TestBuildIndexParallelMatchesSerial(t *testing.T) {
	r := rng.New(7)
	c := randomCollection(r, 150, 2*minParallelIndexSets, 7)
	c.ensureIndex()
	wantOff := append([]int32(nil), c.invOff...)
	wantArena := append([]int32(nil), c.invArena...)
	for _, workers := range []int{2, 3, 8} {
		c.invValid = false
		c.BuildIndex(workers)
		if len(c.invOff) != len(wantOff) || len(c.invArena) != len(wantArena) {
			t.Fatalf("workers=%d: index shape (%d,%d), serial (%d,%d)",
				workers, len(c.invOff), len(c.invArena), len(wantOff), len(wantArena))
		}
		for i := range wantOff {
			if c.invOff[i] != wantOff[i] {
				t.Fatalf("workers=%d: invOff[%d] = %d, serial %d", workers, i, c.invOff[i], wantOff[i])
			}
		}
		for i := range wantArena {
			if c.invArena[i] != wantArena[i] {
				t.Fatalf("workers=%d: invArena[%d] = %d, serial %d", workers, i, c.invArena[i], wantArena[i])
			}
		}
	}
}

// benchmarkGreedy measures one IMM-style selection (all nodes as
// candidates, k=50) on a θ=120k collection, index rebuild included — in
// real runs selection always follows a top-up, which invalidates the
// index. The acceptance target is workers8 ≥ 2× serial on 8+ hardware
// threads; on fewer cores the two converge.
func benchmarkGreedy(b *testing.B, workers int) {
	g := benchGraph(b, false)
	res := graph.NewResidual(g)
	c := GenerateParallel(res, cascade.IC, rng.New(3), 120_000, 0)
	candidates := make([]graph.NodeID, g.N())
	for i := range candidates {
		candidates[i] = graph.NodeID(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.invValid = false
		seeds, _ := c.GreedyMaxCoverageWorkers(candidates, 50, workers)
		if len(seeds) == 0 {
			b.Fatal("no seeds selected")
		}
	}
}

func BenchmarkGreedyMaxCoverage(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkGreedy(b, 1) })
	b.Run("workers8", func(b *testing.B) { benchmarkGreedy(b, 8) })
}
