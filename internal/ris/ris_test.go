package ris

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

func fig1Graph() *graph.Graph {
	return graph.MustFromEdges(7, true, []graph.Edge{
		{From: 0, To: 1, P: 0.4},
		{From: 1, To: 2, P: 0.8},
		{From: 1, To: 3, P: 0.7},
		{From: 3, To: 2, P: 0.6},
		{From: 2, To: 4, P: 0.5},
		{From: 4, To: 5, P: 0.3},
		{From: 5, To: 4, P: 0.7},
		{From: 5, To: 6, P: 0.6},
		{From: 6, To: 0, P: 0.2},
		{From: 4, To: 0, P: 0.7},
	})
}

func TestDrawBasics(t *testing.T) {
	g := fig1Graph()
	s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(1))
	for i := 0; i < 100; i++ {
		rr := s.Draw()
		if rr == nil {
			t.Fatal("Draw returned nil on a live graph")
		}
		if len(rr.Nodes) == 0 {
			t.Fatal("RR set is empty")
		}
		foundRoot := false
		seen := make(map[graph.NodeID]bool)
		for _, u := range rr.Nodes {
			if u == rr.Root {
				foundRoot = true
			}
			if seen[u] {
				t.Fatalf("RR set contains duplicate node %d", u)
			}
			seen[u] = true
		}
		if !foundRoot {
			t.Fatal("RR set does not contain its root")
		}
	}
}

func TestDrawOnEmptyResidual(t *testing.T) {
	g := fig1Graph()
	res := graph.NewResidual(g)
	for u := graph.NodeID(0); u < 7; u++ {
		res.Remove(u)
	}
	s := NewSampler(res, cascade.IC, rng.New(1))
	if rr := s.Draw(); rr != nil {
		t.Fatalf("Draw on empty residual returned %+v", rr)
	}
}

func TestDrawExcludesDeadNodes(t *testing.T) {
	g := fig1Graph()
	res := graph.NewResidual(g)
	res.Remove(2) // v3 dead
	s := NewSampler(res, cascade.IC, rng.New(4))
	for i := 0; i < 500; i++ {
		rr := s.Draw()
		for _, u := range rr.Nodes {
			if u == 2 {
				t.Fatal("dead node appeared in an RR set")
			}
		}
	}
}

func TestDrawRespectsResidualVersion(t *testing.T) {
	// Removing a node after the sampler cached the alive list must be
	// picked up on the next draw.
	g := fig1Graph()
	res := graph.NewResidual(g)
	s := NewSampler(res, cascade.IC, rng.New(4))
	_ = s.Draw()
	res.Remove(0)
	for i := 0; i < 300; i++ {
		rr := s.Draw()
		if rr.Root == 0 {
			t.Fatal("sampled a dead root after removal")
		}
		for _, u := range rr.Nodes {
			if u == 0 {
				t.Fatal("dead node in RR set after removal")
			}
		}
	}
}

// The RIS identity: E[I(S)] = n * Pr[RR ∩ S ≠ ∅]. Verify the estimator
// against hand-computed expected spreads on a two-hop chain.
func TestEstimatorUnbiasedChain(t *testing.T) {
	p1, p2 := 0.6, 0.5
	g := graph.MustFromEdges(3, true, []graph.Edge{
		{From: 0, To: 1, P: p1}, {From: 1, To: 2, P: p2},
	})
	s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(11))
	const theta = 300000
	c := s.Generate(theta)
	got := EstimateSpread(c.Cov([]graph.NodeID{0}), c.Len(), g.N())
	want := 1 + p1 + p1*p2
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("RIS estimate %.4f, want %.4f", got, want)
	}
}

func TestEstimatorMatchesMonteCarloFig1(t *testing.T) {
	g := fig1Graph()
	res := graph.NewResidual(g)
	s := NewSampler(res, cascade.IC, rng.New(21))
	c := s.Generate(200000)
	for _, seed := range []graph.NodeID{0, 1, 5} {
		est := EstimateSpread(c.Cov([]graph.NodeID{seed}), c.Len(), g.N())
		mc := cascade.MonteCarloSpread(g, cascade.IC, []graph.NodeID{seed}, 100000, rng.New(22))
		if math.Abs(est-mc) > 0.05 {
			t.Errorf("node %d: RIS %.3f vs MC %.3f", seed, est, mc)
		}
	}
}

func TestEstimatorOnResidual(t *testing.T) {
	// Chain 0->1->2 with p=1. Remove node 0; on the residual graph (n=2),
	// E[I({1})] = 2 (node 1 reaches 2).
	g := graph.MustFromEdges(3, true, []graph.Edge{
		{From: 0, To: 1, P: 1}, {From: 1, To: 2, P: 1},
	})
	res := graph.NewResidual(g)
	res.Remove(0)
	s := NewSampler(res, cascade.IC, rng.New(31))
	c := s.Generate(20000)
	got := EstimateSpread(c.Cov([]graph.NodeID{1}), c.Len(), res.N())
	if math.Abs(got-2) > 0.05 {
		t.Fatalf("residual RIS estimate %.3f, want 2", got)
	}
}

func TestLTSamplerUnbiased(t *testing.T) {
	// 0 -> 2 (0.5), 1 -> 2 (0.25). Under LT, E[I({0})] = 1 + 0.5.
	g := graph.MustFromEdges(3, true, []graph.Edge{
		{From: 0, To: 2, P: 0.5}, {From: 1, To: 2, P: 0.25},
	})
	s := NewSampler(graph.NewResidual(g), cascade.LT, rng.New(41))
	c := s.Generate(200000)
	got := EstimateSpread(c.Cov([]graph.NodeID{0}), c.Len(), g.N())
	mc := cascade.MonteCarloSpread(g, cascade.LT, []graph.NodeID{0}, 100000, rng.New(42))
	if math.Abs(got-1.5) > 0.02 || math.Abs(mc-1.5) > 0.02 {
		t.Fatalf("LT estimates RIS=%.3f MC=%.3f, want 1.5", got, mc)
	}
}

func TestCovBruteForceProperty(t *testing.T) {
	g := fig1Graph()
	s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(51))
	c := s.Generate(500)
	f := func(mask uint8) bool {
		var set []graph.NodeID
		for u := 0; u < 7; u++ {
			if mask&(1<<u) != 0 {
				set = append(set, graph.NodeID(u))
			}
		}
		// Brute force: count RR sets intersecting the set.
		want := 0
		for i := 0; i < c.Len(); i++ {
			hit := false
			for _, u := range c.SetNodes(i) {
				for _, v := range set {
					if u == v {
						hit = true
					}
				}
			}
			if hit {
				want++
			}
		}
		return c.Cov(set) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 128}); err != nil {
		t.Fatal(err)
	}
}

func TestMarksIncrementalMatchesCov(t *testing.T) {
	g := fig1Graph()
	s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(61))
	c := s.Generate(2000)
	m := c.NewMarks()
	var acc []graph.NodeID
	for _, u := range []graph.NodeID{1, 5, 0, 3} {
		// Marginal must equal Cov(acc ∪ {u}) - Cov(acc).
		want := c.Cov(append(append([]graph.NodeID{}, acc...), u)) - c.Cov(acc)
		if got := m.Marginal(u); got != want {
			t.Fatalf("Marginal(%d | %v) = %d, want %d", u, acc, got, want)
		}
		gained := m.Cover(u)
		if gained != want {
			t.Fatalf("Cover(%d) gained %d, want %d", u, gained, want)
		}
		acc = append(acc, u)
		if m.Count() != c.Cov(acc) {
			t.Fatalf("Count() = %d, Cov(%v) = %d", m.Count(), acc, c.Cov(acc))
		}
	}
}

func TestMarginalCoverageOneShot(t *testing.T) {
	g := fig1Graph()
	s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(71))
	c := s.Generate(1000)
	base := []graph.NodeID{1}
	got := c.MarginalCoverage(3, base)
	want := c.Cov([]graph.NodeID{1, 3}) - c.Cov(base)
	if got != want {
		t.Fatalf("MarginalCoverage = %d, want %d", got, want)
	}
}

func TestGreedyMaxCoverage(t *testing.T) {
	g := fig1Graph()
	s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(81))
	c := s.Generate(5000)
	all := []graph.NodeID{0, 1, 2, 3, 4, 5, 6}
	chosen, cum := c.GreedyMaxCoverage(all, 3)
	if len(chosen) == 0 || len(chosen) != len(cum) {
		t.Fatalf("chose %v cum %v", chosen, cum)
	}
	// First pick must be the single node with maximum coverage.
	best, bestCov := graph.NodeID(-1), -1
	for _, u := range all {
		if cov := c.Cov([]graph.NodeID{u}); cov > bestCov {
			best, bestCov = u, cov
		}
	}
	if chosen[0] != best {
		t.Fatalf("first pick %d (cov %d), want %d (cov %d)",
			chosen[0], c.Cov([]graph.NodeID{chosen[0]}), best, bestCov)
	}
	// Cumulative coverage must be nondecreasing and match Cov of prefix.
	for i := range chosen {
		if got := c.Cov(chosen[:i+1]); got != cum[i] {
			t.Fatalf("cum[%d] = %d, Cov(prefix) = %d", i, cum[i], got)
		}
	}
}

func TestGreedyMaxCoverageStopsWhenSaturated(t *testing.T) {
	// Single RR set; after one pick nothing can add coverage.
	c := NewCollection(3)
	c.Add(&RRSet{Root: 0, Nodes: []graph.NodeID{0, 1}})
	chosen, _ := c.GreedyMaxCoverage([]graph.NodeID{0, 1, 2}, 3)
	if len(chosen) != 1 {
		t.Fatalf("chose %v, want exactly one node", chosen)
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	c := NewCollection(3)
	c.Add(&RRSet{Root: 0, Nodes: []graph.NodeID{0, 1, 2}})
	for i := 0; i < 20; i++ {
		chosen, _ := c.GreedyMaxCoverage([]graph.NodeID{2, 1, 0}, 1)
		if len(chosen) != 1 || chosen[0] != 0 {
			t.Fatalf("tie-break picked %v, want [0]", chosen)
		}
	}
}

func TestGenerateParallelDeterministic(t *testing.T) {
	g := fig1Graph()
	res := graph.NewResidual(g)
	a := GenerateParallel(res, cascade.IC, rng.New(90), 1000, 4)
	b := GenerateParallel(res, cascade.IC, rng.New(90), 1000, 4)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		na, nb := a.SetNodes(i), b.SetNodes(i)
		if a.Root(i) != b.Root(i) || len(na) != len(nb) {
			t.Fatalf("set %d differs", i)
		}
		for j := range na {
			if na[j] != nb[j] {
				t.Fatalf("set %d node %d differs", i, j)
			}
		}
	}
}

func TestGenerateParallelCountAndEstimate(t *testing.T) {
	g := fig1Graph()
	res := graph.NewResidual(g)
	c := GenerateParallel(res, cascade.IC, rng.New(91), 50000, 0)
	if c.Len() != 50000 {
		t.Fatalf("generated %d sets, want 50000", c.Len())
	}
	est := EstimateSpread(c.Cov([]graph.NodeID{1}), c.Len(), g.N())
	mc := cascade.MonteCarloSpread(g, cascade.IC, []graph.NodeID{1}, 100000, rng.New(92))
	if math.Abs(est-mc) > 0.06 {
		t.Fatalf("parallel RIS %.3f vs MC %.3f", est, mc)
	}
}

func TestEstimateSpreadZeroTheta(t *testing.T) {
	if EstimateSpread(5, 0, 100) != 0 {
		t.Fatal("zero theta should estimate 0")
	}
}

func TestGenerateShortfallSurfaced(t *testing.T) {
	// Empty residual: every draw fails, so the collection must report the
	// full shortfall instead of silently holding fewer sets.
	g := fig1Graph()
	res := graph.NewResidual(g)
	for u := graph.NodeID(0); u < 7; u++ {
		res.Remove(u)
	}
	s := NewSampler(res, cascade.IC, rng.New(1))
	c := s.Generate(100)
	if c.Len() != 0 || c.Requested() != 100 || c.Shortfall() != 100 {
		t.Fatalf("len=%d requested=%d shortfall=%d, want 0/100/100", c.Len(), c.Requested(), c.Shortfall())
	}
	full := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(1)).Generate(100)
	if full.Shortfall() != 0 || full.Requested() != 100 {
		t.Fatalf("live graph reported shortfall %d requested %d", full.Shortfall(), full.Requested())
	}
	par := GenerateParallel(res, cascade.IC, rng.New(2), 64, 4)
	if par.Shortfall() != 64 {
		t.Fatalf("parallel shortfall %d, want 64", par.Shortfall())
	}
}

func TestMarksResetReusable(t *testing.T) {
	g := fig1Graph()
	s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(61))
	c := s.Generate(2000)
	m := c.NewMarks()
	want := c.Cov([]graph.NodeID{1, 5})
	for i := 0; i < 3; i++ {
		m.Reset()
		m.CoverAll([]graph.NodeID{1, 5})
		if m.Count() != want {
			t.Fatalf("after reset %d: count %d, want %d", i, m.Count(), want)
		}
	}
	// Marks created before more sets are added must grow on Reset.
	early := c.NewMarks()
	c.Add(&RRSet{Root: 0, Nodes: []graph.NodeID{0}})
	early.Reset()
	if got := early.Cover(0); got != len(c.SetsContaining(0)) {
		t.Fatalf("grown marks covered %d, want %d", got, len(c.SetsContaining(0)))
	}
}

func TestCovAllocationFree(t *testing.T) {
	g := fig1Graph()
	s := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(71))
	c := s.Generate(50000)
	seeds := []graph.NodeID{0, 1, 5}
	c.Cov(seeds) // warm the scratch buffer
	avg := testing.AllocsPerRun(50, func() { c.Cov(seeds) })
	if avg != 0 {
		t.Fatalf("Cov allocates %.1f per call after warmup, want 0", avg)
	}
}
