package ris

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// snapshotSets copies every RR set out of c (roots + nodes) so a later
// in-place Filter can be cross-checked against a brute-force rescan.
func snapshotSets(c *Collection) []*RRSet {
	out := make([]*RRSet, c.Len())
	for i := range out {
		nodes := make([]graph.NodeID, len(c.SetNodes(i)))
		copy(nodes, c.SetNodes(i))
		out[i] = &RRSet{Root: c.Root(i), Nodes: nodes}
	}
	return out
}

// surviving returns the subsequence of sets avoiding every dead node,
// the brute-force definition Filter must match exactly.
func surviving(sets []*RRSet, res *graph.Residual) []*RRSet {
	var out []*RRSet
	for _, rr := range sets {
		ok := true
		for _, u := range rr.Nodes {
			if !res.Alive(u) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, rr)
		}
	}
	return out
}

// TestFilterKeepsExactlyValidSets: after node deletions, Filter must keep
// exactly the RR sets avoiding deleted nodes, in their original order,
// with contents intact — cross-checked against a brute-force rescan on
// both the worked example and a randomized graph.
func TestFilterKeepsExactlyValidSets(t *testing.T) {
	for _, tc := range []struct {
		name   string
		g      *graph.Graph
		remove []graph.NodeID
	}{
		{"fig1", fig1Graph(), []graph.NodeID{2, 5}},
		{"random", nil, []graph.NodeID{0, 3, 17, 42}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			if g == nil {
				g = randomGraph(t)
			}
			res := graph.NewResidual(g)
			s := NewSampler(res, cascade.IC, rng.New(5))
			c := s.Generate(2000)
			before := snapshotSets(c)

			res.RemoveAll(tc.remove)
			want := surviving(before, res)
			kept := c.Filter(res)

			if kept != len(want) || c.Len() != len(want) {
				t.Fatalf("Filter kept %d (Len %d), brute force %d", kept, c.Len(), len(want))
			}
			for i, rr := range want {
				if c.Root(i) != rr.Root {
					t.Fatalf("kept set %d root %d, want %d", i, c.Root(i), rr.Root)
				}
				nodes := c.SetNodes(i)
				if len(nodes) != len(rr.Nodes) {
					t.Fatalf("kept set %d length %d, want %d", i, len(nodes), len(rr.Nodes))
				}
				for j := range nodes {
					if nodes[j] != rr.Nodes[j] {
						t.Fatalf("kept set %d node %d: %d, want %d", i, j, nodes[j], rr.Nodes[j])
					}
				}
			}
			// The rebuilt inverted index must agree: no deleted node may
			// index anything, and coverage matches a brute-force count.
			for _, u := range tc.remove {
				if got := c.CountContaining(u); got != 0 {
					t.Fatalf("deleted node %d still in %d sets", u, got)
				}
			}
			alive := res.AliveNodes()
			for _, u := range alive[:min(10, len(alive))] {
				wantCov := 0
				for _, rr := range want {
					for _, v := range rr.Nodes {
						if v == u {
							wantCov++
							break
						}
					}
				}
				if got := c.Cov([]graph.NodeID{u}); got != wantCov {
					t.Fatalf("Cov({%d}) = %d after filter, want %d", u, got, wantCov)
				}
			}
		})
	}
}

// TestFilterVersionTracking: Filter is keyed on Residual.Version — an
// unchanged residual is a no-op, every mutation triggers exactly one
// rescan, and the collection's version follows the residual's.
func TestFilterVersionTracking(t *testing.T) {
	g := fig1Graph()
	res := graph.NewResidual(g)
	s := NewSampler(res, cascade.IC, rng.New(9))
	c := s.Generate(500)
	if c.Version() != res.Version() {
		t.Fatalf("generated collection version %d, residual %d", c.Version(), res.Version())
	}

	// No mutation: Filter must keep everything (and not rescan — observable
	// through the version staying put even though nothing changed).
	if kept := c.Filter(res); kept != 500 || c.Len() != 500 {
		t.Fatalf("no-op filter kept %d/%d", kept, c.Len())
	}

	res.Remove(2)
	kept1 := c.Filter(res)
	if c.Version() != res.Version() {
		t.Fatalf("after filter version %d, residual %d", c.Version(), res.Version())
	}
	if kept1 == 500 {
		t.Fatal("removing a fig1 hub invalidated no sets; test graph too weak")
	}
	// Filtering again at the same version is a no-op returning Len.
	if kept := c.Filter(res); kept != kept1 {
		t.Fatalf("repeat filter kept %d, want %d", kept, kept1)
	}

	// A second mutation compacts further (monotone under more deletions).
	res.Remove(4)
	kept2 := c.Filter(res)
	if kept2 > kept1 {
		t.Fatalf("more deletions kept more sets: %d then %d", kept1, kept2)
	}

	// Requested tracks the surviving count after a filter, so a top-up to
	// a new θ target leaves shortfall accounting consistent.
	s2 := NewSampler(res, cascade.IC, rng.New(10))
	s2.AppendTo(c, 800-c.Len())
	if c.Len() != 800 || c.Requested() != 800 || c.Shortfall() != 0 {
		t.Fatalf("after top-up len=%d requested=%d shortfall=%d, want 800/800/0",
			c.Len(), c.Requested(), c.Shortfall())
	}
	// Topped-up sets were drawn on the current residual: still all valid.
	if kept := c.Filter(res); kept != 800 {
		t.Fatalf("filter after top-up kept %d, want 800", kept)
	}
}

// TestFilterInvalidatesScratchMarks: Cov must answer correctly after a
// Filter compacts set ids out from under the internal scratch buffer.
func TestFilterInvalidatesScratchMarks(t *testing.T) {
	g := fig1Graph()
	res := graph.NewResidual(g)
	c := NewSampler(res, cascade.IC, rng.New(11)).Generate(1000)
	_ = c.Cov([]graph.NodeID{1}) // materialize scratch over 1000 sets
	res.Remove(2)
	c.Filter(res)
	want := 0
	for i := 0; i < c.Len(); i++ {
		for _, v := range c.SetNodes(i) {
			if v == 1 {
				want++
				break
			}
		}
	}
	if got := c.Cov([]graph.NodeID{1}); got != want {
		t.Fatalf("Cov after filter %d, want %d", got, want)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
