package ris

import (
	"math"
	"testing"

	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// wcTestGraph is a weighted-cascade preferential-attachment graph — the
// paper's standard weighting, which compresses to per-node in-probability
// storage and so exercises every fast path.
func wcTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.Config{Model: gen.PrefAttach, N: 300, AvgDeg: 5, Directed: true, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if !g.InUniform() {
		t.Fatal("weighted-cascade test graph did not compress")
	}
	return g
}

// sampleHistograms draws theta RR sets and returns the set-size histogram
// (sizes above maxSize pooled into the last bin) plus per-node membership
// counts.
func sampleHistograms(g *graph.Graph, model cascade.Model, seed uint64, theta, maxSize int, ref bool) ([]float64, []float64) {
	s := NewSampler(graph.NewResidual(g), model, rng.New(seed))
	s.noFast = ref
	sizes := make([]float64, maxSize+1)
	members := make([]float64, g.N())
	for i := 0; i < theta; i++ {
		root, ok := s.drawTouched()
		if !ok {
			panic("draw failed")
		}
		_ = root
		sz := len(s.touched)
		if sz > maxSize {
			sz = maxSize
		}
		sizes[sz]++
		for _, u := range s.touched {
			members[u]++
		}
	}
	return sizes, members
}

// chiSquareTwoSample computes the two-sample chi-square statistic over two
// equal-size histograms, merging bins whose combined count is below
// minCount into a pooled tail. Returns the statistic and degrees of
// freedom used.
func chiSquareTwoSample(a, b []float64, minCount float64) (float64, int) {
	stat := 0.0
	df := -1
	poolA, poolB := 0.0, 0.0
	add := func(x, y float64) {
		if s := x + y; s > 0 {
			stat += (x - y) * (x - y) / s
			df++
		}
	}
	for i := range a {
		if a[i]+b[i] < minCount {
			poolA += a[i]
			poolB += b[i]
			continue
		}
		add(a[i], b[i])
	}
	add(poolA, poolB)
	return stat, df
}

// TestFastICMatchesReferenceChiSquare: with a fixed seed, the table/jump
// fast path and the per-edge reference path must produce the same RR-set
// size distribution (two-sample chi-square) and the same per-node
// membership marginals on a weighted-cascade graph.
func TestFastICMatchesReferenceChiSquare(t *testing.T) {
	g := wcTestGraph(t)
	const theta = 120000
	fastSizes, fastMem := sampleHistograms(g, cascade.IC, 101, theta, 20, false)
	refSizes, refMem := sampleHistograms(g, cascade.IC, 202, theta, 20, true)

	stat, df := chiSquareTwoSample(fastSizes, refSizes, 10)
	// Critical value at p=0.001 for df<=20 is < 46; a real distribution
	// mismatch (e.g. an off-by-one in the success count) lands far above.
	if stat > 46 {
		t.Fatalf("size-distribution chi-square %.1f (df=%d): fast %v vs ref %v",
			stat, df, fastSizes, refSizes)
	}
	for u := range fastMem {
		pf := fastMem[u] / theta
		pr := refMem[u] / theta
		// 5-sigma binomial tolerance on the pooled estimate.
		p := (pf + pr) / 2
		tol := 5 * math.Sqrt(2*p*(1-p)/theta)
		if math.Abs(pf-pr) > tol+1e-9 {
			t.Fatalf("node %d membership %v (fast) vs %v (ref), tol %v", u, pf, pr, tol)
		}
	}
}

// TestFastLTMatchesReferenceChiSquare is the LT analogue: the O(1)
// inverted pick against the linear prefix scan.
func TestFastLTMatchesReferenceChiSquare(t *testing.T) {
	g := wcTestGraph(t)
	const theta = 120000
	fastSizes, fastMem := sampleHistograms(g, cascade.LT, 303, theta, 20, false)
	refSizes, refMem := sampleHistograms(g, cascade.LT, 404, theta, 20, true)

	stat, df := chiSquareTwoSample(fastSizes, refSizes, 10)
	if stat > 46 {
		t.Fatalf("LT size-distribution chi-square %.1f (df=%d)", stat, df)
	}
	for u := range fastMem {
		pf := fastMem[u] / theta
		pr := refMem[u] / theta
		p := (pf + pr) / 2
		tol := 5 * math.Sqrt(2*p*(1-p)/theta)
		if math.Abs(pf-pr) > tol+1e-9 {
			t.Fatalf("node %d LT membership %v (fast) vs %v (ref), tol %v", u, pf, pr, tol)
		}
	}
}

// poolHistograms draws theta RR sets through a single-worker SamplerPool
// — per-draw or frontier-batched — and bins them like sampleHistograms.
// Membership is counted in original-ID space so histograms from a
// degree-renumbered build compare directly against identity ones.
func poolHistograms(t *testing.T, g *graph.Graph, batched bool, seed uint64, theta, maxSize int) ([]float64, []float64) {
	t.Helper()
	res := graph.NewResidual(g)
	pool := NewSamplerPool(cascade.IC)
	pool.SetBatched(batched)
	c := NewCollection(res.FullN())
	pool.AppendParallel(c, res, rng.New(seed), theta, 1)
	if err := pool.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != theta {
		t.Fatalf("short generation: %d of %d sets", c.Len(), theta)
	}
	sizes := make([]float64, maxSize+1)
	members := make([]float64, g.N())
	for i := 0; i < c.Len(); i++ {
		nodes := c.SetNodes(i)
		sz := len(nodes)
		if sz > maxSize {
			sz = maxSize
		}
		sizes[sz]++
		for _, u := range nodes {
			members[g.OriginalID(u)]++
		}
	}
	return sizes, members
}

// compareHistograms applies the suite's two acceptance checks — size
// distribution chi-square below the p=0.001 critical value and per-node
// membership marginals within 5-sigma binomial tolerance.
func compareHistograms(t *testing.T, aSizes, bSizes, aMem, bMem []float64, theta int) {
	t.Helper()
	stat, df := chiSquareTwoSample(aSizes, bSizes, 10)
	if stat > 46 {
		t.Fatalf("size-distribution chi-square %.1f (df=%d): %v vs %v",
			stat, df, aSizes, bSizes)
	}
	for u := range aMem {
		pa := aMem[u] / float64(theta)
		pb := bMem[u] / float64(theta)
		p := (pa + pb) / 2
		tol := 5 * math.Sqrt(2*p*(1-p)/float64(theta))
		if math.Abs(pa-pb) > tol+1e-9 {
			t.Fatalf("node %d membership %v vs %v, tol %v", u, pa, pb, tol)
		}
	}
}

// TestBatchedMatchesPerDrawChiSquare: the frontier-batched kernel
// consumes randomness in a different order than the per-draw loop, so
// the sets differ draw by draw — but the RR-set size distribution and
// per-node membership marginals must agree. This is the batched half of
// the PR 3 distributional-equivalence suite.
func TestBatchedMatchesPerDrawChiSquare(t *testing.T) {
	g := wcTestGraph(t)
	const theta = 120000
	perSizes, perMem := poolHistograms(t, g, false, 505, theta, 20)
	batSizes, batMem := poolHistograms(t, g, true, 606, theta, 20)
	compareHistograms(t, perSizes, batSizes, perMem, batMem, theta)
}

// TestBatchedRenumberedMatchesPerDrawChiSquare runs the benchmark
// configuration — batched kernel on the degree-renumbered build —
// against the per-draw identity baseline. Membership marginals are
// compared in original-ID space, exercising both halves of the
// renumbering contract (root sampling and expansion) distributionally.
func TestBatchedRenumberedMatchesPerDrawChiSquare(t *testing.T) {
	g := wcTestGraph(t)
	ren, err := gen.Generate(gen.Config{Model: gen.PrefAttach, N: 300, AvgDeg: 5, Directed: true, Seed: 33, DegreeOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ren.Renumbered() {
		t.Fatal("degree-ordered build did not renumber")
	}
	const theta = 120000
	perSizes, perMem := poolHistograms(t, g, false, 707, theta, 20)
	batSizes, batMem := poolHistograms(t, ren, true, 808, theta, 20)
	compareHistograms(t, perSizes, batSizes, perMem, batMem, theta)
}

// TestBatchedPrefetchVariantIdentical: the split expansion pass used
// above the prefetch node-count threshold stages gather indices through
// the candidate buffer, while the small-graph variant gathers inline.
// Both must draw byte-identical sets from the same parent stream — the
// split only reorders memory operations, never randomness.
func TestBatchedPrefetchVariantIdentical(t *testing.T) {
	g := wcTestGraph(t)
	draw := func() *Collection {
		res := graph.NewResidual(g)
		pool := NewSamplerPool(cascade.IC)
		pool.SetBatched(true)
		c := NewCollection(res.FullN())
		pool.AppendParallel(c, res, rng.New(909), 5000, 1)
		if err := pool.Err(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := draw()
	defer func(old int) { batchPrefetchMinNodes = old }(batchPrefetchMinNodes)
	batchPrefetchMinNodes = 1 // force the prefetch variant on 300 nodes
	b := draw()
	if a.Len() != b.Len() {
		t.Fatalf("set counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Root(i) != b.Root(i) {
			t.Fatalf("set %d: root %d vs %d", i, a.Root(i), b.Root(i))
		}
		na, nb := a.SetNodes(i), b.SetNodes(i)
		if len(na) != len(nb) {
			t.Fatalf("set %d: sizes %d vs %d", i, len(na), len(nb))
		}
		for j := range na {
			if na[j] != nb[j] {
				t.Fatalf("set %d node %d: %d vs %d", i, j, na[j], nb[j])
			}
		}
	}
}

// TestTrivalencyFallbackIdentical: on a mixed in-probability graph the
// sampler must take the per-edge path, byte-identical to the reference
// sampler — the fallback is not merely equivalent but the same code.
func TestTrivalencyFallbackIdentical(t *testing.T) {
	b := graph.NewBuilder(50, true)
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		u := graph.NodeID(r.Intn(50))
		v := graph.NodeID(r.Intn(50))
		if u == v {
			continue
		}
		_ = b.AddEdge(u, v, [3]float64{0.4, 0.2, 0.1}[r.Intn(3)])
	}
	b.Dedup()
	g := b.Build()
	if g.InUniform() {
		t.Fatal("trivalency graph unexpectedly compressed")
	}
	def := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(77))
	ref := NewSampler(graph.NewResidual(g), cascade.IC, rng.New(77))
	ref.noFast = true
	for i := 0; i < 500; i++ {
		a, b := def.Draw(), ref.Draw()
		if a.Root != b.Root || len(a.Nodes) != len(b.Nodes) {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.Nodes {
			if a.Nodes[j] != b.Nodes[j] {
				t.Fatalf("draw %d node %d diverged", i, j)
			}
		}
	}
}

// TestPoolMatchesFreeFunctions: a persistent pool must generate exactly
// the collections the free functions do, across residual versions.
func TestPoolMatchesFreeFunctions(t *testing.T) {
	g := wcTestGraph(t)
	pool := NewSamplerPool(cascade.IC)
	for _, workers := range []int{1, 4} {
		resA := graph.NewResidual(g)
		resB := graph.NewResidual(g)
		for round := 0; round < 3; round++ {
			a := GenerateParallel(resA, cascade.IC, rng.New(uint64(round)+60), 700, workers)
			b := pool.Generate(resB, rng.New(uint64(round)+60), 700, workers)
			if a.Len() != b.Len() {
				t.Fatalf("round %d workers %d: %d vs %d sets", round, workers, a.Len(), b.Len())
			}
			for i := 0; i < a.Len(); i++ {
				if a.Root(i) != b.Root(i) {
					t.Fatalf("round %d set %d: root %d vs %d", round, i, a.Root(i), b.Root(i))
				}
				na, nb := a.SetNodes(i), b.SetNodes(i)
				if len(na) != len(nb) {
					t.Fatalf("round %d set %d: sizes differ", round, i)
				}
				for j := range na {
					if na[j] != nb[j] {
						t.Fatalf("round %d set %d node %d differs", round, i, j)
					}
				}
			}
			resA.Remove(graph.NodeID(round * 7))
			resB.Remove(graph.NodeID(round * 7))
		}
	}
}

// TestPoolConcurrentWorkersSafe drives a pool with several workers across
// residual versions; `go test -race ./internal/ris/...` in CI guards the
// worker scratch against sharing bugs.
func TestPoolConcurrentWorkersSafe(t *testing.T) {
	g := wcTestGraph(t)
	res := graph.NewResidual(g)
	pool := NewSamplerPool(cascade.IC)
	parent := rng.New(9)
	c := NewCollection(res.FullN())
	for round := 0; round < 6; round++ {
		pool.AppendParallel(c, res, parent, 400, 4)
		for i := 0; i < c.Len(); i++ {
			for _, u := range c.SetNodes(i) {
				if !res.Alive(u) && round == 0 {
					t.Fatalf("dead node %d in a set on a full residual", u)
				}
			}
		}
		res.Remove(graph.NodeID(round * 11))
		c.Filter(res)
	}
}

// TestAppendParallelWarmNoAllocs asserts the pool's steady state: after a
// warm-up attempt, regenerating the same batch through the pool performs
// zero allocations — no fresh samplers, visited arrays, RNG streams, or
// arena growth per attempt. The batched kernel must meet the same
// budget: its worklists, spill records, candidate buffers and lane-mask
// array are sized on the warm-up pass and only reused afterwards.
func TestAppendParallelWarmNoAllocs(t *testing.T) {
	for _, batched := range []bool{false, true} {
		g := wcTestGraph(t)
		res := graph.NewResidual(g)
		pool := NewSamplerPool(cascade.IC)
		pool.SetBatched(batched)
		parent := rng.New(5)
		c := NewCollection(res.FullN())
		pool.AppendParallel(c, res, parent, 2000, 1) // warm-up attempt
		avg := testing.AllocsPerRun(20, func() {
			parent.Reseed(5) // identical draws each attempt
			c.Reset()
			pool.AppendParallel(c, res, parent, 2000, 1)
		})
		if avg != 0 {
			t.Fatalf("warm AppendParallel (batched=%v) allocates %.1f per attempt, want 0", batched, avg)
		}
	}
}
