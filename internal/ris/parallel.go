package ris

import (
	"runtime"
	"sync"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// GenerateParallel draws theta RR sets using up to workers goroutines and
// merges them into one Collection. Each worker owns a Split() substream of
// parent, so the union of generated sets is a deterministic function of
// (parent state, theta, workers) regardless of scheduling; the merge order
// is by worker index, keeping the collection layout reproducible too.
//
// workers <= 0 means GOMAXPROCS. The residual view is shared read-only;
// callers must not mutate it during generation.
func GenerateParallel(res *graph.Residual, model cascade.Model, parent *rng.RNG, theta, workers int) *Collection {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > theta {
		workers = theta
	}
	if workers <= 1 {
		s := NewSampler(res, model, parent.Split())
		return s.Generate(theta)
	}
	// Deterministic per-worker quotas and streams.
	quota := make([]int, workers)
	for i := 0; i < workers; i++ {
		quota[i] = theta / workers
	}
	for i := 0; i < theta%workers; i++ {
		quota[i]++
	}
	streams := make([]*rng.RNG, workers)
	for i := range streams {
		streams[i] = parent.Split()
	}
	results := make([][]*RRSet, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewSampler(res, model, streams[w])
			sets := make([]*RRSet, 0, quota[w])
			for i := 0; i < quota[w]; i++ {
				rr := s.Draw()
				if rr == nil {
					break
				}
				sets = append(sets, rr)
			}
			results[w] = sets
		}(w)
	}
	wg.Wait()
	c := NewCollection(res.FullN())
	c.noteRequested(theta)
	for _, sets := range results {
		for _, rr := range sets {
			c.Add(rr)
		}
	}
	return c
}
