package ris

import (
	"runtime"
	"sync"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// chunk is one worker's output: a local arena with per-set lengths,
// spliced into the destination collection in worker order.
type chunk struct {
	arena []graph.NodeID
	lens  []int32
	roots []graph.NodeID
}

// AppendParallel draws count RR sets using up to workers goroutines and
// appends them to c. Each worker owns a Split() substream of parent, so
// the appended sets are a deterministic function of (parent state, count,
// workers) regardless of scheduling; chunks merge in worker order, keeping
// the arena layout reproducible too.
//
// workers <= 0 means GOMAXPROCS. The residual view is shared read-only;
// callers must not mutate it during generation.
func AppendParallel(c *Collection, res *graph.Residual, model cascade.Model, parent *rng.RNG, count, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		s := NewSampler(res, model, parent.Split())
		s.AppendTo(c, count)
		return
	}
	// Deterministic per-worker quotas and streams.
	quota := make([]int, workers)
	for i := 0; i < workers; i++ {
		quota[i] = count / workers
	}
	for i := 0; i < count%workers; i++ {
		quota[i]++
	}
	streams := make([]*rng.RNG, workers)
	for i := range streams {
		streams[i] = parent.Split()
	}
	results := make([]chunk, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewSampler(res, model, streams[w])
			var ck chunk
			for i := 0; i < quota[w]; i++ {
				root, ok := s.drawTouched()
				if !ok {
					break
				}
				ck.arena = append(ck.arena, s.touched...)
				ck.lens = append(ck.lens, int32(len(s.touched)))
				ck.roots = append(ck.roots, root)
			}
			results[w] = ck
		}(w)
	}
	wg.Wait()
	c.noteRequested(count)
	c.noteVersion(res.Version())
	for _, ck := range results {
		c.appendBulk(ck.arena, ck.lens, ck.roots)
	}
}

// GenerateParallel draws theta RR sets into a new Collection using up to
// workers goroutines. See AppendParallel for the determinism contract.
func GenerateParallel(res *graph.Residual, model cascade.Model, parent *rng.RNG, theta, workers int) *Collection {
	c := NewCollection(res.FullN())
	AppendParallel(c, res, model, parent, theta, workers)
	return c
}
