package ris

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// errBatchAborted is the sentinel a batched worker's poll returns when
// another worker already raised the stop flag; it never reaches Err.
var errBatchAborted = errors.New("ris: batch aborted by another worker")

// chunk is one worker's output: a local arena with per-set lengths,
// spliced into the destination collection in worker order.
type chunk struct {
	arena []graph.NodeID
	lens  []int32
	roots []graph.NodeID
}

// SamplerPool owns persistent per-worker samplers for bulk RR generation.
// Worker scratch (visited marks, traversal stacks, output chunks) and RNG
// stream objects survive across batches, so a warm pool draws a whole
// attempt without allocating — unlike the one-sampler-per-call pattern,
// which paid a fresh O(N) visited array per worker per batch. A pool is
// owned by one run (an adaptive algorithm, an oracle, an IMM invocation)
// and is not safe for concurrent use; its workers synchronize internally.
type SamplerPool struct {
	model    cascade.Model
	samplers []*Sampler
	streams  []*rng.RNG
	chunks   []chunk
	quota    []int

	// batched selects frontier-batched expansion (batch.go) for bulk
	// draws when the graph supports it — compressed IC in-sampler tables
	// — falling back to the per-draw loop otherwise. Opt-in: bulk callers
	// (benchmarks, repro rrbench, equivalence tests) enable it, while
	// single-draw Session stepping and golden-pinned paths stay on the
	// per-draw loop so bit-identical fixtures keep passing.
	batched bool

	// interrupt, when non-nil, is polled during generation (every
	// interruptStride draws per worker); a non-nil return aborts the batch
	// mid-draw-loop, leaving the destination collection untouched (multi-
	// worker) or short (single worker), and is reported by Err until the
	// next batch. The function must be safe for concurrent use — every
	// worker calls it.
	interrupt func() error
	err       error
}

// interruptStride is how many RR draws a worker performs between interrupt
// polls: frequent enough that a cancelled campaign or an exceeded cell
// budget stops within milliseconds, rare enough that the poll (often an
// atomic load plus a clock read) never shows up in sampling throughput.
const interruptStride = 64

// SetInterrupt installs (or, with nil, removes) the cancellation poll for
// future batches. With no interrupt installed the draw loops are exactly
// the historical ones.
func (p *SamplerPool) SetInterrupt(f func() error) { p.interrupt = f }

// SetBatched opts future batches into frontier-batched expansion where
// the graph supports it. The batched path draws from the same joint
// distribution as the per-draw path — every per-node success count and
// neighbor pick has the identical law — but through per-lane substreams
// spent at a different cadence, so collections differ bit-for-bit while
// matching distributionally.
func (p *SamplerPool) SetBatched(on bool) { p.batched = on }

// Visits returns the cumulative number of node visits (worklist pops =
// nodes appended to RR sets) across all draws by this pool's workers.
// With EdgeTouches it prices sampling in memory traffic: a visit costs
// one 16-byte metadata load plus bookkeeping, an edge touch one 4-byte
// adjacency read.
func (p *SamplerPool) Visits() uint64 {
	var v uint64
	for _, s := range p.samplers {
		v += s.visits
	}
	return v
}

// EdgeTouches returns the cumulative number of in-adjacency entries read
// across all draws by this pool's workers. The batched kernel issues one
// speculative adjacency read per visit (its branchless fast path computes
// the single-success expansion whether or not it commits), so its touch
// counts sit slightly above the per-draw loop's for the same sets — the
// counter prices actual traffic, not useful traffic.
func (p *SamplerPool) EdgeTouches() uint64 {
	var v uint64
	for _, s := range p.samplers {
		v += s.edgeTouches
	}
	return v
}

// MaxDepth returns the deepest BFS level any batched draw reached.
func (p *SamplerPool) MaxDepth() int {
	d := 0
	for _, s := range p.samplers {
		if s.maxDepth > d {
			d = s.maxDepth
		}
	}
	return d
}

// ResetStats zeroes the cumulative visit/edge-touch counters.
func (p *SamplerPool) ResetStats() {
	for _, s := range p.samplers {
		s.visits, s.edgeTouches, s.maxDepth = 0, 0, 0
	}
}

// Err reports whether the most recent AppendParallel batch was aborted by
// the interrupt, and with what error. It is reset at the start of every
// batch.
func (p *SamplerPool) Err() error { return p.err }

// NewSamplerPool creates an empty pool drawing under the given model.
// Workers are materialized lazily on first use.
func NewSamplerPool(model cascade.Model) *SamplerPool {
	return &SamplerPool{model: model}
}

// grow ensures at least workers samplers, streams and chunks exist.
func (p *SamplerPool) grow(workers int) {
	for len(p.samplers) < workers {
		p.samplers = append(p.samplers, &Sampler{model: p.model})
		p.streams = append(p.streams, &rng.RNG{}) // reseeded before every use
	}
	if len(p.chunks) < workers {
		p.chunks = append(p.chunks, make([]chunk, workers-len(p.chunks))...)
	}
}

// AppendParallel draws count RR sets on res using up to workers goroutines
// and appends them to c. Each worker is reseeded with a Split() substream
// of parent, so the appended sets are a deterministic function of (parent
// state, count, workers) regardless of scheduling; chunks merge in worker
// order, keeping the arena layout reproducible too.
//
// workers <= 0 means GOMAXPROCS. The residual view is shared read-only;
// callers must not mutate it during generation.
func (p *SamplerPool) AppendParallel(c *Collection, res *graph.Residual, parent *rng.RNG, count, workers int) {
	p.err = nil
	if p.interrupt != nil {
		if err := p.interrupt(); err != nil {
			p.err = err
			return
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	p.grow(workers)
	batched := p.batched && p.model == cascade.IC
	if batched {
		// The batched kernel is specialized to compressed IC tables; other
		// graphs and models fall back to the per-draw loop. It also assumes
		// a non-empty adjacency arena, which its speculative expansion
		// indexes unconditionally.
		meta, arena, _, _ := res.Graph().InSamplerTables()
		batched = meta != nil && len(arena) > 0
	}
	if workers == 1 {
		parent.SplitTo(p.streams[0])
		s := p.samplers[0]
		s.bind(res, p.streams[0])
		if batched {
			// Windows commit into the worker chunk and splice in one bulk
			// append; the interrupt is polled between windows, leaving the
			// collection short (completed windows only) on abort, like the
			// chunked per-draw path below.
			ck := &p.chunks[0]
			ck.arena, ck.lens, ck.roots = ck.arena[:0], ck.lens[:0], ck.roots[:0]
			_, err := s.appendBatched(ck, count, p.interrupt)
			c.noteRequested(count)
			c.noteVersion(res.Version())
			c.appendBulk(ck.arena, ck.lens, ck.roots)
			p.err = err
			return
		}
		if p.interrupt == nil {
			s.AppendTo(c, count)
			return
		}
		// Chunked draws poll the interrupt between strides. The RNG stream
		// and the appended sets are identical to one AppendTo(c, count)
		// call — chunking only splits the loop, and the per-chunk
		// noteRequested calls sum to count.
		for done := 0; done < count; {
			n := interruptStride
			if rest := count - done; rest < n {
				n = rest
			}
			before := c.Len()
			s.AppendTo(c, n)
			done += n
			if c.Len()-before < n {
				return // empty residual; AppendTo gave up early
			}
			if done < count {
				if err := p.interrupt(); err != nil {
					p.err = err
					return
				}
			}
		}
		return
	}
	// Deterministic per-worker quotas and streams.
	p.quota = p.quota[:0]
	for i := 0; i < workers; i++ {
		q := count / workers
		if i < count%workers {
			q++
		}
		p.quota = append(p.quota, q)
		parent.SplitTo(p.streams[i])
	}
	// Cancellation fan-in: the first worker whose interrupt poll fails
	// records the error and raises the stop flag; every worker checks the
	// flag per draw (one atomic load) and the function itself only once per
	// interruptStride draws.
	var stop atomic.Bool
	var stopOnce sync.Once
	var stopErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// batched rides along as a parameter: capturing it in the closure
		// would move it to the heap at declaration time, costing the
		// single-worker fast path (which returns long before this loop) one
		// allocation per call.
		go func(w int, batched bool) {
			defer wg.Done()
			s := p.samplers[w]
			s.bind(res, p.streams[w])
			ck := &p.chunks[w]
			ck.arena = ck.arena[:0]
			ck.lens = ck.lens[:0]
			ck.roots = ck.roots[:0]
			if batched {
				poll := p.interrupt
				if poll != nil {
					poll = func() error {
						if stop.Load() {
							return errBatchAborted
						}
						return p.interrupt()
					}
				}
				if _, err := s.appendBatched(ck, p.quota[w], poll); err != nil {
					// The first real error wins stopOnce before the stop flag
					// rises, so a worker aborted by the flag (errBatchAborted)
					// can never overwrite it.
					stopOnce.Do(func() { stopErr = err })
					stop.Store(true)
				}
				return
			}
			for i := 0; i < p.quota[w]; i++ {
				if p.interrupt != nil {
					if stop.Load() {
						return
					}
					if i%interruptStride == interruptStride-1 {
						if err := p.interrupt(); err != nil {
							stopOnce.Do(func() { stopErr = err })
							stop.Store(true)
							return
						}
					}
				}
				root, ok := s.drawTouched()
				if !ok {
					break
				}
				ck.arena = append(ck.arena, s.touched...)
				ck.lens = append(ck.lens, int32(len(s.touched)))
				ck.roots = append(ck.roots, root)
			}
		}(w, batched)
	}
	wg.Wait()
	if stop.Load() {
		// Aborted: leave c untouched so the caller sees a consistent (if
		// short) collection; the error makes the whole batch void.
		p.err = stopErr
		return
	}
	c.noteRequested(count)
	c.noteVersion(res.Version())
	for w := 0; w < workers; w++ {
		ck := &p.chunks[w]
		c.appendBulk(ck.arena, ck.lens, ck.roots)
	}
}

// Generate draws theta RR sets into a new Collection through the pool.
func (p *SamplerPool) Generate(res *graph.Residual, parent *rng.RNG, theta, workers int) *Collection {
	c := NewCollection(res.FullN())
	p.AppendParallel(c, res, parent, theta, workers)
	return c
}

// AppendParallel is the pool-free convenience form: it draws through a
// throwaway SamplerPool, preserving the historical free-function contract
// (and its per-call scratch cost). Long-lived callers should hold a
// SamplerPool instead.
func AppendParallel(c *Collection, res *graph.Residual, model cascade.Model, parent *rng.RNG, count, workers int) {
	NewSamplerPool(model).AppendParallel(c, res, parent, count, workers)
}

// GenerateParallel draws theta RR sets into a new Collection using up to
// workers goroutines. See SamplerPool.AppendParallel for the determinism
// contract.
func GenerateParallel(res *graph.Residual, model cascade.Model, parent *rng.RNG, theta, workers int) *Collection {
	c := NewCollection(res.FullN())
	AppendParallel(c, res, model, parent, theta, workers)
	return c
}
