package ris

import (
	"repro/internal/graph"
)

// Collection stores RR sets in a CSR/arena layout: the nodes of every RR
// set live in one flat arena, with per-set offsets, so a collection is a
// handful of contiguous allocations regardless of how many sets it holds.
// The inverted index (node -> ids of the RR sets containing it) is itself
// CSR — one flat id arena plus per-node offsets — built lazily in a single
// counting pass the first time a coverage query needs it.
//
// Layout:
//
//	set i's nodes:            arena[offsets[i]:offsets[i+1]], root roots[i]
//	sets containing node u:   invArena[invOff[u]:invOff[u+1]]
//
// Compared to the previous []*RRSet + per-node []int32 layout this cuts
// per-set and per-node allocations to O(1) amortized and keeps the data
// cache-contiguous, which is what lets livejournal-scale θ fit in memory.
//
// A Collection additionally supports cross-round reuse: Filter compacts
// the arena in place to the RR sets still valid on a mutated residual
// (tracked via graph.Residual.Version), and the generators in ris.go /
// parallel.go can append a top-up into an existing collection instead of
// rebuilding from scratch.
//
// A Collection is not safe for concurrent use: Cov routes through a
// reusable internal mark buffer to stay allocation-free.
type Collection struct {
	n int // node-ID space (full graph size; residuals keep original IDs)

	arena   []graph.NodeID
	offsets []int32
	roots   []graph.NodeID

	invArena []int32
	invOff   []int32
	cursor   []int32 // scratch for ensureIndex's fill pass
	// rangeCounts is BuildIndex's per-worker scratch (per-range per-node
	// counts, converted to write bases in place); retained like cursor so
	// steady-state parallel rebuilds allocate nothing.
	rangeCounts [][]int32
	invValid    bool

	// version is the graph.Residual.Version the held sets were drawn on
	// (or last filtered against); -1 when unknown. Filter uses it to skip
	// rescans when the residual has not changed.
	version int64

	// requested accumulates the θ values asked of the generators, so a
	// shortfall (empty residual mid-generation) is observable instead of
	// silently weakening the concentration guarantee. Filter resets it to
	// the surviving count, so after a filter + top-up cycle it reflects
	// the current contents again.
	requested int

	scratch *Marks // lazily created buffer backing Cov

	// tieOrder, when non-nil, maps internal node IDs to the rank used for
	// greedy tie-breaking (smaller rank wins). Degree-renumbered graphs set
	// it to their original-ID permutation so selection ties resolve the
	// same way under either numbering; nil means rank == node ID.
	tieOrder []graph.NodeID

	// coverage is the attached incremental containment tracker, if any;
	// Filter compacts it in lockstep and Reset zeroes it (see tracker.go).
	coverage *Coverage
}

// NewCollection creates an empty collection over a graph with n nodes
// (full node count; residual sampling still uses original IDs).
func NewCollection(n int) *Collection {
	return &Collection{n: n, offsets: []int32{0}, version: -1}
}

// Add appends one RR set and invalidates the inverted index.
func (c *Collection) Add(rr *RRSet) { c.AddSet(rr.Root, rr.Nodes) }

// maxArena bounds the flat arena length so int32 offsets cannot wrap; at
// livejournal scale that is ~2 billion node entries (8 GiB) per
// collection, beyond which the overflow must be loud, not silent.
const maxArena = 1<<31 - 1

// AddSet appends an RR set given as (root, nodes) without requiring an
// RRSet box; nodes are copied into the arena.
func (c *Collection) AddSet(root graph.NodeID, nodes []graph.NodeID) {
	if len(c.arena)+len(nodes) > maxArena {
		panic("ris: collection arena exceeds int32 offset range; shard the collection")
	}
	c.arena = append(c.arena, nodes...)
	c.offsets = append(c.offsets, int32(len(c.arena)))
	c.roots = append(c.roots, root)
	c.invValid = false
}

// growArena ensures the arena can hold need entries without reallocating,
// clamping the capacity to maxArena. Bulk generators reserve a worst-case
// RR set up front so they can build sets in the arena tail in place.
func (c *Collection) growArena(need int) {
	if cap(c.arena) >= need || need > maxArena {
		return
	}
	newCap := 2 * cap(c.arena)
	if newCap < need {
		newCap = need
	}
	if newCap > maxArena {
		newCap = maxArena
	}
	bigger := make([]graph.NodeID, len(c.arena), newCap)
	copy(bigger, c.arena)
	c.arena = bigger
}

// commitSet finalizes a set of n nodes built in place in the arena tail
// (arena[len(arena):len(arena)+n] already holds them). It enforces the
// same maxArena bound as AddSet: raw appends elsewhere can leave the
// arena with capacity beyond maxArena, so an in-place build near the
// boundary must still fail loudly rather than wrap the int32 offsets.
func (c *Collection) commitSet(root graph.NodeID, n int) {
	if len(c.arena)+n > maxArena {
		panic("ris: collection arena exceeds int32 offset range; shard the collection")
	}
	c.arena = c.arena[:len(c.arena)+n]
	c.offsets = append(c.offsets, int32(len(c.arena)))
	c.roots = append(c.roots, root)
	c.invValid = false
}

// appendBulk splices a chunk of sets (a worker-local arena) onto c,
// preserving set order. lens holds the per-set node counts.
func (c *Collection) appendBulk(arena []graph.NodeID, lens []int32, roots []graph.NodeID) {
	if len(c.arena)+len(arena) > maxArena {
		panic("ris: collection arena exceeds int32 offset range; shard the collection")
	}
	c.arena = append(c.arena, arena...)
	base := c.offsets[len(c.offsets)-1]
	for _, l := range lens {
		base += l
		c.offsets = append(c.offsets, base)
	}
	c.roots = append(c.roots, roots...)
	c.invValid = false
}

// Reset empties the collection in place, keeping the arena, offset, root
// and index capacity for reuse — the warm path of persistent sampler
// pools, where a fresh attempt reuses last attempt's storage instead of
// growing a new arena from zero. Any Marks over the collection must be
// discarded.
func (c *Collection) Reset() {
	c.arena = c.arena[:0]
	c.offsets = c.offsets[:1]
	c.offsets[0] = 0
	c.roots = c.roots[:0]
	c.invValid = false
	c.version = -1
	c.requested = 0
	c.scratch = nil
	if c.coverage != nil {
		c.coverage.reset()
	}
}

// Len returns the number of RR sets actually held (the paper's θ as far as
// estimates are concerned).
func (c *Collection) Len() int { return len(c.roots) }

// Root returns the root of RR set i.
func (c *Collection) Root(i int) graph.NodeID { return c.roots[i] }

// SetNodes returns the nodes of RR set i as a view into the arena;
// read-only, invalidated by Filter.
func (c *Collection) SetNodes(i int) []graph.NodeID {
	return c.arena[c.offsets[i]:c.offsets[i+1]]
}

// Requested returns the total number of RR sets the generators were asked
// for. Requested > Len means some draws hit an empty residual.
func (c *Collection) Requested() int { return c.requested }

// Shortfall returns how many requested RR sets were never generated.
func (c *Collection) Shortfall() int {
	if d := c.requested - c.Len(); d > 0 {
		return d
	}
	return 0
}

// noteRequested records that theta RR sets were requested from a generator.
func (c *Collection) noteRequested(theta int) { c.requested += theta }

// noteVersion records the residual version the sets are being drawn on.
func (c *Collection) noteVersion(v int64) { c.version = v }

// Version returns the residual version the collection's sets are valid
// for (-1 when the collection was built without a residual).
func (c *Collection) Version() int64 { return c.version }

// Bytes returns the heap footprint of the collection's backing arrays
// (arena, offsets, roots, and inverted index if built). Deterministic for
// a deterministic build, unlike process-level memory stats, so it can be
// reported in reproducible experiment rows.
func (c *Collection) Bytes() int64 {
	b := int64(cap(c.arena))*4 + int64(cap(c.offsets))*4 + int64(cap(c.roots))*4
	b += int64(cap(c.invArena))*4 + int64(cap(c.invOff))*4
	return b
}

// ensureIndex builds the CSR inverted index in one counting pass:
// per-node occurrence counts, prefix sum, then a fill preserving
// ascending set-id order per node.
func (c *Collection) ensureIndex() {
	if c.invValid {
		return
	}
	if cap(c.invOff) < c.n+1 {
		c.invOff = make([]int32, c.n+1)
	} else {
		c.invOff = c.invOff[:c.n+1]
		for i := range c.invOff {
			c.invOff[i] = 0
		}
	}
	for _, u := range c.arena {
		c.invOff[u+1]++
	}
	for u := 0; u < c.n; u++ {
		c.invOff[u+1] += c.invOff[u]
	}
	if cap(c.invArena) < len(c.arena) {
		c.invArena = make([]int32, len(c.arena))
	} else {
		c.invArena = c.invArena[:len(c.arena)]
	}
	// cursor[u] tracks the next free slot for node u during the fill; a
	// persistent scratch (reused like invOff/invArena) keeps index
	// rebuilds — one per Filter or top-up — allocation-free at steady
	// state even on multi-million-node graphs.
	if cap(c.cursor) < c.n {
		c.cursor = make([]int32, c.n)
	} else {
		c.cursor = c.cursor[:c.n]
	}
	cursor := c.cursor
	copy(cursor, c.invOff[:c.n])
	for i := 0; i < c.Len(); i++ {
		for _, u := range c.arena[c.offsets[i]:c.offsets[i+1]] {
			c.invArena[cursor[u]] = int32(i)
			cursor[u]++
		}
	}
	c.invValid = true
}

// SetsContaining returns the ids of RR sets that contain u (ascending).
func (c *Collection) SetsContaining(u graph.NodeID) []int32 {
	c.ensureIndex()
	return c.invArena[c.invOff[u]:c.invOff[u+1]]
}

// CountContaining returns |{i : u ∈ R_i}| — the single-node coverage
// CovR({u}) — without materializing the slice.
func (c *Collection) CountContaining(u graph.NodeID) int {
	c.ensureIndex()
	return int(c.invOff[u+1] - c.invOff[u])
}

// Filter compacts the collection in place to the RR sets that are still
// valid on res: exactly those whose nodes (root included) are all alive.
// Conditioned on its root, a surviving set is distributed exactly as an
// RR set of the current residual (the failed coins into deleted nodes are
// the only outcomes excluded), so adaptive rounds may keep these sets and
// only top up the shortfall (ADDATP/HATP round loop, oracle.RIS.Refresh
// with SetReuse). The caveat is the root mix: roots whose sets tend to
// survive are over-represented versus a uniform draw from the new alive
// set, a tilt proportional to the fraction of the pool invalidated —
// negligible for the small per-round deletions near the adaptive stopping
// frontier, where reuse saves the most.
//
// Filter is keyed on res.Version(): if the residual has not changed since
// the sets were drawn (or last filtered), it returns immediately. It
// returns the number of surviving sets. Set ids change on compaction, so
// any Marks over the collection must be discarded.
func (c *Collection) Filter(res *graph.Residual) int {
	if c.version == res.Version() {
		return c.Len()
	}
	cov := c.coverage
	covSeen := 0
	w := 0         // write cursor over sets
	wa := int32(0) // write cursor over arena
	for i := 0; i < c.Len(); i++ {
		lo, hi := c.offsets[i], c.offsets[i+1]
		alive := true
		for _, u := range c.arena[lo:hi] {
			if !res.Alive(u) {
				alive = false
				break
			}
		}
		if !alive {
			// Compact the attached coverage tracker in lockstep: a counted
			// set that drops out must give its containment counts back.
			if cov != nil && i < cov.seen {
				for _, u := range c.arena[lo:hi] {
					cov.counts[u]--
				}
			}
			continue
		}
		if cov != nil && i < cov.seen {
			covSeen++
		}
		copy(c.arena[wa:wa+(hi-lo)], c.arena[lo:hi])
		c.roots[w] = c.roots[i]
		w++
		wa += hi - lo
		c.offsets[w] = wa
	}
	c.roots = c.roots[:w]
	c.offsets = c.offsets[:w+1]
	c.arena = c.arena[:wa]
	c.invValid = false
	c.scratch = nil // set ids changed; stale marks must not survive
	if cov != nil {
		// Surviving counted sets form a prefix of the compacted order
		// (Filter preserves order), so the tracker's counted prefix is
		// exactly the kept sets it had already folded in.
		cov.seen = covSeen
	}
	c.version = res.Version()
	c.requested = w
	return w
}

// InvalidateTouching compacts the collection in place to the RR sets that
// contain none of the touched nodes — the generalized invalidation
// contract for topology deltas. Reverse sampling examines edge (u,v) only
// when it visits v, so an RR set avoiding every delta target endpoint
// (graph.DeltaResult.Touched) is distributed on the new topology exactly
// as it was drawn on the old one and stays valid; sets containing a
// touched node are dropped and the shortfall is topped up through the
// usual Batcher.GrowTo. The root-mix caveat of Filter applies here too,
// proportional to the dropped fraction — small for the sparse-churn
// deltas this is built for.
//
// Unlike Filter, the collection's residual version is left alone: the
// survivors remain valid for the current residual, so a later Sync/Filter
// at the same version is the expected no-op. When the inverted index is
// current it is used to flag the dropped sets in O(hits); otherwise a
// single mark-and-scan pass over the arena decides. Set ids change on
// compaction, so any Marks over the collection must be discarded; an
// attached Coverage is compacted in lockstep. Returns the number of
// surviving sets.
func (c *Collection) InvalidateTouching(touched []graph.NodeID) int {
	if len(touched) == 0 || c.Len() == 0 {
		return c.Len()
	}
	var drop []bool
	var marked []bool
	if c.invValid {
		drop = make([]bool, c.Len())
		for _, u := range touched {
			for _, id := range c.SetsContaining(u) {
				drop[id] = true
			}
		}
	} else {
		marked = make([]bool, c.n)
		for _, u := range touched {
			marked[u] = true
		}
	}
	cov := c.coverage
	covSeen := 0
	w := 0         // write cursor over sets
	wa := int32(0) // write cursor over arena
	for i := 0; i < c.Len(); i++ {
		lo, hi := c.offsets[i], c.offsets[i+1]
		keep := true
		if drop != nil {
			keep = !drop[i]
		} else {
			for _, u := range c.arena[lo:hi] {
				if marked[u] {
					keep = false
					break
				}
			}
		}
		if !keep {
			if cov != nil && i < cov.seen {
				for _, u := range c.arena[lo:hi] {
					cov.counts[u]--
				}
			}
			continue
		}
		if cov != nil && i < cov.seen {
			covSeen++
		}
		copy(c.arena[wa:wa+(hi-lo)], c.arena[lo:hi])
		c.roots[w] = c.roots[i]
		w++
		wa += hi - lo
		c.offsets[w] = wa
	}
	c.roots = c.roots[:w]
	c.offsets = c.offsets[:w+1]
	c.arena = c.arena[:wa]
	c.invValid = false
	c.scratch = nil // set ids changed; stale marks must not survive
	if cov != nil {
		cov.seen = covSeen
	}
	c.requested = w
	return w
}
