// Package ris implements Reverse Influence Sampling (Borgs et al., SODA
// 2014): random reverse-reachable (RR) sets, the estimation backbone of
// the paper's sampling algorithms — ADDATP (conf_icde_Huang0XSL20
// Algorithm 3), HATP (Algorithm 4) — and of the nonadaptive baselines.
//
// An RR set R(v) for a uniformly random root v contains every node u that
// reaches v in a random realization. The fundamental identity
//
//	E[I(S)] = n * Pr[R ∩ S ≠ ∅]
//
// turns coverage counting over a sample of RR sets into an unbiased spread
// estimator. On residual graphs (the paper's G_i, §III), roots are drawn
// uniformly from the n_i alive nodes and reverse traversal ignores dead
// nodes, estimating E[I_{G_i}(S)] with the same identity scaled by n_i.
//
// The package is organized as:
//
//   - Sampler (ris.go): single-threaded RR-set generation on a residual
//     view, with scratch reuse so a draw allocates only its arena append.
//     On graphs with compressed in-probabilities (graph.InUniform — the
//     weighted-cascade and uniform weightings) a node visit under IC runs
//     in O(successes) RNG draws instead of O(in-degree): the successful
//     in-edge count comes from one success-count table draw (or an
//     rng.Geometric jump sequence for nodes without a table), and the
//     success positions are placed uniformly — the same joint distribution
//     as one independent coin per edge, up to the tables' documented 2^-32
//     quantization. LT picks its in-parent by inverting the prefix scan in
//     O(1). Trivalency-style mixed graphs take the per-edge reference path
//     unchanged.
//   - SamplerPool (parallel.go): persistent per-worker samplers for bulk
//     generation. Worker scratch, RNG stream objects and output chunks
//     survive across attempts, rounds, and algorithms, so a warm pool
//     draws a whole attempt with zero allocations (asserted by
//     TestAppendParallelWarmNoAllocs). The adaptive session steppers,
//     oracle.RIS and imm.Select each own one.
//   - Frontier-batched kernel (batch.go): SetBatched switches bulk draws
//     to a kernel expanding 8 lanes (concurrent RR draws) through
//     structure-of-arrays worklists with a one-byte-per-node lane
//     bitmask, issuing software prefetch hints (internal/cpu) for the
//     metadata, adjacency-arena and visited-mask lines of upcoming pops
//     on graphs too large for L2. The win is memory-level parallelism —
//     eight independent miss chains where a single BFS is a serial
//     pointer chase. Randomness is consumed in a different order than
//     the per-draw loop, so individual sets differ; distributional
//     equivalence is pinned by the chi-square + exact-oracle suite
//     (TestBatchedMatchesPerDrawChiSquare, oracle's
//     TestRISBatchedMatchesExact), and the pool's Visits/EdgeTouches
//     counters price the kernels' memory traffic for the benchmark
//     tables (repro rrbench).
//   - Collection (collection.go): CSR/arena storage — one flat node arena
//     plus per-set offsets, and a lazily built CSR inverted index — so a
//     collection is ~4 contiguous allocations regardless of θ. Reset
//     empties it in place keeping capacity (the pool's warm path);
//     Collection.Filter compacts in place to the sets still valid on a
//     mutated residual, enabling cross-round reuse: a set drawn on G_i
//     that avoids every node deleted since remains a correctly
//     distributed RR sample of G_j (j > i).
//   - Coverage queries (coverage.go, select.go): CovR(S), incremental
//     marginals via Marks, and heap-based CELF greedy max-coverage — the
//     selection step of IMM (§VI-A) and the nonadaptive greedy baseline.
//     GreedyMaxCoverageWorkers adds a parallel marginal-evaluation path
//     (range-partitioned index build, concurrent initial gains, batched
//     lazy re-evaluation) whose selections are identical to the serial
//     CELF for every worker count.
//   - Coverage tracker and Batcher (tracker.go): Coverage maintains
//     per-node containment counts incrementally as batches are appended
//     and is compacted in lockstep by Collection.Filter, so a per-batch
//     stopping-rule check costs O(batch + alive) instead of an inverted
//     index rebuild. Batcher packages the draw/filter/top-up cycle —
//     pool, collection, tracker, accounting — shared by the adaptive
//     sequential controller, IMM's θ search, and oracle.RIS. Its warm
//     loop is allocation-free (TestBatcherWarmLoopNoAllocs).
//   - AppendParallel / GenerateParallel (parallel.go): deterministic
//     multi-worker generation that can top up an existing collection;
//     thin wrappers over a throwaway SamplerPool.
package ris
