package ris

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// checkCoverageMatchesIndex cross-checks the incremental tracker against
// the inverted-index count for every node.
func checkCoverageMatchesIndex(t *testing.T, c *Collection, cov *Coverage, where string) {
	t.Helper()
	for u := 0; u < c.n; u++ {
		if got, want := cov.Count(graph.NodeID(u)), c.CountContaining(graph.NodeID(u)); got != want {
			t.Fatalf("%s: coverage count of node %d = %d, index says %d", where, u, got, want)
		}
	}
}

// TestCoverageTracksAppendsFiltersResets drives a Coverage through the
// adaptive round loop's lifecycle — append batches, filter on a mutated
// residual, top up, reset — and cross-checks the counts against the CSR
// inverted index at every step.
func TestCoverageTracksAppendsFiltersResets(t *testing.T) {
	g := wcTestGraph(t)
	res := graph.NewResidual(g)
	pool := NewSamplerPool(cascade.IC)
	parent := rng.New(41)
	c := NewCollection(res.FullN())
	pool.AppendParallel(c, res, parent, 200, 2)
	cov := c.NewCoverage() // attaches mid-life: must count existing sets
	checkCoverageMatchesIndex(t, c, cov, "after attach")

	for round := 0; round < 5; round++ {
		pool.AppendParallel(c, res, parent, 150, 2)
		cov.Update()
		checkCoverageMatchesIndex(t, c, cov, "after batch")

		res.Remove(graph.NodeID(7 * (round + 1)))
		kept := c.Filter(res)
		if kept != c.Len() {
			t.Fatalf("Filter reported %d kept, Len is %d", kept, c.Len())
		}
		checkCoverageMatchesIndex(t, c, cov, "after filter")
	}

	c.Reset()
	for u := 0; u < c.n; u++ {
		if cov.Count(graph.NodeID(u)) != 0 {
			t.Fatalf("node %d count %d after Reset", u, cov.Count(graph.NodeID(u)))
		}
	}
	// The tracker must keep working after a reset (warm storage).
	pool.AppendParallel(c, res, parent, 120, 2)
	cov.Update()
	checkCoverageMatchesIndex(t, c, cov, "after reset + refill")
}

// TestCoverageFilterWithUncountedTail: Filter must treat sets appended
// after the last Update (not yet folded into the counts) as uncounted —
// dropping one must not decrement, keeping one must leave it for the next
// Update.
func TestCoverageFilterWithUncountedTail(t *testing.T) {
	g := graph.MustFromEdges(4, true, []graph.Edge{
		{From: 0, To: 1, P: 0.5},
		{From: 2, To: 3, P: 0.5},
	})
	res := graph.NewResidual(g)
	c := NewCollection(4)
	c.AddSet(1, []graph.NodeID{1, 0})
	cov := c.NewCoverage() // counts {1,0}
	c.AddSet(3, []graph.NodeID{3, 2})
	c.AddSet(2, []graph.NodeID{2}) // uncounted tail
	res.Remove(3)
	if kept := c.Filter(res); kept != 2 {
		t.Fatalf("kept %d sets, want 2", kept)
	}
	// {3,2} was never counted, so its drop must not touch node 2's count.
	if cov.Count(2) != 0 {
		t.Fatalf("node 2 count %d before Update, want 0", cov.Count(2))
	}
	cov.Update()
	checkCoverageMatchesIndex(t, c, cov, "after tail update")
}

// TestBatcherAccountingAndReuse: the shared draw/filter/top-up cycle must
// reproduce the accounting the adaptive loop and oracle.RIS used to keep
// by hand: reused counts the survivors of Sync, drawn/requested the
// top-ups, and reuse-off resets instead of filtering.
func TestBatcherAccountingAndReuse(t *testing.T) {
	g := wcTestGraph(t)
	res := graph.NewResidual(g)
	b := NewBatcher(cascade.IC)
	b.EnableCoverage()
	parent := rng.New(43)
	if n, err := b.GrowTo(res, parent, 500, 2); n != 500 || err != nil {
		t.Fatalf("GrowTo returned %d, %v, want 500, nil", n, err)
	}
	if b.Drawn() != 500 || b.Requested() != 500 || b.Batches() != 1 || b.Reused() != 0 {
		t.Fatalf("fresh grow accounting drawn=%d requested=%d batches=%d reused=%d",
			b.Drawn(), b.Requested(), b.Batches(), b.Reused())
	}
	// Growing to a target at or below Len draws nothing.
	if _, _ = b.GrowTo(res, parent, 400, 2); b.Drawn() != 500 || b.Batches() != 1 {
		t.Fatalf("no-op grow drew sets: drawn=%d batches=%d", b.Drawn(), b.Batches())
	}
	res.Remove(3)
	kept := b.Sync(res)
	if kept <= 0 || kept >= 500 {
		t.Fatalf("Sync kept %d of 500 after removing a hub-adjacent node", kept)
	}
	if b.Reused() != int64(kept) {
		t.Fatalf("reused %d, want %d", b.Reused(), kept)
	}
	b.GrowTo(res, parent, 500, 2)
	if b.Len() != 500 || b.Drawn() != int64(500+500-kept) {
		t.Fatalf("top-up len=%d drawn=%d (kept=%d)", b.Len(), b.Drawn(), kept)
	}
	checkCoverageMatchesIndex(t, b.Collection(), b.cov, "after top-up")
	if b.PeakBytes() <= 0 || b.SamplingNS() < 0 {
		t.Fatalf("degenerate accounting peak=%d ns=%d", b.PeakBytes(), b.SamplingNS())
	}

	// Reuse off: Sync resets, keeps nothing, reuses nothing.
	b2 := NewBatcher(cascade.IC)
	b2.SetReuse(false)
	parent2 := rng.New(43)
	res2 := graph.NewResidual(g)
	b2.GrowTo(res2, parent2, 300, 2)
	res2.Remove(3)
	if kept := b2.Sync(res2); kept != 0 || b2.Reused() != 0 || b2.Len() != 0 {
		t.Fatalf("no-reuse Sync kept=%d reused=%d len=%d", kept, b2.Reused(), b2.Len())
	}
}

// TestBatcherWarmLoopNoAllocs extends the PR 3 allocation budget to the
// sequential controller's batch loop: once the batcher is warm (arena,
// coverage counts, pool scratch all grown), a filter + top-up + coverage
// round performs zero allocations. The frontier-batched kernel is held
// to the same budget — its window scratch is grown once on warm-up.
func TestBatcherWarmLoopNoAllocs(t *testing.T) {
	for _, batched := range []bool{false, true} {
		g := wcTestGraph(t)
		b := NewBatcher(cascade.IC)
		b.SetBatched(batched)
		b.EnableCoverage()
		parent := rng.New(47)
		// Warm up: grow past the steady-state target once so the arena and
		// index-free coverage storage reach capacity.
		res := graph.NewResidual(g)
		b.GrowTo(res, parent, 3000, 1)
		next := graph.NodeID(1)
		avg := testing.AllocsPerRun(20, func() {
			res.Remove(next) // mutate so Sync actually filters
			next++
			b.Sync(res)
			b.GrowTo(res, parent, 3000, 1)
			for u := 0; u < 50; u++ {
				_ = b.Count(graph.NodeID(u))
			}
		})
		if avg != 0 {
			t.Fatalf("warm batcher round (batched=%v) allocates %.1f per cycle, want 0", batched, avg)
		}
	}
}
