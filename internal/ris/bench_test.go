package ris

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// benchGraph materializes the nethept-s stand-in at paper scale with the
// weighted-cascade weighting — the workload the paper's experiments (and
// the README performance table) are measured on.
func benchGraph(b *testing.B, degreeOrder bool) *graph.Graph {
	return datasetGraph(b, "nethept-s", degreeOrder)
}

// datasetGraph materializes any Table II stand-in at paper scale. The
// larger stand-ins (dblp-s) spill the CPU caches, which is where the
// frontier-batched kernel and the hub-first layout are designed to win;
// nethept-s fits in L2 and measures the small-graph regime.
func datasetGraph(b *testing.B, name string, degreeOrder bool) *graph.Graph {
	b.Helper()
	spec, err := gen.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := spec.Config(1)
	cfg.DegreeOrder = degreeOrder
	g, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchmarkDraw measures single-threaded RR-set draws; the reported
// rr/s metric is sets per second.
func benchmarkDraw(b *testing.B, model cascade.Model) {
	g := benchGraph(b, false)
	res := graph.NewResidual(g)
	s := NewSampler(res, model, rng.New(1))
	var nodes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok := s.drawTouched()
		if !ok {
			b.Fatal("draw failed on a live graph")
		}
		nodes += int64(len(s.touched))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rr/s")
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/set")
}

func BenchmarkDrawIC(b *testing.B) { benchmarkDraw(b, cascade.IC) }
func BenchmarkDrawLT(b *testing.B) { benchmarkDraw(b, cascade.LT) }

// benchmarkAppendParallel measures one adaptive "attempt": generating a
// batch of RR sets into a collection with GOMAXPROCS workers, the
// configuration every algorithm in the repo uses. The pre-PR baseline for
// this workload (a fresh sampler and collection per attempt, per-edge
// coins) is recorded in the README performance table. batched selects
// the frontier-batched expansion path, degreeOrder the hub-first node
// renumbering — together they form the bulk configuration of the A/B
// comparison; the same logical graph is sampled either way.
func benchmarkAppendParallel(b *testing.B, batched, degreeOrder bool) {
	benchmarkAppendParallelOn(b, "nethept-s", batched, degreeOrder)
}

func benchmarkAppendParallelOn(b *testing.B, dataset string, batched, degreeOrder bool) {
	const batch = 20000
	g := datasetGraph(b, dataset, degreeOrder)
	res := graph.NewResidual(g)
	parent := rng.New(2)
	pool := NewSamplerPool(cascade.IC)
	pool.SetBatched(batched)
	c := NewCollection(res.FullN())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		pool.AppendParallel(c, res, parent, batch, 0)
		if c.Len() != batch {
			b.Fatal("short generation")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "rr/s")
}

func BenchmarkAppendParallel(b *testing.B)        { benchmarkAppendParallel(b, false, false) }
func BenchmarkAppendParallelBatched(b *testing.B) { benchmarkAppendParallel(b, true, true) }

// BenchmarkAppendParallelBatchedIdentity isolates the kernel change from
// the layout change: batched expansion on the identity numbering.
func BenchmarkAppendParallelBatchedIdentity(b *testing.B) { benchmarkAppendParallel(b, true, false) }

// BenchmarkAppendParallelOrdered isolates the layout change: the per-draw
// kernel on the degree-renumbered graph.
func BenchmarkAppendParallelOrdered(b *testing.B) { benchmarkAppendParallel(b, false, true) }

// The dblp-s pair measures the cache-spilling regime (655K nodes, ~27MB of
// CSR+meta): per-draw baseline vs the full bulk configuration.
func BenchmarkAppendParallelDBLP(b *testing.B) {
	benchmarkAppendParallelOn(b, "dblp-s", false, false)
}
func BenchmarkAppendParallelDBLPBatched(b *testing.B) {
	benchmarkAppendParallelOn(b, "dblp-s", true, true)
}
