package ris

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// benchGraph materializes the nethept-s stand-in at paper scale with the
// weighted-cascade weighting — the workload the paper's experiments (and
// the README performance table) are measured on.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	spec, err := gen.Lookup("nethept-s")
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.Generate(spec.Config(1))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchmarkDraw measures single-threaded RR-set draws; the reported
// rr/s metric is sets per second.
func benchmarkDraw(b *testing.B, model cascade.Model) {
	g := benchGraph(b)
	res := graph.NewResidual(g)
	s := NewSampler(res, model, rng.New(1))
	var nodes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok := s.drawTouched()
		if !ok {
			b.Fatal("draw failed on a live graph")
		}
		nodes += int64(len(s.touched))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rr/s")
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/set")
}

func BenchmarkDrawIC(b *testing.B) { benchmarkDraw(b, cascade.IC) }
func BenchmarkDrawLT(b *testing.B) { benchmarkDraw(b, cascade.LT) }

// BenchmarkAppendParallel measures one adaptive "attempt": generating a
// batch of RR sets into a collection with GOMAXPROCS workers, the
// configuration every algorithm in the repo uses. The pre-PR baseline for
// this workload (a fresh sampler and collection per attempt, per-edge
// coins) is recorded in the README performance table.
func BenchmarkAppendParallel(b *testing.B) {
	const batch = 20000
	g := benchGraph(b)
	res := graph.NewResidual(g)
	parent := rng.New(2)
	pool := NewSamplerPool(cascade.IC)
	c := NewCollection(res.FullN())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		pool.AppendParallel(c, res, parent, batch, 0)
		if c.Len() != batch {
			b.Fatal("short generation")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "rr/s")
}
