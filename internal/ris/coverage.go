package ris

import (
	"container/heap"

	"repro/internal/graph"
)

// This file implements the coverage queries of the paper over a
// Collection: CovR(S), marginal coverage CovR(u|S), and greedy
// max-coverage selection (heap-based CELF).

// Cov returns CovR(S): the number of RR sets intersecting S. It reuses an
// internal mark buffer, so repeated queries allocate nothing after the
// first.
func (c *Collection) Cov(s []graph.NodeID) int {
	if c.scratch == nil {
		c.scratch = c.NewMarks()
	}
	c.scratch.Reset()
	c.scratch.CoverAll(s)
	return c.scratch.Count()
}

// Marks is a reusable coverage bitmap for incremental queries: mark the
// RR sets covered by a base set once, then ask marginal coverages of many
// candidate nodes in O(|SetsContaining(u)|) each. Reset is O(1) via
// generation stamps, so one Marks serves many queries without
// reallocation. A Marks is invalidated by Collection.Filter (set ids are
// compacted); create a fresh one afterwards.
type Marks struct {
	c     *Collection
	stamp []uint32 // stamp[id] == gen means RR set id is covered
	gen   uint32
	count int
}

// NewMarks creates an empty mark state over c.
func (c *Collection) NewMarks() *Marks {
	return &Marks{c: c, stamp: make([]uint32, c.Len()), gen: 1}
}

// Reset clears the mark state in O(1) (amortized; it grows the stamp array
// if RR sets were added since creation and re-zeroes on generation wrap).
func (m *Marks) Reset() {
	if len(m.stamp) < m.c.Len() {
		grown := make([]uint32, m.c.Len())
		copy(grown, m.stamp)
		m.stamp = grown
	}
	m.gen++
	if m.gen == 0 { // wrapped: stale stamps could collide, so re-zero
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.gen = 1
	}
	m.count = 0
}

// Count returns the number of currently covered RR sets.
func (m *Marks) Count() int { return m.count }

// Cover marks every RR set containing u and returns the number of newly
// covered sets (the marginal coverage of u at the time of the call).
func (m *Marks) Cover(u graph.NodeID) int {
	gained := 0
	for _, id := range m.c.SetsContaining(u) {
		if m.stamp[id] != m.gen {
			m.stamp[id] = m.gen
			m.count++
			gained++
		}
	}
	return gained
}

// CoverAll marks the RR sets covered by each node of s.
func (m *Marks) CoverAll(s []graph.NodeID) {
	for _, u := range s {
		m.Cover(u)
	}
}

// Marginal returns CovR(u | marked): the number of RR sets containing u
// that are not yet covered, without mutating the state.
func (m *Marks) Marginal(u graph.NodeID) int {
	gained := 0
	for _, id := range m.c.SetsContaining(u) {
		if m.stamp[id] != m.gen {
			gained++
		}
	}
	return gained
}

// MarginalCoverage returns CovR(u | S) = Cov(S ∪ {u}) − Cov(S) by building
// a fresh mark state. Convenience for one-shot queries; loops should use
// Marks directly.
func (c *Collection) MarginalCoverage(u graph.NodeID, s []graph.NodeID) int {
	m := c.NewMarks()
	m.CoverAll(s)
	return m.Marginal(u)
}

// EstimateSpread converts a coverage count into a spread estimate on a
// graph (or residual) with nAlive nodes: nAlive * cov / θ.
func EstimateSpread(cov, theta, nAlive int) float64 {
	if theta == 0 {
		return 0
	}
	return float64(nAlive) * float64(cov) / float64(theta)
}

// celfEntry is a lazily evaluated candidate: gain is its marginal coverage
// as of selection round `round`; rank is the tie-break key (the node's
// original ID on renumbered graphs, the node ID itself otherwise).
type celfEntry struct {
	node  graph.NodeID
	rank  graph.NodeID
	gain  int
	round int
}

// celfHeap is a max-heap on (gain, then smaller rank) so selection is
// deterministic under ties and invariant to node renumbering.
type celfHeap []celfEntry

func (h celfHeap) Len() int { return len(h) }
func (h celfHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].rank < h[j].rank
}
func (h celfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x any)   { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// SetTieOrder installs a rank permutation for greedy tie-breaking: ties in
// marginal coverage resolve toward the node with the smaller ord[u]. Pass a
// graph's OriginalIDs() so selection on a degree-renumbered graph breaks
// ties identically to the identity numbering; nil restores node-ID order.
func (c *Collection) SetTieOrder(ord []graph.NodeID) { c.tieOrder = ord }

// rankOf returns u's tie-break rank under the installed order.
func (c *Collection) rankOf(u graph.NodeID) graph.NodeID {
	if c.tieOrder != nil {
		return c.tieOrder[u]
	}
	return u
}

// GreedyMaxCoverage selects up to k nodes from candidates maximizing
// coverage, the standard RIS selection step (used by IMM and the
// nonadaptive baselines). It returns the chosen nodes in selection order
// and their cumulative coverage after each pick.
//
// The implementation is heap-based CELF: marginal coverage only decreases
// as nodes are selected, so each pop either carries a gain evaluated this
// round (fresh — accept it) or a stale upper bound (re-evaluate and sift).
// This replaces a full O(|C|) rescan per pick with O(log |C|) heap work
// plus the few re-evaluations lazy greedy actually needs, which matters
// when candidates are all n nodes (IMM's selection phase).
func (c *Collection) GreedyMaxCoverage(candidates []graph.NodeID, k int) ([]graph.NodeID, []int) {
	m := c.NewMarks()
	h := make(celfHeap, 0, len(candidates))
	for _, u := range candidates {
		h = append(h, celfEntry{node: u, rank: c.rankOf(u), gain: c.CountContaining(u), round: 0})
	}
	heap.Init(&h)
	var chosen []graph.NodeID
	var cum []int
	for len(chosen) < k && h.Len() > 0 {
		top := h[0]
		if top.round != len(chosen) {
			// Stale bound: refresh in place and restore heap order.
			h[0].gain = m.Marginal(top.node)
			h[0].round = len(chosen)
			heap.Fix(&h, 0)
			continue
		}
		if top.gain == 0 {
			// The best fresh marginal is zero; nothing can add coverage.
			break
		}
		m.Cover(top.node)
		chosen = append(chosen, top.node)
		cum = append(cum, m.Count())
		heap.Pop(&h)
	}
	return chosen, cum
}
