package ris

import (
	"repro/internal/graph"
)

// Collection is a set of RR sets with an inverted index from node to the
// RR sets containing it, supporting the coverage queries of the paper:
// CovR(S), marginal coverage CovR(u|S), and greedy max-coverage selection.
type Collection struct {
	n     int
	sets  []*RRSet
	index [][]int32 // node -> indices of RR sets containing it
}

// NewCollection creates an empty collection over a graph with n nodes
// (full node count; residual sampling still uses original IDs).
func NewCollection(n int) *Collection {
	return &Collection{n: n, index: make([][]int32, n)}
}

// Add appends one RR set and indexes its nodes.
func (c *Collection) Add(rr *RRSet) {
	id := int32(len(c.sets))
	c.sets = append(c.sets, rr)
	for _, u := range rr.Nodes {
		c.index[u] = append(c.index[u], id)
	}
}

// Len returns the number of RR sets (the paper's θ).
func (c *Collection) Len() int { return len(c.sets) }

// Sets returns the underlying RR sets; read-only.
func (c *Collection) Sets() []*RRSet { return c.sets }

// SetsContaining returns the indices of RR sets that contain u.
func (c *Collection) SetsContaining(u graph.NodeID) []int32 { return c.index[u] }

// Cov returns CovR(S): the number of RR sets intersecting S.
func (c *Collection) Cov(s []graph.NodeID) int {
	covered := make([]bool, len(c.sets))
	count := 0
	for _, u := range s {
		for _, id := range c.index[u] {
			if !covered[id] {
				covered[id] = true
				count++
			}
		}
	}
	return count
}

// Marks is a reusable coverage bitmap for incremental queries: mark the
// RR sets covered by a base set once, then ask marginal coverages of many
// candidate nodes in O(|index[u]|) each.
type Marks struct {
	c       *Collection
	covered []bool
	count   int
}

// NewMarks creates an empty mark state over c.
func (c *Collection) NewMarks() *Marks {
	return &Marks{c: c, covered: make([]bool, len(c.sets))}
}

// Count returns the number of currently covered RR sets.
func (m *Marks) Count() int { return m.count }

// Cover marks every RR set containing u and returns the number of newly
// covered sets (the marginal coverage of u at the time of the call).
func (m *Marks) Cover(u graph.NodeID) int {
	gained := 0
	for _, id := range m.c.index[u] {
		if !m.covered[id] {
			m.covered[id] = true
			m.count++
			gained++
		}
	}
	return gained
}

// CoverAll marks the RR sets covered by each node of s.
func (m *Marks) CoverAll(s []graph.NodeID) {
	for _, u := range s {
		m.Cover(u)
	}
}

// Marginal returns CovR(u | marked): the number of RR sets containing u
// that are not yet covered, without mutating the state.
func (m *Marks) Marginal(u graph.NodeID) int {
	gained := 0
	for _, id := range m.c.index[u] {
		if !m.covered[id] {
			gained++
		}
	}
	return gained
}

// MarginalCoverage returns CovR(u | S) = Cov(S ∪ {u}) − Cov(S) by building
// a fresh mark state. Convenience for one-shot queries; loops should use
// Marks directly.
func (c *Collection) MarginalCoverage(u graph.NodeID, s []graph.NodeID) int {
	m := c.NewMarks()
	m.CoverAll(s)
	return m.Marginal(u)
}

// EstimateSpread converts a coverage count into a spread estimate on a
// graph (or residual) with nAlive nodes: nAlive * cov / θ.
func EstimateSpread(cov, theta, nAlive int) float64 {
	if theta == 0 {
		return 0
	}
	return float64(nAlive) * float64(cov) / float64(theta)
}

// GreedyMaxCoverage selects up to k nodes from candidates maximizing
// coverage, the standard RIS selection step (used by IMM and NSG). It
// returns the chosen nodes in selection order and their cumulative
// coverage after each pick. Uses lazy evaluation (CELF) over an implicit
// upper bound: marginals only decrease, so a stale best is re-evaluated
// before acceptance.
func (c *Collection) GreedyMaxCoverage(candidates []graph.NodeID, k int) ([]graph.NodeID, []int) {
	type entry struct {
		node graph.NodeID
		gain int
	}
	// Simple lazy-greedy; candidate counts here are small (target sets),
	// so O(k·|C|) re-scans are fine and avoid heap bookkeeping. Ties break
	// on node ID so selection is deterministic despite map iteration.
	m := c.NewMarks()
	gains := make(map[graph.NodeID]entry, len(candidates))
	for _, u := range candidates {
		gains[u] = entry{node: u, gain: len(c.index[u])}
	}
	var chosen []graph.NodeID
	var cum []int
	for len(chosen) < k && len(gains) > 0 {
		// Find the candidate with the largest (possibly stale) gain, then
		// refresh it; accept when fresh.
		for {
			var best entry
			first := true
			for _, e := range gains {
				if first || e.gain > best.gain ||
					(e.gain == best.gain && e.node < best.node) {
					best = e
					first = false
				}
			}
			if first {
				return chosen, cum
			}
			fresh := m.Marginal(best.node)
			if fresh == best.gain {
				if fresh == 0 {
					// Nothing adds coverage; stop early.
					return chosen, cum
				}
				m.Cover(best.node)
				chosen = append(chosen, best.node)
				cum = append(cum, m.Count())
				delete(gains, best.node)
				break
			}
			best.gain = fresh
			gains[best.node] = best
		}
	}
	return chosen, cum
}
