package ris

import (
	"container/heap"

	"repro/internal/graph"
)

// Collection is a set of RR sets with an inverted index from node to the
// RR sets containing it, supporting the coverage queries of the paper:
// CovR(S), marginal coverage CovR(u|S), and greedy max-coverage selection.
//
// A Collection is not safe for concurrent use: Cov routes through a
// reusable internal mark buffer to stay allocation-free.
type Collection struct {
	n     int
	sets  []*RRSet
	index [][]int32 // node -> indices of RR sets containing it

	// requested accumulates the θ values asked of the generators, so a
	// shortfall (empty residual mid-generation) is observable instead of
	// silently weakening the concentration guarantee.
	requested int

	scratch *Marks // lazily created buffer backing Cov
}

// NewCollection creates an empty collection over a graph with n nodes
// (full node count; residual sampling still uses original IDs).
func NewCollection(n int) *Collection {
	return &Collection{n: n, index: make([][]int32, n)}
}

// Add appends one RR set and indexes its nodes.
func (c *Collection) Add(rr *RRSet) {
	id := int32(len(c.sets))
	c.sets = append(c.sets, rr)
	for _, u := range rr.Nodes {
		c.index[u] = append(c.index[u], id)
	}
}

// Len returns the number of RR sets actually held (the paper's θ as far as
// estimates are concerned).
func (c *Collection) Len() int { return len(c.sets) }

// Requested returns the total number of RR sets the generators were asked
// for. Requested > Len means some draws hit an empty residual.
func (c *Collection) Requested() int { return c.requested }

// Shortfall returns how many requested RR sets were never generated.
func (c *Collection) Shortfall() int {
	if d := c.requested - len(c.sets); d > 0 {
		return d
	}
	return 0
}

// noteRequested records that theta RR sets were requested from a generator.
func (c *Collection) noteRequested(theta int) { c.requested += theta }

// Sets returns the underlying RR sets; read-only.
func (c *Collection) Sets() []*RRSet { return c.sets }

// SetsContaining returns the indices of RR sets that contain u.
func (c *Collection) SetsContaining(u graph.NodeID) []int32 { return c.index[u] }

// Cov returns CovR(S): the number of RR sets intersecting S. It reuses an
// internal mark buffer, so repeated queries allocate nothing after the
// first.
func (c *Collection) Cov(s []graph.NodeID) int {
	if c.scratch == nil {
		c.scratch = c.NewMarks()
	}
	c.scratch.Reset()
	c.scratch.CoverAll(s)
	return c.scratch.Count()
}

// Marks is a reusable coverage bitmap for incremental queries: mark the
// RR sets covered by a base set once, then ask marginal coverages of many
// candidate nodes in O(|index[u]|) each. Reset is O(1) via generation
// stamps, so one Marks serves many queries without reallocation.
type Marks struct {
	c     *Collection
	stamp []uint32 // stamp[id] == gen means RR set id is covered
	gen   uint32
	count int
}

// NewMarks creates an empty mark state over c.
func (c *Collection) NewMarks() *Marks {
	return &Marks{c: c, stamp: make([]uint32, len(c.sets)), gen: 1}
}

// Reset clears the mark state in O(1) (amortized; it grows the stamp array
// if RR sets were added since creation and re-zeroes on generation wrap).
func (m *Marks) Reset() {
	if len(m.stamp) < len(m.c.sets) {
		grown := make([]uint32, len(m.c.sets))
		copy(grown, m.stamp)
		m.stamp = grown
	}
	m.gen++
	if m.gen == 0 { // wrapped: stale stamps could collide, so re-zero
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.gen = 1
	}
	m.count = 0
}

// Count returns the number of currently covered RR sets.
func (m *Marks) Count() int { return m.count }

// Cover marks every RR set containing u and returns the number of newly
// covered sets (the marginal coverage of u at the time of the call).
func (m *Marks) Cover(u graph.NodeID) int {
	gained := 0
	for _, id := range m.c.index[u] {
		if m.stamp[id] != m.gen {
			m.stamp[id] = m.gen
			m.count++
			gained++
		}
	}
	return gained
}

// CoverAll marks the RR sets covered by each node of s.
func (m *Marks) CoverAll(s []graph.NodeID) {
	for _, u := range s {
		m.Cover(u)
	}
}

// Marginal returns CovR(u | marked): the number of RR sets containing u
// that are not yet covered, without mutating the state.
func (m *Marks) Marginal(u graph.NodeID) int {
	gained := 0
	for _, id := range m.c.index[u] {
		if m.stamp[id] != m.gen {
			gained++
		}
	}
	return gained
}

// MarginalCoverage returns CovR(u | S) = Cov(S ∪ {u}) − Cov(S) by building
// a fresh mark state. Convenience for one-shot queries; loops should use
// Marks directly.
func (c *Collection) MarginalCoverage(u graph.NodeID, s []graph.NodeID) int {
	m := c.NewMarks()
	m.CoverAll(s)
	return m.Marginal(u)
}

// EstimateSpread converts a coverage count into a spread estimate on a
// graph (or residual) with nAlive nodes: nAlive * cov / θ.
func EstimateSpread(cov, theta, nAlive int) float64 {
	if theta == 0 {
		return 0
	}
	return float64(nAlive) * float64(cov) / float64(theta)
}

// celfEntry is a lazily evaluated candidate: gain is its marginal coverage
// as of selection round `round`.
type celfEntry struct {
	node  graph.NodeID
	gain  int
	round int
}

// celfHeap is a max-heap on (gain, then smaller node ID) so selection is
// deterministic under ties.
type celfHeap []celfEntry

func (h celfHeap) Len() int { return len(h) }
func (h celfHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].node < h[j].node
}
func (h celfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x any)   { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// GreedyMaxCoverage selects up to k nodes from candidates maximizing
// coverage, the standard RIS selection step (used by IMM and the
// nonadaptive baselines). It returns the chosen nodes in selection order
// and their cumulative coverage after each pick.
//
// The implementation is heap-based CELF: marginal coverage only decreases
// as nodes are selected, so each pop either carries a gain evaluated this
// round (fresh — accept it) or a stale upper bound (re-evaluate and sift).
// This replaces a full O(|C|) rescan per pick with O(log |C|) heap work
// plus the few re-evaluations lazy greedy actually needs, which matters
// when candidates are all n nodes (IMM's selection phase).
func (c *Collection) GreedyMaxCoverage(candidates []graph.NodeID, k int) ([]graph.NodeID, []int) {
	m := c.NewMarks()
	h := make(celfHeap, 0, len(candidates))
	for _, u := range candidates {
		h = append(h, celfEntry{node: u, gain: len(c.index[u]), round: 0})
	}
	heap.Init(&h)
	var chosen []graph.NodeID
	var cum []int
	for len(chosen) < k && h.Len() > 0 {
		top := h[0]
		if top.round != len(chosen) {
			// Stale bound: refresh in place and restore heap order.
			h[0].gain = m.Marginal(top.node)
			h[0].round = len(chosen)
			heap.Fix(&h, 0)
			continue
		}
		if top.gain == 0 {
			// The best fresh marginal is zero; nothing can add coverage.
			break
		}
		m.Cover(top.node)
		chosen = append(chosen, top.node)
		cum = append(cum, m.Count())
		heap.Pop(&h)
	}
	return chosen, cum
}
