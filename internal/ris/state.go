package ris

import (
	"fmt"

	"repro/internal/graph"
)

// CollectionState is the serializable snapshot of a Collection: the CSR
// arena, per-set offsets, roots, the residual version the sets are valid
// for, and the requested-draw counter. The lazily built inverted index,
// the attached Coverage counts, and the Marks scratch are deliberately
// absent — each is a pure function of the sets (or transient), so restore
// rebuilds them instead of trusting 2× the bytes on disk.
type CollectionState struct {
	Arena     []graph.NodeID
	Offsets   []int32
	Roots     []graph.NodeID
	Version   int64
	Requested int
}

// State captures the collection's snapshot. The returned slices are copies;
// mutating the collection afterwards does not disturb them.
func (c *Collection) State() CollectionState {
	return CollectionState{
		Arena:     append([]graph.NodeID(nil), c.arena...),
		Offsets:   append([]int32(nil), c.offsets...),
		Roots:     append([]graph.NodeID(nil), c.roots...),
		Version:   c.version,
		Requested: c.requested,
	}
}

// RestoreState overwrites the collection with a captured snapshot,
// validating the CSR invariants first (a torn or hand-edited checkpoint
// must fail loudly, not corrupt later coverage queries). Existing arena
// capacity is reused; the inverted index is invalidated and an attached
// Coverage tracker is rebuilt from the restored sets.
func (c *Collection) RestoreState(st CollectionState) error {
	if len(st.Offsets) != len(st.Roots)+1 {
		return fmt.Errorf("ris: restore: %d offsets for %d sets", len(st.Offsets), len(st.Roots))
	}
	if st.Offsets[0] != 0 {
		return fmt.Errorf("ris: restore: offsets start at %d, want 0", st.Offsets[0])
	}
	for i := 1; i < len(st.Offsets); i++ {
		if st.Offsets[i] < st.Offsets[i-1] {
			return fmt.Errorf("ris: restore: offsets decrease at set %d", i-1)
		}
	}
	if int(st.Offsets[len(st.Offsets)-1]) != len(st.Arena) {
		return fmt.Errorf("ris: restore: offsets end at %d, arena holds %d",
			st.Offsets[len(st.Offsets)-1], len(st.Arena))
	}
	n := graph.NodeID(c.n)
	for _, u := range st.Arena {
		if u < 0 || u >= n {
			return fmt.Errorf("ris: restore: arena node %d outside [0,%d)", u, n)
		}
	}
	for _, u := range st.Roots {
		if u < 0 || u >= n {
			return fmt.Errorf("ris: restore: root %d outside [0,%d)", u, n)
		}
	}
	c.arena = append(c.arena[:0], st.Arena...)
	c.offsets = append(c.offsets[:0], st.Offsets...)
	c.roots = append(c.roots[:0], st.Roots...)
	c.version = st.Version
	c.requested = st.Requested
	c.invValid = false
	c.scratch = nil
	if c.coverage != nil {
		c.coverage.reset()
		c.coverage.Update()
	}
	return nil
}

// BatcherState is the serializable snapshot of a Batcher: the collection
// plus the sampling accounting a resumed run must continue from so its
// final telemetry matches the uninterrupted run's. The sampler pool itself
// is stateless between batches (worker streams are reseeded from the
// caller's RNG on every call), so it needs no snapshot.
type BatcherState struct {
	Col       CollectionState
	HasCol    bool
	Drawn     int64
	Requested int64
	Reused    int64
	PeakBytes int64
	Batches   int
}

// State captures the batcher's snapshot. SamplingNS is deliberately not
// captured: it is wall-clock telemetry, meaningless across process
// boundaries.
func (b *Batcher) State() BatcherState {
	st := BatcherState{
		Drawn:     b.drawn,
		Requested: b.requested,
		Reused:    b.reused,
		PeakBytes: b.peakBytes,
		Batches:   b.batches,
	}
	if b.col != nil {
		st.HasCol = true
		st.Col = b.col.State()
	}
	return st
}

// RestoreState overwrites the batcher with a captured snapshot. fullN is
// the node count of the graph the collection indexes (graph.Residual's
// FullN); it sizes the collection and coverage tracker when the batcher
// has never drawn. Reuse/coverage configuration is not part of the state —
// callers configure the batcher (SetReuse, EnableCoverage) before
// restoring, exactly as they would before a fresh run.
func (b *Batcher) RestoreState(st BatcherState, fullN int) error {
	b.drawn = st.Drawn
	b.requested = st.Requested
	b.reused = st.Reused
	b.peakBytes = st.PeakBytes
	b.samplingNS = 0
	b.batches = st.Batches
	if !st.HasCol {
		if b.col != nil {
			b.col.Reset()
		}
		return nil
	}
	if b.col == nil {
		b.col = NewCollection(fullN)
		if b.wantCov {
			b.cov = b.col.NewCoverage()
		}
	}
	return b.col.RestoreState(st.Col)
}
