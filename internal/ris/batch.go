package ris

import (
	"math"
	"unsafe"

	"repro/internal/cpu"
	"repro/internal/graph"
	"repro/internal/rng"
)

// batchLanes is the number of concurrent RR draws (lanes) one worker
// expands per window. 8 keeps the lane-visited bitmask one byte per
// node — on the graphs this kernel targets, small enough to stay
// L1-resident next to the lane RNG states — while still giving the
// out-of-order core more independent pop chains than its reorder
// window holds at once. Wider masks were measured slower: 32 lanes
// made the bitmask 4x larger than the per-draw loop's []bool visited,
// and the resulting L1 misses on the dedup probe ate the entire
// batching win.
const batchLanes = 8

// batchPrefetchMinNodes gates the software prefetch hints: below this
// node count the metadata and adjacency arrays fit in L2, where a
// prefetch instruction costs more than the miss it would hide. Above
// it, worklist pops chase random metadata lines in L3/DRAM and hinting
// a few pops ahead overlaps those misses. A variable, not a constant,
// so equivalence tests can force the prefetch expansion variant on
// small graphs and check it draws the exact same sets.
var batchPrefetchMinNodes = 1 << 17

// batchLookahead is how many worklist entries ahead of the current pop
// the expander hints the per-node metadata line. The worklist is FIFO
// within a window, so entry head+batchLookahead is the pop that many
// steps from now; 8 pops (~a few dozen ns) covers a DRAM miss.
const batchLookahead = 8

// growScratch grows a reusable scratch slice to at least need entries,
// preserving the first used. Scratch slices are kept at full length and
// indexed through explicit cursors, so the hot loops run plain indexed
// stores instead of append's per-element bookkeeping.
func growScratch[T any](s []T, used, need int) []T {
	if need <= len(s) {
		return s
	}
	c := 2*len(s) + 64
	if c < need {
		c = need
	}
	ns := make([]T, c)
	copy(ns, s[:used])
	return ns
}

// lemireFixup finishes Lemire's unbiased bounded draw after the inlined
// fast path hit the rare small-remainder case (probability bound/2^32).
// Split out so the hot loops only pay a well-predicted compare; the
// rejection semantics are exactly rng.Intn's.
//
//go:noinline
func lemireFixup(r *rng.RNG, bound uint32, m uint64) uint64 {
	threshold := -bound % bound
	for uint32(m) < threshold {
		m = uint64(r.Uint32()) * uint64(bound)
	}
	return m
}

// appendBatched draws count RR sets into ck by frontier-batched
// expansion: up to batchLanes concurrent draws (lanes) share one FIFO
// worklist held as structure-of-arrays lanes (node and draw-id; BFS
// depth is implicit — the FIFO expands the window's lanes level by
// level, so every entry of one segment sits at the same depth and the
// segment counter is the depth lane, for free), so one sweep over the
// worklist interleaves every lane's metadata and adjacency reads and
// the cache misses of B traversals overlap instead of serializing. Each lane draws from its own substream split off the
// sampler's bound stream (rng.SplitStreams); sets are committed to ck
// in lane order per window, making the output layout a deterministic
// function of (bound stream state, count) regardless of timing.
//
// The expansion itself is organized to starve the branch predictor of
// data-dependent work, which — not cache misses — is what serializes
// the per-draw loop on cache-resident graphs: in the weighted-cascade
// regime ~3/4 of pops draw a success count of 0 or 1, and the main
// sweep handles exactly those with conditional-advance stores (compute
// both outcomes, bump the cursor by 0 or 1) instead of branches. Pops
// that need more — count >= 2, or the rare tableless shapes — are
// deferred to a spill list and expanded by a second, branchy pass.
// Lane draws stay on their own substreams, but the batched path spends
// them differently than the per-draw loop (every main-sweep pop
// consumes a count word and a speculative position word), so batched
// collections match the per-draw distribution — the chi-square and
// exact-oracle equivalence suites check this — without being
// bit-identical to any per-draw stream.
//
// Only valid when the graph carries compressed in-sampler tables and
// the model is IC; AppendParallel checks before dispatching. poll, when
// non-nil, is invoked between windows; a non-nil error aborts with ck
// holding the completed windows.
func (s *Sampler) appendBatched(ck *chunk, count int, poll func() error) (int, error) {
	res := s.res
	alive := res.AliveList()
	if len(alive) == 0 {
		return 0, nil
	}
	g := res.Graph()
	meta, inArena, thr, tabOff := g.InSamplerTables()
	full := res.FullN()
	skipAlive := len(alive) == full
	if len(s.visitedW) < full {
		s.visitedW = make([]uint8, full)
	}
	if len(s.laneRNG) < batchLanes {
		s.laneRNG = make([]rng.RNG, batchLanes)
		s.laneLen = make([]int32, batchLanes)
		s.laneOff = make([]int32, batchLanes+1)
	}
	lanes := batchLanes
	if count < lanes {
		lanes = count
	}
	s.r.SplitStreams(s.laneRNG[:lanes])
	visited := s.visitedW
	prefetch := full >= batchPrefetchMinNodes
	arenaTop := int32(len(inArena) - 1)
	var posBuf [maxRejectK]int32
	wlN, wlL := s.wlNode, s.wlLane
	spH, spU := s.spillH, s.spillU
	candU, candA := s.candU, s.candA
	drawn := 0
	for drawn < count {
		m := lanes
		if rest := count - drawn; rest < m {
			m = rest
		}
		if m > len(wlN) {
			wlN = growScratch(wlN, 0, m)
			wlL = growScratch(wlL, 0, m)
		}
		laneLen := s.laneLen[:batchLanes]
		wn := 0
		for l := 0; l < m; l++ {
			root := alive[s.laneRNG[l].Intn(len(alive))]
			visited[root] |= 1 << uint(l)
			laneLen[l] = 1
			wlN[wn] = root
			wlL[wn] = uint8(l)
			wn++
		}
		edges := uint64(0)
		maxD := -1
		for head := 0; head < wn; {
			maxD++ // each segment is one BFS level deeper
			// The main sweep pushes at most one node per pop and spills at
			// most one record per pop, so sizing both up front keeps every
			// per-pop capacity check out of the loop.
			seg := wn
			if need := seg + (seg - head); need > len(wlN) {
				wlN = growScratch(wlN, wn, need)
				wlL = growScratch(wlL, wn, need)
			}
			if need := seg - head; need > len(spH) {
				spH = growScratch(spH, 0, need)
				spU = growScratch(spU, 0, need)
				candU = growScratch(candU, 0, need)
				candA = growScratch(candA, 0, need)
			}
			sn := 0
			h0 := head
			// Pass A: loads only. Each pop draws its count word, classifies
			// it from the metadata alone, branch-free — draw < Thr0 is zero
			// successes (zero-degree nodes hold the sentinel in both fields,
			// so their clamped draws always land here), Thr0 <= draw < Thr1
			// is exactly one, and draw >= Thr1 is "two or more, or no
			// table" (table-less nodes store Thr1 = 0), deferred to the
			// spill pass — and speculatively resolves the single-success
			// position: position draw, adjacency read. The candidate lands
			// in a dense slot indexed by the pop itself, so no store
			// address or loop bound depends on any of the random loads and
			// the out-of-order core runs every pop's load chain in
			// parallel. The speculative words are wasted on non-1 counts
			// (and the index clamp covers zero-degree nodes, whose Start
			// can sit at the arena's end), but a wasted multiply beats a
			// mispredicted branch, and extra substream words never change a
			// draw's distribution. Visited and aliveness are not consulted
			// here at all; pass B resolves both.
			if prefetch {
				// Cache-spilling variant: pass A stores the gather INDEX
				// instead of the gathered node and hints three upcoming
				// random accesses — the spill pass's threshold-table offset,
				// the adjacency line itself, and (in pass A2 below) the
				// landed node's visited byte. Each address becomes known a
				// full sub-pass before its load executes, so DRAM latency
				// overlaps across pops instead of serializing them.
				for ; head < seg; head++ {
					v := wlN[head]
					l := wlL[head]
					lr := &s.laneRNG[l]
					mv := meta[v]
					u32 := lr.Uint32()
					if u32 == countSentinel {
						u32-- // keep the sentinel an unconditional terminator
					}
					u64 := uint64(u32)
					zeroF := uint32((u64 - uint64(mv.Thr0)) >> 63)
					spF := ((u64 - uint64(mv.Thr1)) >> 63) ^ 1
					spH[sn] = int32(head)
					spU[sn] = u32
					sn += int(spF)
					// Branch-free spill prefetch: pops headed for the spill
					// pass (spF = 1) warm their threshold-table offset; the
					// rest hint the permanently hot zeroth entry, which costs
					// a cycle and no memory traffic.
					cpu.PrefetchNTA(unsafe.Pointer(&tabOff[v*graph.NodeID(spF)]))
					x := lr.Uint32()
					deg := uint32(mv.Deg)
					mm := uint64(x) * uint64(deg)
					if uint32(mm) < deg {
						mm = lemireFixup(lr, deg, mm)
					}
					idx := int32(min(int(mv.Start)+int(mm>>32), int(arenaTop)))
					candU[head-h0] = graph.NodeID(idx)
					candA[head-h0] = uint8((zeroF | uint32(spF)) ^ 1)
					edges++
					cpu.PrefetchNTA(unsafe.Pointer(&inArena[idx]))
				}
				// Pass A2: resolve the prefetched indexes into node IDs and
				// warm each landed node's visited byte for pass B.
				for j := 0; j < seg-h0; j++ {
					u := inArena[candU[j]]
					candU[j] = u
					cpu.PrefetchNTA(unsafe.Pointer(&visited[u]))
				}
			} else {
				// Cache-resident variant: the gather is an L1/L2 hit, so the
				// extra store/load round trip of the split would cost more
				// than the latency it hides — gather inline.
				for ; head < seg; head++ {
					v := wlN[head]
					l := wlL[head]
					lr := &s.laneRNG[l]
					mv := meta[v]
					u32 := lr.Uint32()
					if u32 == countSentinel {
						u32-- // keep the sentinel an unconditional terminator
					}
					u64 := uint64(u32)
					zeroF := uint32((u64 - uint64(mv.Thr0)) >> 63)
					spF := ((u64 - uint64(mv.Thr1)) >> 63) ^ 1
					spH[sn] = int32(head)
					spU[sn] = u32
					sn += int(spF)
					x := lr.Uint32()
					deg := uint32(mv.Deg)
					mm := uint64(x) * uint64(deg)
					if uint32(mm) < deg {
						mm = lemireFixup(lr, deg, mm)
					}
					candU[head-h0] = inArena[min(int(mv.Start)+int(mm>>32), int(arenaTop))]
					candA[head-h0] = uint8((zeroF | uint32(spF)) ^ 1)
					edges++
				}
			}
			// Pass B: filter the exactly-one candidates into the worklist.
			// The visited probe — the dedup that makes an RR "set" — lives
			// only here, against the byte-per-node mask that batchLanes
			// keeps L1-resident. The loop-carried dependency is the cursor
			// add behind that L1 load; pass A's version of this probe sat
			// behind the whole RNG -> metadata -> adjacency chain.
			for j := 0; j < seg-h0; j++ {
				u := candU[j]
				l := wlL[h0+j]
				vw := visited[u]
				adv := uint32(candA[j]) & uint32((vw>>l)&1^1)
				if !skipAlive && adv != 0 && !res.Alive(u) {
					adv = 0
				}
				visited[u] = vw | uint8(adv)<<l
				wlN[wn] = u
				wlL[wn] = l
				laneLen[l] += int32(adv)
				wn += int(adv)
			}
			// Spill pass: the rare pops that need more than one push —
			// count >= 2, or a shape without a table — expanded with the
			// same branchy logic as the per-draw loop. Their count word was
			// already drawn by the main sweep; positions draw fresh here.
			for i := 0; i < sn; i++ {
				h := spH[i]
				v := wlN[h]
				l := wlL[h]
				u32 := spU[i]
				lr := &s.laneRNG[l]
				bit := uint8(1) << l
				mv := meta[v]
				toff := tabOff[v]
				if toff < 0 {
					// Rare shapes without a table — expandICUniform's strategy
					// choice, inlined (the count word is discarded; these nodes
					// set Thr0 = Thr1 = 0).
					srcs, p, _ := g.InNeighborsUniform(v)
					d := len(srcs)
					if wn+d > len(wlN) {
						wlN = growScratch(wlN, wn, wn+d)
						wlL = growScratch(wlL, wn, wn+d)
					}
					switch {
					case d == 0:
					case p >= 1:
						edges += uint64(d)
						for _, u := range srcs {
							if visited[u]&bit == 0 && (skipAlive || res.Alive(u)) {
								visited[u] |= bit
								laneLen[l]++
								wlN[wn] = u
								wlL[wn] = l
								wn++
							}
						}
					case p <= jumpMaxP:
						inv := 1 / math.Log1p(-p)
						for pos := lr.GeometricInv(inv, d); pos < d; pos += 1 + lr.GeometricInv(inv, d) {
							edges++
							u := srcs[pos]
							if visited[u]&bit == 0 && (skipAlive || res.Alive(u)) {
								visited[u] |= bit
								laneLen[l]++
								wlN[wn] = u
								wlL[wn] = l
								wn++
							}
						}
					default:
						edges += uint64(d)
						for _, u := range srcs {
							if lr.Coin(p) && visited[u]&bit == 0 && (skipAlive || res.Alive(u)) {
								visited[u] |= bit
								laneLen[l]++
								wlN[wn] = u
								wlL[wn] = l
								wn++
							}
						}
					}
					continue
				}
				// Re-derive the count from the spilled word (>= 2 by
				// construction), finishing the heavy tail with the scalar
				// scan — identical to appendFastIC.
				t4 := thr[toff+1 : toff+5]
				u64 := uint64(u32)
				lt := (u64-uint64(t4[0]))>>63 + (u64-uint64(t4[1]))>>63 +
					(u64-uint64(t4[2]))>>63 + (u64-uint64(t4[3]))>>63
				k := 5 - int(lt)
				if k == 5 { // rare heavy tail: finish with the scalar scan
					for _, t := range thr[toff+5:] { // stops at the sentinel
						if u32 < t {
							break
						}
						k++
					}
				}
				if wn+k > len(wlN) {
					wlN = growScratch(wlN, wn, wn+k)
					wlL = growScratch(wlL, wn, wn+k)
				}
				edges += uint64(k)
				if k == 2 && mv.Deg > 2 {
					i := int32(lr.Intn(int(mv.Deg)))
					j := int32(lr.Intn(int(mv.Deg)))
					for j == i {
						j = int32(lr.Intn(int(mv.Deg)))
					}
					u := inArena[mv.Start+i]
					if visited[u]&bit == 0 && (skipAlive || res.Alive(u)) {
						visited[u] |= bit
						laneLen[l]++
						wlN[wn] = u
						wlL[wn] = l
						wn++
					}
					u = inArena[mv.Start+j]
					if visited[u]&bit == 0 && (skipAlive || res.Alive(u)) {
						visited[u] |= bit
						laneLen[l]++
						wlN[wn] = u
						wlL[wn] = l
						wn++
					}
					continue
				}
				srcs := inArena[mv.Start : mv.Start+mv.Deg]
				for _, pos := range s.pickPositions(lr, len(srcs), k, posBuf[:0]) {
					u := srcs[pos]
					if visited[u]&bit == 0 && (skipAlive || res.Alive(u)) {
						visited[u] |= bit
						laneLen[l]++
						wlN[wn] = u
						wlL[wn] = l
						wn++
					}
				}
			}
		}
		// Commit the window in lane order: lens and roots directly (the
		// first m worklist entries are the roots, in lane order), the set
		// nodes by a counting scatter of the worklist into the chunk arena.
		// All lanes of the window are finished, so zeroing a node's whole
		// visited word clears every lane bit it accumulated.
		off := s.laneOff[:m+1]
		off[0] = int32(len(ck.arena))
		for l := 0; l < m; l++ {
			off[l+1] = off[l] + laneLen[l]
			ck.lens = append(ck.lens, laneLen[l])
			ck.roots = append(ck.roots, wlN[l])
		}
		need := int(off[m])
		if cap(ck.arena) < need {
			na := make([]graph.NodeID, len(ck.arena), need+need/2)
			copy(na, ck.arena)
			ck.arena = na
		}
		out := ck.arena[:need]
		for i := 0; i < wn; i++ {
			u := wlN[i]
			l := wlL[i]
			out[off[l]] = u
			off[l]++
			visited[u] = 0
		}
		ck.arena = out
		s.visits += uint64(wn)
		s.edgeTouches += edges
		if maxD > s.maxDepth {
			s.maxDepth = maxD
		}
		drawn += m
		if poll != nil && drawn < count {
			if err := poll(); err != nil {
				s.wlNode, s.wlLane = wlN, wlL
				s.spillH, s.spillU = spH, spU
				s.candU, s.candA = candU, candA
				return drawn, err
			}
		}
	}
	s.wlNode, s.wlLane = wlN, wlL
	s.spillH, s.spillU = spH, spU
	s.candU, s.candA = candU, candA
	return drawn, nil
}
