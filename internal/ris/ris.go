// Package ris implements Reverse Influence Sampling (Borgs et al., SODA
// 2014): random reverse-reachable (RR) sets, the estimation backbone of
// ADDATP, HATP and the nonadaptive baselines.
//
// An RR set R(v) for a uniformly random root v contains every node u that
// reaches v in a random realization. The fundamental identity
//
//	E[I(S)] = n * Pr[R ∩ S ≠ ∅]
//
// turns coverage counting over a sample of RR sets into an unbiased spread
// estimator. On residual graphs, roots are drawn uniformly from the n_i
// alive nodes and reverse traversal ignores dead nodes, estimating
// E[I_{G_i}(S)] with the same identity scaled by n_i.
package ris

import (
	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RRSet is one reverse-reachable set: the nodes that reach Root under one
// sampled realization, Root included.
type RRSet struct {
	Root  graph.NodeID
	Nodes []graph.NodeID
}

// Sampler generates RR sets on a (residual view of a) graph.
// A Sampler is not safe for concurrent use; create one per goroutine with
// independent RNG streams (see GenerateParallel).
type Sampler struct {
	res   *graph.Residual
	model cascade.Model
	r     *rng.RNG

	// Scratch buffers reused across draws to avoid per-RR-set allocation.
	visited []bool
	stack   []graph.NodeID
	touched []graph.NodeID

	// aliveList caches the alive node IDs for uniform root sampling; it is
	// rebuilt when the residual's version changes.
	aliveList    []graph.NodeID
	aliveVersion int64
}

// NewSampler creates a sampler over res under the given model.
func NewSampler(res *graph.Residual, model cascade.Model, r *rng.RNG) *Sampler {
	n := res.FullN()
	return &Sampler{
		res:          res,
		model:        model,
		r:            r,
		visited:      make([]bool, n),
		aliveVersion: -1,
	}
}

// refreshAlive rebuilds the alive-node list if the residual changed.
func (s *Sampler) refreshAlive() {
	if s.aliveVersion == s.res.Version() {
		return
	}
	s.aliveList = s.res.AliveNodes()
	s.aliveVersion = s.res.Version()
}

// Draw samples one RR set. It returns nil if no node is alive.
//
// Under IC, each in-edge (u,v) is traversed (reverse direction) with its
// probability, coins drawn lazily — equivalent to sampling a realization
// and collecting the nodes that reach the root, but only exploring the
// reverse cone. Under LT, each visited node picks at most one in-parent.
func (s *Sampler) Draw() *RRSet {
	s.refreshAlive()
	if len(s.aliveList) == 0 {
		return nil
	}
	root := s.aliveList[s.r.Intn(len(s.aliveList))]
	set := &RRSet{Root: root}
	s.stack = s.stack[:0]
	s.touched = s.touched[:0]

	push := func(u graph.NodeID) {
		if s.visited[u] || !s.res.Alive(u) {
			return
		}
		s.visited[u] = true
		s.touched = append(s.touched, u)
		s.stack = append(s.stack, u)
	}
	push(root)
	g := s.res.Graph()
	for len(s.stack) > 0 {
		v := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		srcs, ps := g.InNeighbors(v)
		switch s.model {
		case cascade.IC:
			for i, u := range srcs {
				if s.r.Coin(ps[i]) {
					push(u)
				}
			}
		case cascade.LT:
			x := s.r.Float64()
			acc := 0.0
			for i, u := range srcs {
				acc += ps[i]
				if x < acc {
					push(u)
					break
				}
			}
		}
	}
	set.Nodes = make([]graph.NodeID, len(s.touched))
	copy(set.Nodes, s.touched)
	// Clear scratch for the next draw.
	for _, u := range s.touched {
		s.visited[u] = false
	}
	return set
}

// Generate draws theta RR sets into a new Collection. If the residual has
// no alive nodes the collection holds fewer sets than requested; callers
// must read Collection.Len() (and may check Shortfall) rather than assume
// theta sets exist.
func (s *Sampler) Generate(theta int) *Collection {
	c := NewCollection(s.res.FullN())
	c.noteRequested(theta)
	for i := 0; i < theta; i++ {
		rr := s.Draw()
		if rr == nil {
			break
		}
		c.Add(rr)
	}
	return c
}
