package ris

import (
	"math"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RRSet is one reverse-reachable set: the nodes that reach Root under one
// sampled realization, Root included. Collections store sets unboxed in a
// flat arena; RRSet is the boxed form for single-draw callers and tests.
type RRSet struct {
	Root  graph.NodeID
	Nodes []graph.NodeID
}

// Sampler generates RR sets on a (residual view of a) graph.
// A Sampler is not safe for concurrent use; create one per goroutine with
// independent RNG streams, or draw through a SamplerPool which owns one
// sampler per worker.
type Sampler struct {
	res   *graph.Residual
	model cascade.Model
	r     *rng.RNG

	// Scratch buffers reused across draws to avoid per-RR-set allocation.
	// touched doubles as the BFS frontier: nodes are expanded in append
	// order, so no separate stack is maintained.
	visited []bool
	touched []graph.NodeID
	perm    []int32 // position scratch for large success counts

	// skipAlive is set per draw when every node is alive (full residual):
	// pushNode then skips the aliveness lookup, saving a random memory
	// access per traversed edge in the common early rounds.
	skipAlive bool

	// noFast forces the per-edge reference path even on uniform
	// in-probability graphs; distributional-equivalence tests set it.
	noFast bool

	// Frontier-batched expansion state (batch.go): per-lane RNG
	// substreams, the shared SoA worklist (node and draw-id lanes; BFS
	// depth is the segment index, tracked as a scalar), the per-node
	// lane-visited bitmask, and per-lane size scratch. Allocated on
	// first batched draw and reused across windows and batches.
	laneRNG  []rng.RNG
	laneLen  []int32
	laneOff  []int32
	visitedW []uint8
	wlNode   []graph.NodeID
	wlLane   []uint8
	spillH   []int32        // worklist indices of pops deferred to the spill pass
	spillU   []uint32       // their already-drawn count words
	candU    []graph.NodeID // speculative single-success candidates, dense per pop
	candA    []uint8        // their accept flags (pre-dedup)

	// Bandwidth accounting, cumulative across draws: visits counts
	// worklist pops (= nodes added to RR sets), edgeTouches counts
	// in-adjacency entries actually read. Together they price a draw in
	// memory traffic (see SamplerPool.Visits / EdgeTouches).
	visits      uint64
	edgeTouches uint64
	maxDepth    int
}

// NewSampler creates a sampler over res under the given model.
func NewSampler(res *graph.Residual, model cascade.Model, r *rng.RNG) *Sampler {
	s := &Sampler{model: model}
	s.bind(res, r)
	return s
}

// bind points the sampler at a residual view and RNG stream, growing all
// scratch to its worst case when the underlying graph is larger than
// anything seen before: visited and touched from the node count, perm
// from the maximum in-degree (the largest position set pickPositions can
// spill). Sizing everything here — instead of growing touched/perm ad
// hoc inside the draw loop — is what makes the warm loop allocation-free
// from the very first draw. SamplerPool rebinds its workers this way on
// every batch, so scratch survives across attempts, rounds, and
// algorithms.
func (s *Sampler) bind(res *graph.Residual, r *rng.RNG) {
	s.res = res
	s.r = r
	n := res.FullN()
	if len(s.visited) < n {
		s.visited = make([]bool, n)
	}
	if cap(s.touched) < n {
		s.touched = make([]graph.NodeID, 0, n)
	}
	if d := res.Graph().MaxInDegree(); cap(s.perm) < d {
		s.perm = make([]int32, d)
	}
}

const countSentinel = ^uint32(0)

// jumpMaxP bounds the per-edge probability up to which geometric jumps
// beat a plain coin-per-edge scan: one jump costs a log evaluation
// (~6 coin flips), and the expected number of jumps over d edges is
// d·p + 1, so large p degrades toward per-edge cost with a worse
// constant.
const jumpMaxP = 0.25

// drawTouched samples one RR set into the s.touched scratch buffer and
// returns its root. ok is false when no node is alive. The buffer is only
// valid until the next draw.
//
// Under IC, each in-edge (u,v) is traversed (reverse direction) with its
// probability — equivalent to sampling a realization and collecting the
// nodes that reach the root, but only exploring the reverse cone. On
// graphs with compressed in-probabilities (graph.InUniform) the per-node
// expansion runs in O(successes) RNG draws instead of O(in-degree): the
// number of successful in-edges comes from one success-count table draw
// (or a Geometric(p) jump sequence when the node has no table), and the
// success positions are placed uniformly — the same joint distribution as
// one independent coin per edge. Under LT, each visited node picks at most
// one in-parent; the uniform fast path inverts the pick in O(1) instead of
// a linear prefix scan.
func (s *Sampler) drawTouched() (root graph.NodeID, ok bool) {
	alive := s.res.AliveList()
	if len(alive) == 0 {
		return 0, false
	}
	root = alive[s.r.Intn(len(alive))]
	s.touched = s.touched[:0]
	s.skipAlive = len(alive) == s.res.FullN()
	s.pushNode(root)
	g := s.res.Graph()
	switch fast := !s.noFast && g.InUniform(); {
	case fast && s.model == cascade.IC:
		s.traverseFastIC(g)
	case fast:
		s.traverseFastLT(g)
	default:
		s.traverseRef(g)
	}
	s.visits += uint64(len(s.touched))
	// Clear scratch for the next draw.
	for _, u := range s.touched {
		s.visited[u] = false
	}
	return root, true
}

// traverseFastIC runs the reverse BFS under IC on a graph with compressed
// in-probabilities. The success count of a visit is drawn before the
// adjacency is touched: a zero count (the most likely outcome under
// weighted cascade) finishes the visit on the tables alone. The count word
// is drawn on every visit — and discarded for table-less nodes — so this
// path consumes the RNG stream exactly like the bulk appendFastIC loop.
func (s *Sampler) traverseFastIC(g *graph.Graph) {
	for head := 0; head < len(s.touched); head++ {
		v := s.touched[head]
		u32 := s.r.Uint32()
		if u32 == countSentinel {
			u32-- // keep the sentinel an unconditional terminator
		}
		if tab := g.InCountThresholds(v); tab != nil {
			k := 0
			for _, t := range tab { // terminates at the sentinel
				if u32 < t {
					break
				}
				k++
			}
			if k > 0 {
				srcs, _, _ := g.InNeighborsUniform(v)
				s.edgeTouches += uint64(k)
				if k == 1 {
					s.pushNode(srcs[s.r.Intn(len(srcs))])
				} else {
					s.pushKofD(srcs, k)
				}
			}
			continue
		}
		srcs, p, _ := g.InNeighborsUniform(v)
		if len(srcs) > 0 {
			s.expandICUniform(srcs, p)
		}
	}
}

// traverseFastLT runs the reverse walk under LT on a graph with compressed
// in-probabilities: the prefix scan picks srcs[i] iff x lands in
// [i·p, (i+1)·p), which inverts to one division per visit.
func (s *Sampler) traverseFastLT(g *graph.Graph) {
	for head := 0; head < len(s.touched); head++ {
		v := s.touched[head]
		srcs, p, _ := g.InNeighborsUniform(v)
		if len(srcs) == 0 {
			continue
		}
		if idx := s.r.PrefixPick(p, len(srcs)); idx >= 0 {
			s.edgeTouches++
			s.pushNode(srcs[idx])
		}
	}
}

// traverseRef is the per-edge reference traversal used on mixed
// in-probability graphs (and by equivalence tests on any graph).
func (s *Sampler) traverseRef(g *graph.Graph) {
	for head := 0; head < len(s.touched); head++ {
		v := s.touched[head]
		srcs, ps := g.InNeighbors(v)
		switch s.model {
		case cascade.IC:
			s.edgeTouches += uint64(len(srcs))
			for i, u := range srcs {
				if s.r.Coin(ps[i]) {
					s.pushNode(u)
				}
			}
		case cascade.LT:
			x := s.r.Float64()
			acc := 0.0
			for i, u := range srcs {
				acc += ps[i]
				s.edgeTouches++
				if x < acc {
					s.pushNode(u)
					break
				}
			}
		}
	}
}

// expandICUniform pushes the in-neighbors of v that survive an IC coin
// flip when v has no success-count table (the table path lives inline in
// drawTouched), exploiting that all of v's in-edges share probability p:
//
//   - p >= 1: every in-edge fires;
//   - geometric jump (rng.Geometric): skip from one success to the next,
//     O(successes) draws — used while p is small enough for jumps to pay;
//   - per-edge coins: the reference path, best for large p.
//
// All strategies draw from the same per-edge Bernoulli product
// distribution.
func (s *Sampler) expandICUniform(srcs []graph.NodeID, p float64) {
	d := len(srcs)
	if p >= 1 {
		s.edgeTouches += uint64(d)
		for _, u := range srcs {
			s.pushNode(u)
		}
		return
	}
	if p <= jumpMaxP {
		inv := 1 / math.Log1p(-p)
		for i := s.r.GeometricInv(inv, d); i < d; i += 1 + s.r.GeometricInv(inv, d) {
			s.edgeTouches++
			s.pushNode(srcs[i])
		}
		return
	}
	s.edgeTouches += uint64(d)
	for _, u := range srcs {
		if s.r.Coin(p) {
			s.pushNode(u)
		}
	}
}

// maxRejectK bounds the success count up to which a uniform k-subset of
// positions is drawn by rejection against a tiny fixed buffer; larger
// counts switch to a partial Fisher-Yates over the perm scratch.
const maxRejectK = 8

// pushKofD pushes k (>= 2) sources chosen uniformly without replacement
// from srcs — combined with the Binomial success count this reproduces
// independent per-edge coins exactly (exchangeability).
func (s *Sampler) pushKofD(srcs []graph.NodeID, k int) {
	var buf [maxRejectK]int32
	for _, pos := range s.pickPositions(s.r, len(srcs), k, buf[:0]) {
		s.pushNode(srcs[pos])
	}
}

// pickPositions draws k distinct uniform positions in [0, d) from r,
// appending to buf when it fits and spilling to the perm scratch
// otherwise. The returned slice is valid until the next call. r is
// explicit because batched expansion draws from per-lane substreams
// rather than the sampler's bound stream.
func (s *Sampler) pickPositions(r *rng.RNG, d, k int, buf []int32) []int32 {
	out := buf
	if k > cap(out) || k >= d {
		if cap(s.perm) < d {
			s.perm = make([]int32, d)
		}
		out = s.perm[:0]
	}
	switch {
	case k >= d:
		for i := 0; i < d; i++ {
			out = append(out, int32(i))
		}
	case k == 2: // the overwhelmingly common multi-success count
		i := int32(r.Intn(d))
		j := int32(r.Intn(d))
		for j == i {
			j = int32(r.Intn(d))
		}
		out = append(out, i, j)
	case k <= maxRejectK:
		for c := 0; c < k; {
			i := int32(r.Intn(d))
			dup := false
			for j := 0; j < c; j++ {
				if out[j] == i {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			out = append(out, i)
			c++
		}
	default:
		// Partial Fisher-Yates over the scratch permutation.
		perm := s.perm[:d]
		for i := range perm {
			perm[i] = int32(i)
		}
		for c := 0; c < k; c++ {
			j := c + r.Intn(d-c)
			perm[c], perm[j] = perm[j], perm[c]
		}
		out = perm[:k]
	}
	return out
}

// pushNode adds u to the RR set under construction if it is alive and not
// yet visited.
func (s *Sampler) pushNode(u graph.NodeID) {
	if s.visited[u] || (!s.skipAlive && !s.res.Alive(u)) {
		return
	}
	s.visited[u] = true
	s.touched = append(s.touched, u)
}

// Draw samples one RR set into a freshly allocated RRSet. It returns nil
// if no node is alive. Bulk generation should go through Generate /
// AppendTo, which write into a Collection's arena without boxing.
func (s *Sampler) Draw() *RRSet {
	root, ok := s.drawTouched()
	if !ok {
		return nil
	}
	set := &RRSet{Root: root, Nodes: make([]graph.NodeID, len(s.touched))}
	copy(set.Nodes, s.touched)
	return set
}

// AppendTo draws up to count RR sets directly into c's arena, stopping
// early if the residual empties. The requested count is recorded on c so
// shortfalls stay observable. Bulk IC generation on compressed graphs
// runs through a specialized loop that hoists the per-draw dispatch out of
// the hot path.
func (s *Sampler) AppendTo(c *Collection, count int) {
	c.noteRequested(count)
	c.noteVersion(s.res.Version())
	if meta, arena, thr, tabOff := s.res.Graph().InSamplerTables(); meta != nil && !s.noFast && s.model == cascade.IC {
		s.appendFastIC(c, count, meta, arena, thr, tabOff)
		return
	}
	for i := 0; i < count; i++ {
		root, ok := s.drawTouched()
		if !ok {
			return
		}
		c.AddSet(root, s.touched)
	}
}

// appendFastIC is AppendTo's bulk loop for IC on compressed graphs: the
// same draw as traverseFastIC, with the per-draw prologue (alive list,
// graph, mode dispatch) hoisted into locals across the whole batch and
// per-visit state read through the packed InSamplerTables metadata — one
// random load per visit instead of three. It draws from exactly the same
// distribution as drawTouched.
func (s *Sampler) appendFastIC(c *Collection, count int, meta []graph.InMeta, inArena []graph.NodeID, thr []uint32, tabOff []int32) {
	res := s.res
	alive := res.AliveList()
	if len(alive) == 0 {
		return
	}
	g := res.Graph()
	r := s.r
	visited := s.visited
	full := res.FullN()
	skipAlive := len(alive) == full
	var posBuf [maxRejectK]int32
	for i := 0; i < count; i++ {
		// Build the set in the arena tail in place; a worst-case
		// reservation keeps the frontier from reallocating away, except
		// next to the maxArena boundary, where the post-draw copy path
		// below takes over.
		base := len(c.arena)
		c.growArena(base + full)
		inPlace := cap(c.arena)-base >= full
		touched := c.arena[base:base]
		if !inPlace {
			touched = s.touched[:0]
		}
		root := alive[r.Intn(len(alive))]
		visited[root] = true
		touched = append(touched, root)
		for head := 0; head < len(touched); head++ {
			v := touched[head]
			mv := meta[v]
			u32 := r.Uint32()
			if u32 == countSentinel {
				u32-- // keep the sentinel an unconditional terminator
			}
			if u32 < mv.Thr0 {
				continue // zero successes (or zero degree): metadata only
			}
			if u32 < mv.Thr1 {
				// Exactly one success — like the zero case, resolved on the
				// metadata alone, no table access. (Table-less nodes store
				// Thr1 = 0 and can never land here.)
				s.edgeTouches++
				u := inArena[mv.Start+int32(r.Intn(int(mv.Deg)))]
				if !visited[u] && (skipAlive || res.Alive(u)) {
					visited[u] = true
					touched = append(touched, u)
				}
				continue
			}
			toff := tabOff[v]
			if toff < 0 {
				// Rare shapes without a table: certain edges, a geometric
				// jump run, or per-edge coins — expandICUniform's strategy
				// choice, inlined so the frontier stays a local. (The count
				// draw above is discarded; these nodes set Thr0 = Thr1 = 0.)
				srcs, p, _ := g.InNeighborsUniform(v)
				d := len(srcs)
				switch {
				case d == 0:
				case p >= 1:
					s.edgeTouches += uint64(d)
					for _, u := range srcs {
						if !visited[u] && (skipAlive || res.Alive(u)) {
							visited[u] = true
							touched = append(touched, u)
						}
					}
				case p <= jumpMaxP:
					inv := 1 / math.Log1p(-p)
					for pos := r.GeometricInv(inv, d); pos < d; pos += 1 + r.GeometricInv(inv, d) {
						s.edgeTouches++
						u := srcs[pos]
						if !visited[u] && (skipAlive || res.Alive(u)) {
							visited[u] = true
							touched = append(touched, u)
						}
					}
				default:
					s.edgeTouches += uint64(d)
					for _, u := range srcs {
						if r.Coin(p) && !visited[u] && (skipAlive || res.Alive(u)) {
							visited[u] = true
							touched = append(touched, u)
						}
					}
				}
				continue
			}
			// Two or more successes: count k = |{j : u32 >= thr[j]}|.
			// Entries 1..4 (tables are sentinel-padded to at least five)
			// are compared branchlessly — the count distribution makes a
			// scanning branch mispredict constantly; the arithmetic compare
			// (borrow bit of u32-t) costs a fixed ~2 ops per entry instead.
			t4 := thr[toff+1 : toff+5]
			u64 := uint64(u32)
			lt := (u64-uint64(t4[0]))>>63 + (u64-uint64(t4[1]))>>63 +
				(u64-uint64(t4[2]))>>63 + (u64-uint64(t4[3]))>>63
			k := 5 - int(lt)
			if k == 5 { // rare heavy tail: finish with the scalar scan
				for _, t := range thr[toff+5:] { // stops at the sentinel
					if u32 < t {
						break
					}
					k++
				}
			}
			if k == 2 && mv.Deg > 2 {
				s.edgeTouches += 2
				i := int32(r.Intn(int(mv.Deg)))
				j := int32(r.Intn(int(mv.Deg)))
				for j == i {
					j = int32(r.Intn(int(mv.Deg)))
				}
				u := inArena[mv.Start+i]
				if !visited[u] && (skipAlive || res.Alive(u)) {
					visited[u] = true
					touched = append(touched, u)
				}
				u = inArena[mv.Start+j]
				if !visited[u] && (skipAlive || res.Alive(u)) {
					visited[u] = true
					touched = append(touched, u)
				}
				continue
			}
			srcs := inArena[mv.Start : mv.Start+mv.Deg]
			s.edgeTouches += uint64(k)
			for _, pos := range s.pickPositions(r, len(srcs), k, posBuf[:0]) {
				u := srcs[pos]
				if !visited[u] && (skipAlive || res.Alive(u)) {
					visited[u] = true
					touched = append(touched, u)
				}
			}
		}
		s.visits += uint64(len(touched))
		for _, u := range touched {
			visited[u] = false
		}
		if inPlace {
			c.commitSet(root, len(touched))
		} else {
			c.AddSet(root, touched)
			s.touched = touched
		}
	}
}

// Generate draws theta RR sets into a new Collection. If the residual has
// no alive nodes the collection holds fewer sets than requested; callers
// must read Collection.Len() (and may check Shortfall) rather than assume
// theta sets exist.
func (s *Sampler) Generate(theta int) *Collection {
	c := NewCollection(s.res.FullN())
	s.AppendTo(c, theta)
	return c
}
