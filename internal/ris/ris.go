package ris

import (
	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RRSet is one reverse-reachable set: the nodes that reach Root under one
// sampled realization, Root included. Collections store sets unboxed in a
// flat arena; RRSet is the boxed form for single-draw callers and tests.
type RRSet struct {
	Root  graph.NodeID
	Nodes []graph.NodeID
}

// Sampler generates RR sets on a (residual view of a) graph.
// A Sampler is not safe for concurrent use; create one per goroutine with
// independent RNG streams (see GenerateParallel).
type Sampler struct {
	res   *graph.Residual
	model cascade.Model
	r     *rng.RNG

	// Scratch buffers reused across draws to avoid per-RR-set allocation.
	visited []bool
	stack   []graph.NodeID
	touched []graph.NodeID

	// aliveList caches the alive node IDs for uniform root sampling; it is
	// rebuilt when the residual's version changes.
	aliveList    []graph.NodeID
	aliveVersion int64
}

// NewSampler creates a sampler over res under the given model.
func NewSampler(res *graph.Residual, model cascade.Model, r *rng.RNG) *Sampler {
	n := res.FullN()
	return &Sampler{
		res:          res,
		model:        model,
		r:            r,
		visited:      make([]bool, n),
		aliveVersion: -1,
	}
}

// refreshAlive rebuilds the alive-node list if the residual changed.
func (s *Sampler) refreshAlive() {
	if s.aliveVersion == s.res.Version() {
		return
	}
	s.aliveList = s.res.AliveNodes()
	s.aliveVersion = s.res.Version()
}

// drawTouched samples one RR set into the s.touched scratch buffer and
// returns its root. ok is false when no node is alive. The buffer is only
// valid until the next draw.
//
// Under IC, each in-edge (u,v) is traversed (reverse direction) with its
// probability, coins drawn lazily — equivalent to sampling a realization
// and collecting the nodes that reach the root, but only exploring the
// reverse cone. Under LT, each visited node picks at most one in-parent.
func (s *Sampler) drawTouched() (root graph.NodeID, ok bool) {
	s.refreshAlive()
	if len(s.aliveList) == 0 {
		return 0, false
	}
	root = s.aliveList[s.r.Intn(len(s.aliveList))]
	s.stack = s.stack[:0]
	s.touched = s.touched[:0]

	push := func(u graph.NodeID) {
		if s.visited[u] || !s.res.Alive(u) {
			return
		}
		s.visited[u] = true
		s.touched = append(s.touched, u)
		s.stack = append(s.stack, u)
	}
	push(root)
	g := s.res.Graph()
	for len(s.stack) > 0 {
		v := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		srcs, ps := g.InNeighbors(v)
		switch s.model {
		case cascade.IC:
			for i, u := range srcs {
				if s.r.Coin(ps[i]) {
					push(u)
				}
			}
		case cascade.LT:
			x := s.r.Float64()
			acc := 0.0
			for i, u := range srcs {
				acc += ps[i]
				if x < acc {
					push(u)
					break
				}
			}
		}
	}
	// Clear scratch for the next draw.
	for _, u := range s.touched {
		s.visited[u] = false
	}
	return root, true
}

// Draw samples one RR set into a freshly allocated RRSet. It returns nil
// if no node is alive. Bulk generation should go through Generate /
// AppendTo, which write into a Collection's arena without boxing.
func (s *Sampler) Draw() *RRSet {
	root, ok := s.drawTouched()
	if !ok {
		return nil
	}
	set := &RRSet{Root: root, Nodes: make([]graph.NodeID, len(s.touched))}
	copy(set.Nodes, s.touched)
	return set
}

// AppendTo draws up to count RR sets directly into c's arena, stopping
// early if the residual empties. The requested count is recorded on c so
// shortfalls stay observable.
func (s *Sampler) AppendTo(c *Collection, count int) {
	c.noteRequested(count)
	c.noteVersion(s.res.Version())
	for i := 0; i < count; i++ {
		root, ok := s.drawTouched()
		if !ok {
			return
		}
		c.AddSet(root, s.touched)
	}
}

// Generate draws theta RR sets into a new Collection. If the residual has
// no alive nodes the collection holds fewer sets than requested; callers
// must read Collection.Len() (and may check Shortfall) rather than assume
// theta sets exist.
func (s *Sampler) Generate(theta int) *Collection {
	c := NewCollection(s.res.FullN())
	s.AppendTo(c, theta)
	return c
}
