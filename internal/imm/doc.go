// Package imm implements the IMM influence-maximization algorithm of
// Tang, Shi and Xiao (SIGMOD 2015), which the paper
// (conf_icde_Huang0XSL20, §VI-A) uses ("one of the state of the arts
// [28]") to pick the top-k influential users as the target seed set T of
// every experiment.
//
// IMM runs in two phases. The sampling phase searches exponentially
// decreasing guesses x = n/2^i of OPT_k; for each guess it draws enough
// RR sets that a greedy max-coverage solution exceeding the threshold
// certifies a lower bound LB on OPT_k with high probability. The node
// selection phase then draws θ(LB) RR sets and greedily picks k nodes
// (heap-based CELF over the CSR collection, ris.GreedyMaxCoverage),
// giving a (1 − 1/e − ε)-approximation with probability 1 − 1/n^ℓ.
//
// Each sampling-phase guess draws a fresh collection rather than reusing
// the previous guess's sets: IMM's guarantee needs the sets certifying LB
// to be independent of earlier guesses. The CSR arena still keeps each
// phase a handful of allocations, and Result.PeakRRBytes reports the
// largest collection any phase materialized.
//
// SpreadLowerBound additionally exposes the Hoeffding lower bound
// E_l[I(T)] that §VI-A's cost calibration uses as the total seeding
// budget, keeping the baseline profit ρ(T) nonnegative.
package imm
