// Package imm implements the IMM influence-maximization algorithm of
// Tang, Shi and Xiao (SIGMOD 2015), which the paper
// (conf_icde_Huang0XSL20, §VI-A) uses ("one of the state of the arts
// [28]") to pick the top-k influential users as the target seed set T of
// every experiment.
//
// IMM runs in two phases. The sampling phase searches exponentially
// decreasing guesses x = n/2^i of OPT_k; for each guess it draws enough
// RR sets that a greedy max-coverage solution exceeding the threshold
// certifies a lower bound LB on OPT_k with high probability. The node
// selection phase then draws θ(LB) RR sets and greedily picks k nodes
// (heap-based CELF over the CSR collection,
// ris.GreedyMaxCoverageWorkers with Options.Workers goroutines — the
// parallel path returns exactly the serial selection), giving a
// (1 − 1/e − ε)-approximation with probability 1 − 1/n^ℓ.
//
// The θ search runs through the shared ris.Batcher batch loop: the
// guesses form a doubling θ schedule on an unchanged residual, so by
// default each guess tops up the previous guess's collection instead of
// redrawing it, roughly halving the sampling-phase draws. The trade is
// that the guesses' stopping tests are no longer independent — each
// certificate still holds marginally, but the union bound over guesses
// becomes conservative rather than exact. The selection phase always
// draws a fresh collection in both modes: reusing the LB samples there
// is the documented flaw of original IMM (θ is sized from an LB
// estimated on the very samples the selection greedy would then
// overfit). Options.NoReuse additionally restores fresh-per-guess LB
// draws — Select is then bit-identical to the pre-batcher
// implementation, which is what `--sampler fixed` pipelines use.
// Result.PeakRRBytes reports the largest collection either phase
// materialized.
//
// SpreadLowerBound additionally exposes the Hoeffding lower bound
// E_l[I(T)] that §VI-A's cost calibration uses as the total seeding
// budget, keeping the baseline profit ρ(T) nonnegative.
package imm
