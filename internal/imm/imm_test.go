package imm

import (
	"math"
	"testing"

	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSelectFindsObviousHub(t *testing.T) {
	// Star with a strong center: node 0 influences 1..9 with p = 0.9.
	b := graph.NewBuilder(10, true)
	for v := 1; v < 10; v++ {
		if err := b.AddEdge(0, graph.NodeID(v), 0.9); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	res, err := Select(g, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Fatalf("IMM picked %v, want [0]", res.Seeds)
	}
	if res.SpreadLower <= 0 {
		t.Fatalf("SpreadLower = %v", res.SpreadLower)
	}
}

func TestSelectTwoCommunities(t *testing.T) {
	// Two disjoint stars; k=2 must pick both centers.
	b := graph.NewBuilder(20, true)
	for v := 1; v < 10; v++ {
		_ = b.AddEdge(0, graph.NodeID(v), 0.8)
		_ = b.AddEdge(10, graph.NodeID(10+v), 0.8)
	}
	g := b.Build()
	res, err := Select(g, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := map[graph.NodeID]bool{}
	for _, s := range res.Seeds {
		got[s] = true
	}
	if !got[0] || !got[10] {
		t.Fatalf("IMM picked %v, want centers {0, 10}", res.Seeds)
	}
}

func TestSelectSeedSpreadNearOptimal(t *testing.T) {
	// On a generated graph, the IMM seed set's MC spread should beat a
	// random set of the same size by a wide margin.
	g, err := gen.Generate(gen.Config{Model: gen.PrefAttach, N: 800, AvgDeg: 6, Directed: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	res, err := Select(g, k, Options{Seed: 6, Eps: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != k {
		t.Fatalf("got %d seeds, want %d", len(res.Seeds), k)
	}
	immSpread := cascade.MonteCarloSpread(g, cascade.IC, res.Seeds, 3000, rng.New(7))
	r := rng.New(8)
	randSpread := 0.0
	for trial := 0; trial < 5; trial++ {
		perm := r.Perm(g.N())
		random := make([]graph.NodeID, k)
		for i := 0; i < k; i++ {
			random[i] = graph.NodeID(perm[i])
		}
		randSpread += cascade.MonteCarloSpread(g, cascade.IC, random, 1000, r)
	}
	randSpread /= 5
	if immSpread < 1.5*randSpread {
		t.Fatalf("IMM spread %.1f not clearly better than random %.1f", immSpread, randSpread)
	}
	// The certified lower bound must actually be a lower bound (within MC noise).
	if res.SpreadLower > immSpread*1.1 {
		t.Fatalf("SpreadLower %.1f exceeds measured spread %.1f", res.SpreadLower, immSpread)
	}
}

func TestSelectDeterministic(t *testing.T) {
	g, _ := gen.Generate(gen.Config{Model: gen.PrefAttach, N: 300, AvgDeg: 5, Directed: true, Seed: 9})
	a, err := Select(g, 5, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(g, 5, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs: %v vs %v", i, a.Seeds, b.Seeds)
		}
	}
}

func TestSelectErrors(t *testing.T) {
	g := graph.MustFromEdges(3, true, []graph.Edge{{From: 0, To: 1, P: 0.5}})
	if _, err := Select(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Select(g, 4, Options{}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestSelectKEqualsN(t *testing.T) {
	g := graph.MustFromEdges(3, true, []graph.Edge{{From: 0, To: 1, P: 0.5}})
	res, err := Select(g, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy may stop early once coverage saturates, but never exceed k.
	if len(res.Seeds) > 3 {
		t.Fatalf("selected %d seeds with k = n = 3", len(res.Seeds))
	}
}

func TestSpreadLowerBound(t *testing.T) {
	// Chain 0 -> 1 (p=0.5): E[I({0})] = 1.5. The lower bound must be below
	// the truth but positive at reasonable sample sizes.
	g := graph.MustFromEdges(2, true, []graph.Edge{{From: 0, To: 1, P: 0.5}})
	lb := SpreadLowerBound(g, cascade.IC, []graph.NodeID{0}, 50000, 0.001, 3, 0)
	if lb <= 0 || lb > 1.5 {
		t.Fatalf("lower bound %v outside (0, 1.5]", lb)
	}
	if 1.5-lb > 0.1 {
		t.Fatalf("lower bound %v too loose at θ=50000", lb)
	}
}

func TestSpreadLowerBoundNeverNegative(t *testing.T) {
	g := graph.MustFromEdges(2, true, []graph.Edge{{From: 0, To: 1, P: 0.5}})
	// With almost no samples the half-width exceeds the estimate; bound
	// must clamp at 0.
	lb := SpreadLowerBound(g, cascade.IC, []graph.NodeID{1}, 2, 0.0001, 3, 1)
	if lb < 0 {
		t.Fatalf("lower bound %v negative", lb)
	}
}

func TestLogChoose(t *testing.T) {
	// C(10, 3) = 120.
	if got := math.Exp(logChoose(10, 3)); math.Abs(got-120) > 1e-6 {
		t.Fatalf("exp(logChoose(10,3)) = %v, want 120", got)
	}
	if logChoose(5, 0) != 0 {
		t.Fatal("logChoose(n,0) should be 0")
	}
	if logChoose(5, 9) != 0 {
		t.Fatal("logChoose out of range should be 0")
	}
}
