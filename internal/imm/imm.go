package imm

import (
	"fmt"
	"math"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// Options configures IMM.
type Options struct {
	Eps   float64 // approximation slack ε; default 0.5 (coarse, fast)
	Ell   float64 // failure exponent ℓ (success prob 1 − 1/n^ℓ); default 1
	Model cascade.Model
	Seed  uint64
	// Workers for parallel RR generation and parallel greedy selection
	// (ris.GreedyMaxCoverageWorkers); 0 means GOMAXPROCS. Selection output
	// is identical for every worker count.
	Workers int
	// NoReuse draws a fresh RR collection for every lower-bound guess,
	// exactly as the pre-batcher implementation did (paper-faithful; what
	// `--sampler fixed` selects). By default the θ search keeps one
	// collection and tops it up from guess to guess — the guesses form a
	// doubling θ schedule on an unchanged residual, so growth reuses every
	// earlier sample and the LB phase draws roughly half the sets, at the
	// price of correlating the stopping tests across guesses (each guess's
	// certificate still holds marginally; the union bound over guesses
	// becomes conservative rather than exact). The selection phase always
	// draws fresh sets in both modes: reusing the LB samples there is the
	// known flaw of original IMM (θ is sized from an LB estimated on the
	// very samples selection would then greedily overfit), so that reuse
	// is never performed.
	NoReuse bool
}

func (o *Options) setDefaults() {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
}

// Result carries the selected seeds and diagnostics.
type Result struct {
	Seeds       []graph.NodeID
	SpreadLower float64 // certified lower bound on E[I(Seeds)] (n·cov/θ based)
	// Theta is the number of RR sets actually used in the selection phase
	// (Collection.Len()). ThetaRequested is what the theory asked for;
	// Theta < ThetaRequested means generation fell short (empty residual)
	// and the (1−1/e−ε) guarantee is weakened — callers must check.
	Theta          int
	ThetaRequested int
	TotalRR        int64 // RR sets drawn across both phases
	// PeakRRBytes is the largest arena footprint any phase's RR collection
	// reached (ris.Collection.Bytes); deterministic per seed.
	PeakRRBytes int64
}

// Select returns the (approximately) most influential k nodes of g.
func Select(g *graph.Graph, k int, opts Options) (*Result, error) {
	opts.setDefaults()
	n := g.N()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("imm: k=%d out of range (n=%d)", k, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("imm: empty graph")
	}
	nf := float64(n)
	eps, ell := opts.Eps, opts.Ell
	// Boost ℓ so the union bound over the sampling phase holds
	// (ℓ' = ℓ·(1 + log 2 / log n) in the paper).
	if n > 1 {
		ell = ell * (1 + math.Ln2/math.Log(nf))
	}
	logChooseNK := logChoose(n, k)

	r := rng.New(opts.Seed)
	res := graph.NewResidual(g)
	// One batcher spans the LB-guessing and selection phases: the pool's
	// worker scratch is shared either way, and by default the collection
	// is too — the θ search is a doubling schedule on an unchanged
	// residual, so each guess tops up the previous guess's sets instead of
	// redrawing them (NoReuse restores the fresh-per-guess draws).
	b := ris.NewBatcher(opts.Model)

	// Sampling phase: find LB.
	epsPrime := math.Sqrt2 * eps
	lambdaPrime := (2 + 2*epsPrime/3) * (logChooseNK + ell*math.Log(nf) + math.Log(math.Log2(math.Max(nf, 2)))) * nf / (epsPrime * epsPrime)
	lb := 1.0
	maxI := int(math.Ceil(math.Log2(nf))) - 1
	if maxI < 1 {
		maxI = 1
	}
	for i := 1; i <= maxI; i++ {
		x := nf / math.Exp2(float64(i))
		thetaI := int(math.Ceil(lambdaPrime / x))
		if opts.NoReuse && b.Collection() != nil {
			b.Collection().Reset()
		}
		if _, err := b.GrowTo(res, r, thetaI, opts.Workers); err != nil {
			return nil, err
		}
		collection := b.Collection()
		collection.SetTieOrder(g.OriginalIDs())
		all := allNodes(n)
		seeds, cum := collection.GreedyMaxCoverageWorkers(all, k, opts.Workers)
		if len(seeds) == 0 {
			break
		}
		frac := float64(cum[len(cum)-1]) / float64(collection.Len())
		if nf*frac >= (1+epsPrime)*x {
			lb = nf * frac / (1 + epsPrime)
			break
		}
	}

	// Selection phase.
	alpha := math.Sqrt(ell*math.Log(nf) + math.Ln2)
	beta := math.Sqrt((1 - 1/math.E) * (logChooseNK + ell*math.Log(nf) + math.Ln2))
	lambdaStar := 2 * nf * sq((1-1/math.E)*alpha+beta) / (eps * eps)
	theta := int(math.Ceil(lambdaStar / lb))
	if theta < 1 {
		theta = 1
	}
	// The selection sample is always fresh: reusing the LB-phase sets here
	// would size θ from an LB the greedy then overfits on the very same
	// sets (the documented flaw of original IMM), so cross-phase reuse is
	// never performed regardless of NoReuse.
	if b.Collection() != nil {
		b.Collection().Reset()
	}
	if _, err := b.GrowTo(res, r, theta, opts.Workers); err != nil {
		return nil, err
	}
	collection := b.Collection()
	collection.SetTieOrder(g.OriginalIDs())
	seeds, cum := collection.GreedyMaxCoverageWorkers(allNodes(n), k, opts.Workers)
	spread := 0.0
	if len(cum) > 0 {
		spread = nf * float64(cum[len(cum)-1]) / float64(collection.Len())
	}
	return &Result{
		Seeds:          seeds,
		SpreadLower:    spread / (1 + eps),
		Theta:          collection.Len(),
		ThetaRequested: theta,
		TotalRR:        b.Drawn(),
		PeakRRBytes:    b.PeakBytes(),
	}, nil
}

// SpreadLowerBound estimates a high-probability lower bound of E[I(S)] on
// g by drawing theta RR sets and subtracting the Hoeffding half-width at
// confidence 1−delta. The paper's cost calibration uses such a bound as
// E_l[I(T)] so that c(T) = E_l[I(T)] keeps ρ(T) ≥ 0.
func SpreadLowerBound(g *graph.Graph, model cascade.Model, s []graph.NodeID, theta int, delta float64, seed uint64, workers int) float64 {
	if theta <= 0 {
		panic("imm: theta must be positive")
	}
	res := graph.NewResidual(g)
	c := ris.GenerateParallel(res, model, rng.New(seed), theta, workers)
	if c.Len() == 0 {
		return 0
	}
	frac := float64(c.Cov(s)) / float64(c.Len())
	half := math.Sqrt(math.Log(1/delta) / (2 * float64(c.Len())))
	lower := (frac - half) * float64(g.N())
	if lower < 0 {
		lower = 0
	}
	return lower
}

func allNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// logChoose returns ln C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

func sq(x float64) float64 { return x * x }
