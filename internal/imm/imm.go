package imm

import (
	"fmt"
	"math"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// Options configures IMM.
type Options struct {
	Eps   float64 // approximation slack ε; default 0.5 (coarse, fast)
	Ell   float64 // failure exponent ℓ (success prob 1 − 1/n^ℓ); default 1
	Model cascade.Model
	Seed  uint64
	// Workers for parallel RR generation; 0 means GOMAXPROCS.
	Workers int
}

func (o *Options) setDefaults() {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
}

// Result carries the selected seeds and diagnostics.
type Result struct {
	Seeds       []graph.NodeID
	SpreadLower float64 // certified lower bound on E[I(Seeds)] (n·cov/θ based)
	// Theta is the number of RR sets actually used in the selection phase
	// (Collection.Len()). ThetaRequested is what the theory asked for;
	// Theta < ThetaRequested means generation fell short (empty residual)
	// and the (1−1/e−ε) guarantee is weakened — callers must check.
	Theta          int
	ThetaRequested int
	TotalRR        int64 // RR sets drawn across both phases
	// PeakRRBytes is the largest arena footprint any phase's RR collection
	// reached (ris.Collection.Bytes); deterministic per seed.
	PeakRRBytes int64
}

// Select returns the (approximately) most influential k nodes of g.
func Select(g *graph.Graph, k int, opts Options) (*Result, error) {
	opts.setDefaults()
	n := g.N()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("imm: k=%d out of range (n=%d)", k, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("imm: empty graph")
	}
	nf := float64(n)
	eps, ell := opts.Eps, opts.Ell
	// Boost ℓ so the union bound over the sampling phase holds
	// (ℓ' = ℓ·(1 + log 2 / log n) in the paper).
	if n > 1 {
		ell = ell * (1 + math.Ln2/math.Log(nf))
	}
	logChooseNK := logChoose(n, k)

	r := rng.New(opts.Seed)
	res := graph.NewResidual(g)
	// One sampler pool spans the LB-guessing and selection phases, so
	// worker scratch is shared even though each phase draws a fresh
	// collection (IMM's independence requirement is on the RR sets, not
	// on the samplers' scratch buffers).
	pool := ris.NewSamplerPool(opts.Model)
	var totalRR int64

	// Sampling phase: find LB.
	epsPrime := math.Sqrt2 * eps
	lambdaPrime := (2 + 2*epsPrime/3) * (logChooseNK + ell*math.Log(nf) + math.Log(math.Log2(math.Max(nf, 2)))) * nf / (epsPrime * epsPrime)
	lb := 1.0
	var collection *ris.Collection
	var peakBytes int64
	maxI := int(math.Ceil(math.Log2(nf))) - 1
	if maxI < 1 {
		maxI = 1
	}
	for i := 1; i <= maxI; i++ {
		x := nf / math.Exp2(float64(i))
		thetaI := int(math.Ceil(lambdaPrime / x))
		// Each guess draws a fresh collection: IMM's guarantee needs the
		// sets that certify LB to be independent of earlier guesses, so
		// unlike the adaptive round loop there is no cross-guess reuse.
		collection = pool.Generate(res, r.Split(), thetaI, opts.Workers)
		totalRR += int64(collection.Len())
		if b := collection.Bytes(); b > peakBytes {
			peakBytes = b
		}
		all := allNodes(n)
		seeds, cum := collection.GreedyMaxCoverage(all, k)
		if len(seeds) == 0 {
			break
		}
		frac := float64(cum[len(cum)-1]) / float64(collection.Len())
		if nf*frac >= (1+epsPrime)*x {
			lb = nf * frac / (1 + epsPrime)
			break
		}
	}

	// Selection phase.
	alpha := math.Sqrt(ell*math.Log(nf) + math.Ln2)
	beta := math.Sqrt((1 - 1/math.E) * (logChooseNK + ell*math.Log(nf) + math.Ln2))
	lambdaStar := 2 * nf * sq((1-1/math.E)*alpha+beta) / (eps * eps)
	theta := int(math.Ceil(lambdaStar / lb))
	if theta < 1 {
		theta = 1
	}
	collection = pool.Generate(res, r.Split(), theta, opts.Workers)
	totalRR += int64(collection.Len())
	if b := collection.Bytes(); b > peakBytes {
		peakBytes = b
	}
	seeds, cum := collection.GreedyMaxCoverage(allNodes(n), k)
	spread := 0.0
	if len(cum) > 0 {
		spread = nf * float64(cum[len(cum)-1]) / float64(collection.Len())
	}
	return &Result{
		Seeds:          seeds,
		SpreadLower:    spread / (1 + eps),
		Theta:          collection.Len(),
		ThetaRequested: theta,
		TotalRR:        totalRR,
		PeakRRBytes:    peakBytes,
	}, nil
}

// SpreadLowerBound estimates a high-probability lower bound of E[I(S)] on
// g by drawing theta RR sets and subtracting the Hoeffding half-width at
// confidence 1−delta. The paper's cost calibration uses such a bound as
// E_l[I(T)] so that c(T) = E_l[I(T)] keeps ρ(T) ≥ 0.
func SpreadLowerBound(g *graph.Graph, model cascade.Model, s []graph.NodeID, theta int, delta float64, seed uint64, workers int) float64 {
	if theta <= 0 {
		panic("imm: theta must be positive")
	}
	res := graph.NewResidual(g)
	c := ris.GenerateParallel(res, model, rng.New(seed), theta, workers)
	if c.Len() == 0 {
		return 0
	}
	frac := float64(c.Cov(s)) / float64(c.Len())
	half := math.Sqrt(math.Log(1/delta) / (2 * float64(c.Len())))
	lower := (frac - half) * float64(g.N())
	if lower < 0 {
		lower = 0
	}
	return lower
}

func allNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// logChoose returns ln C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

func sq(x float64) float64 { return x * x }
