package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
)

// fastRetry shrinks the append backoff for the duration of a test.
func fastRetry(t *testing.T) {
	t.Helper()
	prev := appendRetry
	appendRetry = fault.Policy{Attempts: 4, Base: time.Microsecond, Cap: 10 * time.Microsecond}
	t.Cleanup(func() { appendRetry = prev })
}

func withInjector(t *testing.T, inj *fault.Injector) {
	t.Helper()
	prev := fault.Enable(inj)
	t.Cleanup(func() { fault.Enable(prev) })
}

// A torn append must be rolled back and retried: after Append returns
// nil, the journal on disk holds exactly the acknowledged records with no
// fragment of the torn attempt in between.
func TestJournalAppendRollsBackTornWrite(t *testing.T) {
	fastRetry(t)
	path := filepath.Join(t.TempDir(), "SWEEP_faulty.jsonl")
	spec := &Spec{Datasets: []string{"nethept-s"}, Models: []string{"ic"},
		CostSettings: []string{"uniform"}, Algos: []string{"addatp"}}
	spec.SetDefaults()
	j, err := CreateJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Fire a torn write on the very next append; the retry is a fresh
	// hit and goes through clean.
	withInjector(t, fault.New(3, fault.Rule{Site: fault.SiteJournalAppend, Mode: fault.ModeTorn, Nth: 1}))
	if err := j.Append(&Record{Type: recordCell, Key: "k1", Err: "x"}); err != nil {
		t.Fatalf("append under torn fault: %v", err)
	}
	fault.Disable()
	if err := j.Append(&Record{Type: recordCell, Key: "k2", Err: "y"}); err != nil {
		t.Fatal(err)
	}

	records, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("journal unparseable after masked torn write: %v", err)
	}
	if len(records) != 3 || records[1].Key != "k1" || records[2].Key != "k2" {
		t.Fatalf("records = %+v", records)
	}
	// Byte-level check: no torn fragment survived anywhere in the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, tail, err := parseJournalStrict(data); err != nil || tail != len(data) {
		t.Fatalf("journal bytes not a clean record sequence (valid %d of %d): %v", tail, len(data), err)
	}
}

// parseJournalStrict is parseJournal without torn-tail forgiveness, for
// asserting a file is a clean sequence of complete records.
func parseJournalStrict(data []byte) ([]Record, int, error) {
	records, valid, err := parseJournal(data)
	if err != nil {
		return nil, valid, err
	}
	if valid != len(data) {
		return records, valid, errors.New("trailing torn bytes")
	}
	return records, valid, nil
}

// When every attempt fails, Append surfaces the injected error and the
// file still ends at the last acknowledged record.
func TestJournalAppendExhaustedRetriesLeaveCleanTail(t *testing.T) {
	fastRetry(t)
	path := filepath.Join(t.TempDir(), "SWEEP_dead.jsonl")
	spec := &Spec{Datasets: []string{"nethept-s"}, Models: []string{"ic"},
		CostSettings: []string{"uniform"}, Algos: []string{"addatp"}}
	spec.SetDefaults()
	j, err := CreateJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	withInjector(t, fault.New(1, fault.Rule{Site: fault.SiteJournalAppend, Mode: fault.ModeTorn, Every: 1}))
	err = j.Append(&Record{Type: recordCell, Key: "k1", Err: "x"})
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Fatalf("append under persistent fault = %v, want injected error", err)
	}
	fault.Disable()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatalf("failed append left %d bytes (want the original %d): %q", len(after), len(before), after)
	}
	// The journal remains usable after the fault clears.
	if err := j.Append(&Record{Type: recordCell, Key: "k2", Err: "y"}); err != nil {
		t.Fatal(err)
	}
	records, err := ReadJournal(path)
	if err != nil || len(records) != 2 || records[1].Key != "k2" {
		t.Fatalf("post-recovery journal = %+v, %v", records, err)
	}
}
