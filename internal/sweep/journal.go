package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/fault"
)

// The journal is the sweep's crash-safety mechanism: an append-only JSONL
// file (SWEEP_*.jsonl) with one self-contained record per line — a spec
// record first, then one cell record per completed (or failed) cell,
// flushed and fsynced after every cell. A crash or SIGINT therefore loses
// at most the cell that was in flight; `repro sweep --resume` reads the
// journal back, skips the cells that already carry a result row, and
// appends the rest to the same file. A truncated final line (the
// in-flight record of a crash) is detected and ignored on read.

// JournalVersion is the journal format version stamped into spec records.
const JournalVersion = 1

// Record is one journal line. Type "spec" carries the grid definition
// (first line of every journal); type "cell" carries one cell's outcome:
// either a result Row or an error string, plus the wall time the cell
// took (volatile — stripped by Canonical).
type Record struct {
	Type      string `json:"type"`
	Version   int    `json:"version,omitempty"`
	Spec      *Spec  `json:"spec,omitempty"`
	Key       string `json:"key,omitempty"`
	Row       *Row   `json:"row,omitempty"`
	Err       string `json:"err,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
}

const (
	recordSpec = "spec"
	recordCell = "cell"
)

// Journal appends records to a JSONL file, one fsynced line per record.
// It tracks the byte offset of the last acknowledged record so a failed
// append — including a torn write that persisted a prefix of the line —
// can be rolled back with a truncate and retried on a clean boundary.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	off int64 // end of the last durable record
}

// appendRetry bounds the retry loop absorbing transient append failures
// (stalled fsync, injected faults). A var so tests can shrink the
// backoff.
var appendRetry = fault.WritePolicy

// OpenJournal opens path for appending, creating it if needed.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, off: st.Size()}, nil
}

// Append writes one record as a JSON line and forces it to disk before
// returning, so every acknowledged record survives a crash. Transient
// write failures are retried with backoff; before each retry the file is
// truncated back to the last acknowledged record, so a torn write can
// never merge with the next line into one corrupt record.
func (j *Journal) Append(rec *Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	return appendRetry.Retry(func() error {
		if err := j.writeDurable(data); err != nil {
			// Roll partial bytes back to the last good boundary. The seek
			// matters for non-O_APPEND descriptors (CreateJournal's): a
			// truncate alone leaves the write position past the cut, and
			// the next write would punch a hole of zero bytes.
			if terr := j.f.Truncate(j.off); terr != nil {
				return fmt.Errorf("%w (and rollback truncate failed: %v)", err, terr)
			}
			if _, serr := j.f.Seek(j.off, 0); serr != nil {
				return fmt.Errorf("%w (and rollback seek failed: %v)", err, serr)
			}
			return err
		}
		return nil
	})
}

func (j *Journal) writeDurable(data []byte) error {
	if _, err := fault.Write(fault.SiteJournalAppend, j.f, data); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.off += int64(len(data))
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	return j.f.Close()
}

// ReadJournal parses a journal file. A torn tail — the partially written
// record of a crash — is dropped silently (that cell simply reruns on
// resume); a malformed line anywhere else is an error, since it means
// the file is not an append-only journal.
func ReadJournal(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseJournal(data)
}

// ParseJournal is ReadJournal for bytes already in memory (report's
// journal sniffing reads the file once and parses what it holds).
func ParseJournal(data []byte) ([]Record, error) {
	records, _, err := parseJournal(data)
	return records, err
}

// parseJournal parses journal bytes and returns the records plus the
// byte offset of the end of the last complete record. A record is
// complete only if its line is newline-terminated and parses; anything
// after `valid` is a torn write (crash artifact) that Resume truncates
// away before appending — without the truncation, the first record
// appended after a crash would merge with the torn fragment into one
// corrupt line.
func parseJournal(data []byte) (records []Record, valid int, err error) {
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			// Unterminated tail: torn write, drop it.
			return records, valid, nil
		}
		line := bytes.TrimSpace(data[valid : valid+nl])
		if len(line) > 0 {
			var rec Record
			if jsonErr := json.Unmarshal(line, &rec); jsonErr != nil {
				if len(bytes.TrimSpace(data[valid+nl+1:])) == 0 {
					// Malformed final line: also a crash artifact.
					return records, valid, nil
				}
				return nil, 0, fmt.Errorf("sweep: journal at byte %d: %w", valid, jsonErr)
			}
			records = append(records, rec)
		}
		valid += nl + 1
	}
	return records, valid, nil
}

// JournalSpec returns the spec record's grid, or an error if the journal
// has none (not a sweep journal, or truncated before the first fsync).
func JournalSpec(records []Record) (*Spec, error) {
	for i := range records {
		if records[i].Type == recordSpec {
			if records[i].Spec == nil {
				return nil, fmt.Errorf("sweep: journal spec record carries no spec")
			}
			return records[i].Spec, nil
		}
	}
	return nil, fmt.Errorf("sweep: journal has no spec record")
}

// CompletedCells returns the keys of cells that carry a result row. Cells
// recorded with an error are not included — a resume retries them.
func CompletedCells(records []Record) map[string]bool {
	done := make(map[string]bool)
	for i := range records {
		if records[i].Type == recordCell && records[i].Row != nil {
			done[records[i].Key] = true
		}
	}
	return done
}

// CellRecords returns the latest record of every cell, ordered by the
// spec's grid order (unknown keys last, alphabetically) — the record set
// a resume semantically ends up with, independent of the completion
// order the journal happens to list.
func CellRecords(records []Record) ([]Record, error) {
	spec, err := JournalSpec(records)
	if err != nil {
		return nil, err
	}
	latest := make(map[string]Record)
	for i := range records {
		if records[i].Type == recordCell {
			latest[records[i].Key] = records[i]
		}
	}
	keys := make([]string, 0, len(latest))
	for k := range latest {
		keys = append(keys, k)
	}
	rank := make(map[string]int)
	for i, c := range spec.Cells() {
		rank[c.Key()] = i
	}
	sort.Slice(keys, func(i, j int) bool {
		ri, iok := rank[keys[i]]
		rj, jok := rank[keys[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return keys[i] < keys[j]
		}
	})
	out := make([]Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, latest[k])
	}
	return out, nil
}

// Canonical renders records as the canonical journal bytes: the spec
// record, then the latest record of every cell in grid order, with the
// volatile wall-clock fields (record ElapsedMS; row WallMS / SetupMS /
// SamplingMS / RRPerSec) zeroed. Everything else in a Row is a
// deterministic function of the spec, so two sweeps of the same spec —
// regardless of scheduling, interruption, crash, or resume — canonicalize
// to identical bytes. The crash-recovery test asserts exactly that.
func Canonical(records []Record) ([]byte, error) {
	spec, err := JournalSpec(records)
	if err != nil {
		return nil, err
	}
	cells, err := CellRecords(records)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(&Record{Type: recordSpec, Version: JournalVersion, Spec: spec}); err != nil {
		return nil, err
	}
	for _, rec := range cells {
		rec.ElapsedMS = 0
		if rec.Row != nil {
			row := *rec.Row
			row.stripVolatile()
			rec.Row = &row
		}
		if err := enc.Encode(&rec); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}
