package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// runToJournal executes the spec into a fresh journal at path and
// returns the raw journal bytes.
func runToJournal(t *testing.T, spec *Spec, path string) []byte {
	t.Helper()
	j, err := CreateJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, Options{Journal: j}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func canonicalBytes(t *testing.T, path string) []byte {
	t.Helper()
	records, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Canonical(records)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCrashRecoveryGolden is the journal's crash-safety contract, end to
// end: run a small nethept-s IC+LT sweep to completion, then simulate a
// crash by truncating the journal mid-cell-record (the exact artifact of
// dying inside a write), resume, and require the recovered journal to
// canonicalize to the byte-identical document of the uninterrupted run.
func TestCrashRecoveryGolden(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "SWEEP_full.jsonl")
	spec := tinySpec()
	fullBytes := runToJournal(t, spec, full)
	wantCanonical := canonicalBytes(t, full)

	// Cut the journal after the first cell record, leaving half of the
	// second record's line — a crash mid-write. (The spec line and at
	// least two cell lines must exist for the cut to land mid-cell.)
	lines := bytes.SplitAfter(fullBytes, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	var truncated []byte
	truncated = append(truncated, lines[0]...)                   // spec record
	truncated = append(truncated, lines[1]...)                   // first completed cell
	truncated = append(truncated, lines[2][:len(lines[2])/2]...) // torn write
	crashed := filepath.Join(dir, "SWEEP_crashed.jsonl")
	if err := os.WriteFile(crashed, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: the torn record is dropped, its cell (and the never-started
	// ones) rerun, the completed cell is skipped.
	j, jspec, skip, err := Resume(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if len(skip) != 1 {
		t.Fatalf("resume skips %d cells, want 1 (the completed record)", len(skip))
	}
	res, err := Run(context.Background(), jspec, Options{Journal: j, Skip: skip})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 || len(res.Rows) != len(spec.Cells())-1 {
		t.Fatalf("resume ran %d rows (skipped %d), want %d (skipped 1)",
			len(res.Rows), res.Skipped, len(spec.Cells())-1)
	}

	gotCanonical := canonicalBytes(t, crashed)
	if !bytes.Equal(gotCanonical, wantCanonical) {
		t.Fatalf("resumed journal diverges from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
			wantCanonical, gotCanonical)
	}
}

// TestResumeAfterSIGINTStyleCancel covers the checkpoint path: a context
// cancelled mid-sweep stops cleanly, the journal holds the completed
// prefix, and a resume finishes the grid to the same canonical bytes.
func TestResumeAfterSIGINTStyleCancel(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()

	full := filepath.Join(dir, "SWEEP_full.jsonl")
	runToJournal(t, spec, full)
	wantCanonical := canonicalBytes(t, full)

	interrupted := filepath.Join(dir, "SWEEP_int.jsonl")
	j, err := CreateJournal(interrupted, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel before Run even starts: nothing executes, Interrupted is
	// reported, and the journal stays a valid (empty) checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, spec, Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run not reported as interrupted")
	}
	if len(res.Rows) != 0 {
		t.Fatalf("cancelled run completed %d cells, want 0", len(res.Rows))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, jspec, skip, err := Resume(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), jspec, Options{Journal: j2, Skip: skip}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := canonicalBytes(t, interrupted); !bytes.Equal(got, wantCanonical) {
		t.Fatalf("post-interrupt resume diverges:\n%s\nvs\n%s", got, wantCanonical)
	}
}
