package sweep

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// tinySpec is a fast real grid: nethept-s clamps to 64 nodes at this
// scale, so IMM, sampling, and the realizations all run in milliseconds.
func tinySpec() *Spec {
	s := &Spec{
		Datasets:     []string{"nethept-s"},
		Models:       []string{"ic", "lt"},
		CostSettings: []string{"uniform"},
		Algos:        []string{"all-targets", "nsg"},
		Scale:        0.004,
		K:            5,
		Reps:         2,
		Seed:         7,
		NSGTheta:     2000,
		ADGTheta:     1000,
	}
	s.SetDefaults()
	return s
}

func TestSpecCellsOrderAndKeys(t *testing.T) {
	s := tinySpec()
	cells := s.Cells()
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	wantKeys := []string{
		"nethept-s/ic/uniform/all-targets",
		"nethept-s/ic/uniform/nsg",
		"nethept-s/lt/uniform/all-targets",
		"nethept-s/lt/uniform/nsg",
	}
	for i, c := range cells {
		if c.Key() != wantKeys[i] {
			t.Fatalf("cell %d key %q, want %q", i, c.Key(), wantKeys[i])
		}
	}
	if cells[0].GroupKey() != cells[1].GroupKey() {
		t.Fatal("same-group cells have different group keys")
	}
	if cells[1].GroupKey() == cells[2].GroupKey() {
		t.Fatal("different models share a group key")
	}
}

func TestSpecValidateRejectsUnknownAxes(t *testing.T) {
	for _, mutate := range []func(*Spec){
		func(s *Spec) { s.Datasets = []string{"no-such-dataset"} },
		func(s *Spec) { s.Models = []string{"sir"} },
		func(s *Spec) { s.CostSettings = []string{"free"} },
		func(s *Spec) { s.Algos = []string{"bogosort"} },
		func(s *Spec) { s.Sampler = "psychic" },
	} {
		s := tinySpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("invalid spec %+v passed validation", s)
		}
	}
	if err := tinySpec().Validate(); err != nil {
		t.Fatalf("tiny spec invalid: %v", err)
	}
}

func TestJournalToleratesTruncatedTail(t *testing.T) {
	good := `{"type":"spec","version":1,"spec":{"datasets":["nethept-s"],"models":["ic"],"cost_settings":["uniform"],"algos":["nsg"],"scale":0.004,"k":5,"reps":1,"seed":7,"zeta":0.05,"eps":0.2,"delta":0.1,"adg_theta":1000,"nsg_theta":2000,"imm_eps":0.5,"sampler":"seq"}}
{"type":"cell","key":"nethept-s/ic/uniform/nsg","row":{"algo":"nsg"}}
`
	recs, valid, err := parseJournal([]byte(good + `{"type":"cell","key":"part`))
	if err != nil {
		t.Fatalf("truncated tail rejected: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (truncated tail dropped)", len(recs))
	}
	if valid != len(good) {
		t.Fatalf("valid offset %d, want %d (end of last complete record)", valid, len(good))
	}
	if _, _, err := parseJournal([]byte(`{"type":"cell","key":"part` + "\n" + good)); err == nil {
		t.Fatal("malformed non-tail line accepted")
	}
	done := CompletedCells(recs)
	if !done["nethept-s/ic/uniform/nsg"] || len(done) != 1 {
		t.Fatalf("completed cells = %v", done)
	}
}

func TestRunGridOrderSkipAndJournal(t *testing.T) {
	spec := tinySpec()
	path := filepath.Join(t.TempDir(), "SWEEP_t.jsonl")
	j, err := CreateJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	skip := map[string]bool{"nethept-s/ic/uniform/nsg": true}
	res, err := Run(context.Background(), spec, Options{Journal: j, Skip: skip})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Fatalf("skipped %d cells, want 1", res.Skipped)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", res.Errors)
	}
	wantKeys := []string{
		"nethept-s/ic/uniform/all-targets",
		"nethept-s/lt/uniform/all-targets",
		"nethept-s/lt/uniform/nsg",
	}
	if len(res.Rows) != len(wantKeys) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(wantKeys))
	}
	for i, row := range res.Rows {
		key := fmt.Sprintf("%s/%s/%s/%s", row.Dataset, strings.ToLower(row.Model), row.CostSetting, row.Algo)
		if key != wantKeys[i] {
			t.Fatalf("row %d is %s, want %s", i, key, wantKeys[i])
		}
	}
	records, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JournalSpec(records); err != nil {
		t.Fatal(err)
	}
	done := CompletedCells(records)
	for _, k := range wantKeys {
		if !done[k] {
			t.Fatalf("journal missing completed cell %s (have %v)", k, done)
		}
	}
	if done["nethept-s/ic/uniform/nsg"] {
		t.Fatal("skipped cell was journaled")
	}
}

// TestRunParallelMatchesSerial: scheduling must not leak into results —
// a 4-worker sweep canonicalizes to the same bytes as a sequential one.
func TestRunParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	canonical := func(parallel int) []byte {
		spec := tinySpec()
		spec.Parallel = parallel
		path := filepath.Join(dir, fmt.Sprintf("SWEEP_p%d.jsonl", parallel))
		j, err := CreateJournal(path, spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), spec, Options{Journal: j}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		records, err := ReadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := Canonical(records)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := canonical(1)
	parallel := canonical(4)
	// The spec records differ in the Parallel field by construction;
	// compare cell records only.
	trim := func(b []byte) string {
		lines := strings.SplitN(string(b), "\n", 2)
		if len(lines) < 2 {
			t.Fatal("canonical journal too short")
		}
		return lines[1]
	}
	if trim(serial) != trim(parallel) {
		t.Fatalf("parallel sweep diverged from serial:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestExecuteInterrupt(t *testing.T) {
	spec := tinySpec()
	p, err := Prepare(spec, "nethept-s", "ic", "uniform")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("budget exceeded")
	calls := 0
	_, err = Execute(spec, p, Cell{Dataset: "nethept-s", Model: "ic", Cost: "uniform", Algo: "nsg"},
		func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("interrupt error not propagated: %v", err)
	}
	if calls != 1 {
		t.Fatalf("interrupt polled %d times before abort, want 1", calls)
	}
}
