package sweep

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
)

func TestParseChurn(t *testing.T) {
	for _, tc := range []struct {
		in    string
		frac  float64
		every int
	}{
		{"none", 0, 0},
		{"NONE", 0, 0},
		{"", 0, 0},
		{"1@2", 0.01, 2},
		{"0.5@1", 0.005, 1},
		{"100@10", 1, 10},
	} {
		frac, every, err := ParseChurn(tc.in)
		if err != nil || frac != tc.frac || every != tc.every {
			t.Fatalf("ParseChurn(%q) = (%g, %d, %v), want (%g, %d, nil)",
				tc.in, frac, every, err, tc.frac, tc.every)
		}
	}
	for _, bad := range []string{"1", "@2", "1@", "0@2", "101@2", "1@0", "1@-3", "x@2", "1@x", "2@1@1"} {
		if _, _, err := ParseChurn(bad); err == nil {
			t.Fatalf("ParseChurn(%q) accepted", bad)
		}
	}
}

func TestSpecValidateRejectsBadChurn(t *testing.T) {
	s := tinySpec()
	s.Churns = []string{"none", "200@1"}
	if err := s.Validate(); err == nil {
		t.Fatal("invalid churn schedule passed validation")
	}
}

// TestSweepChurnGrid runs a grid with a temporal axis: churn cells get
// distinct journal keys (static keys unchanged), report their mutation
// counts, resume skips them like any other cell, and the whole journal is
// deterministic across reruns.
func TestSweepChurnGrid(t *testing.T) {
	newSpec := func() *Spec {
		s := tinySpec()
		s.Models = []string{"ic"}
		s.Algos = []string{"all-targets", "addatp"}
		s.Churns = []string{"none", "2@1"}
		return s
	}

	runOnce := func(name string) ([]Record, []byte) {
		spec := newSpec()
		path := filepath.Join(t.TempDir(), name)
		j, err := CreateJournal(path, spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), spec, Options{Journal: j})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if len(res.Errors) != 0 {
			t.Fatalf("cell errors: %v", res.Errors)
		}
		if len(res.Rows) != 4 {
			t.Fatalf("got %d rows, want 4", len(res.Rows))
		}
		for _, row := range res.Rows {
			switch row.Churn {
			case "":
				if row.Mutations != 0 {
					t.Fatalf("static %s row reports %d mutations", row.Algo, row.Mutations)
				}
			case "2@1":
				if row.Mutations == 0 {
					t.Fatalf("churn %s row applied no deltas", row.Algo)
				}
			default:
				t.Fatalf("unexpected row churn %q", row.Churn)
			}
		}
		records, err := ReadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := Canonical(records)
		if err != nil {
			t.Fatal(err)
		}
		return records, data
	}

	records, first := runOnce("SWEEP_churn1.jsonl")
	_, second := runOnce("SWEEP_churn2.jsonl")
	if !bytes.Equal(first, second) {
		t.Fatalf("churn sweep not deterministic:\n%s\nvs\n%s", first, second)
	}

	// Key shape: static cells keep the historical four-segment key,
	// temporal cells append the schedule.
	done := CompletedCells(records)
	for _, want := range []string{
		"nethept-s/ic/uniform/all-targets",
		"nethept-s/ic/uniform/all-targets/churn=2@1",
		"nethept-s/ic/uniform/addatp",
		"nethept-s/ic/uniform/addatp/churn=2@1",
	} {
		if !done[want] {
			t.Fatalf("journal missing cell %s (have %v)", want, done)
		}
	}

	// Resume semantics: every completed cell — churn cells included — is
	// skipped, so a finished journal resumes to a no-op.
	spec := newSpec()
	res, err := Run(context.Background(), spec, Options{Skip: done})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 4 || len(res.Rows) != 0 {
		t.Fatalf("resume reran cells: skipped %d, rows %d", res.Skipped, len(res.Rows))
	}
}
