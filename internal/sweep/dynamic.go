package sweep

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/rng"
)

// Temporal (churn) cells run the same experiment as static cells but
// mutate the topology mid-campaign: every `every` observed rounds the
// session applies a gen.ChurnDeltas edit (delete frac·M edges, insert as
// many fresh ones), invalidates only the RR sets touching a changed
// node, and continues on the new graph. The realized world is re-sampled
// on the mutated graph with the residual view kept in lockstep, so the
// environment never reports an edge the graph no longer has.
//
// Determinism: every RNG below is a pure function of (spec seed, rep,
// round), never of wall clock or scheduling — churn cells are as
// journal-stable as static ones.

// churnSeed derives the delta-generation stream for one (rep, round).
func churnSeed(seed uint64, rep, round int) uint64 {
	return seed ^ (0x9E3779B97F4A7C15 * (uint64(rep)*1_000_003 + uint64(round)))
}

// churnWorldSeed derives the post-delta world re-sampling stream; a
// different mixing constant keeps it disjoint from churnSeed.
func churnWorldSeed(seed uint64, rep, round int) uint64 {
	return seed ^ (0xBF58476D1CE4E5B9 * (uint64(rep)*1_000_003 + uint64(round)))
}

// runChurn is the temporal-cell counterpart of adaptive.RunExperiment:
// it drives each realization's session round by round, churning the
// topology on schedule, and aggregates the runs into the same Report.
// The second return is the total number of deltas applied across all
// realizations.
func runChurn(spec *Spec, p *Prepared, cell Cell, frac float64, every int, opts adaptive.RunOptions) (*adaptive.Report, int, error) {
	seed := spec.Seed + 100
	root := rng.New(seed)
	rep := &adaptive.Report{Algorithm: cell.Algo, Realizations: spec.Reps}
	mutations := 0
	for i := 0; i < spec.Reps; i++ {
		if opts.Interrupt != nil {
			if err := opts.Interrupt(); err != nil {
				return nil, 0, fmt.Errorf("realization %d/%d: %w", i, spec.Reps, err)
			}
		}
		// Same stream discipline as the static path: world first, then
		// algorithm, both split off the shared root.
		worldRNG := root.Split()
		algoRNG := root.Split()
		env := adaptive.NewEnvironment(cascade.Sample(p.Inst.G, p.Inst.Model, worldRNG))
		sess, err := adaptive.NewSession(p.Inst, cell.Algo, opts, algoRNG)
		if err != nil {
			return nil, 0, err
		}
		round := 0
		for {
			u, stop, err := sess.NextSeed()
			if err != nil {
				return nil, 0, fmt.Errorf("realization %d round %d: %w", i, round, err)
			}
			if stop {
				break
			}
			if err := sess.Observe(env.Observe(u)); err != nil {
				return nil, 0, fmt.Errorf("realization %d round %d: %w", i, round, err)
			}
			round++
			if round%every != 0 {
				continue
			}
			ins, dels := gen.ChurnDeltas(sess.Instance().G, frac, rng.New(churnSeed(seed, i, round)))
			if len(ins) == 0 && len(dels) == 0 {
				continue
			}
			if _, err := sess.Mutate(ins, dels); err != nil {
				return nil, 0, fmt.Errorf("realization %d round %d: mutate: %w", i, round, err)
			}
			mutations++
			rz := cascade.Sample(sess.Instance().G, p.Inst.Model, rng.New(churnWorldSeed(seed, i, round)))
			env = adaptive.NewEnvironmentAt(rz, sess.CloneResidual(), sess.Spread())
		}
		rep.Add(sess.Result())
	}
	rep.Finalize()
	return rep, mutations, nil
}
