package sweep

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Options configures one sweep execution.
type Options struct {
	// Journal, when non-nil, receives one fsynced record per completed or
	// failed cell (crash safety). The spec record is written by
	// CreateJournal, not Run.
	Journal *Journal
	// Skip lists cell keys that already have results (from a previous
	// journal) and must not rerun — the resume path.
	Skip map[string]bool
	// Log receives one progress line per group preparation and cell
	// completion; nil discards them.
	Log io.Writer
}

// Result aggregates one Run invocation. Rows and Errors are in grid
// order regardless of the scheduling that produced them.
type Result struct {
	Rows        []*Row
	Errors      []string
	Skipped     int  // cells skipped via Options.Skip
	Interrupted bool // context was cancelled before the grid finished
	WallMS      int64
}

// group is the shared-preparation unit: all cells of one
// (dataset, model, cost) triple reuse one Prepared instance. The first
// worker to reach any cell of the group prepares it; group-mates wait on
// the Once.
type group struct {
	cell Cell // algo field unused
	once sync.Once
	p    *Prepared
	err  error
}

func (g *group) prepare(spec *Spec, log io.Writer) (*Prepared, error) {
	g.once.Do(func() {
		logf(log, "sweep: preparing %s/%s/%s...\n", g.cell.Dataset, g.cell.Model, g.cell.Cost)
		g.p, g.err = Prepare(spec, g.cell.Dataset, g.cell.Model, g.cell.Cost)
	})
	return g.p, g.err
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// Run executes the spec's grid: a pool of spec.Parallel workers pulls
// cells in grid order, the first cell of each (dataset, model, cost)
// group prepares the shared instance, and every cell outcome is appended
// to the journal (fsynced) the moment it completes. Cancelling ctx stops
// the sweep at the next cell boundary — and, via the per-realization
// interrupt hook, mid-cell — leaving the journal as a clean checkpoint;
// Run then returns with Interrupted set and no error.
//
// Cell results are a deterministic function of the spec alone: every cell
// derives its RNG streams from spec.Seed, never from scheduling. Journal
// record order is completion order; Canonical restores grid order.
func Run(ctx context.Context, spec *Spec, opts Options) (*Result, error) {
	spec.SetDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	cells := spec.Cells()

	groups := make(map[string]*group)
	type job struct {
		cell Cell
		g    *group
	}
	var jobs []job
	res := &Result{}
	for _, c := range cells {
		if opts.Skip[c.Key()] {
			res.Skipped++
			continue
		}
		gk := c.GroupKey()
		g, ok := groups[gk]
		if !ok {
			g = &group{cell: c}
			groups[gk] = g
		}
		jobs = append(jobs, job{cell: c, g: g})
	}

	workers := spec.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	type outcome struct {
		row *Row
		err error
	}
	outcomes := make(map[string]outcome, len(jobs))
	var mu sync.Mutex // guards outcomes, journal appends, and journalErr
	var journalErr error

	finish := func(c Cell, row *Row, cellErr error, elapsed time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		outcomes[c.Key()] = outcome{row: row, err: cellErr}
		if opts.Journal != nil && journalErr == nil {
			rec := &Record{Type: recordCell, Key: c.Key(), Row: row, ElapsedMS: elapsed.Milliseconds()}
			if cellErr != nil {
				rec.Err = cellErr.Error()
			}
			journalErr = opts.Journal.Append(rec)
		}
	}
	aborted := func() bool {
		if ctx.Err() != nil {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		return journalErr != nil
	}

	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobCh {
				if aborted() {
					continue // drain without starting new cells
				}
				p, err := jb.g.prepare(spec, opts.Log)
				if err != nil {
					finish(jb.cell, nil, fmt.Errorf("prepare: %w", err), 0)
					continue
				}
				var deadline time.Time
				if spec.CellBudgetMS > 0 {
					deadline = time.Now().Add(time.Duration(spec.CellBudgetMS) * time.Millisecond)
				}
				interrupt := func() error {
					if err := ctx.Err(); err != nil {
						return err
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						return fmt.Errorf("cell budget %dms exceeded", spec.CellBudgetMS)
					}
					return nil
				}
				logf(opts.Log, "sweep: %s...\n", jb.cell.Key())
				cellStart := time.Now()
				row, err := Execute(spec, p, jb.cell, interrupt)
				finish(jb.cell, row, err, time.Since(cellStart))
			}
		}()
	}
	for _, jb := range jobs {
		jobCh <- jb
	}
	close(jobCh)
	wg.Wait()

	if journalErr != nil {
		return nil, fmt.Errorf("sweep: journal write failed: %w", journalErr)
	}
	// Assemble in grid order; cells that never started (cancellation)
	// appear in neither Rows nor Errors.
	for _, c := range cells {
		o, ok := outcomes[c.Key()]
		switch {
		case !ok:
			continue
		case o.err != nil:
			res.Errors = append(res.Errors, fmt.Sprintf("%s: %v", c.Key(), o.err))
		default:
			res.Rows = append(res.Rows, o.row)
		}
	}
	res.Interrupted = ctx.Err() != nil
	res.WallMS = time.Since(start).Milliseconds()
	return res, nil
}

// CreateJournal creates a fresh journal at path — refusing to touch an
// existing file, so a forgotten --resume cannot silently mix two sweeps —
// and writes the spec record as its first line.
func CreateJournal(path string, spec *Spec) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f}
	if err := j.Append(&Record{Type: recordSpec, Version: JournalVersion, Spec: spec}); err != nil {
		j.Close()
		return nil, err
	}
	return j, nil
}

// Resume reads an existing journal, truncates any torn tail record (the
// crash artifact of dying mid-write) so appended records start on a
// fresh line, and reopens the file for appending. It returns the
// recorded spec and the completed cell keys to skip. Failed or
// torn-record cells are not in the skip set, so they rerun.
func Resume(path string) (*Journal, *Spec, map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	records, valid, err := parseJournal(data)
	if err != nil {
		return nil, nil, nil, err
	}
	spec, err := JournalSpec(records)
	if err != nil {
		return nil, nil, nil, err
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, nil, nil, fmt.Errorf("sweep: repairing torn journal tail: %w", err)
		}
	}
	j, err := OpenJournal(path)
	if err != nil {
		return nil, nil, nil, err
	}
	return j, spec, CompletedCells(records), nil
}
