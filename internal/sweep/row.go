package sweep

import (
	"time"

	"repro/internal/adaptive"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
)

// Row is the result of one completed cell — the JSON row `repro run`
// emits, `repro bench` collects into BENCH_*.json, and the sweep journal
// records per cell. All fields except the wall-clock ones (WallMS,
// SetupMS, SamplingMS, RRPerSec) are deterministic for a fixed spec.
type Row struct {
	Algo        string  `json:"algo"`
	Dataset     string  `json:"dataset"`
	Scale       float64 `json:"scale"`
	Model       string  `json:"model"`
	CostSetting string  `json:"cost_setting"`
	N           int     `json:"n"`
	M           int64   `json:"m"`
	K           int     `json:"k"`
	Targets     int     `json:"targets"`
	Budget      float64 `json:"budget"`

	Realizations int     `json:"realizations"`
	AvgProfit    float64 `json:"profit"`
	AvgSpread    float64 `json:"spread"`
	AvgCost      float64 `json:"cost"`
	AvgRounds    float64 `json:"rounds"`
	MinProfit    float64 `json:"min_profit"`
	MaxProfit    float64 `json:"max_profit"`

	RRDrawn     int64 `json:"rr_drawn"`
	RRRequested int64 `json:"rr_requested"`
	// RRReused counts draws avoided by cross-round RR-set reuse (validity
	// filtering); RRPeakBytes is the largest RR-collection footprint any
	// realization reached. Both are deterministic for a fixed seed.
	RRReused    int64 `json:"rr_reused"`
	RRPeakBytes int64 `json:"rr_peak_bytes"`
	// SamplingMS is the wall time spent inside RR generation across all
	// realizations; RRPerSec = RRDrawn / that time is the sampling
	// throughput, the number BENCH files track across PRs.
	SamplingMS int64   `json:"sampling_ms"`
	RRPerSec   float64 `json:"rr_per_sec"`
	// RRVisits / RREdgeTouches are the sampler's exact work counters
	// (node visits and in-edge examinations across all realizations);
	// together they give the bytes-per-edge-touch traffic model:
	// (4·touches + 17·visits) / touches. Deterministic for a fixed seed;
	// zero for exact-oracle and one-shot nonadaptive cells.
	RRVisits      int64 `json:"rr_visits"`
	RREdgeTouches int64 `json:"rr_edge_touches"`
	Fallbacks     int   `json:"fallbacks"`
	// Stopping-rule telemetry (sampling policies only): which controller
	// ran, how many certification looks it took, how many RR batches were
	// actually drawn, and how many rounds certified below the sampling
	// frontier instead of falling back to the point estimate.
	Sampler        string `json:"sampler,omitempty"`
	Attempts       int    `json:"attempts"`
	RRBatches      int    `json:"rr_batches"`
	CertifiedEarly int    `json:"certified_early"`

	ImmTheta          int   `json:"imm_theta"`
	ImmThetaRequested int   `json:"imm_theta_requested"`
	ImmTotalRR        int64 `json:"imm_total_rr"`
	ImmPeakRRBytes    int64 `json:"imm_peak_rr_bytes"`

	// Churn is the temporal-workload schedule ("p@k") of a dynamic cell;
	// Mutations counts the topology deltas applied across all its
	// realizations. Both omitted for static cells.
	Churn     string `json:"churn,omitempty"`
	Mutations int    `json:"mutations,omitempty"`

	Seed    uint64 `json:"seed"`
	SetupMS int64  `json:"setup_ms"` // dataset gen + IMM + cost calibration (shared across a group)
	WallMS  int64  `json:"wall_ms"`  // algorithm execution only

	// Seeds holds each realization's seeded nodes in seeding order, only
	// when Spec.EmitSeeds asked for them (omitted from golden BENCH/SWEEP
	// output otherwise).
	Seeds [][]graph.NodeID `json:"seeds,omitempty"`
}

// stripVolatile zeroes the machine- and schedule-dependent timing fields,
// leaving only the seed-deterministic payload. Canonical journal
// comparisons (crash-recovery test, resume-vs-uninterrupted) go through
// this.
func (r *Row) stripVolatile() {
	r.SamplingMS = 0
	r.RRPerSec = 0
	r.SetupMS = 0
	r.WallMS = 0
}

// Prepared is the algorithm-independent part of a group: the
// materialized graph plus IMM targets and calibrated costs. One Prepared
// is shared by every algorithm cell of its (dataset, model, cost) group.
type Prepared struct {
	G       *graph.Graph
	DS      gen.DatasetSpec
	Inst    *adaptive.Instance
	ImmRes  *imm.Result
	SetupMS int64
}

// Prepare materializes the dataset and builds the experiment instance
// (IMM targets + spread-calibrated costs) for one (dataset, model, cost
// setting) group.
func Prepare(spec *Spec, dataset, model, costSetting string) (*Prepared, error) {
	start := time.Now()
	ds, err := gen.Lookup(dataset)
	if err != nil {
		return nil, err
	}
	g, err := gen.Generate(ds.Config(spec.Scale))
	if err != nil {
		return nil, err
	}
	m, err := ParseModel(model)
	if err != nil {
		return nil, err
	}
	cs, err := ParseCostSetting(costSetting)
	if err != nil {
		return nil, err
	}
	inst, immRes, err := adaptive.Prepare(g, m, adaptive.Setup{
		K:           spec.K,
		CostSetting: cs,
		ImmEps:      spec.ImmEps,
		Seed:        spec.Seed,
		Workers:     spec.Workers,
		Sampler:     spec.Sampler,
	})
	if err != nil {
		return nil, err
	}
	return &Prepared{
		G: g, DS: ds, Inst: inst, ImmRes: immRes,
		SetupMS: time.Since(start).Milliseconds(),
	}, nil
}

// Execute runs one algorithm cell on a prepared group over spec.Reps
// realizations. interrupt, when non-nil, is polled between realizations
// and before every session round (budget/SIGINT checkpointing). Temporal
// cells (Cell.Churn != "none") run through the churn driver instead of
// adaptive.RunExperiment, mutating the topology on schedule.
func Execute(spec *Spec, p *Prepared, cell Cell, interrupt func() error) (*Row, error) {
	start := time.Now()
	cs, err := ParseCostSetting(cell.Cost)
	if err != nil {
		return nil, err
	}
	m, err := ParseModel(cell.Model)
	if err != nil {
		return nil, err
	}
	frac, every, err := ParseChurn(cell.Churn)
	if err != nil {
		return nil, err
	}
	opts := adaptive.RunOptions{
		Sampling: adaptive.SamplingOptions{
			Policy:  spec.Sampler,
			Zeta:    spec.Zeta,
			Eps:     spec.Eps,
			Delta:   spec.Delta,
			Workers: spec.Workers,
		},
		ADGTheta:  spec.ADGTheta,
		NSGTheta:  spec.NSGTheta,
		Interrupt: interrupt,
	}
	var rep *adaptive.Report
	var churn string
	var mutations int
	if every > 0 {
		churn = cell.Churn
		rep, mutations, err = runChurn(spec, p, cell, frac, every, opts)
	} else {
		rep, err = adaptive.RunExperiment(p.Inst, cell.Algo, spec.Reps, opts, spec.Seed+100)
	}
	if err != nil {
		return nil, err
	}
	var seeds [][]graph.NodeID
	if spec.EmitSeeds {
		seeds = make([][]graph.NodeID, len(rep.Runs))
		for i, run := range rep.Runs {
			seeds[i] = run.Seeds
		}
	}
	return &Row{
		Algo:              cell.Algo,
		Dataset:           p.DS.Name,
		Scale:             spec.Scale,
		Model:             m.String(),
		CostSetting:       cs.String(),
		N:                 p.G.N(),
		M:                 p.G.M(),
		K:                 spec.K,
		Targets:           len(p.Inst.Targets),
		Budget:            p.Inst.Costs.Total(p.Inst.Targets),
		Realizations:      rep.Realizations,
		AvgProfit:         rep.AvgProfit,
		AvgSpread:         rep.AvgSpread,
		AvgCost:           rep.AvgCost,
		AvgRounds:         rep.AvgRounds,
		MinProfit:         rep.MinProfit,
		MaxProfit:         rep.MaxProfit,
		RRDrawn:           rep.RRDrawn,
		RRRequested:       rep.RRRequested,
		RRReused:          rep.RRReused,
		RRPeakBytes:       rep.RRPeakBytes,
		SamplingMS:        rep.SamplingNS / 1e6,
		RRPerSec:          rrPerSec(rep.RRDrawn, rep.SamplingNS),
		RRVisits:          rep.RRVisits,
		RREdgeTouches:     rep.RREdgeTouches,
		Fallbacks:         rep.Fallbacks,
		Sampler:           rep.Sampler,
		Attempts:          rep.Attempts,
		RRBatches:         rep.RRBatches,
		CertifiedEarly:    rep.CertifiedEarly,
		Churn:             churn,
		Mutations:         mutations,
		ImmTheta:          p.ImmRes.Theta,
		ImmThetaRequested: p.ImmRes.ThetaRequested,
		ImmTotalRR:        p.ImmRes.TotalRR,
		ImmPeakRRBytes:    p.ImmRes.PeakRRBytes,
		Seed:              spec.Seed,
		SetupMS:           p.SetupMS,
		WallMS:            time.Since(start).Milliseconds(),
		Seeds:             seeds,
	}, nil
}

// rrPerSec converts drawn RR sets and sampling wall time into a
// throughput; zero when no time was recorded (exact-oracle runs).
func rrPerSec(drawn, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(drawn) / (float64(ns) / 1e9)
}
