// Package sweep is the resumable grid orchestrator behind `repro sweep`
// (and, as a single-model special case, `repro bench`): it executes the
// cross product of datasets × diffusion models × cost settings ×
// algorithms that conf_icde_Huang0XSL20's Table II experiments require,
// as a first-class fault-tolerant subsystem instead of a nested for-loop.
//
// Three properties make paper-scale sweeps practical:
//
//   - Shared preparation. All cells of one (dataset, model, cost) group
//     reuse one prepared instance — graph materialization, IMM target
//     selection, and cost calibration are the expensive,
//     algorithm-independent prefix of every cell.
//
//   - Concurrency with determinism. A pool of Spec.Parallel workers runs
//     independent cells concurrently; every cell derives its randomness
//     from Spec.Seed alone, so results are identical under any
//     scheduling, worker count, interruption, or resume. Canonical
//     normalizes the journal's completion order back to grid order.
//
//   - Crash safety. Every cell outcome is appended to a JSONL journal
//     (SWEEP_*.jsonl) and fsynced before the sweep moves on, so a crash
//     hours into a grid loses at most the in-flight cell. Resume skips
//     the recorded results and reruns the rest; per-cell wall-clock
//     budgets (checked between realizations) and SIGINT checkpointing
//     bound how much any one cell can hold the grid hostage.
package sweep
