package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/gen"
)

// Spec is a declarative sweep grid: the cross product of datasets ×
// models × cost settings × algorithms, plus the shared experiment
// parameters every cell runs with. It is the JSON document `repro sweep
// --spec` accepts and the journal's spec record, so a sweep is fully
// described by one value — Table II of the paper is exactly such a grid
// ({4 datasets} × {IC, LT} × {3 cost settings} × {4 algorithms}).
//
// Unlike the historical `repro bench` invocation, the diffusion model is
// a grid dimension, not a pinned parameter.
type Spec struct {
	Datasets     []string `json:"datasets"`
	Models       []string `json:"models"`
	CostSettings []string `json:"cost_settings"`
	Algos        []string `json:"algos"`

	// Churns is the temporal-workload axis: each entry is either "none"
	// (static graph, the historical behaviour) or "p@k" — churn p percent
	// of the edges (deletes plus matching inserts, gen.ChurnDeltas) every k
	// observed rounds, with RR invalidation and top-up instead of a
	// rebuild. Defaults to ["none"], which also keeps cell keys and
	// journals byte-compatible with pre-churn sweeps.
	Churns []string `json:"churns,omitempty"`

	Scale    float64 `json:"scale"`
	K        int     `json:"k"`
	Reps     int     `json:"reps"`
	Seed     uint64  `json:"seed"`
	Zeta     float64 `json:"zeta"`
	Eps      float64 `json:"eps"`
	Delta    float64 `json:"delta"`
	ADGTheta int     `json:"adg_theta"`
	NSGTheta int     `json:"nsg_theta"`
	ImmEps   float64 `json:"imm_eps"`
	Sampler  string  `json:"sampler"`

	// Workers is the per-cell parallelism (RR generation and greedy
	// selection); 0 means GOMAXPROCS. Parallel is the number of cells run
	// concurrently (worker-pool width); 0 or 1 runs cells one at a time.
	// Cell results are seed-deterministic either way — scheduling affects
	// only journal record order, which Canonical normalizes away.
	Workers  int `json:"workers,omitempty"`
	Parallel int `json:"parallel,omitempty"`

	// CellBudgetMS is the per-cell wall-clock budget in milliseconds;
	// 0 means unbounded. The budget is polled between realizations, before
	// every session round, and inside the RR draw loops every interrupt
	// stride (ris.SamplerPool.SetInterrupt), so a cell overruns by at most
	// a stride of RR draws even mid-batch; a cell that trips it is
	// journaled as failed and retried on resume.
	CellBudgetMS int64 `json:"cell_budget_ms,omitempty"`

	// EmitSeeds includes each realization's seeded nodes (in seeding
	// order) in the emitted rows. Off by default: seed lists are bulky and
	// the BENCH/SWEEP goldens don't carry them; `repro run --show-seeds`
	// and the serve smoke test's seed-equivalence diff turn it on.
	EmitSeeds bool `json:"emit_seeds,omitempty"`
}

// AllDatasets, AllModels, AllCostSettings name the full grid axes.
var (
	AllModels       = []string{"ic", "lt"}
	AllCostSettings = []string{"degree-proportional", "uniform", "random"}
)

// AllDatasets returns the Table II registry names in order.
func AllDatasets() []string {
	out := make([]string, len(gen.Datasets))
	for i, d := range gen.Datasets {
		out[i] = d.Name
	}
	return out
}

// SetDefaults fills exactly-zero fields with the defaults `repro run`
// uses, so a minimal spec document is runnable. Negative values are left
// alone for Validate to reject (a spec that says reps: -1 is a mistake,
// not a request for the default), and Seed is never touched — seed 0 is
// a legitimate seed.
func (s *Spec) SetDefaults() {
	if len(s.Datasets) == 0 {
		s.Datasets = []string{"nethept-s"}
	}
	if len(s.Models) == 0 {
		s.Models = []string{"ic"}
	}
	if len(s.CostSettings) == 0 {
		s.CostSettings = append([]string(nil), AllCostSettings...)
	}
	if len(s.Algos) == 0 {
		s.Algos = append([]string(nil), adaptive.Algorithms...)
	}
	if len(s.Churns) == 0 {
		s.Churns = []string{ChurnNone}
	}
	if s.Scale == 0 {
		s.Scale = 0.1
	}
	if s.K == 0 {
		s.K = 50
	}
	if s.Reps == 0 {
		s.Reps = 3
	}
	if s.Zeta == 0 {
		s.Zeta = 0.05
	}
	if s.Eps == 0 {
		s.Eps = 0.2
	}
	if s.Delta == 0 {
		s.Delta = 0.1
	}
	if s.ADGTheta == 0 {
		s.ADGTheta = 10_000
	}
	if s.NSGTheta == 0 {
		s.NSGTheta = 20_000
	}
	if s.ImmEps == 0 {
		s.ImmEps = 0.5
	}
	if s.Sampler == "" {
		s.Sampler = adaptive.PolicySequential
	}
}

// Validate rejects unknown axis values before any expensive preparation.
func (s *Spec) Validate() error {
	if len(s.Datasets) == 0 || len(s.Models) == 0 || len(s.CostSettings) == 0 || len(s.Algos) == 0 {
		return fmt.Errorf("sweep: empty grid axis (datasets/models/cost_settings/algos must be non-empty)")
	}
	for _, d := range s.Datasets {
		if _, err := gen.Lookup(d); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, m := range s.Models {
		if _, err := ParseModel(m); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, c := range s.CostSettings {
		if _, err := ParseCostSetting(c); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, a := range s.Algos {
		ok := false
		for _, known := range adaptive.Algorithms {
			if a == known {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("sweep: unknown algorithm %q (have %v)", a, adaptive.Algorithms)
		}
	}
	for _, ch := range s.Churns {
		if _, _, err := ParseChurn(ch); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	okSampler := false
	for _, p := range adaptive.SamplingPolicies {
		if s.Sampler == p {
			okSampler = true
			break
		}
	}
	if !okSampler {
		return fmt.Errorf("sweep: unknown sampler %q (have %v)", s.Sampler, adaptive.SamplingPolicies)
	}
	if s.Scale <= 0 {
		return fmt.Errorf("sweep: scale must be positive, got %g", s.Scale)
	}
	if s.Reps <= 0 {
		return fmt.Errorf("sweep: reps must be positive, got %d", s.Reps)
	}
	if s.K <= 0 {
		return fmt.Errorf("sweep: k must be positive, got %d", s.K)
	}
	if s.Zeta <= 0 || s.Eps <= 0 || s.Delta <= 0 || s.ImmEps <= 0 {
		return fmt.Errorf("sweep: zeta/eps/delta/imm_eps must be positive (got %g/%g/%g/%g)",
			s.Zeta, s.Eps, s.Delta, s.ImmEps)
	}
	if s.ADGTheta <= 0 || s.NSGTheta <= 0 {
		return fmt.Errorf("sweep: adg_theta/nsg_theta must be positive (got %d/%d)", s.ADGTheta, s.NSGTheta)
	}
	return nil
}

// Cell is one grid point. Its Key is the journal identity, so completed
// cells can be skipped on resume.
type Cell struct {
	Dataset string
	Model   string
	Cost    string
	Algo    string
	// Churn is the temporal-workload schedule ("p@k"), or "none"/"" for a
	// static cell.
	Churn string
}

// Key returns the canonical cell identity "dataset/model/cost/algo",
// with "/churn=p@k" appended for temporal cells only — static cells keep
// the historical four-segment key, so pre-churn journals resume cleanly.
func (c Cell) Key() string {
	k := c.Dataset + "/" + c.Model + "/" + c.Cost + "/" + c.Algo
	if c.Churn != "" && c.Churn != ChurnNone {
		k += "/churn=" + c.Churn
	}
	return k
}

// GroupKey identifies the prepared instance the cell shares with its
// siblings: graph, IMM targets, and calibrated costs depend on
// (dataset, model, cost setting) but not on the algorithm.
func (c Cell) GroupKey() string {
	return c.Dataset + "/" + c.Model + "/" + c.Cost
}

// Cells enumerates the grid in canonical order: dataset-major, then
// model, cost setting, algorithm, churn schedule. Canonical journals
// list cells in this order; group-mates are adjacent so a prepared
// instance is shared by consecutive cells (churn never re-prepares —
// temporal cells mutate immutable per-session copies of the group graph).
func (s *Spec) Cells() []Cell {
	churns := s.Churns
	if len(churns) == 0 {
		churns = []string{ChurnNone}
	}
	out := make([]Cell, 0, len(s.Datasets)*len(s.Models)*len(s.CostSettings)*len(s.Algos)*len(churns))
	for _, d := range s.Datasets {
		for _, m := range s.Models {
			for _, c := range s.CostSettings {
				for _, a := range s.Algos {
					for _, ch := range churns {
						out = append(out, Cell{Dataset: d, Model: m, Cost: c, Algo: a, Churn: ch})
					}
				}
			}
		}
	}
	return out
}

// ParseModel maps a model name to its cascade.Model.
func ParseModel(s string) (cascade.Model, error) {
	switch strings.ToLower(s) {
	case "ic":
		return cascade.IC, nil
	case "lt":
		return cascade.LT, nil
	default:
		return 0, fmt.Errorf("unknown diffusion model %q (have ic, lt)", s)
	}
}

// ChurnNone is the churn schedule of a static cell: no topology deltas.
const ChurnNone = "none"

// ParseChurn parses a churn schedule. "none" (or "") means a static
// graph and returns (0, 0). "p@k" means: every k observed rounds, delete
// a uniform random p percent of the edges and insert the same number of
// fresh ones (gen.ChurnDeltas), so the edge count is conserved. p may be
// fractional ("0.5@1"); k must be a positive integer.
func ParseChurn(s string) (frac float64, every int, err error) {
	if s == "" || strings.EqualFold(s, ChurnNone) {
		return 0, 0, nil
	}
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return 0, 0, fmt.Errorf("churn schedule %q: want \"p@k\" (p%% of edges every k rounds) or %q", s, ChurnNone)
	}
	pct, perr := strconv.ParseFloat(s[:at], 64)
	if perr != nil || pct <= 0 || pct > 100 {
		return 0, 0, fmt.Errorf("churn schedule %q: percentage must be in (0, 100], got %q", s, s[:at])
	}
	every, kerr := strconv.Atoi(s[at+1:])
	if kerr != nil || every <= 0 {
		return 0, 0, fmt.Errorf("churn schedule %q: round interval must be a positive integer, got %q", s, s[at+1:])
	}
	return pct / 100, every, nil
}

// ParseCostSetting maps a cost-setting name to its cost.Setting.
func ParseCostSetting(s string) (cost.Setting, error) {
	switch strings.ToLower(s) {
	case "degree-proportional", "degree":
		return cost.DegreeProportional, nil
	case "uniform":
		return cost.Uniform, nil
	case "random":
		return cost.Random, nil
	default:
		return 0, fmt.Errorf("unknown cost setting %q (have degree-proportional, uniform, random)", s)
	}
}
