package oracle

import (
	"math"
	"testing"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ltPickGraph is the small LT-valid graph the fast-path tests enumerate:
// 5 nodes, uniform p = 0.25, node 3 with in-degree 3.
func ltPickGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5, true)
	for _, e := range [][2]graph.NodeID{{0, 3}, {1, 3}, {2, 3}, {3, 4}, {4, 0}} {
		if err := b.AddArc(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.ApplyUniformProbability(0.25); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

// TestExactLTMatchesIndependentEnumerator ties the package oracle to the
// test-local enumerator that validated the LT fast paths in PR 3: the two
// implementations walk the pick space differently and must agree exactly.
func TestExactLTMatchesIndependentEnumerator(t *testing.T) {
	g := ltPickGraph(t)
	o, err := NewExactLT(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []graph.NodeID{0, 1, 3, 4} {
		want := exactLTSpread(g, []graph.NodeID{seed})
		got := o.Spread([]graph.NodeID{seed})
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("seed %d: ExactLT %.12f vs independent enumerator %.12f", seed, got, want)
		}
	}
	// Multi-seed query.
	want := exactLTSpread(g, []graph.NodeID{0, 3})
	if got := o.Spread([]graph.NodeID{0, 3}); math.Abs(got-want) > 1e-12 {
		t.Errorf("seeds {0,3}: ExactLT %.12f vs enumerator %.12f", got, want)
	}
}

// TestExactLTOnResidual: on a residual view, dead parents' pick mass
// folds into "no pick" and dead nodes conduct nothing — cross-checked
// against forward Monte Carlo on the residual.
func TestExactLTOnResidual(t *testing.T) {
	g := ltPickGraph(t)
	o, err := NewExactLT(g)
	if err != nil {
		t.Fatal(err)
	}
	res := graph.NewResidual(g)
	res.Remove(3) // cuts the 0/1/2 → 3 → 4 conduit
	for _, seed := range []graph.NodeID{0, 4} {
		got := o.ExpectedSpread(res, []graph.NodeID{seed})
		mc := cascade.MonteCarloSpreadOn(res, cascade.LT, []graph.NodeID{seed}, 400000, rng.New(29))
		if math.Abs(got-mc) > 0.02 {
			t.Errorf("seed %d on residual: exact %.4f vs MC %.4f", seed, got, mc)
		}
	}
	// A dead seed contributes nothing.
	if got := o.ExpectedSpread(res, []graph.NodeID{3}); got != 0 {
		t.Errorf("dead seed spread %.4f, want 0", got)
	}
}

// TestExactLTRefusesLargeGraphs: the pick-space product guard must fire
// before enumeration becomes infeasible.
func TestExactLTRefusesLargeGraphs(t *testing.T) {
	b := graph.NewBuilder(60, true)
	for v := 1; v < 60; v++ {
		for u := 0; u < v && u < 3; u++ {
			if err := b.AddArc(graph.NodeID(u), graph.NodeID(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.ApplyUniformProbability(0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExactLT(b.Build()); err == nil {
		t.Fatal("60-node in-degree-3 graph accepted for exact LT enumeration")
	}
}

// TestExactLTPanicsOnForeignResidual mirrors the IC exact oracle's
// graph-identity check.
func TestExactLTPanicsOnForeignResidual(t *testing.T) {
	g := ltPickGraph(t)
	o, err := NewExactLT(g)
	if err != nil {
		t.Fatal(err)
	}
	other := ltPickGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign residual accepted")
		}
	}()
	o.ExpectedSpread(graph.NewResidual(other), []graph.NodeID{0})
}
