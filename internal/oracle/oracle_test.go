package oracle

import (
	"math"
	"testing"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/rng"
)

func chainGraph(p1, p2 float64) *graph.Graph {
	return graph.MustFromEdges(3, true, []graph.Edge{
		{From: 0, To: 1, P: p1}, {From: 1, To: 2, P: p2},
	})
}

func fig1Graph() *graph.Graph {
	return graph.MustFromEdges(7, true, []graph.Edge{
		{From: 0, To: 1, P: 0.4},
		{From: 1, To: 2, P: 0.8},
		{From: 1, To: 3, P: 0.7},
		{From: 3, To: 2, P: 0.6},
		{From: 2, To: 4, P: 0.5},
		{From: 4, To: 5, P: 0.3},
		{From: 5, To: 4, P: 0.7},
		{From: 5, To: 6, P: 0.6},
		{From: 6, To: 0, P: 0.2},
		{From: 4, To: 0, P: 0.7},
	})
}

func TestExactChain(t *testing.T) {
	p1, p2 := 0.6, 0.5
	g := chainGraph(p1, p2)
	o, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	res := graph.NewResidual(g)
	got := o.ExpectedSpread(res, []graph.NodeID{0})
	want := 1 + p1 + p1*p2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("exact = %v, want %v", got, want)
	}
	if got := o.ExpectedSpread(res, nil); got != 0 {
		t.Fatalf("exact of empty set = %v", got)
	}
	if got := o.ExpectedSpread(res, []graph.NodeID{2}); got != 1 {
		t.Fatalf("exact of sink = %v, want 1", got)
	}
}

func TestExactFig1TargetSet(t *testing.T) {
	// Hand computation for seeds {v1,v2,v6} (see cascade tests): 6.0166.
	g := fig1Graph()
	o, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	got := o.ExpectedSpread(graph.NewResidual(g), []graph.NodeID{0, 1, 5})
	if math.Abs(got-6.0166) > 1e-10 {
		t.Fatalf("exact E[I({v1,v2,v6})] = %.6f, want 6.0166", got)
	}
}

func TestExactOnResidual(t *testing.T) {
	g := chainGraph(1, 1)
	o, _ := NewExact(g)
	res := graph.NewResidual(g)
	res.Remove(1)
	if got := o.ExpectedSpread(res, []graph.NodeID{0}); got != 1 {
		t.Fatalf("residual exact = %v, want 1 (relay removed)", got)
	}
	if got := o.ExpectedSpread(res, []graph.NodeID{1}); got != 0 {
		t.Fatalf("dead seed exact = %v, want 0", got)
	}
}

func TestExactRefusesLargeGraphs(t *testing.T) {
	b := graph.NewBuilder(30, true)
	for i := 0; i < 25; i++ {
		_ = b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 0.5)
	}
	if _, err := NewExact(b.Build()); err == nil {
		t.Fatal("NewExact accepted m=25")
	}
}

func TestExactPanicsOnForeignResidual(t *testing.T) {
	o, _ := NewExact(chainGraph(0.5, 0.5))
	other := graph.NewResidual(chainGraph(0.3, 0.3))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on foreign residual")
		}
	}()
	o.ExpectedSpread(other, []graph.NodeID{0})
}

func TestMonteCarloMatchesExact(t *testing.T) {
	g := fig1Graph()
	exact, _ := NewExact(g)
	mc := NewMonteCarlo(cascade.IC, 200000, 7)
	res := graph.NewResidual(g)
	for _, seeds := range [][]graph.NodeID{{0}, {1}, {5}, {0, 1, 5}} {
		e := exact.ExpectedSpread(res, seeds)
		m := mc.ExpectedSpread(res, seeds)
		if math.Abs(e-m) > 0.05 {
			t.Errorf("seeds %v: exact %.4f, MC %.4f", seeds, e, m)
		}
	}
}

func TestMonteCarloCacheIsOrderInsensitive(t *testing.T) {
	g := fig1Graph()
	mc := NewMonteCarlo(cascade.IC, 100, 7)
	res := graph.NewResidual(g)
	a := mc.ExpectedSpread(res, []graph.NodeID{0, 5, 1})
	b := mc.ExpectedSpread(res, []graph.NodeID{1, 0, 5})
	if a != b {
		t.Fatalf("permuted seed sets gave %v and %v", a, b)
	}
	if len(mc.cache) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(mc.cache))
	}
}

func TestMonteCarloCacheInvalidatedByResidualChange(t *testing.T) {
	g := chainGraph(1, 1)
	mc := NewMonteCarlo(cascade.IC, 500, 7)
	res := graph.NewResidual(g)
	before := mc.ExpectedSpread(res, []graph.NodeID{0})
	res.Remove(1)
	after := mc.ExpectedSpread(res, []graph.NodeID{0})
	if before != 3 || after != 1 {
		t.Fatalf("before=%v after=%v, want 3 and 1", before, after)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	g := fig1Graph()
	a := NewMonteCarlo(cascade.IC, 1000, 9)
	b := NewMonteCarlo(cascade.IC, 1000, 9)
	res := graph.NewResidual(g)
	if a.ExpectedSpread(res, []graph.NodeID{1}) != b.ExpectedSpread(res, []graph.NodeID{1}) {
		t.Fatal("same-seed MC oracles disagree")
	}
}

func TestRISMatchesExact(t *testing.T) {
	g := fig1Graph()
	exact, _ := NewExact(g)
	ro := NewRIS(cascade.IC, 200000, rng.New(13))
	res := graph.NewResidual(g)
	for _, seeds := range [][]graph.NodeID{{0}, {1}, {0, 1, 5}} {
		e := exact.ExpectedSpread(res, seeds)
		r := ro.ExpectedSpread(res, seeds)
		if math.Abs(e-r) > 0.06 {
			t.Errorf("seeds %v: exact %.4f, RIS %.4f", seeds, e, r)
		}
	}
}

// TestRISBatchedMatchesExact pins the frontier-batched kernel against
// ground truth: on a per-node-uniform graph (which compresses to the
// sampler tables the kernel requires) the batched RIS estimate must sit
// within Monte Carlo tolerance of exact possible-world enumeration.
// fig1Graph itself stores per-edge in-probabilities and would silently
// fall back to the per-draw loop, so this uses the same topology with
// each node's in-edges sharing one probability — and asserts the
// compressed tables actually exist.
func TestRISBatchedMatchesExact(t *testing.T) {
	inP := []float64{0.45, 0.4, 0.6, 0.7, 0.5, 0.3, 0.6}
	var edges []graph.Edge
	for _, e := range []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 1, To: 3},
		{From: 3, To: 2}, {From: 2, To: 4}, {From: 4, To: 5},
		{From: 5, To: 4}, {From: 5, To: 6}, {From: 6, To: 0},
		{From: 4, To: 0},
	} {
		edges = append(edges, graph.Edge{From: e.From, To: e.To, P: inP[e.To]})
	}
	g := graph.MustFromEdges(7, true, edges)
	if meta, _, _, _ := g.InSamplerTables(); meta == nil {
		t.Fatal("uniform-in-probability graph did not compress; batched kernel untested")
	}
	exact, _ := NewExact(g)
	ro := NewRIS(cascade.IC, 200000, rng.New(13))
	ro.SetBatched(true)
	res := graph.NewResidual(g)
	for _, seeds := range [][]graph.NodeID{{0}, {1}, {0, 1, 5}} {
		e := exact.ExpectedSpread(res, seeds)
		r := ro.ExpectedSpread(res, seeds)
		if math.Abs(e-r) > 0.06 {
			t.Errorf("seeds %v: exact %.4f, batched RIS %.4f", seeds, e, r)
		}
	}
	if err := ro.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRISRefreshesOnResidualChange(t *testing.T) {
	g := chainGraph(1, 1)
	ro := NewRIS(cascade.IC, 5000, rng.New(17))
	res := graph.NewResidual(g)
	before := ro.ExpectedSpread(res, []graph.NodeID{0})
	res.Remove(1)
	after := ro.ExpectedSpread(res, []graph.NodeID{0})
	if math.Abs(before-3) > 0.05 || math.Abs(after-1) > 0.05 {
		t.Fatalf("before=%v after=%v, want ~3 and ~1", before, after)
	}
}

func TestRISEmptyResidual(t *testing.T) {
	g := chainGraph(1, 1)
	ro := NewRIS(cascade.IC, 100, rng.New(17))
	res := graph.NewResidual(g)
	for u := graph.NodeID(0); u < 3; u++ {
		res.Remove(u)
	}
	if got := ro.ExpectedSpread(res, []graph.NodeID{0}); got != 0 {
		t.Fatalf("empty residual spread = %v", got)
	}
}

func TestConstructorsRejectNonPositiveParams(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewMonteCarlo", func() { NewMonteCarlo(cascade.IC, 0, 1) })
	mustPanic("NewRIS", func() { NewRIS(cascade.IC, 0, rng.New(1)) })
}
