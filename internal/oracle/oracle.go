package oracle

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// Oracle answers expected-spread queries on a residual view.
type Oracle interface {
	// ExpectedSpread returns (an estimate of) E[I_{G_i}(S)] where G_i is
	// the residual view res and dead seeds contribute nothing.
	ExpectedSpread(res *graph.Residual, seeds []graph.NodeID) float64
}

// Exact enumerates every realization of the underlying graph. Cost is
// O(2^m · (n+m)); the constructor refuses graphs beyond maxEdges.
type Exact struct {
	g     *graph.Graph
	edges []graph.Edge
}

// MaxExactEdges bounds the edge count Exact accepts (2^20 worlds).
const MaxExactEdges = 20

// NewExact builds an exact oracle for g.
func NewExact(g *graph.Graph) (*Exact, error) {
	if g.M() > MaxExactEdges {
		return nil, fmt.Errorf("oracle: exact enumeration infeasible for m=%d > %d", g.M(), MaxExactEdges)
	}
	return &Exact{g: g, edges: g.Edges()}, nil
}

// ExpectedSpread enumerates all live-edge subsets, weighting each world by
// its probability.
func (o *Exact) ExpectedSpread(res *graph.Residual, seeds []graph.NodeID) float64 {
	if res.Graph() != o.g {
		panic("oracle: residual belongs to a different graph")
	}
	m := len(o.edges)
	total := 0.0
	live := make([]graph.Edge, 0, m)
	for mask := 0; mask < 1<<m; mask++ {
		p := 1.0
		live = live[:0]
		for i, e := range o.edges {
			if mask&(1<<i) != 0 {
				p *= e.P
				live = append(live, e)
			} else {
				p *= 1 - e.P
			}
		}
		if p == 0 {
			continue
		}
		rz := cascade.FromLiveEdges(o.g, live)
		total += p * float64(cascade.SpreadOn(rz, res, seeds))
	}
	return total
}

// MonteCarlo estimates spreads by forward simulation with memoization.
// Queries with the same (residual version, seed set) hit the cache, which
// matters because double greedy asks about overlapping sets repeatedly.
type MonteCarlo struct {
	model cascade.Model
	reps  int
	seed  uint64
	cache map[string]float64
}

// NewMonteCarlo builds an MC oracle with the given replication count.
// The oracle derives an independent RNG stream per query from seed, so
// answers are deterministic functions of (seed, query).
func NewMonteCarlo(model cascade.Model, reps int, seed uint64) *MonteCarlo {
	if reps <= 0 {
		panic("oracle: reps must be positive")
	}
	return &MonteCarlo{model: model, reps: reps, seed: seed, cache: make(map[string]float64)}
}

func cacheKey(version int64, seeds []graph.NodeID) string {
	s := make([]int, len(seeds))
	for i, u := range seeds {
		s[i] = int(u)
	}
	sort.Ints(s)
	var b strings.Builder
	fmt.Fprintf(&b, "v%d:", version)
	for _, u := range s {
		fmt.Fprintf(&b, "%d,", u)
	}
	return b.String()
}

// ExpectedSpread estimates E[I_{G_i}(S)] with o.reps simulations.
func (o *MonteCarlo) ExpectedSpread(res *graph.Residual, seeds []graph.NodeID) float64 {
	key := cacheKey(res.Version(), seeds)
	if v, ok := o.cache[key]; ok {
		return v
	}
	// Derive a per-query stream: deterministic, but independent across
	// distinct queries.
	h := o.seed
	for _, c := range key {
		h = h*1099511628211 + uint64(c)
	}
	v := cascade.MonteCarloSpreadOn(res, o.model, seeds, o.reps, rng.New(h))
	o.cache[key] = v
	return v
}

// RIS estimates spreads from an RR-set collection maintained per residual
// version. theta controls the sample size. When the residual mutates, the
// cached collection is validity-filtered (ris.Collection.Filter) and only
// the shortfall is regenerated, instead of discarding every set. The
// draw/filter/top-up cycle and its accounting run through the shared
// ris.Batcher — the same batch loop the adaptive sequential controller
// and IMM's θ search use.
type RIS struct {
	model cascade.Model
	theta int
	r     *rng.RNG
	b     *ris.Batcher

	cachedVersion int64
	cachedAlive   int
	workers       int
	reuse         bool
	// err is the first refresh failure (an interrupt aborting a batch
	// mid-draw). The Oracle interface cannot surface it per query, so it is
	// sticky: once set, every answer is void and callers must check Err
	// after their query loop.
	err error
}

// NewRIS builds an RIS-backed oracle drawing theta RR sets per residual
// version.
func NewRIS(model cascade.Model, theta int, r *rng.RNG) *RIS {
	if theta <= 0 {
		panic("oracle: theta must be positive")
	}
	b := ris.NewBatcher(model)
	b.SetReuse(false) // see SetReuse for why reuse is opt-in here
	return &RIS{model: model, theta: theta, r: r, b: b, cachedVersion: -1}
}

// ExpectedSpread estimates E[I_{G_i}(S)] = n_i · CovR(S)/θ.
func (o *RIS) ExpectedSpread(res *graph.Residual, seeds []graph.NodeID) float64 {
	o.Refresh(res)
	c := o.b.Collection()
	if c.Len() == 0 {
		return 0
	}
	return ris.EstimateSpread(c.Cov(seeds), c.Len(), o.cachedAlive)
}

// SetWorkers enables parallel RR generation on future refreshes and
// parallel batch queries (n > 1; 0 or 1 keeps the default sequential
// sampler). Results stay deterministic for a fixed worker count, and
// SingleSpreads is worker-count-independent.
func (o *RIS) SetWorkers(n int) { o.workers = n }

// SetBatched opts the oracle's refresh draws into the frontier-batched
// sampler kernel (ris.SamplerPool.SetBatched). The kernel consumes
// randomness in a different order, so individual sets change, but the
// RR-set distribution is identical — estimates move only within
// sampling noise. Graphs without compressed sampler tables fall back to
// the per-draw loop transparently.
func (o *RIS) SetBatched(on bool) { o.b.SetBatched(on) }

// SingleSpreads estimates E[I_{G_i}({u})] for every u in nodes, writing
// the estimates into out (which must have len(nodes)). It is equivalent
// to calling ExpectedSpread on each singleton — identical floats — but a
// single-node coverage is an O(1) inverted-index lookup
// (CountContaining), so the batch is evaluated concurrently across the
// oracle's worker count after one Refresh. The adaptive greedy's
// per-round argmax over alive targets goes through here.
func (o *RIS) SingleSpreads(res *graph.Residual, nodes []graph.NodeID, out []float64) {
	if len(nodes) == 0 {
		return
	}
	o.Refresh(res)
	c := o.b.Collection()
	if c.Len() == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	c.BuildIndex(o.workers) // before the concurrent reads below
	theta, alive := c.Len(), o.cachedAlive
	workers := o.workers
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		for i, u := range nodes {
			out[i] = ris.EstimateSpread(c.CountContaining(u), theta, alive)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(nodes) + workers - 1) / workers
	for lo := 0; lo < len(nodes); lo += chunk {
		hi := lo + chunk
		if hi > len(nodes) {
			hi = len(nodes)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = ris.EstimateSpread(c.CountContaining(nodes[i]), theta, alive)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// SetReuse enables cross-version RR-set reuse: on a residual change,
// Refresh keeps the cached sets still valid under the new residual
// (ris.Collection.Filter) and draws only the shortfall.
//
// Off by default because filtering tilts the pool's root mix: each kept
// set is, conditioned on its root, exactly an RR set of the new residual,
// but roots whose sets tend to survive are over-represented versus the
// uniform root draw the estimator assumes. The tilt is proportional to
// how much of the pool the deletion invalidated — negligible for the
// small per-round deletions of adaptive seeding, extreme on adversarial
// graphs (deleting a chain's middle node leaves only single-node sets).
// Callers accepting that trade (ADG on large graphs) opt in explicitly.
func (o *RIS) SetReuse(on bool) {
	o.reuse = on
	o.b.SetReuse(on)
}

// SetInterrupt installs a cancellation poll on the oracle's batcher; a
// refresh aborted mid-batch voids the oracle (see Err). nil removes it.
func (o *RIS) SetInterrupt(f func() error) { o.b.SetInterrupt(f) }

// Err reports the first refresh abort (nil while the oracle is healthy).
// Answers given after Err becomes non-nil are meaningless; drivers poll it
// once per round, after their query batch.
func (o *RIS) Err() error { return o.err }

// Refresh brings the cached RR collection up to date with the residual's
// version. On the first call it generates θ sets from scratch; afterwards
// it compacts the collection to the sets still valid on the mutated
// residual and draws only the shortfall, so sets that avoid every deleted
// node are reused across rounds instead of being discarded. Exposed so
// adaptive drivers can force the per-round resampling (and account for
// it) at a well-defined point.
func (o *RIS) Refresh(res *graph.Residual) {
	if o.err != nil {
		return
	}
	if o.cachedVersion == res.Version() && o.b.Collection() != nil {
		return
	}
	// workers <= 0 stays sequential here (unlike GenerateParallel's
	// GOMAXPROCS default) so an unconfigured oracle is deterministic
	// across machines; SetWorkers opts in to parallel generation.
	w := o.workers
	if w < 1 {
		w = 1
	}
	o.b.Sync(res) // filter (reuse) or reset (default)
	if _, err := o.b.GrowTo(res, o.r, o.theta, w); err != nil {
		o.err = err
		return
	}
	o.cachedVersion = res.Version()
	o.cachedAlive = res.N()
}

// InvalidateTopology drops the cached RR sets containing any node touched
// by a topology delta (the To-endpoints of changed edges — see
// graph.ApplyDelta) and voids the version cache, forcing the next query to
// refresh. A reverse walk that never visits a touched node never examines
// a changed edge, so every surviving set is a valid RR set of the mutated
// graph: with reuse on, the following Refresh keeps the survivors and
// draws only the shortfall; with reuse off it regenerates from scratch as
// always. Consumes no randomness, so the oracle's stream stays aligned
// with an unmutated run up to the first post-delta refresh.
func (o *RIS) InvalidateTopology(touched []graph.NodeID) {
	o.b.Invalidate(touched)
	o.cachedVersion = -1
}

// RISState is the serializable snapshot of a RIS oracle: its RNG stream,
// version cache, and batcher (collection + accounting). Configuration
// (theta, workers, reuse) is captured too so a restored oracle resamples
// exactly as the original would — worker count shapes the draw→substream
// mapping, so silently restoring under a different one would fork the
// stream.
type RISState struct {
	RNGState      uint64
	RNGInc        uint64
	Theta         int
	Workers       int
	Reuse         bool
	CachedVersion int64
	CachedAlive   int
	Batcher       ris.BatcherState
}

// State captures the oracle's snapshot for checkpointing. Only quiescent
// oracles (no query in flight) may be captured.
func (o *RIS) State() RISState {
	st := RISState{
		Theta:         o.theta,
		Workers:       o.workers,
		Reuse:         o.reuse,
		CachedVersion: o.cachedVersion,
		CachedAlive:   o.cachedAlive,
		Batcher:       o.b.State(),
	}
	st.RNGState, st.RNGInc = o.r.State()
	return st
}

// RestoreState overwrites the oracle with a captured snapshot. fullN is
// the indexed graph's node count (see ris.Batcher.RestoreState).
func (o *RIS) RestoreState(st RISState, fullN int) error {
	if st.Theta <= 0 {
		return fmt.Errorf("oracle: restore with theta %d", st.Theta)
	}
	o.theta = st.Theta
	o.workers = st.Workers
	o.SetReuse(st.Reuse)
	o.cachedVersion = st.CachedVersion
	o.cachedAlive = st.CachedAlive
	o.err = nil
	o.r.SetState(st.RNGState, st.RNGInc)
	return o.b.RestoreState(st.Batcher, fullN)
}

// Collection returns the RR collection backing the current residual
// version (nil before the first query).
func (o *RIS) Collection() *ris.Collection { return o.b.Collection() }

// TotalDrawn returns the RR sets generated across all refreshes.
func (o *RIS) TotalDrawn() int64 { return o.b.Drawn() }

// TotalRequested returns the RR sets requested from the generators across
// all refreshes; larger than TotalDrawn when generation hit an empty
// residual. Reused sets are not re-requested, so with reuse this is
// smaller than refreshes × θ.
func (o *RIS) TotalRequested() int64 { return o.b.Requested() }

// TotalReused returns the RR sets carried over across residual versions
// by validity filtering — draws the oracle avoided versus regenerating θ
// sets on every refresh.
func (o *RIS) TotalReused() int64 { return o.b.Reused() }

// PeakRRBytes returns the largest heap footprint the cached collection
// reached (ris.Collection.Bytes). Deterministic for a fixed seed.
func (o *RIS) PeakRRBytes() int64 { return o.b.PeakBytes() }

// SamplingNS returns the wall time spent inside RR generation across all
// refreshes, in nanoseconds.
func (o *RIS) SamplingNS() int64 { return o.b.SamplingNS() }

// TotalVisits and TotalEdgeTouches expose the sampler work counters
// accumulated across refreshes (see ris.Batcher.Visits / EdgeTouches).
func (o *RIS) TotalVisits() int64      { return o.b.Visits() }
func (o *RIS) TotalEdgeTouches() int64 { return o.b.EdgeTouches() }
