// Package oracle provides the spread oracles of the paper's oracle model
// (§III-B), where E[I_G(S)] is assumed accessible in O(1).
//
// Three implementations:
//
//   - Exact: enumerates all 2^m realizations. Exponential; for the tiny
//     graphs in tests and worked examples (m ≤ ~20) it is the ground truth
//     everything else is validated against.
//   - MonteCarlo: averages forward simulations; an (ε,δ)-approximate stand-in
//     for the oracle on larger graphs, with memoization keyed on the
//     residual version and seed set.
//   - RIS: estimates through a fixed RR-set collection; cheapest, used by
//     ADG when configured for larger graphs.
//
// All oracles answer on residual views so ADG can query E[I_{G_i}(·)].
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// Oracle answers expected-spread queries on a residual view.
type Oracle interface {
	// ExpectedSpread returns (an estimate of) E[I_{G_i}(S)] where G_i is
	// the residual view res and dead seeds contribute nothing.
	ExpectedSpread(res *graph.Residual, seeds []graph.NodeID) float64
}

// Exact enumerates every realization of the underlying graph. Cost is
// O(2^m · (n+m)); the constructor refuses graphs beyond maxEdges.
type Exact struct {
	g     *graph.Graph
	edges []graph.Edge
}

// MaxExactEdges bounds the edge count Exact accepts (2^20 worlds).
const MaxExactEdges = 20

// NewExact builds an exact oracle for g.
func NewExact(g *graph.Graph) (*Exact, error) {
	if g.M() > MaxExactEdges {
		return nil, fmt.Errorf("oracle: exact enumeration infeasible for m=%d > %d", g.M(), MaxExactEdges)
	}
	return &Exact{g: g, edges: g.Edges()}, nil
}

// ExpectedSpread enumerates all live-edge subsets, weighting each world by
// its probability.
func (o *Exact) ExpectedSpread(res *graph.Residual, seeds []graph.NodeID) float64 {
	if res.Graph() != o.g {
		panic("oracle: residual belongs to a different graph")
	}
	m := len(o.edges)
	total := 0.0
	live := make([]graph.Edge, 0, m)
	for mask := 0; mask < 1<<m; mask++ {
		p := 1.0
		live = live[:0]
		for i, e := range o.edges {
			if mask&(1<<i) != 0 {
				p *= e.P
				live = append(live, e)
			} else {
				p *= 1 - e.P
			}
		}
		if p == 0 {
			continue
		}
		rz := cascade.FromLiveEdges(o.g, live)
		total += p * float64(cascade.SpreadOn(rz, res, seeds))
	}
	return total
}

// MonteCarlo estimates spreads by forward simulation with memoization.
// Queries with the same (residual version, seed set) hit the cache, which
// matters because double greedy asks about overlapping sets repeatedly.
type MonteCarlo struct {
	model cascade.Model
	reps  int
	seed  uint64
	cache map[string]float64
}

// NewMonteCarlo builds an MC oracle with the given replication count.
// The oracle derives an independent RNG stream per query from seed, so
// answers are deterministic functions of (seed, query).
func NewMonteCarlo(model cascade.Model, reps int, seed uint64) *MonteCarlo {
	if reps <= 0 {
		panic("oracle: reps must be positive")
	}
	return &MonteCarlo{model: model, reps: reps, seed: seed, cache: make(map[string]float64)}
}

func cacheKey(version int64, seeds []graph.NodeID) string {
	s := make([]int, len(seeds))
	for i, u := range seeds {
		s[i] = int(u)
	}
	sort.Ints(s)
	var b strings.Builder
	fmt.Fprintf(&b, "v%d:", version)
	for _, u := range s {
		fmt.Fprintf(&b, "%d,", u)
	}
	return b.String()
}

// ExpectedSpread estimates E[I_{G_i}(S)] with o.reps simulations.
func (o *MonteCarlo) ExpectedSpread(res *graph.Residual, seeds []graph.NodeID) float64 {
	key := cacheKey(res.Version(), seeds)
	if v, ok := o.cache[key]; ok {
		return v
	}
	// Derive a per-query stream: deterministic, but independent across
	// distinct queries.
	h := o.seed
	for _, c := range key {
		h = h*1099511628211 + uint64(c)
	}
	v := cascade.MonteCarloSpreadOn(res, o.model, seeds, o.reps, rng.New(h))
	o.cache[key] = v
	return v
}

// RIS estimates spreads from a fresh RR-set collection per residual
// version. theta controls the sample size.
type RIS struct {
	model cascade.Model
	theta int
	r     *rng.RNG

	cachedVersion int64
	cached        *ris.Collection
	cachedAlive   int
	workers       int

	totalDrawn     int64
	totalRequested int64
}

// NewRIS builds an RIS-backed oracle drawing theta RR sets per residual
// version.
func NewRIS(model cascade.Model, theta int, r *rng.RNG) *RIS {
	if theta <= 0 {
		panic("oracle: theta must be positive")
	}
	return &RIS{model: model, theta: theta, r: r, cachedVersion: -1}
}

// ExpectedSpread estimates E[I_{G_i}(S)] = n_i · CovR(S)/θ.
func (o *RIS) ExpectedSpread(res *graph.Residual, seeds []graph.NodeID) float64 {
	o.Refresh(res)
	if o.cached.Len() == 0 {
		return 0
	}
	return ris.EstimateSpread(o.cached.Cov(seeds), o.cached.Len(), o.cachedAlive)
}

// SetWorkers enables parallel RR generation on future refreshes (n > 1;
// 0 or 1 keeps the default sequential sampler). Results stay
// deterministic for a fixed worker count.
func (o *RIS) SetWorkers(n int) { o.workers = n }

// Refresh regenerates the cached RR collection if the residual's version
// changed since the last query. Exposed so adaptive drivers can force the
// per-round resampling (and account for it) at a well-defined point.
func (o *RIS) Refresh(res *graph.Residual) {
	if o.cachedVersion == res.Version() {
		return
	}
	if o.workers > 1 {
		o.cached = ris.GenerateParallel(res, o.model, o.r.Split(), o.theta, o.workers)
	} else {
		s := ris.NewSampler(res, o.model, o.r.Split())
		o.cached = s.Generate(o.theta)
	}
	o.cachedVersion = res.Version()
	o.cachedAlive = res.N()
	o.totalDrawn += int64(o.cached.Len())
	o.totalRequested += int64(o.cached.Requested())
}

// Collection returns the RR collection backing the current residual
// version (nil before the first query).
func (o *RIS) Collection() *ris.Collection { return o.cached }

// TotalDrawn returns the RR sets generated across all refreshes.
func (o *RIS) TotalDrawn() int64 { return o.totalDrawn }

// TotalRequested returns the RR sets requested across all refreshes;
// larger than TotalDrawn when generation hit an empty residual.
func (o *RIS) TotalRequested() int64 { return o.totalRequested }
