package oracle

import (
	"fmt"

	"repro/internal/graph"
)

// ExactLT enumerates the linear-threshold triggering model exactly: in
// the LT live-edge characterization every node independently picks at
// most one in-parent — edge (u,v) with probability p(u,v), or no parent
// with the remaining mass — and the spread of S is the expected number of
// nodes reachable from S over the picked edges. Cost is the product of
// (in-degree+1) over all nodes; the constructor refuses graphs beyond
// MaxExactLTWorlds. This is the LT counterpart of Exact (whose per-edge
// coin enumeration is IC semantics only) and serves as ground truth for
// the LT worked example and for validating the reverse/forward LT fast
// paths.
type ExactLT struct {
	g *graph.Graph
}

// MaxExactLTWorlds bounds the number of pick combinations ExactLT
// accepts, and MaxExactLTNodes the node count. Both gates are deliberately
// tight: adaptive greedy queries the oracle once per alive target per
// round, so a run makes O(|T|·rounds) ExpectedSpread calls and each call
// re-enumerates every world — the budget is worked-example-sized graphs,
// not "whatever finishes once".
const (
	MaxExactLTWorlds = 1 << 14
	MaxExactLTNodes  = 64
)

// NewExactLT builds an exact LT oracle for g.
func NewExactLT(g *graph.Graph) (*ExactLT, error) {
	if g.N() > MaxExactLTNodes {
		return nil, fmt.Errorf("oracle: exact LT enumeration infeasible for n=%d > %d", g.N(), MaxExactLTNodes)
	}
	worlds := 1.0
	for v := 0; v < g.N(); v++ {
		srcs, _ := g.InNeighbors(graph.NodeID(v))
		worlds *= float64(len(srcs) + 1)
		if worlds > MaxExactLTWorlds {
			return nil, fmt.Errorf("oracle: exact LT enumeration infeasible (> %d pick combinations)", MaxExactLTWorlds)
		}
	}
	return &ExactLT{g: g}, nil
}

// ExpectedSpread enumerates every combination of per-node parent picks on
// the residual view, weighting each by its probability. Dead nodes make
// no pick and conduct nothing; a pick of a dead parent is equivalent to
// no pick (the mass is not renormalized onto alive parents), matching the
// reverse sampler's semantics of dropping dead picks.
func (o *ExactLT) ExpectedSpread(res *graph.Residual, seeds []graph.NodeID) float64 {
	if res.Graph() != o.g {
		panic("oracle: residual belongs to a different graph")
	}
	n := o.g.N()
	type choice struct {
		parent graph.NodeID // -1 = no pick
		prob   float64
	}
	options := make([][]choice, n)
	for v := 0; v < n; v++ {
		rest := 1.0
		if res.Alive(graph.NodeID(v)) {
			srcs, ps := o.g.InNeighbors(graph.NodeID(v))
			for i, u := range srcs {
				if !res.Alive(u) {
					continue // dead parent: its mass folds into "no pick"
				}
				options[v] = append(options[v], choice{parent: u, prob: ps[i]})
				rest -= ps[i]
			}
		}
		if rest < 0 {
			rest = 0 // guard FP dust; Validate enforces Σp ≤ 1 per node
		}
		options[v] = append(options[v], choice{parent: -1, prob: rest})
	}
	aliveSeeds := make([]graph.NodeID, 0, len(seeds))
	for _, u := range seeds {
		if res.Alive(u) {
			aliveSeeds = append(aliveSeeds, u)
		}
	}
	total := 0.0
	picked := make([]graph.NodeID, n)
	visited := make([]bool, n)
	stack := make([]graph.NodeID, 0, n)
	// children inverts picked once per world, so the reachability walk is
	// O(n) per world instead of an O(n) scan per visited node.
	children := make([][]graph.NodeID, n)
	var walk func(v int, p float64)
	walk = func(v int, p float64) {
		if p == 0 {
			return
		}
		if v == n {
			// Spread = nodes reachable from the seeds along picked edges.
			for i := range children {
				children[i] = children[i][:0]
				visited[i] = false
			}
			for w, u := range picked {
				if u >= 0 {
					children[u] = append(children[u], graph.NodeID(w))
				}
			}
			stack = append(stack[:0], aliveSeeds...)
			count := 0
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if visited[u] {
					continue
				}
				visited[u] = true
				count++
				stack = append(stack, children[u]...)
			}
			total += p * float64(count)
			return
		}
		for _, c := range options[v] {
			picked[v] = c.parent
			walk(v+1, p*c.prob)
		}
	}
	for i := range picked {
		picked[i] = -1
	}
	walk(0, 1)
	return total
}

// Spread is ExpectedSpread on the full graph (fresh residual), the common
// case for ground-truth checks.
func (o *ExactLT) Spread(seeds []graph.NodeID) float64 {
	return o.ExpectedSpread(graph.NewResidual(o.g), seeds)
}
