package oracle

import (
	"math"
	"testing"

	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestRISReuseTopsUpShortfall: with SetReuse(true), a residual mutation
// must keep the still-valid RR sets (nonzero TotalReused), draw only the
// shortfall, and keep estimates close to a from-scratch oracle on a graph
// where the deletion invalidates few sets.
func TestRISReuseTopsUpShortfall(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.PrefAttach, N: 300, AvgDeg: 5, Directed: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const theta = 20000
	reusing := NewRIS(cascade.IC, theta, rng.New(17))
	reusing.SetReuse(true)
	fresh := NewRIS(cascade.IC, theta, rng.New(17))

	res := graph.NewResidual(g)
	seeds := []graph.NodeID{5}
	_ = reusing.ExpectedSpread(res, seeds)
	if reusing.TotalReused() != 0 {
		t.Fatalf("reused %d sets before any mutation", reusing.TotalReused())
	}

	// Delete a low-degree leaf-ish node: most RR sets stay valid.
	victim := graph.NodeID(g.N() - 1)
	res.Remove(victim)
	a := reusing.ExpectedSpread(res, seeds)
	resFresh := graph.NewResidual(g)
	resFresh.Remove(victim)
	b := fresh.ExpectedSpread(resFresh, seeds)

	if reusing.TotalReused() == 0 {
		t.Fatal("no RR sets reused across the residual change")
	}
	if reusing.TotalDrawn() >= fresh.TotalDrawn()+int64(theta) {
		t.Fatalf("reuse drew %d, fresh %d per version; reuse saved nothing",
			reusing.TotalDrawn(), fresh.TotalDrawn())
	}
	if reusing.PeakRRBytes() <= 0 {
		t.Fatalf("peak RR bytes %d", reusing.PeakRRBytes())
	}
	// Same spread up to sampling noise (both pools are size θ).
	if math.Abs(a-b) > 0.15*math.Max(a, b) {
		t.Fatalf("reused estimate %.3f vs fresh %.3f diverged", a, b)
	}
}

// TestRISDefaultRegeneratesUnbiased: without SetReuse the oracle must
// regenerate from scratch per version — the deterministic-chain case
// where filtered reuse would tilt the root mix (only the {0} sets survive
// deleting the middle node) and overestimate the spread.
func TestRISDefaultRegeneratesUnbiased(t *testing.T) {
	g := graph.MustFromEdges(3, true, []graph.Edge{
		{From: 0, To: 1, P: 1}, {From: 1, To: 2, P: 1},
	})
	ro := NewRIS(cascade.IC, 5000, rng.New(29))
	res := graph.NewResidual(g)
	_ = ro.ExpectedSpread(res, []graph.NodeID{0})
	res.Remove(1)
	got := ro.ExpectedSpread(res, []graph.NodeID{0})
	if math.Abs(got-1) > 0.05 {
		t.Fatalf("default oracle estimates %.3f after removal, want ~1", got)
	}
	if ro.TotalReused() != 0 {
		t.Fatalf("default oracle reused %d sets", ro.TotalReused())
	}
	if ro.TotalDrawn() != 10000 {
		t.Fatalf("default oracle drew %d, want 2×5000", ro.TotalDrawn())
	}
}
