// Package oracle provides the spread oracles of the paper's
// (conf_icde_Huang0XSL20) oracle model (§III-B), where E[I_G(S)] is
// assumed accessible in O(1); the adaptive greedy analysis of §V is
// stated against such an oracle before Algorithms 3 and 4 replace it with
// sampling.
//
// Three implementations:
//
//   - Exact: enumerates all 2^m realizations. Exponential; for the tiny
//     graphs in tests and the Fig. 1 worked example (m ≤ ~20) it is the
//     ground truth everything else is validated against.
//   - MonteCarlo: averages forward simulations; an (ε,δ)-approximate
//     stand-in for the oracle on larger graphs, with memoization keyed on
//     the residual version and seed set.
//   - RIS: estimates through an RR-set collection maintained per residual
//     version; cheapest, used by ADG on graphs too large for Exact. With
//     SetReuse it validity-filters the cached collection on residual
//     changes (ris.Collection.Filter) and regenerates only the shortfall,
//     the same cross-round reuse the sampling algorithms apply; see
//     SetReuse for the root-mix caveat that keeps it opt-in.
//
// All oracles answer on residual views so ADG can query E[I_{G_i}(·)]
// round by round.
package oracle
