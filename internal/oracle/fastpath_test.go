package oracle

import (
	"math"
	"testing"

	"repro/internal/cascade"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// uniformFig1 is the worked example's topology with one shared edge
// probability, so the graph compresses (graph.InUniform) and RR sampling
// takes the table/jump fast paths while staying small enough for exact
// enumeration (m = 10 <= MaxExactEdges).
func uniformFig1(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(7, true)
	for _, e := range [][2]graph.NodeID{
		{0, 1}, {1, 2}, {1, 3}, {3, 2}, {2, 4},
		{4, 5}, {5, 4}, {5, 6}, {6, 0}, {4, 0},
	} {
		if err := b.AddArc(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.ApplyUniformProbability(0.3); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !g.InUniform() {
		t.Fatal("uniform graph did not compress")
	}
	return g
}

// TestFastICMatchesExactOracle: the RIS estimate over fast-path RR sets
// must agree with exact world enumeration on the uniform worked example.
func TestFastICMatchesExactOracle(t *testing.T) {
	g := uniformFig1(t)
	exact, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	res := graph.NewResidual(g)
	const theta = 300000
	col := ris.GenerateParallel(res, cascade.IC, rng.New(17), theta, 1)
	for _, seed := range []graph.NodeID{0, 1, 4, 5} {
		want := exact.ExpectedSpread(res, []graph.NodeID{seed})
		got := ris.EstimateSpread(col.Cov([]graph.NodeID{seed}), col.Len(), g.N())
		if math.Abs(got-want) > 0.03 {
			t.Errorf("seed %d: RIS %.4f vs exact %.4f", seed, got, want)
		}
	}
}

// exactLTSpread enumerates the LT triggering model directly: every node
// independently picks one in-parent (edge (u,v) with probability p(u,v))
// or none, and the spread is the reachable set over picked edges. This is
// an independent reference for both the reverse (ris) and forward
// (cascade.Sample) LT fast paths.
func exactLTSpread(g *graph.Graph, seeds []graph.NodeID) float64 {
	n := g.N()
	type choice struct {
		parent graph.NodeID // -1 = no pick
		prob   float64
	}
	options := make([][]choice, n)
	for v := 0; v < n; v++ {
		srcs, ps := g.InNeighbors(graph.NodeID(v))
		rest := 1.0
		for i, u := range srcs {
			options[v] = append(options[v], choice{parent: u, prob: ps[i]})
			rest -= ps[i]
		}
		options[v] = append(options[v], choice{parent: -1, prob: rest})
	}
	total := 0.0
	picked := make([]graph.NodeID, n)
	var walk func(v int, p float64)
	walk = func(v int, p float64) {
		if p == 0 {
			return
		}
		if v == n {
			// Spread = nodes reachable from seeds along picked edges.
			visited := make([]bool, n)
			stack := append([]graph.NodeID(nil), seeds...)
			count := 0
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if visited[u] {
					continue
				}
				visited[u] = true
				count++
				for w := 0; w < n; w++ {
					if picked[w] == u && !visited[graph.NodeID(w)] {
						stack = append(stack, graph.NodeID(w))
					}
				}
			}
			total += p * float64(count)
			return
		}
		for _, c := range options[v] {
			picked[v] = c.parent
			walk(v+1, p*c.prob)
		}
	}
	walk(0, 1)
	return total
}

// TestFastLTMatchesExactEnumeration checks the LT fast paths (reverse RR
// sampling and forward realization sampling) against direct enumeration
// of the pick space on a small uniform graph.
func TestFastLTMatchesExactEnumeration(t *testing.T) {
	// 5 nodes, uniform p = 0.25; node 3 has in-degree 3 (sum 0.75 <= 1).
	b := graph.NewBuilder(5, true)
	for _, e := range [][2]graph.NodeID{{0, 3}, {1, 3}, {2, 3}, {3, 4}, {4, 0}} {
		if err := b.AddArc(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.ApplyUniformProbability(0.25); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !g.InUniform() {
		t.Fatal("uniform graph did not compress")
	}
	res := graph.NewResidual(g)
	const theta = 400000
	col := ris.GenerateParallel(res, cascade.LT, rng.New(19), theta, 1)
	for _, seed := range []graph.NodeID{0, 1, 3} {
		want := exactLTSpread(g, []graph.NodeID{seed})
		got := ris.EstimateSpread(col.Cov([]graph.NodeID{seed}), col.Len(), g.N())
		if math.Abs(got-want) > 0.03 {
			t.Errorf("seed %d: reverse LT %.4f vs exact %.4f", seed, got, want)
		}
		mc := cascade.MonteCarloSpread(g, cascade.LT, []graph.NodeID{seed}, 200000, rng.New(23))
		if math.Abs(mc-want) > 0.03 {
			t.Errorf("seed %d: forward LT %.4f vs exact %.4f", seed, mc, want)
		}
	}
}
