package cascade

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Spread returns I_φ(S): the number of nodes reachable from S along live
// edges of the realization. Seeds count themselves.
func Spread(rz *Realization, seeds []graph.NodeID) int {
	visited := make([]bool, rz.g.N())
	return spreadInto(rz, seeds, nil, visited, nil)
}

// SpreadOn returns the spread of seeds restricted to a residual view:
// removed nodes neither activate nor relay influence. Seeds that are not
// alive contribute nothing.
func SpreadOn(rz *Realization, res *graph.Residual, seeds []graph.NodeID) int {
	visited := make([]bool, rz.g.N())
	return spreadInto(rz, seeds, res, visited, nil)
}

// Activated returns A(S): the exact set of nodes activated by seeding S
// under the realization, restricted to the residual view if res != nil.
// The result includes the (alive) seeds themselves, in BFS order.
func Activated(rz *Realization, res *graph.Residual, seeds []graph.NodeID) []graph.NodeID {
	visited := make([]bool, rz.g.N())
	out := make([]graph.NodeID, 0, 16)
	spreadInto(rz, seeds, res, visited, &out)
	return out
}

// spreadInto runs the BFS shared by Spread/SpreadOn/Activated. It returns
// the number of activated nodes; when sink is non-nil the activated nodes
// are appended to it.
func spreadInto(rz *Realization, seeds []graph.NodeID, res *graph.Residual, visited []bool, sink *[]graph.NodeID) int {
	queue := make([]graph.NodeID, 0, len(seeds))
	count := 0
	push := func(u graph.NodeID) {
		if visited[u] {
			return
		}
		if res != nil && !res.Alive(u) {
			return
		}
		visited[u] = true
		count++
		queue = append(queue, u)
		if sink != nil {
			*sink = append(*sink, u)
		}
	}
	for _, s := range seeds {
		push(s)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range rz.LiveOut(u) {
			push(v)
		}
	}
	return count
}

// MonteCarloSpread estimates E[I(S)] on g by averaging Spread over reps
// fresh realizations. Deterministic given r's state.
func MonteCarloSpread(g *graph.Graph, model Model, seeds []graph.NodeID, reps int, r *rng.RNG) float64 {
	if reps <= 0 {
		panic("cascade: MonteCarloSpread needs reps > 0")
	}
	total := 0
	for i := 0; i < reps; i++ {
		rz := Sample(g, model, r)
		total += Spread(rz, seeds)
	}
	return float64(total) / float64(reps)
}

// MonteCarloSpreadOn estimates the expected spread of seeds on a residual
// view of g. Realizations are drawn on the full graph; dead nodes are
// excluded from activation, which matches the paper's E[I_{G_i}(·)]
// because live edges incident to dead nodes can never fire.
func MonteCarloSpreadOn(res *graph.Residual, model Model, seeds []graph.NodeID, reps int, r *rng.RNG) float64 {
	if reps <= 0 {
		panic("cascade: MonteCarloSpreadOn needs reps > 0")
	}
	g := res.Graph()
	total := 0
	for i := 0; i < reps; i++ {
		rz := Sample(g, model, r)
		total += SpreadOn(rz, res, seeds)
	}
	return float64(total) / float64(reps)
}
