// Package cascade implements influence propagation: sampling realizations
// (the paper's possible worlds φ), running forward cascades under a fixed
// realization, observing per-seed activations A(u) on residual graphs, and
// Monte-Carlo spread estimation.
//
// Both the Independent Cascade (IC) model — the paper's model — and the
// Linear Threshold (LT) model are supported. Both are triggering models,
// so realizations, reverse-reachable sets and all concentration bounds
// carry over between them unchanged.
package cascade

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Model selects the diffusion model.
type Model int

const (
	// IC is the Independent Cascade model: each edge (u,v) is live
	// independently with probability p(u,v).
	IC Model = iota
	// LT is the Linear Threshold model in its triggering form: each node v
	// picks at most one live in-edge, edge (u,v) with probability p(u,v)
	// (requires sum of in-probabilities <= 1, which the weighted-cascade
	// weighting guarantees).
	LT
)

func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Realization is one possible world φ: the subgraph of live edges. It is
// stored as a CSR over live out-edges for O(outdeg) forward traversal.
type Realization struct {
	g      *graph.Graph
	model  Model
	outIdx []int32
	outAdj []graph.NodeID
}

// Sample draws a realization of g under the given model using r.
//
// For IC, each edge flips its own coin. For LT, each node selects at most
// one in-neighbor with the edge's probability (and none with the residual
// probability mass).
func Sample(g *graph.Graph, model Model, r *rng.RNG) *Realization {
	switch model {
	case IC:
		return sampleIC(g, r)
	case LT:
		return sampleLT(g, r)
	default:
		panic(fmt.Sprintf("cascade: unknown model %v", model))
	}
}

func sampleIC(g *graph.Graph, r *rng.RNG) *Realization {
	n := g.N()
	rz := &Realization{g: g, model: IC, outIdx: make([]int32, n+1)}
	live := make([]graph.NodeID, 0, g.M()/2)
	for u := 0; u < n; u++ {
		adj, ps := g.OutNeighbors(graph.NodeID(u))
		for i, v := range adj {
			if r.Coin(ps[i]) {
				live = append(live, v)
			}
		}
		rz.outIdx[u+1] = int32(len(live))
	}
	rz.outAdj = live
	return rz
}

func sampleLT(g *graph.Graph, r *rng.RNG) *Realization {
	n := g.N()
	// Each node picks at most one live in-edge; build the live edge set as
	// (picked-source -> node), then convert to out-CSR.
	pickedFrom := make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		pickedFrom[v] = -1
		if srcs, p, ok := g.InNeighborsUniform(graph.NodeID(v)); ok {
			// Uniform in-probability: the prefix scan inverts to one
			// division (rng.PrefixPick, shared with the reverse sampler).
			if len(srcs) == 0 {
				continue
			}
			if idx := r.PrefixPick(p, len(srcs)); idx >= 0 {
				pickedFrom[v] = srcs[idx]
			}
			continue
		}
		srcs, ps := g.InNeighbors(graph.NodeID(v))
		x := r.Float64()
		acc := 0.0
		for i, u := range srcs {
			acc += ps[i]
			if x < acc {
				pickedFrom[v] = u
				break
			}
		}
	}
	outDeg := make([]int32, n+1)
	for v := 0; v < n; v++ {
		if u := pickedFrom[v]; u >= 0 {
			outDeg[u+1]++
		}
	}
	rz := &Realization{g: g, model: LT, outIdx: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		rz.outIdx[u+1] = rz.outIdx[u] + outDeg[u+1]
	}
	rz.outAdj = make([]graph.NodeID, rz.outIdx[n])
	cursor := make([]int32, n)
	for v := 0; v < n; v++ {
		if u := pickedFrom[v]; u >= 0 {
			rz.outAdj[rz.outIdx[u]+cursor[u]] = graph.NodeID(v)
			cursor[u]++
		}
	}
	return rz
}

// FromLiveEdges builds a realization from an explicit live-edge list.
// Used by tests and by the exact oracle's world enumeration.
func FromLiveEdges(g *graph.Graph, live []graph.Edge) *Realization {
	n := g.N()
	rz := &Realization{g: g, model: IC, outIdx: make([]int32, n+1)}
	perNode := make([][]graph.NodeID, n)
	for _, e := range live {
		perNode[e.From] = append(perNode[e.From], e.To)
	}
	for u := 0; u < n; u++ {
		rz.outAdj = append(rz.outAdj, perNode[u]...)
		rz.outIdx[u+1] = int32(len(rz.outAdj))
	}
	return rz
}

// Graph returns the underlying graph.
func (rz *Realization) Graph() *graph.Graph { return rz.g }

// Model returns the diffusion model the realization was drawn under.
func (rz *Realization) Model() Model { return rz.model }

// LiveOut returns the live out-neighbors of u under this realization.
// The slice aliases internal storage.
func (rz *Realization) LiveOut(u graph.NodeID) []graph.NodeID {
	return rz.outAdj[rz.outIdx[u]:rz.outIdx[u+1]]
}

// LiveEdgeCount returns the number of live edges.
func (rz *Realization) LiveEdgeCount() int { return len(rz.outAdj) }
