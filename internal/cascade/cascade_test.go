package cascade

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// fig1Graph builds the paper's Fig. 1(a) graph (v1..v7 -> 0..6).
func fig1Graph() *graph.Graph {
	return graph.MustFromEdges(7, true, []graph.Edge{
		{From: 0, To: 1, P: 0.4},
		{From: 1, To: 2, P: 0.8},
		{From: 1, To: 3, P: 0.7},
		{From: 3, To: 2, P: 0.6},
		{From: 2, To: 4, P: 0.5},
		{From: 4, To: 5, P: 0.3},
		{From: 5, To: 4, P: 0.7},
		{From: 5, To: 6, P: 0.6},
		{From: 6, To: 0, P: 0.2},
		{From: 4, To: 0, P: 0.7},
	})
}

// fig1Realization reproduces the realization of Fig. 1(b)-(d): v2
// activates v3 and v4 (edges v2->v3, v2->v4, v4->v3 live; v3->v5 dead),
// v6 activates v5 and v7 (v6->v5, v6->v7 live; v5->v1, v7->v1 dead).
func fig1Realization() *Realization {
	return FromLiveEdges(fig1Graph(), []graph.Edge{
		{From: 1, To: 2}, // v2 -> v3
		{From: 1, To: 3}, // v2 -> v4
		{From: 3, To: 2}, // v4 -> v3
		{From: 5, To: 4}, // v6 -> v5
		{From: 5, To: 6}, // v6 -> v7
	})
}

func TestSpreadFig1WorkedExample(t *testing.T) {
	rz := fig1Realization()
	// Adaptive run of the paper: seeding v2 activates {v2,v3,v4}.
	if got := Spread(rz, []graph.NodeID{1}); got != 3 {
		t.Fatalf("I_φ({v2}) = %d, want 3", got)
	}
	// Seeding v6 activates {v6,v5,v7}.
	if got := Spread(rz, []graph.NodeID{5}); got != 3 {
		t.Fatalf("I_φ({v6}) = %d, want 3", got)
	}
	// Adaptive solution {v2,v6}: spread 6, profit 6 - 3 = 3.
	if got := Spread(rz, []graph.NodeID{1, 5}); got != 6 {
		t.Fatalf("I_φ({v2,v6}) = %d, want 6", got)
	}
	// Nonadaptive solution {v1,v2,v6}: spread 7, profit 7 - 4.5 = 2.5.
	if got := Spread(rz, []graph.NodeID{0, 1, 5}); got != 7 {
		t.Fatalf("I_φ({v1,v2,v6}) = %d, want 7", got)
	}
}

func TestActivatedFig1(t *testing.T) {
	rz := fig1Realization()
	res := graph.NewResidual(rz.Graph())
	a := Activated(rz, res, []graph.NodeID{1})
	want := map[graph.NodeID]bool{1: true, 2: true, 3: true}
	if len(a) != len(want) {
		t.Fatalf("A(v2) = %v", a)
	}
	for _, u := range a {
		if !want[u] {
			t.Fatalf("A(v2) contains unexpected node %d", u)
		}
	}
	// Remove A(v2) and observe the second seed on the residual graph.
	res.RemoveAll(a)
	a2 := Activated(rz, res, []graph.NodeID{5})
	want2 := map[graph.NodeID]bool{5: true, 4: true, 6: true}
	if len(a2) != len(want2) {
		t.Fatalf("A(v6) on G2 = %v", a2)
	}
	for _, u := range a2 {
		if !want2[u] {
			t.Fatalf("A(v6) contains unexpected node %d", u)
		}
	}
}

func TestSpreadOnResidualExcludesDeadNodes(t *testing.T) {
	rz := fig1Realization()
	res := graph.NewResidual(rz.Graph())
	res.Remove(2) // kill v3
	// v2's cascade is v2 -> {v3, v4}; with v3 dead the spread is {v2, v4}.
	if got := SpreadOn(rz, res, []graph.NodeID{1}); got != 2 {
		t.Fatalf("spread with v3 removed = %d, want 2", got)
	}
	// A dead seed contributes nothing.
	if got := SpreadOn(rz, res, []graph.NodeID{2}); got != 0 {
		t.Fatalf("dead seed spread = %d, want 0", got)
	}
}

func TestDeadNodeDoesNotRelay(t *testing.T) {
	// Chain 0 -> 1 -> 2, all live; removing 1 must cut 2 off.
	g := graph.MustFromEdges(3, true, []graph.Edge{
		{From: 0, To: 1, P: 1}, {From: 1, To: 2, P: 1},
	})
	rz := FromLiveEdges(g, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	res := graph.NewResidual(g)
	res.Remove(1)
	if got := SpreadOn(rz, res, []graph.NodeID{0}); got != 1 {
		t.Fatalf("spread through dead relay = %d, want 1", got)
	}
}

func TestSpreadDuplicateSeeds(t *testing.T) {
	rz := fig1Realization()
	a := Spread(rz, []graph.NodeID{1, 1, 1})
	b := Spread(rz, []graph.NodeID{1})
	if a != b {
		t.Fatalf("duplicate seeds changed spread: %d vs %d", a, b)
	}
}

func TestSpreadEmptySeeds(t *testing.T) {
	rz := fig1Realization()
	if got := Spread(rz, nil); got != 0 {
		t.Fatalf("spread of empty seed set = %d", got)
	}
}

func TestSampleICDeterministic(t *testing.T) {
	g := fig1Graph()
	a := Sample(g, IC, rng.New(9))
	b := Sample(g, IC, rng.New(9))
	if a.LiveEdgeCount() != b.LiveEdgeCount() {
		t.Fatal("same seed gave different realizations")
	}
	for u := graph.NodeID(0); u < 7; u++ {
		la, lb := a.LiveOut(u), b.LiveOut(u)
		if len(la) != len(lb) {
			t.Fatal("same seed gave different live sets")
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatal("same seed gave different live sets")
			}
		}
	}
}

func TestSampleICEdgeFrequency(t *testing.T) {
	// Each edge must be live with its own probability.
	g := fig1Graph()
	r := rng.New(33)
	const reps = 20000
	liveCount := make(map[[2]graph.NodeID]int)
	for i := 0; i < reps; i++ {
		rz := Sample(g, IC, r)
		for u := graph.NodeID(0); u < 7; u++ {
			for _, v := range rz.LiveOut(u) {
				liveCount[[2]graph.NodeID{u, v}]++
			}
		}
	}
	for _, e := range g.Edges() {
		got := float64(liveCount[[2]graph.NodeID{e.From, e.To}]) / reps
		if math.Abs(got-e.P) > 0.02 {
			t.Errorf("edge (%d,%d): live frequency %.3f, want %.2f", e.From, e.To, got, e.P)
		}
	}
}

func TestSampleLTOneParentPerNode(t *testing.T) {
	g := fig1Graph()
	r := rng.New(14)
	for i := 0; i < 200; i++ {
		rz := Sample(g, LT, r)
		inCount := make(map[graph.NodeID]int)
		for u := graph.NodeID(0); u < 7; u++ {
			for _, v := range rz.LiveOut(u) {
				inCount[v]++
			}
		}
		for v, c := range inCount {
			if c > 1 {
				t.Fatalf("LT realization gave node %d %d live in-edges", v, c)
			}
		}
	}
}

func TestSampleLTParentFrequency(t *testing.T) {
	// Node v3 (id 2) has in-edges from v2 (p=0.8) and v4 (p=0.6)? No:
	// weighted-cascade is not applied here, so in-probabilities may exceed
	// 1. Build a small LT-safe graph instead.
	g := graph.MustFromEdges(3, true, []graph.Edge{
		{From: 0, To: 2, P: 0.5},
		{From: 1, To: 2, P: 0.25},
	})
	r := rng.New(91)
	const reps = 40000
	from0, from1, none := 0, 0, 0
	for i := 0; i < reps; i++ {
		rz := Sample(g, LT, r)
		l0 := len(rz.LiveOut(0))
		l1 := len(rz.LiveOut(1))
		switch {
		case l0 == 1 && l1 == 0:
			from0++
		case l0 == 0 && l1 == 1:
			from1++
		case l0 == 0 && l1 == 0:
			none++
		default:
			t.Fatal("node 2 has two live in-edges under LT")
		}
	}
	if got := float64(from0) / reps; math.Abs(got-0.5) > 0.02 {
		t.Errorf("P(parent=0) = %.3f, want 0.5", got)
	}
	if got := float64(from1) / reps; math.Abs(got-0.25) > 0.02 {
		t.Errorf("P(parent=1) = %.3f, want 0.25", got)
	}
	if got := float64(none) / reps; math.Abs(got-0.25) > 0.02 {
		t.Errorf("P(no parent) = %.3f, want 0.25", got)
	}
}

func TestMonteCarloSpreadSingleNodeChain(t *testing.T) {
	// 0 -> 1 with p: E[I({0})] = 1 + p.
	for _, p := range []float64{0.2, 0.5, 0.9} {
		g := graph.MustFromEdges(2, true, []graph.Edge{{From: 0, To: 1, P: p}})
		got := MonteCarloSpread(g, IC, []graph.NodeID{0}, 50000, rng.New(5))
		want := 1 + p
		if math.Abs(got-want) > 0.02 {
			t.Errorf("p=%v: MC spread %.3f, want %.3f", p, got, want)
		}
	}
}

func TestMonteCarloSpreadTwoHop(t *testing.T) {
	// 0 -> 1 -> 2 with p1, p2: E[I({0})] = 1 + p1 + p1*p2.
	p1, p2 := 0.6, 0.5
	g := graph.MustFromEdges(3, true, []graph.Edge{
		{From: 0, To: 1, P: p1}, {From: 1, To: 2, P: p2},
	})
	got := MonteCarloSpread(g, IC, []graph.NodeID{0}, 100000, rng.New(6))
	want := 1 + p1 + p1*p2
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("MC spread %.3f, want %.3f", got, want)
	}
}

func TestMonteCarloSpreadFig1TargetSet(t *testing.T) {
	// The paper states E[I_G1({v1,v2,v6})] = 6.16. Under our transcription
	// of Fig. 1(a)'s edge probabilities the exact value, computed by hand
	// (seeds 3 + P(v4)=0.7 + P(v3)=0.884 + P(v5)=0.8326 + P(v7)=0.6), is
	// 6.0166; the figure's probability-to-edge assignment is ambiguous in
	// the text-only paper dump. The worked example's realization-specific
	// profits (3 adaptive vs 2.5 nonadaptive) are transcription-independent
	// and tested above.
	g := fig1Graph()
	got := MonteCarloSpread(g, IC, []graph.NodeID{0, 1, 5}, 200000, rng.New(77))
	if math.Abs(got-6.0166) > 0.03 {
		t.Fatalf("E[I({v1,v2,v6})] = %.3f, want 6.0166 exactly", got)
	}
}

func TestMonteCarloSpreadOnResidual(t *testing.T) {
	// Chain 0 -> 1 -> 2 with all p = 1; removing node 1 leaves spread 1.
	g := graph.MustFromEdges(3, true, []graph.Edge{
		{From: 0, To: 1, P: 1}, {From: 1, To: 2, P: 1},
	})
	res := graph.NewResidual(g)
	res.Remove(1)
	got := MonteCarloSpreadOn(res, IC, []graph.NodeID{0}, 100, rng.New(2))
	if got != 1 {
		t.Fatalf("residual MC spread = %v, want 1", got)
	}
}

func TestMonteCarloPanicsOnZeroReps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on reps=0")
		}
	}()
	MonteCarloSpread(fig1Graph(), IC, nil, 0, rng.New(1))
}

func TestModelString(t *testing.T) {
	if IC.String() != "IC" || LT.String() != "LT" {
		t.Fatal("model names wrong")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown model name empty")
	}
}
