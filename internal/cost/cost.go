// Package cost implements the paper's seeding-cost models (§VI-A).
//
// Two procedures assign costs:
//
//  1. Spread-calibrated: a target set T is chosen first, a lower bound
//     E_l[I(T)] of its expected spread is estimated, and the total budget
//     c(T) = E_l[I(T)] is distributed over T either proportionally to
//     out-degree, uniformly, or at random. Under this calibration the
//     baseline profit ρ(T) = E[I(T)] − c(T) ≥ 0, the nonnegativity
//     assumption the approximation guarantees need.
//  2. Predefined-λ: every node of V gets a cost first (λ = c(V)/n fixes
//     the total), then the target set is derived by running a nonadaptive
//     profit algorithm. Per-node distribution is again degree-proportional
//     or uniform.
package cost

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Setting selects the per-node cost distribution.
type Setting int

const (
	// DegreeProportional distributes the budget proportionally to each
	// node's out-degree (nodes with zero out-degree get the minimum share;
	// see Assign).
	DegreeProportional Setting = iota
	// Uniform gives every node the same cost.
	Uniform
	// Random distributes the budget by normalized uniform random weights.
	Random
)

func (s Setting) String() string {
	switch s {
	case DegreeProportional:
		return "degree-proportional"
	case Uniform:
		return "uniform"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("setting(%d)", int(s))
	}
}

// Model maps nodes to seeding costs. Nodes without an assigned cost are
// free only in the sense of Cost returning 0; algorithms only query nodes
// in their target set, which always have costs.
type Model struct {
	costs map[graph.NodeID]float64
}

// Cost returns c(u).
func (m *Model) Cost(u graph.NodeID) float64 { return m.costs[u] }

// Total returns c(S) = Σ_{u∈S} c(u).
func (m *Model) Total(s []graph.NodeID) float64 {
	t := 0.0
	for _, u := range s {
		t += m.costs[u]
	}
	return t
}

// Len returns the number of nodes with assigned costs.
func (m *Model) Len() int { return len(m.costs) }

// Assign distributes the total budget over the nodes of set per the
// setting. Degree-proportional weights use out-degree + 1 so zero-degree
// nodes still carry cost (a free seed would break the unconstrained-
// submodular analysis and does not occur in the paper's setups).
func Assign(g *graph.Graph, set []graph.NodeID, total float64, setting Setting, r *rng.RNG) (*Model, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("cost: empty node set")
	}
	if total <= 0 {
		return nil, fmt.Errorf("cost: total budget %v must be positive", total)
	}
	weights := make([]float64, len(set))
	switch setting {
	case DegreeProportional:
		for i, u := range set {
			weights[i] = float64(g.OutDegree(u) + 1)
		}
	case Uniform:
		for i := range set {
			weights[i] = 1
		}
	case Random:
		if r == nil {
			return nil, fmt.Errorf("cost: random setting needs an RNG")
		}
		for i := range set {
			// Strictly positive weights so no node is free.
			weights[i] = r.Float64() + 1e-9
		}
	default:
		return nil, fmt.Errorf("cost: unknown setting %v", setting)
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	m := &Model{costs: make(map[graph.NodeID]float64, len(set))}
	for i, u := range set {
		m.costs[u] = total * weights[i] / sum
	}
	return m, nil
}

// AssignLambda implements the predefined-cost procedure: every node in V
// receives a cost such that c(V) = λ·n, distributed per the setting.
func AssignLambda(g *graph.Graph, lambda float64, setting Setting, r *rng.RNG) (*Model, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("cost: lambda %v must be positive", lambda)
	}
	all := make([]graph.NodeID, g.N())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	return Assign(g, all, lambda*float64(g.N()), setting, r)
}
