package cost

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func starGraph() *graph.Graph {
	// Node 0 has out-degree 3; nodes 1..3 have out-degree 0.
	return graph.MustFromEdges(4, true, []graph.Edge{
		{From: 0, To: 1, P: 0.5},
		{From: 0, To: 2, P: 0.5},
		{From: 0, To: 3, P: 0.5},
	})
}

func TestAssignUniform(t *testing.T) {
	g := starGraph()
	set := []graph.NodeID{0, 1, 2, 3}
	m, err := Assign(g, set, 8, Uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range set {
		if m.Cost(u) != 2 {
			t.Fatalf("uniform cost of %d = %v, want 2", u, m.Cost(u))
		}
	}
	if m.Total(set) != 8 {
		t.Fatalf("total = %v, want 8", m.Total(set))
	}
}

func TestAssignDegreeProportional(t *testing.T) {
	g := starGraph()
	set := []graph.NodeID{0, 1}
	m, err := Assign(g, set, 6, DegreeProportional, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Weights are outdeg+1: node 0 -> 4, node 1 -> 1; shares 4/5 and 1/5.
	if got := m.Cost(0); math.Abs(got-4.8) > 1e-12 {
		t.Fatalf("cost(0) = %v, want 4.8", got)
	}
	if got := m.Cost(1); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("cost(1) = %v, want 1.2", got)
	}
	if math.Abs(m.Total(set)-6) > 1e-12 {
		t.Fatalf("total = %v, want 6", m.Total(set))
	}
}

func TestAssignRandom(t *testing.T) {
	g := starGraph()
	set := []graph.NodeID{0, 1, 2, 3}
	m, err := Assign(g, set, 10, Random, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Total(set)-10) > 1e-9 {
		t.Fatalf("total = %v, want 10", m.Total(set))
	}
	for _, u := range set {
		if m.Cost(u) <= 0 {
			t.Fatalf("random cost of %d = %v, want positive", u, m.Cost(u))
		}
	}
	// Determinism.
	m2, _ := Assign(g, set, 10, Random, rng.New(3))
	for _, u := range set {
		if m.Cost(u) != m2.Cost(u) {
			t.Fatal("random assignment not deterministic under fixed seed")
		}
	}
}

func TestAssignErrors(t *testing.T) {
	g := starGraph()
	if _, err := Assign(g, nil, 5, Uniform, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Assign(g, []graph.NodeID{0}, 0, Uniform, nil); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Assign(g, []graph.NodeID{0}, -1, Uniform, nil); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := Assign(g, []graph.NodeID{0}, 5, Random, nil); err == nil {
		t.Error("random without RNG accepted")
	}
	if _, err := Assign(g, []graph.NodeID{0}, 5, Setting(42), nil); err == nil {
		t.Error("unknown setting accepted")
	}
}

func TestAssignLambda(t *testing.T) {
	g := starGraph()
	m, err := AssignLambda(g, 2.5, Uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != g.N() {
		t.Fatalf("lambda model covers %d nodes, want %d", m.Len(), g.N())
	}
	all := []graph.NodeID{0, 1, 2, 3}
	if got := m.Total(all); math.Abs(got-10) > 1e-12 {
		t.Fatalf("c(V) = %v, want λ·n = 10", got)
	}
	if _, err := AssignLambda(g, 0, Uniform, nil); err == nil {
		t.Error("lambda = 0 accepted")
	}
}

func TestCostOfUnassignedNodeIsZero(t *testing.T) {
	g := starGraph()
	m, _ := Assign(g, []graph.NodeID{0}, 5, Uniform, nil)
	if m.Cost(3) != 0 {
		t.Fatalf("unassigned node cost = %v", m.Cost(3))
	}
}

func TestSettingString(t *testing.T) {
	if DegreeProportional.String() != "degree-proportional" ||
		Uniform.String() != "uniform" || Random.String() != "random" {
		t.Fatal("setting names wrong")
	}
	if Setting(9).String() == "" {
		t.Fatal("unknown setting name empty")
	}
}
