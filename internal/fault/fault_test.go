package fault

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// withInjector installs inj for the test body and guarantees removal.
func withInjector(t *testing.T, inj *Injector) {
	t.Helper()
	prev := Enable(inj)
	t.Cleanup(func() { Enable(prev) })
}

func TestCheckNoInjectorIsNil(t *testing.T) {
	Disable()
	for _, site := range Sites {
		if err := Check(site); err != nil {
			t.Fatalf("Check(%s) with no injector = %v", site, err)
		}
	}
}

func TestNthTriggerFiresExactlyOnce(t *testing.T) {
	withInjector(t, New(1, Rule{Site: SiteBatcherGrow, Mode: ModeError, Nth: 3}))
	for i := 1; i <= 10; i++ {
		err := Check(SiteBatcherGrow)
		if (err != nil) != (i == 3) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		if err != nil {
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != SiteBatcherGrow || fe.Hit != 3 {
				t.Fatalf("hit %d: error detail %#v", i, err)
			}
		}
	}
	if got := Active().Fired(SiteBatcherGrow); got != 1 {
		t.Fatalf("fired %d times, want 1", got)
	}
}

func TestEveryTriggerFiresPeriodically(t *testing.T) {
	withInjector(t, New(1, Rule{Site: SiteJournalAppend, Mode: ModeError, Every: 4}))
	var fired []int
	for i := 1; i <= 12; i++ {
		if Check(SiteJournalAppend) != nil {
			fired = append(fired, i)
		}
	}
	if want := []int{4, 8, 12}; fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
}

func TestProbabilityTriggerIsDeterministicInSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		inj := New(seed, Rule{Site: SiteBatcherGrow, Mode: ModeError, P: 0.5})
		prev := Enable(inj)
		defer Enable(prev)
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check(SiteBatcherGrow) != nil
		}
		return out
	}
	a, b := run(7), run(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fault schedules")
	}
	c := run(8)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical 64-hit schedules (suspicious)")
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 fired %d/64 times", fires)
	}
}

func TestPanicModePanicsWithTypedError(t *testing.T) {
	withInjector(t, New(1, Rule{Site: SiteRegistryPrepare, Mode: ModePanic, Nth: 1}))
	defer func() {
		p := recover()
		fe, ok := p.(*Error)
		if !ok || fe.Mode != ModePanic || fe.Site != SiteRegistryPrepare {
			t.Fatalf("recovered %#v, want injected panic Error", p)
		}
	}()
	_ = Check(SiteRegistryPrepare)
	t.Fatal("Check did not panic")
}

func TestTornWritePersistsStrictPrefix(t *testing.T) {
	withInjector(t, New(3, Rule{Site: SiteCheckpointWrite, Mode: ModeTorn, Nth: 1}))
	var buf bytes.Buffer
	data := []byte("0123456789abcdef")
	n, err := Write(SiteCheckpointWrite, &buf, data)
	if err == nil {
		t.Fatal("torn write returned nil error")
	}
	if n != buf.Len() || n >= len(data) {
		t.Fatalf("torn write persisted %d bytes (buffer %d, full %d)", n, buf.Len(), len(data))
	}
	if !bytes.Equal(buf.Bytes(), data[:n]) {
		t.Fatal("torn write persisted non-prefix bytes")
	}
	// After the rule is spent, writes pass through untouched.
	buf.Reset()
	if n, err := Write(SiteCheckpointWrite, &buf, data); err != nil || n != len(data) {
		t.Fatalf("post-fault write = (%d, %v)", n, err)
	}
}

func TestTornDegradesToErrorOutsideWrite(t *testing.T) {
	withInjector(t, New(1, Rule{Site: SiteBatcherGrow, Mode: ModeTorn, Nth: 1}))
	err := Check(SiteBatcherGrow)
	var fe *Error
	if !errors.As(err, &fe) || fe.Mode != ModeTorn {
		t.Fatalf("Check under torn rule = %v", err)
	}
}

func TestParseRoundTrips(t *testing.T) {
	spec := "ckpt.write=torn@every3,batcher.grow=error@p0.05,registry.prepare=panic@n1,journal.append=delay:50ms@n2"
	inj, err := Parse(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Spec() != spec {
		t.Fatalf("Spec() = %q, want round-trip of %q", inj.Spec(), spec)
	}
	if len(inj.rules) != 4 || inj.rules[3].Delay != 50*time.Millisecond {
		t.Fatalf("rules = %+v", inj.rules)
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"",
		"ckpt.write",
		"no-such-site=error@n1",
		"ckpt.write=explode@n1",
		"ckpt.write=error@n0",
		"ckpt.write=error@p1.5",
		"ckpt.write=error@every0",
		"ckpt.write=error@sometimes",
		"ckpt.write=delay:-3s@n1",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "batcher.grow=error@n2")
	t.Setenv(EnvSeedVar, "11")
	inj, err := FromEnv()
	if err != nil || inj == nil {
		t.Fatalf("FromEnv = (%v, %v)", inj, err)
	}
	t.Setenv(EnvVar, "")
	if inj, err := FromEnv(); inj != nil || err != nil {
		t.Fatalf("unset FromEnv = (%v, %v), want (nil, nil)", inj, err)
	}
	t.Setenv(EnvVar, "bad spec")
	if _, err := FromEnv(); err == nil {
		t.Fatal("malformed env spec accepted")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := Policy{Attempts: 4, Base: time.Microsecond, Cap: 10 * time.Microsecond}
	calls := 0
	err := p.Retry(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Retry = %v after %d calls", err, calls)
	}
}

func TestRetryExhaustsAndReturnsLastError(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Microsecond, Cap: 10 * time.Microsecond}
	calls := 0
	last := errors.New("still broken")
	if err := p.Retry(func() error { calls++; return last }); err != last || calls != 3 {
		t.Fatalf("Retry = %v after %d calls, want last error after 3", err, calls)
	}
}

func TestRetryMasksNthFaultAtWriteSite(t *testing.T) {
	// The canonical serving pattern: a periodic torn write is absorbed by
	// the retry loop because the retry is a fresh hit that does not fire.
	withInjector(t, New(5, Rule{Site: SiteJournalAppend, Mode: ModeTorn, Nth: 1}))
	var buf bytes.Buffer
	p := Policy{Attempts: 2, Base: time.Microsecond, Cap: time.Microsecond}
	data := []byte(`{"type":"cell"}` + "\n")
	err := p.Retry(func() error {
		if _, err := Write(SiteJournalAppend, &buf, data); err != nil {
			buf.Reset() // the caller's truncate-to-last-good-offset
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("buffer after masked fault = %q", buf.Bytes())
	}
}

func TestConcurrentChecksAreSafe(t *testing.T) {
	withInjector(t, New(1, Rule{Site: SiteBatcherGrow, Mode: ModeError, P: 0.3}))
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				_ = Check(SiteBatcherGrow)
				_, _ = Write(SiteJournalAppend, &bytes.Buffer{}, []byte("x"))
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := Active().Hits(SiteBatcherGrow); got != 8*200 {
		t.Fatalf("hits = %d, want %d", got, 8*200)
	}
}
