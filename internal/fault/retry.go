package fault

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// Policy bounds a Retry loop: up to Attempts tries, sleeping an
// exponentially growing, jittered backoff between them, capped at Cap.
type Policy struct {
	Attempts int           // total tries, including the first
	Base     time.Duration // first backoff before jitter
	Cap      time.Duration // backoff ceiling
}

// WritePolicy is the default policy for transient checkpoint/journal
// write failures: 4 tries over at most ~1s of cumulative backoff — long
// enough to ride out a stalled disk flush, short enough that a drain
// deadline still holds. Tests shrink it; serving code uses it as is.
var WritePolicy = Policy{Attempts: 4, Base: 10 * time.Millisecond, Cap: 250 * time.Millisecond}

// retryJitter randomizes backoff spacing so colliding writers decorrelate.
// Timing-only randomness: it influences when a retry runs, never what any
// retried operation computes, so result determinism is untouched.
var (
	retryJitterMu sync.Mutex
	retryJitter   = rng.New(uint64(time.Now().UnixNano()))
)

func jitter(max time.Duration) time.Duration {
	retryJitterMu.Lock()
	f := retryJitter.Float64()
	retryJitterMu.Unlock()
	return time.Duration(f * float64(max))
}

// Retry runs f until it succeeds or the policy is exhausted, backing off
// between failures (full jitter: each sleep is uniform in (0, backoff]).
// It retries clean errors only — a panic escapes immediately, because
// retrying a function that corrupted its own state compounds the damage.
// Returns nil on the first success, the last error otherwise.
func (p Policy) Retry(f func() error) error {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	backoff := p.Base
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(jitter(backoff))
			if backoff *= 2; backoff > p.Cap {
				backoff = p.Cap
			}
		}
		if err = f(); err == nil {
			return nil
		}
	}
	return err
}
