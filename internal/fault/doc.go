// Package fault is the repository's deterministic fault-injection plane:
// a seedable Injector firing at named sites threaded through the serving
// stack's failure-prone operations — checkpoint I/O, journal appends,
// instance preparation, RR batch top-ups — so the chaos suite (and a
// `REPRO_FAULTS` environment spec on a live binary) can exercise every
// error path the same way twice.
//
// Design constraints, in order:
//
//  1. Zero cost when off. Injection sites compile down to one atomic
//     pointer load (Check / Write on a nil injector); no site takes a
//     lock, allocates, or branches further unless an injector is active.
//  2. Deterministic. An Injector is seeded; probability triggers draw
//     from the repository's own PCG stream, and nth-call triggers count
//     site hits, so a fault schedule replays exactly.
//  3. Honest failure shapes. Modes mirror what real systems do: return
//     an error, panic (a bug in flight), delay (a stall), or tear a
//     write (partial bytes reach the file, then the error surfaces) —
//     the shape crash-only code must survive, not just clean errors.
//
// The package also hosts Retry, the jittered-exponential-backoff helper
// the checkpoint and journal writers use to absorb transient write
// failures; keeping it here means the fault schedule and the machinery
// that must mask it are tested as one unit.
package fault
