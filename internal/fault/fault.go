package fault

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Injection sites. Each names one failure-prone operation; the constant
// is the spelling a REPRO_FAULTS spec uses.
const (
	// SiteCheckpointWrite covers the byte write of a campaign checkpoint
	// (header + blob + checksum footer). Torn-capable.
	SiteCheckpointWrite = "ckpt.write"
	// SiteCheckpointSync covers the fsync of a freshly written checkpoint.
	SiteCheckpointSync = "ckpt.sync"
	// SiteCheckpointRename covers the atomic rename publishing a
	// checkpoint generation.
	SiteCheckpointRename = "ckpt.rename"
	// SiteJournalAppend covers one sweep-journal record append (write +
	// fsync). Torn-capable.
	SiteJournalAppend = "journal.append"
	// SiteRegistryPrepare covers sweep.Prepare inside the service
	// instance registry.
	SiteRegistryPrepare = "registry.prepare"
	// SiteBatcherGrow covers one RR-set batch top-up (ris.Batcher.GrowTo)
	// — the hot operation inside every campaign step.
	SiteBatcherGrow = "batcher.grow"
)

// Sites lists every known injection site (spec validation, chaos
// schedule generation).
var Sites = []string{
	SiteCheckpointWrite,
	SiteCheckpointSync,
	SiteCheckpointRename,
	SiteJournalAppend,
	SiteRegistryPrepare,
	SiteBatcherGrow,
}

// Mode is the failure shape a rule injects.
type Mode int

const (
	ModeError Mode = iota // the operation reports an injected error
	ModePanic             // the operation panics mid-flight
	ModeDelay             // the operation stalls for Rule.Delay first
	ModeTorn              // a write persists a prefix, then errors (non-write sites degrade to ModeError)
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeTorn:
		return "torn"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Rule arms one site with one failure. Triggers, checked per hit of the
// site, in precedence order: Nth fires on exactly the nth hit (1-based,
// once); Every fires on every multiple of Every; P fires with
// probability P per hit. A zero-trigger rule never fires.
type Rule struct {
	Site  string
	Mode  Mode
	Nth   int
	Every int
	P     float64
	Delay time.Duration // ModeDelay stall length
}

func (r Rule) trigger() string {
	switch {
	case r.Nth > 0:
		return fmt.Sprintf("n%d", r.Nth)
	case r.Every > 0:
		return fmt.Sprintf("every%d", r.Every)
	default:
		return fmt.Sprintf("p%g", r.P)
	}
}

func (r Rule) String() string {
	s := r.Site + "=" + r.Mode.String()
	if r.Mode == ModeDelay && r.Delay > 0 {
		s += ":" + r.Delay.String()
	}
	return s + "@" + r.trigger()
}

// Error is the error type every injected (non-panic) failure carries, so
// callers and tests can tell an injected fault from an organic one.
type Error struct {
	Site string
	Mode Mode
	Hit  int // which hit of the site fired
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at %s (hit %d)", e.Mode, e.Site, e.Hit)
}

// Injector evaluates rules against site hits. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	r     *rng.RNG
	rules []Rule
	hits  map[string]int
	fired map[string]int
	spec  string
}

// New builds an injector over rules, drawing probability triggers from a
// stream seeded with seed.
func New(seed uint64, rules ...Rule) *Injector {
	specs := make([]string, len(rules))
	for i, r := range rules {
		specs[i] = r.String()
	}
	return &Injector{
		r:     rng.New(seed),
		rules: rules,
		hits:  make(map[string]int),
		fired: make(map[string]int),
		spec:  joinSpecs(specs),
	}
}

func joinSpecs(specs []string) string {
	out := ""
	for i, s := range specs {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// Spec renders the injector's rule set in REPRO_FAULTS syntax.
func (inj *Injector) Spec() string { return inj.spec }

// Hits returns how many times site was evaluated.
func (inj *Injector) Hits(site string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.hits[site]
}

// Fired returns how many faults actually fired at site.
func (inj *Injector) Fired(site string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired[site]
}

// hit records one evaluation of site and returns the rule that fires, if
// any, plus the hit ordinal.
func (inj *Injector) hit(site string) (Rule, int, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.hits[site]++
	n := inj.hits[site]
	for _, rule := range inj.rules {
		if rule.Site != site && rule.Site != "*" {
			continue
		}
		fire := false
		switch {
		case rule.Nth > 0:
			fire = n == rule.Nth
		case rule.Every > 0:
			fire = n%rule.Every == 0
		case rule.P > 0:
			fire = inj.r.Float64() < rule.P
		}
		if fire {
			inj.fired[site]++
			return rule, n, true
		}
	}
	return Rule{}, n, false
}

// tornLen picks how many of n bytes a torn write persists: a uniform
// prefix in [0, n).
func (inj *Injector) tornLen(n int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return inj.r.Intn(n)
}

// ---------------------------------------------------------------------------
// Global activation. The active injector is one atomic pointer; when nil
// (the default), every site is a single predictable-branch load.

var active atomic.Pointer[Injector]

// observer, when set, is notified after every injection that fires —
// the bridge a metrics layer uses to count faults without the fault
// plane importing it. Called outside the injector mutex, possibly from
// many goroutines; the callback must be cheap and re-entrant.
var observer atomic.Pointer[func(site string)]

// SetObserver installs (or, with nil, removes) the fired-fault callback.
func SetObserver(f func(site string)) {
	if f == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&f)
}

// notifyFired reports one fired injection to the observer, if any.
func notifyFired(site string) {
	if p := observer.Load(); p != nil {
		(*p)(site)
	}
}

// Enable installs inj as the process-wide injector and returns the
// previous one (nil if none). Tests pair it with Disable.
func Enable(inj *Injector) *Injector {
	prev := active.Load()
	active.Store(inj)
	return prev
}

// Disable removes the process-wide injector.
func Disable() { active.Store(nil) }

// Active returns the installed injector, nil when faults are off.
func Active() *Injector { return active.Load() }

// Check evaluates site against the active injector: it returns an
// injected *Error, panics, or stalls, per the firing rule's mode — or
// returns nil (the overwhelmingly common path: one atomic load).
func Check(site string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	rule, n, fire := inj.hit(site)
	if !fire {
		return nil
	}
	notifyFired(site)
	switch rule.Mode {
	case ModePanic:
		panic(&Error{Site: site, Mode: ModePanic, Hit: n})
	case ModeDelay:
		time.Sleep(rule.Delay)
		return nil
	default: // ModeError; ModeTorn degrades to an error outside Write
		return &Error{Site: site, Mode: rule.Mode, Hit: n}
	}
}

// Write writes data to w through the fault plane. With no active
// injector (or no firing rule) it is exactly w.Write(data). A firing
// error rule writes nothing; a torn rule writes a strict prefix first —
// both then return an injected *Error, so the caller sees the
// partial-persist-then-fail shape a real crash mid-write leaves behind.
// Panic and delay rules behave as in Check.
func Write(site string, w io.Writer, data []byte) (int, error) {
	inj := active.Load()
	if inj == nil {
		return w.Write(data)
	}
	rule, n, fire := inj.hit(site)
	if !fire {
		return w.Write(data)
	}
	notifyFired(site)
	switch rule.Mode {
	case ModePanic:
		panic(&Error{Site: site, Mode: ModePanic, Hit: n})
	case ModeDelay:
		time.Sleep(rule.Delay)
		return w.Write(data)
	case ModeTorn:
		k := inj.tornLen(len(data))
		wrote, err := w.Write(data[:k])
		if err != nil {
			return wrote, err
		}
		return wrote, &Error{Site: site, Mode: ModeTorn, Hit: n}
	default:
		return 0, &Error{Site: site, Mode: ModeError, Hit: n}
	}
}
