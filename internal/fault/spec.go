package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// REPRO_FAULTS grammar — comma-separated rules, each
//
//	<site>=<mode>@<trigger>
//
// where <site> is one of Sites (or "*" for every site), <mode> is
// error | panic | torn | delay:<duration> (e.g. delay:50ms), and
// <trigger> is
//
//	n<K>      fire on exactly the K-th hit of the site (once)
//	every<K>  fire on every K-th hit
//	p<F>      fire with probability F per hit (REPRO_FAULTS_SEED seeds
//	          the stream; default 1)
//
// Example:
//
//	REPRO_FAULTS="ckpt.write=torn@every3,batcher.grow=error@p0.05" repro serve …

// EnvVar and EnvSeedVar are the environment variables FromEnv reads.
const (
	EnvVar     = "REPRO_FAULTS"
	EnvSeedVar = "REPRO_FAULTS_SEED"
)

// Parse builds an injector from a REPRO_FAULTS spec string.
func Parse(spec string, seed uint64) (*Injector, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty spec %q", spec)
	}
	return New(seed, rules...), nil
}

func parseRule(s string) (Rule, error) {
	site, rest, ok := strings.Cut(s, "=")
	if !ok {
		return Rule{}, fmt.Errorf("fault: rule %q: want <site>=<mode>@<trigger>", s)
	}
	if site != "*" && !knownSite(site) {
		return Rule{}, fmt.Errorf("fault: rule %q: unknown site %q (have %s)", s, site, strings.Join(Sites, ", "))
	}
	modeStr, trigger, ok := strings.Cut(rest, "@")
	if !ok {
		return Rule{}, fmt.Errorf("fault: rule %q: missing @<trigger>", s)
	}
	rule := Rule{Site: site}

	switch {
	case modeStr == "error":
		rule.Mode = ModeError
	case modeStr == "panic":
		rule.Mode = ModePanic
	case modeStr == "torn":
		rule.Mode = ModeTorn
	case strings.HasPrefix(modeStr, "delay:"):
		d, err := time.ParseDuration(strings.TrimPrefix(modeStr, "delay:"))
		if err != nil || d < 0 {
			return Rule{}, fmt.Errorf("fault: rule %q: bad delay %q", s, modeStr)
		}
		rule.Mode, rule.Delay = ModeDelay, d
	default:
		return Rule{}, fmt.Errorf("fault: rule %q: unknown mode %q (error, panic, torn, delay:<dur>)", s, modeStr)
	}

	switch {
	case strings.HasPrefix(trigger, "n"):
		k, err := strconv.Atoi(trigger[1:])
		if err != nil || k <= 0 {
			return Rule{}, fmt.Errorf("fault: rule %q: bad trigger %q", s, trigger)
		}
		rule.Nth = k
	case strings.HasPrefix(trigger, "every"):
		k, err := strconv.Atoi(trigger[len("every"):])
		if err != nil || k <= 0 {
			return Rule{}, fmt.Errorf("fault: rule %q: bad trigger %q", s, trigger)
		}
		rule.Every = k
	case strings.HasPrefix(trigger, "p"):
		p, err := strconv.ParseFloat(trigger[1:], 64)
		if err != nil || p <= 0 || p > 1 {
			return Rule{}, fmt.Errorf("fault: rule %q: bad trigger %q (want p in (0,1])", s, trigger)
		}
		rule.P = p
	default:
		return Rule{}, fmt.Errorf("fault: rule %q: unknown trigger %q (n<K>, every<K>, p<F>)", s, trigger)
	}
	return rule, nil
}

func knownSite(site string) bool {
	for _, s := range Sites {
		if s == site {
			return true
		}
	}
	return false
}

// FromEnv parses REPRO_FAULTS (and REPRO_FAULTS_SEED) and returns the
// injector, or (nil, nil) when the variable is unset or empty.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	seed := uint64(1)
	if s := os.Getenv(EnvSeedVar); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: %s=%q: %v", EnvSeedVar, s, err)
		}
		seed = v
	}
	return Parse(spec, seed)
}

// EnableFromEnv installs the environment-specified injector, returning
// its spec for logging ("" when faults are off). Serving binaries call
// it at startup; it never activates anything unless REPRO_FAULTS is set.
func EnableFromEnv() (string, error) {
	inj, err := FromEnv()
	if err != nil || inj == nil {
		return "", err
	}
	Enable(inj)
	return inj.Spec(), nil
}
