package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.")
	c.Add(3)
	c.Inc()
	c.Add(-5) // clamped: counters never move backwards
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(7)
	g.Dec()

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 4\n",
		"# TYPE test_depth gauge\n",
		"test_depth 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_requests_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestLabelEscapingAndOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_labeled_total", `Help with backslash \ inside.`, "route", "verdict")
	v.With(`p\q`, `say "hi"`).Add(2)
	v.With("a", "line\nbreak").Inc()

	out := render(t, r)
	for _, want := range []string{
		`# HELP test_labeled_total Help with backslash \\ inside.` + "\n",
		`test_labeled_total{route="p\\q",verdict="say \"hi\""} 2` + "\n",
		`test_labeled_total{route="a",verdict="line\nbreak"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Children sorted by label values: "a" before "p\q".
	if strings.Index(out, `route="a"`) > strings.Index(out, `route="p\\q"`) {
		t.Errorf("children not sorted by label values:\n%s", out)
	}
}

// TestHistogramExpositionInvariants checks the format contract scrapers
// rely on: cumulative buckets are monotone nondecreasing, the +Inf
// bucket equals _count, and _sum matches the observations.
func TestHistogramExpositionInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 0.5, 1, 5})
	obs := []float64{0.05, 0.3, 0.3, 0.7, 2, 100} // last lands in +Inf
	var sum float64
	for _, v := range obs {
		h.Observe(v)
		sum += v
	}

	out := render(t, r)
	if !strings.Contains(out, "# TYPE test_latency_seconds histogram\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	var bounds []string
	var cums []int64
	var count, infBucket int64 = -1, -1
	var gotSum float64 = math.NaN()
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "test_latency_seconds_bucket{le=\"+Inf\"}"):
			fmt.Sscanf(line, "test_latency_seconds_bucket{le=\"+Inf\"} %d", &infBucket)
		case strings.HasPrefix(line, "test_latency_seconds_bucket{le="):
			var le string
			var c int64
			if _, err := fmt.Sscanf(line, "test_latency_seconds_bucket{le=%q} %d", &le, &c); err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			bounds = append(bounds, le)
			cums = append(cums, c)
		case strings.HasPrefix(line, "test_latency_seconds_sum "):
			gotSum, _ = strconv.ParseFloat(strings.TrimPrefix(line, "test_latency_seconds_sum "), 64)
		case strings.HasPrefix(line, "test_latency_seconds_count "):
			count, _ = strconv.ParseInt(strings.TrimPrefix(line, "test_latency_seconds_count "), 10, 64)
		}
	}
	if len(bounds) != 4 {
		t.Fatalf("got %d finite buckets (%v), want 4", len(bounds), bounds)
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Errorf("cumulative buckets decrease at %d: %v", i, cums)
		}
	}
	if want := []int64{1, 3, 4, 5}; fmt.Sprint(cums) != fmt.Sprint(want) {
		t.Errorf("cumulative buckets %v, want %v", cums, want)
	}
	if infBucket != int64(len(obs)) || count != int64(len(obs)) {
		t.Errorf("+Inf bucket %d / _count %d, want both %d", infBucket, count, len(obs))
	}
	if math.Abs(gotSum-sum) > 1e-9 {
		t.Errorf("_sum %g, want %g", gotSum, sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %g, want 0", q)
	}
	// 10 observations: 4 in (..1], 4 in (1,2], 2 in (2,5].
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 4; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 2; i++ {
		h.Observe(3)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.25, 1}, {0.5, 2}, {0.75, 2}, {0.95, 5}, {1, 5},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// Everything beyond the last finite bound resolves to that bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 1 {
		t.Errorf("overflow-bucket p50 = %g, want last finite bound 1", got)
	}
}

// TestHotPathDoesNotAllocate pins the zero-allocation contract of every
// mutation the serving step loop performs.
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "")
	g := r.Gauge("test_g", "")
	h := r.Histogram("test_h_seconds", "", nil)
	vec := r.CounterVec("test_v_total", "", "k")
	pre := vec.With("warm") // resolved once, held

	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(5)
		g.Add(-1)
		h.Observe(0.003)
		pre.Inc()
	}); n != 0 {
		t.Errorf("hot-path mutations allocate %.1f times per run, want 0", n)
	}
}

// TestConcurrentObserveWhileScraping hammers one histogram and counter
// from several goroutines while scraping (run under -race in CI); every
// rendered snapshot must keep the bucket invariants.
func TestConcurrentObserveWhileScraping(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "", []float64{0.001, 0.01, 0.1})
	c := r.Counter("test_conc_total", "")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64(i%200) / 1000)
				c.Inc()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		out := render(t, r)
		var prev int64 = -1
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, "test_conc_seconds_bucket") {
				continue
			}
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("bucket regression mid-scrape: %q after %d", line, prev)
			}
			prev = v
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("test_dup_total", "")
	expectPanic("duplicate name", func() { r.Counter("test_dup_total", "") })
	expectPanic("bad metric name", func() { r.Counter("0bad", "") })
	expectPanic("reserved le label", func() { r.HistogramVec("test_le_seconds", "", nil, "le") })
	expectPanic("unsorted buckets", func() { r.Histogram("test_unsorted", "", []float64{2, 1}) })
	v := r.CounterVec("test_arity_total", "", "a", "b")
	expectPanic("label arity", func() { v.With("only-one") })
}
