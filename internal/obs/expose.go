package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE lines, then one
// sample line per child — histograms expand into cumulative _bucket
// lines (le-labeled, ending at +Inf), _sum, and _count. Families render
// sorted by name, children by label values, so consecutive scrapes of a
// quiet process are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	gathers := append([]func(){}, r.gathers...)
	fams := append([]*family{}, r.order...)
	r.mu.Unlock()
	for _, g := range gathers {
		g()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue // labeled family no one resolved yet
		}
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.kind))
		bw.WriteByte('\n')
		for _, ch := range children {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, f.labels, ch.values, "", "", formatInt(ch.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, f.labels, ch.values, "", "", formatInt(ch.g.Value()))
			case kindHistogram:
				buckets, count, sum := ch.h.snapshot()
				var cum int64
				for i, bound := range ch.h.bounds {
					cum += buckets[i]
					writeSample(bw, f.name+"_bucket", f.labels, ch.values,
						"le", formatFloat(bound), formatInt(cum))
				}
				writeSample(bw, f.name+"_bucket", f.labels, ch.values, "le", "+Inf", formatInt(count))
				writeSample(bw, f.name+"_sum", f.labels, ch.values, "", "", formatFloat(sum))
				writeSample(bw, f.name+"_count", f.labels, ch.values, "", "", formatInt(count))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line; extraName/extraValue
// append a synthetic label (histograms' le) after the family labels.
func writeSample(bw *bufio.Writer, name string, labels, values []string, extraName, extraValue, value string) {
	bw.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteString(",")
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				bw.WriteString(",")
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(extraValue)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes
// are legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Handler returns the GET /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
