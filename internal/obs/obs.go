// Package obs is the dependency-free metrics core behind the serving
// stack's observability: atomic counters, gauges, and fixed-bucket
// latency histograms, optionally grouped into labeled families, gathered
// by a Registry that renders the Prometheus text exposition format.
//
// The design constraint is the campaign daemon's steady-state step loop,
// which is allocation-free end to end (CI-asserted): every mutation —
// Counter.Add, Gauge.Set, Histogram.Observe — is a handful of atomic
// operations and never allocates. Label resolution (Vec.With) allocates
// a map key on first use, so hot paths resolve their handles once at
// setup and hold them. Scrape-time work (sorting families, cumulating
// histogram buckets) happens on the scraping goroutine only.
//
// Gauges whose truth lives elsewhere (registry occupancy, campaign
// states) are refreshed lazily: OnGather callbacks run at the start of
// every WritePrometheus, so the owner snapshots its state into plain
// gauges instead of threading bookkeeping through every transition.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is usable,
// but counters are normally created through Registry so they render.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by d. Negative deltas are a programming
// error; they are clamped to zero to keep the series monotone.
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer-valued level (queue depth, entry count).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative allowed).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default latency bucket layout, in seconds: half a
// millisecond through ten seconds, roughly 2.5× apart — wide enough for
// a sub-millisecond warm step and a multi-second cold prepare to land in
// interior buckets of the same histogram.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets (cumulative at render
// time, per-bucket internally) and tracks their sum. Observe is
// lock-free and allocation-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram buckets must ascend strictly, got %v", buckets))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value (same unit as the bucket bounds; latency
// histograms use seconds).
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; all of them missing means
	// the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket where the q-th observation falls — a conservative
// (round-up) estimate, which is what a backpressure hint wants. With no
// observations it returns 0; observations beyond the last finite bucket
// resolve to the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= target {
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot returns the per-bucket counts, total, and sum, each bucket
// read once (the numbers may straddle concurrent observations; each
// value is individually consistent, which is all the text format needs —
// bucket monotonicity is restored by cumulating below).
func (h *Histogram) snapshot() (buckets []int64, count int64, sum float64) {
	buckets = make([]int64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	// Derive the total from the buckets themselves so `_count` always
	// equals the +Inf cumulative bucket, even mid-scrape.
	for _, b := range buckets {
		count += b
	}
	return buckets, count, h.Sum()
}

// metricKind is the TYPE line a family renders.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// child is one (label values → metric) cell of a family.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with its labeled children (a single
// unlabeled child for plain metrics).
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s takes %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			ch.c = new(Counter)
		case kindGauge:
			ch.g = new(Gauge)
		case kindHistogram:
			ch.h = newHistogram(f.buckets)
		}
		f.children[key] = ch
	}
	return ch
}

// sortedChildren snapshots the children in deterministic label order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	out := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		out = append(out, ch)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With resolves the counter for the given label values, creating it on
// first use. Resolution allocates; hot paths hold the returned handle.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With resolves the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With resolves the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).h }

// Registry gathers metric families and renders them. Registration
// panics on an invalid or duplicate name — both are programming errors
// caught by the first scrape of any test.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
	gathers  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnGather registers a callback run at the start of every
// WritePrometheus, before any family renders — the hook for owners whose
// gauges snapshot external state (registry occupancy, campaign states).
// Callbacks must not call back into WritePrometheus.
func (r *Registry) OnGather(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gathers = append(r.gathers, f)
}

func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter registers a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).child(nil).c
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// Gauge registers a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).child(nil).g
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// Histogram registers a plain histogram; nil buckets means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, buckets).child(nil).h
}

// HistogramVec registers a labeled histogram family; nil buckets means
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets)}
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* without pulling in regexp.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
