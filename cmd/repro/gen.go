package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
)

// genRow is the JSON emitted by `repro gen`.
type genRow struct {
	Dataset   string  `json:"dataset"`
	Scale     float64 `json:"scale"`
	PaperN    int     `json:"paper_n"`
	PaperM    int64   `json:"paper_m"`
	N         int     `json:"n"`
	M         int64   `json:"m"`
	Type      string  `json:"type"`
	AvgDegree float64 `json:"avg_degree"`
	MaxOutDeg int     `json:"max_out_deg"`
	Isolated  int     `json:"isolated"`
	Out       string  `json:"out,omitempty"`
	// WallMS is fractional milliseconds: integer truncation reported 0
	// for every sub-millisecond generation (all the tiny fixtures).
	WallMS float64 `json:"wall_ms"`
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dataset := fs.String("dataset", "nethept-s", "Table II stand-in dataset name")
	scale := fs.Float64("scale", 0.1, "node-count scale factor (1 = paper size)")
	out := fs.String("out", "", "optional path for the edge-list file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	g, spec, err := buildDataset(*dataset, *scale)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := graph.Write(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	stats := graph.ComputeStats(g)
	row := genRow{
		Dataset:   spec.Name,
		Scale:     *scale,
		PaperN:    spec.PaperN,
		PaperM:    spec.PaperM,
		N:         stats.N,
		M:         stats.M,
		Type:      stats.Type,
		AvgDegree: stats.AvgDegree,
		MaxOutDeg: stats.MaxOutDeg,
		Isolated:  stats.Isolated,
		Out:       *out,
		WallMS:    wallMS(time.Since(start)),
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(row); err != nil {
		return fmt.Errorf("encoding stats: %w", err)
	}
	return nil
}
