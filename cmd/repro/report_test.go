package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleBench() *benchOutput {
	return &benchOutput{
		Datasets:     []string{"epinions-s", "nethept-s"},
		Algos:        []string{"hatp", "addatp"},
		CostSettings: []string{"uniform"},
		Model:        "ic",
		Scale:        0.05,
		Seed:         1,
		WallMS:       1234,
		Rows: []*resultRow{
			{Algo: "addatp", Dataset: "nethept-s", CostSetting: "uniform", Realizations: 2,
				AvgProfit: 42.5, AvgRounds: 7, RRDrawn: 100000, RRReused: 900000, RRPeakBytes: 2 << 20},
			{Algo: "hatp", Dataset: "nethept-s", CostSetting: "uniform", Realizations: 2,
				AvgProfit: 41.25, AvgRounds: 6.5, RRDrawn: 12000, RRReused: 50000, RRPeakBytes: 1 << 20},
		},
		Errors: []string{"epinions-s/uniform: boom"},
	}
}

func TestRenderReportTables(t *testing.T) {
	md := renderReport([]*benchOutput{sampleBench()}, []string{"BENCH_x.json"})
	for _, want := range []string{
		"# EXPERIMENTS",
		"## model=ic scale=0.05 seed=1",
		"### Profit",
		"### Rounds",
		"### RR sets drawn",
		"### RR sets reused",
		"### Peak RR arena",
		"| dataset | addatp | hatp |", // CLI order, not input order
		"| nethept-s | 42.50 | 41.25 |",
		"| nethept-s | 7.0 | 6.5 |",
		"| nethept-s | 100000 | 12000 |",
		"| nethept-s | 900000 | 50000 |",
		"| nethept-s | 2.00 MiB | 1.00 MiB |",
		"| epinions-s | — | — |", // missing cells render as em-dash
		"- epinions-s/uniform: boom",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q:\n%s", want, md)
		}
	}
	// Registry order puts nethept-s before epinions-s regardless of the
	// bench's dataset list order.
	if strings.Index(md, "| nethept-s |") > strings.Index(md, "| epinions-s |") {
		t.Fatal("datasets not in Table II registry order")
	}
}

func TestCmdReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "BENCH_t.json")
	raw, err := json.Marshal(sampleBench())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "EXPERIMENTS.md")
	if err := cmdReport([]string{"--out", out, in}); err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### Profit") {
		t.Fatalf("round-tripped report malformed:\n%s", md)
	}
	// Deterministic: rendering the same fixture twice is byte-identical,
	// which is what lets CI diff EXPERIMENTS.md against the fixture.
	if err := cmdReport([]string{"--out", out + "2", in}); err != nil {
		t.Fatal(err)
	}
	md2, err := os.ReadFile(out + "2")
	if err != nil {
		t.Fatal(err)
	}
	if string(md) != string(md2) {
		t.Fatal("report not deterministic across runs")
	}
}

func TestCmdReportNoInputs(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if err := cmdReport([]string{"--out", filepath.Join(dir, "E.md")}); err == nil {
		t.Fatal("report with no BENCH files succeeded")
	}
}
