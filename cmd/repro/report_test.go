package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleBench() *benchOutput {
	return &benchOutput{
		Datasets:     []string{"epinions-s", "nethept-s"},
		Algos:        []string{"hatp", "addatp"},
		CostSettings: []string{"uniform"},
		Model:        "ic",
		Scale:        0.05,
		Seed:         1,
		WallMS:       1234,
		Rows: []*resultRow{
			{Algo: "addatp", Dataset: "nethept-s", CostSetting: "uniform", Realizations: 2,
				AvgProfit: 42.5, AvgRounds: 7, RRDrawn: 100000, RRReused: 900000, RRPeakBytes: 2 << 20},
			{Algo: "hatp", Dataset: "nethept-s", CostSetting: "uniform", Realizations: 2,
				AvgProfit: 41.25, AvgRounds: 6.5, RRDrawn: 12000, RRReused: 50000, RRPeakBytes: 1 << 20},
		},
		Errors: []string{"epinions-s/uniform: boom"},
	}
}

func TestRenderReportTables(t *testing.T) {
	md := renderReport([]*benchOutput{sampleBench()}, nil, nil, []string{"BENCH_x.json"})
	for _, want := range []string{
		"# EXPERIMENTS",
		"## models=IC scale=0.05 seed=1",
		"### Profit",
		"### Rounds",
		"### RR sets drawn",
		"### RR sets reused",
		"### Peak RR arena",
		"| dataset | addatp | hatp |", // CLI order, not input order
		"| nethept-s | 42.50 | 41.25 |",
		"| nethept-s | 7.0 | 6.5 |",
		"| nethept-s | 100000 | 12000 |",
		"| nethept-s | 900000 | 50000 |",
		"| nethept-s | 2.00 MiB | 1.00 MiB |",
		"| epinions-s | — | — |", // missing cells render as em-dash
		"- epinions-s/uniform: boom",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q:\n%s", want, md)
		}
	}
	// Registry order puts nethept-s before epinions-s regardless of the
	// bench's dataset list order.
	if strings.Index(md, "| nethept-s |") > strings.Index(md, "| epinions-s |") {
		t.Fatal("datasets not in Table II registry order")
	}
	// The traffic-model table is gated on the counters existing: these
	// rows predate them, so no table of dashes is rendered.
	if strings.Contains(md, "### RR traffic model") {
		t.Fatal("traffic-model table rendered for counter-less rows")
	}
}

// TestRenderReportTrafficAndThroughput covers the counter-gated traffic
// table and the rrbench throughput section: an rrbench document must be
// detected by readBench and rendered with its kernel × numbering matrix,
// and rows carrying visit/touch counters unlock the traffic-model table.
func TestRenderReportTrafficAndThroughput(t *testing.T) {
	bench := sampleBench()
	bench.Rows[0].RRVisits = 1000
	bench.Rows[0].RREdgeTouches = 4000 // (4·4000 + 17·1000)/4000 = 8.2
	rr := &rrBenchOutput{
		Dataset: "nethept-s", Scale: 1, Seed: 2, Batch: 20000, Rounds: 9, Workers: 1,
		Variants: []rrVariantResult{
			{rrVariant: rrVariant{Name: "per-draw"}, MedianRRPerSec: 5e6,
				VisitsPerSet: 5, TouchesPerSet: 5, BytesPerEdgeTouch: 21, MaxDepth: 0},
			{rrVariant: rrVariant{Name: "batched", Batched: true, DegreeOrder: true},
				MedianRRPerSec: 5.5e6, VisitsPerSet: 5, TouchesPerSet: 7.8,
				BytesPerEdgeTouch: 14.9, MaxDepth: 38},
		},
		SpeedupVsA: 1.1,
	}
	md := renderReport([]*benchOutput{bench}, []*rrBenchOutput{rr}, nil, []string{"BENCH_x.json", "BENCH_rr.json"})
	for _, want := range []string{
		"### RR traffic model",
		"| nethept-s | 8.2 B/touch | — |",
		"## RR throughput: nethept-s scale=1 seed=2",
		"| per-draw | per-draw | identity | 5000000 | 5.00 | 5.00 | 21.0 | 0 |",
		"| batched | frontier-batched | degree-ordered | 5500000 | 5.00 | 7.80 | 14.9 | 38 |",
		"Batched vs per-draw: **1.10×**.",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q:\n%s", want, md)
		}
	}

	// readBench must route an rrbench JSON document to the rr path.
	path := filepath.Join(t.TempDir(), "BENCH_rr_throughput.json")
	if err := writeRRBenchJSON(path, rr); err != nil {
		t.Fatal(err)
	}
	b, gotRR, _, err := readBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if b != nil || gotRR == nil || len(gotRR.Variants) != 2 {
		t.Fatalf("rrbench document misrouted: bench=%v rr=%+v", b, gotRR)
	}
}

func TestCmdReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "BENCH_t.json")
	raw, err := json.Marshal(sampleBench())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "EXPERIMENTS.md")
	if err := cmdReport([]string{"--out", out, in}); err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### Profit") {
		t.Fatalf("round-tripped report malformed:\n%s", md)
	}
	// Deterministic: rendering the same fixture twice is byte-identical,
	// which is what lets CI diff EXPERIMENTS.md against the fixture.
	if err := cmdReport([]string{"--out", out + "2", in}); err != nil {
		t.Fatal(err)
	}
	md2, err := os.ReadFile(out + "2")
	if err != nil {
		t.Fatal(err)
	}
	if string(md) != string(md2) {
		t.Fatal("report not deterministic across runs")
	}
}

func TestCmdReportNoInputs(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if err := cmdReport([]string{"--out", filepath.Join(dir, "E.md")}); err == nil {
		t.Fatal("report with no BENCH files succeeded")
	}
}

// seqFixedBenches builds the same configuration run under both stopping
// rules, the shape the sequential-vs-fixed comparison section keys on.
func seqFixedBenches() []*benchOutput {
	row := func(sampler string, drawn int64, profit float64) *resultRow {
		return &resultRow{Algo: "addatp", Dataset: "nethept-s", CostSetting: "uniform",
			Model: "IC", Scale: 0.1, Seed: 1, K: 50, Targets: 50, Budget: 600.25,
			Realizations: 2, Sampler: sampler,
			RRDrawn: drawn, AvgProfit: profit, Attempts: 10, RRBatches: 5, Fallbacks: 2, CertifiedEarly: 3}
	}
	return []*benchOutput{
		{Datasets: []string{"nethept-s"}, Algos: []string{"addatp"}, CostSettings: []string{"uniform"},
			Model: "IC", Scale: 0.1, Seed: 1, Sampler: "fixed", Rows: []*resultRow{row("fixed", 1000000, 100)}},
		{Datasets: []string{"nethept-s"}, Algos: []string{"addatp"}, CostSettings: []string{"uniform"},
			Model: "IC", Scale: 0.1, Seed: 1, Sampler: "seq", Rows: []*resultRow{row("seq", 100000, 98)}},
	}
}

func TestRenderSamplerComparison(t *testing.T) {
	md := renderReport(seqFixedBenches(), nil, nil, []string{"BENCH_f.json", "BENCH_s.json"})
	for _, want := range []string{
		"## models=IC scale=0.1 seed=1 sampler=fixed",
		"## models=IC scale=0.1 seed=1 sampler=seq",
		"## Sequential vs fixed sampling",
		"| nethept-s · uniform · IC · scale 0.1 · seed 1 · k 50 · 2 reps · addatp | 1000000 | 100000 | 10.0× | 100.00 | 98.00 | 2 → 2 |",
		"### Stopping-rule telemetry",
		"10 looks · 5 batches · 3 early · 2 fallbacks",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q:\n%s", want, md)
		}
	}
	// A lone sampler (no counterpart) must not emit the comparison section.
	md = renderReport(seqFixedBenches()[:1], nil, nil, []string{"BENCH_f.json"})
	if strings.Contains(md, "## Sequential vs fixed sampling") {
		t.Fatal("comparison section rendered without both samplers")
	}
	// Pairs whose instances diverged (different IMM targets/budget) are
	// marked as not directly comparable.
	div := seqFixedBenches()
	div[1].Rows[0].Budget = 999
	md = renderReport(div, nil, nil, []string{"BENCH_f.json", "BENCH_s.json"})
	if !strings.Contains(md, "· addatp † |") {
		t.Fatalf("diverging-instance pair not marked:\n%s", md)
	}
	// Rows differing in k or reps must not pair up at all.
	kdiff := seqFixedBenches()
	kdiff[1].Rows[0].K = 25
	md = renderReport(kdiff, nil, nil, []string{"BENCH_f.json", "BENCH_s.json"})
	if strings.Contains(md, "## Sequential vs fixed sampling") {
		t.Fatal("rows with different k paired as an A/B")
	}
	// Pre-telemetry rows (no attempts recorded) degrade to fallbacks-only.
	old := sampleBench()
	old.Rows[0].Fallbacks = 7
	md = renderReport([]*benchOutput{old}, nil, nil, []string{"BENCH_old.json"})
	if !strings.Contains(md, "| nethept-s | 7 fallbacks | — |") {
		t.Fatalf("pre-telemetry fallback cell missing:\n%s", md)
	}
}
