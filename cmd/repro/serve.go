package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/adaptive"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/sweep"
)

// cmdServe runs the campaign daemon: a warm instance registry plus the
// HTTP campaign API (see internal/service). The spec flags pin the shared
// experiment parameters every served campaign runs under; dataset, model,
// and cost set the defaults a create request falls back to when it omits
// them. On SIGTERM/SIGINT the server stops accepting work, checkpoints
// every open campaign into --checkpoint-dir, and exits — a restarted
// server restores those campaigns bit-identically.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	debugAddr := fs.String("debug-addr", "", "optional second listener for /metrics and /debug/pprof/* (keep it private; empty disables)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for campaign checkpoints (empty disables checkpoint/drain persistence)")
	maxInstances := fs.Int("max-instances", 8, "idle prepared instances kept warm before LRU eviction (0 = unlimited)")
	requestTimeout := fs.Duration("request-timeout", 2*time.Minute, "per-request write deadline (a campaign step on a large instance can be slow)")
	maxSteps := fs.Int("max-steps", 0, "max concurrently executing campaign steps before 429 (0 = 2×GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "total budget for the shutdown checkpoint sweep")
	dataset := fs.String("dataset", "nethept-s", "default dataset for campaigns that omit one")
	model := fs.String("model", "ic", "default diffusion model: ic or lt")
	costName := fs.String("cost", "degree-proportional", "default cost setting")
	var spec sweep.Spec
	specFlags(fs, &spec)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkSpecFlags(&spec); err != nil {
		return err
	}
	spec.Datasets = []string{*dataset}
	spec.Models = []string{*model}
	spec.CostSettings = []string{*costName}
	spec.Algos = append([]string(nil), adaptive.Algorithms...)
	spec.SetDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
	}

	reg := service.NewRegistry(spec, *maxInstances)
	srv := service.NewServer(reg, *ckptDir)
	srv.SetLogOutput(os.Stderr)
	srv.SetDrainTimeout(*drainTimeout)
	if *maxSteps > 0 {
		srv.SetMaxConcurrentSteps(*maxSteps)
	}
	if spec, err := fault.EnableFromEnv(); err != nil {
		return err
	} else if spec != "" {
		fmt.Fprintf(os.Stderr, "repro serve: FAULT INJECTION ACTIVE (%s=%s)\n", fault.EnvVar, spec)
	}
	// Timeouts make a stalled or malicious client a bounded cost: slowloris
	// headers die in 5s, an idle keep-alive in 2min, and a response that
	// cannot be written within --request-timeout is abandoned.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *requestTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	// The debug listener carries the operational surface — Prometheus
	// scrape plus the pprof profiles — on its own address, so the campaign
	// API can face clients while profiling stays private. /metrics is also
	// on the main mux; pprof is only here. No WriteTimeout: a 30s CPU
	// profile outlives any sane request deadline by design.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.Handle("GET /metrics", srv.Metrics().Reg.Handler())
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			fmt.Fprintf(os.Stderr, "repro serve: debug listener on %s (/metrics, /debug/pprof/)\n", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "repro serve: debug listener: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "repro serve: listening on %s (defaults %s/%s/%s@%g, seed %d)\n",
			*addr, *dataset, *model, *costName, spec.Scale, spec.Seed+100)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure etc.; ErrServerClosed only after Shutdown
	case <-ctx.Done():
	}
	stop() // second signal kills immediately

	// Stop accepting connections first, then drain: checkpoint and close
	// every open campaign so nothing is lost across the restart.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "repro serve: shutdown: %v\n", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Close() // nothing stateful behind it; no need to drain
	}
	files, err := srv.Drain()
	for _, f := range files {
		fmt.Fprintf(os.Stderr, "repro serve: checkpointed %s\n", f)
	}
	if err != nil {
		return err
	}
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	fmt.Fprintln(os.Stderr, "repro serve: drained, exiting")
	return nil
}
