package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cascade"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ris"
	"repro/internal/rng"
)

// cmdRRBench measures raw RR-set generation throughput with an interleaved
// A/B protocol: every variant runs one timed round, then the schedule
// repeats, so slow drift of a shared machine hits all variants equally and
// the per-variant medians stay comparable. Cross-process benchmark runs on
// the same box have been observed to swing ±30%; only numbers produced by
// one interleaved run are worth committing.
//
// The four variants span the kernel x layout matrix:
//
//	per-draw          the baseline sampler, identity node numbering
//	batched           frontier-batched kernel + degree-ordered renumbering
//	batched-identity  frontier-batched kernel, identity numbering
//	per-draw-ordered  baseline sampler on the renumbered graph
//
// Output is a BENCH_rr_throughput.json document with per-round samples,
// medians, and the traffic model derived from the sampler's visit/edge
// counters; `repro report` folds it into EXPERIMENTS.md.

// rrVariant names one cell of the kernel x layout matrix.
type rrVariant struct {
	Name        string `json:"name"`
	Batched     bool   `json:"batched"`
	DegreeOrder bool   `json:"degree_order"`
}

// rrVariantResult carries one variant's samples and counter-derived stats.
type rrVariantResult struct {
	rrVariant
	RoundsRRPerSec []float64 `json:"rounds_rr_per_sec"`
	MedianRRPerSec float64   `json:"median_rr_per_sec"`
	// Per-set shape statistics from the sampler counters (identical across
	// kernels by distributional equivalence; committed so regressions in
	// the counters themselves are visible).
	VisitsPerSet  float64 `json:"visits_per_set"`
	TouchesPerSet float64 `json:"edge_touches_per_set"`
	// BytesPerEdgeTouch models the memory traffic behind one examined
	// edge: 4 arena bytes per touch plus the 16-byte metadata entry and
	// one visited-mask byte per visited node, amortized over that node's
	// touches. A traffic model from exact counters, not a hardware
	// measurement.
	BytesPerEdgeTouch float64 `json:"bytes_per_edge_touch"`
	MaxDepth          int     `json:"max_depth"`
}

// rrBenchOutput is the BENCH_rr_throughput.json document.
type rrBenchOutput struct {
	Dataset    string            `json:"dataset"`
	Scale      float64           `json:"scale"`
	Model      string            `json:"model"`
	Batch      int               `json:"batch"`
	Rounds     int               `json:"rounds"`
	Workers    int               `json:"workers"`
	Seed       uint64            `json:"seed"`
	WallMS     float64           `json:"wall_ms"` // fractional ms; committed integer fixtures parse unchanged
	Variants   []rrVariantResult `json:"variants"`
	SpeedupVsA float64           `json:"speedup_batched_vs_per_draw"`
}

func cmdRRBench(args []string) error {
	fs := flag.NewFlagSet("rrbench", flag.ExitOnError)
	dataset := fs.String("dataset", "nethept-s", "Table II stand-in to sample")
	scale := fs.Float64("scale", 1, "dataset scale factor")
	batch := fs.Int("batch", 20000, "RR sets per timed round")
	rounds := fs.Int("rounds", 9, "timed rounds per variant (median reported)")
	workers := fs.Int("workers", 1, "sampler workers per round")
	seed := fs.Uint64("seed", 2, "base RNG seed")
	out := fs.String("out", "BENCH_rr_throughput.json", "output file")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the timed rounds to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after the rounds) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch <= 0 || *rounds <= 0 {
		return fmt.Errorf("rrbench: batch and rounds must be positive")
	}

	spec, err := gen.Lookup(*dataset)
	if err != nil {
		return err
	}
	variants := []rrVariant{
		{Name: "per-draw", Batched: false, DegreeOrder: false},
		{Name: "batched", Batched: true, DegreeOrder: true},
		{Name: "batched-identity", Batched: true, DegreeOrder: false},
		{Name: "per-draw-ordered", Batched: false, DegreeOrder: true},
	}

	// Both numberings of the same logical graph, built once.
	graphs := make(map[bool]*graph.Graph, 2)
	for _, ordered := range []bool{false, true} {
		cfg := spec.Config(*scale)
		cfg.DegreeOrder = ordered
		g, err := gen.Generate(cfg)
		if err != nil {
			return err
		}
		graphs[ordered] = g
	}

	type lane struct {
		res    *graph.Residual
		pool   *ris.SamplerPool
		col    *ris.Collection
		parent *rng.RNG
		result *rrVariantResult
	}
	lanes := make([]*lane, len(variants))
	results := make([]rrVariantResult, len(variants))
	for i, v := range variants {
		g := graphs[v.DegreeOrder]
		pool := ris.NewSamplerPool(cascade.IC)
		pool.SetBatched(v.Batched)
		results[i] = rrVariantResult{rrVariant: v}
		lanes[i] = &lane{
			res:    graph.NewResidual(g),
			pool:   pool,
			col:    ris.NewCollection(g.N()),
			parent: rng.New(*seed),
			result: &results[i],
		}
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	start := time.Now()
	// One untimed warmup round per variant, then the interleaved schedule.
	for r := -1; r < *rounds; r++ {
		for i, ln := range lanes {
			ln.col.Reset()
			t0 := time.Now()
			ln.pool.AppendParallel(ln.col, ln.res, ln.parent, *batch, *workers)
			dt := time.Since(t0)
			if err := ln.pool.Err(); err != nil {
				return fmt.Errorf("rrbench: %s: %w", variants[i].Name, err)
			}
			if ln.col.Len() != *batch {
				return fmt.Errorf("rrbench: %s: short generation (%d of %d)", variants[i].Name, ln.col.Len(), *batch)
			}
			if r >= 0 {
				ln.result.RoundsRRPerSec = append(ln.result.RoundsRRPerSec, float64(*batch)/dt.Seconds())
			}
		}
	}

	stopProfiles() // profile covers the rounds, not stats and encoding

	for _, ln := range lanes {
		sets := float64(*rounds+1) * float64(*batch)
		visits := float64(ln.pool.Visits())
		touches := float64(ln.pool.EdgeTouches())
		ln.result.MedianRRPerSec = median(ln.result.RoundsRRPerSec)
		ln.result.VisitsPerSet = visits / sets
		ln.result.TouchesPerSet = touches / sets
		if touches > 0 {
			ln.result.BytesPerEdgeTouch = (4*touches + 17*visits) / touches
		}
		ln.result.MaxDepth = ln.pool.MaxDepth()
	}

	doc := rrBenchOutput{
		Dataset:  *dataset,
		Scale:    *scale,
		Model:    "ic",
		Batch:    *batch,
		Rounds:   *rounds,
		Workers:  *workers,
		Seed:     *seed,
		WallMS:   wallMS(time.Since(start)),
		Variants: results,
	}
	doc.SpeedupVsA = results[1].MedianRRPerSec / results[0].MedianRRPerSec

	if err := writeRRBenchJSON(*out, &doc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rrbench: %s batch=%d rounds=%d (%.1fs)\n",
		*dataset, *batch, *rounds, doc.WallMS/1000)
	for _, res := range results {
		fmt.Fprintf(os.Stderr, "  %-17s %12.0f rr/s  visits/set %.2f  touches/set %.2f  B/touch %.1f\n",
			res.Name, res.MedianRRPerSec, res.VisitsPerSet, res.TouchesPerSet, res.BytesPerEdgeTouch)
	}
	fmt.Fprintf(os.Stderr, "  batched vs per-draw: %.2fx\n", doc.SpeedupVsA)
	return nil
}

// writeRRBenchJSON writes the document atomically (temp file + rename),
// mirroring writeBenchJSON's discipline without its stdout salvage — an
// rrbench run is cheap to repeat.
func writeRRBenchJSON(path string, doc *rrBenchOutput) error {
	return writeJSONAtomic(path, doc)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
