package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/adaptive"
	"repro/internal/sweep"
)

// cmdSweep runs a resumable experiment grid: datasets × models × cost
// settings × algorithms, scheduled by internal/sweep with per-cell
// journaling. SIGINT/SIGTERM checkpoint the journal cleanly; `--resume`
// continues where a previous invocation (or crash) stopped.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	specPath := fs.String("spec", "", "JSON sweep spec document; when set, the grid/parameter flags are ignored")
	datasets := fs.String("datasets", "nethept-s", "comma-separated datasets (or 'all')")
	models := fs.String("models", "all", "comma-separated diffusion models (or 'all')")
	costs := fs.String("costs", "all", "comma-separated cost settings (or 'all')")
	algos := fs.String("algos", "all", "comma-separated algorithms (or 'all')")
	churns := fs.String("churns", "none", "comma-separated churn schedules: 'none' and/or 'p@k' (p% edge churn every k rounds)")
	journalPath := fs.String("journal", "SWEEP_results.jsonl", "append-only JSONL journal, fsynced after every cell")
	resume := fs.Bool("resume", false, "continue --journal: reuse its spec (flags are ignored) and skip completed cells")
	parallel := fs.Int("parallel", 1, "cells run concurrently (worker-pool width)")
	budget := fs.Int64("cell-budget-ms", 0, "per-cell wall-clock budget in ms (0 = unbounded; checked between realizations)")
	var flagSpec sweep.Spec
	specFlags(fs, &flagSpec)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var j *sweep.Journal
	var skip map[string]bool
	var spec *sweep.Spec
	if *resume {
		if _, err := os.Stat(*journalPath); err == nil {
			var jspec *sweep.Spec
			j, jspec, skip, err = sweep.Resume(*journalPath)
			if err != nil {
				return err
			}
			spec = jspec
			fmt.Fprintf(os.Stderr, "sweep: resuming %s (%d cell(s) already done)\n", *journalPath, len(skip))
		}
		// No journal yet: --resume on a fresh path degrades to a fresh
		// start, so scripted `repro sweep --resume` loops are idempotent.
	}
	if spec == nil {
		if *specPath != "" {
			data, err := os.ReadFile(*specPath)
			if err != nil {
				return err
			}
			spec = new(sweep.Spec)
			if err := json.Unmarshal(data, spec); err != nil {
				return fmt.Errorf("sweep: parsing %s: %w", *specPath, err)
			}
		} else {
			if err := checkSpecFlags(&flagSpec); err != nil {
				return err
			}
			flagSpec.Datasets = splitList(*datasets, sweep.AllDatasets())
			flagSpec.Models = splitList(*models, sweep.AllModels)
			flagSpec.CostSettings = splitList(*costs, sweep.AllCostSettings)
			flagSpec.Algos = splitList(*algos, adaptive.Algorithms)
			flagSpec.Churns = splitList(*churns, []string{sweep.ChurnNone})
			flagSpec.Parallel = *parallel
			flagSpec.CellBudgetMS = *budget
			spec = &flagSpec
		}
	}
	spec.SetDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}
	if j == nil {
		var err error
		j, err = sweep.CreateJournal(*journalPath, spec)
		if err != nil {
			if os.IsExist(err) {
				return fmt.Errorf("journal %s already exists; pass --resume to continue it, or remove it for a fresh sweep", *journalPath)
			}
			return err
		}
	}
	defer j.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// First signal: checkpoint (cells stop at the next realization
		// boundary). Restoring default handling immediately after lets a
		// second Ctrl-C force-quit a long in-flight realization — the
		// journal is fsynced per cell, so even that exit resumes cleanly.
		<-ctx.Done()
		stop()
	}()
	res, err := sweep.Run(ctx, spec, sweep.Options{Journal: j, Skip: skip, Log: os.Stderr})
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		warnShortfall(row)
	}
	for _, e := range res.Errors {
		fmt.Fprintf(os.Stderr, "sweep: error: %s\n", e)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cell(s) completed, %d skipped, %d error(s) in %dms; journal %s\n",
		len(res.Rows), res.Skipped, len(res.Errors), res.WallMS, *journalPath)
	if res.Interrupted {
		fmt.Fprintf(os.Stderr, "sweep: interrupted — journal checkpointed; continue with: repro sweep --journal %s --resume\n", *journalPath)
	}
	return nil
}
