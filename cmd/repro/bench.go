package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/adaptive"
)

// benchOutput is the BENCH_*.json document: the grid definition plus one
// resultRow per completed cell (failed cells are recorded with an error).
type benchOutput struct {
	Datasets     []string     `json:"datasets"`
	Algos        []string     `json:"algos"`
	CostSettings []string     `json:"cost_settings"`
	Model        string       `json:"model"`
	Scale        float64      `json:"scale"`
	Seed         uint64       `json:"seed"`
	Sampler      string       `json:"sampler,omitempty"`
	WallMS       int64        `json:"wall_ms"`
	Rows         []*resultRow `json:"rows"`
	Errors       []string     `json:"errors,omitempty"`
}

func splitList(s string, all []string) []string {
	if s == "" || s == "all" {
		return all
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	datasets := fs.String("datasets", "nethept-s", "comma-separated datasets (or 'all')")
	algos := fs.String("algos", "all", "comma-separated algorithms (or 'all')")
	costs := fs.String("costs", "all", "comma-separated cost settings (or 'all')")
	model := fs.String("model", "ic", "diffusion model: ic or lt")
	out := fs.String("out", "BENCH_results.json", "output file (BENCH_*.json)")
	k, reps, adgTheta, nsgTheta, workers, seed, scale, zeta, eps, delta, immEps, sampler := runFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseModel(*model)
	if err != nil {
		return err
	}
	if err := validateSampler(*sampler); err != nil {
		return err
	}
	allDatasets := []string{"nethept-s", "epinions-s", "dblp-s", "livejournal-s"}
	allCosts := []string{"degree-proportional", "uniform", "random"}
	grid := benchOutput{
		Datasets:     splitList(*datasets, allDatasets),
		Algos:        splitList(*algos, adaptive.Algorithms),
		CostSettings: splitList(*costs, allCosts),
		Model:        m.String(),
		Scale:        *scale,
		Seed:         *seed,
		Sampler:      *sampler,
	}
	for _, algo := range grid.Algos {
		if err := validateAlgo(algo); err != nil {
			return err
		}
	}
	start := time.Now()
	for _, ds := range grid.Datasets {
		for _, costName := range grid.CostSettings {
			cs, err := parseCostSetting(costName)
			if err != nil {
				return err
			}
			cfg := runConfig{
				dataset: ds, scale: *scale, model: m, costSetting: cs,
				k: *k, reps: *reps, seed: *seed, zeta: *zeta, eps: *eps, delta: *delta,
				adgTheta: *adgTheta, nsgTheta: *nsgTheta, workers: *workers, immEps: *immEps,
				sampler: *sampler,
			}
			// The prepared instance (graph + IMM targets + calibrated costs)
			// is algorithm-independent; build it once per (dataset, cost).
			fmt.Fprintf(os.Stderr, "bench: preparing %s/%s...\n", ds, costName)
			p, err := prepare(cfg)
			if err != nil {
				grid.Errors = append(grid.Errors, fmt.Sprintf("%s/%s: %v", ds, costName, err))
				continue
			}
			for _, algo := range grid.Algos {
				cell := fmt.Sprintf("%s/%s/%s", ds, costName, algo)
				fmt.Fprintf(os.Stderr, "bench: %s...\n", cell)
				cfg.algo = algo
				row, err := execute(cfg, p)
				if err != nil {
					grid.Errors = append(grid.Errors, fmt.Sprintf("%s: %v", cell, err))
					continue
				}
				warnShortfall(row)
				grid.Rows = append(grid.Rows, row)
			}
		}
	}
	grid.WallMS = time.Since(start).Milliseconds()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(grid); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d rows (%d errors) to %s in %dms\n",
		len(grid.Rows), len(grid.Errors), *out, grid.WallMS)
	return nil
}
