package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/sweep"
)

// benchOutput is the BENCH_*.json document: the grid definition plus one
// resultRow per completed cell (failed cells are recorded with an error).
// Model is the single diffusion model of a `repro bench` run; Models is
// set instead when the source is a multi-model sweep journal rendered
// through `repro report`.
type benchOutput struct {
	Datasets     []string     `json:"datasets"`
	Algos        []string     `json:"algos"`
	CostSettings []string     `json:"cost_settings"`
	Model        string       `json:"model,omitempty"`
	Models       []string     `json:"models,omitempty"`
	Scale        float64      `json:"scale"`
	Seed         uint64       `json:"seed"`
	Sampler      string       `json:"sampler,omitempty"`
	WallMS       int64        `json:"wall_ms"`
	Rows         []*resultRow `json:"rows"`
	Errors       []string     `json:"errors,omitempty"`
}

func splitList(s string, all []string) []string {
	if s == "" || s == "all" {
		return all
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// cmdBench is the single-model wrapper over the sweep orchestrator: one
// grid of datasets × cost settings × algorithms under a pinned diffusion
// model, emitted as one BENCH_*.json. The orchestration — shared
// instance preparation per (dataset, cost) group, grid-ordered rows —
// lives in internal/sweep; bench only shapes the output document.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	datasets := fs.String("datasets", "nethept-s", "comma-separated datasets (or 'all')")
	algos := fs.String("algos", "all", "comma-separated algorithms (or 'all')")
	costs := fs.String("costs", "all", "comma-separated cost settings (or 'all')")
	model := fs.String("model", "ic", "diffusion model: ic or lt")
	out := fs.String("out", "BENCH_results.json", "output file (BENCH_*.json)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the grid run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after the grid) to this file")
	var spec sweep.Spec
	specFlags(fs, &spec)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := sweep.ParseModel(*model)
	if err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	if err := checkSpecFlags(&spec); err != nil {
		return err
	}
	spec.Datasets = splitList(*datasets, sweep.AllDatasets())
	spec.Algos = splitList(*algos, adaptive.Algorithms)
	spec.CostSettings = splitList(*costs, sweep.AllCostSettings)
	spec.Models = []string{*model}
	spec.SetDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}
	res, err := sweep.Run(context.Background(), &spec, sweep.Options{Log: os.Stderr})
	stopProfiles() // profile covers the grid, not the JSON encode below
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		warnShortfall(row)
	}
	grid := benchOutput{
		Datasets:     spec.Datasets,
		Algos:        spec.Algos,
		CostSettings: spec.CostSettings,
		Model:        m.String(),
		Scale:        spec.Scale,
		Seed:         spec.Seed,
		Sampler:      spec.Sampler,
		WallMS:       res.WallMS,
		Rows:         res.Rows,
		Errors:       res.Errors,
	}
	if err := writeBenchJSON(*out, &grid); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d rows (%d errors) to %s in %dms\n",
		len(grid.Rows), len(grid.Errors), *out, grid.WallMS)
	return nil
}

// writeBenchJSON writes the grid atomically: encode into a temp file in
// the destination directory, fsync, then rename over the target. On any
// failure the rows are dumped to stdout before returning the error, so a
// finished grid is never lost to an output problem — the historical
// failure mode was an os.Create error at the very end discarding every
// computed row.
func writeBenchJSON(path string, grid *benchOutput) error {
	err := func() error {
		tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name()) // no-op once the rename has happened
		enc := json.NewEncoder(tmp)
		enc.SetIndent("", "  ")
		if err := enc.Encode(grid); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), path)
	}()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing %s failed (%v); dumping rows to stdout\n", path, err)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if dumpErr := enc.Encode(grid); dumpErr != nil {
			return fmt.Errorf("write %s: %v (stdout dump also failed: %v)", path, err, dumpErr)
		}
		return fmt.Errorf("write %s: %w (rows dumped to stdout)", path, err)
	}
	return nil
}
