package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/sweep"
)

// cmdLoadBench measures serving throughput: it starts the campaign
// server in-process on a loopback listener, drives it with a closed
// loop of concurrent clients — each repeatedly creating a campaign,
// stepping it to completion over HTTP, and deleting it — and reports
// campaigns/sec plus the next-seed (step request) latency distribution.
// The first campaign runs untimed so the instance registry's one-time
// preparation and the HTTP client's connection setup stay out of the
// measured window; every timed campaign rides the warm instance.
//
// Output is a BENCH_serve_*.json document (`"kind": "serve-loadbench"`)
// that `repro report` renders as a "Serving throughput" section.
// Like rrbench numbers, these are machine-dependent: committed fixtures
// capture the trajectory of the serving hot path, not portable truth.

// serveBenchKind tags the loadbench JSON document so `repro report` can
// tell it apart from plain bench documents.
const serveBenchKind = "serve-loadbench"

// serveBenchOutput is the BENCH_serve_*.json document.
type serveBenchOutput struct {
	Kind            string  `json:"kind"`
	Dataset         string  `json:"dataset"`
	Model           string  `json:"model"`
	Cost            string  `json:"cost"`
	Scale           float64 `json:"scale"`
	K               int     `json:"k"`
	Algo            string  `json:"algo"`
	Clients         int     `json:"clients"`
	Seed            uint64  `json:"seed"`
	WallMS          float64 `json:"wall_ms"`
	Campaigns       int64   `json:"campaigns"`
	Steps           int64   `json:"steps"`
	CampaignsPerSec float64 `json:"campaigns_per_sec"`
	StepsPerSec     float64 `json:"steps_per_sec"`
	StepP50MS       float64 `json:"step_p50_ms"`
	StepP95MS       float64 `json:"step_p95_ms"`
	StepP99MS       float64 `json:"step_p99_ms"`
}

func cmdLoadBench(args []string) error {
	fs := flag.NewFlagSet("loadbench", flag.ExitOnError)
	dataset := fs.String("dataset", "nethept-s", "Table II stand-in dataset name")
	model := fs.String("model", "ic", "diffusion model: ic or lt")
	costName := fs.String("cost", "uniform", "cost setting: degree-proportional, uniform, random")
	algo := fs.String("algo", adaptive.AlgoADDATP, fmt.Sprintf("algorithm: %v", adaptive.Algorithms))
	clients := fs.Int("clients", 4, "concurrent closed-loop clients")
	duration := fs.Duration("duration", 5*time.Second, "timed window (campaigns in flight at the deadline finish and count)")
	out := fs.String("out", "", "output file (default BENCH_serve_<dataset>.json)")
	var spec sweep.Spec
	specFlags(fs, &spec)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkSpecFlags(&spec); err != nil {
		return err
	}
	if *clients <= 0 {
		return fmt.Errorf("loadbench: clients must be positive, got %d", *clients)
	}
	if *duration <= 0 {
		return fmt.Errorf("loadbench: duration must be positive, got %s", *duration)
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_serve_%s.json", *dataset)
	}
	spec.Datasets = []string{*dataset}
	spec.Models = []string{*model}
	spec.CostSettings = []string{*costName}
	spec.Algos = []string{*algo}
	spec.SetDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}

	// The in-process server: a real HTTP stack on a loopback listener, so
	// the measured path is exactly what `repro serve` clients see — mux
	// dispatch, instrumentation, JSON encoding, kernel sockets — without
	// cross-process scheduling noise.
	reg := service.NewRegistry(spec, 0)
	srv := service.NewServer(reg, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	// Untimed warmup campaign: triggers the one-time instance preparation
	// and leaves a warm batcher parked in the pool.
	warm := runOneCampaign(client, base, spec.Seed+100, nil)
	if warm.err != nil {
		return fmt.Errorf("loadbench: warmup campaign: %w", warm.err)
	}

	var (
		seedCtr   atomic.Uint64 // per-campaign seed offsets, across clients
		campaigns atomic.Int64
		steps     atomic.Int64
		stop      atomic.Bool
		mu        sync.Mutex
		latencies []float64 // step request latency, ms
		firstErr  error
	)
	start := time.Now()
	time.AfterFunc(*duration, func() { stop.Store(true) })
	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]float64, 0, 1024)
			for !stop.Load() {
				seed := spec.Seed + 100 + seedCtr.Add(1)
				res := runOneCampaign(client, base, seed, &local)
				if res.err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = res.err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				campaigns.Add(1)
				steps.Add(res.steps)
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return fmt.Errorf("loadbench: %w", firstErr)
	}
	if campaigns.Load() == 0 {
		return fmt.Errorf("loadbench: no campaign completed within %s; raise --duration or shrink --scale", *duration)
	}

	sort.Float64s(latencies)
	doc := serveBenchOutput{
		Kind:            serveBenchKind,
		Dataset:         *dataset,
		Model:           *model,
		Cost:            *costName,
		Scale:           spec.Scale,
		K:               spec.K,
		Algo:            *algo,
		Clients:         *clients,
		Seed:            spec.Seed,
		WallMS:          wallMS(elapsed),
		Campaigns:       campaigns.Load(),
		Steps:           steps.Load(),
		CampaignsPerSec: float64(campaigns.Load()) / elapsed.Seconds(),
		StepsPerSec:     float64(steps.Load()) / elapsed.Seconds(),
		StepP50MS:       percentile(latencies, 0.50),
		StepP95MS:       percentile(latencies, 0.95),
		StepP99MS:       percentile(latencies, 0.99),
	}
	if err := writeJSONAtomic(*out, &doc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadbench: %s/%s/%s@%g clients=%d wall=%.1fs\n",
		*dataset, *model, *costName, spec.Scale, *clients, elapsed.Seconds())
	fmt.Fprintf(os.Stderr, "  %d campaigns (%.1f/s), %d steps (%.0f/s), step latency p50/p95/p99 = %.3f/%.3f/%.3f ms\n",
		doc.Campaigns, doc.CampaignsPerSec, doc.Steps, doc.StepsPerSec,
		doc.StepP50MS, doc.StepP95MS, doc.StepP99MS)
	fmt.Fprintf(os.Stderr, "loadbench: wrote %s\n", *out)
	return nil
}

// campaignResult is one closed-loop cycle's accounting.
type campaignResult struct {
	steps int64
	err   error
}

// runOneCampaign drives create → step* → delete over HTTP. When lat is
// non-nil, each step request's latency is appended to it in ms.
func runOneCampaign(client *http.Client, base string, seed uint64, lat *[]float64) campaignResult {
	var st struct {
		ID string `json:"id"`
	}
	body := fmt.Sprintf(`{"seed": %d}`, seed)
	if err := doJSON(client, http.MethodPost, base+"/v1/campaigns", body, http.StatusCreated, &st); err != nil {
		return campaignResult{err: err}
	}
	var res campaignResult
	stepURL := base + "/v1/campaigns/" + st.ID + "/step"
	for {
		var resp struct {
			Seed *graph.NodeID `json:"seed"`
			Stop bool          `json:"stop"`
		}
		t0 := time.Now()
		err := doJSON(client, http.MethodPost, stepURL, "{}", http.StatusOK, &resp)
		if lat != nil {
			*lat = append(*lat, float64(time.Since(t0))/float64(time.Millisecond))
		}
		if err != nil {
			res.err = err
			return res
		}
		res.steps++
		if resp.Stop {
			break
		}
	}
	res.err = doJSON(client, http.MethodDelete, base+"/v1/campaigns/"+st.ID, "", http.StatusOK, nil)
	return res
}

// doJSON issues one request and decodes the JSON response, insisting on
// the expected status. 429 backpressure responses honor Retry-After
// capped at one second — a closed-loop client should back off the way
// the README tells real clients to, without stalling the benchmark.
func doJSON(client *http.Client, method, url, body string, wantStatus int, out any) error {
	for {
		var rd io.Reader
		if body != "" {
			rd = bytes.NewReader([]byte(body))
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return err
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode != wantStatus {
			return fmt.Errorf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, data)
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(data, out)
	}
}

// percentile returns the nearest-rank percentile of an already-sorted
// sample, in the sample's units.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*q+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// writeJSONAtomic writes doc as indented JSON via temp file + rename.
func writeJSONAtomic(path string, doc any) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
