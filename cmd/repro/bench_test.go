package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchGoldenArgs is the tiny grid pinned by testdata/BENCH_golden_tiny.json.
var benchGoldenArgs = []string{
	"--datasets", "nethept-s", "--algos", "all-targets,nsg", "--costs", "uniform",
	"--model", "ic", "--scale", "0.004", "--k", "5", "--reps", "2",
	"--nsg-theta", "2000", "--seed", "7",
}

// normalizedBench loads a BENCH document and renders it with the
// volatile wall-clock fields zeroed, leaving the seed-deterministic
// payload.
func normalizedBench(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b benchOutput
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	b.WallMS = 0
	for _, r := range b.Rows {
		r.WallMS = 0
		r.SetupMS = 0
		r.SamplingMS = 0
		r.RRPerSec = 0
	}
	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestBenchGoldenTiny pins `repro bench`'s output — now produced through
// the internal/sweep orchestrator — to a committed fixture: same grid,
// same seed, byte-identical document modulo wall-clock fields. Any
// change to row schema, seeding, or orchestration that alters results
// shows up as a diff here.
func TestBenchGoldenTiny(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_out.json")
	if err := cmdBench(append(append([]string(nil), benchGoldenArgs...), "--out", out)); err != nil {
		t.Fatal(err)
	}
	got := normalizedBench(t, out)
	want := normalizedBench(t, filepath.Join("testdata", "BENCH_golden_tiny.json"))
	if got != want {
		t.Fatalf("bench output diverged from golden fixture:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteBenchJSONAtomic covers the all-or-nothing fix: the output is
// written via temp file + rename (no torn BENCH file on failure), and a
// write error surfaces the rows instead of discarding the grid.
func TestWriteBenchJSONAtomic(t *testing.T) {
	dir := t.TempDir()
	grid := &benchOutput{Model: "IC", Rows: []*resultRow{{Algo: "nsg", Dataset: "nethept-s"}}}
	path := filepath.Join(dir, "BENCH_a.json")
	if err := writeBenchJSON(path, grid); err != nil {
		t.Fatal(err)
	}
	var back benchOutput
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 || back.Rows[0].Algo != "nsg" {
		t.Fatalf("round trip lost rows: %+v", back)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	// Unwritable destination: the error must surface, not silently drop
	// the grid (rows are additionally dumped to stdout).
	if err := writeBenchJSON(filepath.Join(dir, "no-such-dir", "BENCH_b.json"), grid); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
