package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/adaptive"
	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
)

// runConfig is one fully resolved experiment configuration.
type runConfig struct {
	algo        string
	dataset     string
	scale       float64
	model       cascade.Model
	costSetting cost.Setting
	k           int
	reps        int
	seed        uint64
	zeta        float64
	eps         float64
	delta       float64
	adgTheta    int
	nsgTheta    int
	workers     int
	immEps      float64
	sampler     string
}

// runFlags registers the flags shared by `run` and `bench`.
func runFlags(fs *flag.FlagSet) (k, reps, adgTheta, nsgTheta, workers *int, seed *uint64, scale, zeta, eps, delta, immEps *float64, sampler *string) {
	k = fs.Int("k", 50, "target set size |T| picked by IMM")
	reps = fs.Int("reps", 3, "realizations to average over")
	adgTheta = fs.Int("adg-theta", 10_000, "RR sets per residual version for ADG's RIS oracle")
	nsgTheta = fs.Int("nsg-theta", 20_000, "RR sets for the nonadaptive greedy baseline")
	workers = fs.Int("workers", 0, "parallel RR workers (0 = GOMAXPROCS)")
	seed = fs.Uint64("seed", 1, "root seed (runs are deterministic given it)")
	scale = fs.Float64("scale", 0.1, "dataset scale factor (1 = paper size)")
	zeta = fs.Float64("zeta", 0.05, "additive error ζ for ADDATP/HATP")
	eps = fs.Float64("eps", 0.2, "relative error ε for HATP")
	delta = fs.Float64("delta", 0.1, "failure probability δ for ADDATP/HATP")
	immEps = fs.Float64("imm-eps", 0.5, "IMM approximation slack for target selection")
	sampler = fs.String("sampler", adaptive.PolicySequential,
		fmt.Sprintf("RR sampling stopping rule for ADDATP/HATP: %v (fixed = paper-faithful attempt loop)", adaptive.SamplingPolicies))
	return
}

// resultRow is the JSON emitted by `repro run` and collected by `bench`.
type resultRow struct {
	Algo        string  `json:"algo"`
	Dataset     string  `json:"dataset"`
	Scale       float64 `json:"scale"`
	Model       string  `json:"model"`
	CostSetting string  `json:"cost_setting"`
	N           int     `json:"n"`
	M           int64   `json:"m"`
	K           int     `json:"k"`
	Targets     int     `json:"targets"`
	Budget      float64 `json:"budget"`

	Realizations int     `json:"realizations"`
	AvgProfit    float64 `json:"profit"`
	AvgSpread    float64 `json:"spread"`
	AvgCost      float64 `json:"cost"`
	AvgRounds    float64 `json:"rounds"`
	MinProfit    float64 `json:"min_profit"`
	MaxProfit    float64 `json:"max_profit"`

	RRDrawn     int64 `json:"rr_drawn"`
	RRRequested int64 `json:"rr_requested"`
	// RRReused counts draws avoided by cross-round RR-set reuse (validity
	// filtering); RRPeakBytes is the largest RR-collection footprint any
	// realization reached. Both are deterministic for a fixed seed.
	RRReused    int64 `json:"rr_reused"`
	RRPeakBytes int64 `json:"rr_peak_bytes"`
	// SamplingMS is the wall time spent inside RR generation across all
	// realizations; RRPerSec = RRDrawn / that time is the sampling
	// throughput, the number BENCH files track across PRs.
	SamplingMS int64   `json:"sampling_ms"`
	RRPerSec   float64 `json:"rr_per_sec"`
	Fallbacks  int     `json:"fallbacks"`
	// Stopping-rule telemetry (sampling policies only): which controller
	// ran, how many certification looks it took, how many RR batches were
	// actually drawn, and how many rounds certified below the sampling
	// frontier instead of falling back to the point estimate.
	Sampler        string `json:"sampler,omitempty"`
	Attempts       int    `json:"attempts"`
	RRBatches      int    `json:"rr_batches"`
	CertifiedEarly int    `json:"certified_early"`

	ImmTheta          int   `json:"imm_theta"`
	ImmThetaRequested int   `json:"imm_theta_requested"`
	ImmTotalRR        int64 `json:"imm_total_rr"`
	ImmPeakRRBytes    int64 `json:"imm_peak_rr_bytes"`

	Seed    uint64 `json:"seed"`
	SetupMS int64  `json:"setup_ms"` // dataset gen + IMM + cost calibration (shared across a bench row group)
	WallMS  int64  `json:"wall_ms"`  // algorithm execution only
}

// preparedInstance is the algorithm-independent part of a configuration:
// the materialized graph plus IMM targets and calibrated costs. bench
// prepares once per (dataset, cost setting) and reuses it for every
// algorithm.
type preparedInstance struct {
	g       *graph.Graph
	spec    gen.DatasetSpec
	inst    *adaptive.Instance
	immRes  *imm.Result
	setupMS int64
}

// prepare materializes the dataset and builds the experiment instance
// (IMM targets + spread-calibrated costs).
func prepare(cfg runConfig) (*preparedInstance, error) {
	start := time.Now()
	g, spec, err := buildDataset(cfg.dataset, cfg.scale)
	if err != nil {
		return nil, err
	}
	inst, immRes, err := adaptive.Prepare(g, cfg.model, adaptive.Setup{
		K:           cfg.k,
		CostSetting: cfg.costSetting,
		ImmEps:      cfg.immEps,
		Seed:        cfg.seed,
		Workers:     cfg.workers,
		Sampler:     cfg.sampler,
	})
	if err != nil {
		return nil, err
	}
	return &preparedInstance{
		g: g, spec: spec, inst: inst, immRes: immRes,
		setupMS: time.Since(start).Milliseconds(),
	}, nil
}

// execute runs the configured algorithm over cfg.reps realizations of a
// prepared instance.
func execute(cfg runConfig, p *preparedInstance) (*resultRow, error) {
	start := time.Now()
	opts := adaptive.RunOptions{
		Sampling: adaptive.SamplingOptions{
			Policy:  cfg.sampler,
			Zeta:    cfg.zeta,
			Eps:     cfg.eps,
			Delta:   cfg.delta,
			Workers: cfg.workers,
		},
		ADGTheta: cfg.adgTheta,
		NSGTheta: cfg.nsgTheta,
	}
	rep, err := adaptive.RunExperiment(p.inst, cfg.algo, cfg.reps, opts, cfg.seed+100)
	if err != nil {
		return nil, err
	}
	g, spec, inst, immRes := p.g, p.spec, p.inst, p.immRes
	return &resultRow{
		Algo:              cfg.algo,
		Dataset:           spec.Name,
		Scale:             cfg.scale,
		Model:             cfg.model.String(),
		CostSetting:       cfg.costSetting.String(),
		N:                 g.N(),
		M:                 g.M(),
		K:                 cfg.k,
		Targets:           len(inst.Targets),
		Budget:            inst.Costs.Total(inst.Targets),
		Realizations:      rep.Realizations,
		AvgProfit:         rep.AvgProfit,
		AvgSpread:         rep.AvgSpread,
		AvgCost:           rep.AvgCost,
		AvgRounds:         rep.AvgRounds,
		MinProfit:         rep.MinProfit,
		MaxProfit:         rep.MaxProfit,
		RRDrawn:           rep.RRDrawn,
		RRRequested:       rep.RRRequested,
		RRReused:          rep.RRReused,
		RRPeakBytes:       rep.RRPeakBytes,
		SamplingMS:        rep.SamplingNS / 1e6,
		RRPerSec:          rrPerSec(rep.RRDrawn, rep.SamplingNS),
		Fallbacks:         rep.Fallbacks,
		Sampler:           rep.Sampler,
		Attempts:          rep.Attempts,
		RRBatches:         rep.RRBatches,
		CertifiedEarly:    rep.CertifiedEarly,
		ImmTheta:          immRes.Theta,
		ImmThetaRequested: immRes.ThetaRequested,
		ImmTotalRR:        immRes.TotalRR,
		ImmPeakRRBytes:    immRes.PeakRRBytes,
		Seed:              cfg.seed,
		SetupMS:           p.setupMS,
		WallMS:            time.Since(start).Milliseconds(),
	}, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	algo := fs.String("algo", adaptive.AlgoADDATP, fmt.Sprintf("algorithm: %v", adaptive.Algorithms))
	dataset := fs.String("dataset", "nethept-s", "Table II stand-in dataset name")
	model := fs.String("model", "ic", "diffusion model: ic or lt")
	costName := fs.String("cost", "degree-proportional", "cost setting: degree-proportional, uniform, random")
	k, reps, adgTheta, nsgTheta, workers, seed, scale, zeta, eps, delta, immEps, sampler := runFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseModel(*model)
	if err != nil {
		return err
	}
	cs, err := parseCostSetting(*costName)
	if err != nil {
		return err
	}
	if err := validateAlgo(*algo); err != nil {
		return err
	}
	if err := validateSampler(*sampler); err != nil {
		return err
	}
	cfg := runConfig{
		algo: *algo, dataset: *dataset, scale: *scale, model: m, costSetting: cs,
		k: *k, reps: *reps, seed: *seed, zeta: *zeta, eps: *eps, delta: *delta,
		adgTheta: *adgTheta, nsgTheta: *nsgTheta, workers: *workers, immEps: *immEps,
		sampler: *sampler,
	}
	p, err := prepare(cfg)
	if err != nil {
		return err
	}
	row, err := execute(cfg, p)
	if err != nil {
		return err
	}
	warnShortfall(row)
	return json.NewEncoder(os.Stdout).Encode(row)
}

// rrPerSec converts drawn RR sets and sampling wall time into a
// throughput; zero when no time was recorded (exact-oracle runs).
func rrPerSec(drawn, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(drawn) / (float64(ns) / 1e9)
}

// warnShortfall surfaces RR-set generation shortfalls on stderr so a
// weakened guarantee never passes silently.
func warnShortfall(row *resultRow) {
	if row.ImmTheta < row.ImmThetaRequested {
		fmt.Fprintf(os.Stderr, "repro: warning: IMM selection used %d/%d requested RR sets; guarantee weakened\n",
			row.ImmTheta, row.ImmThetaRequested)
	}
	if row.RRDrawn < row.RRRequested {
		fmt.Fprintf(os.Stderr, "repro: warning: %s drew %d/%d requested RR sets\n",
			row.Algo, row.RRDrawn, row.RRRequested)
	}
}
