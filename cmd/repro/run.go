package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/adaptive"
	"repro/internal/sweep"
)

// resultRow is one experiment row — sweep.Row, the shared currency of
// `repro run` (stdout), `repro bench` (BENCH_*.json), and `repro sweep`
// (SWEEP_*.jsonl journals).
type resultRow = sweep.Row

// specFlags registers the shared experiment parameters of run, bench,
// and sweep, writing straight into a sweep.Spec.
func specFlags(fs *flag.FlagSet, s *sweep.Spec) {
	fs.IntVar(&s.K, "k", 50, "target set size |T| picked by IMM")
	fs.IntVar(&s.Reps, "reps", 3, "realizations to average over")
	fs.IntVar(&s.ADGTheta, "adg-theta", 10_000, "RR sets per residual version for ADG's RIS oracle")
	fs.IntVar(&s.NSGTheta, "nsg-theta", 20_000, "RR sets for the nonadaptive greedy baseline")
	fs.IntVar(&s.Workers, "workers", 0, "parallel RR/selection workers per cell (0 = GOMAXPROCS)")
	fs.Uint64Var(&s.Seed, "seed", 1, "root seed (runs are deterministic given it)")
	fs.Float64Var(&s.Scale, "scale", 0.1, "dataset scale factor (1 = paper size)")
	fs.Float64Var(&s.Zeta, "zeta", 0.05, "additive error ζ for ADDATP/HATP")
	fs.Float64Var(&s.Eps, "eps", 0.2, "relative error ε for HATP")
	fs.Float64Var(&s.Delta, "delta", 0.1, "failure probability δ for ADDATP/HATP")
	fs.Float64Var(&s.ImmEps, "imm-eps", 0.5, "IMM approximation slack for target selection")
	fs.StringVar(&s.Sampler, "sampler", adaptive.PolicySequential,
		fmt.Sprintf("RR sampling stopping rule for ADDATP/HATP: %v (fixed = paper-faithful attempt loop)", adaptive.SamplingPolicies))
}

// checkSpecFlags rejects explicitly non-positive parameter flags. Every
// specFlags default is positive, so a zero or negative here is always an
// explicit `--reps 0`-style request — which must keep failing fast, as
// it always did; sweep.Spec treats 0 as "use the default" only for
// fields omitted from spec documents.
func checkSpecFlags(s *sweep.Spec) error {
	switch {
	case s.Reps <= 0:
		return fmt.Errorf("reps must be positive, got %d", s.Reps)
	case s.Scale <= 0:
		return fmt.Errorf("scale must be positive, got %g", s.Scale)
	case s.K <= 0:
		return fmt.Errorf("k must be positive, got %d", s.K)
	case s.Zeta <= 0 || s.Eps <= 0 || s.Delta <= 0 || s.ImmEps <= 0:
		return fmt.Errorf("zeta/eps/delta/imm-eps must be positive (got %g/%g/%g/%g)",
			s.Zeta, s.Eps, s.Delta, s.ImmEps)
	case s.ADGTheta <= 0 || s.NSGTheta <= 0:
		return fmt.Errorf("adg-theta/nsg-theta must be positive (got %d/%d)", s.ADGTheta, s.NSGTheta)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	algo := fs.String("algo", adaptive.AlgoADDATP, fmt.Sprintf("algorithm: %v", adaptive.Algorithms))
	dataset := fs.String("dataset", "nethept-s", "Table II stand-in dataset name")
	model := fs.String("model", "ic", "diffusion model: ic or lt")
	costName := fs.String("cost", "degree-proportional", "cost setting: degree-proportional, uniform, random")
	showSeeds := fs.Bool("show-seeds", false, "include each realization's seed list in the output row")
	var spec sweep.Spec
	specFlags(fs, &spec)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkSpecFlags(&spec); err != nil {
		return err
	}
	spec.Datasets = []string{*dataset}
	spec.Models = []string{*model}
	spec.CostSettings = []string{*costName}
	spec.Algos = []string{*algo}
	spec.EmitSeeds = *showSeeds
	spec.SetDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}
	p, err := sweep.Prepare(&spec, *dataset, *model, *costName)
	if err != nil {
		return err
	}
	row, err := sweep.Execute(&spec, p, sweep.Cell{Dataset: *dataset, Model: *model, Cost: *costName, Algo: *algo}, nil)
	if err != nil {
		return err
	}
	warnShortfall(row)
	return json.NewEncoder(os.Stdout).Encode(row)
}

// warnShortfall surfaces RR-set generation shortfalls on stderr so a
// weakened guarantee never passes silently.
func warnShortfall(row *resultRow) {
	if row.ImmTheta < row.ImmThetaRequested {
		fmt.Fprintf(os.Stderr, "repro: warning: IMM selection used %d/%d requested RR sets; guarantee weakened\n",
			row.ImmTheta, row.ImmThetaRequested)
	}
	if row.RRDrawn < row.RRRequested {
		fmt.Fprintf(os.Stderr, "repro: warning: %s drew %d/%d requested RR sets\n",
			row.Algo, row.RRDrawn, row.RRRequested)
	}
}
