package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/gen"
	"repro/internal/sweep"
)

// cmdReport turns one or more experiment result files — BENCH_*.json
// from `repro bench` and/or SWEEP_*.jsonl journals from `repro sweep` —
// into an EXPERIMENTS.md with the paper's Figures 2–4 style tables:
// realized profit, adaptive rounds, and RR-set sampling cost per
// algorithm × dataset × cost setting. Inputs sharing (scale, seed,
// sampler) are merged into one section with the diffusion model as a row
// dimension, so the committed IC and LT fixtures render into a single
// Table II layout. Regenerating from checked-in fixtures is
// deterministic, so CI can diff the output against the committed file.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("out", "EXPERIMENTS.md", "output markdown file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inputs := fs.Args()
	if len(inputs) == 0 {
		for _, pattern := range []string{"BENCH_*.json", "SWEEP_*.jsonl"} {
			matches, err := filepath.Glob(pattern)
			if err != nil {
				return err
			}
			inputs = append(inputs, matches...)
		}
	}
	if len(inputs) == 0 {
		return fmt.Errorf("report: no input files (pass BENCH_*.json / SWEEP_*.jsonl paths or run `repro bench` first)")
	}
	sort.Strings(inputs)
	var benches []*benchOutput
	var rrDocs []*rrBenchOutput
	var serveDocs []*serveBenchOutput
	for _, path := range inputs {
		b, rr, sv, err := readBench(path)
		if err != nil {
			return err
		}
		switch {
		case rr != nil:
			rrDocs = append(rrDocs, rr)
		case sv != nil:
			serveDocs = append(serveDocs, sv)
		default:
			benches = append(benches, b)
		}
	}
	md := renderReport(benches, rrDocs, serveDocs, inputs)
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "report: wrote %s from %d input file(s)\n", *out, len(inputs))
	return nil
}

// readBench loads one input as a benchOutput, converting sweep journals
// (detected by a leading spec record, regardless of extension) on the
// fly. rrbench throughput documents — detected by their variants array —
// and loadbench serving documents — detected by their kind tag, checked
// first since their other fields overlap benchOutput's — are returned
// separately; each renders as its own section.
func readBench(path string) (*benchOutput, *rrBenchOutput, *serveBenchOutput, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	if isJournal(data) {
		records, err := sweep.ParseJournal(data)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("report: %s: %w", path, err)
		}
		b, err := journalToBench(records)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("report: %s: %w", path, err)
		}
		return b, nil, nil, nil
	}
	var sv serveBenchOutput
	if err := json.Unmarshal(data, &sv); err == nil && sv.Kind == serveBenchKind {
		return nil, nil, &sv, nil
	}
	var rr rrBenchOutput
	if err := json.Unmarshal(data, &rr); err == nil && len(rr.Variants) > 0 {
		return nil, &rr, nil, nil
	}
	var b benchOutput
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return &b, nil, nil, nil
}

// isJournal reports whether the file's first line is a sweep spec record.
func isJournal(data []byte) bool {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	var rec struct {
		Type string `json:"type"`
	}
	return json.Unmarshal(line, &rec) == nil && rec.Type == "spec"
}

// journalToBench shapes a sweep journal like a bench document so both
// render through the same tables. Multi-model journals set Models; the
// per-record wall times sum into WallMS.
func journalToBench(records []sweep.Record) (*benchOutput, error) {
	spec, err := sweep.JournalSpec(records)
	if err != nil {
		return nil, err
	}
	cells, err := sweep.CellRecords(records)
	if err != nil {
		return nil, err
	}
	b := &benchOutput{
		Datasets:     spec.Datasets,
		Algos:        spec.Algos,
		CostSettings: spec.CostSettings,
		Models:       spec.Models,
		Scale:        spec.Scale,
		Seed:         spec.Seed,
		Sampler:      spec.Sampler,
	}
	for _, rec := range cells {
		b.WallMS += rec.ElapsedMS
		switch {
		case rec.Row != nil:
			b.Rows = append(b.Rows, rec.Row)
		case rec.Err != "":
			b.Errors = append(b.Errors, fmt.Sprintf("%s: %s", rec.Key, rec.Err))
		}
	}
	return b, nil
}

// metric extracts one table cell value from a row, already formatted.
type metric struct {
	title string // section heading, Figures 2–4 style
	note  string // one-line explanation under the heading
	cell  func(*resultRow) string
	// applies, when set, gates the whole table: a metric whose data no
	// row in the section carries (e.g. counters added after a fixture
	// was recorded) is omitted instead of rendering a table of dashes.
	applies func(*reportSection) bool
}

var reportMetrics = []metric{
	{
		title: "Profit",
		note: "Average realized profit ρ(S) = I_φ(S) − c(S) over the run's realizations " +
			"(paper Fig. 2; higher is better, adaptive policies should dominate the nonadaptive baselines).",
		cell: func(r *resultRow) string { return fmt.Sprintf("%.2f", r.AvgProfit) },
	},
	{
		title: "Rounds",
		note:  "Average seeding rounds until the stopping rule fires (paper Fig. 3; all-targets always seeds |T|).",
		cell:  func(r *resultRow) string { return fmt.Sprintf("%.1f", r.AvgRounds) },
	},
	{
		title: "RR sets drawn",
		note: "Reverse-reachable sets generated across the run (paper Fig. 4's sampling cost; " +
			"ADDATP's Hoeffding θ ∝ 1/ζ² makes it the most expensive policy).",
		cell: func(r *resultRow) string { return fmt.Sprintf("%d", r.RRDrawn) },
	},
	{
		title: "RR sets reused",
		note: "Draws avoided by cross-round reuse: sets that survived validity filtering " +
			"(Collection.Filter) and were counted toward a later θ target instead of being regenerated.",
		cell: func(r *resultRow) string { return fmt.Sprintf("%d", r.RRReused) },
	},
	{
		title: "RR throughput",
		note: "RR sets drawn per second of sampling wall time (drawn / sampling time; 0 for " +
			"exact-oracle runs that never sample). Machine-dependent, unlike the other metrics; " +
			"BENCH files capture its trajectory as the sampler hot path evolves.",
		cell: func(r *resultRow) string {
			if r.RRPerSec == 0 {
				return "—"
			}
			return fmt.Sprintf("%.2fM rr/s", r.RRPerSec/1e6)
		},
	},
	{
		title: "RR traffic model",
		note: "Bytes of sampler memory traffic behind one examined edge, " +
			"(4·touches + 17·visits)/touches, from the sampler's exact visit and " +
			"edge-touch counters (one 16-byte metadata entry and one visited-mask " +
			"byte per visit, one 4-byte adjacency word per touch). A locality model " +
			"derived from exact counters, not a hardware measurement; — for cells " +
			"recorded before the counters existed or that never sample.",
		applies: func(sec *reportSection) bool {
			for _, r := range sec.rows {
				if r.RREdgeTouches > 0 {
					return true
				}
			}
			return false
		},
		cell: func(r *resultRow) string {
			if r.RREdgeTouches == 0 {
				return "—"
			}
			return fmt.Sprintf("%.1f B/touch",
				(4*float64(r.RREdgeTouches)+17*float64(r.RRVisits))/float64(r.RREdgeTouches))
		},
	},
	{
		title: "Peak RR arena",
		note: "Largest RR-collection footprint (arena + offsets + roots + inverted index) " +
			"any realization reached; deterministic per seed.",
		cell: func(r *resultRow) string { return fmt.Sprintf("%.2f MiB", float64(r.RRPeakBytes)/(1<<20)) },
	},
	{
		title: "Stopping-rule telemetry",
		note: "Per-cell controller accounting, summed over realizations: certification looks " +
			"(stopping-rule evaluations), RR batches actually drawn, rounds certified below the " +
			"sampling frontier, and rounds that fell back to the point estimate. Sampling " +
			"policies only; — for oracle/nonadaptive algorithms.",
		cell: func(r *resultRow) string {
			if r.Attempts == 0 {
				if r.Fallbacks == 0 {
					return "—"
				}
				// Rows written before the telemetry columns existed carry
				// only the fallback count.
				return fmt.Sprintf("%d fallbacks", r.Fallbacks)
			}
			return fmt.Sprintf("%d looks · %d batches · %d early · %d fallbacks",
				r.Attempts, r.RRBatches, r.CertifiedEarly, r.Fallbacks)
		},
	},
}

// reportSection is one rendered section: every input sharing (scale,
// seed, sampler) merged into a single Table II layout with the diffusion
// model as a row dimension — IC and LT fixtures of one configuration
// render as one set of tables.
type reportSection struct {
	scale    float64
	seed     uint64
	sampler  string
	k        int
	models   []string
	datasets []string
	costs    []string
	algos    []string
	rows     map[string]*resultRow // dataset \x00 model \x00 cost \x00 algo
	reps     int
	wallMS   int64
	errors   []string
}

// benchModels returns the models a source covers in display form
// ("IC"/"LT"); bench documents carry one, sweep journals possibly many.
func benchModels(bench *benchOutput) []string {
	names := bench.Models
	if len(names) == 0 && bench.Model != "" {
		names = []string{bench.Model}
	}
	out := make([]string, 0, len(names))
	for _, name := range names {
		if m, err := sweep.ParseModel(name); err == nil {
			out = append(out, m.String())
		} else {
			out = append(out, name)
		}
	}
	return out
}

func appendUnique(dst []string, src ...string) []string {
	for _, s := range src {
		seen := false
		for _, d := range dst {
			if d == s {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, s)
		}
	}
	return dst
}

// mergeSections groups the inputs by (scale, seed, sampler, k, reps) in
// first-appearance order and merges each group's axes and rows. k and
// reps come from the source's rows: without them in the key, two benches
// of the same seed but different --k would silently overwrite each
// other's cells last-wins.
func mergeSections(benches []*benchOutput) []*reportSection {
	var sections []*reportSection
	byKey := make(map[string]*reportSection)
	for _, bench := range benches {
		k, reps := 0, 0
		if len(bench.Rows) > 0 {
			k, reps = bench.Rows[0].K, bench.Rows[0].Realizations
		}
		key := fmt.Sprintf("%g\x00%d\x00%s\x00%d\x00%d", bench.Scale, bench.Seed, bench.Sampler, k, reps)
		sec, ok := byKey[key]
		if !ok {
			sec = &reportSection{
				scale: bench.Scale, seed: bench.Seed, sampler: bench.Sampler, k: k,
				rows: make(map[string]*resultRow),
			}
			byKey[key] = sec
			sections = append(sections, sec)
		}
		bm := benchModels(bench)
		sec.models = appendUnique(sec.models, bm...)
		sec.datasets = appendUnique(sec.datasets, bench.Datasets...)
		sec.costs = appendUnique(sec.costs, bench.CostSettings...)
		sec.algos = appendUnique(sec.algos, bench.Algos...)
		sec.wallMS += bench.WallMS
		sec.errors = append(sec.errors, bench.Errors...)
		for _, r := range bench.Rows {
			model := r.Model
			if model == "" && len(bm) == 1 {
				// Rows written before the model column existed inherit the
				// document's single model.
				model = bm[0]
			}
			sec.rows[r.Dataset+"\x00"+model+"\x00"+r.CostSetting+"\x00"+r.Algo] = r
			sec.reps = r.Realizations
		}
	}
	return sections
}

// renderReport builds the full EXPERIMENTS.md document.
func renderReport(benches []*benchOutput, rrDocs []*rrBenchOutput, serveDocs []*serveBenchOutput, inputs []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# EXPERIMENTS\n\n")
	fmt.Fprintf(&b, "Generated by `repro report` from: %s. Do not edit by hand —\n", strings.Join(inputs, ", "))
	fmt.Fprintf(&b, "regenerate with `repro report --out EXPERIMENTS.md <BENCH_*.json | SWEEP_*.jsonl>`.\n\n")
	fmt.Fprintf(&b, "Each section reproduces the paper's Figures 2–4 measurements on the\n")
	fmt.Fprintf(&b, "Table II stand-in datasets; rows are dataset × diffusion model, columns\n")
	fmt.Fprintf(&b, "algorithms, one table per cost setting. Inputs sharing (scale, seed,\n")
	fmt.Fprintf(&b, "sampler) are merged into one section.\n")

	for _, sec := range mergeSections(benches) {
		models := orderedModels(sec.models)
		fmt.Fprintf(&b, "\n## models=%s scale=%g seed=%d", strings.Join(models, "+"), sec.scale, sec.seed)
		if sec.sampler != "" {
			fmt.Fprintf(&b, " sampler=%s", sec.sampler)
		}
		if sec.k > 0 {
			fmt.Fprintf(&b, " k=%d", sec.k)
		}
		fmt.Fprintf(&b, "\n\n")
		// len(sec.rows) rather than a running count: distinct sources can
		// legitimately re-measure the same cell, and the tables render the
		// merged (last-wins) view.
		fmt.Fprintf(&b, "%d row(s), %d realization(s) per cell, wall %dms.\n", len(sec.rows), sec.reps, sec.wallMS)

		datasets := orderedDatasets(sec.datasets)
		algos := orderedAlgos(sec.algos)
		for _, m := range reportMetrics {
			if m.applies != nil && !m.applies(sec) {
				continue
			}
			fmt.Fprintf(&b, "\n### %s\n\n%s\n", m.title, m.note)
			for _, cost := range sec.costs {
				fmt.Fprintf(&b, "\nCost setting: **%s**\n\n", cost)
				fmt.Fprintf(&b, "| dataset | %s |\n", strings.Join(algos, " | "))
				fmt.Fprintf(&b, "|---|%s\n", strings.Repeat("---|", len(algos)))
				for _, ds := range datasets {
					for _, model := range models {
						label := ds
						if len(models) > 1 {
							label = fmt.Sprintf("%s (%s)", ds, model)
						}
						cells := make([]string, len(algos))
						for i, algo := range algos {
							if r, ok := sec.rows[ds+"\x00"+model+"\x00"+cost+"\x00"+algo]; ok {
								cells[i] = m.cell(r)
							} else {
								cells[i] = "—"
							}
						}
						fmt.Fprintf(&b, "| %s | %s |\n", label, strings.Join(cells, " | "))
					}
				}
			}
		}
		if len(sec.errors) > 0 {
			fmt.Fprintf(&b, "\n### Errors\n\n")
			for _, e := range sec.errors {
				fmt.Fprintf(&b, "- %s\n", e)
			}
		}
	}
	renderSamplerComparison(&b, benches)
	renderRRThroughput(&b, rrDocs)
	renderServeThroughput(&b, serveDocs)
	return b.String()
}

// renderServeThroughput emits one section per loadbench document: the
// closed-loop serving rate and the step-request latency distribution of
// the in-process campaign server (`repro loadbench`). Machine-dependent,
// like the RR throughput numbers; committed fixtures track the serving
// hot path's trajectory, not portable truth.
func renderServeThroughput(b *strings.Builder, docs []*serveBenchOutput) {
	for _, doc := range docs {
		fmt.Fprintf(b, "\n## Serving throughput: %s/%s/%s scale=%g\n\n", doc.Dataset, doc.Model, doc.Cost, doc.Scale)
		fmt.Fprintf(b, "Closed-loop load against the in-process campaign server (`repro loadbench`):\n")
		fmt.Fprintf(b, "each client repeatedly creates a campaign, steps it to completion over\n")
		fmt.Fprintf(b, "HTTP, and deletes it, all on one warm instance. Step latency is the\n")
		fmt.Fprintf(b, "next-seed decision as the client sees it — selection, simulated feedback,\n")
		fmt.Fprintf(b, "instrumentation, JSON, loopback sockets.\n\n")
		fmt.Fprintf(b, "| algo | k | clients | wall | campaigns | campaigns/s | steps/s | step p50 | p95 | p99 |\n")
		fmt.Fprintf(b, "|---|---|---|---|---|---|---|---|---|---|\n")
		fmt.Fprintf(b, "| %s | %d | %d | %.1fs | %d | %.1f | %.0f | %.3fms | %.3fms | %.3fms |\n",
			doc.Algo, doc.K, doc.Clients, doc.WallMS/1000, doc.Campaigns,
			doc.CampaignsPerSec, doc.StepsPerSec, doc.StepP50MS, doc.StepP95MS, doc.StepP99MS)
	}
}

// renderRRThroughput emits one section per rrbench document: the raw
// RR-generation throughput of the kernel × layout matrix, measured by
// the interleaved A/B protocol (`repro rrbench`), with the counter-based
// per-set shape statistics alongside. These are the only committed
// throughput numbers produced by interleaved same-process rounds;
// cross-process runs on a shared machine drift too much to compare.
func renderRRThroughput(b *strings.Builder, docs []*rrBenchOutput) {
	for _, doc := range docs {
		fmt.Fprintf(b, "\n## RR throughput: %s scale=%g seed=%d\n\n", doc.Dataset, doc.Scale, doc.Seed)
		fmt.Fprintf(b, "Raw RR-set generation rate per sampler kernel and node numbering\n")
		fmt.Fprintf(b, "(`repro rrbench`, batch=%d, median of %d interleaved rounds, %d worker(s)).\n",
			doc.Batch, doc.Rounds, doc.Workers)
		fmt.Fprintf(b, "Visits/touches are exact sampler counters; B/touch is the traffic model\n")
		fmt.Fprintf(b, "(4·touches + 17·visits)/touches, not a hardware measurement.\n\n")
		fmt.Fprintf(b, "| variant | kernel | numbering | median rr/s | visits/set | touches/set | B/touch | max depth |\n")
		fmt.Fprintf(b, "|---|---|---|---|---|---|---|---|\n")
		for _, v := range doc.Variants {
			kernel, numbering := "per-draw", "identity"
			if v.Batched {
				kernel = "frontier-batched"
			}
			if v.DegreeOrder {
				numbering = "degree-ordered"
			}
			fmt.Fprintf(b, "| %s | %s | %s | %.0f | %.2f | %.2f | %.1f | %d |\n",
				v.Name, kernel, numbering, v.MedianRRPerSec,
				v.VisitsPerSet, v.TouchesPerSet, v.BytesPerEdgeTouch, v.MaxDepth)
		}
		fmt.Fprintf(b, "\nBatched vs per-draw: **%.2f×**.\n", doc.SpeedupVsA)
	}
}

// orderedModels returns model names IC-first, unknown names last.
func orderedModels(names []string) []string {
	rank := map[string]int{"IC": 0, "LT": 1}
	out := append([]string(nil), names...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i]]
		rj, jok := rank[out[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return out[i] < out[j]
		}
	})
	return out
}

// rowSampler normalizes a row's sampler label: rows written before the
// sampler column existed ran the fixed attempt loop.
func rowSampler(r *resultRow) string {
	if r.Sampler != "" {
		return r.Sampler
	}
	return adaptive.PolicyFixed
}

// renderSamplerComparison emits the sequential-vs-fixed RR-draw table when
// the input benches contain the same configuration run under both
// stopping rules — the A/B behind the sequential controller: same
// instance, same realizations, the draw counts and realized profits side
// by side.
func renderSamplerComparison(b *strings.Builder, benches []*benchOutput) {
	type pair struct{ seq, fixed *resultRow }
	pairs := make(map[string]*pair)
	var order []string
	for _, bench := range benches {
		for _, r := range bench.Rows {
			if r.Attempts == 0 && r.Fallbacks == 0 {
				continue // not a sampling policy; nothing to compare
			}
			key := fmt.Sprintf("%s · %s · %s · scale %g · seed %d · k %d · %d reps · %s",
				r.Dataset, r.CostSetting, r.Model, r.Scale, r.Seed, r.K, r.Realizations, r.Algo)
			p, ok := pairs[key]
			if !ok {
				p = &pair{}
				pairs[key] = p
				order = append(order, key)
			}
			switch rowSampler(r) {
			case adaptive.PolicySequential:
				p.seq = r
			case adaptive.PolicyFixed:
				p.fixed = r
			}
		}
	}
	any := false
	for _, key := range order {
		if p := pairs[key]; p.seq != nil && p.fixed != nil {
			any = true
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(b, "\n## Sequential vs fixed sampling\n\n")
	fmt.Fprintf(b, "Configurations present under both stopping rules. `rr_drawn` is the total\n")
	fmt.Fprintf(b, "RR sets generated; the reduction is fixed/sequential. Profits are realized\n")
	fmt.Fprintf(b, "on the same realization pool (same seed), so differences are the policies'\n")
	fmt.Fprintf(b, "decisions plus sampling noise. Rows marked † had diverging instances\n")
	fmt.Fprintf(b, "(`--sampler` also pins IMM's target selection, which can pick different\n")
	fmt.Fprintf(b, "targets on some seeds); their profit columns are not directly comparable.\n\n")
	fmt.Fprintf(b, "| configuration | rr drawn (fixed) | rr drawn (seq) | reduction | profit (fixed) | profit (seq) | fallbacks (fixed → seq) |\n")
	fmt.Fprintf(b, "|---|---|---|---|---|---|---|\n")
	for _, key := range order {
		p := pairs[key]
		if p.seq == nil || p.fixed == nil {
			continue
		}
		red := "—"
		if p.seq.RRDrawn > 0 {
			red = fmt.Sprintf("%.1f×", float64(p.fixed.RRDrawn)/float64(p.seq.RRDrawn))
		}
		mark := ""
		if p.seq.Targets != p.fixed.Targets || p.seq.Budget != p.fixed.Budget {
			mark = " †"
		}
		fmt.Fprintf(b, "| %s%s | %d | %d | %s | %.2f | %.2f | %d → %d |\n",
			key, mark, p.fixed.RRDrawn, p.seq.RRDrawn, red,
			p.fixed.AvgProfit, p.seq.AvgProfit, p.fixed.Fallbacks, p.seq.Fallbacks)
	}
}

// orderedDatasets returns names in Table II registry order, unknown names
// last alphabetically, so tables are stable across bench invocations.
func orderedDatasets(names []string) []string {
	rank := make(map[string]int, len(gen.Datasets))
	for i, d := range gen.Datasets {
		rank[d.Name] = i
	}
	out := append([]string(nil), names...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i]]
		rj, jok := rank[out[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return out[i] < out[j]
		}
	})
	return out
}

// orderedAlgos returns algorithm names in CLI order, unknown names last.
func orderedAlgos(names []string) []string {
	rank := make(map[string]int, len(adaptive.Algorithms))
	for i, a := range adaptive.Algorithms {
		rank[a] = i
	}
	out := append([]string(nil), names...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i]]
		rj, jok := rank[out[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return out[i] < out[j]
		}
	})
	return out
}
