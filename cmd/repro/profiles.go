package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// startProfiles starts a pprof CPU profile and/or schedules a heap
// profile for the enclosing command. The returned stop function is
// idempotent and safe to both defer (early-error paths) and call
// explicitly at the natural end of the measured region; it stops the
// CPU profile and then snapshots the heap (after a GC, so the profile
// shows live retained memory, not garbage awaiting collection). Profile
// write failures are reported to stderr rather than failing the
// command — a finished grid outranks its diagnostics.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
				}
			}
			if memPath == "" {
				return
			}
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		})
	}, nil
}
