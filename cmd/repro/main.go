// Command repro is the experiment driver for the conf_icde_Huang0XSL20
// reproduction: it materializes the Table II stand-in datasets, runs one
// adaptive/nonadaptive profit algorithm on one configuration, or sweeps a
// benchmark grid — emitting machine-readable JSON rows throughout.
//
// Subcommands:
//
//	repro gen    --dataset nethept-s [--scale 0.1] [--out g.txt]
//	repro run    --algo addatp --dataset nethept-s --model ic --cost degree-proportional
//	repro bench  [--datasets nethept-s] [--algos all] [--costs all] [--out BENCH_results.json]
//	repro report [--out EXPERIMENTS.md] [BENCH_*.json ...]
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/cascade"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: repro <subcommand> [flags]

subcommands:
  gen     materialize a Table II stand-in dataset (stats to stdout, graph to --out)
  run     execute one algorithm on one dataset/model/cost configuration
  bench   sweep algorithms x datasets x cost settings into a BENCH_*.json
  report  render BENCH_*.json files into EXPERIMENTS.md (Figures 2-4 tables)

run 'repro <subcommand> -h' for flags.
`)
}

// buildDataset materializes a stand-in graph at the given scale.
func buildDataset(name string, scale float64) (*graph.Graph, gen.DatasetSpec, error) {
	spec, err := gen.Lookup(name)
	if err != nil {
		return nil, spec, err
	}
	g, err := gen.Generate(spec.Config(scale))
	if err != nil {
		return nil, spec, err
	}
	return g, spec, nil
}

// validateAlgo rejects unknown algorithm names before any expensive
// dataset/instance preparation happens.
func validateAlgo(name string) error {
	for _, a := range adaptive.Algorithms {
		if a == name {
			return nil
		}
	}
	return fmt.Errorf("unknown algorithm %q (have %v)", name, adaptive.Algorithms)
}

// validateSampler rejects unknown stopping-rule policy names.
func validateSampler(name string) error {
	for _, p := range adaptive.SamplingPolicies {
		if p == name {
			return nil
		}
	}
	return fmt.Errorf("unknown sampler %q (have %v)", name, adaptive.SamplingPolicies)
}

func parseModel(s string) (cascade.Model, error) {
	switch strings.ToLower(s) {
	case "ic":
		return cascade.IC, nil
	case "lt":
		return cascade.LT, nil
	default:
		return 0, fmt.Errorf("unknown diffusion model %q (have ic, lt)", s)
	}
}

func parseCostSetting(s string) (cost.Setting, error) {
	switch strings.ToLower(s) {
	case "degree-proportional", "degree":
		return cost.DegreeProportional, nil
	case "uniform":
		return cost.Uniform, nil
	case "random":
		return cost.Random, nil
	default:
		return 0, fmt.Errorf("unknown cost setting %q (have degree-proportional, uniform, random)", s)
	}
}
