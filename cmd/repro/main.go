// Command repro is the experiment driver for the conf_icde_Huang0XSL20
// reproduction: it materializes the Table II stand-in datasets, runs one
// adaptive/nonadaptive profit algorithm on one configuration, or sweeps a
// benchmark grid — emitting machine-readable JSON rows throughout.
//
// Subcommands:
//
//	repro gen    --dataset nethept-s [--scale 0.1] [--out g.txt]
//	repro run    --algo addatp --dataset nethept-s --model ic --cost degree-proportional
//	repro bench  [--datasets nethept-s] [--algos all] [--costs all] [--out BENCH_results.json]
//	repro rrbench [--dataset nethept-s] [--batch 20000] [--rounds 9] [--out BENCH_rr_throughput.json]
//	repro sweep  [--datasets all] [--models all] [--churns none,1@2] [--journal SWEEP_x.jsonl] [--resume] [--parallel 4]
//	repro serve  [--addr 127.0.0.1:8077] [--checkpoint-dir ckpts] [--max-instances 8] [--debug-addr 127.0.0.1:8078]
//	repro loadbench [--clients 4] [--duration 5s] [--out BENCH_serve_nethept-s.json]
//	repro report [--out EXPERIMENTS.md] [BENCH_*.json | SWEEP_*.jsonl ...]
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "rrbench":
		err = cmdRRBench(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadbench":
		err = cmdLoadBench(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: repro <subcommand> [flags]

subcommands:
  gen     materialize a Table II stand-in dataset (stats to stdout, graph to --out)
  run     execute one algorithm on one dataset/model/cost configuration
  bench   run a single-model grid of algorithms x datasets x costs into a BENCH_*.json
  rrbench measure raw RR-set throughput (per-draw vs batched, interleaved A/B) into BENCH_rr_throughput.json
  sweep   run a resumable datasets x models x costs x algorithms x churns grid with a JSONL journal
  serve   run the campaign daemon: step-wise adaptive sessions over HTTP with checkpoint/restore
  loadbench drive an in-process campaign server with closed-loop clients into BENCH_serve_*.json
  report  render BENCH_*.json / SWEEP_*.jsonl files into EXPERIMENTS.md (Table II layout)

run 'repro <subcommand> -h' for flags.
`)
}

// wallMS renders a wall-clock duration as fractional milliseconds with
// microsecond resolution. Durations.Milliseconds() truncates, so every
// sub-millisecond run — a tiny-fixture gen, a fast rrbench round —
// reported wall_ms: 0 as if it had been free; any positive duration now
// reports at least 0.001.
func wallMS(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	ms := math.Round(d.Seconds()*1e6) / 1e3
	if ms < 0.001 {
		return 0.001
	}
	return ms
}

// buildDataset materializes a stand-in graph at the given scale.
func buildDataset(name string, scale float64) (*graph.Graph, gen.DatasetSpec, error) {
	spec, err := gen.Lookup(name)
	if err != nil {
		return nil, spec, err
	}
	g, err := gen.Generate(spec.Config(scale))
	if err != nil {
		return nil, spec, err
	}
	return g, spec, nil
}
