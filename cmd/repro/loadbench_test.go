package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestWallMS pins the fractional-milliseconds rendering: the old
// Milliseconds() truncation reported 0 for anything under 1ms, which is
// every tiny-fixture gen run.
func TestWallMS(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want float64
	}{
		{0, 0},
		{-time.Second, 0},
		{500 * time.Nanosecond, 0.001}, // floor: positive work never reports 0
		{100 * time.Microsecond, 0.1},
		{1500 * time.Microsecond, 1.5},
		{2 * time.Second, 2000},
	} {
		if got := wallMS(tc.d); got != tc.want {
			t.Errorf("wallMS(%s) = %g, want %g", tc.d, got, tc.want)
		}
	}
}

// TestGenTinyFixtureWallMS runs the actual gen path on the smallest
// fixture and checks the reported wall time is positive — the regression
// was a wall_ms of 0 for every sub-millisecond generation.
func TestGenTinyFixtureWallMS(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	genErr := cmdGen([]string{"--dataset", "nethept-s", "--scale", "0.002"})
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if genErr != nil {
		t.Fatal(genErr)
	}
	var row genRow
	if err := json.Unmarshal(out, &row); err != nil {
		t.Fatalf("gen output %q: %v", out, err)
	}
	if row.WallMS <= 0 {
		t.Errorf("tiny gen reported wall_ms = %g, want > 0", row.WallMS)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.95, 10}, {0.99, 10}, {0.1, 1}} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(%.2f) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %g, want 0", got)
	}
}

// TestCmdLoadBenchSmoke runs a sub-second loadbench against the tiny
// instance end to end, checks the document's internal consistency, and
// renders it through `repro report` — the same sanity contract the CI
// smoke asserts on a committed fixture.
func TestCmdLoadBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a server and a timed load window")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve_tiny.json")
	err := cmdLoadBench([]string{
		"--dataset", "nethept-s", "--scale", "0.004", "--cost", "uniform",
		"--k", "5", "--reps", "2", "--adg-theta", "1000", "--nsg-theta", "2000",
		"--clients", "2", "--duration", "400ms", "--out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc serveBenchOutput
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Kind != serveBenchKind {
		t.Fatalf("kind = %q, want %q", doc.Kind, serveBenchKind)
	}
	if doc.Campaigns <= 0 || doc.Steps <= 0 || doc.CampaignsPerSec <= 0 {
		t.Fatalf("no load measured: %+v", doc)
	}
	if !(doc.StepP99MS >= doc.StepP95MS && doc.StepP95MS >= doc.StepP50MS && doc.StepP50MS > 0) {
		t.Fatalf("latency percentiles inconsistent: p50=%g p95=%g p99=%g",
			doc.StepP50MS, doc.StepP95MS, doc.StepP99MS)
	}

	// The document must route to the serve path and render its section.
	b, rr, sv, err := readBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if b != nil || rr != nil || sv == nil {
		t.Fatalf("serve document misrouted: bench=%v rr=%v serve=%v", b, rr, sv)
	}
	mdPath := filepath.Join(dir, "E.md")
	if err := cmdReport([]string{"--out", mdPath, out}); err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(md, []byte("## Serving throughput: nethept-s/ic/uniform")) {
		t.Fatalf("report missing serving section:\n%s", md)
	}
	if !strings.Contains(string(md), "campaigns/s") {
		t.Fatalf("serving table malformed:\n%s", md)
	}
}
